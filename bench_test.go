package dima

// One benchmark per table/figure of the paper's evaluation (§IV), plus
// the ablation benches DESIGN.md calls out. Each figure bench executes a
// scaled-down version of the figure's full grid per iteration and
// reports the series' shape as custom metrics:
//
//	rounds/Δ   mean computation rounds divided by mean Δ
//	colors-Δ   mean palette excess over Δ
//	pair-rate  empirical Equation (1) pairing probability
//
// Regenerate the full-protocol numbers with: go run ./cmd/dimabench.

import (
	"testing"

	"dima/internal/baseline"
	"dima/internal/core"
	"dima/internal/experiment"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/mpr"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// benchGrid runs a figure's specs at small scale and reports shape
// metrics.
func benchGrid(b *testing.B, specs []experiment.Spec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		runs, err := experiment.RunGrid(specs, experiment.Config{Seed: uint64(i), Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		var dsum, rsum, csum, prsum float64
		for _, r := range runs {
			dsum += float64(r.Delta)
			rsum += float64(r.CompRounds)
			csum += float64(r.Colors - r.Delta)
			prsum += r.PairRate
		}
		n := float64(len(runs))
		b.ReportMetric(rsum/dsum, "rounds/Δ")
		b.ReportMetric(csum/n, "colors-Δ")
		b.ReportMetric(prsum/n, "pair-rate")
	}
}

// shrink caps every spec at reps repetitions for benchmark iterations.
func shrink(specs []experiment.Spec, reps int) []experiment.Spec {
	out := append([]experiment.Spec(nil), specs...)
	for i := range out {
		out[i].Reps = reps
	}
	return out
}

// BenchmarkFig3 regenerates §IV-A (Algorithm 1 on Erdős–Rényi graphs,
// Figure 3): rounds ≈ 2Δ, palette at Δ or Δ+1.
func BenchmarkFig3(b *testing.B) {
	benchGrid(b, shrink(experiment.Fig3Specs(1), 2))
}

// BenchmarkFig4 regenerates §IV-B (Algorithm 1 on scale-free graphs,
// Figure 4): palette never above Δ, rounds linear in Δ.
func BenchmarkFig4(b *testing.B) {
	benchGrid(b, shrink(experiment.Fig4Specs(1), 2))
}

// BenchmarkFig5 regenerates §IV-C (Algorithm 1 on small-world graphs,
// Figure 5): dense cells exceed Δ+1 but never approach 2Δ-1.
func BenchmarkFig5(b *testing.B) {
	benchGrid(b, shrink(experiment.Fig5Specs(1), 2))
}

// BenchmarkFig6 regenerates §IV-D (Algorithm 2 on directed Erdős–Rényi
// graphs, Figure 6): rounds linear in Δ, independent of n.
func BenchmarkFig6(b *testing.B) {
	benchGrid(b, shrink(experiment.Fig6Specs(1), 1))
}

// BenchmarkPairingProbe measures the per-round pairing probability of
// Proposition 1 / Equation (1) on the paper's densest ER cell.
func BenchmarkPairingProbe(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(1), 200, 16)
	if err != nil {
		b.Fatal(err)
	}
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := core.ColorEdges(g, core.Options{Seed: uint64(i), CollectParticipation: true})
		if err != nil {
			b.Fatal(err)
		}
		var active, paired int
		for _, p := range res.Participation {
			active += p.Active
			paired += p.Paired
		}
		rate = float64(paired) / float64(active)
	}
	b.ReportMetric(rate, "pair-rate")
}

// BenchmarkAblationColorRule compares the paper's lowest-first proposal
// rule against uniform-random proposals (Conjecture 2's mechanism).
func BenchmarkAblationColorRule(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(2), 200, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, rule := range []core.ColorRule{core.LowestFirst, core.RandomAvailable} {
		rule := rule
		b.Run(rule.String(), func(b *testing.B) {
			var colors, rounds float64
			for i := 0; i < b.N; i++ {
				res, err := core.ColorEdges(g, core.Options{Seed: uint64(i), ColorRule: rule})
				if err != nil {
					b.Fatal(err)
				}
				colors = float64(res.NumColors - g.MaxDegree())
				rounds = float64(res.CompRounds) / float64(g.MaxDegree())
			}
			b.ReportMetric(colors, "colors-Δ")
			b.ReportMetric(rounds, "rounds/Δ")
		})
	}
}

// BenchmarkAblationNoConfirm compares Algorithm 2 with and without the
// claim/confirm exchange (the correction of DESIGN.md §3). The unsafe
// arm reports its distance-2 violations per run; the safe arm must
// always report zero.
func BenchmarkAblationNoConfirm(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(3), 100, 6)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	for _, unsafe := range []bool{false, true} {
		unsafe := unsafe
		name := "confirm"
		if unsafe {
			name = "no-confirm"
		}
		b.Run(name, func(b *testing.B) {
			var violations, rounds float64
			for i := 0; i < b.N; i++ {
				res, err := core.ColorStrong(d, core.Options{
					Seed: uint64(i), UnsafeNoConfirm: unsafe, MaxCompRounds: 5000,
				})
				if err != nil {
					// Endpoint disagreement: only the unsafe arm may do this.
					if !unsafe {
						b.Fatal(err)
					}
					violations++
					continue
				}
				count := 0
				for _, v := range verify.StrongColoring(d, res.Colors) {
					if v.Kind == "distance2" {
						count++
					}
				}
				if count > 0 && !unsafe {
					b.Fatalf("safe arm produced %d violations", count)
				}
				violations = float64(count)
				rounds = float64(res.CompRounds) / float64(g.MaxDegree())
			}
			b.ReportMetric(violations, "violations")
			b.ReportMetric(rounds, "rounds/Δ")
		})
	}
}

// BenchmarkAblationOverhearFilter measures the paper's Procedure 2-b
// fast path: with it disabled, more doomed claims reach the confirm
// exchange.
func BenchmarkAblationOverhearFilter(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(4), 100, 6)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "filter-on"
		if disabled {
			name = "filter-off"
		}
		b.Run(name, func(b *testing.B) {
			var dropped, rounds float64
			for i := 0; i < b.N; i++ {
				res, err := core.ColorStrong(d, core.Options{
					Seed: uint64(i), DisableOverhearFilter: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
				dropped = float64(res.ConflictsDropped)
				rounds = float64(res.CompRounds) / float64(g.MaxDegree())
			}
			b.ReportMetric(dropped, "claims-dropped")
			b.ReportMetric(rounds, "rounds/Δ")
		})
	}
}

// BenchmarkEngines compares the deterministic sequential runtime with
// the goroutine-per-vertex channel runtime on an identical workload.
func BenchmarkEngines(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(5), 200, 8)
	if err != nil {
		b.Fatal(err)
	}
	for name, eng := range map[string]net.Engine{"sync": net.RunSync, "chan": net.RunChan} {
		eng := eng
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ColorEdges(g, core.Options{Seed: uint64(i), Engine: eng}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColorEdges measures Algorithm 1 end to end at the paper's
// largest edge-coloring cell (n=400, avg degree 16).
func BenchmarkColorEdges(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(6), 400, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ColorEdges(g, core.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColorStrong measures Algorithm 2 end to end at the paper's
// largest strong-coloring cell (n=400, avg degree 8).
func BenchmarkColorStrong(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(7), 400, 8)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.ColorStrong(d, core.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMisraGries measures the centralized Δ+1 baseline.
func BenchmarkMisraGries(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(8), 400, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.MisraGries(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerators measures the graph generators at figure scale.
func BenchmarkGenerators(b *testing.B) {
	b.Run("er-400-16", func(b *testing.B) {
		r := rng.New(9)
		for i := 0; i < b.N; i++ {
			if _, err := gen.ErdosRenyiAvgDegree(r, 400, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ba-400", func(b *testing.B) {
		r := rng.New(10)
		for i := 0; i < b.N; i++ {
			if _, err := gen.BarabasiAlbert(r, 400, 2, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ws-256-dense", func(b *testing.B) {
		r := rng.New(11)
		for i := 0; i < b.N; i++ {
			if _, err := gen.WattsStrogatz(r, 256, 23, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompareSimple pits Algorithm 1 against the prior-work
// baseline (ref [10]) on the same instance, reporting the rounds/palette
// trade as metrics.
func BenchmarkCompareSimple(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(12), 200, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dima", func(b *testing.B) {
		var rounds, colors float64
		for i := 0; i < b.N; i++ {
			res, err := core.ColorEdges(g, core.Options{Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			rounds = float64(res.CompRounds)
			colors = float64(res.NumColors - g.MaxDegree())
		}
		b.ReportMetric(rounds, "rounds")
		b.ReportMetric(colors, "colors-Δ")
	})
	b.Run("simple-ref10", func(b *testing.B) {
		var rounds, colors float64
		for i := 0; i < b.N; i++ {
			res, err := mpr.Color(g, mpr.Options{Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			rounds = float64(res.Rounds)
			colors = float64(res.NumColors - g.MaxDegree())
		}
		b.ReportMetric(rounds, "rounds")
		b.ReportMetric(colors, "colors-Δ")
	})
}

// BenchmarkMakespan measures the latency-model critical-path analysis.
func BenchmarkMakespan(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(13), 400, 8)
	if err != nil {
		b.Fatal(err)
	}
	lat := net.RandomLatency{Seed: 1, Min: 1, Max: 5}
	for i := 0; i < b.N; i++ {
		if _, err := net.Makespan(g, 100, lat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareStrong pits Algorithm 2 against the simple-strong
// distributed baseline on the same instance.
func BenchmarkCompareStrong(b *testing.B) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(14), 100, 8)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	b.Run("dima2ed", func(b *testing.B) {
		var rounds, channels float64
		for i := 0; i < b.N; i++ {
			res, err := core.ColorStrong(d, core.Options{Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			rounds = float64(res.CompRounds)
			channels = float64(res.NumColors)
		}
		b.ReportMetric(rounds, "rounds")
		b.ReportMetric(channels, "channels")
	})
	b.Run("simple-strong", func(b *testing.B) {
		var rounds, channels float64
		for i := 0; i < b.N; i++ {
			res, err := mpr.StrongColor(d, mpr.Options{Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			rounds = float64(res.Rounds)
			channels = float64(res.NumColors)
		}
		b.ReportMetric(rounds, "rounds")
		b.ReportMetric(channels, "channels")
	})
}
