# Verify loop for the dima module. `make check` is the full gate run
# before every commit: build, vet, the complete test suite, and the
# goroutine runtime under the race detector.

GO ?= go

.PHONY: all build test race vet fmt fmt-check bench check serve-smoke dynamic-smoke load-smoke soak-smoke scale-smoke parallel-smoke cluster-smoke cluster-serve-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (and lists the offenders) when any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# End-to-end smoke of the dimaserve binary over curl: submit, poll to
# done, cancel a large job mid-run, drain on SIGTERM (docs/SERVING.md).
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke of dynamic recoloring over the wire: stream 100
# mutation batches through POST /jobs/{id}/mutate and assert every
# post-batch coloring re-verifies valid (docs/DYNAMIC.md).
dynamic-smoke:
	sh scripts/dynamic_smoke.sh

# SLO smoke: boot dimaserve, run a 10-second dimaload burst, assert
# zero error-budget violations and a non-empty Prometheus scrape
# (docs/OBSERVABILITY.md). Writes BENCH_PR6.json.
load-smoke:
	sh scripts/load_smoke.sh

# Churn soak smoke: ~10^4 mutations of temporal workloads through the
# dynamic recolorer with maintenance on; epoch invariants (palette cap,
# hole ratio, validity) and replay determinism are asserted inside the
# sweep (docs/PERFORMANCE.md). Writes BENCH_PR7.ci.json.
soak-smoke:
	sh scripts/soak_smoke.sh

# Engine scale smoke: the reduced ladder on all engines, plus a
# multi-worker sync-vs-shard arm whose coloring cross-check proves the
# parallel path reproduces the sequential reference
# (docs/PERFORMANCE.md).
scale-smoke:
	sh scripts/scale_smoke.sh

# Shard worker-scaling smoke under the race detector: the reduced
# parallel sweep at workers 1 and 8, colorings cross-checked against
# RunSync inside the sweep (docs/PERFORMANCE.md). Writes
# BENCH_PR8.ci.json.
parallel-smoke:
	sh scripts/parallel_smoke.sh

# Multi-process tcp engine smoke: a coordinator plus 4 node processes
# over loopback color a ~10^5-edge graph, outputs diffed byte-for-byte
# against the sync reference for both algorithms, plus an
# operator-launched dimanode arm (docs/CLUSTER.md).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Cluster serving smoke: a dimaserve front end plus three dimaworker
# processes; a known graph re-verified with dimaverify, a SIGKILL
# failover arm, a dimaload burst that loses a second worker mid-run,
# and a drain after which the survivors exit 0 on their own
# (docs/CLUSTER_SERVE.md). Honors CLUSTER_SERVE_SMOKE_LOGDIR and
# CLUSTER_SERVE_SMOKE_OUT.
cluster-serve-smoke:
	sh scripts/cluster_serve_smoke.sh

check: build vet fmt-check test race
