// Telemetry quickstart: color a random G(n,p) graph with per-round
// metrics streaming to a JSON Lines file and the automaton timelines
// exported as a Chrome trace viewable at https://ui.perfetto.dev.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dima"
)

func main() {
	// The reference workload of the paper's convergence experiments:
	// Erdős–Rényi, 120 vertices, average degree 8.
	g, err := dima.ErdosRenyi(dima.NewRand(2012), 120, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Output directory for the two artifacts (override with the first
	// argument; default is a fresh temp directory).
	dir := ""
	if len(os.Args) > 1 {
		dir = os.Args[1]
	} else {
		var err error
		if dir, err = os.MkdirTemp("", "dima-telemetry"); err != nil {
			log.Fatal(err)
		}
	}
	metricsPath := filepath.Join(dir, "run.jsonl")
	tracePath := filepath.Join(dir, "trace.json")

	// Sink 1: keep the round stream in memory for the report below.
	// Sink 2: stream it to run.jsonl, one JSON object per round.
	mem := &dima.MemorySink{}
	mf, err := os.Create(metricsPath)
	if err != nil {
		log.Fatal(err)
	}
	defer mf.Close()
	jsonl := dima.NewJSONLSink(mf)

	// Record every automaton transition for the Perfetto trace.
	rec := dima.NewTraceRecorder(0)

	res, err := dima.ColorEdges(g, dima.Options{
		Seed:    7,
		Metrics: dima.MultiSink(mem, jsonl),
		Hook:    rec.Hook(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := jsonl.Flush(); err != nil {
		log.Fatal(err)
	}
	tf, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	defer tf.Close()
	if err := rec.ChromeTrace(tf); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("G(n,p) graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("colored with %d colors in %d rounds (%d messages)\n\n",
		res.NumColors, res.CompRounds, res.Messages)

	// The per-round stream shows the run's shape: activity decays as
	// nodes finish, the palette grows toward its final size.
	fmt.Println("round  active  paired  colored(cum)  colors")
	for _, rs := range mem.Rounds {
		if rs.Round%5 != 0 && rs.Round != len(mem.Rounds)-1 {
			continue
		}
		fmt.Printf("%5d  %6d  %6d  %12d  %6d\n",
			rs.Round, rs.Active, rs.Paired, rs.ColoredTotal, rs.NumColors)
	}

	fmt.Printf("\nper-round metrics written to %s (%d rounds)\n", metricsPath, jsonl.Rounds())
	fmt.Printf("automaton trace written to %s (%d events) — load it at ui.perfetto.dev\n", tracePath, rec.Len())
}
