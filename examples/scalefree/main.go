// Scale-free topologies were the surprise of the paper's evaluation
// (§IV-B): despite the extreme degree skew, the distributed algorithm
// never needed more than Δ colors. This example reproduces that
// observation on one instance and compares against both centralized
// baselines.
//
//	go run ./examples/scalefree
package main

import (
	"fmt"
	"log"

	"dima"
)

func main() {
	const seed = 2012
	g, err := dima.ScaleFree(dima.NewRand(seed), 300, 2, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	delta := g.MaxDegree()
	fmt.Printf("scale-free graph: %d vertices, %d edges, Δ=%d (avg degree %.1f — a heavy hub)\n",
		g.N(), g.M(), delta, g.AvgDegree())

	res, err := dima.ColorEdges(g, dima.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if v := dima.VerifyEdgeColoring(g, res.Colors); len(v) != 0 {
		log.Fatalf("invalid: %v", v[0])
	}

	greedy := dima.GreedySequential(g)
	vizing, err := dima.VizingSequential(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %8s %10s\n", "algorithm", "colors", "colors-Δ")
	fmt.Printf("%-28s %8d %+10d   (%d rounds, %d messages)\n",
		"distributed (Algorithm 1)", res.NumColors, res.NumColors-delta, res.CompRounds, res.Messages)
	fmt.Printf("%-28s %8d %+10d\n", "centralized greedy", distinct(greedy), distinct(greedy)-delta)
	fmt.Printf("%-28s %8d %+10d   (Vizing bound Δ+1)\n", "centralized Misra–Gries", distinct(vizing), distinct(vizing)-delta)

	// The paper's §IV-B observation: hub edges are colored one per round
	// — the hub participates in nearly every matching — so the palette
	// tracks Δ exactly.
	if res.NumColors <= delta {
		fmt.Printf("\nreproduces §IV-B: the scale-free instance used no more than Δ colors\n")
	} else {
		fmt.Printf("\nused %d colors beyond Δ on this instance\n", res.NumColors-delta)
	}
	fmt.Printf("rounds/Δ = %.2f (the paper reports rounds tending to 2Δ)\n",
		float64(res.CompRounds)/float64(delta))
}

func distinct(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}
