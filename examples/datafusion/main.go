// Weighted pairing: sensors pair up for data fusion, preferring links
// with high quality (e.g. signal strength). The matching-discovery
// automaton carries the weighted variant unchanged — inviters invite on
// their heaviest live link and listeners accept their heaviest
// invitation — which is the kind of problem transfer the paper's
// conclusion anticipates.
//
//	go run ./examples/datafusion
package main

import (
	"fmt"
	"log"
	"sort"

	"dima"
)

func main() {
	const seed = 27
	g, err := dima.Geometric(dima.NewRand(seed), 50, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	// Link quality: random per link (in a real deployment, measured SNR).
	r := dima.NewRand(seed + 1)
	weights := make([]float64, g.M())
	for i := range weights {
		weights[i] = 1 + 9*r.Float64()
	}
	fmt.Printf("sensor field: %d sensors, %d links, Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())

	weighted, err := dima.MaximalMatching(g, dima.MatchOptions{Seed: seed, Weights: weights})
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := dima.MaximalMatching(g, dima.MatchOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	var uniformWeight float64
	for _, e := range uniform.Edges {
		uniformWeight += weights[e]
	}

	fmt.Printf("%-26s %8s %14s %8s\n", "strategy", "pairs", "total quality", "rounds")
	fmt.Printf("%-26s %8d %14.1f %8d\n", "greedy-by-quality", len(weighted.Edges), weighted.Weight, weighted.CompRounds)
	fmt.Printf("%-26s %8d %14.1f %8d\n", "uniform (paper's rule)", len(uniform.Edges), uniformWeight, uniform.CompRounds)
	fmt.Printf("\nquality gain from weighted invitations: %.1f%%\n",
		100*(weighted.Weight-uniformWeight)/uniformWeight)

	// Show the best pairs formed.
	edges := append([]dima.EdgeID(nil), weighted.Edges...)
	sort.Slice(edges, func(i, j int) bool { return weights[edges[i]] > weights[edges[j]] })
	show := 5
	if len(edges) < show {
		show = len(edges)
	}
	fmt.Println("\ntop fusion pairs:")
	for _, e := range edges[:show] {
		ed := g.EdgeAt(e)
		fmt.Printf("  sensors %2d + %2d  quality %.2f\n", ed.U, ed.V, weights[e])
	}
}
