// Quickstart: build a small graph, run the distributed edge coloring,
// and print the colored edges.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dima"
)

func main() {
	// The Petersen graph: 10 vertices, 15 edges, 3-regular.
	g := dima.NewGraph(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	for _, set := range [][][2]int{outer, inner, spokes} {
		for _, e := range set {
			if _, err := g.AddEdge(e[0], e[1]); err != nil {
				log.Fatal(err)
			}
		}
	}

	res, err := dima.ColorEdges(g, dima.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Petersen graph: Δ=%d\n", g.MaxDegree())
	fmt.Printf("colored in %d computation rounds (%d messages) with %d colors:\n\n",
		res.CompRounds, res.Messages, res.NumColors)
	for id, e := range g.Edges() {
		fmt.Printf("  edge %v -> color %d\n", e, res.Colors[id])
	}

	if v := dima.VerifyEdgeColoring(g, res.Colors); len(v) != 0 {
		log.Fatalf("invalid coloring: %v", v[0])
	}
	fmt.Println("\ncoloring verified: no two adjacent edges share a color")
	fmt.Printf("(the Petersen graph is class 2: it needs Δ+1 = 4 colors; we used %d)\n", res.NumColors)
}
