// Serving: the dimaserve HTTP coloring service driven end to end from
// a client's point of view — submit, poll, fetch, cancel, drain.
//
// The program embeds the service in-process (the same service.Server
// the dimaserve binary wraps), binds a loopback port, and then talks to
// it purely over HTTP, printing the curl equivalent of every call so
// the walkthrough doubles as API documentation (docs/SERVING.md).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	stdnet "net"
	"net/http"
	"os"
	"strings"
	"time"

	"dima/internal/metrics"
	"dima/internal/service"
)

func main() {
	// One worker makes the walkthrough deterministic: the big job we
	// cancel below can never overtake the small one.
	reg := metrics.NewRegistry()
	svc := service.New(service.Config{Workers: 1, QueueSize: 8, Registry: reg})
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	check(err)
	httpSrv := &http.Server{Handler: svc}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("coloring service listening at %s\n\n", base)

	// 1. Submit a generator-spec job: Algorithm 1 on an Erdős–Rényi
	// instance built server-side.
	spec := `{"gen":{"family":"er","n":500,"deg":8,"seed":3},"seed":7}`
	fmt.Printf("$ curl -d '%s' -H 'Content-Type: application/json' %s/jobs\n", spec, base)
	st := postJSON(base+"/jobs", spec)
	fmt.Printf("  -> job %s %s (n=%v m=%v)\n\n", st["id"], st["state"], st["n"], st["m"])
	id := st["id"].(string)

	// 2. Poll until it finishes.
	fmt.Printf("$ curl %s/jobs/%s\n", base, id)
	for st["state"] != "done" {
		time.Sleep(10 * time.Millisecond)
		st = getJSON(base + "/jobs/" + id)
	}
	res := st["result"].(map[string]any)
	fmt.Printf("  -> job done: %v colors in %v rounds, %v messages\n\n",
		res["colors"], res["rounds"], res["messages"])

	// 3. Fetch the coloring and the per-round telemetry.
	full := getJSON(base + "/jobs/" + id + "/result")
	colors := full["colors"].([]any)
	fmt.Printf("$ curl %s/jobs/%s/result   # -> %d edge colors\n", base, id, len(colors))
	stats := getText(base + "/jobs/" + id + "/stats")
	fmt.Printf("$ curl %s/jobs/%s/stats    # -> %d JSONL round records\n\n",
		base, id, len(strings.Split(strings.TrimSpace(stats), "\n")))

	// 4. Submit a 300k-vertex job and cancel it: the engine aborts at
	// its next round barrier and the partial coloring stays fetchable.
	big := `{"gen":{"family":"er","n":300000,"deg":8,"seed":4},"seed":9}`
	st = postJSON(base+"/jobs", big)
	bigID := st["id"].(string)
	fmt.Printf("$ curl -X POST %s/jobs/%s/cancel\n", base, bigID)
	st = postJSON(base+"/jobs/"+bigID+"/cancel", "")
	for st["state"] != "canceled" {
		time.Sleep(10 * time.Millisecond)
		st = getJSON(base + "/jobs/" + bigID)
	}
	fmt.Printf("  -> canceled second job %s\n\n", bigID)

	// 5. Graceful shutdown: stop accepting, drain what's left.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	check(httpSrv.Shutdown(ctx))
	check(svc.Shutdown(ctx))
	fmt.Println("service drained")
}

func postJSON(url, body string) map[string]any {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	check(err)
	return decode(resp)
}

func getJSON(url string) map[string]any {
	resp, err := http.Get(url)
	check(err)
	return decode(resp)
}

func getText(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	check(err)
	return string(b)
}

func decode(resp *http.Response) map[string]any {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		b, _ := io.ReadAll(resp.Body)
		check(fmt.Errorf("HTTP %d: %s", resp.StatusCode, b))
	}
	var m map[string]any
	check(json.NewDecoder(resp.Body).Decode(&m))
	return m
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serving:", err)
		os.Exit(1)
	}
}
