// Package examples_test builds and runs every example program, checking
// that each completes successfully and prints its headline output. The
// examples double as end-to-end smoke tests of the public API.
package examples_test

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string) string {
	t.Helper()
	cmd := exec.Command("go", "run", "./"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	cases := map[string][]string{
		"quickstart":  {"Petersen graph", "coloring verified"},
		"adhocnet":    {"ad-hoc network", "distributed (DiMa2Ed)", "interference-free"},
		"sensorsched": {"TDMA frame", "distributed schedule"},
		"scalefree":   {"scale-free graph", "Misra–Gries"},
		"vertexcover": {"maximal matching", "cover verified"},
		"asyncnet":    {"α-synchronizer effect", "palette trade"},
		"datafusion":  {"total quality", "top fusion pairs"},
		"telemetry":   {"per-round metrics written to", "ui.perfetto.dev", "colors"},
		"serving":     {"coloring service listening", "job done", "canceled second job", "service drained"},
	}
	for name, wants := range cases {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out := runExample(t, name)
			for _, w := range wants {
				if !strings.Contains(out, w) {
					t.Fatalf("%s output missing %q:\n%s", name, w, out)
				}
			}
		})
	}
}
