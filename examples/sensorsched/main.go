// Sensor-network link scheduling: the paper's other cited application
// (Gandham, Dawande, Prakash — "link scheduling in sensor networks:
// distributed edge coloring revisited"). An edge coloring of the
// communication graph is a TDMA schedule: edges with color c transmit
// in time slot c, and because no two adjacent edges share a color, no
// sensor has to send and receive (or receive twice) in one slot. The
// number of colors is the frame length.
//
//	go run ./examples/sensorsched
package main

import (
	"fmt"
	"log"
	"strings"

	"dima"
)

func main() {
	const seed = 11
	// A sensor field: geometric placement, modest radio range.
	g, err := dima.Geometric(dima.NewRand(seed), 80, 0.17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %d sensors, %d links, Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	res, err := dima.ColorEdges(g, dima.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if v := dima.VerifyEdgeColoring(g, res.Colors); len(v) != 0 {
		log.Fatalf("schedule conflict: %v", v[0])
	}

	// The optimal frame is at least Δ slots; Vizing guarantees Δ+1.
	vizing, err := dima.VizingSequential(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed schedule: frame of %d slots, computed in %d rounds\n",
		res.NumColors, res.CompRounds)
	fmt.Printf("centralized Vizing:   frame of %d slots (lower bound Δ = %d)\n\n",
		distinct(vizing), g.MaxDegree())

	// Render the first few slots of the TDMA frame.
	bySlot := map[int][]string{}
	for id, e := range g.Edges() {
		c := res.Colors[id]
		bySlot[c] = append(bySlot[c], fmt.Sprintf("%d-%d", e.U, e.V))
	}
	show := res.NumColors
	if show > 6 {
		show = 6
	}
	fmt.Println("TDMA frame (first slots):")
	for c := 0; c < show; c++ {
		links := bySlot[c]
		preview := links
		if len(preview) > 8 {
			preview = preview[:8]
		}
		fmt.Printf("  slot %2d: %3d concurrent links  [%s%s]\n",
			c, len(links), strings.Join(preview, " "), ellipsis(len(links) > 8))
	}
	if res.NumColors > show {
		fmt.Printf("  ... %d more slots\n", res.NumColors-show)
	}
}

func ellipsis(more bool) string {
	if more {
		return " ..."
	}
	return ""
}

func distinct(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}
