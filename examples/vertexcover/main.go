// Framework generality: the paper's automaton was originally built for
// matching-based vertex cover (their ref [3]), and the conclusion argues
// it extends to "a variety of graph problems". This example runs the
// maximal-matching protocol on the same automaton and derives the
// classic 2-approximate vertex cover.
//
//	go run ./examples/vertexcover
package main

import (
	"fmt"
	"log"

	"dima"
)

func main() {
	const seed = 5
	g, err := dima.ErdosRenyi(dima.NewRand(seed), 200, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	res, err := dima.MaximalMatching(g, dima.MatchOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	cover := res.VertexCover(g)

	fmt.Printf("maximal matching: %d edges in %d computation rounds (%d messages)\n",
		len(res.Edges), res.CompRounds, res.Messages)
	fmt.Printf("vertex cover:     %d vertices (2-approximation: optimum ≥ %d)\n",
		len(cover), len(res.Edges))

	// Verify the cover the hard way: every edge must touch it.
	in := make(map[int]bool, len(cover))
	for _, v := range cover {
		in[v] = true
	}
	for _, e := range g.Edges() {
		if !in[e.U] && !in[e.V] {
			log.Fatalf("edge %v uncovered", e)
		}
	}
	fmt.Println("cover verified: every edge has a covered endpoint")

	// A maximal matching is at least half a maximum matching, so the
	// cover is at most twice the optimum — report the certificate.
	fmt.Printf("certificate: matching of %d disjoint edges forces any cover to use ≥ %d vertices\n",
		len(res.Edges), len(res.Edges))
}
