// Ad-hoc network channel assignment: the paper's motivating application
// for strong edge coloring (§I, citing Barrett et al.). Radios are
// placed uniformly in the unit square; two radios within range share a
// bidirectional link; every directed link needs a channel such that no
// two links within interference distance (one hop) share one — exactly
// a strong distance-2 coloring of the symmetric digraph.
//
//	go run ./examples/adhocnet
package main

import (
	"fmt"
	"log"

	"dima"
)

func main() {
	const (
		radios = 60
		radius = 0.22
		seed   = 7
	)
	g, err := dima.Geometric(dima.NewRand(seed), radios, radius)
	if err != nil {
		log.Fatal(err)
	}
	d := dima.NewSymmetric(g)
	fmt.Printf("ad-hoc network: %d radios, %d bidirectional links, %d directed links, Δ=%d\n",
		g.N(), g.M(), d.A(), g.MaxDegree())

	// Distributed assignment: every radio runs the DiMa2Ed automaton,
	// one goroutine per radio, channels as radio links.
	res, err := dima.ColorStrong(d, dima.Options{Seed: seed, Engine: dima.Chan})
	if err != nil {
		log.Fatal(err)
	}
	if v := dima.VerifyStrongColoring(d, res.Colors); len(v) != 0 {
		log.Fatalf("interference violation: %v", v[0])
	}

	// Centralized greedy reference for the channel count.
	greedy := dima.GreedyStrongSequential(d)
	greedyChannels := distinct(greedy)

	fmt.Printf("distributed (DiMa2Ed): %d channels in %d rounds, %d messages, %d claim conflicts resolved\n",
		res.NumColors, res.CompRounds, res.Messages, res.ConflictsDropped)
	fmt.Printf("centralized greedy:    %d channels (not achievable without global knowledge)\n", greedyChannels)
	fmt.Printf("interference-free: every channel is unique within one hop of both endpoints\n\n")

	// Show the busiest radio's assignment.
	hub := 0
	for u := 1; u < g.N(); u++ {
		if g.Degree(u) > g.Degree(hub) {
			hub = u
		}
	}
	fmt.Printf("busiest radio %d (degree %d):\n", hub, g.Degree(hub))
	for _, v := range g.SortedNeighbors(hub) {
		out, _ := d.ArcIDOf(hub, v)
		in, _ := d.ArcIDOf(v, hub)
		fmt.Printf("  link %2d<->%-2d  tx channel %2d, rx channel %2d\n",
			hub, v, res.Colors[out], res.Colors[in])
	}
}

func distinct(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}
