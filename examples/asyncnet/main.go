// Asynchronous-time analysis: the paper's model is synchronous, and the
// goroutine runtime realizes it over asynchronous channels with an
// α-synchronizer (a node advances once all neighbor messages for the
// round arrived). This example asks what that costs in *time* rather
// than rounds: given heterogeneous link delays, the completion time is a
// critical path through the delay graph, not rounds × slowest-link.
//
// It also shows the rounds-versus-palette trade against the prior-work
// baseline in time units.
//
//	go run ./examples/asyncnet
package main

import (
	"fmt"
	"log"

	"dima"
)

func main() {
	const seed = 21
	g, err := dima.Geometric(dima.NewRand(seed), 70, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d links, Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())

	dimaRes, err := dima.ColorEdges(g, dima.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	simpleRes, err := dima.SimpleColor(g, dima.SimpleOptions{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	// Link delays uniform in [1, 5] time units (say, milliseconds).
	lat := dima.RandomLatency{Seed: seed, Min: 1, Max: 5}
	// Communication rounds, not computation rounds, hit the network.
	dimaTime, err := dima.Makespan(g, dimaRes.CommRounds, lat)
	if err != nil {
		log.Fatal(err)
	}
	simpleTime, err := dima.Makespan(g, simpleRes.CommRounds, lat)
	if err != nil {
		log.Fatal(err)
	}
	worstDima, _ := dima.Makespan(g, dimaRes.CommRounds, dima.UniformLatency(5))

	fmt.Printf("%-22s %10s %12s %10s %12s\n", "algorithm", "colors", "comm rounds", "time", "worst-case")
	fmt.Printf("%-22s %10d %12d %10.0f %12.0f\n",
		"dima (alg 1)", dimaRes.NumColors, dimaRes.CommRounds, dimaTime, worstDima)
	worstSimple, _ := dima.Makespan(g, simpleRes.CommRounds, dima.UniformLatency(5))
	fmt.Printf("%-22s %10d %12d %10.0f %12.0f\n",
		"simple (ref 10)", simpleRes.NumColors, simpleRes.CommRounds, simpleTime, worstSimple)

	fmt.Printf("\nα-synchronizer effect: with delays U[1,5], dima finishes in %.0f time units —\n", dimaTime)
	fmt.Printf("%.0f%% of the naive rounds × max-delay bound (%.0f), because rounds pipeline\n",
		100*dimaTime/worstDima, worstDima)
	fmt.Println("along the delay graph's critical path instead of waiting for the slowest link.")
	fmt.Printf("\npalette trade in time units: the simple algorithm is %.1fx faster here but\n",
		dimaTime/simpleTime)
	fmt.Printf("uses %d colors where dima uses %d (Δ=%d).\n",
		simpleRes.NumColors, dimaRes.NumColors, g.MaxDegree())
}
