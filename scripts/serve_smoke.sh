#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the dimaserve binary over
# plain HTTP (curl), as CI runs it: start the server, submit a small
# job and poll it to completion, cancel a second (large) job, then shut
# the server down gracefully and check it drains. Uses only POSIX sh,
# curl, grep, and sed so it runs anywhere the Go toolchain does.
set -eu

ADDR="${DIMASERVE_ADDR:-127.0.0.1:18217}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/dimaserve"
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

say() { echo "serve-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

# Pull "field": "value" / "field": 123 out of the pretty-printed JSON.
jfield() { sed -n "s/^ *\"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1; }

go build -o "$BIN" ./cmd/dimaserve
"$BIN" -addr "$ADDR" -workers 1 -queue 8 &
SERVER_PID=$!

say "waiting for $BASE/healthz"
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && die "server did not come up"
    sleep 0.2
done

# 1. Submit a small generator-spec job and poll it to completion.
OUT="$(mktemp)"
curl -sf -H 'Content-Type: application/json' \
    -d '{"gen":{"family":"er","n":400,"deg":8,"seed":3},"seed":7}' \
    "$BASE/jobs" >"$OUT" || die "submit rejected"
JOB="$(jfield "$OUT" id)"
[ -n "$JOB" ] || die "submit returned no job id: $(cat "$OUT")"
say "submitted $JOB"

i=0
while :; do
    curl -sf "$BASE/jobs/$JOB" >"$OUT"
    STATE="$(jfield "$OUT" state)"
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && die "job failed: $(cat "$OUT")"
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "job stuck in $STATE"
    sleep 0.2
done
say "$JOB done ($(jfield "$OUT" colors) colors in $(jfield "$OUT" rounds) rounds)"
curl -sf "$BASE/jobs/$JOB/result" >/dev/null || die "result not fetchable"
curl -sf "$BASE/jobs/$JOB/stats" | grep -q '"round"' || die "stats stream empty"

# 2. Submit a large job and cancel it mid-run: it must finish canceled,
# not done, and its partial result must stay fetchable.
curl -sf -H 'Content-Type: application/json' \
    -d '{"gen":{"family":"er","n":300000,"deg":8,"seed":4},"seed":9}' \
    "$BASE/jobs" >"$OUT" || die "second submit rejected"
JOB2="$(jfield "$OUT" id)"
say "submitted $JOB2 (large), canceling"
curl -sf -X POST "$BASE/jobs/$JOB2/cancel" >/dev/null || die "cancel rejected"
i=0
while :; do
    curl -sf "$BASE/jobs/$JOB2" >"$OUT"
    STATE="$(jfield "$OUT" state)"
    [ "$STATE" = canceled ] && break
    [ "$STATE" = done ] || [ "$STATE" = failed ] && die "canceled job ended $STATE"
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "cancel stuck in $STATE"
    sleep 0.2
done
say "$JOB2 canceled"
curl -sf "$BASE/jobs/$JOB2/result" >/dev/null || die "partial result not fetchable"

# 3. Graceful shutdown: SIGTERM, then the process must exit by itself.
kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "server did not drain after SIGTERM"
    sleep 0.2
done
trap - EXIT
say "PASS"
