#!/bin/sh
# dynamic_smoke.sh — end-to-end smoke test of the mutate endpoint, as CI
# runs it: start dimaserve, color a cycle, stream 100 mutation batches
# through POST /jobs/{id}/mutate (each inserting a chord and deleting a
# cycle edge), and assert every batch applied with a valid re-verified
# coloring and that /result serves the mutated state. Uses only POSIX
# sh, curl, grep, and sed so it runs anywhere the Go toolchain does.
set -eu

ADDR="${DIMASERVE_ADDR:-127.0.0.1:18219}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/dimaserve"
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

say() { echo "dynamic-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

# Pull "field": "value" / "field": 123 out of the pretty-printed JSON.
jfield() { sed -n "s/^ *\"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1; }

go build -o "$BIN" ./cmd/dimaserve
"$BIN" -addr "$ADDR" -workers 1 -queue 8 &
SERVER_PID=$!

say "waiting for $BASE/healthz"
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && die "server did not come up"
    sleep 0.2
done

# 1. Color a 200-cycle and wait for it.
OUT="$(mktemp)"
curl -sf -H 'Content-Type: application/json' \
    -d '{"gen":{"family":"cycle","n":200},"seed":7}' \
    "$BASE/jobs" >"$OUT" || die "submit rejected"
JOB="$(jfield "$OUT" id)"
[ -n "$JOB" ] || die "submit returned no job id: $(cat "$OUT")"
say "submitted $JOB"
i=0
while :; do
    curl -sf "$BASE/jobs/$JOB" >"$OUT"
    STATE="$(jfield "$OUT" state)"
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && die "job failed: $(cat "$OUT")"
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "job stuck in $STATE"
    sleep 0.2
done
say "$JOB done, streaming 100 mutation batches"

# 2. Build a 100-batch ndjson stream: batch i inserts chord
# (i-1, i+99) and deletes cycle edge (i-1, i) — all applicable, all
# distinct, all inside the 200-vertex id space.
BATCHES="$(mktemp)"
i=1
while [ "$i" -le 100 ]; do
    printf '{"seq":%d,"muts":[{"op":"+","u":%d,"v":%d},{"op":"-","u":%d,"v":%d}]}\n' \
        "$i" "$((i - 1))" "$((i + 99))" "$((i - 1))" "$i" >>"$BATCHES"
    i=$((i + 1))
done

RESP="$(mktemp)"
curl -sf -X POST -H 'Content-Type: application/x-ndjson' \
    --data-binary "@$BATCHES" "$BASE/jobs/$JOB/mutate" >"$RESP" \
    || die "mutate stream rejected"
LINES="$(grep -c . "$RESP" || true)"
[ "$LINES" = 100 ] || die "expected 100 response lines, got $LINES"
APPLIED="$(grep -c '"applied":true' "$RESP" || true)"
[ "$APPLIED" = 100 ] || die "only $APPLIED/100 batches applied: $(grep -v '"applied":true' "$RESP" | head -3)"
VALID="$(grep -c '"valid":true' "$RESP" || true)"
[ "$VALID" = 100 ] || die "only $VALID/100 batches re-verified valid"
say "100 batches applied, every post-batch coloring verified valid"

# 3. The result endpoint serves the mutated state: 200 - 100 + 100 live
# edges, and the status carries the mutation summary.
curl -sf "$BASE/jobs/$JOB/result" >"$OUT" || die "result not fetchable"
M="$(jfield "$OUT" m)"
[ "$M" = 200 ] || die "result m=$M, want 200 after 100 deletes + 100 inserts"
curl -sf "$BASE/jobs/$JOB" >"$OUT"
BATCHDONE="$(jfield "$OUT" batches)"
[ "$BATCHDONE" = 100 ] || die "status mutation summary reports $BATCHDONE batches"

# 4. A bad batch (delete of a missing edge) is rejected atomically and
# the stream keeps serving.
printf '{"seq":101,"muts":[{"op":"-","u":0,"v":50}]}\n' |
    curl -sf -X POST -H 'Content-Type: application/x-ndjson' \
        --data-binary @- "$BASE/jobs/$JOB/mutate" >"$RESP" \
    || die "bad-batch stream rejected"
grep -q '"applied":false\|"error"' "$RESP" || die "bad batch not rejected: $(cat "$RESP")"
grep -q '"applied":true' "$RESP" && die "bad batch applied"
say "bad batch rejected atomically"

kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "server did not drain after SIGTERM"
    sleep 0.2
done
trap - EXIT
say "PASS"
