#!/bin/sh
# cluster_serve_smoke.sh — end-to-end smoke of the dimaserve cluster
# (docs/CLUSTER_SERVE.md): a front end plus three dimaworker processes,
# a known-graph job re-verified with dimaverify, a failover arm that
# SIGKILLs a worker holding live jobs and checks every job still
# completes with a valid coloring, a dimaload mixed-traffic burst that
# loses another worker mid-run and must stay inside a zero error
# budget, and a graceful shutdown after which the surviving workers
# exit 0 by themselves and no process is left behind. Uses only POSIX
# sh, curl, grep, and sed so it runs anywhere the Go toolchain does.
set -eu

ADDR="${DIMASERVE_ADDR:-127.0.0.1:18227}"
CLUSTER="${DIMACLUSTER_ADDR:-127.0.0.1:18228}"
BASE="http://$ADDR"
TOKEN=424242
REPORT_OUT="${CLUSTER_SERVE_SMOKE_OUT:-}"
LOGDIR="${CLUSTER_SERVE_SMOKE_LOGDIR:-}"
TMP="$(mktemp -d)"
[ -n "$LOGDIR" ] || LOGDIR="$TMP/logs"
mkdir -p "$LOGDIR"

# PIDs of every process we spawn, for the EXIT trap and the final
# leak sweep. SIGKILLed and exited entries stay in the list; kill -0
# simply fails for them.
PIDS=""
trap 'for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done' EXIT

say() { echo "cluster-serve-smoke: $*"; }
die() { say "FAIL: $*"; say "logs in $LOGDIR"; exit 1; }

# Pull "field": "value" / "field": 123 out of the pretty-printed JSON.
jfield() { sed -n "s/^ *\"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1; }

# HTTP status code only, body discarded.
jcode() { curl -s -o /dev/null -w '%{http_code}' "$1"; }

say "building binaries"
go build -o "$TMP/dimaserve" ./cmd/dimaserve
go build -o "$TMP/dimaworker" ./cmd/dimaworker
go build -o "$TMP/dimaload" ./cmd/dimaload
go build -o "$TMP/graphgen" ./cmd/graphgen
go build -o "$TMP/dimaverify" ./cmd/dimaverify

# ---------------------------------------------------------------- boot
# Heartbeat eviction stays at its forgiving default-ish 1s interval
# (3s timeout): a SIGKILLed worker is detected instantly through the
# connection reset, so failover speed does not ride on the heartbeat,
# and a tight deadline would evict healthy-but-busy workers on the
# small CI machines this smoke shares with six concurrent colorings.
"$TMP/dimaserve" -addr "$ADDR" -workers 6 -queue 64 \
    -cluster-listen "$CLUSTER" -cluster-token "$TOKEN" \
    -cluster-heartbeat 1s >"$LOGDIR/dimaserve.log" 2>&1 &
SERVER_PID=$!
PIDS="$PIDS $SERVER_PID"

say "waiting for $BASE/healthz"
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && die "server did not come up"
    sleep 0.2
done

# Before any worker registers, the front end is healthy but not ready.
[ "$(jcode "$BASE/readyz")" = 503 ] || die "/readyz should be 503 with no workers"
say "/readyz is 503 before workers register"

# start_worker backgrounds a dimaworker and leaves its pid in WPID.
# (No command substitution: the worker must be a child of this shell so
# the final `wait` can collect its exit status.)
start_worker() { # $1 = log name
    "$TMP/dimaworker" -connect "$CLUSTER" -token "$TOKEN" -capacity 2 \
        -name "$1" >"$LOGDIR/$1.log" 2>&1 &
    WPID=$!
    PIDS="$PIDS $WPID"
}
start_worker worker1 && W1=$WPID
start_worker worker2 && W2=$WPID
start_worker worker3 && W3=$WPID

# workers_up waits until the /healthz cluster section lists $1 workers.
HEALTH="$TMP/health.json"
workers_up() {
    i=0
    while :; do
        curl -sf "$BASE/healthz" >"$HEALTH" || die "healthz unreachable"
        [ "$(grep -c '"id": "w' "$HEALTH")" -eq "$1" ] && break
        i=$((i + 1))
        [ "$i" -gt 50 ] && die "registry never reached $1 workers: $(cat "$HEALTH")"
        sleep 0.2
    done
}
workers_up 3
[ "$(jcode "$BASE/readyz")" = 200 ] || die "/readyz should be 200 with workers up"
say "3 workers registered, /readyz is 200"

# wait_done polls job $1 to the done state (budget $2 polls of 0.2s)
# and leaves its status in $OUT.
OUT="$TMP/out.json"
wait_done() {
    i=0
    while :; do
        curl -sf "$BASE/jobs/$1" >"$OUT" || die "status for $1 unreachable"
        STATE="$(jfield "$OUT" state)"
        [ "$STATE" = done ] && break
        [ "$STATE" = failed ] && die "job $1 failed: $(cat "$OUT")"
        [ "$STATE" = canceled ] && die "job $1 canceled unexpectedly"
        i=$((i + 1))
        [ "$i" -gt "$2" ] && die "job $1 stuck in $STATE"
        sleep 0.2
    done
}

# ------------------------------------- known graph through the cluster
# A raw-upload job runs on a remote worker; its fetched coloring must
# re-verify against the exact uploaded graph, weak and strong.
"$TMP/graphgen" -family er -n 2000 -deg 8 -seed 3 -o "$TMP/g.graph"
for STRONG in false true; do
    curl -sf --data-binary @"$TMP/g.graph" \
        "$BASE/jobs?seed=7&strong=$STRONG" >"$OUT" || die "raw upload rejected"
    JOB="$(jfield "$OUT" id)"
    [ -n "$JOB" ] || die "raw upload returned no job id: $(cat "$OUT")"
    wait_done "$JOB" 100
    curl -sf "$BASE/jobs/$JOB/result" >"$TMP/result.json" || die "result not fetchable"
    if [ "$STRONG" = true ]; then
        "$TMP/dimaverify" -graph "$TMP/g.graph" -coloring "$TMP/result.json" -strong \
            || die "strong coloring from $JOB does not verify"
    else
        "$TMP/dimaverify" -graph "$TMP/g.graph" -coloring "$TMP/result.json" \
            || die "coloring from $JOB does not verify"
    fi
    say "$JOB (strong=$STRONG) verified against the uploaded graph"
done

# ------------------------------------------------------------ failover
# Six concurrent long jobs spread 2-2-2 over the three workers, so the
# victim is guaranteed to hold live jobs when it dies. Every job must
# still complete (the front end retries the victim's jobs elsewhere).
say "failover: submitting 6 long jobs, then SIGKILL worker3"
JOBS=""
n=0
while [ "$n" -lt 6 ]; do
    curl -sf -H 'Content-Type: application/json' \
        -d "{\"gen\":{\"family\":\"er\",\"n\":60000,\"deg\":8,\"seed\":$((n + 20))},\"seed\":$((n + 1))}" \
        "$BASE/jobs" >"$OUT" || die "failover submit $n rejected"
    JOBS="$JOBS $(jfield "$OUT" id)"
    n=$((n + 1))
done

# Kill only once the victim demonstrably holds dispatched jobs, so the
# retry path is exercised deterministically (the router spreads the six
# jobs 2-2-2, so worker3 gets some).
i=0
while :; do
    curl -sf "$BASE/healthz" >"$HEALTH" || die "healthz unreachable"
    grep -A5 '"name": "worker3"' "$HEALTH" >"$TMP/w3.json" || true
    INFLIGHT="$(jfield "$TMP/w3.json" inflight)"
    [ "${INFLIGHT:-0}" -ge 1 ] && break
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "worker3 never received a job: $(cat "$HEALTH")"
    sleep 0.1
done
kill -9 "$W3" || die "worker3 already gone before the kill"
wait "$W3" 2>/dev/null || true # reap, so the leak sweep sees no zombie
say "worker3 killed with $INFLIGHT jobs in flight"

for JOB in $JOBS; do
    wait_done "$JOB" 300
    [ "$(jfield "$OUT" aborted)" = false ] || die "job $JOB finished aborted"
done
workers_up 2
RETRIES="$(jfield "$HEALTH" retries)"
[ "${RETRIES:-0}" -ge 1 ] || die "front end reports no retries after the kill"
say "all 6 jobs done on the survivors ($RETRIES retries)"

# ------------------------------------- mixed traffic with a worker loss
# A replacement joins (back to 3 workers), dimaload drives the full op
# mix, and a second worker dies mid-burst. Retries are transparent to
# clients, so dimaload must still finish inside a zero error budget.
start_worker worker4 && W4=$WPID
workers_up 3
say "worker4 joined; driving dimaload for 8s and killing worker2 mid-run"
"$TMP/dimaload" -url "$BASE" -clients 6 -duration 8s -n 2000 -deg 6 \
    -seed 11 -max-error-rate 0 -out "$TMP/report.json" \
    >"$LOGDIR/dimaload.log" 2>&1 &
LOAD_PID=$!
PIDS="$PIDS $LOAD_PID"
sleep 3
kill -9 "$W2" || die "worker2 already gone before the kill"
wait "$W2" 2>/dev/null || true # reap, so the leak sweep sees no zombie
wait "$LOAD_PID" || die "dimaload reported SLO violations (see $LOGDIR/dimaload.log)"
[ -s "$TMP/report.json" ] || die "dimaload wrote no report"
grep -q '"cluster"' "$TMP/report.json" || die "report is missing the cluster section"
say "dimaload burst clean through the worker loss"

# -------------------------------- every completed coloring is complete
# Sweep the whole job table: each done job must report a full coloring
# (colored == items, not aborted).
curl -sf "$BASE/jobs" >"$TMP/jobs.json" || die "job list unreachable"
DONE=0
for JOB in $(grep -o '"id": "j[0-9]*"' "$TMP/jobs.json" | sed 's/[^j0-9]//g' | sort -u); do
    curl -sf "$BASE/jobs/$JOB" >"$OUT" || die "status for $JOB unreachable"
    [ "$(jfield "$OUT" state)" = done ] || continue
    [ "$(jfield "$OUT" aborted)" = false ] || die "done job $JOB is marked aborted"
    [ "$(jfield "$OUT" colored)" = "$(jfield "$OUT" items)" ] \
        || die "done job $JOB left items uncolored: $(cat "$OUT")"
    DONE=$((DONE + 1))
done
[ "$DONE" -ge 8 ] || die "only $DONE done jobs in the sweep; expected at least 8"
say "verified $DONE completed colorings"

curl -sf "$BASE/metrics" >"$TMP/scrape.txt" || die "/metrics not scrapeable"
for want in serve_cluster_workers serve_cluster_dispatch_total serve_cluster_retries_total; do
    grep -q "^$want" "$TMP/scrape.txt" || die "/metrics missing $want"
done
grep '^serve_cluster_retries_total ' "$TMP/scrape.txt" | grep -qv ' 0$' \
    || die "serve_cluster_retries_total still zero after two kills"

# ---------------------------------------------------- graceful shutdown
# SIGTERM the front end: it drains, closes the cluster listener, and
# the surviving workers see a clean EOF with nothing in flight and
# exit 0 on their own.
kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 150 ] && die "server did not drain after SIGTERM"
    sleep 0.2
done
wait "$SERVER_PID" 2>/dev/null || true
for W in "$W1" "$W4"; do
    i=0
    while kill -0 "$W" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 50 ] && die "worker $W did not exit after the front end closed"
        sleep 0.2
    done
done
wait "$W1" || die "worker1 exited nonzero on the front end's drain"
wait "$W4" || die "worker4 exited nonzero on the front end's drain"

# Leak sweep: nothing we started may still be alive.
for p in $PIDS; do
    kill -0 "$p" 2>/dev/null && die "leaked process $p is still running"
done
trap - EXIT

if [ -n "$REPORT_OUT" ]; then
    cp "$TMP/report.json" "$REPORT_OUT"
    say "report copied to $REPORT_OUT"
fi
say "PASS ($DONE colorings verified, $RETRIES failover retries, logs in $LOGDIR)"
