#!/bin/sh
# scale_smoke.sh — abbreviated engine scale sweep for CI, in two arms.
#
# Arm 1 is the historical smoke: all three engines over the reduced
# ladder at the runner's default GOMAXPROCS. Arm 2 exists because the
# single-arm job had never exercised the multi-worker shard path it
# claims to benchmark: it reruns sync+shard with an explicit worker
# count > 1, so cross-shard merges happen, and the sweep's built-in
# cross-engine check asserts the shard coloring equals the sync
# reference on every rung. A zero exit is the verdict. POSIX sh.
set -eu

SCALE="${SCALE_SMOKE_SCALE:-0.05}"
WORKERS="${SCALE_SMOKE_WORKERS:-4}"

say() { echo "scale-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

say "arm 1: all engines, default workers (scale $SCALE)"
go run ./cmd/dimabench -exp scale -scale "$SCALE" \
    || die "scale sweep failed"

say "arm 2: sync vs shard at workers=$WORKERS (coloring cross-check)"
out=$(go run ./cmd/dimabench -exp scale -scale "$SCALE" \
    -engine sync,shard -workers "$WORKERS") \
    || die "multi-worker scale sweep failed (coloring divergence aborts the sweep)"
echo "$out" | grep -q "colorings identical across engines" \
    || die "multi-worker arm did not report the cross-engine check"
say "OK: shard workers=$WORKERS reproduces the sync coloring on every rung"
