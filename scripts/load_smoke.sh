#!/bin/sh
# load_smoke.sh — boot dimaserve, drive a short dimaload burst against
# it, and gate on the SLO verdict: zero error-budget violations and a
# non-empty Prometheus scrape. CI runs this as the load-smoke job and
# uploads the BENCH_PR6.json it produces. Uses only POSIX sh and curl.
set -eu

ADDR="${DIMASERVE_ADDR:-127.0.0.1:18218}"
BASE="http://$ADDR"
DURATION="${LOAD_SMOKE_DURATION:-10s}"
CLIENTS="${LOAD_SMOKE_CLIENTS:-8}"
OUT="${LOAD_SMOKE_OUT:-BENCH_PR6.json}"
BINDIR="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

say() { echo "load-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

go build -o "$BINDIR/dimaserve" ./cmd/dimaserve
go build -o "$BINDIR/dimaload" ./cmd/dimaload

"$BINDIR/dimaserve" -addr "$ADDR" -workers 4 -queue 64 &
SERVER_PID=$!

say "waiting for $BASE/healthz"
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && die "server did not come up"
    sleep 0.2
done

# The burst: dimaload exits nonzero on any error-budget violation, so a
# plain failure here fails the smoke.
say "driving $CLIENTS clients for $DURATION"
"$BINDIR/dimaload" -url "$BASE" -clients "$CLIENTS" -duration "$DURATION" \
    -max-error-rate 0 -out "$OUT" || die "dimaload reported SLO violations"
[ -s "$OUT" ] || die "no report written to $OUT"

# The scrape: the exposition must be non-empty and carry the service
# latency histograms the burst just exercised.
SCRAPE="$(mktemp)"
curl -sf "$BASE/metrics" >"$SCRAPE" || die "/metrics not scrapeable"
[ -s "$SCRAPE" ] || die "/metrics scrape is empty"
for want in \
    'serve_jobs_submitted_total' \
    'serve_run_usec_bucket' \
    'serve_queue_wait_usec_count' \
    'serve_mutate_repair_usec_count' \
    'go_goroutines'; do
    grep -q "$want" "$SCRAPE" || die "/metrics missing $want"
done
grep '^serve_jobs_submitted_total ' "$SCRAPE" | grep -qv ' 0$' \
    || die "burst left serve_jobs_submitted_total at zero"

kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && die "server did not drain after SIGTERM"
    sleep 0.2
done
trap - EXIT
say "PASS ($(grep -c . "$SCRAPE") exposition lines, report in $OUT)"
