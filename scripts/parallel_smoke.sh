#!/bin/sh
# parallel_smoke.sh — abbreviated shard worker-scaling sweep for CI,
# run under the race detector: the same Algorithm 1 instance colored at
# workers=1 and workers=8 (oversubscribing small runners, which is the
# point — barriers get scrambled schedules), with the sweep itself
# asserting every shard coloring is byte-identical to the RunSync
# reference. Writes the reduced-scale report next to the committed
# full-scale baseline BENCH_PR8.json; CI uploads both. The timing
# columns of a -race build are meaningless and the report is not a
# benchmark — the artifact documents determinism and the record counts.
# POSIX sh.
set -eu

SCALE="${PARALLEL_SMOKE_SCALE:-0.01}"
WORKERS_SET="${PARALLEL_SMOKE_WORKERS:-1,8}"
OUT="${PARALLEL_SMOKE_OUT:-BENCH_PR8.ci.json}"

say() { echo "parallel-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

say "running dimabench -exp parallel -scale $SCALE -workers-set $WORKERS_SET under -race"
go run -race ./cmd/dimabench -exp parallel -scale "$SCALE" \
    -workers-set "$WORKERS_SET" -bench-out "$OUT" \
    || die "parallel sweep failed (coloring divergence aborts the sweep)"

[ -s "$OUT" ] || die "no report written to $OUT"
grep -q '"engine": "shard"' "$OUT" || die "report has no shard rows"
grep -q '"records"' "$OUT" || die "report has no delivery-record counts"
say "OK: report at $OUT"
