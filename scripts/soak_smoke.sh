#!/bin/sh
# soak_smoke.sh — abbreviated churn soak for CI: ~10^4 mutations across
# the three temporal workloads (sliding window, flash crowd,
# preferential growth) with automatic maintenance on. The sweep itself
# hard-asserts the long-run invariants at every epoch boundary (palette
# <= 2Δ-1 under the current Δ, bounded hole ratio, valid coloring) and
# replays every arm for determinism, so a zero exit is the verdict.
# CI runs this as the soak-smoke job and uploads the report it writes
# next to the committed full-scale baseline BENCH_PR7.json. POSIX sh.
set -eu

SCALE="${SOAK_SMOKE_SCALE:-0.01}"
OUT="${SOAK_SMOKE_OUT:-BENCH_PR7.ci.json}"

say() { echo "soak-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

say "running dimabench -exp soak -scale $SCALE"
go run ./cmd/dimabench -exp soak -scale "$SCALE" -bench-out "$OUT" \
    || die "soak sweep failed (invariant violation or replay divergence)"

[ -s "$OUT" ] || die "no report written to $OUT"
grep -q '"deterministic": true' "$OUT" || die "report does not record determinism"
grep -q '"verified": true' "$OUT" || die "report has no verified epochs"
say "OK: report at $OUT"
