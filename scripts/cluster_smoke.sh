#!/bin/sh
# cluster_smoke.sh — end-to-end smoke of the multi-process tcp engine
# (docs/CLUSTER.md): a coordinator plus 4 node processes over loopback
# color a ~10^5-edge Erdős–Rényi graph, and every output that can be
# diffed is diffed against the sequential sync reference — coloring
# JSON, per-round telemetry JSONL, and the result line — for both
# algorithms. A second arm drives the operator-launched layout through
# cmd/dimanode against a fixed port. Finally the script asserts no node
# process outlived its run. POSIX sh.
set -eu

N="${CLUSTER_SMOKE_N:-25000}"
DEG="${CLUSTER_SMOKE_DEG:-8}"
NODES="${CLUSTER_SMOKE_NODES:-4}"
SEED="${CLUSTER_SMOKE_SEED:-11}"

say() { echo "cluster-smoke: $*"; }
die() { say "FAIL: $*"; exit 1; }

TMP="$(mktemp -d "${TMPDIR:-/tmp}/dima-cluster-smoke.XXXXXX")"
# On exit, optionally preserve the run/coordinator logs (CI uploads them
# when the job fails), then clean up.
LOGDIR="${CLUSTER_SMOKE_LOGDIR:-}"
cleanup() {
    if [ -n "$LOGDIR" ]; then
        mkdir -p "$LOGDIR"
        cp "$TMP"/*.out "$LOGDIR"/ 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

say "building binaries"
go build -o "$TMP/graphgen" ./cmd/graphgen
go build -o "$TMP/dimacolor" ./cmd/dimacolor
go build -o "$TMP/dimanode" ./cmd/dimanode

say "generating er n=$N deg=$DEG (~$((N * DEG / 2)) edges)"
"$TMP/graphgen" -family er -n "$N" -deg "$DEG" -seed 3 -o "$TMP/g.graph"

# result_line FILE — extract the "result: ..." summary for comparison.
result_line() { grep '^result:' "$1" || die "no result line in $1"; }

run_pair() {
    # run_pair NAME EXTRA_FLAGS... — the same run through sync and tcp,
    # then byte-compare coloring JSON, telemetry JSONL, and result line.
    name="$1"; shift
    say "$name: sync reference"
    "$TMP/dimacolor" -in "$TMP/g.graph" -seed "$SEED" "$@" \
        -json "$TMP/$name-sync.json" -metrics-out "$TMP/$name-sync.jsonl" \
        > "$TMP/$name-sync.out" || die "$name sync run failed"
    say "$name: tcp, $NODES node processes"
    "$TMP/dimacolor" -in "$TMP/g.graph" -seed "$SEED" "$@" \
        -engine tcp -nodes "$NODES" \
        -json "$TMP/$name-tcp.json" -metrics-out "$TMP/$name-tcp.jsonl" \
        > "$TMP/$name-tcp.out" || die "$name tcp run failed"
    cmp -s "$TMP/$name-sync.json" "$TMP/$name-tcp.json" \
        || die "$name: coloring JSON differs between sync and tcp"
    cmp -s "$TMP/$name-sync.jsonl" "$TMP/$name-tcp.jsonl" \
        || die "$name: per-round telemetry differs between sync and tcp"
    sync_line="$(result_line "$TMP/$name-sync.out")"
    tcp_line="$(result_line "$TMP/$name-tcp.out")"
    [ "$sync_line" = "$tcp_line" ] \
        || die "$name: result lines differ: [$sync_line] vs [$tcp_line]"
    grep -q 'terminated=true' "$TMP/$name-tcp.out" || die "$name: tcp run truncated"
    say "$name: OK — $tcp_line"
}

run_pair alg1
run_pair alg2 -strong

# Operator-launched arm: the coordinator waits with -external -listen
# and four dimanode processes dial in, on a smaller instance (this arm
# tests the layout, not throughput).
say "external arm: coordinator + $NODES dimanode processes"
"$TMP/graphgen" -family er -n 400 -deg 6 -seed 5 -o "$TMP/small.graph"
PORT=$((10000 + ($$ % 50000)))
"$TMP/dimacolor" -in "$TMP/small.graph" -seed "$SEED" \
    > "$TMP/ext-sync.out" || die "external sync reference failed"
"$TMP/dimacolor" -in "$TMP/small.graph" -seed "$SEED" \
    -engine tcp -nodes "$NODES" -external -listen "127.0.0.1:$PORT" \
    > "$TMP/ext-tcp.out" &
COORD=$!
s=0
while [ "$s" -lt "$NODES" ]; do
    (
        tries=0
        while ! "$TMP/dimanode" -connect "127.0.0.1:$PORT" -shard "$s" -shards "$NODES" 2>/dev/null; do
            tries=$((tries + 1))
            [ "$tries" -ge 100 ] && exit 1
            sleep 0.1
        done
    ) &
    s=$((s + 1))
done
wait "$COORD" || die "external coordinator failed"
wait
ext_sync="$(result_line "$TMP/ext-sync.out")"
ext_tcp="$(result_line "$TMP/ext-tcp.out")"
[ "$ext_sync" = "$ext_tcp" ] \
    || die "external: result lines differ: [$ext_sync] vs [$ext_tcp]"
say "external arm: OK — $ext_tcp"

# Nothing built in $TMP may still be running.
if pgrep -f "$TMP/" > /dev/null 2>&1; then
    pgrep -af "$TMP/" || true
    die "leaked node or coordinator processes"
fi
say "OK: tcp engine byte-identical to sync on both algorithms, no leaked processes"
