module dima

go 1.22
