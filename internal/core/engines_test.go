package core

import (
	"dima/internal/graph"
	"dima/internal/net"
)

// shardWorkers pins net.RunShard to a fixed worker count regardless of
// Options.Workers, so the equivalence tests cover both the single-shard
// layout and a multi-shard layout with cross-shard merges.
func shardWorkers(workers int) net.Engine {
	return func(g *graph.Graph, nodes []net.Node, cfg net.Config) (net.Result, error) {
		cfg.Workers = workers
		return net.RunShard(g, nodes, cfg)
	}
}

// testEngines is the engine triple every cross-engine property test
// iterates: the equivalence guarantee is that all of them replay the
// sequential engine exactly.
var testEngines = []struct {
	name string
	run  net.Engine
}{
	{"sync", net.RunSync},
	{"chan", net.RunChan},
	{"shard-1", shardWorkers(1)},
	{"shard-3", shardWorkers(3)},
}
