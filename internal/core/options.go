package core

import (
	"dima/internal/automaton"
	"dima/internal/metrics"
	"dima/internal/net"
)

// ColorRule selects how an inviter picks the proposed color.
type ColorRule int

const (
	// LowestFirst proposes the lowest color available to both endpoints
	// per the inviter's one-hop knowledge — the paper's rule (line
	// 1.11). It concentrates color reuse at small indices, which is what
	// keeps the total palette near Δ (Conjecture 2).
	LowestFirst ColorRule = iota
	// RandomAvailable proposes a uniformly random available color from a
	// bounded window. This is the ablation arm for Conjecture 2: it
	// reduces same-round proposal collisions but scatters the palette.
	RandomAvailable
)

func (r ColorRule) String() string {
	switch r {
	case LowestFirst:
		return "lowest-first"
	case RandomAvailable:
		return "random-available"
	}
	return "unknown"
}

// Options configures a run of either algorithm. The zero value is a
// valid default configuration (deterministic seed 0, sequential engine,
// the paper's color rule and overhearing filter).
type Options struct {
	// Seed determines every random choice of the run. Runs with equal
	// seeds and inputs are identical, on either engine.
	Seed uint64
	// Engine executes the protocol; nil means net.RunSync. net.RunChan
	// runs one goroutine per vertex; net.RunShard runs Workers shard
	// goroutines.
	Engine net.Engine
	// Workers is the shard count passed to the engine via
	// net.Config.Workers; 0 means GOMAXPROCS. Only net.RunShard uses it.
	Workers int
	// Cluster, when non-nil, runs the protocol on the multi-process TCP
	// engine (net.RunTCP): Cluster.Nodes separate OS processes each own
	// a contiguous vertex shard, coordinated over loopback or a real
	// network, with results byte-identical to the in-process engines.
	// Mutually exclusive with Engine; Hook must be nil (an automaton
	// hook cannot observe nodes in another process).
	Cluster *net.TCPCluster
	// MaxCompRounds bounds the number of computation rounds; 0 means
	// 100,000. Hitting the bound yields Terminated == false.
	MaxCompRounds int
	// ColorRule selects the proposal rule; default LowestFirst (paper).
	ColorRule ColorRule
	// DisableOverhearFilter turns off the paper's Procedure 2-b fast
	// path in Algorithm 2 (responders rejecting invitations whose color
	// collides with overheard invitations). Correctness is unaffected —
	// the claim/confirm exchange still resolves conflicts — but more
	// doomed claims reach the confirm stage.
	DisableOverhearFilter bool
	// UnsafeNoConfirm disables Algorithm 2's claim/confirm exchange,
	// reverting to the paper's uncorrected protocol in which same-round
	// colorings are finalized immediately. Strong colorings produced
	// this way can be invalid; the option exists for the ablation
	// experiments and adversarial tests.
	UnsafeNoConfirm bool
	// Hook observes every automaton transition of every node.
	Hook automaton.Hook
	// Fault optionally drops message deliveries (see net.FaultInjector).
	// The paper's model assumes reliable delivery; with faults enabled
	// runs may fail to terminate and are truncated at MaxCompRounds.
	Fault net.FaultInjector
	// Recovery enables the loss-recovery extension (docs/ROBUSTNESS.md):
	// half-colored repairs via acknowledgement tracking, bounded
	// retransmission, authoritative re-responses, and negotiated reverts,
	// so runs converge to complete valid colorings under transient loss.
	// Disabled (the zero value), behavior — message streams, RNG
	// consumption, results — is byte-identical to the reliable-delivery
	// implementation.
	Recovery automaton.Recovery
	// CollectParticipation enables per-computation-round participation
	// counters (Result.Participation), used to measure the pairing
	// probability of the paper's Proposition 1 / Equation (1).
	CollectParticipation bool
	// ShardStats, when non-nil, is passed through to net.Config and
	// filled by net.RunShard with its internal hot-path counters
	// (resolved worker count, buffered delivery records, merge bucket
	// activity). Other engines ignore it. Purely observational.
	ShardStats *net.ShardStats
	// Metrics, when non-nil, receives one metrics.RoundStats per
	// computation round after the run completes: automaton activity,
	// pairing and palette progress, and traffic split by message kind.
	// Summed over the stream, the traffic and conflict fields equal this
	// Result's aggregates, on either engine. Nil (the default) skips all
	// per-round accounting.
	Metrics metrics.Sink
}

// Participation counts, for one computation round, how many nodes were
// still active and how many of them formed a pair (colored an edge or
// finalized an arc).
type Participation struct {
	Active, Paired int
}

const defaultMaxCompRounds = 100_000

func (o *Options) engine() net.Engine {
	if o.Engine == nil {
		return net.RunSync
	}
	return o.Engine
}

func (o *Options) maxCompRounds() int {
	if o.MaxCompRounds <= 0 {
		return defaultMaxCompRounds
	}
	return o.MaxCompRounds
}

// Result reports the outcome of a run.
type Result struct {
	// Colors maps graph.EdgeID (ColorEdges) or graph.ArcID (ColorStrong)
	// to the assigned color. All entries are >= 0 when Terminated.
	Colors []int
	// NumColors is the number of distinct colors used.
	NumColors int
	// MaxColor is the largest color index used, or -1 if none.
	MaxColor int
	// CompRounds is the number of computation rounds (full automaton
	// cycles) executed — the unit of the paper's O(Δ) bounds.
	CompRounds int
	// CommRounds is the number of communication rounds (3 per
	// computation round for Algorithm 1, 4 for Algorithm 2).
	CommRounds int
	// Messages, Deliveries, and Bytes aggregate traffic (see net.Result).
	Messages, Deliveries, Bytes int64
	// Terminated reports whether every node finished within the bound.
	Terminated bool
	// Aborted reports that the run's context (ColorEdgesCtx /
	// ColorStrongCtx) was canceled before the nodes finished: the engine
	// stopped at a round barrier and Colors holds the partial coloring
	// reached by then (-1 entries uncolored). Mutually exclusive with
	// Terminated.
	Aborted bool
	// DefensiveRejects counts responder-side validity rejections. The
	// protocol invariants make these impossible under reliable delivery;
	// a nonzero count under faults shows the defense working.
	DefensiveRejects int
	// ConflictsDropped counts tentative claims withdrawn by Algorithm
	// 2's confirm exchange (always 0 for Algorithm 1).
	ConflictsDropped int
	// HalfColored counts edges (or arcs) that exactly one endpoint
	// believes colored — possible only when message deliveries are
	// dropped, and the mechanism behind the conflicts the paper's
	// reliable-delivery assumption rules out. Always 0 without faults,
	// and 0 again with faults when Recovery converged.
	HalfColored int
	// Recovery-layer activity (all 0 unless Options.Recovery is enabled):
	// Retransmits counts messages re-sent after an acknowledgement
	// timeout, Repairs counts assignments completed through a recovery
	// path (adopted from a partner's authoritative state), Reverts counts
	// one-sided assignments undone by a negative acknowledgement, and
	// Probes counts status queries sent for stalled arcs.
	Retransmits, Repairs, Reverts, Probes int
	// Participation holds per-computation-round activity counters when
	// Options.CollectParticipation is set (nil otherwise).
	Participation []Participation
}

// aggregateParticipation folds per-node pairing logs into per-round
// counters. pairedOf(u) returns node u's log: one entry per computation
// round u was active in.
func aggregateParticipation(rounds int, pairedOf func(u int) []bool, n int) []Participation {
	out := make([]Participation, rounds)
	for u := 0; u < n; u++ {
		log := pairedOf(u)
		for r, p := range log {
			if r >= rounds {
				break
			}
			out[r].Active++
			if p {
				out[r].Paired++
			}
		}
	}
	return out
}

// countColors fills NumColors and MaxColor from Colors, ignoring
// unassigned (-1) entries.
func (res *Result) countColors() {
	var seen ColorSet
	res.MaxColor = -1
	for _, c := range res.Colors {
		if c < 0 {
			continue
		}
		seen.Add(c)
		if c > res.MaxColor {
			res.MaxColor = c
		}
	}
	res.NumColors = seen.Count()
}
