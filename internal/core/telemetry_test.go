package core

import (
	"reflect"
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
	"dima/internal/rng"
)

// telemetryGraphs is the test corpus for the RoundStats invariants: an
// Erdős–Rényi graph and a random regular graph, per the paper's two
// experimental graph families.
func telemetryGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	er, err := gen.ErdosRenyiAvgDegree(rng.New(7), 60, 6)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := gen.RandomRegular(rng.New(8), 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"er": er, "regular": reg}
}

// runWithMetrics executes one algorithm with a Memory sink attached.
func runWithMetrics(t *testing.T, algo string, g *graph.Graph, opt Options) (*Result, []metrics.RoundStats) {
	t.Helper()
	mem := &metrics.Memory{}
	opt.Metrics = mem
	var res *Result
	if algo == "strong" {
		res = mustColorStrong(t, graph.NewSymmetric(g), opt)
	} else {
		res = mustColorEdges(t, g, opt)
	}
	return res, mem.Rounds
}

// TestRoundStatsTotalsMatchResult is the headline acceptance check:
// RoundStats summed over the stream reproduces the Result aggregates,
// for both algorithms on both engines.
func TestRoundStatsTotalsMatchResult(t *testing.T) {
	engines := map[string]net.Engine{"sync": net.RunSync, "chan": net.RunChan}
	for gname, g := range telemetryGraphs(t) {
		for _, algo := range []string{"edges", "strong"} {
			for ename, eng := range engines {
				res, rounds := runWithMetrics(t, algo, g, Options{Seed: 11, Engine: eng})
				name := gname + "/" + algo + "/" + ename
				if len(rounds) != res.CompRounds {
					t.Fatalf("%s: %d RoundStats for %d comp rounds", name, len(rounds), res.CompRounds)
				}
				var messages, deliveries, bytes int64
				var commRounds, conflicts, rejects, paired int
				for i, rs := range rounds {
					if rs.Round != i {
						t.Fatalf("%s: round %d labeled %d", name, i, rs.Round)
					}
					messages += rs.Messages
					deliveries += rs.Deliveries
					bytes += rs.Bytes
					commRounds += rs.CommRounds
					conflicts += rs.ConflictsDropped
					rejects += rs.DefensiveRejects
					paired += rs.Paired
					var km, kd, kb int64
					for _, kt := range rs.ByKind {
						km += kt.Messages
						kd += kt.Deliveries
						kb += kt.Bytes
					}
					if km != rs.Messages || kd != rs.Deliveries || kb != rs.Bytes {
						t.Fatalf("%s: round %d ByKind split does not re-sum: %+v", name, i, rs)
					}
				}
				if messages != res.Messages || deliveries != res.Deliveries || bytes != res.Bytes {
					t.Fatalf("%s: traffic %d/%d/%d != result %d/%d/%d", name,
						messages, deliveries, bytes, res.Messages, res.Deliveries, res.Bytes)
				}
				if commRounds != res.CommRounds {
					t.Fatalf("%s: comm rounds %d != %d", name, commRounds, res.CommRounds)
				}
				if conflicts != res.ConflictsDropped || rejects != res.DefensiveRejects {
					t.Fatalf("%s: conflicts/rejects %d/%d != %d/%d", name,
						conflicts, rejects, res.ConflictsDropped, res.DefensiveRejects)
				}
				// Each pairing colors one item and involves the two
				// endpoints logging one assignment each, so Paired summed
				// over rounds is twice the item count... except that each
				// node pairs at most once per round, so Paired counts
				// node-pairings: 2 per colored item.
				last := rounds[len(rounds)-1]
				wantItems := len(res.Colors)
				if last.ColoredTotal != wantItems {
					t.Fatalf("%s: ColoredTotal %d != %d items", name, last.ColoredTotal, wantItems)
				}
				if paired != 2*wantItems {
					t.Fatalf("%s: paired sum %d != 2×%d", name, paired, wantItems)
				}
				if last.NumColors != res.NumColors || last.MaxColor != res.MaxColor {
					t.Fatalf("%s: palette %d/%d != %d/%d", name,
						last.NumColors, last.MaxColor, res.NumColors, res.MaxColor)
				}
			}
		}
	}
}

// TestRoundStatsEngineEquivalence: identical seeds produce a
// byte-identical RoundStats stream on every engine (satellite of the
// sync/chan/shard equivalence property).
func TestRoundStatsEngineEquivalence(t *testing.T) {
	for gname, g := range telemetryGraphs(t) {
		for _, algo := range []string{"edges", "strong"} {
			_, syncRounds := runWithMetrics(t, algo, g, Options{Seed: 23, Engine: net.RunSync})
			for _, eng := range testEngines[1:] {
				_, engRounds := runWithMetrics(t, algo, g, Options{Seed: 23, Engine: eng.run})
				if !reflect.DeepEqual(syncRounds, engRounds) {
					t.Fatalf("%s/%s: RoundStats streams diverge between engines\nsync: %+v\n%s: %+v",
						gname, algo, syncRounds, eng.name, engRounds)
				}
			}
		}
	}
}

// TestRoundStatsMatchParticipation: with both collectors enabled, the
// stream's Active/Paired equal Result.Participation exactly, and the
// per-round structural invariants hold.
func TestRoundStatsMatchParticipation(t *testing.T) {
	for gname, g := range telemetryGraphs(t) {
		for _, algo := range []string{"edges", "strong"} {
			res, rounds := runWithMetrics(t, algo, g, Options{Seed: 31, CollectParticipation: true})
			name := gname + "/" + algo
			if len(res.Participation) != len(rounds) {
				t.Fatalf("%s: %d participation rounds, %d RoundStats",
					name, len(res.Participation), len(rounds))
			}
			for i, rs := range rounds {
				p := res.Participation[i]
				if rs.Active != p.Active || rs.Paired != p.Paired {
					t.Fatalf("%s: round %d stats %d/%d != participation %d/%d",
						name, i, rs.Active, rs.Paired, p.Active, p.Paired)
				}
			}
		}
	}
}

// TestParticipationInvariants covers Options.CollectParticipation on
// ER and regular graphs for both algorithms: Active never increases
// and Paired never exceeds Active.
func TestParticipationInvariants(t *testing.T) {
	for gname, g := range telemetryGraphs(t) {
		for _, algo := range []string{"edges", "strong"} {
			opt := Options{Seed: 43, CollectParticipation: true}
			var res *Result
			if algo == "strong" {
				res = mustColorStrong(t, graph.NewSymmetric(g), opt)
			} else {
				res = mustColorEdges(t, g, opt)
			}
			name := gname + "/" + algo
			if len(res.Participation) == 0 {
				t.Fatalf("%s: no participation data", name)
			}
			prev := g.N() + 1
			for i, p := range res.Participation {
				if p.Active > prev {
					t.Fatalf("%s: Active increased at round %d: %d > %d", name, i, p.Active, prev)
				}
				if p.Paired > p.Active {
					t.Fatalf("%s: round %d Paired %d > Active %d", name, i, p.Paired, p.Active)
				}
				if p.Active < 0 || p.Paired < 0 {
					t.Fatalf("%s: negative counts at round %d: %+v", name, i, p)
				}
				prev = p.Active
			}
		}
	}
}

// TestRoundStatsStructural checks the per-round fields that don't map
// to a Result aggregate: the inviter/listener split, Done complement,
// and monotone palette growth.
func TestRoundStatsStructural(t *testing.T) {
	g := telemetryGraphs(t)["er"]
	for _, algo := range []string{"edges", "strong"} {
		_, rounds := runWithMetrics(t, algo, g, Options{Seed: 53})
		prevColored, prevColors := 0, 0
		for i, rs := range rounds {
			if rs.Inviters+rs.Listeners != rs.Active {
				t.Fatalf("%s: round %d inviters %d + listeners %d != active %d",
					algo, i, rs.Inviters, rs.Listeners, rs.Active)
			}
			if rs.Done != g.N()-rs.Active {
				t.Fatalf("%s: round %d done %d != %d - active %d", algo, i, rs.Done, g.N(), rs.Active)
			}
			if rs.ColoredTotal < prevColored || rs.NumColors < prevColors {
				t.Fatalf("%s: round %d progress went backwards: %+v", algo, i, rs)
			}
			prevColored, prevColors = rs.ColoredTotal, rs.NumColors
		}
	}
}

// TestBroadcastSinkDoesNotPerturbRun is the serving-telemetry
// acceptance property: attaching a BroadcastSink (composed with a
// Memory sink, as dimaserve does) — including one with a slow,
// never-reading subscriber — yields byte-identical Results and
// RoundStats streams to a nil-sink run, on every engine. The fan-out
// must never block or reorder the emitting path.
func TestBroadcastSinkDoesNotPerturbRun(t *testing.T) {
	for gname, g := range telemetryGraphs(t) {
		for _, algo := range []string{"edges", "strong"} {
			for _, eng := range testEngines {
				name := gname + "/" + algo + "/" + eng.name
				plainOpt := Options{Seed: 71, Engine: eng.run}
				var plain *Result
				if algo == "strong" {
					plain = mustColorStrong(t, graph.NewSymmetric(g), plainOpt)
				} else {
					plain = mustColorEdges(t, g, plainOpt)
				}

				bcast := metrics.NewBroadcastSink(16)
				slow := bcast.Subscribe(2) // fills after 2 events, then drops
				defer slow.Cancel()
				mem := &metrics.Memory{}
				opt := Options{Seed: 71, Engine: eng.run, Metrics: metrics.Multi(mem, bcast)}
				var observed *Result
				if algo == "strong" {
					observed = mustColorStrong(t, graph.NewSymmetric(g), opt)
				} else {
					observed = mustColorEdges(t, g, opt)
				}

				if !reflect.DeepEqual(plain, observed) {
					t.Fatalf("%s: attaching a BroadcastSink changed the Result", name)
				}
				// The broadcast published exactly the Memory stream, in order.
				if int(bcast.Seq()) != len(mem.Rounds) {
					t.Fatalf("%s: broadcast published %d events for %d rounds",
						name, bcast.Seq(), len(mem.Rounds))
				}
				for i, ev := range bcast.Replay() {
					rs, ok := ev.Data.(metrics.RoundStats)
					if !ok || !reflect.DeepEqual(rs, mem.Rounds[int(ev.Seq)-1]) {
						t.Fatalf("%s: broadcast event %d diverges from the Memory stream", name, i)
					}
				}
				if dropped := bcast.DroppedTotal(); len(mem.Rounds) > 2 && dropped == 0 {
					t.Fatalf("%s: slow subscriber dropped nothing over %d rounds",
						name, len(mem.Rounds))
				}
			}
		}
	}
}

// TestBroadcastSinkStreamEquivalence: the event stream a BroadcastSink
// publishes is itself engine-independent — the same seed yields the
// same (Seq, RoundStats) sequence on every engine.
func TestBroadcastSinkStreamEquivalence(t *testing.T) {
	g := telemetryGraphs(t)["er"]
	for _, algo := range []string{"edges", "strong"} {
		var ref []metrics.Event
		for _, eng := range testEngines {
			bcast := metrics.NewBroadcastSink(0)
			opt := Options{Seed: 83, Engine: eng.run, Metrics: bcast}
			if algo == "strong" {
				mustColorStrong(t, graph.NewSymmetric(g), opt)
			} else {
				mustColorEdges(t, g, opt)
			}
			events := bcast.Replay()
			if ref == nil {
				ref = events
				continue
			}
			if !reflect.DeepEqual(ref, events) {
				t.Fatalf("%s/%s: broadcast stream diverges from sync engine", algo, eng.name)
			}
		}
	}
}

// TestMetricsNilSinkUnchanged: enabling metrics must not perturb the
// run itself — same seed with and without a sink yields the same
// coloring and traffic (the telemetry draws no randomness).
func TestMetricsNilSinkUnchanged(t *testing.T) {
	g := telemetryGraphs(t)["er"]
	plain := mustColorEdges(t, g, Options{Seed: 61})
	observed, _ := runWithMetrics(t, "edges", g, Options{Seed: 61})
	if !reflect.DeepEqual(plain.Colors, observed.Colors) ||
		plain.Messages != observed.Messages || plain.CompRounds != observed.CompRounds {
		t.Fatal("attaching a metrics sink changed the run")
	}
}
