package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dima/internal/automaton"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
	"dima/internal/rng"
)

// These tests pin RunShard's determinism contract where it is easiest
// to break: worker counts far beyond the core count (every barrier is a
// scheduler scramble), combined with faults, the recovery protocol, and
// mid-round cancellation. Run under -race they are also the engine's
// data-race probe — the CI race job executes the whole package.

// oversubscribedWorkers is the worker ladder: 1 is the degenerate
// single-shard layout, the middle entries exercise real cross-shard
// merges, and the last two oversubscribe any machine this test runs on
// (the engine clamps workers to the vertex count).
func oversubscribedWorkers(n int) []int {
	return []int{1, 2, 8, 8 * runtime.NumCPU(), n + 13}
}

// TestShardOversubscribedFaultyRecoveryIdentical demands byte-identical
// colorings, Results, and per-round metric streams from every worker
// count, under message loss with the recovery protocol active — the
// adversarial corner of the equivalence guarantee.
func TestShardOversubscribedFaultyRecoveryIdentical(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(21), 90, 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (*Result, []metrics.RoundStats, net.ShardStats) {
		t.Helper()
		mem := &metrics.Memory{}
		var ss net.ShardStats
		res, err := ColorEdges(g, Options{
			Seed:       13,
			Engine:     net.RunShard,
			Workers:    workers,
			Fault:      net.DropRate{Seed: 4, P: 0.12},
			Recovery:   automaton.Recovery{Enabled: true},
			Metrics:    mem,
			ShardStats: &ss,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Terminated {
			t.Fatalf("workers=%d: truncated at %d rounds", workers, res.CompRounds)
		}
		return res, mem.Rounds, ss
	}
	want, wantRounds, _ := run(1)
	for _, w := range oversubscribedWorkers(g.N())[1:] {
		res, rounds, ss := run(w)
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("workers=%d: Result diverged from workers=1:\n%+v\n%+v", w, res, want)
		}
		if !reflect.DeepEqual(rounds, wantRounds) {
			t.Fatalf("workers=%d: per-round metric stream diverged from workers=1", w)
		}
		wantW := w
		if wantW > g.N() {
			wantW = g.N()
		}
		if ss.Workers != wantW {
			t.Fatalf("workers=%d: ShardStats resolved %d workers, want %d", w, ss.Workers, wantW)
		}
		if ss.Records <= 0 || ss.Records > want.Deliveries {
			t.Fatalf("workers=%d: records %d out of range (deliveries %d)", w, ss.Records, want.Deliveries)
		}
	}
}

// TestShardOversubscribedCancelIdentical cancels at a fixed round
// barrier on every worker count and demands the identical partial
// coloring, then checks the worker goroutines are gone — oversubscribed
// pools must tear down within one barrier like right-sized ones.
func TestShardOversubscribedCancelIdentical(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(29), 90, 6)
	if err != nil {
		t.Fatal(err)
	}
	const cancelRound = 6
	runtime.GC()
	base := runtime.NumGoroutine()
	var want *Result
	for _, w := range oversubscribedWorkers(g.N()) {
		ctx, cancel := context.WithCancel(context.Background())
		shard := func(g *graph.Graph, nodes []net.Node, cfg net.Config) (net.Result, error) {
			cfg.Workers = w
			return net.RunShard(g, nodes, cfg)
		}
		res, err := ColorEdgesCtx(ctx, g, Options{
			Seed:   77,
			Engine: cancelAfter(shard, cancelRound, cancel),
			Fault:  net.DropRate{Seed: 8, P: 0.1},
		})
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !res.Aborted || res.Terminated {
			t.Fatalf("workers=%d: canceled run: aborted=%v terminated=%v", w, res.Aborted, res.Terminated)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("workers=%d: partial result diverged from workers=1:\n%+v\n%+v", w, res, want)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Fatalf("%d goroutines after canceled oversubscribed runs, baseline %d", got, base)
	}
}

// TestShardStatsReliableAmplification pins the fast path's headline
// property: with reliable delivery the engine buffers one record per
// (message, destination shard), so Records/Messages is bounded by the
// worker count and far below Deliveries/Messages (≈ average degree).
func TestShardStatsReliableAmplification(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(31), 400, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		var ss net.ShardStats
		res, err := ColorEdges(g, Options{Seed: 3, Engine: net.RunShard, Workers: w, ShardStats: &ss})
		if err != nil {
			t.Fatal(err)
		}
		if ss.Records > res.Messages*int64(w) {
			t.Fatalf("workers=%d: %d records for %d messages — more than workers per message",
				w, ss.Records, res.Messages)
		}
		if ss.Records > res.Deliveries {
			t.Fatalf("workers=%d: records %d exceed deliveries %d", w, ss.Records, res.Deliveries)
		}
		if w > 1 && ss.MergeSkips <= 0 {
			t.Fatalf("workers=%d: merge phase skipped no buckets: %+v", w, ss)
		}
		if ss.MergeScans <= 0 {
			t.Fatalf("workers=%d: merge phase scanned no buckets: %+v", w, ss)
		}
	}
}
