package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
	"dima/internal/rng"
)

// Cluster support for the multi-process TCP engine (net.RunTCP).
//
// A node process rebuilds its vertex shard from three inputs the
// coordinator ships in the welcome frame: the graph, a factory name,
// and the options blob encoded here. Construction must be byte-
// identical on both sides — rng.Rand.Derive is a pure function of the
// parent state and the index, so remote newECNode/newSCNode calls get
// exactly the RNG streams the coordinator's twins got. After the run
// the remote nodes' harvestable state (the fields colorEdges and
// ColorStrongCtx read during assembly) is restored into the twins via
// the StateNode methods below.

// Factory names are versioned: any change to node construction, the
// options blob, or the state encoding must bump them so mixed-version
// clusters fail the factory lookup instead of diverging silently.
const (
	edgeFactoryName   = "dima/edge/v1"
	strongFactoryName = "dima/strong/v1"
)

func init() {
	net.RegisterNodeFactory(edgeFactoryName, edgeClusterFactory)
	net.RegisterNodeFactory(strongFactoryName, strongClusterFactory)
}

// clusterEngine validates that the configured cluster run is possible
// and returns the TCP engine closed over this algorithm's factory.
// constrained marks the ColorEdgesConstrained path, whose forbidden
// sets do not travel in the options blob.
func (o *Options) clusterEngine(factory string, constrained bool) (net.Engine, error) {
	if o.Engine != nil {
		return nil, fmt.Errorf("core: Options.Engine and Options.Cluster are mutually exclusive")
	}
	if o.Hook != nil {
		return nil, fmt.Errorf("core: automaton hooks cannot cross process boundaries; unset Options.Hook for cluster runs")
	}
	if constrained {
		return nil, fmt.Errorf("core: constrained coloring is not supported on the tcp engine")
	}
	return o.Cluster.Engine(net.NodeSpec{
		Factory: factory,
		Spec:    appendClusterOptions(nil, o),
	}), nil
}

// Option flag bits of the cluster blob.
const (
	cofRandomColorRule = 1 << 0 // ColorRule == RandomAvailable
	cofNoOverhear      = 1 << 1 // DisableOverhearFilter
	cofNoConfirm       = 1 << 2 // UnsafeNoConfirm
	cofRecovery        = 1 << 3 // Recovery.Enabled
	cofParticipation   = 1 << 4 // CollectParticipation
	cofTelemetry       = 1 << 5 // Metrics != nil (nodes keep event logs)
)

// appendClusterOptions encodes the Options fields that influence node
// behavior: seed, the behavior flags, and the recovery tuning. Engine-
// side concerns (Fault, Observe, MaxCompRounds, Workers) stay at the
// coordinator and are deliberately absent.
func appendClusterOptions(buf []byte, o *Options) []byte {
	buf = binary.AppendUvarint(buf, o.Seed)
	var flags byte
	if o.ColorRule == RandomAvailable {
		flags |= cofRandomColorRule
	}
	if o.DisableOverhearFilter {
		flags |= cofNoOverhear
	}
	if o.UnsafeNoConfirm {
		flags |= cofNoConfirm
	}
	if o.Recovery.Enabled {
		flags |= cofRecovery
	}
	if o.CollectParticipation {
		flags |= cofParticipation
	}
	if o.Metrics != nil {
		flags |= cofTelemetry
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(o.Recovery.TimeoutRounds))
	buf = binary.AppendUvarint(buf, uint64(o.Recovery.RetryBudget))
	return buf
}

// decodeClusterOptions rebuilds the Options a node process constructs
// its shard with. Strict: unknown flags and trailing bytes are errors.
func decodeClusterOptions(spec []byte) (*Options, error) {
	d := stateDec{buf: spec}
	o := &Options{}
	o.Seed = d.uvarint("seed")
	flags := d.byte("option flags")
	o.Recovery.TimeoutRounds = d.count("recovery timeout")
	o.Recovery.RetryBudget = d.count("recovery budget")
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after options blob", len(d.buf))
	}
	if flags&^byte(cofRandomColorRule|cofNoOverhear|cofNoConfirm|cofRecovery|cofParticipation|cofTelemetry) != 0 {
		return nil, fmt.Errorf("core: unknown option flag bits %#x", flags)
	}
	if flags&cofRandomColorRule != 0 {
		o.ColorRule = RandomAvailable
	}
	o.DisableOverhearFilter = flags&cofNoOverhear != 0
	o.UnsafeNoConfirm = flags&cofNoConfirm != 0
	o.Recovery.Enabled = flags&cofRecovery != 0
	o.CollectParticipation = flags&cofParticipation != 0
	if flags&cofTelemetry != 0 {
		// The node keeps its telemetry event log (obs == true) for the
		// harvest; per-round engine stats are the coordinator's job.
		o.Metrics = discardSink{}
	}
	return o, nil
}

// discardSink makes opt.Metrics non-nil on node processes — switching
// the nodes' event logging on — without emitting anything locally.
type discardSink struct{}

func (discardSink) EmitRound(metrics.RoundStats) {}

func edgeClusterFactory(g *graph.Graph, spec []byte, lo, hi int) ([]net.Node, error) {
	opt, err := decodeClusterOptions(spec)
	if err != nil {
		return nil, err
	}
	base := rng.New(opt.Seed)
	nodes := make([]net.Node, 0, hi-lo)
	for u := lo; u < hi; u++ {
		nodes = append(nodes, newECNode(g, u, base.Derive(uint64(u)), opt))
	}
	return nodes, nil
}

func strongClusterFactory(g *graph.Graph, spec []byte, lo, hi int) ([]net.Node, error) {
	opt, err := decodeClusterOptions(spec)
	if err != nil {
		return nil, err
	}
	d := graph.NewSymmetric(g)
	base := rng.New(opt.Seed)
	nodes := make([]net.Node, 0, hi-lo)
	for u := lo; u < hi; u++ {
		nodes = append(nodes, newSCNode(d, u, base.Derive(uint64(u)), opt))
	}
	return nodes, nil
}

// State encodings. Only the fields the post-run assembly reads survive
// the harvest: the color map, the defensive/recovery counters, the
// participation log, and the telemetry event log. Mid-negotiation state
// (pending invitations, acknowledgement clocks) dies with the process —
// by the time a harvest happens the run is over at a round barrier, and
// assembly never looks at it.

func (n *ecNode) AppendState(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(n.defensiveRejects))
	buf = appendRecCounters(buf, &n.recC)
	buf = appendColorMap(buf, n.colors)
	buf = appendBoolLog(buf, n.paired)
	return appendTelemetryLog(buf, &n.tel)
}

func (n *ecNode) RestoreState(data []byte) error {
	d := stateDec{buf: data}
	n.defensiveRejects = d.count("defensive rejects")
	d.recCounters(&n.recC)
	d.colorMapEdge(n.colors)
	n.paired = d.boolLog("participation log")
	d.telemetryLog(&n.tel)
	return d.finish("edge node state")
}

func (n *scNode) AppendState(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(n.defensiveRejects))
	buf = binary.AppendUvarint(buf, uint64(n.conflictsDropped))
	buf = appendRecCounters(buf, &n.recC)
	buf = appendColorMapArc(buf, n.colors)
	buf = appendBoolLog(buf, n.paired)
	return appendTelemetryLog(buf, &n.tel)
}

func (n *scNode) RestoreState(data []byte) error {
	d := stateDec{buf: data}
	n.defensiveRejects = d.count("defensive rejects")
	n.conflictsDropped = d.count("conflicts dropped")
	d.recCounters(&n.recC)
	d.colorMapArc(n.colors)
	n.paired = d.boolLog("participation log")
	d.telemetryLog(&n.tel)
	return d.finish("strong node state")
}

func appendRecCounters(buf []byte, c *recCounters) []byte {
	buf = binary.AppendUvarint(buf, uint64(c.retransmits))
	buf = binary.AppendUvarint(buf, uint64(c.repairs))
	buf = binary.AppendUvarint(buf, uint64(c.reverts))
	return binary.AppendUvarint(buf, uint64(c.probes))
}

// appendColorMap encodes an id → color map sorted by id, so the
// encoding is deterministic regardless of map iteration order.
func appendColorMap(buf []byte, m map[graph.EdgeID]int) []byte {
	keys := make([]int, 0, len(m))
	for e := range m {
		keys = append(keys, int(e))
	}
	sort.Ints(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, e := range keys {
		buf = binary.AppendUvarint(buf, uint64(e))
		buf = binary.AppendUvarint(buf, uint64(m[graph.EdgeID(e)]))
	}
	return buf
}

func appendColorMapArc(buf []byte, m map[graph.ArcID]int) []byte {
	keys := make([]int, 0, len(m))
	for a := range m {
		keys = append(keys, int(a))
	}
	sort.Ints(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, a := range keys {
		buf = binary.AppendUvarint(buf, uint64(a))
		buf = binary.AppendUvarint(buf, uint64(m[graph.ArcID(a)]))
	}
	return buf
}

func appendBoolLog(buf []byte, log []bool) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(log)))
	for _, b := range log {
		v := byte(0)
		if b {
			v = 1
		}
		buf = append(buf, v)
	}
	return buf
}

func appendTelemetryLog(buf []byte, t *nodeTelemetry) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t.rounds)))
	for _, ev := range t.rounds {
		for _, v := range [...]int{ev.active, ev.invited, ev.listened, ev.paired, ev.rejects,
			ev.dropped, ev.retransmits, ev.repairs, ev.reverts, ev.probes} {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.assigns)))
	for _, a := range t.assigns {
		buf = binary.AppendUvarint(buf, uint64(a.round))
		buf = binary.AppendUvarint(buf, uint64(a.item))
		buf = binary.AppendUvarint(buf, uint64(a.color))
	}
	return buf
}

// stateDec is a strict cursor over a state or options blob, latching
// the first error.
type stateDec struct {
	buf []byte
	err error
}

func (d *stateDec) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("core: truncated %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count decodes a non-negative int-sized value.
func (d *stateDec) count(what string) int {
	v := d.uvarint(what)
	if d.err == nil && v > 1<<62 {
		d.err = fmt.Errorf("core: implausible %s %d", what, v)
		return 0
	}
	return int(v)
}

func (d *stateDec) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("core: truncated %s", what)
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *stateDec) recCounters(c *recCounters) {
	c.retransmits = d.count("retransmit counter")
	c.repairs = d.count("repair counter")
	c.reverts = d.count("revert counter")
	c.probes = d.count("probe counter")
}

func (d *stateDec) colorMapEdge(m map[graph.EdgeID]int) {
	count := d.count("color count")
	for i := 0; i < count && d.err == nil; i++ {
		e := d.count("edge id")
		c := d.count("edge color")
		m[graph.EdgeID(e)] = c
	}
}

func (d *stateDec) colorMapArc(m map[graph.ArcID]int) {
	count := d.count("color count")
	for i := 0; i < count && d.err == nil; i++ {
		a := d.count("arc id")
		c := d.count("arc color")
		m[graph.ArcID(a)] = c
	}
}

func (d *stateDec) boolLog(what string) []bool {
	count := d.count(what + " length")
	if d.err != nil {
		return nil
	}
	if count > len(d.buf) {
		d.err = fmt.Errorf("core: %s of %d entries exceeds %d remaining bytes", what, count, len(d.buf))
		return nil
	}
	if count == 0 {
		return nil
	}
	log := make([]bool, count)
	for i := range log {
		switch d.buf[i] {
		case 0:
		case 1:
			log[i] = true
		default:
			d.err = fmt.Errorf("core: bad %s byte %#x", what, d.buf[i])
			return nil
		}
	}
	d.buf = d.buf[count:]
	return log
}

func (d *stateDec) telemetryLog(t *nodeTelemetry) {
	rounds := d.count("telemetry round count")
	if d.err != nil {
		return
	}
	// Each round record costs at least 10 bytes on the wire.
	if rounds > len(d.buf)/10+1 {
		d.err = fmt.Errorf("core: implausible telemetry round count %d", rounds)
		return
	}
	if rounds > 0 {
		t.rounds = make([]nodeRoundEvents, rounds)
		for i := range t.rounds {
			ev := &t.rounds[i]
			ev.active = d.count("telemetry counter")
			ev.invited = d.count("telemetry counter")
			ev.listened = d.count("telemetry counter")
			ev.paired = d.count("telemetry counter")
			ev.rejects = d.count("telemetry counter")
			ev.dropped = d.count("telemetry counter")
			ev.retransmits = d.count("telemetry counter")
			ev.repairs = d.count("telemetry counter")
			ev.reverts = d.count("telemetry counter")
			ev.probes = d.count("telemetry counter")
		}
	}
	assigns := d.count("telemetry assign count")
	if d.err != nil {
		return
	}
	if assigns > len(d.buf)/3+1 {
		d.err = fmt.Errorf("core: implausible telemetry assign count %d", assigns)
		return
	}
	if assigns > 0 {
		t.assigns = make([]assignEvent, assigns)
		for i := range t.assigns {
			t.assigns[i].round = d.count("assign round")
			t.assigns[i].item = d.count("assign item")
			t.assigns[i].color = d.count("assign color")
		}
	}
}

func (d *stateDec) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("core: %d trailing bytes after %s", len(d.buf), what)
	}
	return nil
}
