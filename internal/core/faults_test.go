package core

import (
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// A transient blackout delays the protocol but cannot corrupt it: after
// the outage ends the run completes with a valid coloring. Note that
// responses lost *during* the outage create half-colored edges whose
// retries are defensively rejected, so the run can legitimately fail to
// color those edges — the assertion is about what IS colored.
func TestEdgeColorSurvivesBlackout(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(40), 80, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColorEdges(g, Options{
		Seed:          41,
		MaxCompRounds: 500,
		Fault:         net.Blackout{FromRound: 6, ToRound: 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verify.EdgeColoring(g, res.Colors) {
		if v.Kind != "uncolored" {
			if res.HalfColored == 0 {
				t.Fatalf("conflict without half-colored edges after blackout: %v", v)
			}
		}
	}
	colored := 0
	for _, c := range res.Colors {
		if c >= 0 {
			colored++
		}
	}
	if colored < g.M()/2 {
		t.Fatalf("only %d of %d edges colored after blackout recovery", colored, g.M())
	}
}

// A clean partition is indistinguishable, on each side, from running on
// the induced subgraphs: intra-side edges get valid colors, cross edges
// stay uncolored, and the run never terminates (cross negotiations
// cannot complete) — exactly the model's prediction.
func TestEdgeColorUnderPartition(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(42), 60, 6)
	if err != nil {
		t.Fatal(err)
	}
	side := make([]bool, g.N())
	for u := 0; u < g.N()/2; u++ {
		side[u] = true
	}
	crossEdges := 0
	for _, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			crossEdges++
		}
	}
	if crossEdges == 0 {
		t.Skip("random instance has no cross edges")
	}
	res, err := ColorEdges(g, Options{
		Seed:          43,
		MaxCompRounds: 120,
		Fault:         net.Partition{Side: side},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Fatal("terminated despite a partition cutting live edges")
	}
	for id, e := range g.Edges() {
		cross := side[e.U] != side[e.V]
		if cross && res.Colors[id] >= 0 {
			t.Fatalf("cross edge %v colored through a partition", e)
		}
	}
	// Intra-side colorings must be proper.
	for _, v := range verify.EdgeColoring(g, res.Colors) {
		if v.Kind != "uncolored" {
			t.Fatalf("intra-side conflict: %v", v)
		}
	}
	if res.HalfColored != 0 {
		t.Fatalf("%d half-colored edges under a clean partition", res.HalfColored)
	}
}

// DropLink kills one direction of one link: the edge across it can still
// be colored (invitations can flow the other way), and everything stays
// valid.
func TestEdgeColorOneWayLinkLoss(t *testing.T) {
	g := gen.Cycle(8)
	res, err := ColorEdges(g, Options{
		Seed:          44,
		MaxCompRounds: 400,
		Fault:         net.DropLink{From: 0, To: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verify.EdgeColoring(g, res.Colors) {
		if v.Kind != "uncolored" && res.HalfColored == 0 {
			t.Fatalf("conflict: %v", v)
		}
	}
}

func TestStrongColorUnderDropRate(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(45), 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	res, err := ColorStrong(d, Options{
		Seed:          46,
		MaxCompRounds: 300,
		Fault:         net.DropRate{Seed: 9, P: 0.15},
	})
	if err != nil {
		t.Fatal(err)
	}
	conflicts := 0
	for _, v := range verify.StrongColoring(d, res.Colors) {
		if v.Kind == "distance2" {
			conflicts++
		}
	}
	if conflicts > 0 && res.HalfColored == 0 {
		t.Fatalf("%d conflicts without half-colored arcs", conflicts)
	}
}

// Large-graph stress: beyond the paper's sizes, both algorithms hold
// their shapes. Skipped in -short runs.
func TestStressLargeGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	g, err := gen.ErdosRenyiAvgDegree(rng.New(47), 2000, 12)
	if err != nil {
		t.Fatal(err)
	}
	res := mustColorEdges(t, g, Options{Seed: 48})
	delta := g.MaxDegree()
	if res.NumColors > delta+3 {
		t.Fatalf("large ER used %d colors at Δ=%d", res.NumColors, delta)
	}
	if res.CompRounds > 4*delta {
		t.Fatalf("large ER took %d rounds at Δ=%d", res.CompRounds, delta)
	}
	// Strong coloring on a moderately large digraph.
	g2, err := gen.ErdosRenyiAvgDegree(rng.New(49), 600, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g2)
	sres := mustColorStrong(t, d, Options{Seed: 50})
	if lb := verify.StrongLowerBound(d); sres.NumColors < lb {
		t.Fatalf("strong coloring used %d colors below the structural bound %d", sres.NumColors, lb)
	}
}

// The goroutine runtime under stress with many nodes, exercising the
// coordinator and link-channel machinery at scale.
func TestStressChanEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	g, err := gen.ErdosRenyiAvgDegree(rng.New(51), 800, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := mustColorEdges(t, g, Options{Seed: 52, Engine: net.RunChan})
	if res.DefensiveRejects != 0 {
		t.Fatalf("defensive rejects on chan engine: %d", res.DefensiveRejects)
	}
}
