package core

import (
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/rng"
)

// Each node colors at most one incident edge per computation round (the
// matching property), so the run cannot beat Δ rounds: the max-degree
// vertex alone needs that many.
func TestEdgeColorRoundsAtLeastDelta(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed+500), 100, 8)
		if err != nil {
			t.Fatal(err)
		}
		res := mustColorEdges(t, g, Options{Seed: seed})
		if res.CompRounds < g.MaxDegree() {
			t.Fatalf("seed %d: %d rounds < Δ = %d breaks the matching property",
				seed, res.CompRounds, g.MaxDegree())
		}
	}
}

// Broadcast discipline: Algorithm 1 nodes send at most one message per
// communication round, so total broadcasts are bounded by N × rounds.
func TestEdgeColorMessageDiscipline(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(510), 120, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := mustColorEdges(t, g, Options{Seed: 511})
	bound := int64(g.N()) * int64(res.CommRounds)
	if res.Messages > bound {
		t.Fatalf("%d messages exceed N×commRounds = %d", res.Messages, bound)
	}
	// And the run cannot be silent: at least one invitation per edge.
	if res.Messages < int64(g.M()) {
		t.Fatalf("%d messages below M = %d", res.Messages, g.M())
	}
}

// Algorithm 2 nodes send at most two messages per communication round
// (a decide plus a dead-list delta in the same phase).
func TestStrongColorMessageDiscipline(t *testing.T) {
	d := symER(t, 512, 80, 6)
	res := mustColorStrong(t, d, Options{Seed: 513})
	bound := 2 * int64(d.N()) * int64(res.CommRounds)
	if res.Messages > bound {
		t.Fatalf("%d messages exceed 2×N×commRounds = %d", res.Messages, bound)
	}
}

// Arc direction bookkeeping: every arc in the result is colored, and the
// number of distinct channels at any single vertex's incident arcs
// equals its incident arc count (all arcs at one vertex mutually
// conflict).
func TestStrongColorPerVertexChannelsDistinct(t *testing.T) {
	d := symER(t, 514, 60, 5)
	res := mustColorStrong(t, d, Options{Seed: 515})
	g := d.Under()
	for u := 0; u < g.N(); u++ {
		seen := map[int]bool{}
		count := 0
		for _, a := range d.OutArcs(u) {
			for _, arc := range []graph.ArcID{a, d.ReverseOf(a)} {
				seen[res.Colors[arc]] = true
				count++
			}
		}
		if len(seen) != count {
			t.Fatalf("vertex %d: %d distinct channels for %d incident arcs", u, len(seen), count)
		}
	}
}

// Bipartite graphs are class 1 (χ' = Δ, König): the distributed
// algorithm won't always find a Δ-coloring, but it must stay within the
// Δ+1 band that Conjecture 2 predicts for typical runs on most seeds.
func TestEdgeColorBipartiteQuality(t *testing.T) {
	within := 0
	const runs = 10
	for seed := uint64(0); seed < runs; seed++ {
		g, err := gen.RandomBipartite(rng.New(520+seed), 40, 40, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		res := mustColorEdges(t, g, Options{Seed: seed})
		if res.NumColors <= g.MaxDegree()+1 {
			within++
		}
	}
	if within < runs*7/10 {
		t.Fatalf("only %d of %d bipartite runs within Δ+1", within, runs)
	}
}

// The color indices are dense at the bottom: with the lowest-first rule
// the palette has no holes (every color below MaxColor is used).
func TestEdgeColorPaletteDense(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(530), 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := mustColorEdges(t, g, Options{Seed: 531})
	used := map[int]bool{}
	for _, c := range res.Colors {
		used[c] = true
	}
	for c := 0; c <= res.MaxColor; c++ {
		if !used[c] {
			t.Fatalf("palette hole at color %d (max %d)", c, res.MaxColor)
		}
	}
	if res.NumColors != res.MaxColor+1 {
		t.Fatalf("NumColors %d != MaxColor+1 %d", res.NumColors, res.MaxColor+1)
	}
}

// Cross-endpoint consistency at scale: the same map is assembled from
// two node-local copies; a disagreement would surface as an error.
func TestEdgeColorManySeedsNoDisagreement(t *testing.T) {
	g := gen.Grid(12, 12)
	for seed := uint64(0); seed < 25; seed++ {
		if _, err := ColorEdges(g, Options{Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
