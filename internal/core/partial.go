package core

import (
	"context"
	"fmt"

	"dima/internal/graph"
)

// ColorEdgesConstrained runs Algorithm 1 on g under per-vertex external
// color constraints: forbidden[u] (nil allowed) holds colors that vertex
// u must not place on any of its edges. The automaton behaves exactly as
// if those colors were already assigned to edges of u before round one —
// they are folded into u's live list and into the dead lists u's
// neighbors keep for u, which models the one-hop exchange broadcasts
// that would have announced them.
//
// This is the repair primitive of the dynamic recoloring subsystem
// (internal/dynamic): g is a sub-network view containing only the
// uncolored frontier, and forbidden carries the colors of the
// surrounding intact coloring. A nil forbidden slice makes the run
// byte-identical to ColorEdgesCtx with the same options.
func ColorEdgesConstrained(ctx context.Context, g *graph.Graph, forbidden []*ColorSet, opt Options) (*Result, error) {
	if forbidden != nil && len(forbidden) != g.N() {
		return nil, fmt.Errorf("core: %d forbidden sets for %d vertices", len(forbidden), g.N())
	}
	return colorEdges(ctx, g, forbidden, opt)
}
