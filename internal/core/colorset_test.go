package core

import (
	"testing"
	"testing/quick"
)

func TestColorSetZeroValue(t *testing.T) {
	var s ColorSet
	if s.Has(0) || s.Count() != 0 || s.Max() != -1 {
		t.Fatal("zero ColorSet not empty")
	}
}

func TestColorSetAddHas(t *testing.T) {
	var s ColorSet
	for _, c := range []int{0, 1, 63, 64, 65, 1000} {
		s.Add(c)
		if !s.Has(c) {
			t.Fatalf("Has(%d) false after Add", c)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	if s.Max() != 1000 {
		t.Fatalf("Max = %d, want 1000", s.Max())
	}
	if s.Has(2) || s.Has(999) {
		t.Fatal("Has true for absent colors")
	}
	if s.Has(-1) {
		t.Fatal("Has(-1) true")
	}
}

func TestColorSetAddIdempotent(t *testing.T) {
	var s ColorSet
	s.Add(5)
	s.Add(5)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after duplicate Add", s.Count())
	}
}

func TestColorSetAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var s ColorSet
	s.Add(-1)
}

func TestColorSetClone(t *testing.T) {
	var s ColorSet
	s.Add(3)
	c := s.Clone()
	c.Add(7)
	if s.Has(7) {
		t.Fatal("Clone shares storage")
	}
	if !c.Has(3) {
		t.Fatal("Clone lost contents")
	}
}

func TestLowestFreeEmpty(t *testing.T) {
	if got := LowestFree(); got != 0 {
		t.Fatalf("LowestFree() = %d", got)
	}
	if got := LowestFree(nil, nil); got != 0 {
		t.Fatalf("LowestFree(nil,nil) = %d", got)
	}
}

func TestLowestFreeSkipsUnion(t *testing.T) {
	var a, b ColorSet
	a.Add(0)
	a.Add(2)
	b.Add(1)
	if got := LowestFree(&a, &b); got != 3 {
		t.Fatalf("LowestFree = %d, want 3", got)
	}
}

func TestLowestFreeFullWord(t *testing.T) {
	var s ColorSet
	for c := 0; c < 64; c++ {
		s.Add(c)
	}
	if got := LowestFree(&s); got != 64 {
		t.Fatalf("LowestFree = %d, want 64", got)
	}
	s.Add(65)
	if got := LowestFree(&s); got != 64 {
		t.Fatalf("LowestFree = %d, want 64 (65 used)", got)
	}
}

func TestFreeBelow(t *testing.T) {
	var a, b ColorSet
	a.Add(0)
	b.Add(2)
	got := FreeBelow(5, &a, &b, nil)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("FreeBelow = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeBelow = %v, want %v", got, want)
		}
	}
	if FreeBelow(0, &a) != nil {
		t.Fatal("FreeBelow(0) not empty")
	}
}

func TestMaxOf(t *testing.T) {
	var a, b ColorSet
	if MaxOf(&a, &b, nil) != -1 {
		t.Fatal("MaxOf of empties not -1")
	}
	a.Add(9)
	b.Add(70)
	if MaxOf(&a, &b) != 70 {
		t.Fatalf("MaxOf = %d", MaxOf(&a, &b))
	}
}

func TestQuickLowestFreeIsFree(t *testing.T) {
	f := func(colors []uint8) bool {
		var s ColorSet
		for _, c := range colors {
			s.Add(int(c))
		}
		low := LowestFree(&s)
		if s.Has(low) {
			return false
		}
		for c := 0; c < low; c++ {
			if !s.Has(c) {
				return false // not the lowest
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(colors []uint16) bool {
		var s ColorSet
		distinct := map[uint16]bool{}
		for _, c := range colors {
			s.Add(int(c))
			distinct[c] = true
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
