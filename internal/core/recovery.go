package core

import (
	"sort"

	"dima/internal/graph"
	"dima/internal/msg"
)

// This file holds the pieces of the loss-recovery extension shared by
// both algorithms. The protocol itself is documented in
// docs/ROBUSTNESS.md; in short, recovery adds three mechanisms on top of
// the paper's reliable-delivery design:
//
//   - implicit acknowledgements: a node that committed one side of an
//     assignment watches for its partner's next broadcast naming the
//     edge, and retransmits its Response (bounded by Options.Recovery's
//     timeout and budget) until it sees one;
//   - authoritative re-responses: an invitation (or probe) for an item
//     the receiver has already colored is answered with the committed
//     color instead of being defensively rejected, letting the lagging
//     endpoint adopt it;
//   - negative acknowledgements: an endpoint that cannot adopt a
//     partner's committed color (it conflicts with its own state) sends
//     a KindAck with Keep == false, and the partner reverts its
//     one-sided assignment so the edge renegotiates from scratch.
//
// All recovery decisions are functions of (own state, sorted inbox, own
// RNG), so faulty runs stay deterministic and engine-independent.

// ecPending tracks one responder-side assignment awaiting its implicit
// acknowledgement (the partner's paint broadcast naming the edge).
type ecPending struct {
	color   int
	partner int
	age     int // computation rounds since the last (re)transmission
	tries   int // retransmissions sent
}

// recCounters aggregates one node's recovery activity; folded into
// Result and, per round, into the telemetry stream.
type recCounters struct {
	retransmits, repairs, reverts, probes int
}

// ackMsg builds a KindAck. keep == true acknowledges edge/color as
// settled; keep == false with color >= 0 demands a revert; keep == false
// with color == -1 is a status probe.
func ackMsg(from, to, edge, color int, keep bool) msg.Message {
	return msg.Message{Kind: msg.KindAck, From: from, To: to, Edge: edge, Color: color, Keep: keep}
}

// sortedEdgeKeys returns the map's keys in ascending order, so recovery
// loops iterate deterministically under both engines.
func sortedEdgeKeys(m map[graph.EdgeID]*ecPending) []graph.EdgeID {
	keys := make([]graph.EdgeID, 0, len(m))
	for e := range m {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
