package core

import (
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
)

// Adversarial tie-break stress: run strong coloring on graphs engineered
// for heavy same-round collisions (complete bipartite: many disjoint
// pairs, all mutually conflicting) across many seeds. Any asymmetric
// tie-break would surface as an endpoint disagreement or a distance-2
// violation via mustColorStrong.
func TestStrongColorTieBreakStress(t *testing.T) {
	g := graph.New(12)
	for u := 0; u < 6; u++ {
		for v := 6; v < 12; v++ {
			g.MustAddEdge(u, v)
		}
	}
	for seed := uint64(0); seed < 15; seed++ {
		d := graph.NewSymmetric(g)
		mustColorStrong(t, d, Options{Seed: seed})
	}
	// And on a long cycle, where conflicts chain: A~B~C same-color
	// cascades exercise the "drop iff any lower-priority conflicting
	// claim" rule's convergence.
	for seed := uint64(0); seed < 15; seed++ {
		d := graph.NewSymmetric(gen.Cycle(30))
		mustColorStrong(t, d, Options{Seed: seed})
	}
}
