// Package core implements the paper's two contributions on top of the
// matching-discovery automaton and the synchronous message-passing
// substrate:
//
//   - Algorithm 1: distributed edge coloring of an undirected graph
//     (ColorEdges). At most 2Δ-1 colors, O(Δ) computation rounds,
//     one-hop information.
//   - Algorithm 2 (DiMa2Ed): distributed strong (distance-2) edge
//     coloring of a symmetric digraph (ColorStrong), with the
//     claim/confirm exchange correction described in DESIGN.md.
//
// Both algorithms are implemented as net.Node state machines whose
// states are validated against the automaton's transition table, so any
// deviation from the paper's state diagram panics in tests.
package core

import "math/bits"

// ColorSet is a growable bit set over non-negative color indices. The
// zero value is an empty set ready for use.
type ColorSet struct {
	words []uint64
}

// Add inserts color c. It panics on negative colors, which would
// indicate a protocol bug.
func (s *ColorSet) Add(c int) {
	if c < 0 {
		panic("core: negative color")
	}
	w := c >> 6
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(c) & 63)
}

// Has reports whether color c is in the set.
func (s *ColorSet) Has(c int) bool {
	if c < 0 {
		return false
	}
	w := c >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(c)&63)) != 0
}

// Count returns the number of colors in the set.
func (s *ColorSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Max returns the largest color in the set, or -1 if empty.
func (s *ColorSet) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if s.words[i] != 0 {
			return i<<6 + 63 - bits.LeadingZeros64(s.words[i])
		}
	}
	return -1
}

// AddSet inserts every color of t into s. Nil t is a no-op.
func (s *ColorSet) AddSet(t *ColorSet) {
	if t == nil {
		return
	}
	for len(s.words) < len(t.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Clone returns an independent copy of s.
func (s *ColorSet) Clone() *ColorSet {
	return &ColorSet{words: append([]uint64(nil), s.words...)}
}

// LowestFree returns the smallest color contained in none of the given
// sets — the paper's "lowest indexed color available" rule (line 1.11).
// Nil sets are permitted and treated as empty.
func LowestFree(sets ...*ColorSet) int {
	for w := 0; ; w++ {
		var used uint64
		for _, s := range sets {
			if s != nil && w < len(s.words) {
				used |= s.words[w]
			}
		}
		if used != ^uint64(0) {
			return w<<6 + bits.TrailingZeros64(^used)
		}
	}
}

// FreeBelow returns all colors in [0, bound) contained in none of the
// given sets, in increasing order. Used by the random-color ablation.
func FreeBelow(bound int, sets ...*ColorSet) []int {
	var free []int
	for c := 0; c < bound; c++ {
		ok := true
		for _, s := range sets {
			if s != nil && s.Has(c) {
				ok = false
				break
			}
		}
		if ok {
			free = append(free, c)
		}
	}
	return free
}

// MaxOf returns the largest color across the given sets, or -1 if all
// are empty.
func MaxOf(sets ...*ColorSet) int {
	m := -1
	for _, s := range sets {
		if s == nil {
			continue
		}
		if v := s.Max(); v > m {
			m = v
		}
	}
	return m
}
