package core

import (
	"context"
	"reflect"
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
)

// cancelAfter wraps an engine so the run's context is canceled from the
// round observer once communication round k completes. Observers run
// sequentially at the round barrier on every engine, so the abort point
// — and therefore the partial coloring — is deterministic.
func cancelAfter(inner net.Engine, k int, cancel context.CancelFunc) net.Engine {
	return func(g *graph.Graph, nodes []net.Node, cfg net.Config) (net.Result, error) {
		prev := cfg.Observe
		cfg.Observe = func(rt net.RoundTraffic) {
			if prev != nil {
				prev(rt)
			}
			if rt.Round == k {
				cancel()
			}
		}
		return inner(g, nodes, cfg)
	}
}

// TestCancelPartialColoringIdenticalAcrossEngines cancels Algorithm 1
// at a fixed round barrier on each engine and demands the identical
// partial Result — the equivalence property extended to aborted runs.
func TestCancelPartialColoringIdenticalAcrossEngines(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(11), 120, 6)
	if err != nil {
		t.Fatal(err)
	}
	const cancelRound = 7 // mid-run: some edges colored, some not
	var want *Result
	for _, name := range []string{"sync", "chan", "shard"} {
		engine := map[string]net.Engine{"sync": net.RunSync, "chan": net.RunChan, "shard": net.RunShard}[name]
		ctx, cancel := context.WithCancel(context.Background())
		opt := Options{Seed: 42, Engine: cancelAfter(engine, cancelRound, cancel)}
		res, err := ColorEdgesCtx(ctx, g, opt)
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Aborted || res.Terminated {
			t.Fatalf("%s: canceled run: aborted=%v terminated=%v", name, res.Aborted, res.Terminated)
		}
		colored := 0
		for _, c := range res.Colors {
			if c >= 0 {
				colored++
			}
		}
		if colored == 0 || colored == len(res.Colors) {
			t.Fatalf("%s: partial coloring has %d/%d colored — cancel round not mid-run",
				name, colored, len(res.Colors))
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res.Colors, want.Colors) {
			t.Fatalf("%s: partial coloring diverged from sync", name)
		}
		if res.CompRounds != want.CompRounds || res.CommRounds != want.CommRounds ||
			res.Messages != want.Messages || res.NumColors != want.NumColors {
			t.Fatalf("%s: partial result %+v, sync says %+v", name, res, want)
		}
	}
}

// TestCancelStrongPartialAcrossEngines is the Algorithm 2 counterpart.
func TestCancelStrongPartialAcrossEngines(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(5), 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	const cancelRound = 9
	var want *Result
	for _, name := range []string{"sync", "chan", "shard"} {
		engine := map[string]net.Engine{"sync": net.RunSync, "chan": net.RunChan, "shard": net.RunShard}[name]
		ctx, cancel := context.WithCancel(context.Background())
		opt := Options{Seed: 9, Engine: cancelAfter(engine, cancelRound, cancel)}
		res, err := ColorStrongCtx(ctx, d, opt)
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Aborted || res.Terminated {
			t.Fatalf("%s: canceled run: aborted=%v terminated=%v", name, res.Aborted, res.Terminated)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res.Colors, want.Colors) {
			t.Fatalf("%s: partial strong coloring diverged from sync", name)
		}
	}
}

// TestCtxEntryPointsMatchPlain proves the context-less API is untouched:
// same seed, same graph, byte-identical colorings and aggregates.
func TestCtxEntryPointsMatchPlain(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(3), 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ColorEdges(g, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := ColorEdgesCtx(context.Background(), g, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withCtx) {
		t.Fatalf("ColorEdges and ColorEdgesCtx diverged:\n%+v\n%+v", plain, withCtx)
	}
	d := graph.NewSymmetric(g)
	plainS, err := ColorStrong(d, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	withCtxS, err := ColorStrongCtx(context.Background(), d, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainS, withCtxS) {
		t.Fatalf("ColorStrong and ColorStrongCtx diverged:\n%+v\n%+v", plainS, withCtxS)
	}
}
