package core

import (
	"context"
	"fmt"

	"dima/internal/automaton"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
)

// scPhases is the number of communication rounds per computation round
// of Algorithm 2: invitations, responses, and the two exchange
// sub-rounds (tentative claims, keep/drop decisions).
const scPhases = 4

// ColorStrong runs Algorithm 2 (DiMa2Ed), the distributed strong
// (distance-2) directed edge coloring, on the symmetric digraph d.
//
// One negotiation colors one arc: an inviter u picks a random uncolored
// outgoing arc (u,v) and a channel available in its closed neighborhood;
// the responder v accepts only if the channel is also available in v's
// closed neighborhood and (per the paper's Procedure 2-b) does not
// collide with overheard invitations. Together the two views cover every
// arc within distance 1 of (u,v) that was colored in earlier rounds.
//
// Same-round collisions are resolved by the claim/confirm exchange (the
// correction described in DESIGN.md): tentative pairs broadcast claims;
// any claimant that hears a conflicting same-color claim of higher
// priority withdraws; endpoints finalize only if both kept. Setting
// Options.UnsafeNoConfirm reverts to the paper's uncorrected behavior.
func ColorStrong(d *graph.Digraph, opt Options) (*Result, error) {
	return ColorStrongCtx(context.Background(), d, opt)
}

// ColorStrongCtx is ColorStrong bounded by ctx: when ctx is canceled
// the engine abandons the run at the next communication-round barrier
// and the returned Result carries the partial coloring with Aborted set
// (Terminated false, unassigned entries -1). Rounds executed before the
// cancellation are byte-identical to an uncanceled run with the same
// options, on every engine.
func ColorStrongCtx(ctx context.Context, d *graph.Digraph, opt Options) (*Result, error) {
	g := d.Under()
	engine := opt.engine()
	if opt.Cluster != nil {
		var err error
		if engine, err = opt.clusterEngine(strongFactoryName, false); err != nil {
			return nil, err
		}
	}
	base := rng.New(opt.Seed)
	nodes := make([]net.Node, g.N())
	scs := make([]*scNode, g.N())
	for u := 0; u < g.N(); u++ {
		scs[u] = newSCNode(d, u, base.Derive(uint64(u)), &opt)
		nodes[u] = scs[u]
	}
	var traffic []net.RoundTraffic
	var observe net.RoundObserver
	if opt.Metrics != nil {
		observe = func(rt net.RoundTraffic) { traffic = append(traffic, rt) }
	}
	netRes, err := engine(g, nodes, net.Config{
		MaxRounds:  scPhases * opt.maxCompRounds(),
		Ctx:        ctx,
		Fault:      opt.Fault,
		Observe:    observe,
		Workers:    opt.Workers,
		ShardStats: opt.ShardStats,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Colors:     make([]int, d.A()),
		CommRounds: netRes.Rounds,
		CompRounds: (netRes.Rounds + scPhases - 1) / scPhases,
		Messages:   netRes.Messages,
		Deliveries: netRes.Deliveries,
		Bytes:      netRes.Bytes,
		Terminated: netRes.Terminated,
		Aborted:    netRes.Aborted,
	}
	for i := range res.Colors {
		res.Colors[i] = -1
	}
	endpoints := make([]int8, d.A())
	for _, n := range scs {
		res.DefensiveRejects += n.defensiveRejects
		res.ConflictsDropped += n.conflictsDropped
		res.Retransmits += n.recC.retransmits
		res.Repairs += n.recC.repairs
		res.Reverts += n.recC.reverts
		res.Probes += n.recC.probes
		for a, c := range n.colors {
			endpoints[a]++
			if res.Colors[a] == -1 {
				res.Colors[a] = c
			} else if res.Colors[a] != c {
				return nil, fmt.Errorf("core: arc %v colored %d and %d by its endpoints",
					d.ArcAt(a), res.Colors[a], c)
			}
		}
	}
	for _, k := range endpoints {
		if k == 1 {
			res.HalfColored++
		}
	}
	if opt.CollectParticipation {
		res.Participation = aggregateParticipation(res.CompRounds, func(u int) []bool {
			return scs[u].paired
		}, g.N())
	}
	if opt.Metrics != nil {
		tels := make([]*nodeTelemetry, len(scs))
		for i, n := range scs {
			tels[i] = &n.tel
		}
		emitRoundStats(opt.Metrics, traffic, tels, scPhases, d.A(), g.N())
	}
	if res.Terminated {
		for a, c := range res.Colors {
			if c < 0 {
				return nil, fmt.Errorf("core: terminated with uncolored arc %v", d.ArcAt(graph.ArcID(a)))
			}
		}
	}
	res.countColors()
	return res, nil
}

// scClaim is a tentative pairing awaiting the confirm exchange.
type scClaim struct {
	arc       graph.ArcID
	color     int
	partner   int
	keep      bool
	roundIdx  int // index into the participation log (-1 when disabled)
	compRound int // computation round the claim formed in (telemetry)
}

// scNode is one vertex of Algorithm 2.
type scNode struct {
	id   int
	d    *graph.Digraph
	opt  *Options
	r    *rng.Rand
	mach *automaton.Machine

	colors       map[graph.ArcID]int // colors of incident arcs (both directions)
	uncoloredOut []graph.ArcID       // outgoing arcs not yet colored
	remaining    int                 // incident arcs (in+out) still uncolored
	colorsAt     []ColorSet          // colorsAt[i]: colors on arcs incident to Neighbors(u)[i]
	colorsSelf   ColorSet            // colors on arcs incident to u itself
	nbrIndex     map[int]int

	// Dead-list relay: the E state exchanges each node's *color list* —
	// the channels no longer usable for it, which already aggregates its
	// one-hop knowledge. Relaying the list gives each inviter a view of
	// the responder's forbidden set through one-hop messages only
	// (Algorithm 2 lines 2.23–2.24 and Procedure 2-c).
	deadNbr   []ColorSet // deadNbr[i]: colors Neighbors(u)[i] announced as dead for itself
	announced ColorSet   // colors this node has already announced dead
	deadQueue []int      // newly dead colors awaiting the next exchange

	// In-flight invitation (valid in I/W).
	inviteArc   graph.ArcID
	inviteTo    int
	inviteColor int

	// attempts counts failed invitations per outgoing arc. The responder
	// may hold forbidden colors the inviter cannot see (used by the
	// responder's other neighbors), so a fixed lowest-free proposal can
	// be rejected forever. After a failure the proposal is drawn
	// uniformly from a window that grows with the attempt count, which
	// makes every arc colorable with probability 1. Procedure 2-a only
	// requires "an open channel", so this selection rule is a faithful
	// refinement (see DESIGN.md).
	attempts map[graph.ArcID]int

	claim *scClaim // tentative pairing this round, nil if none

	// Recovery state (Options.Recovery; see recovery.go). reaffirmQ holds
	// keep-Decides re-announcing committed colors (after an adoption, or
	// to flush out the losing side of a late-detected conflict), drained
	// at the decide phase so they arrive with the regular knowledge
	// traffic.
	reaffirmQ []msg.Message
	recC      recCounters

	defensiveRejects int
	conflictsDropped int

	// Telemetry (Options.Metrics): obs gates all event logging, curRound
	// is the computation round of the current Step.
	obs      bool
	curRound int
	tel      nodeTelemetry

	// Participation log (Options.CollectParticipation): one entry per
	// computation round this node was active in; true if a claim formed
	// in that round was finalized.
	paired []bool
}

func newSCNode(d *graph.Digraph, u int, r *rng.Rand, opt *Options) *scNode {
	g := d.Under()
	n := &scNode{
		id:        u,
		d:         d,
		opt:       opt,
		obs:       opt.Metrics != nil,
		r:         r,
		mach:      automaton.NewMachine(u, opt.Hook),
		colors:    make(map[graph.ArcID]int, 2*g.Degree(u)),
		remaining: 2 * g.Degree(u),
		colorsAt:  make([]ColorSet, g.Degree(u)),
		nbrIndex:  make(map[int]int, g.Degree(u)),
		attempts:  make(map[graph.ArcID]int),
	}
	n.deadNbr = make([]ColorSet, g.Degree(u))
	for i, v := range g.Neighbors(u) {
		n.nbrIndex[v] = i
	}
	n.uncoloredOut = append(n.uncoloredOut, d.OutArcs(u)...)
	if n.remaining == 0 {
		for _, s := range []automaton.State{automaton.Listen, automaton.Respond,
			automaton.Update, automaton.Exchange, automaton.Done} {
			n.mach.MustTransition(s)
		}
	}
	return n
}

func (n *scNode) ID() int { return n.id }

func (n *scNode) Done() bool { return n.mach.State() == automaton.Done }

func (n *scNode) recOn() bool { return n.opt.Recovery.Enabled }

func (n *scNode) Step(round int, inbox []msg.Message) []msg.Message {
	if n.obs {
		n.curRound = round / scPhases
	}
	if n.Done() {
		if !n.recOn() {
			return nil
		}
		return n.stepDone(round/scPhases, round%scPhases, inbox)
	}
	switch round % scPhases {
	case 0:
		return n.phaseChooseInvite(round/scPhases, inbox)
	case 1:
		return n.phaseRespond(inbox)
	case 2:
		return n.phaseClaim(inbox)
	default:
		return n.phaseDecide(round/scPhases, inbox)
	}
}

// stepDone services recovery traffic after the node finished. A finished
// node stays the authority for its committed arcs: it answers probes and
// re-invitations for them, keeps scanning neighbor announcements for
// late-detected conflicts, and — when a negative acknowledgement or a
// lost conflict reverts one of its arcs — resurrects as a listener so
// the arc renegotiates.
func (n *scNode) stepDone(compRound, phase int, inbox []msg.Message) []msg.Message {
	switch phase {
	case 0:
		// Neighbor keep-decides and re-announcements: fold into knowledge
		// and check them against this node's committed arcs.
		before := n.remaining
		out := n.scanAnnouncements(compRound, inbox, nil)
		if n.remaining > before {
			n.mach = automaton.NewMachine(n.id, n.opt.Hook)
			n.mach.MustTransition(automaton.Listen)
		}
		return out
	case 1:
		before := n.remaining
		out := n.processAcks(inbox)
		out = n.answerCommittedInvites(inbox, out)
		if n.remaining > before {
			n.mach = automaton.NewMachine(n.id, n.opt.Hook)
			n.mach.MustTransition(automaton.Listen)
			n.mach.MustTransition(automaton.Respond)
		}
		return out
	case 3:
		before := n.remaining
		out := n.processAcks(inbox)
		out = append(out, n.reaffirmQ...)
		n.reaffirmQ = nil
		if compRound > 0 && compRound%n.opt.Recovery.Timeout() == 0 {
			if m, ok := n.reannounceMsg(); ok {
				out = append(out, m)
			}
		}
		if n.remaining > before {
			n.mach = automaton.NewMachine(n.id, n.opt.Hook)
			for _, s := range []automaton.State{automaton.Listen, automaton.Respond,
				automaton.Update, automaton.Exchange, automaton.Choose} {
				n.mach.MustTransition(s)
			}
		}
		return out
	}
	return nil
}

// forbidden returns the color sets whose union covers every color used
// on arcs within u's closed neighborhood — u's half of the distance-1
// conflict set of any arc incident to u.
func (n *scNode) forbidden() []*ColorSet {
	sets := make([]*ColorSet, 0, len(n.colorsAt)+1)
	sets = append(sets, &n.colorsSelf)
	for i := range n.colorsAt {
		sets = append(sets, &n.colorsAt[i])
	}
	return sets
}

// phaseChooseInvite finalizes the previous round's claims from the
// decide broadcasts, then runs the coin toss and invitation. Under
// recovery the decide processing can emit negative acknowledgements
// (lost partner decisions, late-detected conflicts), and a node whose
// remaining work is a half-colored incoming arc periodically probes the
// arc's owner for its committed state.
func (n *scNode) phaseChooseInvite(compRound int, inbox []msg.Message) []msg.Message {
	out := n.applyDecides(compRound, inbox)
	if n.recOn() && n.remaining > 0 && len(n.uncoloredOut) == 0 &&
		compRound > 0 && compRound%n.opt.Recovery.Timeout() == 0 {
		// Every uncolored incoming arc is awaited from its owner. If the
		// owner committed it one-sidedly (a lost decide), no invitation
		// will ever arrive — ask for its status.
		for _, a := range n.d.InArcs(n.id) {
			if _, ok := n.colors[a]; ok {
				continue
			}
			out = append(out, ackMsg(n.id, n.d.ArcAt(a).From, int(a), -1, false))
			n.recC.probes++
			if n.obs {
				n.tel.at(compRound).probes++
			}
		}
	}
	// The machine is in C at every phase-0 entry (the constructor starts
	// there; phaseDecide loops back). A node whose last arc was just
	// finalized idles through one final cycle as a listener and
	// transitions to D at the round's end, matching the paper's E-state
	// rule that finished nodes transfer to Done.
	if n.remaining == 0 {
		n.mach.MustTransition(automaton.Listen)
		return out
	}
	if n.opt.CollectParticipation {
		n.paired = append(n.paired, false)
	}
	var ev *nodeRoundEvents
	if n.obs {
		ev = n.tel.at(compRound)
		ev.active++
	}
	// Coin toss; a node with no uncolored outgoing arcs has nothing to
	// invite on and always listens (its remaining incoming arcs are
	// colored when the respective neighbors invite).
	if n.r.Bool() && len(n.uncoloredOut) > 0 {
		n.mach.MustTransition(automaton.Invite)
		if ev != nil {
			ev.invited++
		}
		a := n.uncoloredOut[n.r.Intn(len(n.uncoloredOut))]
		v := n.d.ArcAt(a).To
		c := n.proposeColor(a, v)
		n.attempts[a]++
		n.inviteArc, n.inviteTo, n.inviteColor = a, v, c
		return append(out, msg.Message{
			Kind: msg.KindInvite, From: n.id, To: v, Edge: int(a), Color: c,
		})
	}
	n.mach.MustTransition(automaton.Listen)
	if ev != nil {
		ev.listened++
	}
	return out
}

// proposeColor picks the channel to propose for arc a, targeted at
// neighbor v: it must be free in this node's closed neighborhood and, as
// far as the relayed dead lists tell, usable by v. The first attempt
// uses the lowest such channel (keeping the palette compact); each
// fourth failed attempt widens a uniform-random window, guaranteeing
// eventual overlap with the responder's true free set even while relay
// updates are in flight. Under the RandomAvailable rule every attempt is
// randomized.
func (n *scNode) proposeColor(a graph.ArcID, v int) int {
	sets := append(n.forbidden(), &n.deadNbr[n.nbrIndex[v]])
	// Most invitation failures are benign (the target was not listening
	// or chose another suitor), and on average an arc needs ~4 attempts
	// even without channel disagreement, so the window widens only every
	// fourth failure. Until then the lowest free channel keeps the
	// palette compact.
	widen := n.attempts[a] / 4
	if widen == 0 && n.opt.ColorRule == LowestFirst {
		return LowestFree(sets...)
	}
	bound := MaxOf(sets...) + 2 + widen
	free := FreeBelow(bound, sets...)
	return free[n.r.Intn(len(free))] // nonempty: bound exceeds max used
}

// applyDecides processes the keep/drop broadcasts of the previous
// round's confirm exchange: finalizes the node's own claim if both
// endpoints kept it, and folds neighbors' kept claims into the one-hop
// color knowledge. Under recovery it additionally emits negative
// acknowledgements — when the partner's decision was lost (it may have
// finalized one-sidedly), when a rival kept decision whose claim
// broadcast this node never heard outranks the claim, and when a
// neighbor announcement reveals a conflict with an already-committed arc
// (conflictCheck).
func (n *scNode) applyDecides(compRound int, inbox []msg.Message) []msg.Message {
	var out []msg.Message
	var partnerKeep, partnerSeen, rivalWins bool
	for _, m := range inbox {
		i, nbr := n.nbrIndex[m.From]
		if m.Kind == msg.KindUpdate {
			// A neighbor's dead-list delta: channels no longer usable
			// for it (relayed one-hop knowledge). Under recovery, paints
			// naming an arc re-announce a committed color.
			if nbr {
				for _, p := range m.Paints {
					n.deadNbr[i].Add(p.Color)
					if n.recOn() && p.Edge >= 0 {
						n.addColorAt(i, p.Color)
						out = n.conflictCheck(graph.ArcID(p.Edge), p.Color, out)
					}
				}
			}
			continue
		}
		if m.Kind != msg.KindDecide {
			continue
		}
		if n.claim != nil && m.From == n.claim.partner && graph.ArcID(m.Edge) == n.claim.arc {
			partnerKeep, partnerSeen = m.Keep, true
		}
		// One-hop knowledge: a neighbor that kept a claim is treated as
		// using that color. If its partner dropped the claim this
		// over-approximates, which can only make future proposals more
		// conservative — never incorrect (see DESIGN.md).
		if m.Keep {
			if nbr {
				n.addColorAt(i, m.Color)
				if n.recOn() {
					out = n.conflictCheck(graph.ArcID(m.Edge), m.Color, out)
				}
			}
			if n.recOn() && n.claim != nil && n.claim.keep &&
				m.Color == n.claim.color && graph.ArcID(m.Edge) != n.claim.arc &&
				m.Edge >= 0 && m.Edge < n.d.A() &&
				n.d.ArcsConflict(n.claim.arc, graph.ArcID(m.Edge)) {
				// A kept conflicting decision whose claim broadcast this
				// node never heard. Yield if it outranks the claim:
				// re-announced commitments (Seq > 0) always do, fresh
				// same-round claims by the usual claim priority.
				if m.Seq > 0 {
					rivalWins = true
				} else {
					p := claimPriority(compRound-1, graph.ArcID(m.Edge))
					my := claimPriority(compRound-1, n.claim.arc)
					if p < my || (p == my && m.Edge < int(n.claim.arc)) {
						rivalWins = true
					}
				}
			}
		}
	}
	if n.claim == nil {
		return out
	}
	cl := n.claim
	n.claim = nil
	if !cl.keep {
		n.drop(cl)
		return out
	}
	if !partnerSeen || !partnerKeep {
		// Partner withdrew (or, under injected faults, its decision was
		// lost): the arc stays uncolored and is retried.
		n.drop(cl)
		if n.recOn() && !partnerSeen {
			// The partner may have heard this node's keep and finalized
			// one-sidedly; demand a revert (a no-op if it also dropped).
			out = append(out, ackMsg(n.id, cl.partner, int(cl.arc), cl.color, false))
		}
		return out
	}
	if rivalWins {
		n.drop(cl)
		out = append(out, ackMsg(n.id, cl.partner, int(cl.arc), cl.color, false))
		return out
	}
	if cl.roundIdx >= 0 && cl.roundIdx < len(n.paired) {
		n.paired[cl.roundIdx] = true
	}
	if n.obs {
		n.tel.at(cl.compRound).paired++
		n.tel.assigns = append(n.tel.assigns, assignEvent{round: cl.compRound, item: int(cl.arc), color: cl.color})
	}
	n.finalize(cl.arc, cl.color)
	return out
}

// drop withdraws a claim, attributing the conflict to the round the
// claim formed in so the telemetry stream matches Participation.
func (n *scNode) drop(cl *scClaim) {
	n.conflictsDropped++
	if n.obs {
		n.tel.at(cl.compRound).dropped++
	}
}

// reject counts a defensive rejection at the current round.
func (n *scNode) reject() {
	n.defensiveRejects++
	if n.obs {
		n.tel.at(n.curRound).rejects++
	}
}

// partIdx returns the current participation-log index (-1 if logging is
// disabled).
func (n *scNode) partIdx() int { return len(n.paired) - 1 }

// addColorAt records that neighbor i has color c on an incident arc,
// which also kills c for this node.
func (n *scNode) addColorAt(i, c int) {
	n.colorsAt[i].Add(c)
	n.markDead(c)
}

// markDead queues color c for the dead-list exchange if it just became
// unusable for this node.
func (n *scNode) markDead(c int) {
	if !n.announced.Has(c) {
		n.announced.Add(c)
		n.deadQueue = append(n.deadQueue, c)
	}
}

// finalize records the color of an incident arc.
func (n *scNode) finalize(a graph.ArcID, c int) {
	if _, dup := n.colors[a]; dup {
		n.reject()
		return
	}
	n.colors[a] = c
	n.colorsSelf.Add(c)
	n.markDead(c)
	n.remaining--
	delete(n.attempts, a)
	for i, id := range n.uncoloredOut {
		if id == a {
			n.uncoloredOut[i] = n.uncoloredOut[len(n.uncoloredOut)-1]
			n.uncoloredOut = n.uncoloredOut[:len(n.uncoloredOut)-1]
			break
		}
	}
}

// phaseRespond: listeners evaluate invitations (Procedure 2-b) and
// respond to at most one; inviters move to W. Under recovery the phase
// opens by settling acknowledgements (reverts, probe answers) and by
// answering invitations for already-committed arcs authoritatively —
// inviters included, since a Waiting node is still the authority for its
// other arcs.
func (n *scNode) phaseRespond(inbox []msg.Message) []msg.Message {
	var out []msg.Message
	if n.recOn() {
		out = n.processAcks(inbox)
		out = n.answerCommittedInvites(inbox, out)
	}
	if n.mach.State() == automaton.Invite {
		n.mach.MustTransition(automaton.Wait)
		return out
	}
	n.mach.MustTransition(automaton.Respond)
	mine, others := automaton.SplitInvites(n.id, inbox)
	// A proposed channel is acceptable only if it is free in this node's
	// closed neighborhood. Any invitation overheard from a neighbor is
	// connected to this node's arcs by the link it arrived on, so — per
	// Procedure 2-b — a color collision with an overheard invitation
	// disqualifies an invitation addressed here.
	sets := n.forbidden()
	valid := mine[:0:0]
	for _, m := range mine {
		a := graph.ArcID(m.Edge)
		if _, already := n.colors[a]; already || n.d.ArcAt(a).To != n.id {
			if n.recOn() && already {
				continue // answered authoritatively above
			}
			n.reject()
			continue
		}
		// A channel forbidden in this node's closed neighborhood is a
		// normal Procedure 2-b rejection, not a protocol anomaly: the
		// inviter cannot see colors held by this node's other neighbors.
		bad := false
		for _, s := range sets {
			if s.Has(m.Color) {
				bad = true
				break
			}
		}
		if !n.opt.DisableOverhearFilter {
			for _, o := range others {
				if o.Color == m.Color {
					bad = true
					break
				}
			}
		}
		if !bad {
			valid = append(valid, m)
		}
	}
	if len(valid) == 0 {
		return out
	}
	m := valid[n.r.Intn(len(valid))]
	n.claim = &scClaim{arc: graph.ArcID(m.Edge), color: m.Color, partner: m.From, keep: true,
		roundIdx: n.partIdx(), compRound: n.curRound}
	return append(out, msg.Message{
		Kind: msg.KindResponse, From: n.id, To: m.From, Edge: m.Edge, Color: m.Color,
	})
}

// phaseClaim: inviters look for an acceptance; both members of each
// tentative pair broadcast a claim (first exchange sub-round). Under
// UnsafeNoConfirm pairs finalize immediately, as in the paper, and
// broadcast a plain color update instead.
func (n *scNode) phaseClaim(inbox []msg.Message) []msg.Message {
	switch n.mach.State() {
	case automaton.Wait:
		if m, ok, _ := automaton.FindResponse(n.id, int(n.inviteArc), inbox); ok {
			if m.From == n.inviteTo && m.Color == n.inviteColor && (!n.recOn() || m.Seq == 0) {
				n.claim = &scClaim{arc: n.inviteArc, color: n.inviteColor, partner: n.inviteTo, keep: true,
					roundIdx: n.partIdx(), compRound: n.curRound}
			} else if !n.recOn() {
				n.reject()
			}
			// Under recovery a Seq > 0 response is an authoritative
			// re-response, handled by the adoption scan below.
		}
		n.mach.MustTransition(automaton.Update)
	case automaton.Respond:
		n.mach.MustTransition(automaton.Update)
	default:
		panic(fmt.Sprintf("core: node %d in state %v at claim phase", n.id, n.mach.State()))
	}
	n.mach.MustTransition(automaton.Exchange)
	var out []msg.Message
	if n.recOn() {
		out = n.adoptResponses(inbox)
	}
	if n.claim == nil {
		return out
	}
	if n.opt.UnsafeNoConfirm {
		cl := n.claim
		n.claim = nil
		if cl.roundIdx >= 0 && cl.roundIdx < len(n.paired) {
			n.paired[cl.roundIdx] = true
		}
		if n.obs {
			n.tel.at(cl.compRound).paired++
			n.tel.assigns = append(n.tel.assigns, assignEvent{round: cl.compRound, item: int(cl.arc), color: cl.color})
		}
		n.finalize(cl.arc, cl.color)
		return append(out, msg.Message{
			Kind: msg.KindUpdate, From: n.id, To: msg.Broadcast, Edge: -1, Color: -1,
			Paints: []msg.Paint{{Edge: int(cl.arc), Color: cl.color}},
		})
	}
	return append(out, msg.Message{
		Kind: msg.KindClaim, From: n.id, To: msg.Broadcast,
		Edge: int(n.claim.arc), Color: n.claim.color,
	})
}

// phaseDecide: second exchange sub-round. Each claimant withdraws if it
// heard a conflicting claim of higher priority; every claim heard from a
// neighbor with the same color conflicts, because the link it was heard
// on connects the two arcs (Definition 2).
func (n *scNode) phaseDecide(compRound int, inbox []msg.Message) []msg.Message {
	defer func() {
		if n.remaining == 0 && n.claim == nil {
			n.mach.MustTransition(automaton.Done)
		} else {
			n.mach.MustTransition(automaton.Choose)
		}
	}()
	var out []msg.Message
	if n.recOn() {
		// Negative acknowledgements from the claim phase's adoption scan
		// arrive here; re-announcements queued by adoptions and won
		// conflicts go out with the knowledge traffic, plus the periodic
		// full re-announcement that heals lost-broadcast knowledge gaps.
		out = n.processAcks(inbox)
		out = append(out, n.reaffirmQ...)
		n.reaffirmQ = nil
		if compRound > 0 && compRound%n.opt.Recovery.Timeout() == 0 {
			if m, ok := n.reannounceMsg(); ok {
				out = append(out, m)
			}
		}
	}
	if n.opt.UnsafeNoConfirm {
		// Ablation arm: fold finalized updates into one-hop knowledge.
		for _, m := range inbox {
			if m.Kind != msg.KindUpdate {
				continue
			}
			if i, ok := n.nbrIndex[m.From]; ok {
				for _, p := range m.Paints {
					n.addColorAt(i, p.Color)
				}
			}
		}
		return append(out, n.deadListDelta()...)
	}
	if n.claim == nil {
		return append(out, n.deadListDelta()...)
	}
	myPrio := claimPriority(compRound, n.claim.arc)
	for _, m := range inbox {
		if m.Kind != msg.KindClaim || graph.ArcID(m.Edge) == n.claim.arc || m.Color != n.claim.color {
			continue
		}
		p := claimPriority(compRound, graph.ArcID(m.Edge))
		if p < myPrio || (p == myPrio && m.Edge < int(n.claim.arc)) {
			n.claim.keep = false
			break
		}
	}
	return append(append(out, n.deadListDelta()...), msg.Message{
		Kind: msg.KindDecide, From: n.id, To: msg.Broadcast,
		Edge: int(n.claim.arc), Color: n.claim.color, Keep: n.claim.keep,
	})
}

// deadListDelta drains the queue of newly dead channels into an exchange
// broadcast (nil if nothing changed) — the UPDATECOLORS step.
func (n *scNode) deadListDelta() []msg.Message {
	if len(n.deadQueue) == 0 {
		return nil
	}
	paints := make([]msg.Paint, len(n.deadQueue))
	for i, c := range n.deadQueue {
		paints[i] = msg.Paint{Edge: -1, Color: c}
	}
	n.deadQueue = n.deadQueue[:0]
	return []msg.Message{{
		Kind: msg.KindUpdate, From: n.id, To: msg.Broadcast,
		Edge: -1, Color: -1, Paints: paints,
	}}
}

// claimPriority orders same-color claims deterministically; both
// endpoints of each claim and every observer compute the same value from
// the round number and arc id alone. The round term rotates priorities
// so no arc is starved systematically.
func claimPriority(compRound int, a graph.ArcID) uint64 {
	return rng.Mix64(uint64(compRound)<<32 ^ uint64(a))
}

// scanAnnouncements is the finished node's share of applyDecides: fold
// neighbor announcements into one-hop knowledge and check each against
// this node's committed arcs.
func (n *scNode) scanAnnouncements(compRound int, inbox []msg.Message, out []msg.Message) []msg.Message {
	for _, m := range inbox {
		i, nbr := n.nbrIndex[m.From]
		if !nbr {
			continue
		}
		switch m.Kind {
		case msg.KindUpdate:
			for _, p := range m.Paints {
				n.deadNbr[i].Add(p.Color)
				if p.Edge >= 0 {
					n.addColorAt(i, p.Color)
					out = n.conflictCheck(graph.ArcID(p.Edge), p.Color, out)
				}
			}
		case msg.KindDecide:
			if m.Keep {
				n.addColorAt(i, m.Color)
				out = n.conflictCheck(graph.ArcID(m.Edge), m.Color, out)
			}
		}
	}
	return out
}

// conflictCheck tests a neighbor's announced (arc, color) pair against
// this node's committed arcs. A distance-1 collision means a claim or
// decide broadcast was lost before one of the commitments; the statically
// lower-priority arc yields. If this node's arc loses it reverts and
// tells its partner to do the same; if it wins it re-announces the arc so
// the losing side eventually detects the collision and yields.
func (n *scNode) conflictCheck(b graph.ArcID, c int, out []msg.Message) []msg.Message {
	if b < 0 || int(b) >= n.d.A() {
		return out
	}
	for _, a := range n.incidentArcs() {
		if a == b {
			continue
		}
		if cc, ok := n.colors[a]; !ok || cc != c {
			continue
		}
		if !n.d.ArcsConflict(a, b) {
			continue
		}
		if staleWins(a, b) {
			n.reaffirm(a, c)
			continue
		}
		arc := n.d.ArcAt(a)
		partner := arc.To
		if partner == n.id {
			partner = arc.From
		}
		n.revertArc(a, c)
		out = append(out, ackMsg(n.id, partner, int(a), c, false))
	}
	return out
}

// staleWins orders two committed arcs in a late-detected conflict. The
// priority is a pure function of the arc ids, so all four endpoints —
// whenever and in whatever order they detect the collision — agree on
// the survivor without coordination.
func staleWins(a, b graph.ArcID) bool {
	pa, pb := rng.Mix64(uint64(a)), rng.Mix64(uint64(b))
	return pa < pb || (pa == pb && a < b)
}

// processAcks applies incoming KindAck traffic: a negative ack with a
// color reverts the named one-sided commitment; a probe (color -1) is
// answered from committed state with an authoritative Seq-1 Response.
func (n *scNode) processAcks(inbox []msg.Message) []msg.Message {
	var out []msg.Message
	for _, m := range inbox {
		if m.Kind != msg.KindAck || m.To != n.id || m.Keep {
			continue
		}
		a := graph.ArcID(m.Edge)
		if !n.arcWith(a, m.From) {
			continue
		}
		if m.Color >= 0 {
			n.revertArc(a, m.Color)
			continue
		}
		if c, ok := n.colors[a]; ok {
			out = append(out, msg.Message{
				Kind: msg.KindResponse, From: n.id, To: m.From,
				Edge: m.Edge, Color: c, Seq: 1,
			})
			n.retransmit()
		}
	}
	return out
}

// answerCommittedInvites re-responds to invitations for arcs this node
// already committed, with the committed color and a nonzero Seq so the
// inviter routes the reply through its adoption scan.
func (n *scNode) answerCommittedInvites(inbox []msg.Message, out []msg.Message) []msg.Message {
	mine, _ := automaton.SplitInvites(n.id, inbox)
	for _, m := range mine {
		a := graph.ArcID(m.Edge)
		if !n.arcWith(a, m.From) {
			continue
		}
		c, ok := n.colors[a]
		if !ok {
			continue
		}
		out = append(out, msg.Message{
			Kind: msg.KindResponse, From: n.id, To: m.From,
			Edge: m.Edge, Color: c, Seq: m.Seq + 1,
		})
		n.retransmit()
	}
	return out
}

// adoptResponses settles authoritative (Seq > 0) re-responses addressed
// to this node: the sender committed the arc, so adopt its color if the
// arc is uncolored here and the color passes this node's forbidden sets,
// otherwise demand a revert. Fresh tentative responses (Seq == 0) belong
// to the claim path and are never adopted directly.
func (n *scNode) adoptResponses(inbox []msg.Message) []msg.Message {
	var out []msg.Message
	for _, m := range inbox {
		if m.Kind != msg.KindResponse || m.To != n.id || m.Seq == 0 || m.Color < 0 {
			continue
		}
		a := graph.ArcID(m.Edge)
		if !n.arcWith(a, m.From) {
			continue
		}
		if c, ok := n.colors[a]; ok {
			if c != m.Color {
				out = append(out, ackMsg(n.id, m.From, m.Edge, m.Color, false))
			}
			continue
		}
		bad := n.claim != nil && n.claim.color == m.Color
		if !bad {
			for _, s := range n.forbidden() {
				if s.Has(m.Color) {
					bad = true
					break
				}
			}
		}
		if bad {
			out = append(out, ackMsg(n.id, m.From, m.Edge, m.Color, false))
			continue
		}
		n.adopt(a, m.Color)
	}
	return out
}

// adopt finalizes an arc from the partner's authoritative state and
// queues a re-announcement so the neighborhood learns the color.
func (n *scNode) adopt(a graph.ArcID, c int) {
	n.finalize(a, c)
	n.recC.repairs++
	if n.obs {
		n.tel.at(n.curRound).repairs++
		n.tel.assigns = append(n.tel.assigns, assignEvent{round: n.curRound, item: int(a), color: c})
	}
	n.reaffirm(a, c)
}

// reannounceMsg builds the periodic full re-announcement of this node's
// committed colors: one Update whose paints name (arc, color) pairs.
// Receivers fold each pair into one-hop knowledge and run conflictCheck,
// so any conflict whose forming broadcasts were lost is re-detected every
// period until the losing side reverts. Both live and finished nodes
// re-announce — a latent conflict can sit entirely between finished
// nodes.
func (n *scNode) reannounceMsg() (msg.Message, bool) {
	var paints []msg.Paint
	for _, a := range n.incidentArcs() {
		if c, ok := n.colors[a]; ok {
			paints = append(paints, msg.Paint{Edge: int(a), Color: c})
		}
	}
	if len(paints) == 0 {
		return msg.Message{}, false
	}
	return msg.Message{
		Kind: msg.KindUpdate, From: n.id, To: msg.Broadcast,
		Edge: -1, Color: -1, Seq: 1, Paints: paints,
	}, true
}

// reaffirm queues a keep-Decide re-announcing a committed arc color,
// deduplicating per arc; the queue drains at the decide phase.
func (n *scNode) reaffirm(a graph.ArcID, c int) {
	for _, m := range n.reaffirmQ {
		if m.Edge == int(a) {
			return
		}
	}
	n.reaffirmQ = append(n.reaffirmQ, msg.Message{
		Kind: msg.KindDecide, From: n.id, To: msg.Broadcast,
		Edge: int(a), Color: c, Keep: true, Seq: 1,
	})
}

// revertArc undoes this node's commitment of color c to arc a. Stale
// requests (the arc moved on, or was never committed here) are ignored.
// Neighbor knowledge (announced dead lists, colorsAt) is left as is:
// over-approximating a dead color is always safe.
func (n *scNode) revertArc(a graph.ArcID, c int) {
	cur, ok := n.colors[a]
	if !ok || cur != c {
		return
	}
	delete(n.colors, a)
	n.remaining++
	if n.d.ArcAt(a).From == n.id {
		n.uncoloredOut = append(n.uncoloredOut, a)
	}
	n.colorsSelf = ColorSet{}
	for _, cc := range n.colors {
		n.colorsSelf.Add(cc)
	}
	n.recC.reverts++
	if n.obs {
		n.tel.at(n.curRound).reverts++
	}
}

// retransmit counts an authoritative re-response plus its telemetry
// mirror.
func (n *scNode) retransmit() {
	n.recC.retransmits++
	if n.obs {
		n.tel.at(n.curRound).retransmits++
	}
}

// incidentArcs returns this node's incident arcs (out then in) in a
// deterministic order for recovery scans.
func (n *scNode) incidentArcs() []graph.ArcID {
	out := append([]graph.ArcID{}, n.d.OutArcs(n.id)...)
	return append(out, n.d.InArcs(n.id)...)
}

// arcWith reports whether a is an arc between this node and from — the
// validity gate for recovery messages before they touch state.
func (n *scNode) arcWith(a graph.ArcID, from int) bool {
	if a < 0 || int(a) >= n.d.A() {
		return false
	}
	arc := n.d.ArcAt(a)
	return (arc.From == n.id && arc.To == from) || (arc.From == from && arc.To == n.id)
}
