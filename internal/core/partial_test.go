package core

import (
	"context"
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

func mustGNM(t *testing.T, n, m int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.ErdosRenyiGNM(rng.New(seed), n, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestConstrainedNilMatchesPlain pins the refactoring contract: a nil
// forbidden slice must reproduce ColorEdgesCtx byte for byte.
func TestConstrainedNilMatchesPlain(t *testing.T) {
	g := mustGNM(t, 60, 180, 5)
	opt := Options{Seed: 11}
	plain, err := ColorEdges(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	con, err := ColorEdgesConstrained(context.Background(), g, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Colors) != len(con.Colors) {
		t.Fatalf("lengths diverge: %d vs %d", len(plain.Colors), len(con.Colors))
	}
	for e := range plain.Colors {
		if plain.Colors[e] != con.Colors[e] {
			t.Fatalf("edge %d: %d vs %d", e, plain.Colors[e], con.Colors[e])
		}
	}
	if plain.CompRounds != con.CompRounds || plain.Messages != con.Messages {
		t.Fatalf("metrics diverge: %d/%d rounds, %d/%d messages",
			plain.CompRounds, con.CompRounds, plain.Messages, con.Messages)
	}
}

// TestConstrainedRespectsForbidden colors a graph under per-vertex
// forbidden sets and checks that no edge uses a forbidden color at
// either endpoint while the coloring stays proper.
func TestConstrainedRespectsForbidden(t *testing.T) {
	for _, eng := range []struct {
		name string
		e    net.Engine
	}{{"sync", net.RunSync}, {"chan", net.RunChan}, {"shard", net.RunShard}} {
		t.Run(eng.name, func(t *testing.T) {
			g := mustGNM(t, 40, 120, 3)
			forbidden := make([]*ColorSet, g.N())
			for u := 0; u < g.N(); u++ {
				if u%3 == 0 {
					s := &ColorSet{}
					s.Add(0)
					s.Add(u % 5)
					forbidden[u] = s
				}
			}
			res, err := ColorEdgesConstrained(context.Background(), g, forbidden,
				Options{Seed: 7, Engine: eng.e, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Terminated {
				t.Fatal("run did not terminate")
			}
			if v := verify.EdgeColoring(g, res.Colors); len(v) > 0 {
				t.Fatalf("improper coloring: %v", v[0])
			}
			for id, c := range res.Colors {
				e := g.EdgeAt(graph.EdgeID(id))
				for _, u := range []int{e.U, e.V} {
					if forbidden[u] != nil && forbidden[u].Has(c) {
						t.Fatalf("edge %v uses color %d forbidden at vertex %d", e, c, u)
					}
				}
			}
		})
	}
}

// TestConstrainedSurvivesRecoveryRevert exercises the rebuildUsedSelf
// path: under injected loss plus recovery, reverts rebuild the live list
// and must not drop the forbidden seed.
func TestConstrainedSurvivesRecoveryRevert(t *testing.T) {
	g := mustGNM(t, 50, 150, 9)
	forbidden := make([]*ColorSet, g.N())
	for u := 0; u < g.N(); u++ {
		s := &ColorSet{}
		s.Add(1)
		forbidden[u] = s
	}
	opt := Options{Seed: 21, MaxCompRounds: 4000}
	opt.Recovery.Enabled = true
	opt.Fault = net.DropRate{Seed: 77, P: 0.05}
	res, err := ColorEdgesConstrained(context.Background(), g, forbidden, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Skip("lossy run hit the round bound; nothing to check")
	}
	for id, c := range res.Colors {
		if c == 1 {
			t.Fatalf("edge %v uses globally forbidden color 1", g.EdgeAt(graph.EdgeID(id)))
		}
	}
	if v := verify.EdgeColoring(g, res.Colors); len(v) > 0 {
		t.Fatalf("improper coloring: %v", v[0])
	}
}

// TestConstrainedArityAndHoles checks the argument validation: wrong
// forbidden arity and graphs with removal holes are rejected.
func TestConstrainedArityAndHoles(t *testing.T) {
	g := mustGNM(t, 10, 20, 1)
	if _, err := ColorEdgesConstrained(context.Background(), g, make([]*ColorSet, 3), Options{}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	e := g.EdgeAt(0)
	if _, err := g.RemoveEdge(e.U, e.V); err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(e.U, e.V) // recycle: dense again, must be accepted
	if _, err := ColorEdges(g, Options{}); err != nil {
		t.Fatalf("dense graph after recycling rejected: %v", err)
	}
	e0 := g.EdgeAt(1)
	g.RemoveEdge(e0.U, e0.V)
	if _, err := ColorEdges(g, Options{}); err == nil {
		t.Fatal("holey graph accepted")
	}
}
