package core

import (
	"testing"
	"testing/quick"

	"dima/internal/automaton"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

func mustColorEdges(t *testing.T, g *graph.Graph, opt Options) *Result {
	t.Helper()
	res, err := ColorEdges(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("did not terminate in %d comp rounds", res.CompRounds)
	}
	if v := verify.EdgeColoring(g, res.Colors); len(v) > 0 {
		t.Fatalf("invalid coloring: %v (and %d more)", v[0], len(v)-1)
	}
	return res
}

func TestEdgeColorSingleEdge(t *testing.T) {
	g := gen.Path(2)
	res := mustColorEdges(t, g, Options{Seed: 1})
	if res.NumColors != 1 || res.Colors[0] != 0 {
		t.Fatalf("K2: colors = %v", res.Colors)
	}
	if res.DefensiveRejects != 0 {
		t.Fatalf("defensive rejects on K2: %d", res.DefensiveRejects)
	}
}

func TestEdgeColorPath(t *testing.T) {
	// P4 has Δ=2; the bound is 2Δ-1 = 3 colors.
	g := gen.Path(4)
	res := mustColorEdges(t, g, Options{Seed: 2})
	if res.NumColors > 3 {
		t.Fatalf("path colored with %d colors, bound 3", res.NumColors)
	}
}

func TestEdgeColorTriangle(t *testing.T) {
	// C3 needs exactly 3 colors (odd cycle, Δ=2, class 2).
	g := gen.Cycle(3)
	res := mustColorEdges(t, g, Options{Seed: 3})
	if res.NumColors != 3 {
		t.Fatalf("triangle colored with %d colors, want 3", res.NumColors)
	}
}

func TestEdgeColorStar(t *testing.T) {
	// Star K_{1,6}: every edge shares the center, so exactly Δ colors.
	g := gen.Star(7)
	res := mustColorEdges(t, g, Options{Seed: 4})
	if res.NumColors != 6 {
		t.Fatalf("star colored with %d colors, want 6", res.NumColors)
	}
}

func TestEdgeColorComplete(t *testing.T) {
	g := gen.Complete(8)
	res := mustColorEdges(t, g, Options{Seed: 5})
	if res.NumColors > 2*7-1 {
		t.Fatalf("K8: %d colors exceeds 2Δ-1", res.NumColors)
	}
}

func TestEdgeColorEmptyAndIsolated(t *testing.T) {
	res := mustColorEdges(t, graph.New(0), Options{})
	if res.CompRounds != 0 || res.NumColors != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
	// Isolated vertices alongside one edge.
	g := graph.New(5)
	g.MustAddEdge(1, 3)
	res = mustColorEdges(t, g, Options{Seed: 6})
	if res.NumColors != 1 {
		t.Fatalf("isolated-vertex graph: %d colors", res.NumColors)
	}
}

func TestEdgeColorFamiliesValid(t *testing.T) {
	r := rng.New(7)
	type namedGraph struct {
		name string
		g    *graph.Graph
	}
	var cases []namedGraph
	er, err := gen.ErdosRenyiAvgDegree(r, 150, 8)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, namedGraph{"er", er})
	ba, err := gen.BarabasiAlbert(r, 150, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, namedGraph{"scale-free", ba})
	ws, err := gen.WattsStrogatz(r, 150, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, namedGraph{"small-world", ws})
	reg, err := gen.RandomRegular(r, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, namedGraph{"regular", reg})
	cases = append(cases, namedGraph{"grid", gen.Grid(10, 10)})
	cases = append(cases, namedGraph{"hypercube", gen.Hypercube(6)})
	cases = append(cases, namedGraph{"tree", gen.RandomTree(r, 120)})

	for _, c := range cases {
		res := mustColorEdges(t, c.g, Options{Seed: 11})
		delta := c.g.MaxDegree()
		if res.NumColors > 2*delta-1 {
			t.Errorf("%s: %d colors exceeds worst case 2Δ-1 = %d", c.name, res.NumColors, 2*delta-1)
		}
		if res.DefensiveRejects != 0 {
			t.Errorf("%s: %d defensive rejects under reliable delivery", c.name, res.DefensiveRejects)
		}
		if res.CommRounds != ecPhases*res.CompRounds {
			t.Errorf("%s: comm rounds %d != 3×%d", c.name, res.CommRounds, res.CompRounds)
		}
	}
}

func TestEdgeColorDeterministicAcrossRuns(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(8), 80, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := mustColorEdges(t, g, Options{Seed: 42})
	b := mustColorEdges(t, g, Options{Seed: 42})
	for e := range a.Colors {
		if a.Colors[e] != b.Colors[e] {
			t.Fatalf("same seed diverged at edge %d", e)
		}
	}
	if a.CompRounds != b.CompRounds || a.Messages != b.Messages {
		t.Fatal("metrics diverged across identical runs")
	}
	c := mustColorEdges(t, g, Options{Seed: 43})
	same := true
	for e := range a.Colors {
		if a.Colors[e] != c.Colors[e] {
			same = false
			break
		}
	}
	if same && g.M() > 20 {
		t.Fatal("different seeds produced identical colorings (suspicious)")
	}
}

func TestEdgeColorEngineEquivalence(t *testing.T) {
	// The concurrent runtimes must replay the sequential runtime exactly:
	// same seed, same coloring, same rounds and traffic.
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed+100), 60, 5)
		if err != nil {
			t.Fatal(err)
		}
		a := mustColorEdges(t, g, Options{Seed: seed, Engine: net.RunSync})
		for _, eng := range testEngines[1:] {
			b := mustColorEdges(t, g, Options{Seed: seed, Engine: eng.run})
			if a.CompRounds != b.CompRounds || a.Messages != b.Messages ||
				a.Deliveries != b.Deliveries || a.Bytes != b.Bytes {
				t.Fatalf("seed %d: %s diverged from sync: %d rounds %d msgs vs %d rounds %d msgs",
					seed, eng.name, b.CompRounds, b.Messages, a.CompRounds, a.Messages)
			}
			for e := range a.Colors {
				if a.Colors[e] != b.Colors[e] {
					t.Fatalf("seed %d: %s diverged from sync at edge %d", seed, eng.name, e)
				}
			}
		}
	}
}

func TestEdgeColorWorstCaseBoundHolds(t *testing.T) {
	// Proposition 3 experimentally: across many runs and families, the
	// palette never exceeds 2Δ-1 (and per §IV should never even come
	// close on these instances).
	for seed := uint64(0); seed < 20; seed++ {
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), 100, 8)
		if err != nil {
			t.Fatal(err)
		}
		if g.MaxDegree() < 2 {
			continue
		}
		res := mustColorEdges(t, g, Options{Seed: seed})
		if res.NumColors > 2*g.MaxDegree()-1 {
			t.Fatalf("seed %d: %d colors > 2Δ-1 = %d", seed, res.NumColors, 2*g.MaxDegree()-1)
		}
	}
}

func TestEdgeColorTypicallyDeltaPlusOne(t *testing.T) {
	// Conjecture 2 experimentally: the typical run uses at most Δ+1
	// colors; Δ+2 happens in a small minority of runs (the paper saw
	// 2 of 300). Allow a lenient 15% here to keep the test stable.
	exceed, runs := 0, 0
	for seed := uint64(0); seed < 30; seed++ {
		g, err := gen.ErdosRenyiAvgDegree(rng.New(2000+seed), 120, 8)
		if err != nil {
			t.Fatal(err)
		}
		res := mustColorEdges(t, g, Options{Seed: seed})
		runs++
		if res.NumColors > g.MaxDegree()+1 {
			exceed++
		}
	}
	if exceed*100 > runs*15 {
		t.Fatalf("%d of %d runs used more than Δ+1 colors", exceed, runs)
	}
}

func TestEdgeColorRoundsScaleWithDelta(t *testing.T) {
	// §IV-A: rounds grow with Δ and are insensitive to n. Compare the
	// mean rounds at (n=100, deg 4) vs (n=100, deg 16), and at
	// (n=100, deg 8) vs (n=300, deg 8).
	mean := func(n int, deg float64) (rounds, delta float64) {
		const reps = 8
		var sr, sd int
		for i := 0; i < reps; i++ {
			g, err := gen.ErdosRenyiAvgDegree(rng.New(uint64(3000+i)), n, deg)
			if err != nil {
				t.Fatal(err)
			}
			res := mustColorEdges(t, g, Options{Seed: uint64(i)})
			sr += res.CompRounds
			sd += g.MaxDegree()
		}
		return float64(sr) / reps, float64(sd) / reps
	}
	rLow, dLow := mean(100, 4)
	rHigh, dHigh := mean(100, 16)
	if rHigh <= rLow {
		t.Fatalf("rounds did not grow with Δ: %.1f (Δ=%.1f) vs %.1f (Δ=%.1f)", rLow, dLow, rHigh, dHigh)
	}
	rSmallN, _ := mean(100, 8)
	rBigN, _ := mean(300, 8)
	// Tripling n at fixed degree must not triple the rounds; allow 60%
	// slack for the slightly larger Δ of bigger samples.
	if rBigN > 1.6*rSmallN {
		t.Fatalf("rounds scaled with n: %.1f at n=100 vs %.1f at n=300", rSmallN, rBigN)
	}
}

func TestEdgeColorRandomColorRule(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(9), 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := mustColorEdges(t, g, Options{Seed: 10, ColorRule: RandomAvailable})
	// Validity is unconditional; quality may degrade but stays within
	// the structural bound of the per-round matching argument.
	if res.NumColors < g.MaxDegree() {
		t.Fatalf("%d colors below Δ=%d (impossible)", res.NumColors, g.MaxDegree())
	}
}

func TestEdgeColorHookSeesLegalLifecycle(t *testing.T) {
	g := gen.Cycle(8)
	perNode := map[int][]automaton.State{}
	_, err := ColorEdges(g, Options{Seed: 12, Hook: func(node int, from, to automaton.State) {
		perNode[node] = append(perNode[node], to)
	}})
	if err != nil {
		t.Fatal(err)
	}
	for node, states := range perNode {
		if states[len(states)-1] != automaton.Done {
			t.Fatalf("node %d ended in %v, not Done", node, states[len(states)-1])
		}
		// Every node alternates complete C→...→E cycles; count coin
		// tosses equals count of E states visited.
		var coins, exchanges int
		for _, s := range states {
			switch s {
			case automaton.Invite, automaton.Listen:
				coins++
			case automaton.Exchange:
				exchanges++
			}
		}
		if coins != exchanges {
			t.Fatalf("node %d: %d coin tosses but %d exchanges", node, coins, exchanges)
		}
	}
}

func TestEdgeColorMaxRoundsTruncation(t *testing.T) {
	g := gen.Complete(20)
	res, err := ColorEdges(g, Options{Seed: 13, MaxCompRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Fatal("K20 cannot finish in one computation round")
	}
	if res.CompRounds != 1 {
		t.Fatalf("ran %d comp rounds, want 1", res.CompRounds)
	}
	// Partial colorings must still be conflict-free on colored edges.
	for _, v := range verify.EdgeColoring(g, res.Colors) {
		if v.Kind != "uncolored" {
			t.Fatalf("partial run produced conflict: %v", v)
		}
	}
}

// lossy drops a fixed fraction of deliveries pseudo-randomly.
type lossy struct {
	r *rng.Rand
	p float64
}

func (l *lossy) Drop(round int, m msg.Message, to int) bool { return l.r.Float64() < l.p }

func TestEdgeColorUnderMessageLoss(t *testing.T) {
	// Outside the paper's model: Proposition 2 depends on reliable
	// delivery. When an acceptance is dropped, the responder has colored
	// its side while the inviter has not — a half-colored edge — and
	// conflicts can follow from the inviter's stale view. This test pins
	// down that boundary: conflicts appear only together with
	// half-colored edges, and endpoint *disagreement* (both endpoints
	// colored, different colors) never occurs.
	g, err := gen.ErdosRenyiAvgDegree(rng.New(14), 60, 6)
	if err != nil {
		t.Fatal(err)
	}
	sawHalf := false
	for seed := uint64(0); seed < 5; seed++ {
		res, err := ColorEdges(g, Options{
			Seed:          seed,
			MaxCompRounds: 200,
			Fault:         &lossy{r: rng.New(99 + seed), p: 0.3},
		})
		if err != nil {
			t.Fatalf("endpoint disagreement under loss: %v", err)
		}
		if res.HalfColored > 0 {
			sawHalf = true
		}
		conflicts := 0
		for _, v := range verify.EdgeColoring(g, res.Colors) {
			if v.Kind != "uncolored" {
				conflicts++
			}
		}
		if conflicts > 0 && res.HalfColored == 0 {
			t.Fatalf("seed %d: %d conflicts without any half-colored edge", seed, conflicts)
		}
	}
	if !sawHalf {
		t.Log("note: no half-colored edges observed at this loss rate")
	}
}

func TestEdgeColorNoHalfColoredWithoutFaults(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(21), 80, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := mustColorEdges(t, g, Options{Seed: 22})
	if res.HalfColored != 0 {
		t.Fatalf("%d half-colored edges under reliable delivery", res.HalfColored)
	}
}

func TestQuickEdgeColorAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20 + int(seed%60)
		deg := 2 + float64(seed%8)
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), n, deg)
		if err != nil {
			return false
		}
		res, err := ColorEdges(g, Options{Seed: seed * 7})
		if err != nil || !res.Terminated {
			return false
		}
		if len(verify.EdgeColoring(g, res.Colors)) != 0 {
			return false
		}
		delta := g.MaxDegree()
		return delta == 0 || res.NumColors <= 2*delta-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeColorParticipation(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(30), 150, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := mustColorEdges(t, g, Options{Seed: 31, CollectParticipation: true})
	if len(res.Participation) != res.CompRounds {
		t.Fatalf("participation length %d != %d rounds", len(res.Participation), res.CompRounds)
	}
	// Proposition 1 / Equation (1): in every round the chance an active
	// node pairs is at least ~1/4 (invitee side alone), and at most 1
	// by definition. Check the aggregate rate over the whole run: total
	// pairings = 2 per colored edge.
	var active, paired int
	for _, p := range res.Participation {
		if p.Paired > p.Active {
			t.Fatalf("round with more pairings than active nodes: %+v", p)
		}
		active += p.Active
		paired += p.Paired
	}
	if paired != 2*g.M() {
		t.Fatalf("total pairings %d != 2M = %d", paired, 2*g.M())
	}
	rate := float64(paired) / float64(active)
	if rate < 0.25 {
		t.Fatalf("aggregate pairing rate %.3f below the paper's 1/4 bound", rate)
	}
	if rate > 0.75 {
		t.Fatalf("aggregate pairing rate %.3f implausibly high", rate)
	}
}

func TestEdgeColorParticipationDisabledByDefault(t *testing.T) {
	res := mustColorEdges(t, gen.Cycle(6), Options{Seed: 32})
	if res.Participation != nil {
		t.Fatal("participation collected without opt-in")
	}
}
