package core

import (
	"testing"
	"testing/quick"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

func mustColorStrong(t *testing.T, d *graph.Digraph, opt Options) *Result {
	t.Helper()
	res, err := ColorStrong(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("did not terminate in %d comp rounds", res.CompRounds)
	}
	if v := verify.StrongColoring(d, res.Colors); len(v) > 0 {
		t.Fatalf("invalid strong coloring: %v (and %d more)", v[0], len(v)-1)
	}
	return res
}

func symER(t *testing.T, seed uint64, n int, deg float64) *graph.Digraph {
	t.Helper()
	g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), n, deg)
	if err != nil {
		t.Fatal(err)
	}
	return graph.NewSymmetric(g)
}

func TestStrongColorSingleLink(t *testing.T) {
	// One undirected edge = two arcs; Definition 2 forces different
	// colors on an arc and its reverse.
	d := graph.NewSymmetric(gen.Path(2))
	res := mustColorStrong(t, d, Options{Seed: 1})
	if res.NumColors != 2 {
		t.Fatalf("K2 arcs colored with %d colors, want 2", res.NumColors)
	}
	if res.Colors[0] == res.Colors[1] {
		t.Fatal("arc and reverse share a color")
	}
}

func TestStrongColorPath3(t *testing.T) {
	// P3 (0-1-2): all 4 arcs are mutually within distance 1, so exactly
	// 4 colors are required.
	d := graph.NewSymmetric(gen.Path(3))
	res := mustColorStrong(t, d, Options{Seed: 2})
	if res.NumColors != 4 {
		t.Fatalf("P3 strong coloring used %d colors, want 4", res.NumColors)
	}
}

func TestStrongColorStar(t *testing.T) {
	// Star K_{1,4}: every arc conflicts with every other (all share the
	// center or are joined through it), so exactly 8 colors.
	d := graph.NewSymmetric(gen.Star(5))
	res := mustColorStrong(t, d, Options{Seed: 3})
	if res.NumColors != 8 {
		t.Fatalf("star strong coloring used %d colors, want 8", res.NumColors)
	}
}

func TestStrongColorEmptyAndIsolated(t *testing.T) {
	res := mustColorStrong(t, graph.NewSymmetric(graph.New(0)), Options{})
	if res.NumColors != 0 || res.CompRounds != 0 {
		t.Fatalf("empty digraph: %+v", res)
	}
	g := graph.New(4)
	g.MustAddEdge(0, 2)
	res = mustColorStrong(t, graph.NewSymmetric(g), Options{Seed: 4})
	if res.NumColors != 2 {
		t.Fatalf("isolated-vertex digraph: %d colors", res.NumColors)
	}
}

func TestStrongColorFamiliesValid(t *testing.T) {
	r := rng.New(5)
	graphs := map[string]*graph.Graph{
		"cycle": gen.Cycle(12),
		"grid":  gen.Grid(5, 5),
		"tree":  gen.RandomTree(r, 40),
	}
	er, err := gen.ErdosRenyiAvgDegree(r, 80, 6)
	if err != nil {
		t.Fatal(err)
	}
	graphs["er"] = er
	udg, err := gen.RandomGeometric(r, 60, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	graphs["udg"] = udg
	for name, g := range graphs {
		d := graph.NewSymmetric(g)
		res := mustColorStrong(t, d, Options{Seed: 6})
		if res.DefensiveRejects != 0 {
			t.Errorf("%s: %d defensive rejects under reliable delivery", name, res.DefensiveRejects)
		}
		if res.HalfColored != 0 {
			t.Errorf("%s: %d half-colored arcs", name, res.HalfColored)
		}
		if res.CommRounds != scPhases*res.CompRounds {
			t.Errorf("%s: comm rounds %d != 4×%d", name, res.CommRounds, res.CompRounds)
		}
	}
}

func TestStrongColorDeterministic(t *testing.T) {
	d := symER(t, 7, 60, 5)
	a := mustColorStrong(t, d, Options{Seed: 42})
	b := mustColorStrong(t, d, Options{Seed: 42})
	for i := range a.Colors {
		if a.Colors[i] != b.Colors[i] {
			t.Fatalf("same seed diverged at arc %d", i)
		}
	}
	if a.CompRounds != b.CompRounds || a.Messages != b.Messages ||
		a.ConflictsDropped != b.ConflictsDropped {
		t.Fatal("metrics diverged across identical runs")
	}
}

func TestStrongColorEngineEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		d := symER(t, seed+200, 40, 4)
		a := mustColorStrong(t, d, Options{Seed: seed, Engine: net.RunSync})
		for _, eng := range testEngines[1:] {
			b := mustColorStrong(t, d, Options{Seed: seed, Engine: eng.run})
			if a.CompRounds != b.CompRounds || a.Messages != b.Messages ||
				a.Deliveries != b.Deliveries || a.Bytes != b.Bytes {
				t.Fatalf("seed %d: %s diverged from sync (%d/%d rounds, %d/%d msgs)",
					seed, eng.name, a.CompRounds, b.CompRounds, a.Messages, b.Messages)
			}
			for i := range a.Colors {
				if a.Colors[i] != b.Colors[i] {
					t.Fatalf("seed %d: %s diverged from sync at arc %d", seed, eng.name, i)
				}
			}
		}
	}
}

func TestStrongColorReversePairsDiffer(t *testing.T) {
	d := symER(t, 8, 50, 5)
	res := mustColorStrong(t, d, Options{Seed: 9})
	for a := graph.ArcID(0); int(a) < d.A(); a += 2 {
		if res.Colors[a] == res.Colors[a+1] {
			t.Fatalf("arc pair %v/%v share color %d", d.ArcAt(a), d.ArcAt(a+1), res.Colors[a])
		}
	}
}

func TestStrongColorConflictDropsHappenAndResolve(t *testing.T) {
	// On a dense graph same-round collisions are common; the confirm
	// exchange must drop some claims (otherwise the test of the
	// mechanism is vacuous) and still converge to a valid coloring.
	d := graph.NewSymmetric(gen.Complete(12))
	res := mustColorStrong(t, d, Options{Seed: 10})
	if res.ConflictsDropped == 0 {
		t.Log("note: no claims dropped on K12 (unusual but legal)")
	}
}

func TestStrongColorOverhearFilterAblation(t *testing.T) {
	// Correctness must not depend on the paper's Procedure 2-b fast
	// path; with it disabled the claim/confirm exchange carries the
	// whole burden.
	d := symER(t, 11, 60, 6)
	res := mustColorStrong(t, d, Options{Seed: 12, DisableOverhearFilter: true})
	if res.Terminated != true {
		t.Fatal("no-filter run did not terminate")
	}
}

func TestStrongColorRandomColorRule(t *testing.T) {
	d := symER(t, 13, 60, 5)
	mustColorStrong(t, d, Options{Seed: 14, ColorRule: RandomAvailable})
}

func TestStrongColorUnsafeNoConfirmCanViolate(t *testing.T) {
	// The ablation arm reproduces the paper's uncorrected protocol. The
	// overhear filter cannot see a conflict between two *adjacent
	// inviters* whose listeners are far apart: on the path v-u-w-x, if u
	// invites v and w invites x with the same channel in the same round,
	// both pairs finalize and the arcs (u,v), (w,x) — joined by the edge
	// (u,w) — violate Definition 2. Across seeds this must eventually
	// happen, demonstrating why the confirm exchange exists.
	violated := false
	for seed := uint64(0); seed < 200 && !violated; seed++ {
		d := graph.NewSymmetric(gen.Path(4))
		res, err := ColorStrong(d, Options{Seed: seed, UnsafeNoConfirm: true, MaxCompRounds: 2000})
		if err != nil {
			// Endpoint disagreement is also a manifestation of the
			// missing confirm step.
			violated = true
			break
		}
		if !res.Terminated {
			continue
		}
		for _, v := range verify.StrongColoring(d, res.Colors) {
			if v.Kind == "distance2" {
				violated = true
				break
			}
		}
	}
	if !violated {
		t.Fatal("uncorrected protocol never violated distance-2 in 200 path runs; ablation arm broken?")
	}
}

func TestStrongColorSafeDefaultNeverViolates(t *testing.T) {
	// Counterpart to the ablation: the corrected protocol stays valid on
	// the same adversarial instances.
	for seed := uint64(0); seed < 50; seed++ {
		d := graph.NewSymmetric(gen.Path(4))
		mustColorStrong(t, d, Options{Seed: seed})
	}
	for seed := uint64(0); seed < 10; seed++ {
		d := graph.NewSymmetric(gen.Complete(10))
		mustColorStrong(t, d, Options{Seed: seed})
	}
}

func TestStrongColorRoundsScaleWithDelta(t *testing.T) {
	mean := func(n int, deg float64) (rounds float64) {
		const reps = 5
		sum := 0
		for i := 0; i < reps; i++ {
			d := symER(t, uint64(4000+i), n, deg)
			res := mustColorStrong(t, d, Options{Seed: uint64(i)})
			sum += res.CompRounds
		}
		return float64(sum) / reps
	}
	rLow := mean(100, 4)
	rHigh := mean(100, 8)
	if rHigh <= rLow {
		t.Fatalf("rounds did not grow with Δ: %.1f vs %.1f", rLow, rHigh)
	}
	rSmallN := mean(80, 4)
	rBigN := mean(240, 4)
	if rBigN > 1.6*rSmallN {
		t.Fatalf("rounds scaled with n: %.1f at n=80 vs %.1f at n=240", rSmallN, rBigN)
	}
}

func TestStrongColorPartialRunsConflictFree(t *testing.T) {
	d := graph.NewSymmetric(gen.Complete(15))
	res, err := ColorStrong(d, Options{Seed: 15, MaxCompRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated {
		t.Fatal("K15 strong coloring cannot finish in 2 rounds")
	}
	for _, v := range verify.StrongColoring(d, res.Colors) {
		if v.Kind != "uncolored" {
			t.Fatalf("partial run produced conflict: %v", v)
		}
	}
}

func TestStrongColorUnderMessageLoss(t *testing.T) {
	// With the confirm exchange, a lost decide message makes one
	// endpoint drop while the other may finalize — a half-colored arc —
	// but fully agreed arcs must stay conflict-free... up to conflicts
	// caused by half-colored state, mirroring the Algorithm 1 test.
	d := symER(t, 16, 40, 4)
	for seed := uint64(0); seed < 3; seed++ {
		res, err := ColorStrong(d, Options{
			Seed:          seed,
			MaxCompRounds: 300,
			Fault:         &lossy{r: rng.New(7 + seed), p: 0.2},
		})
		if err != nil {
			t.Fatalf("endpoint disagreement under loss: %v", err)
		}
		conflicts := 0
		for _, v := range verify.StrongColoring(d, res.Colors) {
			if v.Kind == "distance2" {
				conflicts++
			}
		}
		if conflicts > 0 && res.HalfColored == 0 {
			t.Fatalf("seed %d: %d conflicts without half-colored arcs", seed, conflicts)
		}
	}
}

func TestQuickStrongColorAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 15 + int(seed%30)
		deg := 2 + float64(seed%4)
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), n, deg)
		if err != nil {
			return false
		}
		d := graph.NewSymmetric(g)
		res, err := ColorStrong(d, Options{Seed: seed * 13})
		if err != nil || !res.Terminated {
			return false
		}
		return len(verify.StrongColoring(d, res.Colors)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStrongColorParticipation(t *testing.T) {
	d := symER(t, 33, 80, 5)
	res := mustColorStrong(t, d, Options{Seed: 34, CollectParticipation: true})
	if len(res.Participation) != res.CompRounds {
		t.Fatalf("participation length %d != %d rounds", len(res.Participation), res.CompRounds)
	}
	var paired int
	for _, p := range res.Participation {
		paired += p.Paired
	}
	// Each finalized arc pairs both of its endpoints exactly once.
	if paired != 2*d.A() {
		t.Fatalf("total pairings %d != 2A = %d", paired, 2*d.A())
	}
}
