package core

import (
	"dima/internal/metrics"
	"dima/internal/msg"
	"dima/internal/net"
)

// nodeRoundEvents counts one node's protocol events in one computation
// round. Events that belong to a negotiation (paired, dropped) are
// attributed to the round the negotiation *started* in, so the stream
// lines up with Result.Participation; defensive rejects are attributed
// to the round they were detected in.
type nodeRoundEvents struct {
	active, invited, listened int
	paired, rejects, dropped  int
	// Recovery-layer activity (Options.Recovery; see recovery.go),
	// attributed to the round it was detected in.
	retransmits, repairs, reverts, probes int
}

// assignEvent is one item (edge or arc) receiving a color, attributed
// to the computation round its pairing formed in.
type assignEvent struct {
	round, item, color int
}

// nodeTelemetry is a node's private event log. Only the owning node
// mutates it (node goroutines never share state), so no synchronization
// is needed under either engine; the logs are folded into per-round
// stats after the run completes.
type nodeTelemetry struct {
	rounds  []nodeRoundEvents
	assigns []assignEvent
}

// at returns the event record for a computation round, growing the log
// as needed.
func (t *nodeTelemetry) at(round int) *nodeRoundEvents {
	for len(t.rounds) <= round {
		t.rounds = append(t.rounds, nodeRoundEvents{})
	}
	return &t.rounds[round]
}

// emitRoundStats folds the engine's per-communication-round traffic and
// the nodes' private event logs into one metrics.RoundStats per
// computation round, emitted to the sink in round order.
//
// Invariants (tested in telemetry_test.go): summing Messages,
// Deliveries, Bytes, ConflictsDropped, and DefensiveRejects over the
// stream reproduces the corresponding Result aggregates; Active and
// Paired match Result.Participation; ColoredTotal of the last round is
// the number of colored items.
func emitRoundStats(sink metrics.Sink, traffic []net.RoundTraffic, tels []*nodeTelemetry, phases, items, nNodes int) {
	compRounds := (len(traffic) + phases - 1) / phases
	if compRounds == 0 {
		return
	}
	stats := make([]metrics.RoundStats, compRounds)
	for i := range stats {
		stats[i].Round = i
	}
	// Traffic: each communication round folds into its computation round.
	for _, rt := range traffic {
		s := &stats[rt.Round/phases]
		s.CommRounds++
		s.Messages += rt.Messages
		s.Deliveries += rt.Deliveries
		s.Bytes += rt.Bytes
		for k, kt := range rt.Kinds {
			if kt.Messages == 0 && kt.Deliveries == 0 {
				continue
			}
			if s.ByKind == nil {
				s.ByKind = make(map[string]metrics.Traffic)
			}
			name := msg.Kind(k).String()
			t := s.ByKind[name]
			t.Messages += kt.Messages
			t.Deliveries += kt.Deliveries
			t.Bytes += kt.Bytes
			s.ByKind[name] = t
		}
	}
	// Node events. A final truncated round can log events past the last
	// traffic-complete computation round; clamp rather than drop them.
	clamp := func(r int) int {
		if r >= compRounds {
			return compRounds - 1
		}
		return r
	}
	assignsByRound := make([][]assignEvent, compRounds)
	for _, tel := range tels {
		for r, ev := range tel.rounds {
			s := &stats[clamp(r)]
			s.Active += ev.active
			s.Inviters += ev.invited
			s.Listeners += ev.listened
			s.Paired += ev.paired
			s.DefensiveRejects += ev.rejects
			s.ConflictsDropped += ev.dropped
			s.Retransmits += ev.retransmits
			s.Repairs += ev.repairs
			s.Reverts += ev.reverts
			s.Probes += ev.probes
		}
		for _, a := range tel.assigns {
			r := clamp(a.round)
			assignsByRound[r] = append(assignsByRound[r], a)
		}
	}
	// Palette growth and colored counts, walked in round order. Both
	// endpoints log an assignment for the same item, so distinctness is
	// tracked per item.
	seen := make([]bool, items)
	var palette ColorSet
	maxColor, coloredTotal := -1, 0
	for r := range stats {
		s := &stats[r]
		for _, a := range assignsByRound[r] {
			if !seen[a.item] {
				seen[a.item] = true
				s.Colored++
			}
			palette.Add(a.color)
			if a.color > maxColor {
				maxColor = a.color
			}
		}
		coloredTotal += s.Colored
		s.ColoredTotal = coloredTotal
		s.NumColors = palette.Count()
		s.MaxColor = maxColor
		s.Done = nNodes - s.Active
		sink.EmitRound(*s)
	}
}
