package core

import (
	"context"
	"fmt"

	"dima/internal/automaton"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
)

// ecPhases is the number of communication rounds per computation round
// of Algorithm 1: invitations, responses, and the exchange broadcast.
const ecPhases = 3

// ColorEdges runs Algorithm 1, the distributed matching-based edge
// coloring, on g and returns the per-edge colors plus run metrics.
//
// Each vertex is an independent automaton instance. Per computation
// round: every active node flips a coin (C) to invite or listen; an
// inviter picks a random uncolored incident edge and proposes the lowest
// color available to both endpoints (I), then waits (W); a listener
// collects invitations addressed to it (L), accepts one at random (R);
// pair members assign the color (U) and broadcast it to their neighbors
// (E). Edges colored in one round form a matching, so no two adjacent
// edges can be assigned in the same round, which is the correctness core
// of the paper's Proposition 2.
func ColorEdges(g *graph.Graph, opt Options) (*Result, error) {
	return ColorEdgesCtx(context.Background(), g, opt)
}

// ColorEdgesCtx is ColorEdges bounded by ctx: when ctx is canceled the
// engine abandons the run at the next communication-round barrier and
// the returned Result carries the partial coloring with Aborted set
// (Terminated false, unassigned entries -1). Rounds executed before the
// cancellation are byte-identical to an uncanceled run with the same
// options, on every engine.
func ColorEdgesCtx(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	return colorEdges(ctx, g, nil, opt)
}

// colorEdges is the shared engine behind ColorEdgesCtx and
// ColorEdgesConstrained. forbidden, when non-nil, holds one color set
// per vertex (entries may be nil) that the vertex must treat as already
// used by itself; nil forbidden reproduces ColorEdgesCtx byte for byte.
func colorEdges(ctx context.Context, g *graph.Graph, forbidden []*ColorSet, opt Options) (*Result, error) {
	if g.EdgeIDBound() != g.M() {
		return nil, fmt.Errorf("core: graph has removal holes (%d ids, %d edges); compact before coloring",
			g.EdgeIDBound(), g.M())
	}
	engine := opt.engine()
	if opt.Cluster != nil {
		var err error
		if engine, err = opt.clusterEngine(edgeFactoryName, forbidden != nil); err != nil {
			return nil, err
		}
	}
	base := rng.New(opt.Seed)
	nodes := make([]net.Node, g.N())
	ecs := make([]*ecNode, g.N())
	for u := 0; u < g.N(); u++ {
		ecs[u] = newECNode(g, u, base.Derive(uint64(u)), &opt)
		if forbidden != nil {
			ecs[u].seedForbidden(forbidden)
		}
		nodes[u] = ecs[u]
	}
	var traffic []net.RoundTraffic
	var observe net.RoundObserver
	if opt.Metrics != nil {
		observe = func(rt net.RoundTraffic) { traffic = append(traffic, rt) }
	}
	netRes, err := engine(g, nodes, net.Config{
		MaxRounds:  ecPhases * opt.maxCompRounds(),
		Ctx:        ctx,
		Fault:      opt.Fault,
		Observe:    observe,
		Workers:    opt.Workers,
		ShardStats: opt.ShardStats,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Colors:     make([]int, g.M()),
		CommRounds: netRes.Rounds,
		CompRounds: (netRes.Rounds + ecPhases - 1) / ecPhases,
		Messages:   netRes.Messages,
		Deliveries: netRes.Deliveries,
		Bytes:      netRes.Bytes,
		Terminated: netRes.Terminated,
		Aborted:    netRes.Aborted,
	}
	for i := range res.Colors {
		res.Colors[i] = -1
	}
	// Assemble edge colors from node-local assignments, verifying that
	// both endpoints agree — the distributed analogue of Proposition 2's
	// "v, w color the edge (v, w) with different colors" case.
	endpoints := make([]int8, g.M())
	for _, n := range ecs {
		res.DefensiveRejects += n.defensiveRejects
		res.Retransmits += n.recC.retransmits
		res.Repairs += n.recC.repairs
		res.Reverts += n.recC.reverts
		res.Probes += n.recC.probes
		for e, c := range n.colors {
			endpoints[e]++
			if res.Colors[e] == -1 {
				res.Colors[e] = c
			} else if res.Colors[e] != c {
				return nil, fmt.Errorf("core: edge %v colored %d and %d by its endpoints",
					g.EdgeAt(e), res.Colors[e], c)
			}
		}
	}
	for _, k := range endpoints {
		if k == 1 {
			res.HalfColored++
		}
	}
	if opt.CollectParticipation {
		res.Participation = aggregateParticipation(res.CompRounds, func(u int) []bool {
			return ecs[u].paired
		}, g.N())
	}
	if opt.Metrics != nil {
		tels := make([]*nodeTelemetry, len(ecs))
		for i, n := range ecs {
			tels[i] = &n.tel
		}
		emitRoundStats(opt.Metrics, traffic, tels, ecPhases, g.M(), g.N())
	}
	if res.Terminated {
		for e, c := range res.Colors {
			if c < 0 {
				return nil, fmt.Errorf("core: terminated with uncolored edge %v", g.EdgeAt(graph.EdgeID(e)))
			}
		}
	}
	res.countColors()
	return res, nil
}

// ecNode is one vertex of Algorithm 1.
type ecNode struct {
	id   int
	g    *graph.Graph
	opt  *Options
	r    *rng.Rand
	mach *automaton.Machine

	colors    map[graph.EdgeID]int // colors of own incident edges
	uncolored []graph.EdgeID       // own incident edges not yet colored
	usedSelf  ColorSet             // colors on own colored edges (live complement)
	usedNbr   []ColorSet           // usedNbr[i]: colors used by Neighbors(u)[i] (the dead list)
	nbrIndex  map[int]int          // neighbor vertex -> index in Neighbors(u)
	forbid    *ColorSet            // externally forbidden colors (ColorEdgesConstrained), folded into usedSelf

	// Current invitation, valid while the machine is in I/W.
	inviteEdge  graph.EdgeID
	inviteTo    int
	inviteColor int

	pendingPaints []msg.Paint // colors assigned this round, to broadcast in E

	defensiveRejects int

	// Recovery state (Options.Recovery; see recovery.go). pendingAck
	// holds responder-side assignments awaiting the partner's paint
	// broadcast; retransQ holds Responses queued for the next respond
	// phase; attempts counts failed invitations per edge so stale
	// proposals widen their color window instead of looping forever.
	pendingAck map[graph.EdgeID]*ecPending
	retransQ   []msg.Message
	attempts   map[graph.EdgeID]int
	recC       recCounters

	// Telemetry (Options.Metrics): obs gates all event logging, curRound
	// is the computation round of the current Step.
	obs      bool
	curRound int
	tel      nodeTelemetry

	// Participation log (Options.CollectParticipation): one entry per
	// computation round this node was active in; true if it paired.
	paired []bool
}

func newECNode(g *graph.Graph, u int, r *rng.Rand, opt *Options) *ecNode {
	n := &ecNode{
		id:       u,
		g:        g,
		opt:      opt,
		obs:      opt.Metrics != nil,
		r:        r,
		mach:     automaton.NewMachine(u, opt.Hook),
		colors:   make(map[graph.EdgeID]int, g.Degree(u)),
		usedNbr:  make([]ColorSet, g.Degree(u)),
		nbrIndex: make(map[int]int, g.Degree(u)),
	}
	if opt.Recovery.Enabled {
		n.pendingAck = make(map[graph.EdgeID]*ecPending)
		n.attempts = make(map[graph.EdgeID]int)
	}
	for i, v := range g.Neighbors(u) {
		n.nbrIndex[v] = i
	}
	n.uncolored = append(n.uncolored, g.IncidentEdges(u)...)
	if len(n.uncolored) == 0 {
		// Isolated vertex: walk a legal path straight to Done so the
		// machine invariant (all terminations pass through D) holds.
		for _, s := range []automaton.State{automaton.Listen, automaton.Respond,
			automaton.Update, automaton.Exchange, automaton.Done} {
			n.mach.MustTransition(s)
		}
	}
	return n
}

// seedForbidden folds externally forbidden colors (per vertex) into the
// node's live and dead lists before the run starts: forbidden[u] acts as
// colors already on u's own edges, and each neighbor's forbidden set as
// colors already broadcast by that neighbor. The set is kept on the node
// so recovery's rebuildUsedSelf cannot drop it.
func (n *ecNode) seedForbidden(forbidden []*ColorSet) {
	if f := forbidden[n.id]; f != nil && len(f.words) > 0 {
		n.forbid = f.Clone()
		n.usedSelf.AddSet(n.forbid)
	}
	for i, v := range n.g.Neighbors(n.id) {
		n.usedNbr[i].AddSet(forbidden[v])
	}
}

func (n *ecNode) ID() int { return n.id }

func (n *ecNode) Done() bool { return n.mach.State() == automaton.Done }

func (n *ecNode) recOn() bool { return n.opt.Recovery.Enabled }

func (n *ecNode) Step(round int, inbox []msg.Message) []msg.Message {
	if n.obs {
		n.curRound = round / ecPhases
	}
	if n.Done() {
		if !n.recOn() {
			return nil
		}
		return n.stepDone(round%ecPhases, inbox)
	}
	switch round % ecPhases {
	case 0:
		return n.phaseChooseInvite(inbox)
	case 1:
		return n.phaseRespond(inbox)
	default:
		return n.phaseUpdateExchange(inbox)
	}
}

// stepDone services recovery traffic after the node finished: a finished
// node is the authority for its colored edges, so it keeps answering
// invitations for them, and a negative acknowledgement (its partner
// could not adopt a one-sided assignment) reverts the edge and
// resurrects the node as a listener for the rest of the current cycle.
func (n *ecNode) stepDone(phase int, inbox []msg.Message) []msg.Message {
	if phase == 2 {
		return nil // acknowledgements and invitations never land here
	}
	before := len(n.uncolored)
	n.absorbAcks(inbox)
	if len(n.uncolored) > before {
		n.mach = automaton.NewMachine(n.id, n.opt.Hook)
		n.mach.MustTransition(automaton.Listen)
		if phase == 1 {
			n.mach.MustTransition(automaton.Respond)
		}
	}
	if phase == 1 {
		return n.answerColoredInvites(inbox, nil)
	}
	return nil
}

// phaseChooseInvite applies neighbor updates from the previous exchange,
// runs the C state's coin toss, and broadcasts an invitation if the node
// became an inviter. Under recovery it first settles acknowledgements:
// incoming acks, partner paints that implicitly acknowledge or repair an
// assignment, and the aging of its own unacknowledged assignments.
func (n *ecNode) phaseChooseInvite(inbox []msg.Message) []msg.Message {
	var out []msg.Message
	if n.recOn() {
		n.absorbAcks(inbox)
	}
	for _, m := range inbox {
		if m.Kind != msg.KindUpdate {
			continue
		}
		if i, ok := n.nbrIndex[m.From]; ok {
			for _, p := range m.Paints {
				n.usedNbr[i].Add(p.Color)
			}
			if n.recOn() {
				out = n.absorbPaints(m, out)
			}
		}
	}
	if n.recOn() {
		n.ageAcks()
		if len(n.uncolored) == 0 {
			// All own edges colored; the node only lingers for
			// outstanding acknowledgements. Listen until they settle.
			n.mach.MustTransition(automaton.Listen)
			return out
		}
	}
	if n.opt.CollectParticipation {
		n.paired = append(n.paired, false)
	}
	var ev *nodeRoundEvents
	if n.obs {
		ev = n.tel.at(n.curRound)
		ev.active++
	}
	// C state: coin toss (line 1.8).
	if n.r.Bool() {
		// Inviter: random uncolored edge, lowest available color
		// (lines 1.10–1.12).
		n.mach.MustTransition(automaton.Invite)
		if ev != nil {
			ev.invited++
		}
		e := n.uncolored[n.r.Intn(len(n.uncolored))]
		v := n.g.EdgeAt(e).Other(n.id)
		c := n.proposeColor(e, &n.usedNbr[n.nbrIndex[v]])
		if n.recOn() {
			n.attempts[e]++
		}
		n.inviteEdge, n.inviteTo, n.inviteColor = e, v, c
		return append(out, msg.Message{
			Kind: msg.KindInvite, From: n.id, To: v, Edge: int(e), Color: c,
		})
	}
	n.mach.MustTransition(automaton.Listen)
	if ev != nil {
		ev.listened++
	}
	return out
}

// absorbPaints handles the recovery significance of one neighbor's paint
// broadcast: a paint naming a shared edge is the implicit acknowledgement
// of this node's assignment — or, if this node has the edge uncolored,
// the partner's authoritative assignment to adopt (a lost Response left
// this side behind). An unadoptable color is answered with a negative
// acknowledgement so the partner reverts.
func (n *ecNode) absorbPaints(m msg.Message, out []msg.Message) []msg.Message {
	for _, p := range m.Paints {
		e := graph.EdgeID(p.Edge)
		if !n.incidentFrom(e, m.From) {
			continue
		}
		if pa, ok := n.pendingAck[e]; ok && pa.partner == m.From {
			delete(n.pendingAck, e)
		}
		if !n.isUncolored(e) {
			continue
		}
		if n.usedSelf.Has(p.Color) {
			out = append(out, ackMsg(n.id, m.From, int(e), p.Color, false))
			continue
		}
		n.assign(e, p.Color, m.From)
		n.repair()
	}
	return out
}

// ageAcks advances the acknowledgement clocks of this node's one-sided
// assignments, queueing a Response retransmission for each that timed
// out, and abandoning those whose retry budget is spent (the edge stays
// colored here; the partner's own re-invitations can still repair it).
func (n *ecNode) ageAcks() {
	if len(n.pendingAck) == 0 {
		return
	}
	for _, e := range sortedEdgeKeys(n.pendingAck) {
		pa := n.pendingAck[e]
		pa.age++
		if pa.age < n.opt.Recovery.Timeout() {
			continue
		}
		if pa.tries >= n.opt.Recovery.Budget() {
			delete(n.pendingAck, e)
			continue
		}
		pa.tries++
		pa.age = 0
		n.retransQ = append(n.retransQ, msg.Message{
			Kind: msg.KindResponse, From: n.id, To: pa.partner,
			Edge: int(e), Color: pa.color, Seq: uint32(pa.tries),
		})
		n.recC.retransmits++
		if n.obs {
			n.tel.at(n.curRound).retransmits++
		}
	}
}

// proposeColor picks the color to propose for edge e given the target
// neighbor's dead list, per the configured rule. Under recovery,
// repeatedly failed invitations widen a uniform-random window (as
// Algorithm 2 does) because lost updates can leave the inviter unable to
// see why its lowest-free proposal keeps being rejected.
func (n *ecNode) proposeColor(e graph.EdgeID, target *ColorSet) int {
	widen := 0
	if n.recOn() {
		widen = n.attempts[e] / 4
	}
	if n.opt.ColorRule == RandomAvailable {
		bound := MaxOf(&n.usedSelf, target) + 2 + widen
		free := FreeBelow(bound, &n.usedSelf, target)
		return free[n.r.Intn(len(free))] // nonempty: bound exceeds max used
	}
	if widen == 0 {
		return LowestFree(&n.usedSelf, target)
	}
	bound := MaxOf(&n.usedSelf, target) + 2 + widen
	free := FreeBelow(bound, &n.usedSelf, target)
	return free[n.r.Intn(len(free))]
}

// phaseRespond handles the L→R side (accept one invitation) and the I→W
// side (inviters idle while their proposal is in flight). Under recovery
// it first settles negative acknowledgements from the previous choose
// phase, drains queued retransmissions, and answers invitations for
// already-committed edges with their authoritative color.
func (n *ecNode) phaseRespond(inbox []msg.Message) []msg.Message {
	var out []msg.Message
	if n.recOn() {
		n.absorbAcks(inbox)
		out = append(out, n.retransQ...)
		n.retransQ = nil
	}
	if n.mach.State() == automaton.Invite {
		n.mach.MustTransition(automaton.Wait)
		return out
	}
	n.mach.MustTransition(automaton.Respond)
	mine, _ := automaton.SplitInvites(n.id, inbox)
	// Defensive validation: an invitation is acceptable only if its
	// color is unused here and its edge is still uncolored. The protocol
	// invariants guarantee this under reliable delivery (the inviter
	// proposed from current one-hop knowledge); under injected faults
	// stale invitations are rejected here.
	valid := mine[:0:0]
	for _, m := range mine {
		if n.recOn() {
			if c, ok := n.colors[graph.EdgeID(m.Edge)]; ok && n.incidentFrom(graph.EdgeID(m.Edge), m.From) {
				// The inviter renegotiates an edge this node already
				// committed: its earlier Response (or the inviter's
				// acceptance) was lost. Re-respond with the committed
				// color so the inviter adopts it.
				out = append(out, msg.Message{
					Kind: msg.KindResponse, From: n.id, To: m.From,
					Edge: m.Edge, Color: c, Seq: m.Seq + 1,
				})
				n.retransmit()
				continue
			}
		}
		if !n.usedSelf.Has(m.Color) && n.isUncolored(graph.EdgeID(m.Edge)) {
			valid = append(valid, m)
		} else {
			n.reject()
		}
	}
	if len(valid) == 0 {
		return out
	}
	// R state: accept one invitation uniformly at random (line 1.21)
	// and assign the color immediately (line 1.23).
	m := valid[n.r.Intn(len(valid))]
	n.assign(graph.EdgeID(m.Edge), m.Color, m.From)
	if n.recOn() {
		n.pendingAck[graph.EdgeID(m.Edge)] = &ecPending{color: m.Color, partner: m.From}
	}
	return append(out, msg.Message{
		Kind: msg.KindResponse, From: n.id, To: m.From, Edge: m.Edge, Color: m.Color,
	})
}

// phaseUpdateExchange closes the round: inviters apply an acceptance if
// one arrived (W→U), everyone broadcasts newly used colors (U→E), and
// the machine loops to C or stops at D. Under recovery the response
// handling generalizes from the one expected reply to any Response for
// an incident edge (adopting, acknowledging, or refusing it), and the
// node stays live while assignments await acknowledgement.
func (n *ecNode) phaseUpdateExchange(inbox []msg.Message) []msg.Message {
	wasWait := n.mach.State() == automaton.Wait
	switch n.mach.State() {
	case automaton.Wait:
		if !n.recOn() {
			if m, ok, _ := automaton.FindResponse(n.id, int(n.inviteEdge), inbox); ok {
				if m.From == n.inviteTo && m.Color == n.inviteColor {
					n.assign(n.inviteEdge, m.Color, m.From)
				} else {
					// A response for my edge with mismatched partner or
					// color cannot occur under the protocol.
					n.reject()
				}
			}
		}
		n.mach.MustTransition(automaton.Update)
	case automaton.Respond:
		n.mach.MustTransition(automaton.Update)
	default:
		panic(fmt.Sprintf("core: node %d in state %v at update phase", n.id, n.mach.State()))
	}
	n.mach.MustTransition(automaton.Exchange)

	var out []msg.Message
	if n.recOn() {
		out = n.recoverResponses(inbox, wasWait)
	}
	if len(n.pendingPaints) > 0 {
		out = append(out, msg.Message{
			Kind: msg.KindUpdate, From: n.id, To: msg.Broadcast,
			Edge: -1, Color: -1, Paints: n.pendingPaints,
		})
		n.pendingPaints = nil
	}
	if len(n.uncolored) == 0 && !(n.recOn() && len(n.pendingAck) > 0) {
		n.mach.MustTransition(automaton.Done)
	} else {
		n.mach.MustTransition(automaton.Choose)
	}
	return out
}

// recoverResponses is the recovery generalization of the Wait state's
// response handling: every Response addressed to this node for an
// incident edge is settled — adopted if the edge is uncolored here and
// the color is free, positively acknowledged if it matches the committed
// color (ending the sender's retransmission loop), or refused with a
// negative acknowledgement so the sender reverts. The one response the
// reliable protocol expects (fresh acceptance of this round's invitation)
// is not counted as a repair.
func (n *ecNode) recoverResponses(inbox []msg.Message, wasWait bool) []msg.Message {
	var out []msg.Message
	for _, m := range inbox {
		if m.Kind != msg.KindResponse || m.To != n.id {
			continue
		}
		e := graph.EdgeID(m.Edge)
		if !n.incidentFrom(e, m.From) || m.Color < 0 {
			continue
		}
		if c, ok := n.colors[e]; ok {
			out = append(out, ackMsg(n.id, m.From, m.Edge, m.Color, c == m.Color))
			continue
		}
		if n.usedSelf.Has(m.Color) {
			// Cannot adopt: the color is already on another of this
			// node's edges. Demand a revert.
			out = append(out, ackMsg(n.id, m.From, m.Edge, m.Color, false))
			continue
		}
		n.assign(e, m.Color, m.From)
		if !(wasWait && e == n.inviteEdge && m.From == n.inviteTo && m.Color == n.inviteColor) {
			n.repair()
		}
	}
	return out
}

// absorbAcks applies incoming KindAck messages: a positive ack settles
// the matching pendingAck entry; a negative ack with a color reverts the
// named one-sided assignment; probes (color -1) are an Algorithm 2
// concept and ignored here.
func (n *ecNode) absorbAcks(inbox []msg.Message) {
	for _, m := range inbox {
		if m.Kind != msg.KindAck || m.To != n.id {
			continue
		}
		e := graph.EdgeID(m.Edge)
		if !n.incidentFrom(e, m.From) {
			continue
		}
		if m.Keep {
			if pa, ok := n.pendingAck[e]; ok && pa.partner == m.From && pa.color == m.Color {
				delete(n.pendingAck, e)
			}
			continue
		}
		if m.Color < 0 {
			continue
		}
		n.revert(e, m.Color)
	}
}

// revert undoes this node's one-sided assignment of color c to edge e
// after the partner refused it. Stale reverts (the edge has moved on to
// a different color, or was never colored here) are ignored.
func (n *ecNode) revert(e graph.EdgeID, c int) {
	cur, ok := n.colors[e]
	if !ok || cur != c {
		return
	}
	delete(n.colors, e)
	delete(n.pendingAck, e)
	n.uncolored = append(n.uncolored, e)
	n.rebuildUsedSelf()
	for i, p := range n.pendingPaints {
		if graph.EdgeID(p.Edge) == e {
			n.pendingPaints = append(n.pendingPaints[:i], n.pendingPaints[i+1:]...)
			break
		}
	}
	n.recC.reverts++
	if n.obs {
		n.tel.at(n.curRound).reverts++
	}
}

// rebuildUsedSelf recomputes the live-complement set from scratch;
// ColorSet has no removal, and reverts are rare enough that a rebuild is
// simpler than reference counting.
func (n *ecNode) rebuildUsedSelf() {
	n.usedSelf = ColorSet{}
	n.usedSelf.AddSet(n.forbid)
	for _, c := range n.colors {
		n.usedSelf.Add(c)
	}
}

// answerColoredInvites re-responds to invitations for edges this node
// already committed — the finished node's half of the authoritative
// re-response mechanism.
func (n *ecNode) answerColoredInvites(inbox []msg.Message, out []msg.Message) []msg.Message {
	mine, _ := automaton.SplitInvites(n.id, inbox)
	for _, m := range mine {
		e := graph.EdgeID(m.Edge)
		if !n.incidentFrom(e, m.From) {
			continue
		}
		c, ok := n.colors[e]
		if !ok {
			continue
		}
		out = append(out, msg.Message{
			Kind: msg.KindResponse, From: n.id, To: m.From,
			Edge: m.Edge, Color: c, Seq: m.Seq + 1,
		})
		n.retransmit()
	}
	return out
}

// repair and retransmit bump the recovery counters plus their telemetry
// mirrors.
func (n *ecNode) repair() {
	n.recC.repairs++
	if n.obs {
		n.tel.at(n.curRound).repairs++
	}
}

func (n *ecNode) retransmit() {
	n.recC.retransmits++
	if n.obs {
		n.tel.at(n.curRound).retransmits++
	}
}

// incidentFrom reports whether e is an edge between this node and from —
// the validity gate for every recovery message before it touches state.
func (n *ecNode) incidentFrom(e graph.EdgeID, from int) bool {
	if e < 0 || int(e) >= n.g.M() {
		return false
	}
	ed := n.g.EdgeAt(e)
	return (ed.U == n.id && ed.V == from) || (ed.V == n.id && ed.U == from)
}

// reject counts a responder-side defensive rejection.
func (n *ecNode) reject() {
	n.defensiveRejects++
	if n.obs {
		n.tel.at(n.curRound).rejects++
	}
}

// assign colors edge e with c, updating the live/dead bookkeeping and
// queueing the exchange broadcast.
func (n *ecNode) assign(e graph.EdgeID, c int, partner int) {
	if n.opt.CollectParticipation && len(n.paired) > 0 {
		n.paired[len(n.paired)-1] = true
	}
	if n.obs {
		n.tel.at(n.curRound).paired++
		n.tel.assigns = append(n.tel.assigns, assignEvent{round: n.curRound, item: int(e), color: c})
	}
	n.colors[e] = c
	n.usedSelf.Add(c)
	if n.recOn() {
		delete(n.attempts, e)
	}
	if i, ok := n.nbrIndex[partner]; ok {
		n.usedNbr[i].Add(c) // the partner uses c now too
	}
	for i, id := range n.uncolored {
		if id == e {
			n.uncolored[i] = n.uncolored[len(n.uncolored)-1]
			n.uncolored = n.uncolored[:len(n.uncolored)-1]
			break
		}
	}
	n.pendingPaints = append(n.pendingPaints, msg.Paint{Edge: int(e), Color: c})
}

func (n *ecNode) isUncolored(e graph.EdgeID) bool {
	for _, id := range n.uncolored {
		if id == e {
			return true
		}
	}
	return false
}
