package core

import (
	"fmt"

	"dima/internal/automaton"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
)

// ecPhases is the number of communication rounds per computation round
// of Algorithm 1: invitations, responses, and the exchange broadcast.
const ecPhases = 3

// ColorEdges runs Algorithm 1, the distributed matching-based edge
// coloring, on g and returns the per-edge colors plus run metrics.
//
// Each vertex is an independent automaton instance. Per computation
// round: every active node flips a coin (C) to invite or listen; an
// inviter picks a random uncolored incident edge and proposes the lowest
// color available to both endpoints (I), then waits (W); a listener
// collects invitations addressed to it (L), accepts one at random (R);
// pair members assign the color (U) and broadcast it to their neighbors
// (E). Edges colored in one round form a matching, so no two adjacent
// edges can be assigned in the same round, which is the correctness core
// of the paper's Proposition 2.
func ColorEdges(g *graph.Graph, opt Options) (*Result, error) {
	base := rng.New(opt.Seed)
	nodes := make([]net.Node, g.N())
	ecs := make([]*ecNode, g.N())
	for u := 0; u < g.N(); u++ {
		ecs[u] = newECNode(g, u, base.Derive(uint64(u)), &opt)
		nodes[u] = ecs[u]
	}
	var traffic []net.RoundTraffic
	var observe net.RoundObserver
	if opt.Metrics != nil {
		observe = func(rt net.RoundTraffic) { traffic = append(traffic, rt) }
	}
	netRes, err := opt.engine()(g, nodes, net.Config{
		MaxRounds: ecPhases * opt.maxCompRounds(),
		Fault:     opt.Fault,
		Observe:   observe,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Colors:     make([]int, g.M()),
		CommRounds: netRes.Rounds,
		CompRounds: (netRes.Rounds + ecPhases - 1) / ecPhases,
		Messages:   netRes.Messages,
		Deliveries: netRes.Deliveries,
		Bytes:      netRes.Bytes,
		Terminated: netRes.Terminated,
	}
	for i := range res.Colors {
		res.Colors[i] = -1
	}
	// Assemble edge colors from node-local assignments, verifying that
	// both endpoints agree — the distributed analogue of Proposition 2's
	// "v, w color the edge (v, w) with different colors" case.
	endpoints := make([]int8, g.M())
	for _, n := range ecs {
		res.DefensiveRejects += n.defensiveRejects
		for e, c := range n.colors {
			endpoints[e]++
			if res.Colors[e] == -1 {
				res.Colors[e] = c
			} else if res.Colors[e] != c {
				return nil, fmt.Errorf("core: edge %v colored %d and %d by its endpoints",
					g.EdgeAt(e), res.Colors[e], c)
			}
		}
	}
	for _, k := range endpoints {
		if k == 1 {
			res.HalfColored++
		}
	}
	if opt.CollectParticipation {
		res.Participation = aggregateParticipation(res.CompRounds, func(u int) []bool {
			return ecs[u].paired
		}, g.N())
	}
	if opt.Metrics != nil {
		tels := make([]*nodeTelemetry, len(ecs))
		for i, n := range ecs {
			tels[i] = &n.tel
		}
		emitRoundStats(opt.Metrics, traffic, tels, ecPhases, g.M(), g.N())
	}
	if res.Terminated {
		for e, c := range res.Colors {
			if c < 0 {
				return nil, fmt.Errorf("core: terminated with uncolored edge %v", g.EdgeAt(graph.EdgeID(e)))
			}
		}
	}
	res.countColors()
	return res, nil
}

// ecNode is one vertex of Algorithm 1.
type ecNode struct {
	id   int
	g    *graph.Graph
	opt  *Options
	r    *rng.Rand
	mach *automaton.Machine

	colors    map[graph.EdgeID]int // colors of own incident edges
	uncolored []graph.EdgeID       // own incident edges not yet colored
	usedSelf  ColorSet             // colors on own colored edges (live complement)
	usedNbr   []*ColorSet          // usedNbr[i]: colors used by Neighbors(u)[i] (the dead list)
	nbrIndex  map[int]int          // neighbor vertex -> index in Neighbors(u)

	// Current invitation, valid while the machine is in I/W.
	inviteEdge  graph.EdgeID
	inviteTo    int
	inviteColor int

	pendingPaints []msg.Paint // colors assigned this round, to broadcast in E

	defensiveRejects int

	// Telemetry (Options.Metrics): obs gates all event logging, curRound
	// is the computation round of the current Step.
	obs      bool
	curRound int
	tel      nodeTelemetry

	// Participation log (Options.CollectParticipation): one entry per
	// computation round this node was active in; true if it paired.
	paired []bool
}

func newECNode(g *graph.Graph, u int, r *rng.Rand, opt *Options) *ecNode {
	n := &ecNode{
		id:       u,
		g:        g,
		opt:      opt,
		obs:      opt.Metrics != nil,
		r:        r,
		mach:     automaton.NewMachine(u, opt.Hook),
		colors:   make(map[graph.EdgeID]int, g.Degree(u)),
		usedNbr:  make([]*ColorSet, g.Degree(u)),
		nbrIndex: make(map[int]int, g.Degree(u)),
	}
	for i, v := range g.Neighbors(u) {
		n.usedNbr[i] = &ColorSet{}
		n.nbrIndex[v] = i
	}
	n.uncolored = append(n.uncolored, g.IncidentEdges(u)...)
	if len(n.uncolored) == 0 {
		// Isolated vertex: walk a legal path straight to Done so the
		// machine invariant (all terminations pass through D) holds.
		for _, s := range []automaton.State{automaton.Listen, automaton.Respond,
			automaton.Update, automaton.Exchange, automaton.Done} {
			n.mach.MustTransition(s)
		}
	}
	return n
}

func (n *ecNode) ID() int { return n.id }

func (n *ecNode) Done() bool { return n.mach.State() == automaton.Done }

func (n *ecNode) Step(round int, inbox []msg.Message) []msg.Message {
	if n.Done() {
		return nil
	}
	if n.obs {
		n.curRound = round / ecPhases
	}
	switch round % ecPhases {
	case 0:
		return n.phaseChooseInvite(inbox)
	case 1:
		return n.phaseRespond(inbox)
	default:
		return n.phaseUpdateExchange(inbox)
	}
}

// phaseChooseInvite applies neighbor updates from the previous exchange,
// runs the C state's coin toss, and broadcasts an invitation if the node
// became an inviter.
func (n *ecNode) phaseChooseInvite(inbox []msg.Message) []msg.Message {
	for _, m := range inbox {
		if m.Kind != msg.KindUpdate {
			continue
		}
		if i, ok := n.nbrIndex[m.From]; ok {
			for _, p := range m.Paints {
				n.usedNbr[i].Add(p.Color)
			}
		}
	}
	if n.opt.CollectParticipation {
		n.paired = append(n.paired, false)
	}
	var ev *nodeRoundEvents
	if n.obs {
		ev = n.tel.at(n.curRound)
		ev.active++
	}
	// C state: coin toss (line 1.8).
	if n.r.Bool() {
		// Inviter: random uncolored edge, lowest available color
		// (lines 1.10–1.12).
		n.mach.MustTransition(automaton.Invite)
		if ev != nil {
			ev.invited++
		}
		e := n.uncolored[n.r.Intn(len(n.uncolored))]
		v := n.g.EdgeAt(e).Other(n.id)
		c := n.proposeColor(n.usedNbr[n.nbrIndex[v]])
		n.inviteEdge, n.inviteTo, n.inviteColor = e, v, c
		return []msg.Message{{
			Kind: msg.KindInvite, From: n.id, To: v, Edge: int(e), Color: c,
		}}
	}
	n.mach.MustTransition(automaton.Listen)
	if ev != nil {
		ev.listened++
	}
	return nil
}

// proposeColor picks the color to propose given the target neighbor's
// dead list, per the configured rule.
func (n *ecNode) proposeColor(target *ColorSet) int {
	if n.opt.ColorRule == RandomAvailable {
		bound := MaxOf(&n.usedSelf, target) + 2
		free := FreeBelow(bound, &n.usedSelf, target)
		return free[n.r.Intn(len(free))] // nonempty: bound exceeds max used
	}
	return LowestFree(&n.usedSelf, target)
}

// phaseRespond handles the L→R side (accept one invitation) and the I→W
// side (inviters idle while their proposal is in flight).
func (n *ecNode) phaseRespond(inbox []msg.Message) []msg.Message {
	if n.mach.State() == automaton.Invite {
		n.mach.MustTransition(automaton.Wait)
		return nil
	}
	n.mach.MustTransition(automaton.Respond)
	mine, _ := automaton.SplitInvites(n.id, inbox)
	// Defensive validation: an invitation is acceptable only if its
	// color is unused here and its edge is still uncolored. The protocol
	// invariants guarantee this under reliable delivery (the inviter
	// proposed from current one-hop knowledge); under injected faults
	// stale invitations are rejected here.
	valid := mine[:0:0]
	for _, m := range mine {
		if !n.usedSelf.Has(m.Color) && n.isUncolored(graph.EdgeID(m.Edge)) {
			valid = append(valid, m)
		} else {
			n.reject()
		}
	}
	if len(valid) == 0 {
		return nil
	}
	// R state: accept one invitation uniformly at random (line 1.21)
	// and assign the color immediately (line 1.23).
	m := valid[n.r.Intn(len(valid))]
	n.assign(graph.EdgeID(m.Edge), m.Color, m.From)
	return []msg.Message{{
		Kind: msg.KindResponse, From: n.id, To: m.From, Edge: m.Edge, Color: m.Color,
	}}
}

// phaseUpdateExchange closes the round: inviters apply an acceptance if
// one arrived (W→U), everyone broadcasts newly used colors (U→E), and
// the machine loops to C or stops at D.
func (n *ecNode) phaseUpdateExchange(inbox []msg.Message) []msg.Message {
	switch n.mach.State() {
	case automaton.Wait:
		if m, ok, _ := automaton.FindResponse(n.id, int(n.inviteEdge), inbox); ok {
			if m.From == n.inviteTo && m.Color == n.inviteColor {
				n.assign(n.inviteEdge, m.Color, m.From)
			} else {
				// A response for my edge with mismatched partner or
				// color cannot occur under the protocol.
				n.reject()
			}
		}
		n.mach.MustTransition(automaton.Update)
	case automaton.Respond:
		n.mach.MustTransition(automaton.Update)
	default:
		panic(fmt.Sprintf("core: node %d in state %v at update phase", n.id, n.mach.State()))
	}
	n.mach.MustTransition(automaton.Exchange)

	var out []msg.Message
	if len(n.pendingPaints) > 0 {
		out = []msg.Message{{
			Kind: msg.KindUpdate, From: n.id, To: msg.Broadcast,
			Edge: -1, Color: -1, Paints: n.pendingPaints,
		}}
		n.pendingPaints = nil
	}
	if len(n.uncolored) == 0 {
		n.mach.MustTransition(automaton.Done)
	} else {
		n.mach.MustTransition(automaton.Choose)
	}
	return out
}

// reject counts a responder-side defensive rejection.
func (n *ecNode) reject() {
	n.defensiveRejects++
	if n.obs {
		n.tel.at(n.curRound).rejects++
	}
}

// assign colors edge e with c, updating the live/dead bookkeeping and
// queueing the exchange broadcast.
func (n *ecNode) assign(e graph.EdgeID, c int, partner int) {
	if n.opt.CollectParticipation && len(n.paired) > 0 {
		n.paired[len(n.paired)-1] = true
	}
	if n.obs {
		n.tel.at(n.curRound).paired++
		n.tel.assigns = append(n.tel.assigns, assignEvent{round: n.curRound, item: int(e), color: c})
	}
	n.colors[e] = c
	n.usedSelf.Add(c)
	if i, ok := n.nbrIndex[partner]; ok {
		n.usedNbr[i].Add(c) // the partner uses c now too
	}
	for i, id := range n.uncolored {
		if id == e {
			n.uncolored[i] = n.uncolored[len(n.uncolored)-1]
			n.uncolored = n.uncolored[:len(n.uncolored)-1]
			break
		}
	}
	n.pendingPaints = append(n.pendingPaints, msg.Paint{Edge: int(e), Color: c})
}

func (n *ecNode) isUncolored(e graph.EdgeID) bool {
	for _, id := range n.uncolored {
		if id == e {
			return true
		}
	}
	return false
}
