package core

import (
	"context"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dima/internal/automaton"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
	"dima/internal/rng"
)

// TestMain lets the test binary double as the cluster node binary: when
// RunTCP re-execs this process with the node environment set,
// MaybeNodeMain serves the shard and exits before any test runs. The
// package's init has already registered the real edge/strong factories,
// so spawned nodes run the production protocol code.
func TestMain(m *testing.M) {
	net.MaybeNodeMain()
	os.Exit(m.Run())
}

// clusterNodeCounts is the process ladder every cluster equivalence
// test walks: the degenerate single-node cluster, small multi-node
// layouts with real cross-process traffic, and one count that exceeds
// plausible shard balance (clamped to the vertex count by the engine).
var clusterNodeCounts = []int{1, 2, 3, 5}

// assertNoChildProcesses fails the test if this process still has live
// children after a cluster run — a leaked node process would keep its
// pipe FDs and pid slot until the test binary exits.
func assertNoChildProcesses(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		kids, err := os.ReadFile("/proc/self/task/" + itoa(os.Getpid()) + "/children")
		if err != nil {
			return // no procfs on this platform; nothing to check
		}
		if len(kids) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked node child processes: %q", kids)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// clusterVariant is one cell of the equivalence matrix: a fault /
// recovery configuration that both the in-process reference and every
// cluster layout run with the same seed.
type clusterVariant struct {
	name     string
	fault    net.FaultInjector
	recovery automaton.Recovery
}

var clusterVariants = []clusterVariant{
	{name: "reliable"},
	{
		name:     "faulty-recovery",
		fault:    net.DropRate{Seed: 4, P: 0.12},
		recovery: automaton.Recovery{Enabled: true},
	},
}

// runPair runs the same coloring once on the in-process sync engine and
// once on a TCP cluster of k node processes, returning both results and
// per-round metric streams for comparison.
func clusterOptions(seed uint64, v clusterVariant, mem *metrics.Memory) Options {
	return Options{
		Seed:                 seed,
		Fault:                v.fault,
		Recovery:             v.recovery,
		CollectParticipation: true,
		Metrics:              mem,
	}
}

// TestClusterColorEdgesMatchesSync is the top-level byte-identity
// property for Algorithm 1 on the tcp engine: for every node-count and
// fault variant, ColorEdges through real OS processes must reproduce
// the sequential run exactly — coloring, Result aggregates,
// participation log, and the per-round telemetry stream.
func TestClusterColorEdgesMatchesSync(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns node processes")
	}
	g, err := gen.ErdosRenyiAvgDegree(rng.New(31), 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range clusterVariants {
		t.Run(v.name, func(t *testing.T) {
			wantMem := &metrics.Memory{}
			want, err := ColorEdges(g, clusterOptions(9, v, wantMem))
			if err != nil {
				t.Fatal(err)
			}
			if !want.Terminated {
				t.Fatalf("reference run truncated at %d rounds", want.CompRounds)
			}
			for _, k := range clusterNodeCounts {
				mem := &metrics.Memory{}
				opt := clusterOptions(9, v, mem)
				opt.Cluster = &net.TCPCluster{Nodes: k, Stderr: os.Stderr}
				res, err := ColorEdges(g, opt)
				if err != nil {
					t.Fatalf("nodes=%d: %v", k, err)
				}
				if !reflect.DeepEqual(res, want) {
					t.Fatalf("nodes=%d: Result diverged from sync:\n%+v\n%+v", k, res, want)
				}
				if !reflect.DeepEqual(mem.Rounds, wantMem.Rounds) {
					t.Fatalf("nodes=%d: per-round metric stream diverged from sync", k)
				}
				assertNoChildProcesses(t)
			}
		})
	}
}

// TestClusterColorStrongMatchesSync is the same property for Algorithm
// 2, whose cluster factory must also rebuild the symmetric digraph
// remotely and round-trip the extra conflict accounting.
func TestClusterColorStrongMatchesSync(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns node processes")
	}
	g, err := gen.ErdosRenyiAvgDegree(rng.New(37), 48, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	for _, v := range clusterVariants {
		t.Run(v.name, func(t *testing.T) {
			wantMem := &metrics.Memory{}
			want, err := ColorStrong(d, clusterOptions(17, v, wantMem))
			if err != nil {
				t.Fatal(err)
			}
			if !want.Terminated {
				t.Fatalf("reference run truncated at %d rounds", want.CompRounds)
			}
			for _, k := range clusterNodeCounts {
				mem := &metrics.Memory{}
				opt := clusterOptions(17, v, mem)
				opt.Cluster = &net.TCPCluster{Nodes: k, Stderr: os.Stderr}
				res, err := ColorStrong(d, opt)
				if err != nil {
					t.Fatalf("nodes=%d: %v", k, err)
				}
				if !reflect.DeepEqual(res, want) {
					t.Fatalf("nodes=%d: Result diverged from sync:\n%+v\n%+v", k, res, want)
				}
				if !reflect.DeepEqual(mem.Rounds, wantMem.Rounds) {
					t.Fatalf("nodes=%d: per-round metric stream diverged from sync", k)
				}
				assertNoChildProcesses(t)
			}
		})
	}
}

// TestClusterTruncationMatchesSync pins the MaxCompRounds truncation
// path: stopping a faulty run mid-protocol must leave the identical
// partial coloring on the cluster engine, with Terminated false on
// both.
func TestClusterTruncationMatchesSync(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns node processes")
	}
	g, err := gen.ErdosRenyiAvgDegree(rng.New(41), 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cluster *net.TCPCluster) *Result {
		t.Helper()
		res, err := ColorEdges(g, Options{
			Seed:          23,
			Fault:         net.DropRate{Seed: 6, P: 0.5},
			MaxCompRounds: 4,
			Cluster:       cluster,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Terminated {
			t.Fatal("run with 50% loss terminated within 4 rounds")
		}
		return res
	}
	want := run(nil)
	for _, k := range []int{1, 3} {
		res := run(&net.TCPCluster{Nodes: k, Stderr: os.Stderr})
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("nodes=%d: truncated Result diverged from sync:\n%+v\n%+v", k, res, want)
		}
	}
	assertNoChildProcesses(t)
}

// TestClusterCanceledContext pins the abort path: a context canceled
// before the run starts yields the same all-uncolored Aborted result on
// both engines, and tears the cluster down without leaking children.
func TestClusterCanceledContext(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns node processes")
	}
	g, err := gen.ErdosRenyiAvgDegree(rng.New(43), 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	want, err := ColorEdgesCtx(ctx, g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColorEdgesCtx(ctx, g, Options{
		Seed:    3,
		Cluster: &net.TCPCluster{Nodes: 2, Stderr: os.Stderr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.Terminated {
		t.Fatalf("canceled cluster run: aborted=%v terminated=%v", res.Aborted, res.Terminated)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("canceled Result diverged from sync:\n%+v\n%+v", res, want)
	}
	assertNoChildProcesses(t)
}

// TestClusterOptionConflicts pins the option-validation sweep: cluster
// runs reject configurations whose semantics cannot cross a process
// boundary, with errors naming the offending option.
func TestClusterOptionConflicts(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	cluster := &net.TCPCluster{Nodes: 2}

	if _, err := ColorEdges(g, Options{Cluster: cluster, Engine: net.RunChan}); err == nil {
		t.Fatal("Engine+Cluster accepted")
	}
	hook := automaton.Hook(func(node int, from, to automaton.State) {})
	if _, err := ColorEdges(g, Options{Cluster: cluster, Hook: hook}); err == nil {
		t.Fatal("Hook+Cluster accepted")
	}
	forbidden := make([]*ColorSet, g.M())
	if _, err := ColorEdgesConstrained(context.Background(), g, forbidden, Options{Cluster: cluster}); err == nil {
		t.Fatal("constrained coloring on cluster accepted")
	}
	if _, err := ColorStrong(graph.NewSymmetric(g), Options{Cluster: cluster, Hook: hook}); err == nil {
		t.Fatal("strong Hook+Cluster accepted")
	}
	if _, err := ColorEdges(g, Options{Cluster: &net.TCPCluster{}}); err == nil {
		t.Fatal("zero-node cluster accepted")
	}
	// None of the rejected configurations may have spawned anything.
	runtime.GC()
	assertNoChildProcesses(t)
}
