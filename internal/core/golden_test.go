package core

import (
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/rng"
)

// Golden determinism regression: a fixed (graph seed, run seed) pins the
// exact rounds, colors, and message counts. Any change to random-stream
// consumption, phase ordering, or message generation shows up here
// before it silently invalidates the recorded EXPERIMENTS.md numbers.
// If a change to these values is *intended*, update the constants AND
// regenerate EXPERIMENTS.md (`go run ./cmd/dimabench -exp all`).
func TestGoldenDeterminism(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(1), 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 405 || g.MaxDegree() != 16 {
		t.Fatalf("generator drifted: m=%d Δ=%d, want 405, 16", g.M(), g.MaxDegree())
	}

	res := mustColorEdges(t, g, Options{Seed: 42})
	if res.CompRounds != 33 || res.NumColors != 16 || res.Messages != 2254 {
		t.Fatalf("algorithm 1 drifted: rounds=%d colors=%d msgs=%d, want 33, 16, 2254",
			res.CompRounds, res.NumColors, res.Messages)
	}

	d := graph.NewSymmetric(g)
	sres := mustColorStrong(t, d, Options{Seed: 42})
	if sres.CompRounds != 111 || sres.NumColors != 123 ||
		sres.Messages != 13330 || sres.ConflictsDropped != 110 {
		t.Fatalf("algorithm 2 drifted: rounds=%d colors=%d msgs=%d dropped=%d, want 111, 123, 13330, 110",
			sres.CompRounds, sres.NumColors, sres.Messages, sres.ConflictsDropped)
	}
}
