package core

import (
	"reflect"
	"sync"
	"testing"

	"dima/internal/automaton"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// Acceptance tests for the loss-recovery extension (docs/ROBUSTNESS.md):
// under a sustained 10% delivery drop rate or a 12-round blackout, both
// algorithms must converge to complete valid colorings — terminated,
// zero half-colored items, zero verification violations — on both
// engines, deterministically per seed.

// recoveryFaults returns the fault scenarios the acceptance criteria
// name: sustained uniform loss and a transient total outage.
func recoveryFaults(seed uint64) []struct {
	name  string
	fault net.FaultInjector
} {
	return []struct {
		name  string
		fault net.FaultInjector
	}{
		{"droprate-10", net.DropRate{Seed: seed, P: 0.1}},
		{"blackout-12", net.Blackout{FromRound: 6, ToRound: 18}},
	}
}

func recoveryOptions(seed uint64, fault net.FaultInjector, engine net.Engine) Options {
	return Options{
		Seed:          seed,
		Engine:        engine,
		MaxCompRounds: 5000,
		Fault:         fault,
		Recovery:      automaton.Recovery{Enabled: true},
	}
}

// assertComplete checks the full acceptance predicate on one run.
func assertComplete(t *testing.T, label string, res *Result, violations []verify.Violation) {
	t.Helper()
	if !res.Terminated {
		t.Fatalf("%s: not terminated after %d rounds (half=%d)", label, res.CompRounds, res.HalfColored)
	}
	if res.HalfColored != 0 {
		t.Fatalf("%s: %d half-colored items", label, res.HalfColored)
	}
	for _, c := range res.Colors {
		if c < 0 {
			t.Fatalf("%s: uncolored item despite termination", label)
		}
	}
	if len(violations) != 0 {
		t.Fatalf("%s: %d violations, first: %v", label, len(violations), violations[0])
	}
}

func TestEdgeColorRecoveryCompletes(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(7), 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range testEngines {
		for _, fc := range recoveryFaults(99) {
			for seed := uint64(0); seed < 6; seed++ {
				res, err := ColorEdges(g, recoveryOptions(seed, fc.fault, engine.run))
				if err != nil {
					t.Fatal(err)
				}
				label := engine.name + "/" + fc.name
				assertComplete(t, label, res, verify.EdgeColoring(g, res.Colors))
			}
		}
	}
}

func TestStrongColorRecoveryCompletes(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(7), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	for _, engine := range testEngines {
		for _, fc := range recoveryFaults(99) {
			for seed := uint64(0); seed < 6; seed++ {
				res, err := ColorStrong(d, recoveryOptions(seed, fc.fault, engine.run))
				if err != nil {
					t.Fatal(err)
				}
				label := engine.name + "/" + fc.name
				assertComplete(t, label, res, verify.StrongColoring(d, res.Colors))
			}
		}
	}
}

// Faulty recovery runs must be reproducible: the same seed produces the
// same Result, colors included.
func TestRecoveryDeterministicPerSeed(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(11), 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	fault := net.DropRate{Seed: 5, P: 0.1}
	for seed := uint64(0); seed < 3; seed++ {
		a := mustColorEdges(t, g, recoveryOptions(seed, fault, nil))
		b := mustColorEdges(t, g, recoveryOptions(seed, fault, nil))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("edge coloring seed %d not reproducible:\n%+v\n%+v", seed, a, b)
		}
		sa := mustColorStrong(t, d, recoveryOptions(seed, fault, nil))
		sb := mustColorStrong(t, d, recoveryOptions(seed, fault, nil))
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("strong coloring seed %d not reproducible:\n%+v\n%+v", seed, sa, sb)
		}
	}
}

// Under faults with recovery enabled, the two engines must still be
// observationally identical: the full Result and the entire per-round
// telemetry stream (which folds net.RoundTraffic round by round,
// traffic split by kind included) match field for field.
func TestRecoveryEnginesEquivalentUnderFaults(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(3), 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	fault := net.DropRate{Seed: 42, P: 0.15}
	run := func(strong bool, engine net.Engine, seed uint64) (*Result, []metrics.RoundStats) {
		mem := &metrics.Memory{}
		opt := recoveryOptions(seed, fault, engine)
		opt.Metrics = mem
		opt.CollectParticipation = true
		var res *Result
		var err error
		if strong {
			res, err = ColorStrong(d, opt)
		} else {
			res, err = ColorEdges(g, opt)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res, mem.Rounds
	}
	for _, strong := range []bool{false, true} {
		name := "alg1"
		if strong {
			name = "alg2"
		}
		for seed := uint64(0); seed < 3; seed++ {
			sres, srounds := run(strong, net.RunSync, seed)
			for _, eng := range testEngines[1:] {
				cres, crounds := run(strong, eng.run, seed)
				if !reflect.DeepEqual(sres, cres) {
					t.Fatalf("%s seed %d: results differ across engines:\nsync: %+v\n%s: %+v",
						name, seed, sres, eng.name, cres)
				}
				if len(srounds) != len(crounds) {
					t.Fatalf("%s seed %d: %s round stream length: %d vs %d",
						name, seed, eng.name, len(srounds), len(crounds))
				}
				for i := range srounds {
					if !reflect.DeepEqual(srounds[i], crounds[i]) {
						t.Fatalf("%s seed %d: round %d stats differ:\nsync: %+v\n%s: %+v",
							name, seed, i, srounds[i], eng.name, crounds[i])
					}
				}
			}
		}
	}
}

// resurrectionDetector is an automaton.Hook that flags nodes observed
// transitioning again after reaching Done — the signature of a finished
// node pulled back by recovery traffic (a NACK reverting one of its
// edges rebuilds the machine, which then starts transitioning anew).
// Engines invoke hooks from concurrent goroutines, hence the mutex.
type resurrectionDetector struct {
	mu          sync.Mutex
	done        map[int]bool
	resurrected map[int]bool
}

func newResurrectionDetector() *resurrectionDetector {
	return &resurrectionDetector{done: map[int]bool{}, resurrected: map[int]bool{}}
}

func (d *resurrectionDetector) hook(node int, from, to automaton.State) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done[node] {
		d.resurrected[node] = true
		d.done[node] = false
	}
	if to == automaton.Done {
		d.done[node] = true
	}
}

func (d *resurrectionDetector) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.resurrected)
}

// Done-node resurrection across engines: with recovery enabled a node
// that reached Done can be flipped back to not-done by a pending inbox.
// Every engine must therefore evaluate Done() at the same point —
// immediately after the round's steps — or the engines disagree on the
// termination round. The test deterministically finds a run where a
// resurrection actually happens, then requires the chan and shard
// engines to replay the sync engine exactly on that run.
func TestRecoveryDoneResurrectionEnginesAgree(t *testing.T) {
	// Resurrections need heavy sustained loss: lighter rates repair
	// in-flight edges before any endpoint finishes.
	g, err := gen.ErdosRenyiAvgDegree(rng.New(3), 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	fault := net.DropRate{Seed: 42, P: 0.35}
	pinned := uint64(0)
	foundResurrection := false
	for seed := uint64(0); seed < 30 && !foundResurrection; seed++ {
		det := newResurrectionDetector()
		opt := recoveryOptions(seed, fault, net.RunSync)
		opt.Hook = det.hook
		mustColorEdges(t, g, opt)
		if det.count() > 0 {
			pinned = seed
			foundResurrection = true
		}
	}
	if !foundResurrection {
		t.Fatal("no Done-node resurrection in 30 seeds; regenerate the scenario")
	}
	run := func(engine net.Engine) (*Result, []metrics.RoundStats, int) {
		det := newResurrectionDetector()
		mem := &metrics.Memory{}
		opt := recoveryOptions(pinned, fault, engine)
		opt.Hook = det.hook
		opt.Metrics = mem
		res := mustColorEdges(t, g, opt)
		return res, mem.Rounds, det.count()
	}
	sres, srounds, scount := run(net.RunSync)
	if scount == 0 {
		t.Fatal("pinned seed no longer resurrects")
	}
	for _, eng := range testEngines[1:] {
		cres, crounds, ccount := run(eng.run)
		if ccount != scount {
			t.Fatalf("%s: %d resurrected nodes, sync saw %d", eng.name, ccount, scount)
		}
		if !reflect.DeepEqual(sres, cres) {
			t.Fatalf("%s: result differs on resurrection run:\nsync: %+v\n%s: %+v",
				eng.name, sres, eng.name, cres)
		}
		if !reflect.DeepEqual(srounds, crounds) {
			t.Fatalf("%s: round streams differ on resurrection run", eng.name)
		}
	}
}

// With recovery disabled the implementation must be byte-identical to
// the reliable-delivery protocol: same results, same message streams,
// same RNG consumption. The golden tests pin absolute values; this test
// additionally pins the full per-round traffic stream against a
// recovery-enabled fault-free run being accidentally wired in.
func TestRecoveryDisabledIsInert(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(19), 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opt Options) (*Result, []metrics.RoundStats) {
		mem := &metrics.Memory{}
		opt.Metrics = mem
		res := mustColorEdges(t, g, opt)
		return res, mem.Rounds
	}
	plain, plainRounds := run(Options{Seed: 23})
	zeroRec, zeroRounds := run(Options{Seed: 23, Recovery: automaton.Recovery{}})
	if !reflect.DeepEqual(plain, zeroRec) || !reflect.DeepEqual(plainRounds, zeroRounds) {
		t.Fatal("zero-value Recovery changed a fault-free run")
	}
	if plain.Retransmits+plain.Repairs+plain.Reverts+plain.Probes != 0 {
		t.Fatalf("recovery counters nonzero with recovery disabled: %+v", plain)
	}
}
