package graphio

import (
	"strings"
	"testing"

	"dima/internal/msg"
)

func TestMutationsRoundTrip(t *testing.T) {
	b := &msg.MutationBatch{Seq: 42, Muts: []msg.Mutation{
		{Op: msg.OpInsert, U: 0, V: 1},
		{Op: msg.OpDelete, U: 5, V: 2},
		{Op: msg.OpInsert, U: 3, V: 4},
	}}
	var sb strings.Builder
	if err := WriteMutations(&sb, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMutations(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !msg.EqualBatch(b, got) {
		t.Fatalf("round trip: %v vs %v", b, got)
	}
}

func TestReadMutationsRejects(t *testing.T) {
	for name, src := range map[string]string{
		"bad directive": "x 1 2\n",
		"short line":    "+ 1\n",
		"bad endpoint":  "+ 1 two\n",
		"negative":      "- 1 -2\n",
		"bad batch":     "batch x\n",
	} {
		if _, err := ReadMutations(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadMutationsComments(t *testing.T) {
	b, err := ReadMutations(strings.NewReader("# header\n\nbatch 3\n+ 1 2\n  \n- 2 0\n# done\n"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 3 || len(b.Muts) != 2 {
		t.Fatalf("got %v", b)
	}
}

func FuzzReadMutations(f *testing.F) {
	f.Add("+ 0 1\n- 1 2\n")
	f.Add("batch 9\n+ 0 1\n")
	f.Add("# c\n\n+ 3 3\n")           // self-loop passes syntax, fails Validate
	f.Add("+ 0 1\n+ 1 0\n")           // duplicate pair
	f.Add("- 99999999999999999999 0") // overflowing endpoint
	f.Add("+ 0 1 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		b, err := ReadMutations(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted batches must round-trip through the writer and survive
		// semantic validation without panicking.
		var sb strings.Builder
		if err := WriteMutations(&sb, b); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMutations(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !msg.EqualBatch(b, back) {
			t.Fatal("round trip changed the batch")
		}
		_ = b.Validate(0)
	})
}
