package graphio

import (
	"strings"
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/rng"
)

func TestGraphRoundTrip(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(1), 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteGraph(&b, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip: %d/%d vs %d/%d", got.N(), got.M(), g.N(), g.M())
	}
	for id, e := range g.Edges() {
		if got.Edges()[id] != e {
			t.Fatalf("edge %d differs", id)
		}
	}
}

func TestReadGraphNative(t *testing.T) {
	src := `
# a comment
n 4

e 0 1
e 2 3
`
	g, err := ReadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatalf("parsed wrong graph: N=%d M=%d", g.N(), g.M())
	}
}

func TestReadGraphDIMACS(t *testing.T) {
	src := `c a DIMACS comment
p edge 3 2
e 1 2
e 2 3
`
	g, err := ReadGraph(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("DIMACS 1-indexing not handled")
	}
}

// DIMACS endpoints are 1-indexed: the boundary vertex N is valid (it
// becomes N-1), while 0 and N+1 are out of range after shifting. Self
// loops and duplicate edges are rejected in either indexing.
func TestReadGraphDIMACSBoundaries(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("p edge 3 2\ne 3 1\ne 2 3\n"))
	if err != nil {
		t.Fatalf("boundary endpoint N rejected: %v", err)
	}
	if !g.HasEdge(2, 0) || !g.HasEdge(1, 2) {
		t.Fatal("boundary endpoints shifted wrong")
	}
	bad := map[string]string{
		"zero endpoint":    "p edge 3 1\ne 0 2\n", // 0 shifts to -1
		"beyond n":         "p edge 3 1\ne 1 4\n",
		"negative":         "p edge 3 1\ne -1 2\n",
		"self loop":        "p edge 3 1\ne 2 2\n",
		"duplicate":        "p edge 3 2\ne 1 2\ne 2 1\n",
		"edge on empty":    "p edge 0 1\ne 1 1\n",
		"bad vertex count": "p edge x 1\n",
	}
	for name, src := range bad {
		if _, err := ReadGraph(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

// The native format is 0-indexed: N-1 is the boundary, N is out.
func TestReadGraphNativeBoundaries(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("n 3\ne 2 0\n"))
	if err != nil || !g.HasEdge(0, 2) {
		t.Fatalf("boundary endpoint N-1 rejected: %v", err)
	}
	for name, src := range map[string]string{
		"endpoint n":        "n 3\ne 3 0\n",
		"negative endpoint": "n 3\ne -1 2\n",
	} {
		if _, err := ReadGraph(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"no header":         "e 0 1\n",
		"empty":             "",
		"bad n":             "n x\n",
		"negative n":        "n -2\n",
		"double header":     "n 3\nn 4\n",
		"malformed e":       "n 3\ne 0\n",
		"bad endpoints":     "n 3\ne a b\n",
		"out of range":      "n 3\ne 0 7\n",
		"self loop":         "n 3\ne 1 1\n",
		"duplicate edge":    "n 3\ne 0 1\ne 1 0\n",
		"unknown directive": "n 3\nq 0 1\n",
		"short p":           "p edge\n",
	}
	for name, src := range cases {
		if _, err := ReadGraph(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestColoringRoundTrip(t *testing.T) {
	c := &Coloring{
		Kind: "edge", N: 5, M: 3,
		Colors: []int{0, 1, -1},
		Meta:   map[string]string{"seed": "42", "rounds": "7"},
	}
	var b strings.Builder
	if err := WriteColoring(&b, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColoring(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != c.Kind || got.N != c.N || got.M != c.M {
		t.Fatalf("round trip header: %+v", got)
	}
	for i := range c.Colors {
		if got.Colors[i] != c.Colors[i] {
			t.Fatalf("colors differ at %d", i)
		}
	}
	if got.Meta["seed"] != "42" {
		t.Fatal("meta lost")
	}
}

func TestColoringKindValidation(t *testing.T) {
	var b strings.Builder
	if err := WriteColoring(&b, &Coloring{Kind: "banana"}); err == nil {
		t.Fatal("accepted bad kind on write")
	}
	if _, err := ReadColoring(strings.NewReader(`{"kind":"banana"}`)); err == nil {
		t.Fatal("accepted bad kind on read")
	}
	if _, err := ReadColoring(strings.NewReader(`{nonsense`)); err == nil {
		t.Fatal("accepted malformed JSON")
	}
}

func TestWriteGraphEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteGraph(&b, graph.New(0)); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraph(strings.NewReader(b.String()))
	if err != nil || g.N() != 0 {
		t.Fatalf("empty round trip: %v", err)
	}
}

func FuzzReadGraph(f *testing.F) {
	f.Add("n 4\ne 0 1\ne 2 3\n")
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("# comment\nn 0\n")
	f.Add("n 2\ne 0 0\n")
	f.Add("p edge 3 2\ne 3 1\n")           // DIMACS boundary endpoint N
	f.Add("p edge 3 1\ne 0 2\n")           // DIMACS 0 shifts to -1
	f.Add("n 3\ne 3 0\n")                  // native out of range
	f.Add("n 3\ne -1 2\n")                 // negative endpoint
	f.Add("n 3\ne 0 1\ne 1 0\n")           // duplicate edge, reversed
	f.Add("n 99999999999999999999\n")      // overflowing vertex count
	f.Add("p edge 2 1\ne 1 2\ne 1 2\n")    // DIMACS duplicate
	f.Add("c\nc x\np edge 2 1\ne 1 2\n")   // DIMACS comments
	f.Add("n 3\n\n \t\ne 0 2\n# trailing") // whitespace soup
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadGraph(strings.NewReader(src))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent and must
		// round-trip through the writer.
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted inconsistent graph: %v", err)
		}
		var b strings.Builder
		if err := WriteGraph(&b, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadGraph(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatal("round trip changed the graph")
		}
	})
}
