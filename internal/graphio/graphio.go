// Package graphio reads and writes graphs and colorings in simple text
// formats so the CLI tools can be composed:
//
//   - Graphs use an edge-list format: a "n <N>" header line followed by
//     "e <u> <v>" lines (0-indexed), with '#' comments and blank lines
//     ignored. DIMACS-style headers "p edge <N> <M>" with 1-indexed
//     "e" lines are also accepted for interoperability.
//   - Colorings are JSON documents produced by WriteColoring.
package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dima/internal/graph"
)

// WriteGraph emits g in the native edge-list format.
func WriteGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# dima edge list: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Fprintf(bw, "n %d\n", g.N())
	for _, e := range g.Edges() {
		if e.U < 0 {
			continue // removal hole
		}
		fmt.Fprintf(bw, "e %d %d\n", e.U, e.V)
	}
	return bw.Flush()
}

// ReadGraph parses the edge-list format (native or DIMACS-style).
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *graph.Graph
	dimacs := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "c ") || line == "c" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, fmt.Errorf("graphio: line %d: duplicate header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: malformed n line", lineNo)
			}
			var n int
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", lineNo, fields[1])
			}
			g = graph.New(n)
		case "p":
			// DIMACS: p edge <N> <M>, vertices 1-indexed.
			if g != nil {
				return nil, fmt.Errorf("graphio: line %d: duplicate header", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graphio: line %d: malformed p line", lineNo)
			}
			var n int
			if _, err := fmt.Sscanf(fields[2], "%d", &n); err != nil || n < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", lineNo, fields[2])
			}
			g = graph.New(n)
			dimacs = true
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graphio: line %d: edge before header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graphio: line %d: malformed e line", lineNo)
			}
			var u, v int
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("graphio: line %d: bad endpoints", lineNo)
			}
			if dimacs {
				u, v = u-1, v-1
			}
			if _, err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graphio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graphio: no header line found")
	}
	return g, nil
}

// Coloring is the JSON document for a coloring result.
type Coloring struct {
	// Kind is "edge" (colors indexed by EdgeID) or "arc" (by ArcID).
	Kind string `json:"kind"`
	// N and M describe the graph the coloring belongs to.
	N int `json:"n"`
	M int `json:"m"`
	// Colors holds one color per edge/arc; -1 marks uncolored.
	Colors []int `json:"colors"`
	// Meta carries free-form run metadata (rounds, seed, ...).
	Meta map[string]string `json:"meta,omitempty"`
}

// WriteColoring emits c as indented JSON.
func WriteColoring(w io.Writer, c *Coloring) error {
	if c.Kind != "edge" && c.Kind != "arc" {
		return fmt.Errorf("graphio: unknown coloring kind %q", c.Kind)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadColoring parses a coloring document.
func ReadColoring(r io.Reader) (*Coloring, error) {
	var c Coloring
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("graphio: %v", err)
	}
	if c.Kind != "edge" && c.Kind != "arc" {
		return nil, fmt.Errorf("graphio: unknown coloring kind %q", c.Kind)
	}
	return &c, nil
}
