package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dima/internal/msg"
)

// Mutation lists are the text twin of the binary msg.MutationBatch
// codec, meant for CLI composition: one mutation per line, "+ u v" for
// an insertion and "- u v" for a deletion (0-indexed endpoints), with
// '#' comments and blank lines ignored. An optional "batch <seq>" line
// sets the batch sequence number.

// WriteMutations emits b in the text mutation-list format.
func WriteMutations(w io.Writer, b *msg.MutationBatch) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# dima mutation list: %d mutations\n", len(b.Muts))
	if b.Seq != 0 {
		fmt.Fprintf(bw, "batch %d\n", b.Seq)
	}
	for _, m := range b.Muts {
		sign := "+"
		if m.Op == msg.OpDelete {
			sign = "-"
		}
		fmt.Fprintf(bw, "%s %d %d\n", sign, m.U, m.V)
	}
	return bw.Flush()
}

// ReadMutations parses the text mutation-list format. Structural checks
// only (syntax, non-negative endpoints); callers apply
// msg.MutationBatch.Validate against their graph.
func ReadMutations(r io.Reader) (*msg.MutationBatch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	b := &msg.MutationBatch{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "batch":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: malformed batch line", lineNo)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &b.Seq); err != nil {
				return nil, fmt.Errorf("graphio: line %d: bad batch sequence %q", lineNo, fields[1])
			}
		case "+", "-":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graphio: line %d: malformed mutation line", lineNo)
			}
			var u, v int
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("graphio: line %d: bad endpoints", lineNo)
			}
			if u < 0 || v < 0 {
				return nil, fmt.Errorf("graphio: line %d: negative endpoint", lineNo)
			}
			op := msg.OpInsert
			if fields[0] == "-" {
				op = msg.OpDelete
			}
			b.Muts = append(b.Muts, msg.Mutation{Op: op, U: u, V: v})
		default:
			return nil, fmt.Errorf("graphio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}
