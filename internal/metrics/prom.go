package metrics

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) for a Registry:
// every counter, gauge, and histogram with # HELP / # TYPE metadata,
// histograms in the native bucket/sum/count shape with cumulative
// le-labeled buckets. PromHandler is what /metrics serves — replacing
// the earlier ad-hoc dump — so a stock Prometheus scrape ingests the
// whole registry without relabeling.

// Help registers help text rendered as the metric's # HELP line. It may
// be called before or after the instrument exists; unknown names are
// retained until one does.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[name] = help
}

// helpFor snapshots the help map.
func (r *Registry) helpFor() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := make(map[string]string, len(r.help))
	for k, v := range r.help {
		h[k] = v
	}
	return h
}

// WriteProm renders the registry in the Prometheus text exposition
// format, families sorted by name.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	help := r.helpFor()

	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	kind := make(map[string]string, cap(names))
	for name := range s.Counters {
		names = append(names, name)
		kind[name] = "counter"
	}
	for name := range s.Gauges {
		names = append(names, name)
		kind[name] = "gauge"
	}
	for name := range s.Histograms {
		names = append(names, name)
		kind[name] = "histogram"
	}
	sort.Strings(names)

	for _, name := range names {
		if h, ok := help[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind[name]); err != nil {
			return err
		}
		var err error
		switch kind[name] {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", name, s.Counters[name])
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name])
		case "histogram":
			err = writePromHistogram(w, name, s.Histograms[name])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram family: cumulative buckets
// (the +Inf bucket equals _count), then _sum and _count.
func writePromHistogram(w io.Writer, name string, h HistSnapshot) error {
	cum := int64(0)
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = strconv.FormatInt(h.Bounds[i], 10)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.N)
	return err
}

// promContentType is the exposition-format content type Prometheus
// scrapers negotiate.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromHandler serves reg (plus Go runtime gauges) in the Prometheus
// text exposition format. Mount it at /metrics; DebugHandler and the
// dimaserve service mux both do.
func PromHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		if reg != nil {
			if err := reg.WriteProm(w); err != nil {
				return
			}
		}
		writePromRuntimeStats(w)
	})
}

// writePromRuntimeStats appends the Go runtime gauges every scrape
// wants next to the protocol metrics, with TYPE metadata.
func writePromRuntimeStats(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	g("go_goroutines", uint64(runtime.NumGoroutine()))
	g("go_gomaxprocs", uint64(runtime.GOMAXPROCS(0)))
	g("go_heap_alloc_bytes", ms.HeapAlloc)
	g("go_heap_objects", ms.HeapObjects)
	fmt.Fprintf(w, "# TYPE go_total_alloc_bytes counter\ngo_total_alloc_bytes %d\n", ms.TotalAlloc)
	fmt.Fprintf(w, "# TYPE go_num_gc counter\ngo_num_gc %d\n", ms.NumGC)
}
