package metrics

import (
	"fmt"
	"io"
	stdnet "net"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// StartDebugServer serves live diagnostics on addr (host:port; a :0
// port picks a free one) and returns the bound address:
//
//	/debug/pprof/   the standard net/http/pprof profile index
//	/metrics        reg's instruments (when non-nil) plus Go runtime
//	                stats, in the plain-text format of Registry.WriteText
//
// The listener runs until the process exits — it backs the CLIs' -pprof
// flag, which is fire-and-forget by design.
func StartDebugServer(addr string, reg *Registry) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if reg != nil {
			if err := reg.WriteText(w); err != nil {
				return
			}
		}
		writeRuntimeStats(w)
	})
	ln, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics: debug server: %w", err)
	}
	go func() {
		// Serve returns only on listener failure; the process owns the
		// listener for its remaining lifetime.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}

// writeRuntimeStats appends the Go runtime gauges every profiling
// session wants next to the protocol metrics.
func writeRuntimeStats(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "go_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "go_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(w, "go_total_alloc_bytes %d\n", ms.TotalAlloc)
	fmt.Fprintf(w, "go_num_gc %d\n", ms.NumGC)
}
