package metrics

import (
	"context"
	"fmt"
	stdnet "net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is a running diagnostics endpoint started by
// StartDebugServer. It owns its listener and serving goroutine; callers
// must Close (or Shutdown) it so tests and long-lived services do not
// leak the port for the process lifetime.
type DebugServer struct {
	srv  *http.Server
	addr string
	done chan struct{}
}

// DebugHandler returns the diagnostics mux the debug server serves:
//
//	/debug/pprof/   the standard net/http/pprof profile index
//	/metrics        reg's instruments (when non-nil) plus Go runtime
//	                stats, in the Prometheus text exposition format
//	                (PromHandler)
//
// Exposed so services that already run an HTTP server can mount the
// same endpoints instead of binding a second port.
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", PromHandler(reg))
	return mux
}

// StartDebugServer serves live diagnostics on addr (host:port; a :0
// port picks a free one) and returns the running server; its Addr
// method reports the bound address. The caller owns the returned
// handle: Close stops it immediately, Shutdown drains it gracefully.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := stdnet.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: debug server: %w", err)
	}
	ds := &DebugServer{
		srv:  &http.Server{Handler: DebugHandler(reg)},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		// Serve returns ErrServerClosed after Close/Shutdown; any other
		// error means the listener died and there is nothing to free.
		_ = ds.srv.Serve(ln)
	}()
	return ds, nil
}

// Addr returns the bound host:port.
func (ds *DebugServer) Addr() string { return ds.addr }

// Close stops the server and its listener immediately, dropping any
// in-flight requests, and waits for the serving goroutine to exit.
func (ds *DebugServer) Close() error {
	err := ds.srv.Close()
	<-ds.done
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to complete, up to ctx's deadline.
func (ds *DebugServer) Shutdown(ctx context.Context) error {
	err := ds.srv.Shutdown(ctx)
	<-ds.done
	return err
}
