package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePromExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total").Add(3)
	reg.Gauge("queue_depth").Set(2)
	h := reg.Histogram("latency_usec", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	reg.Help("jobs_total", "Jobs accepted since start.")

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs accepted since start.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		"# TYPE latency_usec histogram",
		`latency_usec_bucket{le="10"} 1`,
		`latency_usec_bucket{le="100"} 2`,
		`latency_usec_bucket{le="+Inf"} 3`,
		"latency_usec_sum 555",
		"latency_usec_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE precedes the samples of its family.
	if strings.Index(out, "# TYPE latency_usec histogram") > strings.Index(out, "latency_usec_bucket") {
		t.Fatalf("TYPE line after samples:\n%s", out)
	}
}

func TestPromHandlerServesRuntimeStats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	rec := httptest.NewRecorder()
	PromHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q, want the exposition format", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{"x_total 1", "# TYPE go_goroutines gauge", "go_heap_alloc_bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("handler output missing %q:\n%s", want, out)
		}
	}
}
