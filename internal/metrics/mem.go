package metrics

import "runtime"

// AllocDelta reports the heap activity of a measured section: Allocs is
// the number of heap objects allocated, Bytes their cumulative size.
// Both are cumulative counters, so deltas are meaningful even when the
// garbage collector runs mid-section.
type AllocDelta struct {
	Allocs uint64
	Bytes  uint64
}

// MeasureAllocs runs f and returns the heap objects and bytes it
// allocated. ReadMemStats stops the world, so the measurement itself is
// not free; use it around whole runs (the scale sweep does), not inner
// loops. Concurrent background allocation is attributed to f — callers
// wanting clean numbers should quiesce other goroutines first.
func MeasureAllocs(f func()) AllocDelta {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return AllocDelta{
		Allocs: after.Mallocs - before.Mallocs,
		Bytes:  after.TotalAlloc - before.TotalAlloc,
	}
}
