package metrics

import "sync"

// Event is one record on a broadcast stream: a per-round RoundStats, a
// mutation-repair report, a job status transition, or a synthetic
// "dropped" marker standing in for events a slow subscriber missed.
//
// Seq is a per-sink monotonically increasing sequence number assigned
// at publish time; subscribers use it to deduplicate a replayed prefix
// against the live channel. Synthetic dropped markers carry Seq 0 —
// they are per-subscriber, not part of the published stream.
type Event struct {
	Seq  uint64 `json:"seq,omitempty"`
	Type string `json:"type"`
	Data any    `json:"data,omitempty"`
}

// The event types the serving layer publishes. BroadcastSink itself
// treats types as opaque strings; these constants just keep the
// producers and the SSE schema (docs/OBSERVABILITY.md) in one place.
const (
	// EventRound carries one RoundStats (EmitRound).
	EventRound = "round"
	// EventMutation carries one mutation-batch repair report.
	EventMutation = "mutation"
	// EventMaintenance carries one dynamic.MaintainReport when a
	// maintenance pass (compaction / palette rebalance) runs between
	// mutation batches.
	EventMaintenance = "maintenance"
	// EventStatus carries a job status snapshot at a lifecycle
	// transition (queued, running, done, failed, canceled).
	EventStatus = "status"
	// EventDropped is the synthetic marker a subscriber receives in
	// place of events it was too slow to consume; Data is the count of
	// missed events since the last one it saw.
	EventDropped = "dropped"
)

// Subscription is one subscriber's bounded view of a BroadcastSink.
// Events arrives on Events(); when the subscriber falls behind, events
// are dropped (never buffered without bound, never blocking the
// publisher) and the gap is reported in-band as an EventDropped marker
// once the subscriber catches up.
type Subscription struct {
	b  *BroadcastSink
	ch chan Event

	// Guarded by b.mu.
	dropped  uint64
	canceled bool
}

// Events returns the subscription's channel. It is closed by Cancel and
// by BroadcastSink.Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Cancel releases the subscription and closes its channel. Safe to call
// more than once and after the sink is closed.
func (s *Subscription) Cancel() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.canceled {
		return
	}
	s.canceled = true
	delete(s.b.subs, s)
	close(s.ch)
}

// BroadcastSink is a bounded fan-out for telemetry events: publishers
// (the engine's RoundStats emission, the serving layer's status and
// mutation reports) never block and never allocate per subscriber
// beyond a channel send, so attaching one to a run cannot perturb it —
// the engine-determinism property tested in core.
//
// Each subscriber gets its own bounded channel; when it is full the
// event is counted as dropped for that subscriber and a synthetic
// EventDropped marker is delivered once there is room again. The sink
// also retains a bounded replay log of the most recent events so a late
// subscriber (an SSE client attaching to a finished job) can catch up;
// Replay plus Seq-deduplication against the live channel gives a
// gap-free hand-off.
//
// It implements Sink, so it composes with Memory/JSONL via Multi.
type BroadcastSink struct {
	mu       sync.Mutex
	seq      uint64
	keep     int
	log      []Event // retained suffix of the published stream
	subs     map[*Subscription]struct{}
	closed   bool
	droppedN int64
	dropCtr  *Counter // optional external counter
}

// NewBroadcastSink returns a sink retaining at least the keep most
// recent events for replay (0 or negative means 1024).
func NewBroadcastSink(keep int) *BroadcastSink {
	if keep <= 0 {
		keep = 1024
	}
	return &BroadcastSink{keep: keep, subs: make(map[*Subscription]struct{})}
}

// SetDropCounter registers a counter (typically from a Registry) that
// is incremented once per event dropped for any subscriber, in addition
// to the sink's own DroppedTotal.
func (b *BroadcastSink) SetDropCounter(c *Counter) {
	b.mu.Lock()
	b.dropCtr = c
	b.mu.Unlock()
}

// EmitRound publishes one RoundStats as an EventRound, making the sink
// attachable to a run via core.Options.Metrics.
func (b *BroadcastSink) EmitRound(rs RoundStats) { b.Publish(EventRound, rs) }

// Publish appends an event to the stream and fans it out to every
// subscriber without blocking. Data must be treated as immutable by
// all parties once published. Publishing on a closed sink is a no-op.
func (b *BroadcastSink) Publish(typ string, data any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	ev := Event{Seq: b.seq, Type: typ, Data: data}
	b.log = append(b.log, ev)
	if len(b.log) > 2*b.keep {
		// Amortized O(1) trim: keep the newest half in a fresh array so
		// the old backing store is released.
		trimmed := make([]Event, b.keep, 2*b.keep)
		copy(trimmed, b.log[len(b.log)-b.keep:])
		b.log = trimmed
	}
	for sub := range b.subs {
		b.deliver(sub, ev)
	}
}

// deliver sends ev to one subscriber, preceded by a dropped marker when
// it has missed events. Caller holds b.mu.
func (b *BroadcastSink) deliver(sub *Subscription, ev Event) {
	if sub.dropped > 0 {
		select {
		case sub.ch <- Event{Type: EventDropped, Data: sub.dropped}:
			sub.dropped = 0
		default:
			// Still no room: this event is lost for the subscriber too.
			b.noteDrop(sub)
			return
		}
	}
	select {
	case sub.ch <- ev:
	default:
		b.noteDrop(sub)
	}
}

// noteDrop records one lost event for sub. Caller holds b.mu.
func (b *BroadcastSink) noteDrop(sub *Subscription) {
	sub.dropped++
	b.droppedN++
	if b.dropCtr != nil {
		b.dropCtr.Inc()
	}
}

// Subscribe registers a new subscriber with a channel buffer of buf
// events (0 or negative means 64). Subscribing to a closed sink returns
// a subscription whose channel is already closed.
func (b *BroadcastSink) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	sub := &Subscription{b: b, ch: make(chan Event, buf)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		sub.canceled = true
		close(sub.ch)
		return sub
	}
	b.subs[sub] = struct{}{}
	return sub
}

// Replay returns a copy of the retained event suffix in publish order.
// If the stream has outgrown the retention bound, the first returned
// event's Seq is greater than 1; callers surface the gap to their
// consumer (the SSE handler emits an EventDropped marker).
func (b *BroadcastSink) Replay() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.log...)
}

// Subscribers reports the number of live subscriptions.
func (b *BroadcastSink) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// DroppedTotal reports events dropped across all subscribers since the
// sink was created.
func (b *BroadcastSink) DroppedTotal() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.droppedN
}

// Seq reports the sequence number of the most recently published event
// (0 before the first).
func (b *BroadcastSink) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Close closes every subscriber channel and drops further publishes.
func (b *BroadcastSink) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		sub.canceled = true
		close(sub.ch)
		delete(b.subs, sub)
	}
}
