package metrics

import (
	"bufio"
	"encoding/json"
	"io"

	"dima/internal/automaton"
)

// Traffic aggregates message traffic: broadcasts sent, per-neighbor
// deliveries, and encoded bytes.
type Traffic struct {
	Messages   int64 `json:"messages"`
	Deliveries int64 `json:"deliveries"`
	Bytes      int64 `json:"bytes"`
}

// RoundStats is one computation round of a coloring run — the record a
// Sink receives once per round, in round order. Summed over all rounds,
// the traffic and conflict fields equal the end-of-run aggregates of
// core.Result, on either engine.
type RoundStats struct {
	// Round is the 0-based computation round.
	Round int `json:"round"`
	// CommRounds is the number of communication rounds this computation
	// round spanned (the algorithm's phase count, fewer on a truncated
	// final round).
	CommRounds int `json:"comm_rounds"`

	// Active counts nodes that still had uncolored work at the start of
	// the round; Inviters and Listeners split it by the C-state coin
	// (automaton states I and L). Done counts the rest.
	Active    int `json:"active"`
	Inviters  int `json:"inviters"`
	Listeners int `json:"listeners"`
	Done      int `json:"done"`
	// Paired counts active nodes whose negotiation this round produced a
	// coloring (Proposition 1's per-round pairing event). Paired <= Active.
	Paired int `json:"paired"`

	// Colored is the number of edges/arcs newly colored by pairings
	// formed this round; ColoredTotal accumulates it.
	Colored      int `json:"colored"`
	ColoredTotal int `json:"colored_total"`
	// NumColors and MaxColor track palette growth: distinct colors and
	// the largest color index in use by the end of this round.
	NumColors int `json:"num_colors"`
	MaxColor  int `json:"max_color"`

	// ConflictsDropped counts tentative claims withdrawn by Algorithm 2's
	// confirm exchange for pairings formed this round (always 0 for
	// Algorithm 1); DefensiveRejects counts responder-side validity
	// rejections observed this round.
	ConflictsDropped int `json:"conflicts_dropped,omitempty"`
	DefensiveRejects int `json:"defensive_rejects,omitempty"`

	// Recovery-layer activity observed this round (all zero unless the
	// run enables core.Options.Recovery): retransmissions after an
	// acknowledgement timeout, assignments repaired from a partner's
	// authoritative state, one-sided assignments reverted by a negative
	// acknowledgement, and status probes for stalled items.
	Retransmits int `json:"retransmits,omitempty"`
	Repairs     int `json:"repairs,omitempty"`
	Reverts     int `json:"reverts,omitempty"`
	Probes      int `json:"probes,omitempty"`

	// Messages, Deliveries, and Bytes are the round's traffic totals;
	// ByKind splits them by wire message kind (invite, response, claim,
	// decide, update), omitting kinds with no traffic.
	Messages   int64              `json:"messages"`
	Deliveries int64              `json:"deliveries"`
	Bytes      int64              `json:"bytes"`
	ByKind     map[string]Traffic `json:"by_kind,omitempty"`
}

// Sink receives the per-round telemetry stream of a run. EmitRound is
// called once per computation round, in round order, from a single
// goroutine.
type Sink interface {
	EmitRound(RoundStats)
}

// Memory is a Sink that retains every RoundStats in order — the
// in-process consumer for tests and report tables.
type Memory struct {
	Rounds []RoundStats
}

// EmitRound appends the record.
func (m *Memory) EmitRound(rs RoundStats) { m.Rounds = append(m.Rounds, rs) }

// JSONLWriter is a Sink that streams records as JSON Lines: one JSON
// object per computation round, one object per line. Errors are sticky
// and surfaced by Flush/Err, keeping EmitRound unconditional for
// callers.
type JSONLWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewJSONLWriter returns a JSONL sink writing to w. Call Flush when the
// run completes.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
}

// EmitRound writes one line. After the first error it is a no-op.
func (j *JSONLWriter) EmitRound(rs RoundStats) {
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(rs); err != nil {
		j.err = err
		return
	}
	j.n++
}

// Rounds returns the number of records written.
func (j *JSONLWriter) Rounds() int { return j.n }

// Err returns the first write error, if any.
func (j *JSONLWriter) Err() error { return j.err }

// Flush drains the buffer and returns the first error seen.
func (j *JSONLWriter) Flush() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// multi fans one stream out to several sinks.
type multi []Sink

func (m multi) EmitRound(rs RoundStats) {
	for _, s := range m {
		s.EmitRound(rs)
	}
}

// Multi returns a Sink that forwards every record to each of the given
// sinks in order; nil entries are skipped. With zero or one usable sink
// it collapses to that sink (nil for zero).
func Multi(sinks ...Sink) Sink {
	var out multi
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// RoundAggregator is a Sink that folds the stream into a Registry: run
// totals as counters ("rounds_total", "messages_total", ...), the
// latest round's values as gauges ("active", "paired", "num_colors"),
// and per-round traffic/activity distributions as histograms. This is
// what the debug server's /metrics endpoint exposes during a run.
type RoundAggregator struct {
	rounds, messages, deliveries, bytes, conflicts, rejects, colored *Counter
	retransmits, repairs, reverts, probes                            *Counter
	active, paired, numColors                                        *Gauge
	roundMsgs, roundActive                                           *Histogram
}

// NewRoundAggregator registers the aggregate instruments in reg and
// returns the sink feeding them.
func NewRoundAggregator(reg *Registry) *RoundAggregator {
	return &RoundAggregator{
		rounds:      reg.Counter("rounds_total"),
		messages:    reg.Counter("messages_total"),
		deliveries:  reg.Counter("deliveries_total"),
		bytes:       reg.Counter("bytes_total"),
		conflicts:   reg.Counter("conflicts_dropped_total"),
		rejects:     reg.Counter("defensive_rejects_total"),
		colored:     reg.Counter("colored_total"),
		retransmits: reg.Counter("retransmits_total"),
		repairs:     reg.Counter("repairs_total"),
		reverts:     reg.Counter("reverts_total"),
		probes:      reg.Counter("probes_total"),
		active:      reg.Gauge("active"),
		paired:      reg.Gauge("paired"),
		numColors:   reg.Gauge("num_colors"),
		roundMsgs:   reg.Histogram("round_messages", 16, 64, 256, 1024, 4096, 16384),
		roundActive: reg.Histogram("round_active", 4, 16, 64, 256, 1024, 4096),
	}
}

// EmitRound folds one round into the registry.
func (a *RoundAggregator) EmitRound(rs RoundStats) {
	a.rounds.Inc()
	a.messages.Add(rs.Messages)
	a.deliveries.Add(rs.Deliveries)
	a.bytes.Add(rs.Bytes)
	a.conflicts.Add(int64(rs.ConflictsDropped))
	a.rejects.Add(int64(rs.DefensiveRejects))
	a.colored.Add(int64(rs.Colored))
	a.retransmits.Add(int64(rs.Retransmits))
	a.repairs.Add(int64(rs.Repairs))
	a.reverts.Add(int64(rs.Reverts))
	a.probes.Add(int64(rs.Probes))
	a.active.Set(int64(rs.Active))
	a.paired.Set(int64(rs.Paired))
	a.numColors.Set(int64(rs.NumColors))
	a.roundMsgs.Observe(rs.Messages)
	a.roundActive.Observe(int64(rs.Active))
}

// StateCountHook returns an automaton.Hook that counts transitions into
// each state as registry counters ("automaton_enter_C", ...). The hook
// is concurrency-safe (counters are atomic) and composes with other
// hooks via ChainHooks.
func StateCountHook(reg *Registry) automaton.Hook {
	var counters [automaton.Done + 1]*Counter
	for s := automaton.Choose; s <= automaton.Done; s++ {
		counters[s] = reg.Counter("automaton_enter_" + s.String())
	}
	return func(node int, from, to automaton.State) {
		if int(to) < len(counters) {
			counters[to].Inc()
		}
	}
}

// ChainHooks composes automaton hooks, skipping nils; it returns nil
// when none remain, so the no-observer fast path stays intact.
func ChainHooks(hooks ...automaton.Hook) automaton.Hook {
	var live []automaton.Hook
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(node int, from, to automaton.State) {
		for _, h := range live {
			h(node, from, to)
		}
	}
}
