package metrics

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"dima/internal/automaton"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits")
	g := reg.Gauge("level")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %d, want 8000", g.Value())
	}
	// Get-or-create returns the same instrument.
	if reg.Counter("hits") != c {
		t.Fatal("Counter did not return the registered instrument")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.N != 6 || s.Sum != 1+10+11+100+101+5000 {
		t.Fatalf("snapshot n=%d sum=%d", s.N, s.Sum)
	}
	want := []int64{2, 2, 2} // <=10, <=100, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]int64{
		"empty":    {},
		"unsorted": {10, 5},
		"dup":      {3, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestRegistryWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("messages_total").Add(42)
	reg.Gauge("active").Set(7)
	reg.Histogram("round_messages", 10, 100).Observe(50)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"messages_total 42",
		"active 7",
		"round_messages_count 1",
		"round_messages_sum 50",
		`round_messages_bucket{le="100"} 1`,
		`round_messages_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket: le="10" saw nothing.
	if !strings.Contains(out, `round_messages_bucket{le="10"} 0`) {
		t.Fatalf("bucket cumulation wrong:\n%s", out)
	}
}

func TestJSONLWriter(t *testing.T) {
	var b strings.Builder
	j := NewJSONLWriter(&b)
	for r := 0; r < 3; r++ {
		j.EmitRound(RoundStats{Round: r, Active: 10 - r, Messages: int64(5 * r),
			ByKind: map[string]Traffic{"invite": {Messages: int64(r)}}})
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Rounds() != 3 {
		t.Fatalf("Rounds() = %d", j.Rounds())
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), b.String())
	}
	for i, line := range lines {
		var rs RoundStats
		if err := json.Unmarshal([]byte(line), &rs); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if rs.Round != i || rs.Active != 10-i {
			t.Fatalf("line %d round-tripped to %+v", i, rs)
		}
	}
}

// errWriter fails after limit bytes, for sticky-error coverage.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, io.ErrShortWrite
	}
	w.left -= len(p)
	return len(p), nil
}

func TestJSONLWriterStickyError(t *testing.T) {
	j := NewJSONLWriter(&errWriter{left: 10})
	for r := 0; r < 5000; r++ { // enough to overflow the bufio buffer
		j.EmitRound(RoundStats{Round: r})
	}
	if err := j.Flush(); err == nil {
		t.Fatal("Flush did not surface the write error")
	}
	if j.Err() == nil {
		t.Fatal("Err() did not stick")
	}
}

func TestMulti(t *testing.T) {
	var a, b Memory
	s := Multi(nil, &a, nil, &b)
	s.EmitRound(RoundStats{Round: 1})
	if len(a.Rounds) != 1 || len(b.Rounds) != 1 {
		t.Fatalf("fan-out failed: %d / %d", len(a.Rounds), len(b.Rounds))
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil")
	}
	if Multi(&a) != Sink(&a) {
		t.Fatal("Multi of one sink should collapse")
	}
}

func TestRoundAggregator(t *testing.T) {
	reg := NewRegistry()
	agg := NewRoundAggregator(reg)
	agg.EmitRound(RoundStats{Round: 0, Active: 100, Paired: 40, Messages: 300, Bytes: 900, Colored: 20, NumColors: 3})
	agg.EmitRound(RoundStats{Round: 1, Active: 60, Paired: 25, Messages: 200, Bytes: 600, Colored: 12, NumColors: 5, ConflictsDropped: 2})
	s := reg.Snapshot()
	if s.Counters["rounds_total"] != 2 || s.Counters["messages_total"] != 500 ||
		s.Counters["bytes_total"] != 1500 || s.Counters["colored_total"] != 32 ||
		s.Counters["conflicts_dropped_total"] != 2 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if s.Gauges["active"] != 60 || s.Gauges["paired"] != 25 || s.Gauges["num_colors"] != 5 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	if s.Histograms["round_messages"].N != 2 {
		t.Fatalf("histogram: %+v", s.Histograms["round_messages"])
	}
}

func TestStateCountHookAndChain(t *testing.T) {
	reg := NewRegistry()
	var order []string
	hook := ChainHooks(nil, StateCountHook(reg), func(node int, from, to automaton.State) {
		order = append(order, to.String())
	})
	hook(3, automaton.Choose, automaton.Invite)
	hook(3, automaton.Invite, automaton.Wait)
	s := reg.Snapshot()
	if s.Counters["automaton_enter_I"] != 1 || s.Counters["automaton_enter_W"] != 1 {
		t.Fatalf("state counters: %+v", s.Counters)
	}
	if strings.Join(order, "") != "IW" {
		t.Fatalf("chained hook order: %v", order)
	}
	if ChainHooks(nil, nil) != nil {
		t.Fatal("ChainHooks of nils should be nil")
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("messages_total").Add(99)
	ds, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	body := get("/metrics")
	for _, want := range []string{"messages_total 99", "go_goroutines", "go_heap_alloc_bytes"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if prof := get("/debug/pprof/cmdline"); prof == "" {
		t.Fatal("pprof cmdline empty")
	}
	if err := ds.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("close: %v", err)
	}
	// The port must actually be released: a second server on the same
	// address would collide if the first leaked its listener.
	ds2, err := StartDebugServer(addr, nil)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	if err := ds2.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
