// Package metrics is the run-telemetry layer: a lightweight,
// allocation-conscious registry of atomic instruments (counters, gauges,
// fixed-bucket histograms) plus the per-computation-round RoundStats
// stream that the coloring algorithms emit when a Sink is configured.
//
// The paper's empirical claims are trajectory claims — Algorithm 1
// converges in ≈2Δ computation rounds, Algorithm 2 in ≈4Δ, with the
// pairing probability of Proposition 1 per round — so the unit of
// observation here is the computation round, not the finished run.
// core.Options.Metrics wires a Sink into a run; with a nil sink the
// protocols skip all event logging, so the disabled cost is near zero.
//
// Instruments are safe for concurrent use (the goroutine engine runs one
// goroutine per vertex); RoundStats emission is sequential and ordered.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for the counter to stay monotonic).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets: one bucket per
// upper bound (observations v <= bound), plus an implicit +Inf bucket.
// All mutation is atomic; the bucket layout is immutable after creation.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. It panics on an empty or unsorted bound list.
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket.
	Bounds []int64
	Counts []int64
	Sum    int64
	N      int64
}

// Snapshot copies the histogram state. Under concurrent Observe calls
// the copy is per-field atomic, not globally consistent — fine for
// monitoring, which is its job.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		N:      h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a name-indexed collection of instruments. Get-or-create
// lookups are guarded by a mutex; the returned instruments themselves
// are lock-free, so hot paths hold on to the instrument, not the name.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // optional # HELP text, see prom.go
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistSnapshot
}

// Snapshot copies the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteText renders the registry in a Prometheus-flavored plain-text
// form (sorted by name): "name value" for counters and gauges, and
// "<name>_count", "<name>_sum", and '<name>_bucket{le="..."}' lines for
// histograms. The /metrics endpoint of the debug server serves this.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+4*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s_count %d", name, h.N))
		lines = append(lines, fmt.Sprintf("%s_sum %d", name, h.Sum))
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = strconv.FormatInt(h.Bounds[i], 10)
			}
			lines = append(lines, fmt.Sprintf("%s_bucket{le=%q} %d", name, le, cum))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
