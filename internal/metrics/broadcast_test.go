package metrics

import (
	"testing"
)

// drain reads everything currently buffered on a subscription.
func drain(sub *Subscription) []Event {
	var out []Event
	for {
		select {
		case ev := <-sub.Events():
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestBroadcastDeliversInOrder(t *testing.T) {
	b := NewBroadcastSink(64)
	sub := b.Subscribe(16)
	defer sub.Cancel()
	for i := 0; i < 10; i++ {
		b.EmitRound(RoundStats{Round: i})
	}
	evs := drain(sub)
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Type != EventRound {
			t.Fatalf("event %d type %q", i, ev.Type)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d, want %d", i, ev.Seq, i+1)
		}
		rs, ok := ev.Data.(RoundStats)
		if !ok || rs.Round != i {
			t.Fatalf("event %d data %+v", i, ev.Data)
		}
	}
	if b.DroppedTotal() != 0 {
		t.Fatalf("dropped %d on a fast subscriber", b.DroppedTotal())
	}
}

// TestBroadcastSlowSubscriberDrops is the bounded fan-out contract: a
// subscriber that stops reading loses events (the publisher never
// blocks), the loss is counted, and the gap is reported in-band as one
// EventDropped marker once the subscriber drains.
func TestBroadcastSlowSubscriberDrops(t *testing.T) {
	b := NewBroadcastSink(64)
	ctr := &Counter{}
	b.SetDropCounter(ctr)
	sub := b.Subscribe(4) // room for 4, then it stalls

	for i := 0; i < 10; i++ {
		b.Publish(EventStatus, i)
	}
	// 4 buffered, 6 dropped.
	if got := b.DroppedTotal(); got != 6 {
		t.Fatalf("DroppedTotal %d, want 6", got)
	}
	if ctr.Value() != 6 {
		t.Fatalf("drop counter %d, want 6", ctr.Value())
	}

	evs := drain(sub)
	if len(evs) != 4 {
		t.Fatalf("buffered %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d (must be the oldest prefix)", i, ev.Seq)
		}
	}

	// The next publish delivers the dropped marker first, then the event.
	b.Publish(EventStatus, 10)
	evs = drain(sub)
	if len(evs) != 2 {
		t.Fatalf("after catch-up got %d events, want marker+event", len(evs))
	}
	if evs[0].Type != EventDropped || evs[0].Seq != 0 {
		t.Fatalf("first event %+v, want a seq-0 dropped marker", evs[0])
	}
	if n, ok := evs[0].Data.(uint64); !ok || n != 6 {
		t.Fatalf("dropped marker data %+v, want 6", evs[0].Data)
	}
	if evs[1].Type != EventStatus || evs[1].Seq != 11 {
		t.Fatalf("second event %+v, want seq-11 status", evs[1])
	}
}

// A full channel with pending drops loses the new event too (the marker
// could not be placed), and the count keeps accumulating.
func TestBroadcastMarkerBlockedKeepsCounting(t *testing.T) {
	b := NewBroadcastSink(64)
	sub := b.Subscribe(2)
	b.Publish(EventStatus, 0) // buffered (seq 1)
	b.Publish(EventStatus, 1) // buffered (seq 2): buffer now full
	b.Publish(EventStatus, 2) // dropped
	b.Publish(EventStatus, 3) // marker blocked; dropped too
	if got := b.DroppedTotal(); got != 2 {
		t.Fatalf("DroppedTotal %d, want 2", got)
	}
	evs := drain(sub)
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("buffered %+v, want seqs 1 and 2", evs)
	}
	b.Publish(EventStatus, 4)
	evs = drain(sub)
	if len(evs) != 2 || evs[0].Type != EventDropped || evs[0].Data.(uint64) != 2 {
		t.Fatalf("after room: %+v, want dropped(2)+event", evs)
	}
	if evs[1].Seq != 5 {
		t.Fatalf("resumed at seq %d, want 5", evs[1].Seq)
	}
}

func TestBroadcastReplayRetainsBoundedSuffix(t *testing.T) {
	b := NewBroadcastSink(8)
	for i := 0; i < 100; i++ {
		b.Publish(EventRound, i)
	}
	evs := b.Replay()
	if len(evs) < 8 {
		t.Fatalf("replay kept %d events, want at least 8", len(evs))
	}
	if len(evs) > 16 {
		t.Fatalf("replay kept %d events, want a bounded suffix (<= 2*keep)", len(evs))
	}
	// The suffix is contiguous and ends at the newest event.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("replay gap between %d and %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if last := evs[len(evs)-1].Seq; last != 100 {
		t.Fatalf("replay ends at seq %d, want 100", last)
	}
}

func TestBroadcastSubscribeReplayHandoffIsGapFree(t *testing.T) {
	b := NewBroadcastSink(1024)
	for i := 0; i < 50; i++ {
		b.Publish(EventRound, i)
	}
	// Subscribe first, then replay: anything published in between shows
	// up on both and is deduplicated by Seq, so the merged stream is
	// exactly 1..N.
	sub := b.Subscribe(128)
	defer sub.Cancel()
	b.Publish(EventRound, 50)
	replay := b.Replay()
	b.Publish(EventRound, 51)

	seen := make(map[uint64]bool)
	last := uint64(0)
	for _, ev := range replay {
		seen[ev.Seq] = true
		last = ev.Seq
	}
	for _, ev := range drain(sub) {
		if ev.Seq != 0 && ev.Seq <= last {
			continue // deduplicated, as the SSE handler does
		}
		if seen[ev.Seq] {
			t.Fatalf("seq %d delivered twice after dedup", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	for s := uint64(1); s <= 52; s++ {
		if !seen[s] {
			t.Fatalf("seq %d missing from merged stream", s)
		}
	}
}

func TestBroadcastCancelAndClose(t *testing.T) {
	b := NewBroadcastSink(8)
	s1 := b.Subscribe(4)
	s2 := b.Subscribe(4)
	if got := b.Subscribers(); got != 2 {
		t.Fatalf("subscribers %d, want 2", got)
	}
	s1.Cancel()
	s1.Cancel() // idempotent
	if got := b.Subscribers(); got != 1 {
		t.Fatalf("after cancel: %d, want 1", got)
	}
	if _, ok := <-s1.Events(); ok {
		t.Fatal("canceled subscription channel still open")
	}
	b.Publish(EventStatus, "x")
	if len(drain(s2)) != 1 {
		t.Fatal("remaining subscriber missed the event")
	}
	b.Close()
	if _, ok := <-s2.Events(); ok {
		t.Fatal("closed sink left a subscriber channel open")
	}
	b.Publish(EventStatus, "y") // no-op, must not panic
	s2.Cancel()                 // after close, must not panic
	if sub := b.Subscribe(4); sub == nil {
		t.Fatal("subscribe on closed sink returned nil")
	} else if _, ok := <-sub.Events(); ok {
		t.Fatal("subscribe on closed sink returned an open channel")
	}
}
