package msg

import (
	"encoding/binary"
	"fmt"
)

// Control-plane payloads for the dimaserve cluster (docs/
// CLUSTER_SERVE.md): the handshake, heartbeat, and job frames a
// coloring worker exchanges with the routing front end. The discipline
// mirrors the node transport in frame.go — a versioned magic opens the
// handshake, a launch token proves the worker was invited, and every
// decoder is strict: a payload that parses but leaves bytes unconsumed
// is an error, so codec drift between front-end and worker builds
// surfaces at the first divergent frame.
//
// Frame kinds remain opaque to this package; internal/cluster assigns
// them, the way internal/net assigns the node-transport kinds.

// WorkerHandshakeVersion is the wire version of the worker registry
// protocol. Bump on any change to the grammar in this file; front end
// and worker refuse mismatched peers.
const WorkerHandshakeVersion = 1

// workerMagic opens every worker handshake, distinct from the node
// transport's helloMagic so a worker dialed at a node coordinator (or
// vice versa) is rejected on the first four bytes.
var workerMagic = [4]byte{'d', 'i', 'm', 'w'}

// WorkerHello is the first frame a worker sends on its registry
// connection: an operator label, how many jobs it will run
// concurrently, and the auth token proving the front end invited it.
type WorkerHello struct {
	Name     string
	Capacity int
	Token    uint64
}

// Append appends the handshake encoding to buf.
func (h WorkerHello) Append(buf []byte) []byte {
	buf = append(buf, workerMagic[:]...)
	buf = append(buf, WorkerHandshakeVersion)
	buf = binary.AppendUvarint(buf, uint64(len(h.Name)))
	buf = append(buf, h.Name...)
	buf = binary.AppendUvarint(buf, uint64(h.Capacity))
	return binary.BigEndian.AppendUint64(buf, h.Token)
}

// maxWorkerName bounds the operator label so a hostile hello cannot
// force an arbitrary allocation.
const maxWorkerName = 256

// DecodeWorkerHello parses a worker handshake, rejecting bad magic,
// version skew, oversized names, and trailing garbage.
func DecodeWorkerHello(buf []byte) (WorkerHello, error) {
	var h WorkerHello
	if len(buf) < len(workerMagic)+1 {
		return h, fmt.Errorf("msg: truncated worker handshake (%d bytes)", len(buf))
	}
	if [4]byte(buf[:4]) != workerMagic {
		return h, fmt.Errorf("msg: bad worker handshake magic %q", buf[:4])
	}
	if v := buf[4]; v != WorkerHandshakeVersion {
		return h, fmt.Errorf("msg: worker handshake version %d, want %d", v, WorkerHandshakeVersion)
	}
	dec := dec{buf: buf[5:]}
	name := dec.lenBytes("worker name")
	if dec.err == nil && len(name) > maxWorkerName {
		return h, fmt.Errorf("msg: worker name of %d bytes exceeds the %d-byte bound", len(name), maxWorkerName)
	}
	capacity := dec.uvarint("worker capacity")
	if dec.err != nil {
		return h, dec.err
	}
	if capacity > 1<<20 {
		return h, fmt.Errorf("msg: implausible worker capacity %d", capacity)
	}
	if len(dec.buf) != 8 {
		return h, fmt.Errorf("msg: worker handshake token wants 8 bytes, %d remain", len(dec.buf))
	}
	h.Name = string(name)
	h.Capacity = int(capacity)
	h.Token = binary.BigEndian.Uint64(dec.buf)
	return h, nil
}

// WorkerWelcome is the front end's handshake reply: the registry id it
// assigned and the heartbeat cadence it expects. A worker that stays
// silent for several intervals is evicted.
type WorkerWelcome struct {
	ID              string
	HeartbeatMillis int
}

// Append appends the welcome encoding to buf.
func (w WorkerWelcome) Append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(w.ID)))
	buf = append(buf, w.ID...)
	return binary.AppendUvarint(buf, uint64(w.HeartbeatMillis))
}

// DecodeWorkerWelcome parses a welcome strictly.
func DecodeWorkerWelcome(buf []byte) (WorkerWelcome, error) {
	var w WorkerWelcome
	dec := dec{buf: buf}
	id := dec.lenBytes("worker id")
	hb := dec.uvarint("heartbeat interval")
	if dec.err != nil {
		return w, dec.err
	}
	if len(id) > maxWorkerName {
		return w, fmt.Errorf("msg: worker id of %d bytes exceeds the %d-byte bound", len(id), maxWorkerName)
	}
	if hb == 0 || hb > 1<<31 {
		return w, fmt.Errorf("msg: implausible heartbeat interval %dms", hb)
	}
	if len(dec.buf) != 0 {
		return w, fmt.Errorf("msg: %d trailing bytes after worker welcome", len(dec.buf))
	}
	w.ID = string(id)
	w.HeartbeatMillis = int(hb)
	return w, nil
}

// Heartbeat is a worker's periodic load report: jobs executing right
// now and jobs accepted but still waiting for a run slot. The front
// end's router breaks dispatch ties with it and its janitor evicts
// workers whose last heartbeat is too old.
type Heartbeat struct {
	Running int
	Queued  int
}

// Append appends the heartbeat encoding to buf.
func (hb Heartbeat) Append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(hb.Running))
	return binary.AppendUvarint(buf, uint64(hb.Queued))
}

// DecodeHeartbeat parses a heartbeat strictly.
func DecodeHeartbeat(buf []byte) (Heartbeat, error) {
	var hb Heartbeat
	dec := dec{buf: buf}
	running := dec.uvarint("heartbeat running count")
	queued := dec.uvarint("heartbeat queued count")
	if dec.err != nil {
		return hb, dec.err
	}
	if running > 1<<31 || queued > 1<<31 {
		return hb, fmt.Errorf("msg: implausible heartbeat load %d/%d", running, queued)
	}
	if len(dec.buf) != 0 {
		return hb, fmt.Errorf("msg: %d trailing bytes after heartbeat", len(dec.buf))
	}
	hb.Running = int(running)
	hb.Queued = int(queued)
	return hb, nil
}

// Job header flag bits.
const (
	jobFlagStrong   = 1 << 0
	jobFlagRecovery = 1 << 1
)

// maxJobID bounds dispatch ids the way maxWorkerName bounds labels.
const maxJobID = 256

// JobHeader is the run description of one dispatched coloring job. The
// graph itself rides behind the header in the same frame (the node
// transport's edge-list section); DecodeJobHeader returns the
// unconsumed tail so the caller can parse it. Everything a run needs to
// be reproduced bit-for-bit is here — a retry of the same header on
// another worker yields the identical coloring, which is what makes
// failover idempotent.
type JobHeader struct {
	// ID is the front end's dispatch id, echoed by every worker frame
	// that concerns this job.
	ID string
	// Strong selects Algorithm 2 (strong distance-2 coloring).
	Strong bool
	// Recovery enables the loss-recovery protocol layer.
	Recovery bool
	// Seed determines every random choice of the run.
	Seed uint64
	// MaxRounds caps computation rounds (0 = worker default).
	MaxRounds int
}

// Append appends the job header encoding to buf. The caller appends the
// graph section after it.
func (j JobHeader) Append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(j.ID)))
	buf = append(buf, j.ID...)
	var flags byte
	if j.Strong {
		flags |= jobFlagStrong
	}
	if j.Recovery {
		flags |= jobFlagRecovery
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, j.Seed)
	return binary.AppendUvarint(buf, uint64(j.MaxRounds))
}

// DecodeJobHeader parses a job header from the front of buf and returns
// the unconsumed tail (the graph section).
func DecodeJobHeader(buf []byte) (JobHeader, []byte, error) {
	var j JobHeader
	dec := dec{buf: buf}
	id := dec.lenBytes("job id")
	if dec.err == nil && len(id) > maxJobID {
		return j, nil, fmt.Errorf("msg: job id of %d bytes exceeds the %d-byte bound", len(id), maxJobID)
	}
	flags := dec.byte("job flags")
	if dec.err != nil {
		return j, nil, dec.err
	}
	if flags&^byte(jobFlagStrong|jobFlagRecovery) != 0 {
		return j, nil, fmt.Errorf("msg: unknown job flag bits %#x", flags)
	}
	if len(dec.buf) < 8 {
		return j, nil, fmt.Errorf("msg: truncated job seed")
	}
	j.Seed = binary.BigEndian.Uint64(dec.buf[:8])
	dec.buf = dec.buf[8:]
	maxRounds := dec.uvarint("job max rounds")
	if dec.err != nil {
		return j, nil, dec.err
	}
	if maxRounds > 1<<31 {
		return j, nil, fmt.Errorf("msg: implausible job round cap %d", maxRounds)
	}
	j.ID = string(id)
	j.Strong = flags&jobFlagStrong != 0
	j.Recovery = flags&jobFlagRecovery != 0
	j.MaxRounds = int(maxRounds)
	return j, dec.buf, nil
}

// AppendJobBlob appends the common "job id + opaque payload" section
// used by the per-job frames (round stats, result, error, cancel).
func AppendJobBlob(buf []byte, id string, blob []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(id)))
	buf = append(buf, id...)
	return append(buf, blob...)
}

// DecodeJobBlob splits a job frame payload into its id and the
// remaining blob. The blob aliases buf.
func DecodeJobBlob(buf []byte) (string, []byte, error) {
	dec := dec{buf: buf}
	id := dec.lenBytes("job id")
	if dec.err != nil {
		return "", nil, dec.err
	}
	if len(id) > maxJobID {
		return "", nil, fmt.Errorf("msg: job id of %d bytes exceeds the %d-byte bound", len(id), maxJobID)
	}
	return string(id), dec.buf, nil
}

// dec is a cursor over a payload that latches the first decode error,
// keeping multi-field parsers linear (the cluster twin of internal/
// net's wireDec).
type dec struct {
	buf []byte
	err error
}

func (d *dec) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("msg: truncated %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("msg: truncated %s", what)
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *dec) lenBytes(what string) []byte {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("msg: %s of %d bytes exceeds the %d remaining", what, n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}
