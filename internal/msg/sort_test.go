package msg

import (
	"math/rand"
	"sort"
	"testing"
)

// randomMessages builds n messages with field values drawn so that
// duplicates and near-duplicates (equal prefixes differing only in late
// Less fields) are common.
func randomMessages(r *rand.Rand, n int) []Message {
	kinds := []Kind{KindInvite, KindResponse, KindClaim, KindDecide, KindUpdate, KindAck}
	out := make([]Message, n)
	for i := range out {
		m := Message{
			Kind:  kinds[r.Intn(len(kinds))],
			From:  r.Intn(6),
			To:    r.Intn(6),
			Edge:  r.Intn(4),
			Color: r.Intn(3) - 1,
			Keep:  r.Intn(2) == 0,
			Seq:   uint32(r.Intn(3)),
		}
		if r.Intn(4) == 0 {
			m.Paints = []Paint{{Edge: r.Intn(3), Color: r.Intn(3)}}
		}
		out[i] = m
	}
	return out
}

func assertSorted(t *testing.T, label string, got, want []Message) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length changed: %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if !Equal(got[i], want[i]) {
			t.Fatalf("%s: element %d differs:\ngot  %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// Sort must produce exactly the sequence sort.Slice-with-Less produces:
// Less is a total order over distinct messages, so any correct sort of
// the same multiset yields the same value sequence.
func TestSortMatchesReferenceSort(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 2, 3, 7, 12, 13, 16, 17, 31, 64, 257, 1000}
	for _, n := range sizes {
		for trial := 0; trial < 20; trial++ {
			msgs := randomMessages(r, n)
			want := make([]Message, len(msgs))
			copy(want, msgs)
			sort.Slice(want, func(i, j int) bool { return Less(want[i], want[j]) })
			Sort(msgs)
			assertSorted(t, "random", msgs, want)
		}
	}
}

// Adversarial shapes: already sorted, reversed, all-equal, organ-pipe,
// and many-duplicates inputs exercise the pivot selection and the
// depth-limited fallback.
func TestSortAdversarialShapes(t *testing.T) {
	const n = 500
	shapes := map[string]func(i int) Message{
		"sorted":    func(i int) Message { return Message{Kind: KindInvite, From: i} },
		"reversed":  func(i int) Message { return Message{Kind: KindInvite, From: n - i} },
		"all-equal": func(i int) Message { return Message{Kind: KindClaim, From: 3, Edge: 7} },
		"organpipe": func(i int) Message {
			v := i
			if v > n/2 {
				v = n - v
			}
			return Message{Kind: KindInvite, From: v}
		},
		"two-values": func(i int) Message { return Message{Kind: KindInvite, From: i % 2} },
	}
	for name, f := range shapes {
		msgs := make([]Message, n)
		for i := range msgs {
			msgs[i] = f(i)
		}
		want := make([]Message, n)
		copy(want, msgs)
		sort.Slice(want, func(i, j int) bool { return Less(want[i], want[j]) })
		Sort(msgs)
		assertSorted(t, name, msgs, want)
	}
}

func BenchmarkSortInbox(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	base := randomMessages(r, 8)
	work := make([]Message, len(base))
	b.Run("specialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(work, base)
			Sort(work)
		}
	})
	b.Run("reflective", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(work, base)
			sort.Slice(work, func(i, j int) bool { return Less(work[i], work[j]) })
		}
	})
}
