package msg

import (
	"strings"
	"testing"
)

func TestWorkerHelloRoundTrip(t *testing.T) {
	for _, h := range []WorkerHello{
		{},
		{Name: "rack-7/worker-2", Capacity: 4, Token: 0xdeadbeefcafef00d},
		{Name: strings.Repeat("x", maxWorkerName), Capacity: 1 << 20, Token: 1},
	} {
		got, err := DecodeWorkerHello(h.Append(nil))
		if err != nil {
			t.Fatalf("DecodeWorkerHello(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestWorkerHelloRejects(t *testing.T) {
	ok := WorkerHello{Name: "w", Capacity: 2, Token: 42}.Append(nil)
	cases := map[string][]byte{
		"empty":            nil,
		"short":            ok[:3],
		"node magic":       Hello{Shard: 0, Shards: 1, Token: 42}.Append(nil),
		"trailing garbage": append(append([]byte(nil), ok...), 0xff),
		"bad version":      append([]byte{'d', 'i', 'm', 'w', 99}, ok[5:]...),
		"truncated token":  ok[:len(ok)-2],
		"oversized name": WorkerHello{
			Name: strings.Repeat("n", maxWorkerName+1), Capacity: 1, Token: 1,
		}.Append(nil),
	}
	for name, buf := range cases {
		if _, err := DecodeWorkerHello(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestWorkerWelcomeRoundTrip(t *testing.T) {
	w := WorkerWelcome{ID: "w003", HeartbeatMillis: 1000}
	got, err := DecodeWorkerWelcome(w.Append(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("round trip: got %+v, want %+v", got, w)
	}
	if _, err := DecodeWorkerWelcome(append(w.Append(nil), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeWorkerWelcome(WorkerWelcome{ID: "w"}.Append(nil)); err == nil {
		t.Error("zero heartbeat interval accepted")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	for _, hb := range []Heartbeat{{}, {Running: 3, Queued: 17}} {
		got, err := DecodeHeartbeat(hb.Append(nil))
		if err != nil {
			t.Fatalf("DecodeHeartbeat(%+v): %v", hb, err)
		}
		if got != hb {
			t.Fatalf("round trip: got %+v, want %+v", got, hb)
		}
	}
	if _, err := DecodeHeartbeat(append(Heartbeat{}.Append(nil), 1)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeHeartbeat(nil); err == nil {
		t.Error("empty heartbeat accepted")
	}
}

func TestJobHeaderRoundTrip(t *testing.T) {
	graphSection := []byte{9, 8, 7}
	for _, h := range []JobHeader{
		{ID: "d000001"},
		{ID: "d000042", Strong: true, Seed: 1 << 60, MaxRounds: 500},
		{ID: "d9", Recovery: true, Seed: 7},
		{ID: "d10", Strong: true, Recovery: true, Seed: 1, MaxRounds: 1},
	} {
		buf := append(h.Append(nil), graphSection...)
		got, rest, err := DecodeJobHeader(buf)
		if err != nil {
			t.Fatalf("DecodeJobHeader(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
		if string(rest) != string(graphSection) {
			t.Fatalf("tail: got %v, want %v", rest, graphSection)
		}
	}
}

func TestJobHeaderRejects(t *testing.T) {
	ok := JobHeader{ID: "d1", Seed: 3}.Append(nil)
	if _, _, err := DecodeJobHeader(ok[:4]); err == nil {
		t.Error("truncated seed accepted")
	}
	bad := append([]byte(nil), ok...)
	bad[len("d1")+1] = 0xf0 // unknown flag bits
	if _, _, err := DecodeJobHeader(bad); err == nil {
		t.Error("unknown flag bits accepted")
	}
	long := JobHeader{ID: strings.Repeat("i", maxJobID+1)}.Append(nil)
	if _, _, err := DecodeJobHeader(long); err == nil {
		t.Error("oversized job id accepted")
	}
}

func TestJobBlobRoundTrip(t *testing.T) {
	buf := AppendJobBlob(nil, "d000007", []byte("payload"))
	id, blob, err := DecodeJobBlob(buf)
	if err != nil {
		t.Fatal(err)
	}
	if id != "d000007" || string(blob) != "payload" {
		t.Fatalf("got (%q, %q)", id, blob)
	}
	// Empty blob is legal (cancel frames are just an id).
	id, blob, err = DecodeJobBlob(AppendJobBlob(nil, "d1", nil))
	if err != nil || id != "d1" || len(blob) != 0 {
		t.Fatalf("empty blob: id %q blob %q err %v", id, blob, err)
	}
	if _, _, err := DecodeJobBlob([]byte{200}); err == nil {
		t.Error("truncated id accepted")
	}
}
