package msg

import "math/bits"

// Sort sorts msgs in place into the canonical Less order. It is the
// engines' inbox sort: every engine canonicalizes a node's inbox with
// Sort before handing it to Step, so protocol logic sees the same
// sequence regardless of which engine delivered the messages.
//
// The implementation is specialized to []Message — no reflection, no
// interface dispatch — because inbox sorting sits on the hottest path of
// every run (once per node per communication round). Inboxes are short
// (at most one message per neighbor per phase), so the common case is
// the insertion sort; larger inboxes take a median-of-three quicksort
// with a depth bound and a heapsort fallback, keeping the worst case
// O(n log n).
func Sort(msgs []Message) {
	if len(msgs) < 2 {
		return
	}
	quickSortMsgs(msgs, 2*bits.Len(uint(len(msgs))))
}

// sortSmallMax is the slice length at or below which insertion sort is
// used directly.
const sortSmallMax = 16

func quickSortMsgs(s []Message, depth int) {
	for len(s) > sortSmallMax {
		if depth == 0 {
			heapSortMsgs(s)
			return
		}
		depth--
		p := partitionMsgs(s)
		// Recurse into the smaller side, iterate on the larger, so the
		// stack stays O(log n).
		if p < len(s)-p-1 {
			quickSortMsgs(s[:p], depth)
			s = s[p+1:]
		} else {
			quickSortMsgs(s[p+1:], depth)
			s = s[:p]
		}
	}
	insertionSortMsgs(s)
}

func insertionSortMsgs(s []Message) {
	for i := 1; i < len(s); i++ {
		m := s[i]
		j := i
		for j > 0 && Less(m, s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = m
	}
}

// partitionMsgs partitions s around a median-of-three pivot and returns
// the pivot's final index. Only called with len(s) > sortSmallMax.
func partitionMsgs(s []Message) int {
	hi := len(s) - 1
	mid := hi / 2
	// Order s[0] <= s[mid] <= s[hi], then park the median at hi-1.
	if Less(s[mid], s[0]) {
		s[0], s[mid] = s[mid], s[0]
	}
	if Less(s[hi], s[0]) {
		s[0], s[hi] = s[hi], s[0]
	}
	if Less(s[hi], s[mid]) {
		s[mid], s[hi] = s[hi], s[mid]
	}
	s[mid], s[hi-1] = s[hi-1], s[mid]
	pivot := s[hi-1]
	i := 0
	for j := 0; j < hi-1; j++ {
		if Less(s[j], pivot) {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[hi-1] = s[hi-1], s[i]
	return i
}

func heapSortMsgs(s []Message) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMsgs(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftDownMsgs(s, 0, i)
	}
}

func siftDownMsgs(s []Message, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && Less(s[c], s[c+1]) {
			c++
		}
		if !Less(s[root], s[c]) {
			return
		}
		s[root], s[c] = s[c], s[root]
		root = c
	}
}
