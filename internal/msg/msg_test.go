package msg

import (
	"sort"
	"testing"
	"testing/quick"
)

func sample() []Message {
	return []Message{
		{Kind: KindInvite, From: 3, To: 7, Edge: 12, Color: 0},
		{Kind: KindResponse, From: 7, To: 3, Edge: 12, Color: 0},
		{Kind: KindClaim, From: 3, To: Broadcast, Edge: 12, Color: 5},
		{Kind: KindDecide, From: 3, To: Broadcast, Edge: 12, Color: 5, Keep: true},
		{Kind: KindDecide, From: 3, To: Broadcast, Edge: 12, Color: 5, Keep: false},
		{Kind: KindUpdate, From: 9, To: Broadcast, Edge: -1, Color: -1,
			Paints: []Paint{{Edge: 1, Color: 2}, {Edge: 40, Color: 0}}},
		{Kind: KindUpdate, From: 0, To: Broadcast, Edge: -1, Color: -1},
		{Kind: KindResponse, From: 7, To: 3, Edge: 12, Color: 0, Seq: 2},
		{Kind: KindAck, From: 3, To: 7, Edge: 12, Color: 0, Keep: true},
		{Kind: KindAck, From: 3, To: 7, Edge: 12, Color: 5, Keep: false, Seq: 1},
		{Kind: KindAck, From: 3, To: 7, Edge: 12, Color: -1, Keep: false},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, m := range sample() {
		buf := m.Append(nil)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d bytes", m, n, len(buf))
		}
		if !Equal(m, got) {
			t.Fatalf("round trip: sent %v got %v", m, got)
		}
	}
}

func TestRoundTripConcatenated(t *testing.T) {
	msgs := sample()
	var buf []byte
	for _, m := range msgs {
		buf = m.Append(buf)
	}
	pos := 0
	for i, want := range msgs {
		got, n, err := Decode(buf[pos:])
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !Equal(want, got) {
			t.Fatalf("message %d: %v != %v", i, want, got)
		}
		pos += n
	}
	if pos != len(buf) {
		t.Fatalf("leftover bytes: %d of %d", len(buf)-pos, len(buf))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("decoded empty buffer")
	}
	if _, _, err := Decode([]byte{0}); err == nil {
		t.Fatal("decoded kind 0")
	}
	if _, _, err := Decode([]byte{99}); err == nil {
		t.Fatal("decoded unknown kind")
	}
	// Truncate a valid encoding at every prefix length: must error, never
	// panic, never succeed. Both a paint-carrying and a seq-carrying
	// message exercise every decoder branch.
	for _, i := range []int{5, 9} {
		full := sample()[i].Append(nil)
		for cut := 0; cut < len(full); cut++ {
			if _, _, err := Decode(full[:cut]); err == nil {
				t.Fatalf("decoded truncated buffer of %d/%d bytes", cut, len(full))
			}
		}
	}
}

// The paint-count guard must bound the count by the bytes actually
// remaining (each paint takes >= 2 bytes), not by the whole buffer
// length: an adversarial count between the two used to pass the guard
// and reach the paint loop.
func TestDecodeAdversarialPaintCount(t *testing.T) {
	// A minimal update header: kind, from, to, edge, color, flags.
	header := []byte{byte(KindUpdate), 0, 0, 1, 1, 0}
	// Claim 4 paints with only 3 bytes remaining: 4 <= len(buf) (old
	// guard passes) but 4 > 3/2 (new guard must reject).
	buf := append(append([]byte{}, header...), 4, 0, 0, 0)
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("decoded message whose paint count exceeds the remaining bytes")
	}
	// The same shape with a satisfiable count must still decode.
	ok := append(append([]byte{}, header...), 2, 0, 0, 0, 0)
	m, n, err := Decode(ok)
	if err != nil || n != len(ok) || len(m.Paints) != 2 {
		t.Fatalf("valid 2-paint message failed: %v n=%d err=%v", m, n, err)
	}
	// A huge count must be rejected without allocating.
	huge := append(append([]byte{}, header...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := Decode(huge); err == nil {
		t.Fatal("decoded message with a huge paint count")
	}
}

func TestSize(t *testing.T) {
	for _, m := range sample() {
		if m.Size() != len(m.Append(nil)) {
			t.Fatalf("Size mismatch for %v", m)
		}
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	msgs := sample()
	for _, a := range msgs {
		if Less(a, a) {
			t.Fatalf("Less(%v, %v) true", a, a)
		}
		for _, b := range msgs {
			if Less(a, b) && Less(b, a) {
				t.Fatalf("Less not antisymmetric on %v, %v", a, b)
			}
		}
	}
}

// Less must be a TOTAL order: any two distinct messages compare one way
// or the other, so sort.Slice cannot leave engine-dependent tie orders.
// The regression cases are the field pairs the old comparator ignored:
// Keep, Paints, and Seq.
func TestLessIsTotal(t *testing.T) {
	pairs := [][2]Message{
		{{Kind: KindDecide, From: 3, Edge: 5, Color: 1, Keep: false},
			{Kind: KindDecide, From: 3, Edge: 5, Color: 1, Keep: true}},
		{{Kind: KindUpdate, From: 3, Edge: -1, Color: -1, Paints: []Paint{{1, 2}}},
			{Kind: KindUpdate, From: 3, Edge: -1, Color: -1, Paints: []Paint{{1, 3}}}},
		{{Kind: KindUpdate, From: 3, Edge: -1, Color: -1, Paints: []Paint{{1, 2}}},
			{Kind: KindUpdate, From: 3, Edge: -1, Color: -1, Paints: []Paint{{1, 2}, {4, 0}}}},
		{{Kind: KindResponse, From: 3, To: 1, Edge: 5, Color: 1},
			{Kind: KindResponse, From: 3, To: 1, Edge: 5, Color: 1, Seq: 1}},
		{{Kind: KindAck, From: 3, To: 1, Edge: 5, Color: 1, Keep: true},
			{Kind: KindAck, From: 3, To: 1, Edge: 5, Color: 1, Keep: true, Seq: 2}},
	}
	for _, p := range pairs {
		a, b := p[0], p[1]
		if Equal(a, b) {
			t.Fatalf("test pair not distinct: %v", a)
		}
		if Less(a, b) == Less(b, a) {
			t.Fatalf("Less cannot order %v and %v", a, b)
		}
	}
	// All sample messages are pairwise distinct and must be ordered.
	msgs := sample()
	for i, a := range msgs {
		for _, b := range msgs[i+1:] {
			if !Equal(a, b) && Less(a, b) == Less(b, a) {
				t.Fatalf("Less cannot order %v and %v", a, b)
			}
		}
	}
}

func TestLessOrdersByFromFirst(t *testing.T) {
	a := Message{Kind: KindUpdate, From: 1}
	b := Message{Kind: KindInvite, From: 2}
	if !Less(a, b) || Less(b, a) {
		t.Fatal("From must dominate ordering")
	}
}

func TestSortStable(t *testing.T) {
	msgs := []Message{
		{Kind: KindResponse, From: 2, Edge: 1},
		{Kind: KindInvite, From: 2, Edge: 9},
		{Kind: KindInvite, From: 0, Edge: 3},
	}
	sort.Slice(msgs, func(i, j int) bool { return Less(msgs[i], msgs[j]) })
	if msgs[0].From != 0 || msgs[1].Kind != KindInvite || msgs[2].Kind != KindResponse {
		t.Fatalf("sorted order wrong: %v", msgs)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindInvite: "invite", KindResponse: "response", KindClaim: "claim",
		KindDecide: "decide", KindUpdate: "update", KindAck: "ack",
		Kind(77): "kind(77)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(kind uint8, from, to, edge, color int16, keep bool, seq uint32, paintsRaw []int16) bool {
		k := Kind(kind%6) + KindInvite
		m := Message{
			Kind: k, From: int(from), To: int(to),
			Edge: int(edge), Color: int(color), Keep: keep, Seq: seq,
		}
		for i := 0; i+1 < len(paintsRaw); i += 2 {
			m.Paints = append(m.Paints, Paint{Edge: int(paintsRaw[i]), Color: int(paintsRaw[i+1])})
		}
		got, n, err := Decode(m.Append(nil))
		return err == nil && n == m.Size() && Equal(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-like robustness check: Decode must never panic on arbitrary bytes.
func TestQuickDecodeNoPanic(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func FuzzDecode(f *testing.F) {
	for _, m := range sample() {
		f.Add(m.Append(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Round-trip: re-encoding the decoded message must decode to the
		// same message.
		again, n2, err := Decode(m.Append(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != m.Size() || !Equal(m, again) {
			t.Fatalf("round trip mismatch: %v vs %v", m, again)
		}
	})
}
