// Package msg defines the wire messages exchanged by dima protocol nodes
// and a compact binary codec for them.
//
// The paper's model is synchronous local broadcast: every message a node
// sends in a communication round is heard by all of its neighbors. The
// To field is therefore an *addressee*, not a routing constraint —
// receivers use it to split their inbox into messages "for me" and
// overheard messages, exactly as the L and R states of the automaton
// require (and the strong-coloring algorithm depends on overhearing).
package msg

import (
	"encoding/binary"
	"fmt"
)

// Kind discriminates message types.
type Kind uint8

const (
	// KindInvite is sent by a node in the I state: From proposes to
	// color Edge (an edge id in Algorithm 1, an arc id in Algorithm 2)
	// with Color, addressed to neighbor To.
	KindInvite Kind = iota + 1
	// KindResponse is sent by a node in the R state: the invitation with
	// the ids reversed, accepting the proposal.
	KindResponse
	// KindClaim is the first exchange sub-round of the strong-coloring
	// algorithm: a tentative (edge, color) pair announced by both
	// endpoints for same-round conflict detection.
	KindClaim
	// KindDecide is the second exchange sub-round: each endpoint's
	// keep/drop verdict on its claim after local conflict resolution.
	KindDecide
	// KindUpdate carries newly finalized (edge, color) assignments — the
	// E (exchange) state broadcast that keeps one-hop color knowledge
	// current.
	KindUpdate
)

// Broadcast is the To value for messages with no specific addressee.
const Broadcast = -1

// KindCount is one past the largest Kind value — the size for arrays
// indexed directly by Kind (index 0, below KindInvite, stays unused).
const KindCount = int(KindUpdate) + 1

func (k Kind) String() string {
	switch k {
	case KindInvite:
		return "invite"
	case KindResponse:
		return "response"
	case KindClaim:
		return "claim"
	case KindDecide:
		return "decide"
	case KindUpdate:
		return "update"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Paint is one (edge, color) assignment inside a KindUpdate message.
type Paint struct {
	Edge  int
	Color int
}

// Message is the single concrete message type used by all protocols.
// Unused fields are zero; Edge and Color are -1 when absent.
type Message struct {
	Kind   Kind
	From   int
	To     int // addressee, or Broadcast
	Edge   int // EdgeID (Algorithm 1) or ArcID (Algorithm 2)
	Color  int
	Keep   bool    // KindDecide: endpoint's verdict
	Paints []Paint // KindUpdate: finalized assignments
}

func (m Message) String() string {
	switch m.Kind {
	case KindDecide:
		return fmt.Sprintf("%s{%d->%d e%d c%d keep=%v}", m.Kind, m.From, m.To, m.Edge, m.Color, m.Keep)
	case KindUpdate:
		return fmt.Sprintf("%s{%d->%d %v}", m.Kind, m.From, m.To, m.Paints)
	default:
		return fmt.Sprintf("%s{%d->%d e%d c%d}", m.Kind, m.From, m.To, m.Edge, m.Color)
	}
}

// Less orders messages canonically. Inboxes are sorted with Less before
// being handed to protocol logic so that the deterministic sequential
// runtime and the goroutine runtime produce identical executions.
func Less(a, b Message) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.To != b.To {
		return a.To < b.To
	}
	if a.Edge != b.Edge {
		return a.Edge < b.Edge
	}
	return a.Color < b.Color
}

// Size returns the encoded size of m in bytes without encoding it.
func (m Message) Size() int {
	n := 1 + // kind byte
		varintLen(int64(m.From)) + varintLen(int64(m.To)) +
		varintLen(int64(m.Edge)) + varintLen(int64(m.Color)) +
		1 + // keep byte
		uvarintLen(uint64(len(m.Paints)))
	for _, p := range m.Paints {
		n += varintLen(int64(p.Edge)) + varintLen(int64(p.Color))
	}
	return n
}

// varintLen returns the zig-zag varint encoding length of v.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// uvarintLen returns the unsigned varint encoding length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Append appends the binary encoding of m to buf and returns the result.
// The format is: kind byte, then varint-encoded From, To, Edge, Color
// (zig-zag for the possibly-negative fields), a keep byte, and a
// length-prefixed paint list.
func (m Message) Append(buf []byte) []byte {
	buf = append(buf, byte(m.Kind))
	buf = binary.AppendVarint(buf, int64(m.From))
	buf = binary.AppendVarint(buf, int64(m.To))
	buf = binary.AppendVarint(buf, int64(m.Edge))
	buf = binary.AppendVarint(buf, int64(m.Color))
	if m.Keep {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Paints)))
	for _, p := range m.Paints {
		buf = binary.AppendVarint(buf, int64(p.Edge))
		buf = binary.AppendVarint(buf, int64(p.Color))
	}
	return buf
}

// Decode parses one message from buf, returning the message and the
// number of bytes consumed.
func Decode(buf []byte) (Message, int, error) {
	var m Message
	if len(buf) == 0 {
		return m, 0, fmt.Errorf("msg: empty buffer")
	}
	m.Kind = Kind(buf[0])
	if m.Kind < KindInvite || m.Kind > KindUpdate {
		return m, 0, fmt.Errorf("msg: unknown kind %d", buf[0])
	}
	pos := 1
	readInt := func() (int, error) {
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("msg: truncated varint at offset %d", pos)
		}
		pos += n
		return int(v), nil
	}
	var err error
	if m.From, err = readInt(); err != nil {
		return m, 0, err
	}
	if m.To, err = readInt(); err != nil {
		return m, 0, err
	}
	if m.Edge, err = readInt(); err != nil {
		return m, 0, err
	}
	if m.Color, err = readInt(); err != nil {
		return m, 0, err
	}
	if pos >= len(buf) {
		return m, 0, fmt.Errorf("msg: truncated keep byte")
	}
	m.Keep = buf[pos] == 1
	pos++
	count, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return m, 0, fmt.Errorf("msg: truncated paint count")
	}
	pos += n
	if count > uint64(len(buf)) {
		return m, 0, fmt.Errorf("msg: implausible paint count %d", count)
	}
	if count > 0 {
		m.Paints = make([]Paint, count)
		for i := range m.Paints {
			if m.Paints[i].Edge, err = readInt(); err != nil {
				return m, 0, err
			}
			if m.Paints[i].Color, err = readInt(); err != nil {
				return m, 0, err
			}
		}
	}
	return m, pos, nil
}

// Equal reports whether two messages are identical, including paints.
func Equal(a, b Message) bool {
	if a.Kind != b.Kind || a.From != b.From || a.To != b.To ||
		a.Edge != b.Edge || a.Color != b.Color || a.Keep != b.Keep ||
		len(a.Paints) != len(b.Paints) {
		return false
	}
	for i := range a.Paints {
		if a.Paints[i] != b.Paints[i] {
			return false
		}
	}
	return true
}
