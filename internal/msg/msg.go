// Package msg defines the wire messages exchanged by dima protocol nodes
// and a compact binary codec for them.
//
// The paper's model is synchronous local broadcast: every message a node
// sends in a communication round is heard by all of its neighbors. The
// To field is therefore an *addressee*, not a routing constraint —
// receivers use it to split their inbox into messages "for me" and
// overheard messages, exactly as the L and R states of the automaton
// require (and the strong-coloring algorithm depends on overhearing).
package msg

import (
	"encoding/binary"
	"fmt"
)

// Kind discriminates message types.
type Kind uint8

const (
	// KindInvite is sent by a node in the I state: From proposes to
	// color Edge (an edge id in Algorithm 1, an arc id in Algorithm 2)
	// with Color, addressed to neighbor To.
	KindInvite Kind = iota + 1
	// KindResponse is sent by a node in the R state: the invitation with
	// the ids reversed, accepting the proposal.
	KindResponse
	// KindClaim is the first exchange sub-round of the strong-coloring
	// algorithm: a tentative (edge, color) pair announced by both
	// endpoints for same-round conflict detection.
	KindClaim
	// KindDecide is the second exchange sub-round: each endpoint's
	// keep/drop verdict on its claim after local conflict resolution.
	KindDecide
	// KindUpdate carries newly finalized (edge, color) assignments — the
	// E (exchange) state broadcast that keeps one-hop color knowledge
	// current.
	KindUpdate
	// KindAck is the recovery layer's control message, outside the
	// paper's reliable-delivery model. Three shapes share the kind:
	// Keep == true acknowledges receipt of a Response (or an adopted
	// assignment) for Edge; Keep == false with Color >= 0 is a negative
	// acknowledgement telling the addressee to revert its one-sided
	// assignment of Color to Edge; Keep == false with Color == -1 is a
	// status probe asking the addressee whether it believes Edge colored.
	KindAck
)

// Broadcast is the To value for messages with no specific addressee.
const Broadcast = -1

// KindCount is one past the largest Kind value — the size for arrays
// indexed directly by Kind (index 0, below KindInvite, stays unused).
const KindCount = int(KindAck) + 1

func (k Kind) String() string {
	switch k {
	case KindInvite:
		return "invite"
	case KindResponse:
		return "response"
	case KindClaim:
		return "claim"
	case KindDecide:
		return "decide"
	case KindUpdate:
		return "update"
	case KindAck:
		return "ack"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Paint is one (edge, color) assignment inside a KindUpdate message.
type Paint struct {
	Edge  int
	Color int
}

// Message is the single concrete message type used by all protocols.
// Unused fields are zero; Edge and Color are -1 when absent.
type Message struct {
	Kind   Kind
	From   int
	To     int // addressee, or Broadcast
	Edge   int // EdgeID (Algorithm 1) or ArcID (Algorithm 2)
	Color  int
	Keep   bool    // KindDecide: endpoint's verdict; KindAck: ack vs nack/probe
	Seq    uint32  // retransmission sequence number; 0 for first sends
	Paints []Paint // KindUpdate: finalized assignments
}

func (m Message) String() string {
	seq := ""
	if m.Seq > 0 {
		seq = fmt.Sprintf(" seq=%d", m.Seq)
	}
	switch m.Kind {
	case KindDecide, KindAck:
		return fmt.Sprintf("%s{%d->%d e%d c%d keep=%v%s}", m.Kind, m.From, m.To, m.Edge, m.Color, m.Keep, seq)
	case KindUpdate:
		return fmt.Sprintf("%s{%d->%d %v%s}", m.Kind, m.From, m.To, m.Paints, seq)
	default:
		return fmt.Sprintf("%s{%d->%d e%d c%d%s}", m.Kind, m.From, m.To, m.Edge, m.Color, seq)
	}
}

// Less orders messages canonically, comparing every field so that the
// order is total: inboxes are sorted with Less before being handed to
// protocol logic, and any pair of distinct messages — including two
// Decide or Update messages from the same sender differing only in Keep
// or Paints — must sort the same way under both engines for the
// RunSync/RunChan equivalence to hold.
func Less(a, b Message) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.To != b.To {
		return a.To < b.To
	}
	if a.Edge != b.Edge {
		return a.Edge < b.Edge
	}
	if a.Color != b.Color {
		return a.Color < b.Color
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Keep != b.Keep {
		return !a.Keep // false sorts before true
	}
	// Paints compare lexicographically, a strict prefix sorting first.
	for i := 0; i < len(a.Paints) && i < len(b.Paints); i++ {
		if a.Paints[i] != b.Paints[i] {
			if a.Paints[i].Edge != b.Paints[i].Edge {
				return a.Paints[i].Edge < b.Paints[i].Edge
			}
			return a.Paints[i].Color < b.Paints[i].Color
		}
	}
	return len(a.Paints) < len(b.Paints)
}

// Size returns the encoded size of m in bytes without encoding it.
func (m Message) Size() int {
	n := 1 + // kind byte
		varintLen(int64(m.From)) + varintLen(int64(m.To)) +
		varintLen(int64(m.Edge)) + varintLen(int64(m.Color)) +
		1 + // flags byte
		uvarintLen(uint64(len(m.Paints)))
	if m.Seq > 0 {
		n += uvarintLen(uint64(m.Seq))
	}
	for _, p := range m.Paints {
		n += varintLen(int64(p.Edge)) + varintLen(int64(p.Color))
	}
	return n
}

// varintLen returns the zig-zag varint encoding length of v.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// uvarintLen returns the unsigned varint encoding length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Flag bits of the encoded flags byte.
const (
	flagKeep = 1 << 0 // Keep is true
	flagSeq  = 1 << 1 // a uvarint Seq follows the flags byte
)

// Append appends the binary encoding of m to buf and returns the result.
// The format is: kind byte, then varint-encoded From, To, Edge, Color
// (zig-zag for the possibly-negative fields), a flags byte, an optional
// uvarint sequence number (flagSeq, present only when Seq > 0 so that
// first-transmission encodings are identical to the pre-recovery wire
// format), and a length-prefixed paint list.
func (m Message) Append(buf []byte) []byte {
	buf = append(buf, byte(m.Kind))
	buf = binary.AppendVarint(buf, int64(m.From))
	buf = binary.AppendVarint(buf, int64(m.To))
	buf = binary.AppendVarint(buf, int64(m.Edge))
	buf = binary.AppendVarint(buf, int64(m.Color))
	var flags byte
	if m.Keep {
		flags |= flagKeep
	}
	if m.Seq > 0 {
		flags |= flagSeq
	}
	buf = append(buf, flags)
	if m.Seq > 0 {
		buf = binary.AppendUvarint(buf, uint64(m.Seq))
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Paints)))
	for _, p := range m.Paints {
		buf = binary.AppendVarint(buf, int64(p.Edge))
		buf = binary.AppendVarint(buf, int64(p.Color))
	}
	return buf
}

// Decode parses one message from buf, returning the message and the
// number of bytes consumed.
func Decode(buf []byte) (Message, int, error) {
	var m Message
	if len(buf) == 0 {
		return m, 0, fmt.Errorf("msg: empty buffer")
	}
	m.Kind = Kind(buf[0])
	if m.Kind < KindInvite || m.Kind > KindAck {
		return m, 0, fmt.Errorf("msg: unknown kind %d", buf[0])
	}
	pos := 1
	readInt := func() (int, error) {
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("msg: truncated varint at offset %d", pos)
		}
		pos += n
		return int(v), nil
	}
	var err error
	if m.From, err = readInt(); err != nil {
		return m, 0, err
	}
	if m.To, err = readInt(); err != nil {
		return m, 0, err
	}
	if m.Edge, err = readInt(); err != nil {
		return m, 0, err
	}
	if m.Color, err = readInt(); err != nil {
		return m, 0, err
	}
	if pos >= len(buf) {
		return m, 0, fmt.Errorf("msg: truncated flags byte")
	}
	flags := buf[pos]
	pos++
	if flags&^byte(flagKeep|flagSeq) != 0 {
		return m, 0, fmt.Errorf("msg: unknown flag bits %#x", flags)
	}
	m.Keep = flags&flagKeep != 0
	if flags&flagSeq != 0 {
		seq, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return m, 0, fmt.Errorf("msg: truncated sequence number")
		}
		if seq == 0 || seq > uint64(^uint32(0)) {
			return m, 0, fmt.Errorf("msg: implausible sequence number %d", seq)
		}
		pos += n
		m.Seq = uint32(seq)
	}
	count, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return m, 0, fmt.Errorf("msg: truncated paint count")
	}
	pos += n
	// Each paint encodes to at least two bytes (one per varint), so any
	// count above half the remaining buffer cannot be satisfied; reject
	// it before allocating, keeping adversarial buffers cheap.
	if count > uint64(len(buf)-pos)/2 {
		return m, 0, fmt.Errorf("msg: implausible paint count %d for %d remaining bytes", count, len(buf)-pos)
	}
	if count > 0 {
		m.Paints = make([]Paint, count)
		for i := range m.Paints {
			if m.Paints[i].Edge, err = readInt(); err != nil {
				return m, 0, err
			}
			if m.Paints[i].Color, err = readInt(); err != nil {
				return m, 0, err
			}
		}
	}
	return m, pos, nil
}

// Equal reports whether two messages are identical, including paints.
func Equal(a, b Message) bool {
	if a.Kind != b.Kind || a.From != b.From || a.To != b.To ||
		a.Edge != b.Edge || a.Color != b.Color || a.Keep != b.Keep ||
		a.Seq != b.Seq || len(a.Paints) != len(b.Paints) {
		return false
	}
	for i := range a.Paints {
		if a.Paints[i] != b.Paints[i] {
			return false
		}
	}
	return true
}
