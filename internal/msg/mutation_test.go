package msg

import (
	"testing"
)

func sampleBatches() []*MutationBatch {
	return []*MutationBatch{
		{},
		{Seq: 1},
		{Seq: 7, Muts: []Mutation{{Op: OpInsert, U: 0, V: 1}}},
		{Seq: 1 << 40, Muts: []Mutation{
			{Op: OpInsert, U: 3, V: 9},
			{Op: OpDelete, U: 9, V: 4},
			{Op: OpInsert, U: 100000, V: 2},
		}},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	for _, b := range sampleBatches() {
		buf := AppendBatch(nil, b)
		got, n, err := DecodeBatch(buf)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d bytes", b, n, len(buf))
		}
		if !EqualBatch(b, got) {
			t.Fatalf("round trip: %v vs %v", b, got)
		}
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	good := AppendBatch(nil, sampleBatches()[3])
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       {0x00, 0x01},
		"truncated seq":   {batchMagic},
		"truncated count": {batchMagic, 0x07},
		"huge count":      {batchMagic, 0x00, 0xff, 0xff, 0xff, 0x7f},
		"bad op":          {batchMagic, 0x00, 0x01, 0x09, 0x02, 0x04},
		"truncated mut":   good[:len(good)-1],
	}
	for name, buf := range cases {
		if _, _, err := DecodeBatch(buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBatchValidate(t *testing.T) {
	ins := func(u, v int) Mutation { return Mutation{Op: OpInsert, U: u, V: v} }
	del := func(u, v int) Mutation { return Mutation{Op: OpDelete, U: u, V: v} }
	cases := []struct {
		name string
		b    MutationBatch
		n    int
		ok   bool
	}{
		{"empty", MutationBatch{}, 10, true},
		{"mixed", MutationBatch{Muts: []Mutation{ins(0, 1), del(2, 3)}}, 4, true},
		{"unchecked range", MutationBatch{Muts: []Mutation{ins(0, 999)}}, 0, true},
		{"self-loop", MutationBatch{Muts: []Mutation{ins(2, 2)}}, 10, false},
		{"negative", MutationBatch{Muts: []Mutation{ins(-1, 2)}}, 10, false},
		{"out of range", MutationBatch{Muts: []Mutation{ins(0, 10)}}, 10, false},
		{"bad op", MutationBatch{Muts: []Mutation{{Op: 9, U: 0, V: 1}}}, 10, false},
		{"duplicate pair", MutationBatch{Muts: []Mutation{ins(0, 1), del(1, 0)}}, 10, false},
	}
	for _, c := range cases {
		if err := c.b.Validate(c.n); (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func FuzzDecodeBatch(f *testing.F) {
	for _, b := range sampleBatches() {
		f.Add(AppendBatch(nil, b))
	}
	f.Add([]byte{})
	f.Add([]byte{batchMagic, 0x00, 0x02, 0x01, 0x02, 0x04, 0x02, 0x02, 0x04}) // duplicate edge
	f.Add([]byte{batchMagic, 0x00, 0x01, 0x02, 0x01, 0x01})                   // delete (0,0) self-loop
	f.Add([]byte{batchMagic, 0x00, 0x01, 0x01, 0x03, 0x04})                   // insert (-2,2) malformed id
	f.Add([]byte{batchMagic, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x00})             // big seq, empty
	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		buf := AppendBatch(nil, b)
		again, n2, err := DecodeBatch(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(buf) || !EqualBatch(b, again) {
			t.Fatalf("round trip mismatch: %v vs %v", b, again)
		}
		// Validate must classify without panicking, whatever the decoder
		// let through (delete-of-missing is a graph-level concern and is
		// out of scope here).
		_ = b.Validate(0)
		_ = b.Validate(16)
	})
}
