package msg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing for the multi-process TCP transport (docs/CLUSTER.md).
//
// A frame is [4-byte big-endian length][1-byte kind][payload]; the
// length covers the kind byte and the payload. Frame kinds are opaque
// to this package — the cluster protocol in internal/net assigns them.
// Every payload decoder in this file is strict: a payload that decodes
// successfully but leaves bytes unconsumed is an error, never silently
// accepted, so codec drift between coordinator and node processes is
// caught at the first divergent frame instead of masked.

// FrameKind discriminates frames on a cluster connection.
type FrameKind uint8

// frameHeaderLen is the fixed prefix: u32 length + kind byte.
const frameHeaderLen = 5

// MaxFramePayload is the default payload bound enforced by FrameReader
// (the graph frame of a 10⁸-edge instance fits with headroom). Readers
// can lower it; nothing may raise it, keeping a single adversarial
// frame from forcing an arbitrary allocation.
const MaxFramePayload = 1 << 31

// AppendFrame appends one framed payload to buf and returns the result.
func AppendFrame(buf []byte, kind FrameKind, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(payload)))
	buf = append(buf, byte(kind))
	return append(buf, payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, kind FrameKind, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = byte(kind)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// FrameReader reads length-prefixed frames from a stream, reusing one
// internal buffer: the payload returned by Next is valid only until the
// following call.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
	max int
}

// NewFrameReader returns a reader enforcing the given payload bound;
// max <= 0 or above MaxFramePayload means MaxFramePayload.
func NewFrameReader(r io.Reader, max int) *FrameReader {
	if max <= 0 || max > MaxFramePayload {
		max = MaxFramePayload
	}
	return &FrameReader{r: bufio.NewReaderSize(r, 1<<16), max: max}
}

// Next reads one frame and returns its kind and payload. An io.EOF at a
// frame boundary is returned as io.EOF; a stream truncated inside a
// frame is io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (FrameKind, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("msg: truncated frame header: %w", err)
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("msg: zero-length frame (missing kind byte)")
	}
	if int64(n-1) > int64(fr.max) {
		return 0, nil, fmt.Errorf("msg: frame payload of %d bytes exceeds the %d-byte bound", n-1, fr.max)
	}
	kind, err := fr.r.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("msg: truncated frame kind: %w", noEOF(err))
	}
	need := int(n - 1)
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	fr.buf = fr.buf[:need]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		return 0, nil, fmt.Errorf("msg: truncated frame payload (%d of %d bytes): %w", 0, need, noEOF(err))
	}
	return FrameKind(kind), fr.buf, nil
}

// noEOF maps a bare io.EOF inside a frame to io.ErrUnexpectedEOF so
// callers can keep treating io.EOF as "clean close at a boundary".
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// AppendMessages appends a message block — uvarint count followed by
// the encodings — to buf and returns the result.
func AppendMessages(buf []byte, ms []Message) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ms)))
	for _, m := range ms {
		buf = m.Append(buf)
	}
	return buf
}

// DecodeMessages parses a message block produced by AppendMessages.
// The whole buffer must be consumed: trailing garbage after the last
// message is an error (the length-delimited frame and its content must
// agree exactly), as is a count the remaining bytes cannot satisfy.
func DecodeMessages(buf []byte) ([]Message, error) {
	ms, rest, err := decodeMessageBlock(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("msg: %d trailing bytes after message block", len(rest))
	}
	return ms, nil
}

// decodeMessageBlock parses one message block from the front of buf and
// returns the unconsumed tail, for payloads that carry several sections.
func decodeMessageBlock(buf []byte) ([]Message, []byte, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("msg: truncated message count")
	}
	buf = buf[n:]
	// Every message encodes to at least 7 bytes (kind, four varints,
	// flags, paint count); reject implausible counts before allocating.
	if count > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("msg: implausible message count %d for %d remaining bytes", count, len(buf))
	}
	ms := make([]Message, 0, count)
	for i := uint64(0); i < count; i++ {
		m, used, err := Decode(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("msg: message %d of %d: %w", i, count, err)
		}
		ms = append(ms, m)
		buf = buf[used:]
	}
	return ms, buf, nil
}

// Wire protocol version of the cluster handshake. Bump on any change to
// the frame grammar; coordinator and node refuse mismatched peers.
const HandshakeVersion = 1

// helloMagic opens every handshake so a stray connection (or a peer
// speaking a different protocol entirely) is rejected on the first
// four bytes.
var helloMagic = [4]byte{'d', 'i', 'm', 'a'}

// Hello is the first frame a node process sends on its cluster
// connection: which shard it claims, how many shards it believes the
// run has, and the launch token proving the coordinator invited it.
type Hello struct {
	Shard  int
	Shards int
	Token  uint64
}

// Append appends the handshake encoding to buf.
func (h Hello) Append(buf []byte) []byte {
	buf = append(buf, helloMagic[:]...)
	buf = append(buf, HandshakeVersion)
	buf = binary.AppendUvarint(buf, uint64(h.Shard))
	buf = binary.AppendUvarint(buf, uint64(h.Shards))
	return binary.BigEndian.AppendUint64(buf, h.Token)
}

// DecodeHello parses a handshake, rejecting bad magic, version skew,
// and trailing garbage.
func DecodeHello(buf []byte) (Hello, error) {
	var h Hello
	if len(buf) < len(helloMagic)+1 {
		return h, fmt.Errorf("msg: truncated handshake (%d bytes)", len(buf))
	}
	if [4]byte(buf[:4]) != helloMagic {
		return h, fmt.Errorf("msg: bad handshake magic %q", buf[:4])
	}
	if v := buf[4]; v != HandshakeVersion {
		return h, fmt.Errorf("msg: handshake version %d, want %d", v, HandshakeVersion)
	}
	pos := 5
	shard, n := binary.Uvarint(buf[pos:])
	if n <= 0 || shard > 1<<31 {
		return h, fmt.Errorf("msg: bad handshake shard index")
	}
	pos += n
	shards, n := binary.Uvarint(buf[pos:])
	if n <= 0 || shards > 1<<31 {
		return h, fmt.Errorf("msg: bad handshake shard count")
	}
	pos += n
	if len(buf)-pos != 8 {
		return h, fmt.Errorf("msg: handshake token wants 8 bytes, %d remain", len(buf)-pos)
	}
	h.Shard = int(shard)
	h.Shards = int(shards)
	h.Token = binary.BigEndian.Uint64(buf[pos:])
	return h, nil
}
