package msg

import (
	"encoding/binary"
	"fmt"
)

// MutOp discriminates streaming graph mutations.
type MutOp uint8

const (
	// OpInsert adds the undirected edge (U, V) to the graph.
	OpInsert MutOp = iota + 1
	// OpDelete removes the undirected edge (U, V) from the graph.
	OpDelete
)

func (op MutOp) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Mutation is one edge insertion or deletion. Endpoints are vertex ids;
// the pair is unordered (U, V and V, U name the same edge).
type Mutation struct {
	Op   MutOp
	U, V int
}

func (m Mutation) String() string {
	sign := "+"
	if m.Op == OpDelete {
		sign = "-"
	}
	return fmt.Sprintf("%s(%d,%d)", sign, m.U, m.V)
}

// norm returns the unordered endpoint pair with U <= V.
func (m Mutation) norm() [2]int {
	if m.U > m.V {
		return [2]int{m.V, m.U}
	}
	return [2]int{m.U, m.V}
}

// MutationBatch is an ordered group of mutations applied atomically by
// the dynamic recoloring subsystem: either every mutation applies and
// the coloring is repaired once for the whole batch, or (if any mutation
// is inapplicable) none do.
type MutationBatch struct {
	// Seq orders batches within a stream; echoing it back lets clients
	// match responses to requests.
	Seq uint64
	// Muts are applied in order.
	Muts []Mutation
}

// batchMagic leads every encoded batch. The value is outside the
// message Kind range so a batch can never be mistaken for a protocol
// message (and vice versa).
const batchMagic = 0x4D // 'M'

// maxBatchMutations caps the decoded batch size; far above any sane
// batch, low enough to bound allocation on adversarial input.
const maxBatchMutations = 1 << 22

// AppendBatch appends the binary encoding of b to buf: the magic byte,
// uvarint Seq, uvarint mutation count, then one op byte plus two zig-zag
// varint endpoints per mutation.
func AppendBatch(buf []byte, b *MutationBatch) []byte {
	buf = append(buf, batchMagic)
	buf = binary.AppendUvarint(buf, b.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(b.Muts)))
	for _, m := range b.Muts {
		buf = append(buf, byte(m.Op))
		buf = binary.AppendVarint(buf, int64(m.U))
		buf = binary.AppendVarint(buf, int64(m.V))
	}
	return buf
}

// DecodeBatch parses one mutation batch from buf, returning the batch
// and the number of bytes consumed. Structural validation only; use
// MutationBatch.Validate for semantic checks.
func DecodeBatch(buf []byte) (*MutationBatch, int, error) {
	if len(buf) == 0 {
		return nil, 0, fmt.Errorf("msg: empty batch buffer")
	}
	if buf[0] != batchMagic {
		return nil, 0, fmt.Errorf("msg: bad batch magic %#x", buf[0])
	}
	pos := 1
	seq, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("msg: truncated batch sequence")
	}
	pos += n
	count, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("msg: truncated mutation count")
	}
	pos += n
	// Each mutation is at least three bytes (op + two varints), so any
	// count above a third of the rest is unsatisfiable; reject before
	// allocating.
	if count > uint64(len(buf)-pos)/3 || count > maxBatchMutations {
		return nil, 0, fmt.Errorf("msg: implausible mutation count %d for %d remaining bytes",
			count, len(buf)-pos)
	}
	b := &MutationBatch{Seq: seq}
	if count > 0 {
		b.Muts = make([]Mutation, count)
	}
	for i := range b.Muts {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("msg: truncated mutation %d", i)
		}
		op := MutOp(buf[pos])
		pos++
		if op != OpInsert && op != OpDelete {
			return nil, 0, fmt.Errorf("msg: mutation %d: unknown op %d", i, uint8(op))
		}
		u, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("msg: mutation %d: truncated endpoint", i)
		}
		pos += n
		v, n := binary.Varint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("msg: mutation %d: truncated endpoint", i)
		}
		pos += n
		b.Muts[i] = Mutation{Op: op, U: int(u), V: int(v)}
	}
	return b, pos, nil
}

// Validate checks the batch semantically against a graph with n
// vertices: ops are known, endpoints are in [0, n) and distinct, and no
// unordered endpoint pair appears twice (a batch touching the same edge
// twice is ambiguous under atomic application — the caller cannot know
// which op wins without replaying the order, so such batches are
// rejected at the boundary). n <= 0 skips the range check.
func (b *MutationBatch) Validate(n int) error {
	seen := make(map[[2]int]int, len(b.Muts))
	for i, m := range b.Muts {
		if m.Op != OpInsert && m.Op != OpDelete {
			return fmt.Errorf("mutation %d: unknown op %d", i, uint8(m.Op))
		}
		if m.U == m.V {
			return fmt.Errorf("mutation %d: self-loop (%d,%d)", i, m.U, m.V)
		}
		if m.U < 0 || m.V < 0 || (n > 0 && (m.U >= n || m.V >= n)) {
			return fmt.Errorf("mutation %d: endpoints (%d,%d) out of range [0,%d)", i, m.U, m.V, n)
		}
		if j, dup := seen[m.norm()]; dup {
			return fmt.Errorf("mutations %d and %d both touch edge (%d,%d)", j, i, m.norm()[0], m.norm()[1])
		}
		seen[m.norm()] = i
	}
	return nil
}

// EqualBatch reports whether two batches are identical.
func EqualBatch(a, b *MutationBatch) bool {
	if a.Seq != b.Seq || len(a.Muts) != len(b.Muts) {
		return false
	}
	for i := range a.Muts {
		if a.Muts[i] != b.Muts[i] {
			return false
		}
	}
	return true
}
