package msg

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x00},
		AppendMessages(nil, sample()),
		bytes.Repeat([]byte{0xab}, 70_000), // spans the bufio buffer
	}
	var stream []byte
	for i, p := range payloads {
		stream = AppendFrame(stream, FrameKind(i+1), p)
	}
	// WriteFrame must produce the identical byte stream.
	var w bytes.Buffer
	for i, p := range payloads {
		if err := WriteFrame(&w, FrameKind(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(w.Bytes(), stream) {
		t.Fatal("WriteFrame and AppendFrame streams differ")
	}
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	for i, p := range payloads {
		kind, got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != FrameKind(i+1) {
			t.Fatalf("frame %d: kind %d, want %d", i, kind, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestFrameReaderErrors(t *testing.T) {
	whole := AppendFrame(nil, 7, []byte("payload"))
	cases := []struct {
		name   string
		stream []byte
		want   string // substring of the error; "" means io.ErrUnexpectedEOF
	}{
		{"truncated header", whole[:3], ""},
		{"missing kind", whole[:4], ""},
		{"truncated payload", whole[:len(whole)-2], ""},
		{"zero length", []byte{0, 0, 0, 0}, "zero-length"},
		{"oversized", AppendFrame(nil, 1, bytes.Repeat([]byte{1}, 64)), "exceeds"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fr := NewFrameReader(bytes.NewReader(c.stream), 32)
			_, _, err := fr.Next()
			if err == nil {
				t.Fatal("malformed stream accepted")
			}
			if c.want == "" {
				if !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
				}
			} else if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want %q", err, c.want)
			}
		})
	}
}

// TestFrameReaderReusesBuffer pins the documented aliasing rule: the
// payload returned by Next is only valid until the following call.
func TestFrameReaderReusesBuffer(t *testing.T) {
	stream := AppendFrame(nil, 1, []byte{0xaa, 0xbb})
	stream = AppendFrame(stream, 2, []byte{0xcc, 0xdd})
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	_, first, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if first[0] != 0xcc {
		t.Fatal("payload buffer was not reused; the aliasing contract changed silently")
	}
}

func TestDecodeMessagesRoundTrip(t *testing.T) {
	for _, ms := range [][]Message{nil, sample()[:1], sample()} {
		buf := AppendMessages(nil, ms)
		got, err := DecodeMessages(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ms) {
			t.Fatalf("decoded %d messages, want %d", len(got), len(ms))
		}
		for i := range ms {
			if !Equal(ms[i], got[i]) {
				t.Fatalf("message %d: %v != %v", i, got[i], ms[i])
			}
		}
	}
}

func TestDecodeMessagesRejectsTrailingGarbage(t *testing.T) {
	buf := AppendMessages(nil, sample())
	for _, tail := range [][]byte{{0x00}, {0xff, 0xff}} {
		if _, err := DecodeMessages(append(append([]byte(nil), buf...), tail...)); err == nil {
			t.Fatalf("trailing %x accepted", tail)
		} else if !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("trailing %x: error %v does not name the trailing bytes", tail, err)
		}
	}
	// A count larger than the remaining bytes could satisfy is rejected
	// before allocation.
	if _, err := DecodeMessages([]byte{0xff, 0xff, 0x03}); err == nil {
		t.Fatal("implausible count accepted")
	}
	if _, err := DecodeMessages(nil); err == nil {
		t.Fatal("empty buffer accepted (count is mandatory)")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{
		{},
		{Shard: 3, Shards: 7, Token: 0xdeadbeefcafe},
		{Shard: 1 << 20, Shards: 1 << 20, Token: ^uint64(0)},
	} {
		got, err := DecodeHello(h.Append(nil))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: %+v != %+v", got, h)
		}
	}
}

func TestDecodeHelloErrors(t *testing.T) {
	good := Hello{Shard: 2, Shards: 4, Token: 99}.Append(nil)
	bad := map[string][]byte{
		"empty":            {},
		"short":            good[:4],
		"bad magic":        append([]byte("mima"), good[4:]...),
		"version skew":     append(append([]byte{}, good[:4]...), append([]byte{HandshakeVersion + 1}, good[5:]...)...),
		"truncated token":  good[:len(good)-1],
		"trailing garbage": append(append([]byte{}, good...), 0x00),
	}
	for name, buf := range bad {
		if _, err := DecodeHello(buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzFrameReader feeds arbitrary streams to the framer: it must never
// panic, must consume any stream it accepts frame-by-frame, and every
// accepted frame must re-encode to the bytes it was cut from.
func FuzzFrameReader(f *testing.F) {
	var stream []byte
	for _, m := range sample() {
		stream = AppendFrame(stream, 4, AppendMessages(nil, []Message{m}))
	}
	f.Add(stream)
	f.Add(AppendFrame(nil, 1, nil))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add(Hello{Shard: 1, Shards: 2, Token: 3}.Append(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 1<<20)
		for {
			kind, payload, err := fr.Next()
			if err != nil {
				if err == io.EOF && len(data) == 0 {
					return
				}
				return
			}
			again := AppendFrame(nil, kind, payload)
			if len(again) != frameHeaderLen+len(payload) {
				t.Fatalf("re-encoded frame is %d bytes, want %d", len(again), frameHeaderLen+len(payload))
			}
			if !bytes.HasPrefix(data, again) {
				t.Fatalf("accepted frame does not re-encode to its input prefix")
			}
			data = data[len(again):]
		}
	})
}

// FuzzDecodeMessages seeds the block decoder with the same message
// corpus the single-message fuzzer uses: any block it accepts must
// round-trip exactly and account for every input byte.
func FuzzDecodeMessages(f *testing.F) {
	f.Add(AppendMessages(nil, sample()))
	for _, m := range sample() {
		f.Add(AppendMessages(nil, []Message{m}))
	}
	f.Add(AppendMessages(nil, nil))
	f.Add([]byte{0xff, 0xff, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := DecodeMessages(data)
		if err != nil {
			return
		}
		// Re-encoding is canonical; decoding may accept padded varints,
		// so the round-trip check is semantic, as in FuzzDecode.
		again, err := DecodeMessages(AppendMessages(nil, ms))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ms) {
			t.Fatalf("round trip count %d, want %d", len(again), len(ms))
		}
		for i := range ms {
			if !Equal(ms[i], again[i]) {
				t.Fatalf("message %d: %v != %v", i, again[i], ms[i])
			}
		}
	})
}

// FuzzDecodeHello: the handshake decoder must reject everything that is
// not exactly a current-version hello, and round-trip what it accepts.
func FuzzDecodeHello(f *testing.F) {
	f.Add(Hello{}.Append(nil))
	f.Add(Hello{Shard: 9, Shards: 16, Token: 0x0102030405060708}.Append(nil))
	f.Add([]byte("dima"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err != nil {
			return
		}
		again, err := DecodeHello(h.Append(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != h {
			t.Fatalf("round trip: %+v != %+v", again, h)
		}
	})
}
