package stats

import (
	"math"
	"sort"
	"testing"

	"dima/internal/rng"
)

// p2Distributions generates deterministic sample streams with shapes a
// latency distribution might take: uniform, heavy-tailed (exp-like via
// inverse transform), and bimodal (fast path + slow path).
func p2Distributions(n int) map[string][]float64 {
	out := make(map[string][]float64)

	r := rng.New(41)
	u := make([]float64, n)
	for i := range u {
		u[i] = 100 * r.Float64()
	}
	out["uniform"] = u

	r = rng.New(43)
	ex := make([]float64, n)
	for i := range ex {
		ex[i] = -10 * math.Log(1-r.Float64()+1e-12)
	}
	out["exponential"] = ex

	r = rng.New(47)
	bi := make([]float64, n)
	for i := range bi {
		if r.Float64() < 0.8 {
			bi[i] = 1 + r.Float64() // fast path ~1-2ms
		} else {
			bi[i] = 50 + 20*r.Float64() // slow path ~50-70ms
		}
	}
	out["bimodal"] = bi
	return out
}

// TestP2CrossChecksExactPercentile: the fixed-memory estimate must land
// inside a small rank band around the exact percentile — the estimator
// is allowed to be off by a little probability mass, never by a
// misplaced mode.
func TestP2CrossChecksExactPercentile(t *testing.T) {
	const n = 20000
	bands := map[float64]float64{0.5: 0.02, 0.95: 0.015, 0.99: 0.008}
	for name, xs := range p2Distributions(n) {
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for p, band := range bands {
			est := NewP2Quantile(p)
			for _, x := range xs {
				est.Add(x)
			}
			got := est.Value()
			lo := Percentile(sorted, p-band)
			hi := Percentile(sorted, p+band)
			if got < lo || got > hi {
				t.Errorf("%s p%.0f: estimate %.4f outside exact band [%.4f, %.4f] (exact %.4f)",
					name, p*100, got, lo, hi, Percentile(sorted, p))
			}
		}
	}
}

// Below five samples the estimator is exact by construction.
func TestP2SmallSamplesExact(t *testing.T) {
	xs := []float64{9, 1, 7, 3}
	for k := 1; k <= len(xs); k++ {
		est := NewP2Quantile(0.5)
		for _, x := range xs[:k] {
			est.Add(x)
		}
		sorted := append([]float64(nil), xs[:k]...)
		sort.Float64s(sorted)
		want := Percentile(sorted, 0.5)
		if got := est.Value(); got != want {
			t.Fatalf("n=%d: Value %v, want exact %v", k, got, want)
		}
		if est.N() != k {
			t.Fatalf("n=%d: N() = %d", k, est.N())
		}
	}
}

func TestP2EmptyAndExtremes(t *testing.T) {
	est := NewP2Quantile(0.99)
	if !math.IsNaN(est.Value()) || !math.IsNaN(est.Min()) || !math.IsNaN(est.Max()) {
		t.Fatal("empty estimator must yield NaN")
	}
	r := rng.New(53)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 1000; i++ {
		x := r.Float64()*200 - 100
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
		est.Add(x)
	}
	if est.Min() != lo || est.Max() != hi {
		t.Fatalf("extreme markers %v/%v, want exact %v/%v", est.Min(), est.Max(), lo, hi)
	}
	if v := est.Value(); v < lo || v > hi {
		t.Fatalf("estimate %v outside the observed range", v)
	}
}

// A constant stream must estimate the constant exactly at any p.
func TestP2ConstantStream(t *testing.T) {
	for _, p := range []float64{0.5, 0.95, 0.99} {
		est := NewP2Quantile(p)
		for i := 0; i < 100; i++ {
			est.Add(7.25)
		}
		if got := est.Value(); got != 7.25 {
			t.Fatalf("p%v over a constant stream: %v", p, got)
		}
	}
}

func TestP2RejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}
