package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates one quantile of a stream in O(1) memory with the
// P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// minimum, the target quantile, the quantiles halfway to each end, and
// the maximum, adjusted after every observation by a piecewise-
// parabolic interpolation. dimaload uses it for p50/p95/p99 so a long
// load run never retains its samples; Percentile remains the exact
// reference and the two are cross-checked in quantile_test.go.
//
// The zero value is not usable; construct with NewP2Quantile. Not safe
// for concurrent use.
type P2Quantile struct {
	p   float64
	n   int        // observations seen
	q   [5]float64 // marker heights
	pos [5]float64 // actual marker positions (1-based ranks)
	des [5]float64 // desired marker positions
	inc [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for the p-th quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: P2Quantile wants 0 < p < 1, got %v", p))
	}
	return &P2Quantile{p: p}
}

// P returns the target quantile.
func (e *P2Quantile) P() float64 { return e.p }

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.n }

// Add feeds one observation.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			p := e.p
			e.pos = [5]float64{1, 2, 3, 4, 5}
			e.des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}

	// Locate the cell k with q[k] <= x < q[k+1], extending the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.des {
		e.des[i] += e.inc[i]
	}
	e.n++

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.des[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := math.Copysign(1, d)
			qs := e.parabolic(i, s)
			if !(e.q[i-1] < qs && qs < e.q[i+1]) {
				qs = e.linear(i, s)
			}
			e.q[i] = qs
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic marker update.
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback update when the parabola overshoots a
// neighboring marker.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current estimate: exact (via Percentile over the
// buffered observations) for fewer than five samples, the P² center
// marker afterwards. An empty estimator yields NaN, matching
// Percentile's empty-sample convention.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		buf := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(buf)
		return Percentile(buf, e.p)
	}
	return e.q[2]
}

// Min and Max return the extreme markers, which are exact.
func (e *P2Quantile) Min() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		m := e.q[0]
		for _, v := range e.q[1:e.n] {
			m = math.Min(m, v)
		}
		return m
	}
	return e.q[0]
}

func (e *P2Quantile) Max() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		m := e.q[0]
		for _, v := range e.q[1:e.n] {
			m = math.Max(m, v)
		}
		return m
	}
	return e.q[4]
}
