// Package stats provides the statistical machinery for the experiment
// harness: online moments (Welford), summaries with percentiles,
// histograms, ordinary least-squares fits (for the rounds-versus-Δ
// relationships of Figures 3–6), and plain-text table/CSV rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean, and variance in one pass using
// Welford's algorithm. The zero value is an empty accumulator.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 if empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 if empty).
func (o *Online) Max() float64 { return o.max }

// Summary is a complete one-variable description of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P25, Median, P75 float64
}

// Summarize computes a Summary of xs (which it does not modify).
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	s.Mean, s.Std, s.Min, s.Max = o.Mean(), o.Std(), o.Min(), o.Max()
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P25 = Percentile(sorted, 0.25)
	s.Median = Percentile(sorted, 0.5)
	s.P75 = Percentile(sorted, 0.75)
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 1) of an ascending
// sorted slice using linear interpolation. An empty sample has no
// percentiles: it yields NaN rather than panicking, so a sweep whose
// repetitions all aborted summarizes to NaN columns instead of crashing
// mid-report.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Fit is an ordinary least-squares line y = Intercept + Slope*x.
type Fit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	N  int
}

// LinearFit fits y against x by least squares. It returns an error for
// fewer than two points or zero variance in x.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, got %d", n)
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: x has zero variance")
	}
	f := Fit{N: n}
	f.Slope = sxy / sxx
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f, nil
}

// Histogram counts observations into unit-width integer bins
// [lo, lo+1), ...; values outside [lo, hi] are clamped to the end bins.
type Histogram struct {
	Lo     int
	Counts []int
}

// NewHistogram builds a histogram over the inclusive integer range
// [lo, hi]. It panics if hi < lo.
func NewHistogram(lo, hi int) *Histogram {
	if hi < lo {
		panic("stats: histogram range inverted")
	}
	return &Histogram{Lo: lo, Counts: make([]int, hi-lo+1)}
}

// Add counts one integer observation, clamping to the range.
func (h *Histogram) Add(x int) {
	i := x - h.Lo
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the bin value with the highest count (smallest on ties).
func (h *Histogram) Mode() int {
	best, bestCount := h.Lo, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = h.Lo+i, c
		}
	}
	return best
}
