package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Var() != 0 {
		t.Fatal("zero Online not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEq(o.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", o.Mean())
	}
	// Population variance of this classic sample is 4; unbiased = 32/7.
	if !almostEq(o.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("Var = %v", o.Var())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineSingle(t *testing.T) {
	var o Online
	o.Add(3.5)
	if o.Var() != 0 || o.Std() != 0 || o.Min() != 3.5 || o.Max() != 3.5 {
		t.Fatal("single observation stats wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.P25 != 2 || s.P75 != 4 {
		t.Fatalf("%+v", s)
	}
	if s.Min != 1 || s.Max != 5 || !almostEq(s.Mean, 3, 1e-12) {
		t.Fatalf("%+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary wrong")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated input")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Percentile(sorted, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(sorted, 1); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(sorted, 0.5); !almostEq(got, 25, 1e-12) {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile([]float64{7}, 0.5); got != 7 {
		t.Fatalf("singleton p50 = %v", got)
	}
}

func TestPercentileEmptyIsNaN(t *testing.T) {
	// An empty sample has no percentiles; a sweep whose repetitions all
	// aborted must summarize to NaN columns instead of crashing.
	for _, p := range []float64{0, 0.5, 1} {
		if got := Percentile(nil, p); !math.IsNaN(got) {
			t.Fatalf("Percentile(nil, %g) = %v, want NaN", p, got)
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 2, 1e-12) || !almostEq(f.Intercept, 3, 1e-12) {
		t.Fatalf("fit %+v", f)
	}
	if !almostEq(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{0.1, 1.9, 4.2, 5.8, 8.1, 9.9} // ~2x
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope < 1.8 || f.Slope > 2.2 {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("accepted single point")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("accepted zero x-variance")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	f, err := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope != 0 || f.R2 != 1 {
		t.Fatalf("constant-y fit %+v", f)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 4)
	for _, x := range []int{0, 1, 1, 2, 7, -3} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and clamped -3
		t.Fatalf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 1 { // clamped 7
		t.Fatalf("bin 4 = %d", h.Counts[4])
	}
	if h.Mode() != 0 && h.Mode() != 1 {
		t.Fatalf("Mode = %d", h.Mode())
	}
	// Ties resolve to the smallest value.
	if h.Mode() != 0 {
		t.Fatalf("tie mode = %d, want 0", h.Mode())
	}
}

func TestHistogramPanicsInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(5, 4)
}

func TestQuickOnlineMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if len(xs) < 2 {
			return true
		}
		var o Online
		var sum float64
		for _, x := range xs {
			o.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		direct := ss / float64(len(xs)-1)
		return almostEq(o.Mean(), mean, 1e-6*(1+math.Abs(mean))) &&
			almostEq(o.Var(), direct, 1e-6*(1+direct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "delta", "rounds")
	tb.AddRow("er-200", 10, 21.5)
	tb.AddRow("er-400", 12.25, 25.0)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "rounds") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "21.5") {
		t.Fatalf("row: %q", lines[2])
	}
	// Float trimming: 25.0 renders as 25.
	if !strings.Contains(lines[3], "25") || strings.Contains(lines[3], "25.00") {
		t.Fatalf("float trim: %q", lines[3])
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")
	if !strings.Contains(tb.String(), "only") {
		t.Fatal("short row lost")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(`say "hi"`, "x,y")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"say \"\"hi\"\"\",\"x,y\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}
