package stats

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table renders aligned plain-text tables — the output format of the
// dimabench experiment reports — and can emit the same rows as CSV.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are formatted with %v. Rows shorter or
// longer than the header are padded or truncated to fit.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			switch v := cells[i].(type) {
			case float64:
				row[i] = trimFloat(v)
			default:
				row[i] = fmt.Sprintf("%v", v)
			}
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Write renders the table with aligned columns to w.
func (t *Table) Write(w io.Writer) error {
	width := utf8.RuneCountInString
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = width(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if width(c) > widths[i] {
				widths[i] = width(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-width(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the table as RFC-4180-ish CSV (quoting cells that
// contain commas, quotes, or newlines).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the aligned table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Write(&b); err != nil {
		return fmt.Sprintf("table error: %v", err)
	}
	return b.String()
}
