// Package gen generates the graph families used in the paper's
// evaluation (§IV): Erdős–Rényi random graphs, scale-free graphs with a
// tunable preferential-attachment weighting, and Watts–Strogatz
// small-world graphs — plus deterministic and auxiliary families used by
// tests, examples, and ablations.
//
// The paper generated its inputs with the iGraph Ruby bindings; these
// native generators are the documented substitution (see DESIGN.md):
// only the degree distribution and topology matter to the algorithms.
//
// All generators are deterministic functions of an *rng.Rand stream.
package gen

import (
	"fmt"
	"math"

	"dima/internal/graph"
	"dima/internal/rng"
)

// ErdosRenyiGNP returns a G(n, p) random graph: every unordered pair is
// an edge independently with probability p. Uses geometric skip-sampling,
// so the cost is proportional to the number of edges generated.
func ErdosRenyiGNP(r *rng.Rand, n int, p float64) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: negative n %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: probability %v out of [0,1]", p)
	}
	g := graph.New(n)
	if p == 0 || n < 2 {
		return g, nil
	}
	total := n * (n - 1) / 2
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.MustAddEdge(u, v)
			}
		}
		return g, nil
	}
	// Walk the linearized pair index with geometric jumps.
	idx := -1
	for {
		idx += r.Geometric(p)
		if idx >= total {
			return g, nil
		}
		u, v := pairFromIndex(idx, n)
		g.MustAddEdge(u, v)
	}
}

// pairFromIndex maps a linear index in [0, n(n-1)/2) to the unordered
// pair (u, v), u < v, in row-major order of the upper triangle.
func pairFromIndex(idx, n int) (int, int) {
	// Row u contributes n-1-u pairs. Solve for u by accumulation; the
	// closed form with floats risks off-by-one at large n, so use the
	// exact integer inversion.
	u := 0
	rem := idx
	rowLen := n - 1
	for rem >= rowLen {
		rem -= rowLen
		u++
		rowLen--
	}
	return u, u + 1 + rem
}

// ErdosRenyiGNM returns a uniform random graph with exactly m edges.
func ErdosRenyiGNM(r *rng.Rand, n, m int) (*graph.Graph, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("gen: negative parameter n=%d m=%d", n, m)
	}
	total := n * (n - 1) / 2
	if m > total {
		return nil, fmt.Errorf("gen: m=%d exceeds max %d for n=%d", m, total, n)
	}
	g := graph.New(n)
	if m == 0 {
		return g, nil
	}
	if m > total/2 {
		// Dense case: sample which pairs to EXCLUDE via a partial
		// Fisher–Yates over the pair indices.
		return denseGNM(r, n, m, total)
	}
	for g.M() < m {
		idx := r.Intn(total)
		u, v := pairFromIndex(idx, n)
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g, nil
}

func denseGNM(r *rng.Rand, n, m, total int) (*graph.Graph, error) {
	excluded := make(map[int]bool, total-m)
	for len(excluded) < total-m {
		excluded[r.Intn(total)] = true
	}
	g := graph.New(n)
	for idx := 0; idx < total; idx++ {
		if !excluded[idx] {
			u, v := pairFromIndex(idx, n)
			g.MustAddEdge(u, v)
		}
	}
	return g, nil
}

// ErdosRenyiAvgDegree returns a G(n, p) graph with p chosen so the
// expected average degree is avgDeg — the parameterization used in the
// paper's experiments (n ∈ {200,400}, average degree ∈ {4,8,16}).
func ErdosRenyiAvgDegree(r *rng.Rand, n int, avgDeg float64) (*graph.Graph, error) {
	if n < 2 {
		return graph.New(max(n, 0)), nil
	}
	if avgDeg < 0 || avgDeg > float64(n-1) {
		return nil, fmt.Errorf("gen: average degree %v out of [0,%d]", avgDeg, n-1)
	}
	return ErdosRenyiGNP(r, n, avgDeg/float64(n-1))
}

// BarabasiAlbert returns a scale-free graph on n vertices grown by
// preferential attachment: each new vertex attaches k edges to existing
// vertices chosen with probability proportional to degree^power.
// power = 1 is classic Barabási–Albert; larger powers create the
// "increasingly disparate" graphs of §IV-B (heavier hubs, larger Δ),
// power = 0 degenerates to uniform attachment.
func BarabasiAlbert(r *rng.Rand, n, k int, power float64) (*graph.Graph, error) {
	if n < 0 || k < 1 {
		return nil, fmt.Errorf("gen: invalid scale-free parameters n=%d k=%d", n, k)
	}
	if power < 0 {
		return nil, fmt.Errorf("gen: negative attachment power %v", power)
	}
	g := graph.New(n)
	if n == 0 {
		return g, nil
	}
	seed := k + 1
	if seed > n {
		seed = n
	}
	// Seed clique so early attachments have targets with degree > 0.
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.MustAddEdge(u, v)
		}
	}
	weights := make([]float64, n)
	var totalW float64
	recompute := func() {
		totalW = 0
		for u := 0; u < n; u++ {
			if d := g.Degree(u); d > 0 {
				weights[u] = math.Pow(float64(d), power)
			} else {
				weights[u] = 0
			}
			totalW += weights[u]
		}
	}
	recompute()
	for u := seed; u < n; u++ {
		attached := make(map[int]bool, k)
		tries := 0
		for len(attached) < k && len(attached) < u {
			// Roulette-wheel selection over current weights.
			x := r.Float64() * totalW
			target := -1
			for v := 0; v < u; v++ {
				x -= weights[v]
				if x < 0 {
					target = v
					break
				}
			}
			if target < 0 {
				target = u - 1 // float round-off: take the last candidate
			}
			tries++
			if tries > 50*k && len(attached) > 0 {
				break // pathological weight concentration; accept fewer edges
			}
			if attached[target] {
				continue
			}
			attached[target] = true
			g.MustAddEdge(u, target)
		}
		recompute()
	}
	return g, nil
}

// WattsStrogatz returns a small-world graph on n vertices: a ring lattice
// where each vertex connects to its k nearest neighbors on each side,
// with each lattice edge rewired with probability beta. §IV-C uses
// sparse (small k) and dense (large k) variants at n ∈ {16, 64, 256}.
func WattsStrogatz(r *rng.Rand, n, k int, beta float64) (*graph.Graph, error) {
	if n < 0 || k < 0 {
		return nil, fmt.Errorf("gen: invalid small-world parameters n=%d k=%d", n, k)
	}
	if 2*k >= n && n > 0 {
		return nil, fmt.Errorf("gen: lattice degree 2k=%d must be < n=%d", 2*k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: rewire probability %v out of [0,1]", beta)
	}
	g := graph.New(n)
	if n == 0 || k == 0 {
		return g, nil
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				// Rewire: keep u, choose a uniform new endpoint avoiding
				// self-loops and duplicates. Give up after bounded tries
				// (dense lattices can saturate a vertex) and keep the
				// lattice edge instead.
				rewired := false
				for try := 0; try < 4*n; try++ {
					w := r.Intn(n)
					if w != u && !g.HasEdge(u, w) {
						g.MustAddEdge(u, w)
						rewired = true
						break
					}
				}
				if !rewired && !g.HasEdge(u, v) {
					g.MustAddEdge(u, v)
				}
			} else if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g, nil
}

// RandomRegular returns a (near-)uniform random d-regular graph on n
// vertices via the configuration (pairing) model with restarts on
// collisions. n*d must be even and d < n.
func RandomRegular(r *rng.Rand, n, d int) (*graph.Graph, error) {
	if n < 0 || d < 0 || d >= n && n > 0 {
		return nil, fmt.Errorf("gen: invalid regular parameters n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d = %d must be even", n*d)
	}
	if d == 0 || n == 0 {
		return graph.New(n), nil
	}
	const maxRestarts = 20000
	for restart := 0; restart < maxRestarts; restart++ {
		g, ok := tryPairing(r, n, d)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: pairing model failed after %d restarts (n=%d d=%d)", maxRestarts, n, d)
}

func tryPairing(r *rng.Rand, n, d int) (*graph.Graph, bool) {
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for j := 0; j < d; j++ {
			stubs = append(stubs, u)
		}
	}
	r.ShuffleInts(stubs)
	g := graph.New(n)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			return nil, false
		}
		g.MustAddEdge(u, v)
	}
	return g, true
}

// ConfigurationModel returns a random simple graph whose degree
// sequence matches degrees exactly, via the pairing model with restarts
// (like RandomRegular, of which this is the general form). The degree
// sum must be even, each degree must be < n, and sufficiently skewed
// sequences may be rejected as unrealizable after repeated restarts.
func ConfigurationModel(r *rng.Rand, degrees []int) (*graph.Graph, error) {
	n := len(degrees)
	sum := 0
	for v, d := range degrees {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("gen: degree %d at vertex %d out of range [0,%d)", d, v, n)
		}
		sum += d
	}
	if sum%2 != 0 {
		return nil, fmt.Errorf("gen: degree sum %d must be even", sum)
	}
	if sum == 0 {
		return graph.New(n), nil
	}
	const maxRestarts = 20000
	stubs := make([]int, 0, sum)
	for restart := 0; restart < maxRestarts; restart++ {
		stubs = stubs[:0]
		for v, d := range degrees {
			for j := 0; j < d; j++ {
				stubs = append(stubs, v)
			}
		}
		r.ShuffleInts(stubs)
		g := graph.New(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.MustAddEdge(u, v)
		}
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: configuration model failed after %d restarts (sequence may be unrealizable)", maxRestarts)
}

// PowerLawDegrees samples n degrees from a truncated discrete power law
// P(d) proportional to d^(-gamma) over [minDeg, maxDeg], adjusting the
// last vertex by one if needed to make the sum even (a standard
// configuration-model input). gamma must be > 1.
func PowerLawDegrees(r *rng.Rand, n, minDeg, maxDeg int, gamma float64) ([]int, error) {
	if n < 0 || minDeg < 1 || maxDeg < minDeg || (maxDeg >= n && n > 0) {
		return nil, fmt.Errorf("gen: invalid power-law parameters n=%d range=[%d,%d]", n, minDeg, maxDeg)
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("gen: power-law exponent %v must be > 1", gamma)
	}
	weights := make([]float64, maxDeg-minDeg+1)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(minDeg+i), -gamma)
		total += weights[i]
	}
	degrees := make([]int, n)
	sum := 0
	for v := range degrees {
		x := r.Float64() * total
		d := maxDeg
		for i, w := range weights {
			x -= w
			if x < 0 {
				d = minDeg + i
				break
			}
		}
		degrees[v] = d
		sum += d
	}
	if sum%2 != 0 {
		if degrees[n-1] < maxDeg {
			degrees[n-1]++
		} else {
			degrees[n-1]--
		}
	}
	return degrees, nil
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// Cycle returns the cycle C_n (n >= 3); smaller n yields a path/empty.
func Cycle(n int) *graph.Graph {
	g := Path(n)
	if n >= 3 {
		g.MustAddEdge(n-1, 0)
	}
	return g
}

// Path returns the path P_n on n vertices.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u+1 < n; u++ {
		g.MustAddEdge(u, u+1)
	}
	return g
}

// Star returns the star K_{1,n-1} centered at vertex 0.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v)
	}
	return g
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	if rows < 0 || cols < 0 {
		panic("gen: negative grid dimensions")
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube Q_dim (2^dim vertices).
func Hypercube(dim int) *graph.Graph {
	if dim < 0 || dim > 30 {
		panic("gen: hypercube dimension out of range")
	}
	n := 1 << dim
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// RandomTree returns a uniform random labeled tree on n vertices via a
// random Prüfer sequence.
func RandomTree(r *rng.Rand, n int) *graph.Graph {
	g := graph.New(n)
	if n < 2 {
		return g
	}
	if n == 2 {
		g.MustAddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for i := range prufer {
		prufer[i] = r.Intn(n)
		deg[prufer[i]]++
	}
	// Decode with a simple leaf scan (O(n^2), fine at simulator scales).
	used := make([]bool, n)
	for _, p := range prufer {
		leaf := -1
		for v := 0; v < n; v++ {
			if deg[v] == 1 && !used[v] {
				leaf = v
				break
			}
		}
		g.MustAddEdge(leaf, p)
		used[leaf] = true
		deg[leaf]--
		deg[p]--
	}
	// Connect the two remaining degree-1 vertices.
	first := -1
	for v := 0; v < n; v++ {
		if deg[v] == 1 && !used[v] {
			if first < 0 {
				first = v
			} else {
				g.MustAddEdge(first, v)
				break
			}
		}
	}
	return g
}

// RandomBipartite returns a random bipartite graph with parts of size
// left and right, each cross pair an edge with probability p.
func RandomBipartite(r *rng.Rand, left, right int, p float64) (*graph.Graph, error) {
	if left < 0 || right < 0 {
		return nil, fmt.Errorf("gen: negative part sizes %d,%d", left, right)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: probability %v out of [0,1]", p)
	}
	g := graph.New(left + right)
	for u := 0; u < left; u++ {
		for v := 0; v < right; v++ {
			if r.Float64() < p {
				g.MustAddEdge(u, left+v)
			}
		}
	}
	return g, nil
}

// RandomGeometric returns a random geometric graph (unit-disk graph):
// n points uniform in the unit square, edges between pairs within
// distance radius. UDGs model wireless interference topologies — the
// application domain of strong edge coloring (Barrett et al.; Kanj et
// al., both cited by the paper).
func RandomGeometric(r *rng.Rand, n int, radius float64) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: negative n %d", n)
	}
	if radius < 0 {
		return nil, fmt.Errorf("gen: negative radius %v", radius)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	g := graph.New(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
