package gen

import (
	"testing"

	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/rng"
)

// applyBatch applies a batch directly to the graph, failing the test on
// any inapplicable mutation — the applicability contract every source
// promises.
func applyBatch(t *testing.T, g *graph.Graph, b *msg.MutationBatch) {
	t.Helper()
	for i, m := range b.Muts {
		var err error
		switch m.Op {
		case msg.OpInsert:
			_, err = g.AddEdge(m.U, m.V)
		case msg.OpDelete:
			_, err = g.RemoveEdge(m.U, m.V)
		default:
			t.Fatalf("mutation %d: bad op %v", i, m.Op)
		}
		if err != nil {
			t.Fatalf("batch %d mutation %d (%v): %v", b.Seq, i, m, err)
		}
	}
}

// drive runs a source for batches rounds against a fresh copy of g,
// returning the mutated graph and the full mutation history.
func drive(t *testing.T, src MutationSource, g *graph.Graph, batches, size int) (*graph.Graph, []msg.Mutation) {
	t.Helper()
	g = g.Clone()
	var hist []msg.Mutation
	for i := 0; i < batches; i++ {
		b := src.NextBatch(g, size)
		if b.Seq != uint64(i) {
			t.Fatalf("batch %d carries seq %d", i, b.Seq)
		}
		applyBatch(t, g, b)
		hist = append(hist, b.Muts...)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, hist
}

func seedGraph(t *testing.T, n, m int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := ErdosRenyiGNM(rng.New(seed), n, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSlidingWindowApplicableAndHoley(t *testing.T) {
	g := seedGraph(t, 200, 600, 7)
	src, err := NewSlidingWindow(rng.New(11), 300, 800)
	if err != nil {
		t.Fatal(err)
	}
	mutated, hist := drive(t, src, g, 120, 20)
	if len(hist) == 0 {
		t.Fatal("window source emitted nothing")
	}
	dels := 0
	for _, m := range hist {
		if m.Op == msg.OpDelete {
			dels++
		}
	}
	if dels == 0 {
		t.Fatal("oscillating window never expired an edge")
	}
	// Delete-heavy phases must leave id holes — that is the workload's
	// whole point.
	if mutated.EdgeIDBound() == mutated.M() {
		t.Fatalf("no holes after %d mutations (%d dels)", len(hist), dels)
	}
	// The window keeps the live count bounded.
	if mutated.M() > 800+20 {
		t.Fatalf("live edges %d far above window max 800", mutated.M())
	}
}

func TestFlashCrowdSpikesAndDecays(t *testing.T) {
	g := seedGraph(t, 150, 300, 3)
	base := g.MaxDegree()
	src, err := NewFlashCrowd(rng.New(5), 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	work := g.Clone()
	peak := base
	for i := 0; i < 10; i++ { // exactly one cycle
		applyBatch(t, work, src.NextBatch(work, 25))
		if d := work.MaxDegree(); d > peak {
			peak = d
		}
	}
	if peak <= base {
		t.Fatalf("ramp never raised Δ above baseline %d", base)
	}
	// After the decay phase the hotspot is dismantled: Δ back near
	// baseline (background churn may wiggle it slightly).
	if d := work.MaxDegree(); d > base+3 {
		t.Fatalf("post-decay Δ %d still near peak %d (baseline %d)", d, peak, base)
	}
	if err := work.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPreferentialGrowthBiasesHubs(t *testing.T) {
	g := seedGraph(t, 300, 400, 9)
	src := NewPreferentialGrowth(rng.New(13))
	mutated, hist := drive(t, src, g, 80, 25)
	for _, m := range hist {
		if m.Op != msg.OpInsert {
			t.Fatal("growth source emitted a deletion")
		}
	}
	if mutated.M() <= g.M() {
		t.Fatal("growth source did not grow the graph")
	}
	// Degree-proportional attachment concentrates: the mutated max
	// degree should noticeably outrun a uniform baseline's.
	added := mutated.M() - g.M()
	uniform := g.Clone()
	r := rng.New(14)
	for uniform.M() < g.M()+added {
		u, v := r.Intn(g.N()), r.Intn(g.N())
		if u != v && !uniform.HasEdge(u, v) {
			uniform.MustAddEdge(u, v)
		}
	}
	if mutated.MaxDegree() <= uniform.MaxDegree() {
		t.Logf("warning: preferential Δ %d not above uniform Δ %d (can happen, rarely)",
			mutated.MaxDegree(), uniform.MaxDegree())
	}
}

func TestTemporalSourcesDeterministic(t *testing.T) {
	build := func() []MutationSource {
		sw, err := NewSlidingWindow(rng.New(21), 200, 500)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := NewFlashCrowd(rng.New(22), 3, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		return []MutationSource{sw, fc, NewPreferentialGrowth(rng.New(23))}
	}
	a, b := build(), build()
	for si := range a {
		g := seedGraph(t, 120, 350, 31)
		_, h1 := drive(t, a[si], g, 50, 15)
		_, h2 := drive(t, b[si], g, 50, 15)
		if len(h1) != len(h2) {
			t.Fatalf("source %d: history lengths diverge: %d vs %d", si, len(h1), len(h2))
		}
		for i := range h1 {
			if h1[i] != h2[i] {
				t.Fatalf("source %d: mutation %d diverges: %v vs %v", si, i, h1[i], h2[i])
			}
		}
	}
}

func TestTemporalSourceValidation(t *testing.T) {
	if _, err := NewSlidingWindow(rng.New(1), 0, 10); err == nil {
		t.Fatal("window min 0 accepted")
	}
	if _, err := NewSlidingWindow(rng.New(1), 10, 5); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := NewFlashCrowd(rng.New(1), 0, 1, 1); err == nil {
		t.Fatal("zero ramp accepted")
	}
}
