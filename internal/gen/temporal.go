// Temporal workload generators: endless, deterministic streams of
// mutation batches that model how real graphs churn over time. Where
// gen.go's generators produce a static topology, these produce the
// *history* — arrivals, expiries, hotspots — that the dynamic
// recoloring subsystem must survive. Each source inspects the live
// graph before emitting so every batch is applicable as-is (no
// insert-of-existing, no delete-of-missing, no duplicate pairs within a
// batch), and each is a pure function of its rng.Rand stream, so soak
// runs replay byte-identically.
package gen

import (
	"fmt"

	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/rng"
)

// MutationSource generates an endless deterministic stream of mutation
// batches against a live graph.
type MutationSource interface {
	// NextBatch returns a batch of up to size mutations, each applicable
	// to g in the order given. The batch may be smaller than size when
	// the graph or the source's phase limits choices, and empty when no
	// applicable mutation exists at all (complete graph for a grower,
	// drained queue for an expirer).
	NextBatch(g *graph.Graph, size int) *msg.MutationBatch
}

// pair is an unordered endpoint pair, normalized u < v.
type pair [2]int

func mkPair(u, v int) pair {
	if u > v {
		u, v = v, u
	}
	return pair{u, v}
}

// randomLiveEdge samples a live edge near-uniformly by rejection over
// the id space, falling back to a scan from a random offset when the
// space is too holey for rejection to land.
func randomLiveEdge(r *rng.Rand, g *graph.Graph) (graph.Edge, bool) {
	bound := g.EdgeIDBound()
	if g.M() == 0 || bound == 0 {
		return graph.Edge{}, false
	}
	for tries := 0; tries < 64; tries++ {
		if id := graph.EdgeID(r.Intn(bound)); g.Live(id) {
			return g.EdgeAt(id), true
		}
	}
	start := r.Intn(bound)
	for i := 0; i < bound; i++ {
		if id := graph.EdgeID((start + i) % bound); g.Live(id) {
			return g.EdgeAt(id), true
		}
	}
	return graph.Edge{}, false
}

// insertRandom appends up to want insertions of uniformly random
// missing edges to b, avoiding pairs already touched this batch.
func insertRandom(r *rng.Rand, g *graph.Graph, b *msg.MutationBatch, touched map[pair]bool, want int) []pair {
	n := g.N()
	if n < 2 {
		return nil
	}
	var added []pair
	for tries := 0; len(added) < want && tries < 20*want+40; tries++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		p := mkPair(u, v)
		if touched[p] || g.HasEdge(p[0], p[1]) {
			continue
		}
		touched[p] = true
		added = append(added, p)
		b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpInsert, U: p[0], V: p[1]})
	}
	return added
}

// deleteRandom appends up to want deletions of random live edges to b.
func deleteRandom(r *rng.Rand, g *graph.Graph, b *msg.MutationBatch, touched map[pair]bool, want int) {
	for got, tries := 0, 0; got < want && tries < 20*want+40; tries++ {
		e, ok := randomLiveEdge(r, g)
		if !ok {
			return
		}
		p := mkPair(e.U, e.V)
		if touched[p] {
			continue
		}
		touched[p] = true
		got++
		b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpDelete, U: p[0], V: p[1]})
	}
}

// SlidingWindow models stream processing with edge expiry: fresh edges
// arrive uniformly at random and the oldest edges expire in FIFO order.
// The live-edge window oscillates between minWindow and maxWindow,
// driven by state rather than a clock: the source *fills* (arrival-
// dominated batches) until the live count reaches maxWindow, then
// *drains* (expiry-dominated batches, deletions genuinely outpacing
// insertions) until it falls to minWindow, and repeats. The drain half
// of each cycle is exactly the regime that punches holes in the edge-id
// space, so a long run exercises compaction triggers over and over —
// regardless of batch size, because the turnaround points are reached
// by throughput, not assumed by a schedule.
type SlidingWindow struct {
	r         *rng.Rand
	minWindow int
	maxWindow int

	queue    []pair // insertion order, oldest at pos
	pos      int
	draining bool
	seq      uint64
	adopted  bool
}

// NewSlidingWindow returns a sliding-window source oscillating between
// minWindow and maxWindow live edges (1 ≤ minWindow ≤ maxWindow).
func NewSlidingWindow(r *rng.Rand, minWindow, maxWindow int) (*SlidingWindow, error) {
	if minWindow < 1 || maxWindow < minWindow {
		return nil, fmt.Errorf("gen: window bounds [%d,%d] invalid", minWindow, maxWindow)
	}
	return &SlidingWindow{r: r, minWindow: minWindow, maxWindow: maxWindow}, nil
}

func (s *SlidingWindow) NextBatch(g *graph.Graph, size int) *msg.MutationBatch {
	if !s.adopted {
		// Pre-existing edges join the window in id order so they expire
		// like everything else.
		for id := 0; id < g.EdgeIDBound(); id++ {
			if g.Live(graph.EdgeID(id)) {
				e := g.EdgeAt(graph.EdgeID(id))
				s.queue = append(s.queue, mkPair(e.U, e.V))
			}
		}
		s.adopted = true
	}
	b := &msg.MutationBatch{Seq: s.seq}
	s.seq++
	touched := map[pair]bool{}
	live := g.M()
	if s.draining && live <= s.minWindow {
		s.draining = false
	} else if !s.draining && live >= s.maxWindow {
		s.draining = true
	}
	// Fill: half the budget arrives, nothing expires. Drain: a trickle
	// arrives (the stream never goes stale) and expiry takes the rest.
	arrivals := size / 2
	if s.draining {
		arrivals = size / 8
	}
	if arrivals < 1 {
		arrivals = 1
	}
	fresh := insertRandom(s.r, g, b, touched, arrivals)
	s.queue = append(s.queue, fresh...)
	live += len(fresh)
	for s.draining && live > s.minWindow && len(b.Muts) < size && s.pos < len(s.queue) {
		p := s.queue[s.pos]
		s.pos++
		if touched[p] || !g.HasEdge(p[0], p[1]) {
			continue // inserted this batch, or already gone
		}
		touched[p] = true
		live--
		b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpDelete, U: p[0], V: p[1]})
	}
	// Reclaim the consumed queue prefix once it dominates.
	if s.pos > len(s.queue)/2 {
		s.queue = append([]pair(nil), s.queue[s.pos:]...)
		s.pos = 0
	}
	return b
}

// FlashCrowd models a recurring hotspot: each cycle picks a center
// vertex, ramps a near-star onto it over Ramp batches (Δ spikes, the
// palette cap follows), holds with balanced background churn for Hold
// batches, then tears the star down over Decay batches (Δ falls, the
// spike-era top colors strand — the palette-rebalance trigger's
// canonical prey).
type FlashCrowd struct {
	r                 *rng.Rand
	ramp, hold, decay int

	center int
	phase  int
	hot    []pair // hotspot edges this source inserted, in arrival order
	seq    uint64
}

// NewFlashCrowd returns a flash-crowd source cycling through ramp,
// hold, and decay phases of the given lengths (each ≥ 1 batch).
func NewFlashCrowd(r *rng.Rand, ramp, hold, decay int) (*FlashCrowd, error) {
	if ramp < 1 || hold < 1 || decay < 1 {
		return nil, fmt.Errorf("gen: flash-crowd phases %d/%d/%d must each be ≥ 1", ramp, hold, decay)
	}
	return &FlashCrowd{r: r, ramp: ramp, hold: hold, decay: decay, center: -1}, nil
}

func (s *FlashCrowd) NextBatch(g *graph.Graph, size int) *msg.MutationBatch {
	b := &msg.MutationBatch{Seq: s.seq}
	s.seq++
	touched := map[pair]bool{}
	cycle := s.ramp + s.hold + s.decay
	p := s.phase
	s.phase = (s.phase + 1) % cycle
	if p == 0 || s.center < 0 {
		s.center = s.r.Intn(max(g.N(), 1))
		s.hot = s.hot[:0]
	}
	n := g.N()
	switch {
	case p < s.ramp:
		// Attach the crowd: random missing edges on the center.
		for tries := 0; len(b.Muts) < size && tries < 20*size+40; tries++ {
			v := s.r.Intn(n)
			if v == s.center {
				continue
			}
			q := mkPair(s.center, v)
			if touched[q] || g.HasEdge(q[0], q[1]) {
				continue
			}
			touched[q] = true
			s.hot = append(s.hot, q)
			b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpInsert, U: q[0], V: q[1]})
		}
	case p < s.ramp+s.hold:
		// Steady state: balanced background churn keeps the stream live
		// without moving the hotspot.
		half := size / 2
		if half < 1 {
			half = 1
		}
		insertRandom(s.r, g, b, touched, half)
		deleteRandom(s.r, g, b, touched, half)
	default:
		// Disperse: tear hotspot edges down, paced to finish by the end
		// of the decay phase.
		remaining := cycle - p
		want := (len(s.hot) + remaining - 1) / remaining
		if want > size {
			want = size
		}
		for len(s.hot) > 0 && want > 0 {
			q := s.hot[len(s.hot)-1]
			s.hot = s.hot[:len(s.hot)-1]
			if touched[q] || !g.HasEdge(q[0], q[1]) {
				continue
			}
			touched[q] = true
			want--
			b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpDelete, U: q[0], V: q[1]})
		}
	}
	return b
}

// PreferentialGrowth models organic network growth with preferential
// attachment, the temporal counterpart of BarabasiAlbert: each new edge
// joins a uniformly random vertex to a degree-proportional one. The
// degree-proportional draw samples a uniform live edge and takes a
// random endpoint — exactly degree-biased, O(1), and independent of any
// degree table. Pure growth: Δ and the id bound rise monotonically,
// exercising the palette side of maintenance without ever making holes.
type PreferentialGrowth struct {
	r   *rng.Rand
	seq uint64
}

// NewPreferentialGrowth returns a preferential-attachment growth
// source.
func NewPreferentialGrowth(r *rng.Rand) *PreferentialGrowth {
	return &PreferentialGrowth{r: r}
}

func (s *PreferentialGrowth) NextBatch(g *graph.Graph, size int) *msg.MutationBatch {
	b := &msg.MutationBatch{Seq: s.seq}
	s.seq++
	touched := map[pair]bool{}
	n := g.N()
	if n < 2 {
		return b
	}
	for tries := 0; len(b.Muts) < size && tries < 20*size+40; tries++ {
		u := s.r.Intn(n)
		v := u
		if e, ok := randomLiveEdge(s.r, g); ok {
			if s.r.Intn(2) == 0 {
				v = e.U
			} else {
				v = e.V
			}
		} else {
			v = s.r.Intn(n)
		}
		if u == v {
			continue
		}
		q := mkPair(u, v)
		if touched[q] || g.HasEdge(q[0], q[1]) {
			continue
		}
		touched[q] = true
		b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpInsert, U: q[0], V: q[1]})
	}
	return b
}
