package gen

import (
	"math"
	"testing"
	"testing/quick"

	"dima/internal/graph"
	"dima/internal/rng"
)

func TestPairFromIndexBijective(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10} {
		total := n * (n - 1) / 2
		seen := make(map[graph.Edge]bool)
		for idx := 0; idx < total; idx++ {
			u, v := pairFromIndex(idx, n)
			if u < 0 || v >= n || u >= v {
				t.Fatalf("pairFromIndex(%d,%d) = (%d,%d) invalid", idx, n, u, v)
			}
			e := graph.Edge{U: u, V: v}
			if seen[e] {
				t.Fatalf("pairFromIndex(%d,%d) repeated %v", idx, n, e)
			}
			seen[e] = true
		}
		if len(seen) != total {
			t.Fatalf("n=%d covered %d of %d pairs", n, len(seen), total)
		}
	}
}

func TestGNPExtremes(t *testing.T) {
	r := rng.New(1)
	g, err := ErdosRenyiGNP(r, 10, 0)
	if err != nil || g.M() != 0 {
		t.Fatalf("G(10,0): %v M=%d", err, g.M())
	}
	g, err = ErdosRenyiGNP(r, 10, 1)
	if err != nil || g.M() != 45 {
		t.Fatalf("G(10,1): %v M=%d want 45", err, g.M())
	}
	if _, err := ErdosRenyiGNP(r, 10, 1.5); err == nil {
		t.Fatal("accepted p > 1")
	}
	if _, err := ErdosRenyiGNP(r, -1, 0.5); err == nil {
		t.Fatal("accepted negative n")
	}
}

func TestGNPEdgeCount(t *testing.T) {
	r := rng.New(2)
	const n = 200
	const p = 0.1
	const reps = 30
	sum := 0
	for i := 0; i < reps; i++ {
		g, err := ErdosRenyiGNP(r, n, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		sum += g.M()
	}
	mean := float64(sum) / reps
	want := p * float64(n*(n-1)/2)
	sd := math.Sqrt(want * (1 - p))
	if math.Abs(mean-want) > 5*sd/math.Sqrt(reps) {
		t.Fatalf("G(n,p) mean edges %.1f, want ~%.1f", mean, want)
	}
}

func TestGNM(t *testing.T) {
	r := rng.New(3)
	for _, m := range []int{0, 1, 10, 100, 190} {
		g, err := ErdosRenyiGNM(r, 20, m)
		if err != nil {
			t.Fatal(err)
		}
		if g.M() != m {
			t.Fatalf("GNM(20,%d) produced %d edges", m, g.M())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ErdosRenyiGNM(r, 5, 11); err == nil {
		t.Fatal("accepted m > max")
	}
	if _, err := ErdosRenyiGNM(r, -1, 0); err == nil {
		t.Fatal("accepted negative n")
	}
}

func TestAvgDegree(t *testing.T) {
	r := rng.New(4)
	const n = 400
	const target = 8.0
	const reps = 20
	sum := 0.0
	for i := 0; i < reps; i++ {
		g, err := ErdosRenyiAvgDegree(r, n, target)
		if err != nil {
			t.Fatal(err)
		}
		sum += g.AvgDegree()
	}
	mean := sum / reps
	if math.Abs(mean-target) > 0.5 {
		t.Fatalf("average degree %.2f, want ~%.1f", mean, target)
	}
	if _, err := ErdosRenyiAvgDegree(r, 10, 20); err == nil {
		t.Fatal("accepted avg degree > n-1")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	r := rng.New(5)
	g, err := BarabasiAlbert(r, 100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	// Growth adds ~k edges per vertex past the seed clique.
	if g.M() < 150 || g.M() > 250 {
		t.Fatalf("M = %d out of expected band", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("BA graph should be connected")
	}
	// Scale-free: the hub degree should far exceed the average.
	if float64(g.MaxDegree()) < 2.5*g.AvgDegree() {
		t.Fatalf("no hub: Δ=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestBarabasiAlbertPowerIncreasesHub(t *testing.T) {
	// Higher attachment power concentrates degree: average Δ over
	// several runs should grow with the exponent.
	avgDelta := func(power float64) float64 {
		sum := 0
		const reps = 10
		for i := 0; i < reps; i++ {
			r := rng.New(uint64(100 + i))
			g, err := BarabasiAlbert(r, 150, 2, power)
			if err != nil {
				t.Fatal(err)
			}
			sum += g.MaxDegree()
		}
		return float64(sum) / reps
	}
	lo, hi := avgDelta(0), avgDelta(1.5)
	if hi <= lo {
		t.Fatalf("hub degree did not grow with power: %.1f (p=0) vs %.1f (p=1.5)", lo, hi)
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	r := rng.New(6)
	if _, err := BarabasiAlbert(r, 10, 0, 1); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := BarabasiAlbert(r, 10, 2, -1); err == nil {
		t.Fatal("accepted negative power")
	}
	g, err := BarabasiAlbert(r, 0, 2, 1)
	if err != nil || g.N() != 0 {
		t.Fatal("n=0 should give empty graph")
	}
	// n smaller than seed clique still works.
	g, err = BarabasiAlbert(r, 2, 3, 1)
	if err != nil || g.N() != 2 || g.M() != 1 {
		t.Fatalf("tiny BA: %v N=%d M=%d", err, g.N(), g.M())
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	r := rng.New(7)
	// beta = 0: pure ring lattice, exactly n*k edges, degree 2k.
	g, err := WattsStrogatz(r, 20, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 60 {
		t.Fatalf("lattice M = %d, want 60", g.M())
	}
	for u := 0; u < 20; u++ {
		if g.Degree(u) != 6 {
			t.Fatalf("lattice degree(%d) = %d, want 6", u, g.Degree(u))
		}
	}
}

func TestWattsStrogatzRewired(t *testing.T) {
	r := rng.New(8)
	g, err := WattsStrogatz(r, 100, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rewiring can only lose edges to saturation, never add.
	if g.M() > 400 || g.M() < 350 {
		t.Fatalf("rewired M = %d", g.M())
	}
	// Small-world keeps high clustering relative to ER of same density.
	if g.Triangles() == 0 {
		t.Fatal("small-world graph lost all clustering")
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	r := rng.New(9)
	if _, err := WattsStrogatz(r, 10, 5, 0.1); err == nil {
		t.Fatal("accepted 2k >= n")
	}
	if _, err := WattsStrogatz(r, 10, 2, 1.5); err == nil {
		t.Fatal("accepted beta > 1")
	}
	g, err := WattsStrogatz(r, 0, 0, 0)
	if err != nil || g.N() != 0 {
		t.Fatal("empty WS failed")
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(10)
	for _, c := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 5}} {
		g, err := RandomRegular(r, c.n, c.d)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < c.n; u++ {
			if g.Degree(u) != c.d {
				t.Fatalf("n=%d d=%d: degree(%d) = %d", c.n, c.d, u, g.Degree(u))
			}
		}
	}
	if _, err := RandomRegular(r, 5, 3); err == nil {
		t.Fatal("accepted odd n*d")
	}
	if _, err := RandomRegular(r, 5, 5); err == nil {
		t.Fatal("accepted d >= n")
	}
	g, err := RandomRegular(r, 6, 0)
	if err != nil || g.M() != 0 {
		t.Fatal("0-regular failed")
	}
}

func TestDeterministicFamilies(t *testing.T) {
	if g := Complete(5); g.M() != 10 || g.MaxDegree() != 4 {
		t.Fatalf("K5: M=%d Δ=%d", g.M(), g.MaxDegree())
	}
	if g := Cycle(6); g.M() != 6 || g.MaxDegree() != 2 || !g.IsConnected() {
		t.Fatal("C6 wrong")
	}
	if g := Cycle(2); g.M() != 1 {
		t.Fatalf("Cycle(2) M=%d, want path edge only", g.M())
	}
	if g := Path(4); g.M() != 3 || g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatal("P4 wrong")
	}
	if g := Star(5); g.Degree(0) != 4 || g.M() != 4 {
		t.Fatal("star wrong")
	}
	if g := Grid(3, 4); g.N() != 12 || g.M() != 17 {
		t.Fatalf("grid 3x4: N=%d M=%d want 12,17", g.N(), g.M())
	}
	if g := Hypercube(3); g.N() != 8 || g.M() != 12 || g.MaxDegree() != 3 {
		t.Fatal("Q3 wrong")
	}
	if g := Hypercube(0); g.N() != 1 || g.M() != 0 {
		t.Fatal("Q0 wrong")
	}
}

func TestRandomTree(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{0, 1, 2, 3, 10, 50} {
		g := RandomTree(r, n)
		if n >= 1 {
			if g.M() != n-1 && n > 1 {
				t.Fatalf("tree n=%d has %d edges", n, g.M())
			}
			if n > 1 && !g.IsConnected() {
				t.Fatalf("tree n=%d disconnected", n)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomBipartite(t *testing.T) {
	r := rng.New(12)
	g, err := RandomBipartite(r, 10, 15, 1)
	if err != nil || g.M() != 150 {
		t.Fatalf("complete bipartite: %v M=%d", err, g.M())
	}
	// Bipartite: no edge inside either part.
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if g.HasEdge(u, v) {
				t.Fatal("edge inside left part")
			}
		}
	}
	if _, err := RandomBipartite(r, -1, 5, 0.5); err == nil {
		t.Fatal("accepted negative size")
	}
}

func TestRandomGeometric(t *testing.T) {
	r := rng.New(13)
	g, err := RandomGeometric(r, 50, 2) // radius covers the whole square
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 50*49/2 {
		t.Fatalf("radius 2 should give complete graph, M=%d", g.M())
	}
	g, err = RandomGeometric(r, 50, 0)
	if err != nil || g.M() != 0 {
		t.Fatal("radius 0 should give empty graph")
	}
	if _, err := RandomGeometric(r, 10, -1); err == nil {
		t.Fatal("accepted negative radius")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	// Same seed → identical graph, across all stochastic families.
	type mk func(r *rng.Rand) (*graph.Graph, error)
	families := map[string]mk{
		"gnp": func(r *rng.Rand) (*graph.Graph, error) { return ErdosRenyiGNP(r, 60, 0.1) },
		"gnm": func(r *rng.Rand) (*graph.Graph, error) { return ErdosRenyiGNM(r, 60, 100) },
		"ba":  func(r *rng.Rand) (*graph.Graph, error) { return BarabasiAlbert(r, 60, 2, 1) },
		"ws":  func(r *rng.Rand) (*graph.Graph, error) { return WattsStrogatz(r, 60, 3, 0.2) },
		"reg": func(r *rng.Rand) (*graph.Graph, error) { return RandomRegular(r, 60, 4) },
		"geo": func(r *rng.Rand) (*graph.Graph, error) { return RandomGeometric(r, 60, 0.2) },
	}
	for name, f := range families {
		a, err := f(rng.New(99))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := f(rng.New(99))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.M() != b.M() {
			t.Fatalf("%s not deterministic: %d vs %d edges", name, a.M(), b.M())
		}
		for id, e := range a.Edges() {
			if b.Edges()[id] != e {
				t.Fatalf("%s not deterministic at edge %d", name, id)
			}
		}
	}
}

func TestQuickGNPValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + int(seed%50)
		p := float64(seed%100) / 100
		g, err := ErdosRenyiGNP(r, n, p)
		return err == nil && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWattsStrogatzValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + int(seed%50)
		k := 1 + int(seed%3)
		beta := float64(seed%100) / 100
		g, err := WattsStrogatz(r, n, k, beta)
		return err == nil && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	// Scale-free degree sequences are heavy-tailed: the maximum degree
	// grows far beyond the mean, and a sizeable fraction of vertices
	// keep the minimum attachment degree. Check both against a same-
	// density ER graph, which concentrates around its mean.
	r := rng.New(60)
	ba, err := BarabasiAlbert(r, 400, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyiAvgDegree(r, 400, ba.AvgDegree())
	if err != nil {
		t.Fatal(err)
	}
	if float64(ba.MaxDegree()) < 2*float64(er.MaxDegree()) {
		t.Fatalf("BA hub %d not heavier than ER max %d", ba.MaxDegree(), er.MaxDegree())
	}
	lowDeg := 0
	for u := 0; u < ba.N(); u++ {
		if ba.Degree(u) <= 3 {
			lowDeg++
		}
	}
	if lowDeg < ba.N()/2 {
		t.Fatalf("only %d of %d BA vertices have low degree; tail not heavy", lowDeg, ba.N())
	}
}

func TestWattsStrogatzClusteringBeatsER(t *testing.T) {
	// The small-world signature: at matched density, far more triangles
	// than an ER graph.
	r := rng.New(61)
	ws, err := WattsStrogatz(r, 200, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyiAvgDegree(r, 200, ws.AvgDegree())
	if err != nil {
		t.Fatal(err)
	}
	if ws.Triangles() < 3*er.Triangles() {
		t.Fatalf("WS triangles %d not >> ER triangles %d", ws.Triangles(), er.Triangles())
	}
}

func TestGNMUniformCoverage(t *testing.T) {
	// Every pair should be reachable: over many GNM draws on a tiny
	// graph, each possible edge appears with roughly equal frequency.
	r := rng.New(62)
	const n, m, reps = 5, 3, 4000
	counts := map[graph.Edge]int{}
	for i := 0; i < reps; i++ {
		g, err := ErdosRenyiGNM(r, n, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			counts[e]++
		}
	}
	total := n * (n - 1) / 2
	want := float64(reps*m) / float64(total)
	for e, c := range counts {
		if math.Abs(float64(c)-want) > want/2 {
			t.Fatalf("edge %v appeared %d times, want ~%.0f", e, c, want)
		}
	}
	if len(counts) != total {
		t.Fatalf("only %d of %d pairs ever appeared", len(counts), total)
	}
}

func TestConfigurationModel(t *testing.T) {
	r := rng.New(70)
	degrees := []int{3, 3, 2, 2, 1, 1}
	g, err := ConfigurationModel(r, degrees)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range degrees {
		if g.Degree(v) != d {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(v), d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, err := ConfigurationModel(r, []int{1, 1, 1}); err == nil {
		t.Fatal("accepted odd degree sum")
	}
	if _, err := ConfigurationModel(r, []int{3, 1}); err == nil {
		t.Fatal("accepted degree >= n")
	}
	if _, err := ConfigurationModel(r, []int{-1, 1}); err == nil {
		t.Fatal("accepted negative degree")
	}
	empty, err := ConfigurationModel(r, []int{0, 0})
	if err != nil || empty.M() != 0 {
		t.Fatal("zero sequence failed")
	}
}

func TestPowerLawDegreesIntoConfigModel(t *testing.T) {
	r := rng.New(71)
	degrees, err := PowerLawDegrees(r, 200, 1, 20, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, d := range degrees {
		if d < 1 || d > 20 {
			t.Fatalf("degree %d out of range", d)
		}
		sum += d
	}
	if sum%2 != 0 {
		t.Fatalf("degree sum %d odd", sum)
	}
	// Heavy head: most vertices near the minimum.
	low := 0
	for _, d := range degrees {
		if d <= 2 {
			low++
		}
	}
	if low < len(degrees)/2 {
		t.Fatalf("only %d of %d degrees are small; not power-law-ish", low, len(degrees))
	}
	g, err := ConfigurationModel(r, degrees)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range degrees {
		if g.Degree(v) != d {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(v), d)
		}
	}
}

func TestPowerLawDegreesErrors(t *testing.T) {
	r := rng.New(72)
	if _, err := PowerLawDegrees(r, 10, 0, 5, 2); err == nil {
		t.Fatal("accepted minDeg 0")
	}
	if _, err := PowerLawDegrees(r, 10, 3, 2, 2); err == nil {
		t.Fatal("accepted inverted range")
	}
	if _, err := PowerLawDegrees(r, 10, 1, 12, 2); err == nil {
		t.Fatal("accepted maxDeg >= n")
	}
	if _, err := PowerLawDegrees(r, 10, 1, 5, 1.0); err == nil {
		t.Fatal("accepted gamma <= 1")
	}
}
