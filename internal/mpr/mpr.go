// Package mpr implements the "simple distributed edge-coloring
// algorithm" the paper cites as prior work (ref [10]: Marathe,
// Panconesi, Risinger, J. Exp. Algorithmics 2004) as a message-passing
// protocol on the same network substrate as the DiMa algorithms, so the
// two families can be compared head to head.
//
// Each edge is owned by its lower-id endpoint. Every round, the owner of
// each uncolored edge picks a tentative color uniformly at random from a
// fixed palette minus the colors already used at either endpoint; a
// tentative pick survives only if no adjacent edge picked the same color
// this round (each vertex vetoes the collisions it sees). With the
// palette fixed at 2Δ-1, an available color always exists and each pick
// survives with constant probability, so the algorithm finishes in
// O(log m) rounds with high probability — faster than DiMa's Θ(Δ) but
// spending colors across the whole 2Δ-1 palette rather than Δ or Δ+1.
//
// Unlike the DiMa algorithms, the palette requires global knowledge of
// Δ — an informational advantage this implementation grants the
// baseline (computed centrally before the run).
package mpr

import (
	"fmt"

	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
)

const phases = 3 // tentative, veto, commit+update

// Options configures a run; the zero value is usable.
type Options struct {
	// Seed drives all random choices.
	Seed uint64
	// Engine executes the protocol (nil = net.RunSync).
	Engine net.Engine
	// Palette is the number of colors; 0 means 2Δ-1 (the smallest value
	// that guarantees an available color for every edge at all times).
	// Values below 2Δ-1 are rejected.
	Palette int
	// MaxRounds bounds computation rounds (0 = 100,000).
	MaxRounds int
}

// Result reports a run.
type Result struct {
	// Colors is indexed by graph.EdgeID.
	Colors []int
	// NumColors is the number of distinct colors used.
	NumColors int
	// Rounds counts computation rounds (3 communication rounds each).
	Rounds     int
	CommRounds int
	Messages   int64
	Terminated bool
}

// Color runs the algorithm on g.
func Color(g *graph.Graph, opt Options) (*Result, error) {
	delta := g.MaxDegree()
	palette := opt.Palette
	if palette == 0 {
		palette = 2*delta - 1
		if palette < 1 {
			palette = 1
		}
	}
	if delta > 0 && palette < 2*delta-1 {
		return nil, fmt.Errorf("mpr: palette %d below 2Δ-1 = %d cannot guarantee progress",
			palette, 2*delta-1)
	}
	base := rng.New(opt.Seed)
	nodes := make([]net.Node, g.N())
	mprs := make([]*mprNode, g.N())
	for u := 0; u < g.N(); u++ {
		mprs[u] = newNode(g, u, palette, base.Derive(uint64(u)))
		nodes[u] = mprs[u]
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100_000
	}
	eng := opt.Engine
	if eng == nil {
		eng = net.RunSync
	}
	netRes, err := eng(g, nodes, net.Config{MaxRounds: phases * maxRounds})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Colors:     make([]int, g.M()),
		CommRounds: netRes.Rounds,
		Rounds:     (netRes.Rounds + phases - 1) / phases,
		Messages:   netRes.Messages,
		Terminated: netRes.Terminated,
	}
	for i := range res.Colors {
		res.Colors[i] = -1
	}
	for _, n := range mprs {
		for e, c := range n.colors {
			if res.Colors[e] == -1 {
				res.Colors[e] = c
			} else if res.Colors[e] != c {
				return nil, fmt.Errorf("mpr: edge %v colored %d and %d", g.EdgeAt(e), res.Colors[e], c)
			}
		}
	}
	seen := map[int]bool{}
	for _, c := range res.Colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	res.NumColors = len(seen)
	return res, nil
}

type mprNode struct {
	id      int
	g       *graph.Graph
	palette int
	r       *rng.Rand

	colors   map[graph.EdgeID]int
	owned    []graph.EdgeID // owned (lower endpoint) uncolored edges
	incident int            // uncolored incident edges (owned or not)
	usedSelf map[int]bool
	usedNbr  []map[int]bool
	nbrIndex map[int]int

	tentative  map[graph.EdgeID]int  // this round's picks for owned edges
	selfVetoed map[graph.EdgeID]bool // own vetoes (local broadcast is not self-delivered)
	relay      []msg.Paint           // partner finalizations to rebroadcast
	flushed    bool
}

func newNode(g *graph.Graph, u, palette int, r *rng.Rand) *mprNode {
	n := &mprNode{
		id:       u,
		g:        g,
		palette:  palette,
		r:        r,
		colors:   make(map[graph.EdgeID]int, g.Degree(u)),
		incident: g.Degree(u),
		usedSelf: make(map[int]bool),
		usedNbr:  make([]map[int]bool, g.Degree(u)),
		nbrIndex: make(map[int]int, g.Degree(u)),
	}
	for i, v := range g.Neighbors(u) {
		n.usedNbr[i] = make(map[int]bool)
		n.nbrIndex[v] = i
		if u < v {
			e, _ := g.EdgeIDOf(u, v)
			n.owned = append(n.owned, e)
		}
	}
	return n
}

func (n *mprNode) ID() int { return n.id }

func (n *mprNode) Done() bool {
	return n.incident == 0 && len(n.relay) == 0 && n.flushed
}

func (n *mprNode) Step(round int, inbox []msg.Message) []msg.Message {
	switch round % phases {
	case 0:
		return n.phaseTentative(inbox)
	case 1:
		return n.phaseVeto(inbox)
	default:
		return n.phaseCommit(inbox)
	}
}

// phaseTentative applies finalization updates from the previous round
// and broadcasts a tentative pick for every owned uncolored edge.
func (n *mprNode) phaseTentative(inbox []msg.Message) []msg.Message {
	for _, m := range inbox {
		if m.Kind != msg.KindUpdate {
			continue
		}
		for _, p := range m.Paints {
			n.applyFinal(graph.EdgeID(p.Edge), p.Color, m.From)
		}
	}
	if n.incident == 0 {
		n.flushed = len(n.relay) == 0
	}
	var out []msg.Message
	n.tentative = make(map[graph.EdgeID]int, len(n.owned))
	for _, e := range n.owned {
		v := n.g.EdgeAt(e).Other(n.id)
		var avail []int
		nv := n.usedNbr[n.nbrIndex[v]]
		for c := 0; c < n.palette; c++ {
			if !n.usedSelf[c] && !nv[c] {
				avail = append(avail, c)
			}
		}
		if len(avail) == 0 {
			// Impossible with palette >= 2Δ-1; skip the round defensively.
			continue
		}
		c := avail[n.r.Intn(len(avail))]
		n.tentative[e] = c
		out = append(out, msg.Message{
			Kind: msg.KindClaim, From: n.id, To: msg.Broadcast, Edge: int(e), Color: c,
		})
	}
	return out
}

// phaseVeto inspects the tentative picks visible at this vertex (picks
// for its incident edges, including its own) and vetoes every pick whose
// color collides at this vertex or is already used here.
func (n *mprNode) phaseVeto(inbox []msg.Message) []msg.Message {
	type pick struct {
		edge  graph.EdgeID
		color int
	}
	var picks []pick
	for e, c := range n.tentative {
		picks = append(picks, pick{e, c})
	}
	for _, m := range inbox {
		if m.Kind != msg.KindClaim {
			continue
		}
		e := graph.EdgeID(m.Edge)
		ed := n.g.EdgeAt(e)
		if ed.U != n.id && ed.V != n.id {
			continue // a pick for an edge not incident here; ignore
		}
		picks = append(picks, pick{e, m.Color})
	}
	// Sort for determinism across engines (inbox is sorted, but merged
	// with own picks from map iteration).
	for i := 1; i < len(picks); i++ {
		for j := i; j > 0 && picks[j].edge < picks[j-1].edge; j-- {
			picks[j], picks[j-1] = picks[j-1], picks[j]
		}
	}
	colorCount := map[int]int{}
	for _, p := range picks {
		colorCount[p.color]++
	}
	n.selfVetoed = make(map[graph.EdgeID]bool)
	var out []msg.Message
	for _, p := range picks {
		if colorCount[p.color] > 1 || n.usedSelf[p.color] {
			n.selfVetoed[p.edge] = true
			out = append(out, msg.Message{
				Kind: msg.KindDecide, From: n.id, To: msg.Broadcast,
				Edge: int(p.edge), Color: p.color, Keep: false,
			})
		}
	}
	return out
}

// phaseCommit finalizes surviving picks and broadcasts the new colors,
// together with relays of partner finalizations learned last round.
func (n *mprNode) phaseCommit(inbox []msg.Message) []msg.Message {
	vetoed := map[graph.EdgeID]bool{}
	for _, m := range inbox {
		if m.Kind == msg.KindDecide && !m.Keep {
			vetoed[graph.EdgeID(m.Edge)] = true
		}
	}
	// Iterate tentative picks in edge order: applyFinal reorders the
	// owned-edge list, so map-order iteration would leak scheduling
	// nondeterminism into later random draws.
	keys := make([]graph.EdgeID, 0, len(n.tentative))
	for e := range n.tentative {
		keys = append(keys, e)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var paints []msg.Paint
	for _, e := range keys {
		if vetoed[e] || n.selfVetoed[e] {
			continue
		}
		c := n.tentative[e]
		n.applyFinal(e, c, n.id)
		paints = append(paints, msg.Paint{Edge: int(e), Color: c})
	}
	n.tentative = nil
	// Relay partner finalizations so the partner's neighbors learn them.
	paints = append(paints, n.relay...)
	n.relay = nil
	if len(paints) == 0 {
		return nil
	}
	// Deterministic order for engine equivalence.
	for i := 1; i < len(paints); i++ {
		for j := i; j > 0 && paints[j].Edge < paints[j-1].Edge; j-- {
			paints[j], paints[j-1] = paints[j-1], paints[j]
		}
	}
	return []msg.Message{{
		Kind: msg.KindUpdate, From: n.id, To: msg.Broadcast, Edge: -1, Color: -1, Paints: paints,
	}}
}

// applyFinal records a finalized (edge, color), updating whichever of
// this node's views the edge touches. from identifies the broadcaster.
func (n *mprNode) applyFinal(e graph.EdgeID, c, from int) {
	ed := n.g.EdgeAt(e)
	switch {
	case ed.U == n.id || ed.V == n.id:
		if _, dup := n.colors[e]; dup {
			return
		}
		n.colors[e] = c
		n.usedSelf[c] = true
		n.incident--
		other := ed.Other(n.id)
		if i, ok := n.nbrIndex[other]; ok {
			n.usedNbr[i][c] = true
		}
		for i, id := range n.owned {
			if id == e {
				n.owned[i] = n.owned[len(n.owned)-1]
				n.owned = n.owned[:len(n.owned)-1]
				break
			}
		}
		if from != n.id {
			// Learned from the owner: relay to this side's neighborhood.
			n.relay = append(n.relay, msg.Paint{Edge: int(e), Color: c})
		}
	default:
		// An edge incident to the broadcasting neighbor but not to us:
		// update that neighbor's used-color view.
		if i, ok := n.nbrIndex[from]; ok {
			n.usedNbr[i][c] = true
		}
	}
}
