package mpr

import (
	"testing"
	"testing/quick"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

func mustStrong(t *testing.T, d *graph.Digraph, opt Options) *StrongResult {
	t.Helper()
	res, err := StrongColor(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("did not terminate in %d rounds", res.Rounds)
	}
	if v := verify.StrongColoring(d, res.Colors); len(v) != 0 {
		t.Fatalf("invalid strong coloring: %v (of %d)", v[0], len(v))
	}
	return res
}

func TestStrongSingleLink(t *testing.T) {
	d := graph.NewSymmetric(gen.Path(2))
	res := mustStrong(t, d, Options{Seed: 1})
	if res.NumColors != 2 {
		t.Fatalf("K2: %d channels", res.NumColors)
	}
}

func TestStrongFamilies(t *testing.T) {
	r := rng.New(2)
	er, err := gen.ErdosRenyiAvgDegree(r, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	udg, err := gen.RandomGeometric(r, 50, 0.22)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{
		"er": er, "udg": udg, "cycle": gen.Cycle(10),
		"star": gen.Star(7), "grid": gen.Grid(4, 5), "path4": gen.Path(4),
	} {
		d := graph.NewSymmetric(g)
		res := mustStrong(t, d, Options{Seed: 3})
		if res.NumColors > res.Palette {
			t.Errorf("%s: %d channels exceed palette %d", name, res.NumColors, res.Palette)
		}
		if lb := verify.StrongLowerBound(d); res.NumColors < lb {
			t.Errorf("%s: %d channels below structural bound %d", name, res.NumColors, lb)
		}
	}
}

func TestStrongEmpty(t *testing.T) {
	res := mustStrong(t, graph.NewSymmetric(graph.New(3)), Options{})
	if res.NumColors != 0 {
		t.Fatalf("empty: %+v", res)
	}
}

func TestStrongPaletteValidation(t *testing.T) {
	d := graph.NewSymmetric(gen.Star(5))
	if _, err := StrongColor(d, Options{Seed: 4, Palette: 3}); err == nil {
		t.Fatal("accepted undersized palette")
	}
}

func TestStrongDeterministicAndEngines(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(5), 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	a := mustStrong(t, d, Options{Seed: 6, Engine: net.RunSync})
	b := mustStrong(t, d, Options{Seed: 6, Engine: net.RunChan})
	if a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatalf("engines diverged: %d/%d rounds %d/%d msgs", a.Rounds, b.Rounds, a.Messages, b.Messages)
	}
	for i := range a.Colors {
		if a.Colors[i] != b.Colors[i] {
			t.Fatalf("engines diverged at arc %d", i)
		}
	}
}

func TestStrongFasterThanDima(t *testing.T) {
	// The comparator's point: round count stays flat while DiMa2Ed needs
	// ≈6Δ; here Δ≈14 and the simple-strong baseline should be well under
	// 2Δ rounds.
	g, err := gen.ErdosRenyiAvgDegree(rng.New(7), 150, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(g)
	res := mustStrong(t, d, Options{Seed: 8})
	if res.Rounds >= 2*g.MaxDegree() {
		t.Fatalf("simple-strong took %d rounds at Δ=%d", res.Rounds, g.MaxDegree())
	}
}

func TestQuickStrongAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%25)
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), n, 3)
		if err != nil {
			return false
		}
		d := graph.NewSymmetric(g)
		res, err := StrongColor(d, Options{Seed: seed * 11})
		if err != nil || !res.Terminated {
			return false
		}
		return len(verify.StrongColoring(d, res.Colors)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
