package mpr

import (
	"testing"
	"testing/quick"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

func mustColor(t *testing.T, g *graph.Graph, opt Options) *Result {
	t.Helper()
	res, err := Color(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("did not terminate in %d rounds", res.Rounds)
	}
	if v := verify.EdgeColoring(g, res.Colors); len(v) != 0 {
		t.Fatalf("invalid coloring: %v", v[0])
	}
	return res
}

func TestSingleEdge(t *testing.T) {
	res := mustColor(t, gen.Path(2), Options{Seed: 1})
	if res.NumColors != 1 {
		t.Fatalf("K2: %d colors", res.NumColors)
	}
}

func TestFamilies(t *testing.T) {
	r := rng.New(2)
	er, err := gen.ErdosRenyiAvgDegree(r, 120, 8)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := gen.BarabasiAlbert(r, 100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{
		"er": er, "ba": ba, "grid": gen.Grid(8, 8),
		"complete": gen.Complete(10), "star": gen.Star(9), "cycle": gen.Cycle(11),
	} {
		res := mustColor(t, g, Options{Seed: 3})
		if d := g.MaxDegree(); d >= 1 && res.NumColors > 2*d-1 {
			t.Errorf("%s: %d colors exceeds palette 2Δ-1 = %d", name, res.NumColors, 2*d-1)
		}
	}
}

func TestEmptyAndIsolated(t *testing.T) {
	res := mustColor(t, graph.New(0), Options{})
	if res.NumColors != 0 {
		t.Fatalf("empty: %+v", res)
	}
	res = mustColor(t, graph.New(5), Options{Seed: 4})
	if res.NumColors != 0 {
		t.Fatalf("isolated: %+v", res)
	}
}

func TestPaletteValidation(t *testing.T) {
	g := gen.Star(6) // Δ=5, needs palette >= 9
	if _, err := Color(g, Options{Seed: 5, Palette: 5}); err == nil {
		t.Fatal("accepted palette below 2Δ-1")
	}
	res := mustColor(t, g, Options{Seed: 5, Palette: 20})
	if res.NumColors != 5 {
		t.Fatalf("star must use exactly Δ colors, got %d", res.NumColors)
	}
}

func TestDeterministicAndEngines(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(6), 60, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := mustColor(t, g, Options{Seed: 7, Engine: net.RunSync})
	b := mustColor(t, g, Options{Seed: 7, Engine: net.RunChan})
	if a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatalf("engines diverged: %d/%d rounds, %d/%d msgs", a.Rounds, b.Rounds, a.Messages, b.Messages)
	}
	for e := range a.Colors {
		if a.Colors[e] != b.Colors[e] {
			t.Fatalf("engines diverged at edge %d", e)
		}
	}
}

func TestFasterThanDeltaRounds(t *testing.T) {
	// The point of the baseline: rounds grow like O(log m), far below
	// DiMa's ≈2Δ, at the cost of a wider palette. On a Δ≈30 graph the
	// round count should sit well under Δ.
	g, err := gen.ErdosRenyiAvgDegree(rng.New(8), 300, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := mustColor(t, g, Options{Seed: 9})
	if res.Rounds >= g.MaxDegree() {
		t.Fatalf("MPR took %d rounds at Δ=%d; expected o(Δ)", res.Rounds, g.MaxDegree())
	}
}

func TestUsesWiderPaletteThanDima(t *testing.T) {
	// Conversely the palette spreads: on a dense graph the distinct
	// color count exceeds Δ+1 (where DiMa typically sits).
	g := gen.Complete(16)
	res := mustColor(t, g, Options{Seed: 10})
	if res.NumColors <= g.MaxDegree()+1 {
		t.Logf("note: MPR landed at %d colors (Δ=%d) — unusually tight", res.NumColors, g.MaxDegree())
	}
	if res.NumColors > 2*g.MaxDegree()-1 {
		t.Fatalf("palette overflow: %d > %d", res.NumColors, 2*g.MaxDegree()-1)
	}
}

func TestQuickAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 15 + int(seed%50)
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), n, 5)
		if err != nil {
			return false
		}
		res, err := Color(g, Options{Seed: seed * 3})
		if err != nil || !res.Terminated {
			return false
		}
		return len(verify.EdgeColoring(g, res.Colors)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
