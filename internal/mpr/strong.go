package mpr

import (
	"fmt"

	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
)

const strongPhases = 4 // pick+finalize, relay, veto, verdict+announce

// StrongResult reports a StrongColor run.
type StrongResult struct {
	// Colors is indexed by graph.ArcID.
	Colors []int
	// NumColors is the number of distinct channels used.
	NumColors int
	// Palette is the fixed palette size the run used.
	Palette    int
	Rounds     int
	CommRounds int
	Messages   int64
	Terminated bool
}

// StrongColor is the distance-2 analogue of Color and the distributed
// comparator for DiMa2Ed, in the spirit of the n-dependent strong
// coloring algorithms the paper cites (Barrett et al.): every round each
// uncolored arc's tail picks a tentative channel uniformly from a fixed
// palette minus the channels known dead for the arc; heads rebroadcast
// the picks so every conflict has a witness; witnesses veto same-channel
// collisions; surviving picks commit. O(log A) rounds with high
// probability, but the palette is sized to the worst-case conflict
// degree — global knowledge DiMa2Ed does not need — and the channel
// count lands far above DiMa2Ed's.
func StrongColor(d *graph.Digraph, opt Options) (*StrongResult, error) {
	palette := opt.Palette
	if palette == 0 {
		palette = maxConflictDegree(d) + 1
	}
	if need := maxConflictDegree(d) + 1; palette < need {
		return nil, fmt.Errorf("mpr: palette %d below max conflict degree + 1 = %d", palette, need)
	}
	base := rng.New(opt.Seed)
	g := d.Under()
	nodes := make([]net.Node, g.N())
	sns := make([]*strongNode, g.N())
	for u := 0; u < g.N(); u++ {
		sns[u] = newStrongNode(d, u, palette, base.Derive(uint64(u)))
		nodes[u] = sns[u]
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100_000
	}
	eng := opt.Engine
	if eng == nil {
		eng = net.RunSync
	}
	netRes, err := eng(g, nodes, net.Config{MaxRounds: strongPhases * maxRounds})
	if err != nil {
		return nil, err
	}
	res := &StrongResult{
		Colors:     make([]int, d.A()),
		Palette:    palette,
		CommRounds: netRes.Rounds,
		Rounds:     (netRes.Rounds + strongPhases - 1) / strongPhases,
		Messages:   netRes.Messages,
		Terminated: netRes.Terminated,
	}
	for i := range res.Colors {
		res.Colors[i] = -1
	}
	for _, n := range sns {
		for a, c := range n.colors {
			if res.Colors[a] == -1 {
				res.Colors[a] = c
			} else if res.Colors[a] != c {
				return nil, fmt.Errorf("mpr: arc %v colored %d and %d", d.ArcAt(a), res.Colors[a], c)
			}
		}
	}
	seen := map[int]bool{}
	for _, c := range res.Colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	res.NumColors = len(seen)
	return res, nil
}

// maxConflictDegree returns the largest number of arcs conflicting with
// any single arc — the palette sizing bound (computed centrally; the
// baseline's informational advantage, like Color's global Δ).
func maxConflictDegree(d *graph.Digraph) int {
	g := d.Under()
	best := 0
	for a := graph.ArcID(0); int(a) < d.A(); a++ {
		arc := d.ArcAt(a)
		seen := map[graph.ArcID]bool{}
		for _, end := range []int{arc.From, arc.To} {
			for _, w := range append([]int{end}, g.Neighbors(end)...) {
				for _, b := range d.OutArcs(w) {
					for _, bb := range []graph.ArcID{b, d.ReverseOf(b)} {
						if bb != a && d.ArcsConflict(a, bb) {
							seen[bb] = true
						}
					}
				}
			}
		}
		if len(seen) > best {
			best = len(seen)
		}
	}
	return best
}

type strongNode struct {
	id      int
	d       *graph.Digraph
	g       *graph.Graph
	palette int
	r       *rng.Rand

	colors       map[graph.ArcID]int
	uncoloredOut []graph.ArcID // arcs this node owns (tail) and must color
	remaining    int           // incident arcs still uncolored (in + out)
	dead         map[int]bool  // channels dead for this node's neighborhood
	deadNbr      []map[int]bool
	nbrIndex     map[int]int
	announced    map[int]bool
	deadQueue    []int

	picks      map[graph.ArcID]int // own tentative picks this round
	heardPicks []msg.Message       // picks heard in phases 0-1 (claims + relays)
	selfVeto   map[graph.ArcID]bool
	// verdicts holds this endpoint's keep/drop per incident pick; a pick
	// commits only when BOTH endpoints kept it (every legal veto witness
	// is adjacent to at least one endpoint, so the AND catches vetoes
	// the other endpoint's side heard).
	verdicts map[graph.ArcID]verdict
	paints   []msg.Paint // finalizations + dead deltas to announce
	flushed  bool
}

type verdict struct {
	color int
	keep  bool
}

func newStrongNode(d *graph.Digraph, u, palette int, r *rng.Rand) *strongNode {
	g := d.Under()
	n := &strongNode{
		id: u, d: d, g: g, palette: palette, r: r,
		colors:    make(map[graph.ArcID]int),
		remaining: 2 * g.Degree(u),
		dead:      make(map[int]bool),
		deadNbr:   make([]map[int]bool, g.Degree(u)),
		nbrIndex:  make(map[int]int, g.Degree(u)),
		announced: make(map[int]bool),
	}
	for i, v := range g.Neighbors(u) {
		n.deadNbr[i] = make(map[int]bool)
		n.nbrIndex[v] = i
	}
	n.uncoloredOut = append(n.uncoloredOut, d.OutArcs(u)...)
	return n
}

func (n *strongNode) ID() int { return n.id }

func (n *strongNode) Done() bool {
	return n.remaining == 0 && len(n.paints) == 0 && len(n.deadQueue) == 0 && n.flushed
}

func (n *strongNode) Step(round int, inbox []msg.Message) []msg.Message {
	switch round % strongPhases {
	case 0:
		return n.phasePick(inbox)
	case 1:
		return n.phaseRelay(inbox)
	case 2:
		return n.phaseVeto(inbox)
	default:
		return n.phaseVerdict(inbox)
	}
}

// phasePick finalizes the previous round's picks from the two verdict
// streams, applies announced finalizations/dead-lists, and broadcasts a
// tentative channel for each owned uncolored arc.
func (n *strongNode) phasePick(inbox []msg.Message) []msg.Message {
	partner := map[graph.ArcID]bool{}
	for _, m := range inbox {
		switch m.Kind {
		case msg.KindDecide:
			if m.Keep {
				partner[graph.ArcID(m.Edge)] = true
			}
		case msg.KindUpdate:
			for _, p := range m.Paints {
				if p.Edge >= 0 {
					n.applyFinal(graph.ArcID(p.Edge), p.Color, m.From)
				} else if i, ok := n.nbrIndex[m.From]; ok {
					n.deadNbr[i][p.Color] = true
				}
			}
		}
	}
	// Commit picks both endpoints kept; queue the announcement.
	arcs := make([]graph.ArcID, 0, len(n.verdicts))
	for a := range n.verdicts {
		arcs = append(arcs, a)
	}
	sortArcIDs(arcs)
	for _, a := range arcs {
		v := n.verdicts[a]
		if v.keep && partner[a] {
			if _, dup := n.colors[a]; !dup {
				n.applyFinal(a, v.color, n.id)
				n.paints = append(n.paints, msg.Paint{Edge: int(a), Color: v.color})
			}
		}
	}
	n.verdicts = nil
	if n.remaining == 0 {
		n.flushed = len(n.paints) == 0 && len(n.deadQueue) == 0
	}
	n.picks = make(map[graph.ArcID]int, len(n.uncoloredOut))
	n.heardPicks = nil
	var out []msg.Message
	for _, a := range n.uncoloredOut {
		v := n.d.ArcAt(a).To
		nv := n.deadNbr[n.nbrIndex[v]]
		var avail []int
		for c := 0; c < n.palette; c++ {
			if !n.dead[c] && !nv[c] {
				avail = append(avail, c)
			}
		}
		if len(avail) == 0 {
			continue // relayed dead-lists over-approximate; retry later
		}
		c := avail[n.r.Intn(len(avail))]
		n.picks[a] = c
		out = append(out, msg.Message{
			Kind: msg.KindClaim, From: n.id, To: msg.Broadcast, Edge: int(a), Color: c,
		})
	}
	return out
}

// phaseRelay: heads rebroadcast picks for their incoming arcs so every
// vertex adjacent to either endpoint can witness conflicts.
func (n *strongNode) phaseRelay(inbox []msg.Message) []msg.Message {
	var out []msg.Message
	for _, m := range inbox {
		if m.Kind != msg.KindClaim {
			continue
		}
		n.heardPicks = append(n.heardPicks, m)
		if n.d.ArcAt(graph.ArcID(m.Edge)).To == n.id {
			out = append(out, msg.Message{
				Kind: msg.KindClaim, From: n.id, To: msg.Broadcast, Edge: m.Edge, Color: m.Color,
			})
		}
	}
	return out
}

// phaseVeto: with all picks visible (own + heard + relayed), this vertex
// vetoes the conflicts it can witness soundly:
//
//   - same-channel pick collisions involving one of its incident arcs
//     (every pick heard here has an endpoint in this vertex's closed
//     neighborhood, so the collision is a genuine distance-2 conflict);
//   - a pick on an incident arc whose channel is dead here (the dead set
//     holds exactly the channels of finalized arcs with an endpoint in
//     this vertex's closed neighborhood — all conflicting);
//   - any heard pick whose channel is used by one of this vertex's own
//     finalized arcs (this vertex is adjacent to the pick's endpoint, so
//     its own arcs conflict with the pick). The broader dead set must
//     NOT be used for non-incident picks: those channels may belong to
//     arcs two hops from the pick, and over-vetoing them forever would
//     livelock legitimate picks.
func (n *strongNode) phaseVeto(inbox []msg.Message) []msg.Message {
	for _, m := range inbox {
		if m.Kind == msg.KindClaim {
			n.heardPicks = append(n.heardPicks, m)
		}
	}
	ownChannels := map[int]bool{}
	for _, c := range n.colors {
		ownChannels[c] = true
	}
	// Dedup picks by arc (a pick may arrive via owner and relays).
	chanCount := map[int]int{}
	pickOf := map[graph.ArcID]int{}
	for a, c := range n.picks {
		pickOf[a] = c
	}
	for _, m := range n.heardPicks {
		pickOf[graph.ArcID(m.Edge)] = m.Color
	}
	for _, c := range pickOf {
		chanCount[c]++
	}
	n.selfVeto = make(map[graph.ArcID]bool)
	n.verdicts = make(map[graph.ArcID]verdict)
	var out []msg.Message
	arcs := make([]graph.ArcID, 0, len(pickOf))
	for a := range pickOf {
		arcs = append(arcs, a)
	}
	sortArcIDs(arcs)
	for _, a := range arcs {
		c := pickOf[a]
		arc := n.d.ArcAt(a)
		incident := arc.From == n.id || arc.To == n.id
		if incident {
			// Remember incident picks: this endpoint issues a verdict
			// for each at the next phase.
			n.verdicts[a] = verdict{color: c, keep: true}
		}
		bad := ownChannels[c] ||
			(incident && (chanCount[c] > 1 || n.dead[c]))
		if bad {
			n.selfVeto[a] = true
			out = append(out, msg.Message{
				Kind: msg.KindDecide, From: n.id, To: msg.Broadcast, Edge: int(a), Color: c, Keep: false,
			})
		}
	}
	return out
}

func sortArcIDs(s []graph.ArcID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// phaseVerdict folds the vetoes into this endpoint's keep/drop verdict
// for each incident pick and broadcasts the verdicts, together with the
// previous round's finalization announcements and dead-list deltas.
func (n *strongNode) phaseVerdict(inbox []msg.Message) []msg.Message {
	vetoed := map[graph.ArcID]bool{}
	for _, m := range inbox {
		if m.Kind == msg.KindDecide && !m.Keep {
			vetoed[graph.ArcID(m.Edge)] = true
		}
	}
	var out []msg.Message
	arcs := make([]graph.ArcID, 0, len(n.verdicts))
	for a := range n.verdicts {
		arcs = append(arcs, a)
	}
	sortArcIDs(arcs)
	for _, a := range arcs {
		v := n.verdicts[a]
		v.keep = !vetoed[a] && !n.selfVeto[a]
		n.verdicts[a] = v
		out = append(out, msg.Message{
			Kind: msg.KindDecide, From: n.id, To: msg.Broadcast,
			Edge: int(a), Color: v.color, Keep: v.keep,
		})
	}
	n.picks = nil
	n.heardPicks = nil
	n.selfVeto = nil
	paints := n.paints
	n.paints = nil
	for _, c := range n.deadQueue {
		paints = append(paints, msg.Paint{Edge: -1, Color: c})
	}
	n.deadQueue = nil
	if len(paints) > 0 {
		out = append(out, msg.Message{
			Kind: msg.KindUpdate, From: n.id, To: msg.Broadcast, Edge: -1, Color: -1, Paints: paints,
		})
	}
	return out
}

// applyFinal records a finalized arc channel and updates dead lists.
func (n *strongNode) applyFinal(a graph.ArcID, c, from int) {
	arc := n.d.ArcAt(a)
	incident := arc.From == n.id || arc.To == n.id
	if incident {
		if _, dup := n.colors[a]; dup {
			return
		}
		n.colors[a] = c
		n.remaining--
		if arc.From == n.id {
			for i, id := range n.uncoloredOut {
				if id == a {
					n.uncoloredOut[i] = n.uncoloredOut[len(n.uncoloredOut)-1]
					n.uncoloredOut = n.uncoloredOut[:len(n.uncoloredOut)-1]
					break
				}
			}
		}
	}
	// Any finalized arc heard here has an endpoint adjacent to (or equal
	// to) this vertex, so its channel conflicts with every arc incident
	// here: mark it dead and queue the dead-list delta for neighbors.
	n.markDead(c)
}

func (n *strongNode) markDead(c int) {
	if n.dead[c] {
		return
	}
	n.dead[c] = true
	if !n.announced[c] {
		n.announced[c] = true
		n.deadQueue = append(n.deadQueue, c)
	}
}
