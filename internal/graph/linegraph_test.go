package graph

import (
	"testing"
	"testing/quick"

	"dima/internal/rng"
)

func TestLineGraphPath(t *testing.T) {
	// P4 has 3 edges in a path; L(P4) = P3.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	lg := LineGraph(g)
	if lg.N() != 3 || lg.M() != 2 {
		t.Fatalf("L(P4): N=%d M=%d, want 3,2", lg.N(), lg.M())
	}
	if !lg.HasEdge(0, 1) || !lg.HasEdge(1, 2) || lg.HasEdge(0, 2) {
		t.Fatal("L(P4) adjacency wrong")
	}
}

func TestLineGraphStar(t *testing.T) {
	// L(K_{1,n}) = K_n: all star edges share the center.
	g := New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, v)
	}
	lg := LineGraph(g)
	if lg.N() != 4 || lg.M() != 6 {
		t.Fatalf("L(star): N=%d M=%d, want K4", lg.N(), lg.M())
	}
}

func TestLineGraphTriangle(t *testing.T) {
	// L(C3) = C3.
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	lg := LineGraph(g)
	if lg.N() != 3 || lg.M() != 3 {
		t.Fatalf("L(C3): N=%d M=%d", lg.N(), lg.M())
	}
}

func TestLineGraphEdgeCountFormula(t *testing.T) {
	// |E(L(G))| = sum_v C(deg v, 2).
	f := func(seed uint64) bool {
		n := 6 + int(seed%20)
		g := randomGraph(seed, n, n+3)
		lg := LineGraph(g)
		want := 0
		for u := 0; u < g.N(); u++ {
			d := g.Degree(u)
			want += d * (d - 1) / 2
		}
		// Two edges can share at most one vertex in a simple graph, so
		// no pair is double counted.
		return lg.M() == want && lg.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSquarePath(t *testing.T) {
	// P4²: extra edges (0,2), (1,3).
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	sq := Square(g)
	if sq.M() != 5 {
		t.Fatalf("P4² has %d edges, want 5", sq.M())
	}
	if !sq.HasEdge(0, 2) || !sq.HasEdge(1, 3) || sq.HasEdge(0, 3) {
		t.Fatal("P4² adjacency wrong")
	}
}

func TestSquareContainsOriginal(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%20)
		g := randomGraph(seed, n, n)
		sq := Square(g)
		for _, e := range g.Edges() {
			if !sq.HasEdge(e.U, e.V) {
				return false
			}
		}
		return sq.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSquareDistanceSemantics(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	// vertex 5 isolated
	sq := Square(g)
	dist := g.BFSDistances(0)
	for v := 1; v < g.N(); v++ {
		want := dist[v] == 1 || dist[v] == 2
		if sq.HasEdge(0, v) != want {
			t.Fatalf("square edge (0,%d) = %v, distance %d", v, sq.HasEdge(0, v), dist[v])
		}
	}
}

func TestProperVertexColoring(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if !ProperVertexColoring(g, []int{0, 1, 0}) {
		t.Fatal("valid coloring rejected")
	}
	if ProperVertexColoring(g, []int{0, 0, 1}) {
		t.Fatal("conflict accepted")
	}
	if ProperVertexColoring(g, []int{0, -1, 0}) {
		t.Fatal("negative color accepted")
	}
	if ProperVertexColoring(g, []int{0, 1}) {
		t.Fatal("short coloring accepted")
	}
}

// Strong edge coloring of G == proper vertex coloring of L(G)². This is
// the independent oracle used to cross-check verify.StrongColoring.
func TestSquareOfLineGraphOracle(t *testing.T) {
	r := rng.New(5)
	g := New(12)
	for g.M() < 18 {
		u, v := r.Intn(12), r.Intn(12)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	lsq := Square(LineGraph(g))
	// Color L(G)² greedily — by construction a proper vertex coloring.
	colors := make([]int, lsq.N())
	for u := 0; u < lsq.N(); u++ {
		used := map[int]bool{}
		for _, v := range lsq.Neighbors(u) {
			if v < u {
				used[colors[v]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[u] = c
	}
	if !ProperVertexColoring(lsq, colors) {
		t.Fatal("greedy square coloring not proper")
	}
	// Edges of g at line-graph-square distance share no color: this is
	// exactly the undirected strong edge coloring condition.
	for a := 0; a < g.M(); a++ {
		for b := a + 1; b < g.M(); b++ {
			if g.EdgesWithinDistance1(EdgeID(a), EdgeID(b)) != lsq.HasEdge(a, b) {
				t.Fatalf("conflict relation mismatch for edges %d,%d", a, b)
			}
		}
	}
}
