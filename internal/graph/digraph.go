package graph

import "fmt"

// ArcID identifies a directed edge (arc) within a Digraph.
type ArcID int

// Arc is a directed edge.
type Arc struct {
	From, To int
}

func (a Arc) String() string { return fmt.Sprintf("%d->%d", a.From, a.To) }

// Reverse returns the arc with endpoints swapped.
func (a Arc) Reverse() Arc { return Arc{a.To, a.From} }

// Digraph is a symmetric digraph: for every arc (u,v) the reverse arc
// (v,u) is also present. It is the input model of Algorithm 2 (DiMa2Ed),
// which colors each direction of a bidirectional link independently —
// the natural model of directed channel assignment in an ad-hoc network.
//
// A Digraph wraps the underlying undirected Graph: arc 2e is the
// low-to-high direction of undirected edge e, arc 2e+1 its reverse.
type Digraph struct {
	under *Graph
}

// NewSymmetric returns the symmetric digraph over the undirected graph g.
// The digraph shares g's storage; g must not be modified afterwards.
func NewSymmetric(g *Graph) *Digraph {
	return &Digraph{under: g}
}

// Under returns the underlying undirected graph.
func (d *Digraph) Under() *Graph { return d.under }

// N returns the number of vertices.
func (d *Digraph) N() int { return d.under.n }

// A returns the number of arcs (twice the number of undirected edges).
func (d *Digraph) A() int { return 2 * d.under.M() }

// ArcAt returns the endpoints of arc id.
func (d *Digraph) ArcAt(id ArcID) Arc {
	e := d.under.edges[id/2]
	if id%2 == 0 {
		return Arc{e.U, e.V}
	}
	return Arc{e.V, e.U}
}

// ArcIDOf returns the id of arc (from, to).
func (d *Digraph) ArcIDOf(from, to int) (ArcID, bool) {
	eid, ok := d.under.EdgeIDOf(from, to)
	if !ok {
		return -1, false
	}
	e := d.under.edges[eid]
	if e.U == from {
		return ArcID(2 * eid), true
	}
	return ArcID(2*eid + 1), true
}

// ReverseOf returns the id of the reverse arc of id.
func (d *Digraph) ReverseOf(id ArcID) ArcID { return id ^ 1 }

// EdgeOf returns the undirected edge underlying arc id.
func (d *Digraph) EdgeOf(id ArcID) EdgeID { return EdgeID(id / 2) }

// OutArcs returns the ids of arcs leaving u, aligned with
// Under().Neighbors(u).
func (d *Digraph) OutArcs(u int) []ArcID {
	inc := d.under.inc[u]
	out := make([]ArcID, len(inc))
	for i, eid := range inc {
		e := d.under.edges[eid]
		if e.U == u {
			out[i] = ArcID(2 * eid)
		} else {
			out[i] = ArcID(2*eid + 1)
		}
	}
	return out
}

// InArcs returns the ids of arcs entering u, aligned with
// Under().Neighbors(u).
func (d *Digraph) InArcs(u int) []ArcID {
	out := d.OutArcs(u)
	for i := range out {
		out[i] ^= 1
	}
	return out
}

// OutDegree returns the out-degree of u (equal to the undirected degree).
func (d *Digraph) OutDegree(u int) int { return d.under.Degree(u) }

// MaxDegree returns Δ of the underlying undirected graph, the parameter
// the paper's round bounds are stated in.
func (d *Digraph) MaxDegree() int { return d.under.MaxDegree() }

// ArcsConflict reports whether two distinct arcs conflict under the
// paper's Definition 2: a strong directed edge coloring must give
// different colors to any two arcs whose endpoint sets intersect or are
// joined by an edge of the graph. In particular an arc conflicts with its
// own reverse.
func (d *Digraph) ArcsConflict(a, b ArcID) bool {
	if a == b {
		return false
	}
	if a/2 == b/2 {
		return true // an arc and its reverse share both endpoints
	}
	return d.under.EdgesWithinDistance1(EdgeID(a/2), EdgeID(b/2))
}
