package graph

// Components returns the connected components of g as slices of vertex
// ids, each sorted ascending, ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = queue[:0]
		queue = append(queue, s)
		comp := []int{}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.Components()) == 1
}

// BFSDistances returns the unweighted shortest-path distance from src to
// every vertex; unreachable vertices get -1.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Triangles returns the number of triangles in g. Used by generator tests
// (small-world graphs must be clustered; ER graphs must not be).
func (g *Graph) Triangles() int {
	count := 0
	for _, e := range g.edges {
		u, v := e.U, e.V
		// Iterate the smaller adjacency list.
		a, b := u, v
		if len(g.adj[a]) > len(g.adj[b]) {
			a, b = b, a
		}
		// Each triangle {x<y<z} is counted exactly once, at edge (x,y)
		// with apex w = z > v.
		for _, w := range g.adj[a] {
			if w > v && g.HasEdge(b, w) {
				count++
			}
		}
	}
	return count
}

// ClusteringCoefficient returns the global clustering coefficient
// (transitivity): 3 × triangles / open-or-closed triples. Zero for
// graphs without paths of length two. Small-world generators are
// validated against it: a Watts–Strogatz graph keeps high clustering at
// ER-level densities.
func (g *Graph) ClusteringCoefficient() float64 {
	triples := 0
	for u := 0; u < g.n; u++ {
		d := len(g.adj[u])
		triples += d * (d - 1) / 2
	}
	if triples == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(triples)
}

// insertionSort sorts small int slices in place without pulling in sort
// for hot paths.
func insertionSort(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
