package graph

import "testing"

func TestDigraphBasics(t *testing.T) {
	d := NewSymmetric(path3()) // 0-1-2
	if d.N() != 3 || d.A() != 4 {
		t.Fatalf("N=%d A=%d", d.N(), d.A())
	}
	if d.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", d.MaxDegree())
	}
}

func TestArcAtAndReverse(t *testing.T) {
	d := NewSymmetric(path3())
	a0 := d.ArcAt(0)
	if a0 != (Arc{0, 1}) {
		t.Fatalf("arc 0 = %v", a0)
	}
	a1 := d.ArcAt(1)
	if a1 != (Arc{1, 0}) {
		t.Fatalf("arc 1 = %v", a1)
	}
	if d.ReverseOf(0) != 1 || d.ReverseOf(1) != 0 {
		t.Fatal("ReverseOf wrong for pair 0/1")
	}
	if d.ReverseOf(2) != 3 {
		t.Fatal("ReverseOf wrong for pair 2/3")
	}
	if a0.Reverse() != a1 {
		t.Fatal("Arc.Reverse wrong")
	}
}

func TestArcIDOf(t *testing.T) {
	d := NewSymmetric(path3())
	for id := ArcID(0); id < ArcID(d.A()); id++ {
		a := d.ArcAt(id)
		got, ok := d.ArcIDOf(a.From, a.To)
		if !ok || got != id {
			t.Fatalf("ArcIDOf(%v) = %d,%v want %d", a, got, ok, id)
		}
	}
	if _, ok := d.ArcIDOf(0, 2); ok {
		t.Fatal("ArcIDOf found nonexistent arc")
	}
}

func TestOutInArcs(t *testing.T) {
	d := NewSymmetric(path3())
	out := d.OutArcs(1)
	if len(out) != 2 {
		t.Fatalf("OutArcs(1) = %v", out)
	}
	for _, id := range out {
		if a := d.ArcAt(id); a.From != 1 {
			t.Fatalf("out arc %v does not leave 1", a)
		}
	}
	in := d.InArcs(1)
	for _, id := range in {
		if a := d.ArcAt(id); a.To != 1 {
			t.Fatalf("in arc %v does not enter 1", a)
		}
	}
	// Alignment with Neighbors.
	nbrs := d.Under().Neighbors(1)
	for i, id := range out {
		if d.ArcAt(id).To != nbrs[i] {
			t.Fatal("OutArcs not aligned with Neighbors")
		}
	}
}

func TestEdgeOf(t *testing.T) {
	d := NewSymmetric(path3())
	if d.EdgeOf(0) != 0 || d.EdgeOf(1) != 0 || d.EdgeOf(2) != 1 || d.EdgeOf(3) != 1 {
		t.Fatal("EdgeOf mapping wrong")
	}
}

func TestArcsConflict(t *testing.T) {
	// Path 0-1-2-3-4.
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	d := NewSymmetric(g)

	arc := func(f, to int) ArcID {
		id, ok := d.ArcIDOf(f, to)
		if !ok {
			t.Fatalf("missing arc %d->%d", f, to)
		}
		return id
	}

	// An arc conflicts with its reverse (Definition 2: e(u,v) vs e(v,u)).
	if !d.ArcsConflict(arc(0, 1), arc(1, 0)) {
		t.Fatal("arc must conflict with its reverse")
	}
	// Adjacent arcs conflict.
	if !d.ArcsConflict(arc(0, 1), arc(1, 2)) {
		t.Fatal("adjacent arcs must conflict")
	}
	// Arcs joined by one edge conflict: (0,1) and (2,3) joined by (1,2).
	if !d.ArcsConflict(arc(0, 1), arc(2, 3)) {
		t.Fatal("arcs joined by a common edge must conflict")
	}
	// Arcs at distance 2 do not conflict: (0,1) and (3,4).
	if d.ArcsConflict(arc(0, 1), arc(3, 4)) {
		t.Fatal("distant arcs must not conflict")
	}
	// No self-conflict.
	if d.ArcsConflict(arc(0, 1), arc(0, 1)) {
		t.Fatal("arc conflicts with itself")
	}
}
