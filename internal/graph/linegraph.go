package graph

// LineGraph returns L(g): one vertex per edge of g, with two line-graph
// vertices adjacent when their edges share an endpoint. Vertex i of the
// line graph corresponds to EdgeID i of g.
//
// A proper *edge* coloring of g is exactly a proper *vertex* coloring of
// L(g); the verify package uses this as an independent oracle for the
// coloring checkers.
func LineGraph(g *Graph) *Graph {
	lg := New(g.M())
	// Enumerate pairs of edges sharing a vertex: for each vertex, all
	// pairs of its incident edges.
	for u := 0; u < g.N(); u++ {
		inc := g.IncidentEdges(u)
		for i := 0; i < len(inc); i++ {
			for j := i + 1; j < len(inc); j++ {
				a, b := int(inc[i]), int(inc[j])
				if !lg.HasEdge(a, b) {
					lg.MustAddEdge(a, b)
				}
			}
		}
	}
	return lg
}

// Square returns g²: same vertices, with an edge between any two
// distinct vertices at distance 1 or 2 in g.
//
// A strong edge coloring of g is exactly a proper vertex coloring of
// L(g)² — the square of the line graph.
func Square(g *Graph) *Graph {
	sq := New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.adj[u] {
			if u < v && !sq.HasEdge(u, v) {
				sq.MustAddEdge(u, v)
			}
			for _, w := range g.adj[v] {
				if u < w && !sq.HasEdge(u, w) {
					sq.MustAddEdge(u, w)
				}
			}
		}
	}
	return sq
}

// ProperVertexColoring reports whether colors (indexed by vertex) is a
// proper vertex coloring of g with no negative entries.
func ProperVertexColoring(g *Graph, colors []int) bool {
	if len(colors) != g.N() {
		return false
	}
	for _, c := range colors {
		if c < 0 {
			return false
		}
	}
	for _, e := range g.edges {
		if colors[e.U] == colors[e.V] {
			return false
		}
	}
	return true
}
