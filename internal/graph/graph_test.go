package graph

import (
	"testing"
	"testing/quick"

	"dima/internal/rng"
)

func path3() *Graph {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	return g
}

func triangle() *Graph {
	g := New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("New(5): N=%d M=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 0 || g.MinDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph degree stats nonzero")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	id, err := g.AddEdge(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first edge id = %d", id)
	}
	if e := g.EdgeAt(id); e != (Edge{0, 2}) {
		t.Fatalf("edge not normalized: %v", e)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("phantom edge")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 1 || g.Degree(1) != 0 {
		t.Fatal("degrees wrong after one edge")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddEdge(-1, 1); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if _, err := g.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	g.MustAddEdge(0, 1)
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d after rejections, want 1", g.M())
	}
}

func TestEdgeIDOf(t *testing.T) {
	g := path3()
	id, ok := g.EdgeIDOf(2, 1)
	if !ok || id != 1 {
		t.Fatalf("EdgeIDOf(2,1) = %d,%v", id, ok)
	}
	if _, ok := g.EdgeIDOf(0, 2); ok {
		t.Fatal("EdgeIDOf found nonexistent edge")
	}
	if _, ok := g.EdgeIDOf(0, 0); ok {
		t.Fatal("EdgeIDOf accepted self-loop query")
	}
	if _, ok := g.EdgeIDOf(-1, 5); ok {
		t.Fatal("EdgeIDOf accepted out-of-range query")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{3, 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestIncidentEdgesAlignment(t *testing.T) {
	g := New(4)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(1, 3)
	nbrs := g.Neighbors(1)
	ids := g.IncidentEdges(1)
	if len(nbrs) != 3 || len(ids) != 3 {
		t.Fatalf("lengths: %d nbrs, %d ids", len(nbrs), len(ids))
	}
	for i, v := range nbrs {
		e := g.EdgeAt(ids[i])
		if e != (Edge{1, v}.Norm()) {
			t.Fatalf("incidence misaligned at %d: %v vs neighbor %d", i, e, v)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := New(4) // star K_{1,3}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	if g.MaxDegree() != 3 || g.MinDegree() != 1 {
		t.Fatalf("star degrees: max %d min %d", g.MaxDegree(), g.MinDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("AvgDegree = %v, want 1.5", got)
	}
	h := g.DegreeHistogram()
	if len(h) != 4 || h[1] != 3 || h[3] != 1 || h[0] != 0 || h[2] != 0 {
		t.Fatalf("histogram %v", h)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := path3()
	c := g.Clone()
	c.MustAddEdge(0, 2)
	if g.M() != 2 || c.M() != 3 {
		t.Fatalf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortedNeighbors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 1)
	s := g.SortedNeighbors(2)
	want := []int{0, 1, 3}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("SortedNeighbors = %v", s)
		}
	}
}

func TestValidate(t *testing.T) {
	g := triangle()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the edge list: swap endpoints so normalization breaks.
	g.edges[0] = Edge{1, 0}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted graph")
	}
}

func TestEdgesAdjacent(t *testing.T) {
	g := New(5)
	a := g.MustAddEdge(0, 1)
	b := g.MustAddEdge(1, 2)
	c := g.MustAddEdge(3, 4)
	if !g.EdgesAdjacent(a, b) {
		t.Fatal("(0,1) and (1,2) should be adjacent")
	}
	if g.EdgesAdjacent(a, c) {
		t.Fatal("(0,1) and (3,4) should not be adjacent")
	}
	if g.EdgesAdjacent(a, a) {
		t.Fatal("edge adjacent to itself")
	}
}

func TestEdgesWithinDistance1(t *testing.T) {
	// Path 0-1-2-3-4: edges e0=(0,1) e1=(1,2) e2=(2,3) e3=(3,4).
	g := New(5)
	e0 := g.MustAddEdge(0, 1)
	e1 := g.MustAddEdge(1, 2)
	e2 := g.MustAddEdge(2, 3)
	e3 := g.MustAddEdge(3, 4)
	if !g.EdgesWithinDistance1(e0, e1) {
		t.Fatal("adjacent edges must be within distance 1")
	}
	if !g.EdgesWithinDistance1(e0, e2) {
		t.Fatal("edges joined by e1 must be within distance 1")
	}
	if g.EdgesWithinDistance1(e0, e3) {
		t.Fatal("edges two apart must not conflict")
	}
	if g.EdgesWithinDistance1(e1, e1) {
		t.Fatal("edge conflicts with itself")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components: %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("first component %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Fatalf("isolated vertex component %v", comps[1])
	}
	if len(comps[2]) != 2 || comps[2][0] != 4 {
		t.Fatalf("last component %v", comps[2])
	}
}

func TestIsConnected(t *testing.T) {
	if !New(0).IsConnected() || !New(1).IsConnected() {
		t.Fatal("trivial graphs must be connected")
	}
	if New(2).IsConnected() {
		t.Fatal("two isolated vertices reported connected")
	}
	if !path3().IsConnected() {
		t.Fatal("path reported disconnected")
	}
}

func TestBFSDistances(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFSDistances = %v, want %v", d, want)
		}
	}
}

func TestTriangles(t *testing.T) {
	if n := triangle().Triangles(); n != 1 {
		t.Fatalf("triangle count %d, want 1", n)
	}
	if n := path3().Triangles(); n != 0 {
		t.Fatalf("path triangle count %d, want 0", n)
	}
	// K4 has 4 triangles.
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.MustAddEdge(u, v)
		}
	}
	if n := g.Triangles(); n != 4 {
		t.Fatalf("K4 triangle count %d, want 4", n)
	}
}

// randomGraph builds a random simple graph for property tests.
func randomGraph(seed uint64, n, m int) *Graph {
	r := rng.New(seed)
	g := New(n)
	for g.M() < m {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return g
}

func TestQuickValidateRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%30)
		maxM := n * (n - 1) / 2
		m := int(seed/7) % (maxM + 1)
		g := randomGraph(seed, n, m)
		return g.Validate() == nil && g.M() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSum(t *testing.T) {
	f := func(seed uint64) bool {
		n := 4 + int(seed%20)
		g := randomGraph(seed, n, n)
		sum := 0
		for u := 0; u < g.N(); u++ {
			sum += g.Degree(u)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeIDRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		n := 4 + int(seed%20)
		g := randomGraph(seed, n, n)
		for id, e := range g.Edges() {
			got, ok := g.EdgeIDOf(e.U, e.V)
			if !ok || got != EdgeID(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	if c := triangle().ClusteringCoefficient(); c != 1 {
		t.Fatalf("triangle clustering %v, want 1", c)
	}
	if c := path3().ClusteringCoefficient(); c != 0 {
		t.Fatalf("path clustering %v, want 0", c)
	}
	if c := New(5).ClusteringCoefficient(); c != 0 {
		t.Fatalf("empty clustering %v, want 0", c)
	}
	// K4: every triple closes.
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.MustAddEdge(u, v)
		}
	}
	if c := g.ClusteringCoefficient(); c != 1 {
		t.Fatalf("K4 clustering %v, want 1", c)
	}
}
