// Package graph provides the graph substrate for the dima simulator:
// simple undirected graphs with stable edge identifiers, and symmetric
// digraphs derived from them for the strong (distance-2) edge coloring
// algorithm.
//
// Vertices are dense integers [0, N). Each undirected edge carries a
// stable EdgeID assigned in insertion order; the strong-coloring
// algorithm works on arcs (directed edges), each with a stable ArcID.
// All query methods are read-only and safe for concurrent use once the
// graph has been built.
package graph

import (
	"fmt"
	"sort"
)

// EdgeID identifies an undirected edge within a Graph.
type EdgeID int

// Edge is an undirected edge with normalized endpoints U < V.
type Edge struct {
	U, V int
}

// Norm returns e with endpoints ordered so that U < V.
func (e Edge) Norm() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not w. It panics if w is not an
// endpoint of e.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d not an endpoint of %v", w, e))
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph. Build it with New and AddEdge;
// afterwards it is immutable by convention and safe for concurrent reads.
type Graph struct {
	n     int
	adj   [][]int    // adj[u] = sorted-by-insertion neighbor list
	inc   [][]EdgeID // inc[u][i] = id of edge (u, adj[u][i])
	edges []Edge     // edges[id] = normalized endpoints
	index map[Edge]EdgeID
}

// New returns an empty graph on n vertices. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:     n,
		adj:   make([][]int, n),
		inc:   make([][]EdgeID, n),
		index: make(map[Edge]EdgeID),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v} and returns its id.
// Self-loops, duplicate edges, and out-of-range endpoints are errors.
func (g *Graph) AddEdge(u, v int) (EdgeID, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at %d", u)
	}
	e := Edge{u, v}.Norm()
	if _, dup := g.index[e]; dup {
		return -1, fmt.Errorf("graph: duplicate edge %v", e)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, e)
	g.index[e] = id
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.inc[u] = append(g.inc[u], id)
	g.inc[v] = append(g.inc[v], id)
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; for tests and generators
// whose construction logic guarantees validity.
func (g *Graph) MustAddEdge(u, v int) EdgeID {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	_, ok := g.index[Edge{u, v}.Norm()]
	return ok
}

// EdgeIDOf returns the id of edge {u, v}.
func (g *Graph) EdgeIDOf(u, v int) (EdgeID, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return -1, false
	}
	id, ok := g.index[Edge{u, v}.Norm()]
	return id, ok
}

// EdgeAt returns the endpoints of edge id.
func (g *Graph) EdgeAt(id EdgeID) Edge {
	return g.edges[id]
}

// Edges returns the edge list indexed by EdgeID. The caller must not
// modify the returned slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns u's neighbor list in insertion order. The caller must
// not modify the returned slice.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// IncidentEdges returns the ids of edges incident to u, aligned with
// Neighbors(u): IncidentEdges(u)[i] is the edge to Neighbors(u)[i].
func (g *Graph) IncidentEdges(u int) []EdgeID { return g.inc[u] }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns Δ, the maximum degree. Zero for an empty graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// MinDegree returns the minimum degree; zero for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := len(g.adj[0])
	for u := 1; u < g.n; u++ {
		if len(g.adj[u]) < d {
			d = len(g.adj[u])
		}
	}
	return d
}

// AvgDegree returns the average degree 2M/N; zero for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// for d in [0, Δ].
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.n; u++ {
		counts[len(g.adj[u])]++
	}
	return counts
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.MustAddEdge(e.U, e.V)
	}
	return c
}

// SortedNeighbors returns a sorted copy of u's neighbor list; useful for
// deterministic iteration in tests and reports.
func (g *Graph) SortedNeighbors(u int) []int {
	s := append([]int(nil), g.adj[u]...)
	sort.Ints(s)
	return s
}

// Validate checks internal consistency (degree sums, index round-trips).
// It returns nil for graphs built through AddEdge; it exists to guard
// deserialized graphs and as a property-test anchor.
func (g *Graph) Validate() error {
	degSum := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(g.inc[u]) {
			return fmt.Errorf("graph: vertex %d adjacency/incidence length mismatch", u)
		}
		degSum += len(g.adj[u])
		for i, v := range g.adj[u] {
			id := g.inc[u][i]
			if int(id) < 0 || int(id) >= len(g.edges) {
				return fmt.Errorf("graph: vertex %d has invalid incident edge id %d", u, id)
			}
			e := g.edges[id]
			if e != (Edge{u, v}.Norm()) {
				return fmt.Errorf("graph: incidence mismatch at %d: edge %d is %v, want {%d,%d}", u, id, e, u, v)
			}
		}
	}
	if degSum != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2M %d", degSum, 2*len(g.edges))
	}
	for id, e := range g.edges {
		if got, ok := g.index[e]; !ok || got != EdgeID(id) {
			return fmt.Errorf("graph: index round-trip failed for edge %d %v", id, e)
		}
		if e.U >= e.V {
			return fmt.Errorf("graph: edge %d %v not normalized", id, e)
		}
	}
	return nil
}

// EdgesAdjacent reports whether two distinct edges share an endpoint.
func (g *Graph) EdgesAdjacent(a, b EdgeID) bool {
	if a == b {
		return false
	}
	ea, eb := g.edges[a], g.edges[b]
	return ea.U == eb.U || ea.U == eb.V || ea.V == eb.U || ea.V == eb.V
}

// EdgesWithinDistance1 reports whether two distinct edges are adjacent or
// joined by a third edge — the conflict relation of strong edge coloring
// (a proper coloring of the square of the line graph).
func (g *Graph) EdgesWithinDistance1(a, b EdgeID) bool {
	if a == b {
		return false
	}
	if g.EdgesAdjacent(a, b) {
		return true
	}
	ea, eb := g.edges[a], g.edges[b]
	return g.HasEdge(ea.U, eb.U) || g.HasEdge(ea.U, eb.V) ||
		g.HasEdge(ea.V, eb.U) || g.HasEdge(ea.V, eb.V)
}
