// Package graph provides the graph substrate for the dima simulator:
// simple undirected graphs with stable edge identifiers, and symmetric
// digraphs derived from them for the strong (distance-2) edge coloring
// algorithm.
//
// Vertices are dense integers [0, N). Each undirected edge carries a
// stable EdgeID assigned in insertion order; the strong-coloring
// algorithm works on arcs (directed edges), each with a stable ArcID.
// All query methods are read-only and safe for concurrent use once the
// graph has been built.
package graph

import (
	"fmt"
	"sort"
)

// EdgeID identifies an undirected edge within a Graph.
type EdgeID int

// Edge is an undirected edge with normalized endpoints U < V.
type Edge struct {
	U, V int
}

// Norm returns e with endpoints ordered so that U < V.
func (e Edge) Norm() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not w. It panics if w is not an
// endpoint of e.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d not an endpoint of %v", w, e))
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a simple undirected graph. Build it with New and AddEdge;
// once handed to an engine it is immutable by convention and safe for
// concurrent reads. RemoveEdge supports the dynamic-recoloring workload:
// a removed edge leaves a hole at its id, and the id is recycled by the
// next AddEdge, so edge ids stay dense under balanced churn and every
// id-indexed side table (colors, weights) keeps its meaning across
// mutations. Graphs that never see a removal have no holes and
// EdgeIDBound() == M(), the historical invariant.
type Graph struct {
	n     int
	adj   [][]int    // adj[u] = sorted-by-insertion neighbor list
	inc   [][]EdgeID // inc[u][i] = id of edge (u, adj[u][i])
	edges []Edge     // edges[id] = normalized endpoints, or edgeHole
	free  []EdgeID   // removed ids awaiting recycling (LIFO)
	index map[Edge]EdgeID

	// Degree bookkeeping, maintained on every mutation so MaxDegree is
	// O(1): degCount[d] counts vertices of degree d, maxDeg is the
	// largest d with degCount[d] > 0 (0 for an empty graph). A dynamic
	// recolorer reads the current Δ on every batch, so Δ must track
	// deletions as cheaply as insertions.
	degCount []int
	maxDeg   int
}

// edgeHole marks a removed edge's slot in the edge list.
var edgeHole = Edge{-1, -1}

// New returns an empty graph on n vertices. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:        n,
		adj:      make([][]int, n),
		inc:      make([][]EdgeID, n),
		index:    make(map[Edge]EdgeID),
		degCount: []int{n},
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of (live) edges.
func (g *Graph) M() int { return len(g.edges) - len(g.free) }

// EdgeIDBound returns one past the largest edge id ever assigned — the
// length any slice indexed by EdgeID must have. Equal to M() unless
// edges have been removed without their ids being recycled yet.
func (g *Graph) EdgeIDBound() int { return len(g.edges) }

// Live reports whether id names a present edge (in range and not a
// removal hole).
func (g *Graph) Live(id EdgeID) bool {
	return id >= 0 && int(id) < len(g.edges) && g.edges[id] != edgeHole
}

// AddEdge inserts the undirected edge {u, v} and returns its id.
// Self-loops, duplicate edges, and out-of-range endpoints are errors.
func (g *Graph) AddEdge(u, v int) (EdgeID, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at %d", u)
	}
	e := Edge{u, v}.Norm()
	if _, dup := g.index[e]; dup {
		return -1, fmt.Errorf("graph: duplicate edge %v", e)
	}
	var id EdgeID
	if k := len(g.free); k > 0 {
		id = g.free[k-1]
		g.free = g.free[:k-1]
		g.edges[id] = e
	} else {
		id = EdgeID(len(g.edges))
		g.edges = append(g.edges, e)
	}
	g.index[e] = id
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.inc[u] = append(g.inc[u], id)
	g.inc[v] = append(g.inc[v], id)
	g.degreeUp(len(g.adj[u]))
	g.degreeUp(len(g.adj[v]))
	return id, nil
}

// degreeUp moves one vertex from degree d-1 to d in the degree counts.
func (g *Graph) degreeUp(d int) {
	g.degCount[d-1]--
	if d == len(g.degCount) {
		g.degCount = append(g.degCount, 0)
	}
	g.degCount[d]++
	if d > g.maxDeg {
		g.maxDeg = d
	}
}

// degreeDown moves one vertex from degree d+1 to d, shrinking maxDeg
// when the top degree class empties. The walk down is amortized O(1):
// maxDeg only decreases past degrees some degreeUp paid to reach.
func (g *Graph) degreeDown(d int) {
	g.degCount[d+1]--
	g.degCount[d]++
	for g.maxDeg > 0 && g.degCount[g.maxDeg] == 0 {
		g.maxDeg--
	}
}

// RemoveEdge deletes the undirected edge {u, v} and returns the id it
// occupied. The id becomes a hole (Live reports false, EdgeAt returns
// {-1,-1}) until the next AddEdge recycles it; adjacency and incidence
// lists of both endpoints are maintained by swap-removal, so neighbor
// order is not preserved across a removal.
func (g *Graph) RemoveEdge(u, v int) (EdgeID, error) {
	id, ok := g.EdgeIDOf(u, v)
	if !ok {
		return -1, fmt.Errorf("graph: no edge (%d,%d) to remove", u, v)
	}
	e := g.edges[id]
	delete(g.index, e)
	g.edges[id] = edgeHole
	g.free = append(g.free, id)
	g.detach(e.U, id)
	g.detach(e.V, id)
	g.degreeDown(len(g.adj[e.U]))
	g.degreeDown(len(g.adj[e.V]))
	return id, nil
}

// detach swap-removes edge id from u's adjacency and incidence lists.
func (g *Graph) detach(u int, id EdgeID) {
	inc := g.inc[u]
	for i, x := range inc {
		if x == id {
			last := len(inc) - 1
			g.adj[u][i] = g.adj[u][last]
			inc[i] = inc[last]
			g.adj[u] = g.adj[u][:last]
			g.inc[u] = inc[:last]
			return
		}
	}
	panic(fmt.Sprintf("graph: edge %d missing from vertex %d incidence", id, u))
}

// MustAddEdge is AddEdge that panics on error; for tests and generators
// whose construction logic guarantees validity.
func (g *Graph) MustAddEdge(u, v int) EdgeID {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	_, ok := g.index[Edge{u, v}.Norm()]
	return ok
}

// EdgeIDOf returns the id of edge {u, v}.
func (g *Graph) EdgeIDOf(u, v int) (EdgeID, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return -1, false
	}
	id, ok := g.index[Edge{u, v}.Norm()]
	return id, ok
}

// EdgeAt returns the endpoints of edge id ({-1,-1} for a removal hole).
func (g *Graph) EdgeAt(id EdgeID) Edge {
	return g.edges[id]
}

// Edges returns the edge list indexed by EdgeID. After removals the
// slice contains {-1,-1} holes; iterate with Live or skip negative
// endpoints. The caller must not modify the returned slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns u's neighbor list in insertion order. The caller must
// not modify the returned slice.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// IncidentEdges returns the ids of edges incident to u, aligned with
// Neighbors(u): IncidentEdges(u)[i] is the edge to Neighbors(u)[i].
func (g *Graph) IncidentEdges(u int) []EdgeID { return g.inc[u] }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns Δ, the maximum degree, in O(1): the degree counts
// are maintained incrementally by AddEdge and RemoveEdge, so Δ tracks
// deletions as well as insertions. Zero for an empty graph.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// MinDegree returns the minimum degree; zero for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := len(g.adj[0])
	for u := 1; u < g.n; u++ {
		if len(g.adj[u]) < d {
			d = len(g.adj[u])
		}
	}
	return d
}

// AvgDegree returns the average degree 2M/N; zero for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(g.n)
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// for d in [0, Δ].
func (g *Graph) DegreeHistogram() []int {
	return append([]int(nil), g.degCount[:g.maxDeg+1]...)
}

// Clone returns a deep copy of g, preserving edge ids, removal holes,
// and the id-recycling free list, so a clone of a mutated graph keeps
// every id-indexed side table valid.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:        g.n,
		adj:      make([][]int, g.n),
		inc:      make([][]EdgeID, g.n),
		edges:    append([]Edge(nil), g.edges...),
		free:     append([]EdgeID(nil), g.free...),
		index:    make(map[Edge]EdgeID, len(g.index)),
		degCount: append([]int(nil), g.degCount...),
		maxDeg:   g.maxDeg,
	}
	for u := 0; u < g.n; u++ {
		c.adj[u] = append([]int(nil), g.adj[u]...)
		c.inc[u] = append([]EdgeID(nil), g.inc[u]...)
	}
	for e, id := range g.index {
		c.index[e] = id
	}
	return c
}

// Compacted returns a fresh graph containing g's live edges with dense
// ids in increasing old-id order, plus the old id of each new edge
// (ids[newID] == oldID). For graphs without holes the mapping is the
// identity. Use it to hand a mutated graph to code that expects the
// historical dense-id invariant (cold recoloring runs, text export).
func (g *Graph) Compacted() (*Graph, []EdgeID) {
	c := New(g.n)
	ids := make([]EdgeID, 0, g.M())
	for id, e := range g.edges {
		if e == edgeHole {
			continue
		}
		c.MustAddEdge(e.U, e.V)
		ids = append(ids, EdgeID(id))
	}
	return c, ids
}

// Compact removes the removal holes from g's edge-id space in place:
// live edges are renumbered densely in increasing old-id order, the
// free list empties, and afterwards EdgeIDBound() == M(). It returns
// the id map (ids[newID] == oldID) so callers can remap id-indexed
// side tables (colorings, weights) through it. Unlike Compacted, the
// graph handle itself stays valid — adjacency, degrees, and every
// query keep working on the same *Graph — which is what lets a
// long-running recolorer reclaim id space without republishing its
// graph to readers. For a hole-free graph it is a cheap no-op
// returning nil.
func (g *Graph) Compact() []EdgeID {
	if len(g.free) == 0 {
		return nil
	}
	oldToNew := make([]EdgeID, len(g.edges))
	ids := make([]EdgeID, 0, g.M())
	dense := make([]Edge, 0, g.M())
	for id, e := range g.edges {
		if e == edgeHole {
			oldToNew[id] = -1
			continue
		}
		oldToNew[id] = EdgeID(len(dense))
		ids = append(ids, EdgeID(id))
		dense = append(dense, e)
	}
	g.edges = dense
	g.free = nil
	for e, id := range g.index {
		g.index[e] = oldToNew[id]
	}
	for u := 0; u < g.n; u++ {
		inc := g.inc[u]
		for i, id := range inc {
			inc[i] = oldToNew[id]
		}
	}
	return ids
}

// SortedNeighbors returns a sorted copy of u's neighbor list; useful for
// deterministic iteration in tests and reports.
func (g *Graph) SortedNeighbors(u int) []int {
	s := append([]int(nil), g.adj[u]...)
	sort.Ints(s)
	return s
}

// Validate checks internal consistency (degree sums, index round-trips).
// It returns nil for graphs built through AddEdge; it exists to guard
// deserialized graphs and as a property-test anchor.
func (g *Graph) Validate() error {
	degSum := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(g.inc[u]) {
			return fmt.Errorf("graph: vertex %d adjacency/incidence length mismatch", u)
		}
		degSum += len(g.adj[u])
		for i, v := range g.adj[u] {
			id := g.inc[u][i]
			if int(id) < 0 || int(id) >= len(g.edges) {
				return fmt.Errorf("graph: vertex %d has invalid incident edge id %d", u, id)
			}
			e := g.edges[id]
			if e != (Edge{u, v}.Norm()) {
				return fmt.Errorf("graph: incidence mismatch at %d: edge %d is %v, want {%d,%d}", u, id, e, u, v)
			}
		}
	}
	if degSum != 2*g.M() {
		return fmt.Errorf("graph: degree sum %d != 2M %d", degSum, 2*g.M())
	}
	wantDeg := make([]int, g.maxDeg+1)
	for u := 0; u < g.n; u++ {
		d := len(g.adj[u])
		if d > g.maxDeg {
			return fmt.Errorf("graph: vertex %d degree %d exceeds tracked Δ %d", u, d, g.maxDeg)
		}
		wantDeg[d]++
	}
	if g.n > 0 && g.maxDeg > 0 && wantDeg[g.maxDeg] == 0 {
		return fmt.Errorf("graph: tracked Δ %d has no vertex", g.maxDeg)
	}
	for d, want := range wantDeg {
		got := 0
		if d < len(g.degCount) {
			got = g.degCount[d]
		}
		if got != want {
			return fmt.Errorf("graph: degree count[%d] = %d, want %d", d, got, want)
		}
	}
	holes := make(map[EdgeID]bool, len(g.free))
	for _, id := range g.free {
		if int(id) < 0 || int(id) >= len(g.edges) || g.edges[id] != edgeHole {
			return fmt.Errorf("graph: free list names live or out-of-range edge %d", id)
		}
		if holes[id] {
			return fmt.Errorf("graph: edge id %d freed twice", id)
		}
		holes[id] = true
	}
	for id, e := range g.edges {
		if e == edgeHole {
			if !holes[EdgeID(id)] {
				return fmt.Errorf("graph: hole at edge %d missing from free list", id)
			}
			continue
		}
		if got, ok := g.index[e]; !ok || got != EdgeID(id) {
			return fmt.Errorf("graph: index round-trip failed for edge %d %v", id, e)
		}
		if e.U >= e.V {
			return fmt.Errorf("graph: edge %d %v not normalized", id, e)
		}
	}
	return nil
}

// EdgesAdjacent reports whether two distinct edges share an endpoint.
func (g *Graph) EdgesAdjacent(a, b EdgeID) bool {
	if a == b {
		return false
	}
	ea, eb := g.edges[a], g.edges[b]
	return ea.U == eb.U || ea.U == eb.V || ea.V == eb.U || ea.V == eb.V
}

// EdgesWithinDistance1 reports whether two distinct edges are adjacent or
// joined by a third edge — the conflict relation of strong edge coloring
// (a proper coloring of the square of the line graph).
func (g *Graph) EdgesWithinDistance1(a, b EdgeID) bool {
	if a == b {
		return false
	}
	if g.EdgesAdjacent(a, b) {
		return true
	}
	ea, eb := g.edges[a], g.edges[b]
	return g.HasEdge(ea.U, eb.U) || g.HasEdge(ea.U, eb.V) ||
		g.HasEdge(ea.V, eb.U) || g.HasEdge(ea.V, eb.V)
}
