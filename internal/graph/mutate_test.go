package graph

import (
	"sort"
	"testing"

	"dima/internal/rng"
)

func TestRemoveEdgeBasics(t *testing.T) {
	g := triangle()
	id, err := g.RemoveEdge(2, 1) // endpoints in either order
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || g.EdgeIDBound() != 3 {
		t.Fatalf("after removal: M=%d bound=%d", g.M(), g.EdgeIDBound())
	}
	if g.Live(id) || g.HasEdge(1, 2) {
		t.Fatal("removed edge still present")
	}
	if g.EdgeAt(id) != (Edge{-1, -1}) {
		t.Fatalf("hole endpoints = %v", g.EdgeAt(id))
	}
	if g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees not maintained: %d %d", g.Degree(1), g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RemoveEdge(1, 2); err == nil {
		t.Fatal("double removal succeeded")
	}
	// The next insertion recycles the freed id.
	id2, err := g.AddEdge(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("recycled id = %d, want %d", id2, id)
	}
	if g.M() != 3 || g.EdgeIDBound() != 3 {
		t.Fatalf("after recycling: M=%d bound=%d", g.M(), g.EdgeIDBound())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdgeErrors(t *testing.T) {
	g := path3()
	for _, c := range [][2]int{{0, 2}, {0, 0}, {-1, 1}, {0, 3}} {
		if _, err := g.RemoveEdge(c[0], c[1]); err == nil {
			t.Fatalf("RemoveEdge(%d,%d) succeeded", c[0], c[1])
		}
	}
	if g.M() != 2 {
		t.Fatalf("failed removals mutated the graph: M=%d", g.M())
	}
}

// edgeSet collects a graph's live edges as a sorted slice.
func edgeSet(g *Graph) []Edge {
	var out []Edge
	for _, e := range g.Edges() {
		if e.U >= 0 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// TestMutationChurnAgainstRebuild is the property test behind RemoveEdge:
// after any random add/remove sequence the mutated graph is externally
// identical to a graph rebuilt from scratch from the surviving edge set,
// and its internal invariants (Validate, id recycling accounting) hold.
func TestMutationChurnAgainstRebuild(t *testing.T) {
	r := rng.New(99)
	const n = 30
	g := New(n)
	ref := map[Edge]bool{}
	peak := 0
	for step := 0; step < 4000; step++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		e := Edge{u, v}.Norm()
		if ref[e] {
			if r.Float64() < 0.7 { // bias toward removal so churn reaches steady state
				if _, err := g.RemoveEdge(u, v); err != nil {
					t.Fatalf("step %d: remove %v: %v", step, e, err)
				}
				delete(ref, e)
			}
		} else {
			if _, err := g.AddEdge(u, v); err != nil {
				t.Fatalf("step %d: add %v: %v", step, e, err)
			}
			ref[e] = true
		}
		if len(ref) > peak {
			peak = len(ref)
		}
		if step%250 != 0 && step != 3999 {
			continue
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if g.M() != len(ref) {
			t.Fatalf("step %d: M=%d, reference has %d", step, g.M(), len(ref))
		}
		// Id recycling keeps the id space bounded by the historical peak.
		if g.EdgeIDBound() > peak {
			t.Fatalf("step %d: id bound %d exceeds peak edge count %d", step, g.EdgeIDBound(), peak)
		}
		rebuilt := New(n)
		for e := range ref {
			rebuilt.MustAddEdge(e.U, e.V)
		}
		for u := 0; u < n; u++ {
			if g.Degree(u) != rebuilt.Degree(u) {
				t.Fatalf("step %d: vertex %d degree %d, rebuilt %d", step, u, g.Degree(u), rebuilt.Degree(u))
			}
			got, want := g.SortedNeighbors(u), rebuilt.SortedNeighbors(u)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: vertex %d neighbors %v, rebuilt %v", step, u, got, want)
				}
			}
		}
		if got, want := edgeSet(g), edgeSet(rebuilt); len(got) != len(want) {
			t.Fatalf("step %d: edge sets diverge", step)
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: edge sets diverge at %d: %v vs %v", step, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCompacted(t *testing.T) {
	r := rng.New(7)
	g := New(20)
	for step := 0; step < 300; step++ {
		u, v := r.Intn(20), r.Intn(20)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
		} else {
			g.MustAddEdge(u, v)
		}
	}
	c, ids := g.Compacted()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.M() != g.M() || c.EdgeIDBound() != c.M() || len(ids) != c.M() {
		t.Fatalf("compacted: M=%d (want %d) bound=%d ids=%d", c.M(), g.M(), c.EdgeIDBound(), len(ids))
	}
	for newID, oldID := range ids {
		if c.EdgeAt(EdgeID(newID)) != g.EdgeAt(oldID) {
			t.Fatalf("mapping broken at %d: %v vs %v", newID, c.EdgeAt(EdgeID(newID)), g.EdgeAt(oldID))
		}
	}
	// Old ids come out in increasing order, so relative id order survives.
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not increasing: %v", ids)
		}
	}
}

func TestCloneMutatedPreservesIDs(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.RemoveEdge(1, 2)
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.M() != g.M() || c.EdgeIDBound() != g.EdgeIDBound() {
		t.Fatalf("clone shape: M=%d/%d bound=%d/%d", c.M(), g.M(), c.EdgeIDBound(), g.EdgeIDBound())
	}
	for id := 0; id < g.EdgeIDBound(); id++ {
		if c.EdgeAt(EdgeID(id)) != g.EdgeAt(EdgeID(id)) {
			t.Fatalf("edge %d diverged", id)
		}
	}
	// The clone recycles the same hole, independently of the original.
	cid, _ := c.AddEdge(0, 4)
	if cid != 1 {
		t.Fatalf("clone recycled id %d, want 1", cid)
	}
	if g.HasEdge(0, 4) {
		t.Fatal("clone mutation leaked into original")
	}
	gid, _ := g.AddEdge(3, 4)
	if gid != 1 {
		t.Fatalf("original recycled id %d, want 1", gid)
	}
}

func TestCompactInPlace(t *testing.T) {
	r := rng.New(41)
	g := New(20)
	for step := 0; step < 400; step++ {
		u, v := r.Intn(20), r.Intn(20)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
		} else {
			g.MustAddEdge(u, v)
		}
	}
	if g.EdgeIDBound() == g.M() {
		t.Fatal("churn left no holes; the test needs some")
	}
	want, wantIDs := g.Compacted() // reference: the snapshot compaction
	before := g.EdgeIDBound()
	ids := g.Compact()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.EdgeIDBound() != g.M() {
		t.Fatalf("after Compact: bound=%d M=%d", g.EdgeIDBound(), g.M())
	}
	if len(ids) != g.M() {
		t.Fatalf("id map has %d entries, want %d", len(ids), g.M())
	}
	for i := range ids {
		if ids[i] != wantIDs[i] {
			t.Fatalf("id map diverges from Compacted at %d: %d vs %d", i, ids[i], wantIDs[i])
		}
		if g.EdgeAt(EdgeID(i)) != want.EdgeAt(EdgeID(i)) {
			t.Fatalf("edge %d diverges from Compacted", i)
		}
	}
	// Incidence lists and the index were remapped, so lookups still work.
	for id := 0; id < g.EdgeIDBound(); id++ {
		e := g.EdgeAt(EdgeID(id))
		got, ok := g.EdgeIDOf(e.U, e.V)
		if !ok || got != EdgeID(id) {
			t.Fatalf("index round-trip broken at %d: got %d ok=%v", id, got, ok)
		}
	}
	// Fresh insertions extend the dense space, no recycled holes left.
	var added EdgeID = -1
	for u := 0; u < 20 && added < 0; u++ {
		for v := u + 1; v < 20; v++ {
			if !g.HasEdge(u, v) {
				id, err := g.AddEdge(u, v)
				if err != nil {
					t.Fatal(err)
				}
				added = id
				break
			}
		}
	}
	if int(added) != g.EdgeIDBound()-1 {
		t.Fatalf("post-compact insert got id %d, want %d", added, g.EdgeIDBound()-1)
	}
	if before <= g.M()-1 {
		t.Fatalf("sanity: pre-compact bound %d did not exceed live count", before)
	}
	// Compacting a dense graph is a no-op.
	if got := g.Compact(); got != nil {
		t.Fatalf("no-op Compact returned %v", got)
	}
}

func TestMaxDegreeTracksMutations(t *testing.T) {
	r := rng.New(23)
	const n = 25
	g := New(n)
	scan := func() int {
		d := 0
		for u := 0; u < n; u++ {
			if g.Degree(u) > d {
				d = g.Degree(u)
			}
		}
		return d
	}
	for step := 0; step < 3000; step++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
		} else {
			g.MustAddEdge(u, v)
		}
		if got, want := g.MaxDegree(), scan(); got != want {
			t.Fatalf("step %d: tracked Δ=%d, scan says %d", step, got, want)
		}
	}
	// Delete everything: Δ must walk back to zero.
	for id := 0; id < g.EdgeIDBound(); id++ {
		if !g.Live(EdgeID(id)) {
			continue
		}
		e := g.EdgeAt(EdgeID(id))
		g.RemoveEdge(e.U, e.V)
	}
	if g.MaxDegree() != 0 || g.M() != 0 {
		t.Fatalf("drained graph: Δ=%d M=%d", g.MaxDegree(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
