package automaton

import (
	"fmt"

	"dima/internal/msg"
	"dima/internal/rng"
)

// Pairing is the problem-specific half of a matching-discovery protocol.
// The Driver owns the paper's automaton — coin toss, state transitions,
// invitation/response bookkeeping — and calls back into the Pairing for
// every decision that depends on the problem being solved. Implementing
// this interface is how the framework of the paper's conclusion is meant
// to be extended; internal/matching is the reference implementation.
//
// All methods run in the node's goroutine (or the sequential scheduler);
// no synchronization is needed, but implementations must be
// deterministic given their own state and the provided random stream.
type Pairing interface {
	// Live reports whether this node still has work. A node whose Live
	// turns false finishes its current cycle and transitions to Done.
	Live() bool
	// Invite builds the invitation to broadcast when the coin makes
	// this node an inviter: the returned message must carry From (this
	// node), To (the invited neighbor), and any Edge/Color payload.
	// Returning ok == false skips inviting this round (the node
	// listens instead).
	Invite(r *rng.Rand) (m msg.Message, ok bool)
	// Respond chooses among the invitations addressed to this node
	// (mine) given everything overheard; returning ok == true
	// broadcasts the response and commits this side of the pair. The
	// implementation records its own tentative state.
	Respond(mine, overheard []msg.Message, r *rng.Rand) (response msg.Message, ok bool)
	// Complete delivers the response that accepted this node's
	// invitation (inviter side of the pair).
	Complete(response msg.Message)
	// Exchange returns the end-of-round broadcasts (the automaton's E
	// state); nil when there is nothing to announce.
	Exchange() []msg.Message
	// Absorb processes the previous round's exchange broadcasts at the
	// start of a new cycle.
	Absorb(inbox []msg.Message)
}

// Driver hosts a Pairing on the matching-discovery automaton and
// implements net.Node. One computation round costs three communication
// rounds: invitations, responses, exchange.
type Driver struct {
	id   int
	r    *rng.Rand
	p    Pairing
	mach *Machine
	rec  Recovery

	inviteEdge int
	inviteTo   int
	invited    bool

	// Recovery state: the last invitation sent, kept while its response
	// is outstanding. A node whose invitation went unanswered re-enters
	// I after rec.Timeout() computation rounds and renegotiates the same
	// edge — retransmitting with an incremented Seq — instead of
	// flipping a fresh coin, until rec.Budget() retries are spent.
	sentInvite   msg.Message
	pending      bool
	pendingAge   int
	pendingTries int
	holdRespond  bool
}

// DriverPhases is the number of communication rounds per computation
// round of a driver-hosted protocol.
const DriverPhases = 3

// NewDriver wraps a Pairing as a protocol node. If the pairing starts
// with no work, the driver walks the machine straight to Done.
func NewDriver(id int, r *rng.Rand, p Pairing, hook Hook) *Driver {
	d := &Driver{id: id, r: r, p: p, mach: NewMachine(id, hook)}
	if !p.Live() {
		for _, s := range []State{Listen, Respond, Update, Exchange, Done} {
			d.mach.MustTransition(s)
		}
	}
	return d
}

// WithRecovery enables loss recovery on the driver and returns it for
// chaining at construction time. Recovery relies on the Pairing's
// Exchange broadcasts carrying the committed edge id (as
// internal/matching's match announcements do) and is strengthened — but
// not required — by the Pairing implementing Reaffirmer.
func (d *Driver) WithRecovery(rec Recovery) *Driver {
	d.rec = rec
	return d
}

// ID implements net.Node.
func (d *Driver) ID() int { return d.id }

// Done implements net.Node.
func (d *Driver) Done() bool { return d.mach.State() == Done }

// Step implements net.Node.
func (d *Driver) Step(round int, inbox []msg.Message) []msg.Message {
	if d.Done() {
		// A finished node keeps answering invitations from its committed
		// state when recovery is on: its Response (or its match
		// announcement) may have been lost, and silence would leave the
		// inviter retrying into the void.
		if d.rec.Enabled && round%DriverPhases == 1 {
			return d.reaffirm(inbox)
		}
		return nil
	}
	switch round % DriverPhases {
	case 0:
		d.p.Absorb(inbox)
		d.invited = false
		d.holdRespond = false
		if d.rec.Enabled && d.pending {
			if out, handled := d.recoverPending(inbox); handled {
				return out
			}
		}
		// A node whose work just finished idles through one last cycle
		// as a listener and stops at the round's end.
		if !d.p.Live() {
			d.mach.MustTransition(Listen)
			return nil
		}
		if d.r.Bool() {
			if m, ok := d.p.Invite(d.r); ok {
				if m.From != d.id {
					panic(fmt.Sprintf("automaton: node %d built invitation from %d", d.id, m.From))
				}
				d.mach.MustTransition(Invite)
				d.invited = true
				d.inviteEdge, d.inviteTo = m.Edge, m.To
				m.Kind = msg.KindInvite
				d.sentInvite = m
				return []msg.Message{m}
			}
		}
		d.mach.MustTransition(Listen)
		return nil

	case 1:
		if d.mach.State() == Invite {
			d.mach.MustTransition(Wait)
			return nil
		}
		d.mach.MustTransition(Respond)
		var out []msg.Message
		if d.rec.Enabled {
			out = d.reaffirm(inbox)
		}
		mine, overheard := SplitInvites(d.id, inbox)
		if d.holdRespond || !d.p.Live() || len(mine) == 0 {
			return out
		}
		if m, ok := d.p.Respond(mine, overheard, d.r); ok {
			m.Kind = msg.KindResponse
			m.From = d.id
			out = append(out, m)
		}
		return out

	default:
		switch d.mach.State() {
		case Wait:
			if m, ok, _ := FindResponse(d.id, d.inviteEdge, inbox); ok && m.From == d.inviteTo {
				d.p.Complete(m)
				d.clearPending()
			} else if d.rec.Enabled {
				d.settleWait(inbox)
			}
			d.mach.MustTransition(Update)
		case Respond:
			d.mach.MustTransition(Update)
		default:
			panic(fmt.Sprintf("automaton: node %d in state %v at exchange phase", d.id, d.mach.State()))
		}
		d.mach.MustTransition(Exchange)
		out := d.p.Exchange()
		if d.p.Live() || (d.rec.Enabled && d.pending) {
			d.mach.MustTransition(Choose)
		} else {
			d.mach.MustTransition(Done)
		}
		return out
	}
}

// reaffirm routes invitations addressed here through the pairing's
// Reaffirmer, answering from committed state on behalf of nodes the
// normal Respond path no longer serves.
func (d *Driver) reaffirm(inbox []msg.Message) []msg.Message {
	ref, ok := d.p.(Reaffirmer)
	if !ok {
		return nil
	}
	mine, _ := SplitInvites(d.id, inbox)
	var out []msg.Message
	for _, inv := range mine {
		if m, ok := ref.Reaffirm(inv); ok {
			m.From = d.id
			m.Seq = inv.Seq
			out = append(out, m)
		}
	}
	return out
}

// settleWait handles the no-response case of the Wait state under
// recovery. An Update from the invited neighbor resolves the negotiation
// either way — it committed our edge (complete the pair) or a different
// one (stop waiting); such re-announcements arrive in this phase when a
// Reaffirmer sent them, so they are also forwarded to Absorb, which
// otherwise only sees start-of-cycle inboxes. With no word from the
// neighbor at all, the invitation becomes (or stays) pending for the
// retransmit loop in recoverPending.
func (d *Driver) settleWait(inbox []msg.Message) {
	settled := false
	for _, m := range inbox {
		if m.Kind != msg.KindUpdate {
			continue
		}
		d.p.Absorb([]msg.Message{m})
		if m.From == d.inviteTo {
			if m.Edge == d.inviteEdge {
				d.p.Complete(msg.Message{
					Kind: msg.KindResponse, From: m.From, To: d.id,
					Edge: d.inviteEdge, Color: d.sentInvite.Color,
				})
			}
			settled = true
		}
	}
	if settled {
		d.clearPending()
		return
	}
	if !d.pending {
		d.pending = true
		d.pendingAge = 0
		d.pendingTries = 0
	}
}

// recoverPending runs at the start of a cycle while an invitation is
// outstanding. It returns handled == true when it consumed the round (a
// retransmission was sent, or the node is holding in L until the
// timeout); handled == false hands the round back to the normal
// protocol after the pending state was resolved or abandoned.
func (d *Driver) recoverPending(inbox []msg.Message) ([]msg.Message, bool) {
	// The neighbor's own exchange broadcast settles the question without
	// any retransmission: its Edge names the edge it committed.
	for _, m := range inbox {
		if m.Kind == msg.KindUpdate && m.From == d.sentInvite.To {
			if m.Edge == d.sentInvite.Edge {
				d.p.Complete(msg.Message{
					Kind: msg.KindResponse, From: m.From, To: d.id,
					Edge: m.Edge, Color: d.sentInvite.Color,
				})
			}
			d.clearPending()
			return nil, false
		}
	}
	d.pendingAge++
	if d.pendingAge < d.rec.Timeout() {
		// Still inside the timeout window: hold in L, responding to no
		// one — the node is logically still waiting on its invitation.
		d.mach.MustTransition(Listen)
		d.holdRespond = true
		return nil, true
	}
	if d.pendingTries >= d.rec.Budget() {
		// Budget spent: abandon the exchange. The normal protocol may
		// still reach the neighbor through a fresh coin-flip invitation,
		// which a Reaffirmer answers from committed state.
		d.clearPending()
		return nil, false
	}
	d.pendingTries++
	d.pendingAge = 0
	m := d.sentInvite
	m.Seq = uint32(d.pendingTries)
	d.mach.MustTransition(Invite)
	d.invited = true
	d.inviteEdge, d.inviteTo = m.Edge, m.To
	return []msg.Message{m}, true
}

func (d *Driver) clearPending() {
	d.pending = false
	d.pendingAge = 0
	d.pendingTries = 0
}
