package automaton

import (
	"fmt"

	"dima/internal/msg"
	"dima/internal/rng"
)

// Pairing is the problem-specific half of a matching-discovery protocol.
// The Driver owns the paper's automaton — coin toss, state transitions,
// invitation/response bookkeeping — and calls back into the Pairing for
// every decision that depends on the problem being solved. Implementing
// this interface is how the framework of the paper's conclusion is meant
// to be extended; internal/matching is the reference implementation.
//
// All methods run in the node's goroutine (or the sequential scheduler);
// no synchronization is needed, but implementations must be
// deterministic given their own state and the provided random stream.
type Pairing interface {
	// Live reports whether this node still has work. A node whose Live
	// turns false finishes its current cycle and transitions to Done.
	Live() bool
	// Invite builds the invitation to broadcast when the coin makes
	// this node an inviter: the returned message must carry From (this
	// node), To (the invited neighbor), and any Edge/Color payload.
	// Returning ok == false skips inviting this round (the node
	// listens instead).
	Invite(r *rng.Rand) (m msg.Message, ok bool)
	// Respond chooses among the invitations addressed to this node
	// (mine) given everything overheard; returning ok == true
	// broadcasts the response and commits this side of the pair. The
	// implementation records its own tentative state.
	Respond(mine, overheard []msg.Message, r *rng.Rand) (response msg.Message, ok bool)
	// Complete delivers the response that accepted this node's
	// invitation (inviter side of the pair).
	Complete(response msg.Message)
	// Exchange returns the end-of-round broadcasts (the automaton's E
	// state); nil when there is nothing to announce.
	Exchange() []msg.Message
	// Absorb processes the previous round's exchange broadcasts at the
	// start of a new cycle.
	Absorb(inbox []msg.Message)
}

// Driver hosts a Pairing on the matching-discovery automaton and
// implements net.Node. One computation round costs three communication
// rounds: invitations, responses, exchange.
type Driver struct {
	id   int
	r    *rng.Rand
	p    Pairing
	mach *Machine

	inviteEdge int
	inviteTo   int
	invited    bool
}

// DriverPhases is the number of communication rounds per computation
// round of a driver-hosted protocol.
const DriverPhases = 3

// NewDriver wraps a Pairing as a protocol node. If the pairing starts
// with no work, the driver walks the machine straight to Done.
func NewDriver(id int, r *rng.Rand, p Pairing, hook Hook) *Driver {
	d := &Driver{id: id, r: r, p: p, mach: NewMachine(id, hook)}
	if !p.Live() {
		for _, s := range []State{Listen, Respond, Update, Exchange, Done} {
			d.mach.MustTransition(s)
		}
	}
	return d
}

// ID implements net.Node.
func (d *Driver) ID() int { return d.id }

// Done implements net.Node.
func (d *Driver) Done() bool { return d.mach.State() == Done }

// Step implements net.Node.
func (d *Driver) Step(round int, inbox []msg.Message) []msg.Message {
	if d.Done() {
		return nil
	}
	switch round % DriverPhases {
	case 0:
		d.p.Absorb(inbox)
		d.invited = false
		// A node whose work just finished idles through one last cycle
		// as a listener and stops at the round's end.
		if !d.p.Live() {
			d.mach.MustTransition(Listen)
			return nil
		}
		if d.r.Bool() {
			if m, ok := d.p.Invite(d.r); ok {
				if m.From != d.id {
					panic(fmt.Sprintf("automaton: node %d built invitation from %d", d.id, m.From))
				}
				d.mach.MustTransition(Invite)
				d.invited = true
				d.inviteEdge, d.inviteTo = m.Edge, m.To
				m.Kind = msg.KindInvite
				return []msg.Message{m}
			}
		}
		d.mach.MustTransition(Listen)
		return nil

	case 1:
		if d.mach.State() == Invite {
			d.mach.MustTransition(Wait)
			return nil
		}
		d.mach.MustTransition(Respond)
		mine, overheard := SplitInvites(d.id, inbox)
		if !d.p.Live() || len(mine) == 0 {
			return nil
		}
		if m, ok := d.p.Respond(mine, overheard, d.r); ok {
			m.Kind = msg.KindResponse
			m.From = d.id
			return []msg.Message{m}
		}
		return nil

	default:
		switch d.mach.State() {
		case Wait:
			if m, ok, _ := FindResponse(d.id, d.inviteEdge, inbox); ok && m.From == d.inviteTo {
				d.p.Complete(m)
			}
			d.mach.MustTransition(Update)
		case Respond:
			d.mach.MustTransition(Update)
		default:
			panic(fmt.Sprintf("automaton: node %d in state %v at exchange phase", d.id, d.mach.State()))
		}
		d.mach.MustTransition(Exchange)
		out := d.p.Exchange()
		if d.p.Live() {
			d.mach.MustTransition(Choose)
		} else {
			d.mach.MustTransition(Done)
		}
		return out
	}
}
