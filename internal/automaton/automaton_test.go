package automaton

import (
	"errors"
	"testing"

	"dima/internal/msg"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Choose: "C", Invite: "I", Listen: "L", Respond: "R",
		Wait: "W", Update: "U", Exchange: "E", Done: "D",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
	if State(99).String() != "state(99)" {
		t.Fatalf("unknown state string: %q", State(99).String())
	}
}

func TestTransitionTable(t *testing.T) {
	legal := map[State][]State{
		Choose:   {Invite, Listen},
		Invite:   {Wait},
		Listen:   {Respond},
		Respond:  {Update},
		Wait:     {Update},
		Update:   {Exchange},
		Exchange: {Choose, Done},
		Done:     {},
	}
	all := []State{Choose, Invite, Listen, Respond, Wait, Update, Exchange, Done}
	for _, from := range all {
		allowed := map[State]bool{}
		for _, to := range legal[from] {
			allowed[to] = true
		}
		for _, to := range all {
			if got := from.CanTransitionTo(to); got != allowed[to] {
				t.Fatalf("CanTransitionTo(%v -> %v) = %v, want %v", from, to, got, allowed[to])
			}
		}
	}
}

func TestMachineHappyPathInviter(t *testing.T) {
	// The inviter-side cycle of one computation round: C→I→W→U→E→C.
	m := NewMachine(3, nil)
	for _, s := range []State{Invite, Wait, Update, Exchange, Choose} {
		if err := m.TransitionTo(s); err != nil {
			t.Fatal(err)
		}
	}
	if m.State() != Choose || m.Transitions() != 5 {
		t.Fatalf("state %v after %d transitions", m.State(), m.Transitions())
	}
}

func TestMachineHappyPathListener(t *testing.T) {
	// Listener-side cycle ending in Done: C→L→R→U→E→D.
	m := NewMachine(0, nil)
	for _, s := range []State{Listen, Respond, Update, Exchange, Done} {
		if err := m.TransitionTo(s); err != nil {
			t.Fatal(err)
		}
	}
	if m.State() != Done {
		t.Fatalf("state %v, want D", m.State())
	}
	// Done is absorbing.
	if err := m.TransitionTo(Choose); err == nil {
		t.Fatal("escaped Done state")
	}
}

func TestMachineIllegalTransition(t *testing.T) {
	m := NewMachine(7, nil)
	err := m.TransitionTo(Wait) // C→W is not an automaton edge
	if err == nil {
		t.Fatal("C→W accepted")
	}
	var te *TransitionError
	if !errors.As(err, &te) {
		t.Fatalf("error type %T", err)
	}
	if te.Node != 7 || te.From != Choose || te.To != Wait {
		t.Fatalf("error fields: %+v", te)
	}
	if te.Error() == "" {
		t.Fatal("empty error message")
	}
	// State unchanged after a failed transition.
	if m.State() != Choose || m.Transitions() != 0 {
		t.Fatal("failed transition mutated machine")
	}
}

func TestMachineMustTransitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTransition did not panic on illegal edge")
		}
	}()
	NewMachine(0, nil).MustTransition(Done)
}

func TestMachineHook(t *testing.T) {
	type rec struct {
		node     int
		from, to State
	}
	var got []rec
	m := NewMachine(4, func(node int, from, to State) {
		got = append(got, rec{node, from, to})
	})
	m.MustTransition(Listen)
	m.MustTransition(Respond)
	if len(got) != 2 {
		t.Fatalf("hook fired %d times", len(got))
	}
	if got[0] != (rec{4, Choose, Listen}) || got[1] != (rec{4, Listen, Respond}) {
		t.Fatalf("hook records %v", got)
	}
}

func TestSplitInvites(t *testing.T) {
	inbox := []msg.Message{
		{Kind: msg.KindInvite, From: 1, To: 5, Edge: 10, Color: 0},
		{Kind: msg.KindInvite, From: 2, To: 9, Edge: 11, Color: 1},
		{Kind: msg.KindResponse, From: 3, To: 5, Edge: 12, Color: 2},
		{Kind: msg.KindInvite, From: 4, To: 5, Edge: 13, Color: 3},
	}
	mine, others := SplitInvites(5, inbox)
	if len(mine) != 2 || mine[0].From != 1 || mine[1].From != 4 {
		t.Fatalf("mine = %v", mine)
	}
	if len(others) != 1 || others[0].From != 2 {
		t.Fatalf("others = %v", others)
	}
	// Non-invite kinds are ignored entirely.
	mine, others = SplitInvites(5, inbox[2:3])
	if mine != nil || others != nil {
		t.Fatal("responses leaked into invite split")
	}
}

func TestFindResponse(t *testing.T) {
	inbox := []msg.Message{
		{Kind: msg.KindResponse, From: 2, To: 0, Edge: 7, Color: 1},
		{Kind: msg.KindResponse, From: 3, To: 8, Edge: 9, Color: 1},
		{Kind: msg.KindInvite, From: 4, To: 0, Edge: 7, Color: 2},
		{Kind: msg.KindResponse, From: 5, To: 0, Edge: 6, Color: 0},
	}
	acc, ok, overheard := FindResponse(0, 7, inbox)
	if !ok || acc.From != 2 {
		t.Fatalf("accepted = %v ok=%v", acc, ok)
	}
	// The response for a different edge and the one addressed elsewhere
	// are overheard; the invite is not a response at all.
	if len(overheard) != 2 {
		t.Fatalf("overheard = %v", overheard)
	}
	_, ok, _ = FindResponse(0, 99, inbox[:2])
	if ok {
		t.Fatal("found response for wrong edge")
	}
}
