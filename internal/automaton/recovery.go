package automaton

import "dima/internal/msg"

// Recovery configures the optional loss-recovery extension of the
// automaton and of the protocols built on it. The paper's model assumes
// reliable synchronous delivery; under injected faults (package net) a
// lost Response strands a negotiation half-committed. With recovery
// enabled, a node that committed state on the strength of a message
// retransmits it — bounded by a timeout and a retry budget — and peers
// answer authoritatively from their committed state instead of
// defensively rejecting, so transient loss delays convergence instead of
// corrupting it.
//
// The zero value disables recovery, which keeps every protocol's
// behavior — message streams, RNG consumption, results — byte-identical
// to the reliable-delivery implementation.
type Recovery struct {
	// Enabled turns the recovery protocol on.
	Enabled bool
	// TimeoutRounds is how many computation rounds a node waits for an
	// expected message before retransmitting. 0 means the default of 2.
	TimeoutRounds int
	// RetryBudget bounds retransmissions per negotiation. After the
	// budget is spent the node abandons the exchange and falls back to
	// the normal protocol, which may still repair the edge through a
	// fresh negotiation. 0 means the default of 8.
	RetryBudget int
}

// Timeout returns TimeoutRounds with the default applied.
func (r Recovery) Timeout() int {
	if r.TimeoutRounds <= 0 {
		return 2
	}
	return r.TimeoutRounds
}

// Budget returns RetryBudget with the default applied.
func (r Recovery) Budget() int {
	if r.RetryBudget <= 0 {
		return 8
	}
	return r.RetryBudget
}

// Reaffirmer is an optional Pairing extension consulted when recovery is
// enabled. A node that receives an invitation for an edge it has already
// committed cannot use the normal Respond path — it is no longer live —
// but silence would leave the inviter retrying forever. Reaffirm lets
// the pairing answer from committed state: typically a re-sent Response
// when the invitation's edge is the one it matched (its original
// Response was lost in transit), or a re-announcement of its actual
// match so the inviter stops waiting. The driver fills in From and
// mirrors the invitation's Seq before broadcasting.
//
// Reaffirm must return ok == false for invitations the normal protocol
// should handle (the pairing is still live and uncommitted).
type Reaffirmer interface {
	Reaffirm(invite msg.Message) (m msg.Message, ok bool)
}
