// Package automaton implements the paper's matching-discovery automaton
// (Fig. 1): the states a compute node moves through during one
// computation round, the legal transitions between them, and shared
// helpers for the invite/listen/respond/wait message pattern.
//
// The automaton is the reusable heart of the paper's framework (their
// ref [3]): a computation round discovers a matching on the graph —
// pairs of neighbors that may compute together without conflict — and a
// problem-specific protocol (edge coloring, strong edge coloring,
// vertex cover, ...) rides on the discovered pairs. Packages core and
// matching build concrete protocols on this machine.
package automaton

import (
	"fmt"

	"dima/internal/msg"
)

// State is a node state of the matching-discovery automaton. The paper
// labels them C, I, L, W, R, U, D and adds E (Exchange) for the coloring
// algorithms.
type State uint8

const (
	// Choose (C): flip a fair coin to become an inviter or a listener.
	Choose State = iota
	// Invite (I): pick an available edge and proposal and broadcast an
	// invitation to the chosen neighbor.
	Invite
	// Listen (L): collect invitations broadcast by neighbors.
	Listen
	// Respond (R): accept at most one of the invitations addressed here
	// and broadcast the acceptance.
	Respond
	// Wait (W): collect responses, looking for an acceptance of the
	// invitation sent in Invite.
	Wait
	// Update (U): apply the outcome of the negotiation to local state.
	Update
	// Exchange (E): broadcast newly used colors / claims so neighbors'
	// one-hop knowledge stays current.
	Exchange
	// Done (D): all local work is complete; the node is inert.
	Done
)

var stateNames = [...]string{"C", "I", "L", "R", "W", "U", "E", "D"}

func (s State) String() string {
	switch s {
	case Choose:
		return "C"
	case Invite:
		return "I"
	case Listen:
		return "L"
	case Respond:
		return "R"
	case Wait:
		return "W"
	case Update:
		return "U"
	case Exchange:
		return "E"
	case Done:
		return "D"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// CanTransitionTo reports whether the automaton permits moving from s to
// t: the edge set of Fig. 1, extended with the E state as in Algorithms
// 1 and 2 (U→E, E→C, E→D).
func (s State) CanTransitionTo(t State) bool {
	switch s {
	case Choose:
		return t == Invite || t == Listen
	case Invite:
		return t == Wait
	case Listen:
		return t == Respond
	case Respond:
		return t == Update
	case Wait:
		return t == Update
	case Update:
		return t == Exchange
	case Exchange:
		return t == Choose || t == Done
	case Done:
		return false
	}
	return false
}

// TransitionError reports an illegal state transition — always a
// protocol implementation bug, never a runtime condition.
type TransitionError struct {
	Node     int
	From, To State
}

func (e *TransitionError) Error() string {
	return fmt.Sprintf("automaton: node %d: illegal transition %v -> %v", e.Node, e.From, e.To)
}

// Hook observes transitions; used by the trace package.
type Hook func(node int, from, to State)

// Machine tracks one node's automaton state and enforces transition
// legality. The zero value is not usable; construct with NewMachine.
type Machine struct {
	node        int
	state       State
	transitions int
	hook        Hook
}

// NewMachine returns a machine for the given node, starting in Choose.
// hook may be nil.
func NewMachine(node int, hook Hook) *Machine {
	return &Machine{node: node, state: Choose, hook: hook}
}

// State returns the current state.
func (m *Machine) State() State { return m.state }

// Transitions returns the number of transitions taken.
func (m *Machine) Transitions() int { return m.transitions }

// TransitionTo moves the machine to state t, or reports a
// TransitionError if the automaton has no such edge.
func (m *Machine) TransitionTo(t State) error {
	if !m.state.CanTransitionTo(t) {
		return &TransitionError{Node: m.node, From: m.state, To: t}
	}
	from := m.state
	m.state = t
	m.transitions++
	if m.hook != nil {
		m.hook(m.node, from, t)
	}
	return nil
}

// MustTransition is TransitionTo that panics on an illegal transition.
// Protocol code uses it because an illegal transition is a bug in the
// protocol, not an input-dependent condition.
func (m *Machine) MustTransition(t State) {
	if err := m.TransitionTo(t); err != nil {
		panic(err)
	}
}

// SplitInvites partitions the invitations in an inbox into those
// addressed to node u ("mine") and those overheard ("others") — the
// grouping the R state of Algorithm 2 calls group a and group b. The
// input order (canonical inbox order) is preserved within each group.
func SplitInvites(u int, inbox []msg.Message) (mine, others []msg.Message) {
	for _, m := range inbox {
		if m.Kind != msg.KindInvite {
			continue
		}
		if m.To == u {
			mine = append(mine, m)
		} else {
			others = append(others, m)
		}
	}
	return mine, others
}

// FindResponse returns the response in the inbox addressed to node u for
// the given edge, if any; other responses are overheard and returned in
// overheard order.
func FindResponse(u, edge int, inbox []msg.Message) (accepted msg.Message, ok bool, overheard []msg.Message) {
	for _, m := range inbox {
		if m.Kind != msg.KindResponse {
			continue
		}
		if m.To == u && m.Edge == edge {
			accepted, ok = m, true
		} else {
			overheard = append(overheard, m)
		}
	}
	return accepted, ok, overheard
}
