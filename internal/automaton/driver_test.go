package automaton

import (
	"testing"

	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
)

// maxPairing is a toy Pairing demonstrating a custom protocol on the
// driver: every node holds a value; when a pair forms, both members
// learn the larger of the two values (a pairwise-gossip maximum). A node
// retires after enough pairings — or after its patience runs out, since
// a neighbor that retired first can never pair again.
type maxPairing struct {
	id       int
	g        *graph.Graph
	value    int
	rounds   int // pairings still wanted
	patience int // computation rounds before giving up
	partner  map[int]bool
}

func (p *maxPairing) Live() bool {
	return p.rounds > 0 && p.patience > 0 && p.g.Degree(p.id) > 0
}

func (p *maxPairing) Absorb(inbox []msg.Message) { p.patience-- }

func (p *maxPairing) Invite(r *rng.Rand) (msg.Message, bool) {
	nbrs := p.g.Neighbors(p.id)
	v := nbrs[r.Intn(len(nbrs))]
	// Carry the value in the Color field.
	return msg.Message{From: p.id, To: v, Edge: -1, Color: p.value}, true
}

func (p *maxPairing) Respond(mine, _ []msg.Message, r *rng.Rand) (msg.Message, bool) {
	m := mine[r.Intn(len(mine))]
	reply := msg.Message{To: m.From, Edge: -1, Color: p.value}
	if m.Color > p.value {
		p.value = m.Color
	}
	p.pairDone(m.From)
	return reply, true
}

func (p *maxPairing) Complete(response msg.Message) {
	if response.Color > p.value {
		p.value = response.Color
	}
	p.pairDone(response.From)
}

func (p *maxPairing) pairDone(partner int) {
	p.rounds--
	p.partner[partner] = true
}

func (p *maxPairing) Exchange() []msg.Message { return nil }

func TestDriverHostsCustomPairing(t *testing.T) {
	// A path graph; values increase with id. After enough pairings the
	// maximum value propagates locally: every node that paired with a
	// higher-valued neighbor holds that value.
	g := graph.New(6)
	for u := 0; u+1 < 6; u++ {
		g.MustAddEdge(u, u+1)
	}
	base := rng.New(9)
	nodes := make([]net.Node, g.N())
	ps := make([]*maxPairing, g.N())
	for u := 0; u < g.N(); u++ {
		ps[u] = &maxPairing{id: u, g: g, value: u * 10, rounds: 3, patience: 60, partner: map[int]bool{}}
		nodes[u] = NewDriver(u, base.Derive(uint64(u)), ps[u], nil)
	}
	res, err := net.RunSync(g, nodes, net.Config{MaxRounds: 3 * 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("custom protocol did not terminate")
	}
	paired := 0
	for u, p := range ps {
		paired += len(p.partner)
		// Values only ever increase and never exceed the global max.
		if p.value < u*10 || p.value > 50 {
			t.Fatalf("node %d value %d out of range", u, p.value)
		}
		// Every partner is an actual neighbor: pairs formed on edges.
		for v := range p.partner {
			if !g.HasEdge(u, v) {
				t.Fatalf("node %d paired with non-neighbor %d", u, v)
			}
		}
	}
	if paired == 0 {
		t.Fatal("no pairings formed at all")
	}
}

// skipPairing declines every invitation opportunity; the driver must
// still terminate once Live turns false externally.
type skipPairing struct {
	budget int
}

func (p *skipPairing) Live() bool { return p.budget > 0 }
func (p *skipPairing) Absorb(inbox []msg.Message) {
	p.budget--
}
func (p *skipPairing) Invite(r *rng.Rand) (msg.Message, bool) { return msg.Message{}, false }
func (p *skipPairing) Respond(mine, _ []msg.Message, r *rng.Rand) (msg.Message, bool) {
	return msg.Message{}, false
}
func (p *skipPairing) Complete(response msg.Message) {}
func (p *skipPairing) Exchange() []msg.Message       { return nil }

func TestDriverInviteSkipAndBudget(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	base := rng.New(11)
	nodes := []net.Node{
		NewDriver(0, base.Derive(0), &skipPairing{budget: 4}, nil),
		NewDriver(1, base.Derive(1), &skipPairing{budget: 4}, nil),
	}
	res, err := net.RunSync(g, nodes, net.Config{MaxRounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("skip protocol did not terminate")
	}
	if res.Messages != 0 {
		t.Fatalf("skip protocol sent %d messages", res.Messages)
	}
}

func TestDriverDeadOnArrival(t *testing.T) {
	d := NewDriver(0, rng.New(1), &skipPairing{budget: 0}, nil)
	if !d.Done() {
		t.Fatal("driver with no work not Done at construction")
	}
	if out := d.Step(0, nil); out != nil {
		t.Fatal("done driver produced output")
	}
}

// badPairing builds an invitation with the wrong From id — a protocol
// bug the driver must catch loudly.
type badPairing struct{}

func (badPairing) Live() bool                 { return true }
func (badPairing) Absorb(inbox []msg.Message) {}
func (badPairing) Invite(r *rng.Rand) (msg.Message, bool) {
	return msg.Message{From: 99, To: 1}, true
}
func (badPairing) Respond(mine, _ []msg.Message, r *rng.Rand) (msg.Message, bool) {
	return msg.Message{}, false
}
func (badPairing) Complete(response msg.Message) {}
func (badPairing) Exchange() []msg.Message       { return nil }

func TestDriverRejectsForgedInvitations(t *testing.T) {
	d := NewDriver(0, rng.New(2), badPairing{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("forged From accepted")
		}
	}()
	// The coin may land on Listen; step until the invite path fires.
	for round := 0; ; round += 3 {
		d.Step(round, nil)
		d.Step(round+1, nil)
		d.Step(round+2, nil)
	}
}
