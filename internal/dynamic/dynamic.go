// Package dynamic maintains a valid edge coloring of a mutating graph:
// it takes a graph plus a coloring produced by any engine and applies
// batches of edge insertions and deletions, repairing only the affected
// region instead of recoloring all m edges.
//
// The locality comes straight from the paper's model: the matching
// automaton colors edges using one-hop information only, so a broken
// patch of the coloring can be re-negotiated by the patch's endpoints
// alone, with the surrounding intact coloring entering as per-vertex
// forbidden color sets (core.ColorEdgesConstrained). Deletions never
// break validity — the freed color simply returns to the palette.
// Insertions are repaired in two tiers:
//
//  1. Greedy fast path: if some color under the palette cap is free at
//     both endpoints, take the lowest such color. With the default cap
//     of 2Δ−1 this always succeeds (each endpoint blocks at most Δ−1
//     colors), so single insertions are O(Δ).
//  2. Automaton repair: under a tighter caller-chosen cap (Options.
//     Palette) the fast path can fail; failed edges form the uncolored
//     frontier, and the matching automaton re-runs on a sub-network
//     view containing only the frontier edges, constrained by the
//     colors already present around it.
//
// Sustained churn degrades two things repairs alone never reclaim:
// delete-heavy stretches leave edge-id holes (EdgeIDBound grows past
// the live count) and palette colors that nothing wears anymore, while
// insertion spikes push the 2Δ−1 cap — and with it the colors repairs
// hand out — above what the post-spike graph needs. Maintain is the
// counterpart: an explicit (or auto-triggered, Options.Maintain)
// maintenance pass that compacts the id space in place and rebalances
// the palette back under 2Δ−1 for the *current* Δ, deterministically
// (docs/DYNAMIC.md).
package dynamic

import (
	"context"
	"fmt"

	"dima/internal/core"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/rng"
)

// Options configures a Recolorer. The zero value is valid: seed 0,
// automatic palette cap (2Δ−1 under the current Δ), sequential engine
// for repairs.
type Options struct {
	// Seed determines every random choice; per-batch repair seeds are
	// derived from it and the batch index, so a fixed seed plus a fixed
	// mutation stream reproduces the exact coloring sequence.
	Seed uint64
	// Palette, when > 0, caps the colors the greedy fast path may use;
	// insertions that cannot be colored under the cap go to the
	// automaton repair instead. 0 means 2Δ−1 under the graph's current
	// maximum degree, which makes the fast path always succeed.
	Palette int
	// Repair configures the constrained automaton runs (engine, workers,
	// recovery, faults, color rule...). Seed, MaxCompRounds and Metrics
	// are per-run concerns managed by the Recolorer: Seed is derived as
	// described above, and MaxCompRounds falls back to a region-sized
	// bound when unset.
	Repair core.Options
	// Strict makes New verify the initial coloring and reject invalid
	// ones; cold-run results are already verified by their engines, so
	// this is off by default.
	Strict bool
	// Maintain, when non-nil, auto-triggers a maintenance pass
	// (compaction + palette rebalance, see Maintain) after any Apply
	// whose post-batch state trips the policy's thresholds. Nil — the
	// zero value — runs no maintenance and leaves the per-batch seed
	// derivation untouched, so pre-maintenance streams replay
	// byte-identically.
	Maintain *MaintainOptions
}

// Report describes the work one Apply call did.
type Report struct {
	// Inserted and Deleted count applied mutations.
	Inserted, Deleted int
	// GreedyColored counts insertions colored by the fast path.
	GreedyColored int
	// RepairedEdges counts frontier edges colored by the constrained
	// automaton run (plus FallbackEdges if it left any behind).
	RepairedEdges int
	// RepairRounds is the number of computation rounds the automaton
	// repair took (0 when no repair ran).
	RepairRounds int
	// RegionSize is the number of vertices in the sub-network view the
	// repair ran on (0 when no repair ran).
	RegionSize int
	// RegionEdges is the number of frontier edges handed to the repair.
	RegionEdges int
	// FallbackEdges counts edges the automaton run left uncolored
	// (round bound hit or canceled context) that the guaranteed 2Δ−1
	// greedy completion colored instead.
	FallbackEdges int
	// Aborted reports that the context was canceled during the repair;
	// the coloring is still complete and valid (the fallback finished
	// the frontier), but locality/palette quality may have degraded.
	Aborted bool
	// NumColors and MaxColor describe the palette after the batch
	// (after any auto-triggered maintenance pass).
	NumColors, MaxColor int
	// Maintenance carries the auto-triggered maintenance pass's report
	// when Options.Maintain is set and a threshold tripped; nil
	// otherwise.
	Maintenance *MaintainReport
}

// Recolorer owns a graph and its coloring and keeps the coloring valid
// across mutation batches. Not safe for concurrent use.
type Recolorer struct {
	g      *graph.Graph
	colors []int // indexed by graph.EdgeID; -1 at removal holes
	// Palette accounting, O(1) per mutation: count[c] is the number of
	// live edges wearing color c, used the number of distinct colors in
	// use, maxColor the largest (-1 when none). maxColor walks down
	// lazily when its class empties, amortized against the setColor
	// that raised it.
	count    []int
	used     int
	maxColor int
	opt      Options
	batch    uint64 // batches applied; salts per-batch repair seeds
	passes   uint64 // maintenance passes run; salts per-pass seeds
}

// New wraps g and colors (indexed by graph.EdgeID, so len(colors) ==
// g.EdgeIDBound()) in a Recolorer. Both are owned by the Recolorer
// afterwards: callers must not mutate them, and callers that need the
// originals intact should pass g.Clone() and a copy of the slice.
func New(g *graph.Graph, colors []int, opt Options) (*Recolorer, error) {
	if len(colors) != g.EdgeIDBound() {
		return nil, fmt.Errorf("dynamic: %d colors for %d edge ids", len(colors), g.EdgeIDBound())
	}
	rc := &Recolorer{
		g:        g,
		colors:   colors,
		maxColor: -1,
		opt:      opt,
	}
	for id, c := range colors {
		if !g.Live(graph.EdgeID(id)) {
			continue
		}
		if c < 0 {
			return nil, fmt.Errorf("dynamic: edge %v uncolored", g.EdgeAt(graph.EdgeID(id)))
		}
		rc.addColor(c)
	}
	if opt.Strict {
		if err := rc.check(); err != nil {
			return nil, err
		}
	}
	return rc, nil
}

// check verifies the coloring is proper and the O(1) palette census
// (count/used/maxColor) matches a from-scratch rebuild; used by Strict
// and tests.
func (rc *Recolorer) check() error {
	for u := 0; u < rc.g.N(); u++ {
		var seen core.ColorSet
		for _, e := range rc.g.IncidentEdges(u) {
			c := rc.colors[e]
			if c < 0 {
				return fmt.Errorf("dynamic: edge %v uncolored", rc.g.EdgeAt(e))
			}
			if seen.Has(c) {
				return fmt.Errorf("dynamic: color %d repeated at vertex %d", c, u)
			}
			seen.Add(c)
		}
	}
	want := make([]int, len(rc.count))
	used, maxColor := 0, -1
	for id := 0; id < rc.g.EdgeIDBound(); id++ {
		c := rc.colors[id]
		if !rc.g.Live(graph.EdgeID(id)) || c < 0 {
			continue
		}
		if c >= len(want) {
			return fmt.Errorf("dynamic: color %d beyond census length %d", c, len(want))
		}
		if want[c] == 0 {
			used++
		}
		want[c]++
		if c > maxColor {
			maxColor = c
		}
	}
	for c, n := range want {
		if rc.count[c] != n {
			return fmt.Errorf("dynamic: census count[%d] = %d, want %d", c, rc.count[c], n)
		}
	}
	if rc.used != used || rc.maxColor != maxColor {
		return fmt.Errorf("dynamic: census used/max = %d/%d, want %d/%d",
			rc.used, rc.maxColor, used, maxColor)
	}
	return nil
}

// Graph returns the graph being maintained. Callers must not mutate it.
func (rc *Recolorer) Graph() *graph.Graph { return rc.g }

// Colors returns the maintained coloring, indexed by graph.EdgeID with
// -1 at removal holes. Callers must not mutate it.
func (rc *Recolorer) Colors() []int { return rc.colors }

// NumColors returns the number of distinct colors currently in use.
// Freed colors leave the census immediately, so a delete-only batch is
// reflected here, not just insertions.
func (rc *Recolorer) NumColors() int { return rc.used }

// MaxColor returns the largest color currently in use, or -1.
func (rc *Recolorer) MaxColor() int { return rc.maxColor }

// Compacted returns an independent dense copy of the current state:
// a graph without removal holes and its coloring re-indexed to match.
// The Recolorer itself keeps running on the holey ids, so compaction is
// a snapshot for export, not a state change.
func (rc *Recolorer) Compacted() (*graph.Graph, []int) {
	cg, ids := rc.g.Compacted()
	colors := make([]int, len(ids))
	for newID, oldID := range ids {
		colors[newID] = rc.colors[oldID]
	}
	return cg, colors
}

// Apply applies one mutation batch atomically and repairs the coloring.
// The batch is validated first (syntax via MutationBatch.Validate,
// applicability — insert-of-existing, delete-of-missing — against the
// current graph plus the batch's own earlier mutations); a rejected
// batch changes nothing. After a successful Apply every live edge is
// colored and the coloring is proper.
func (rc *Recolorer) Apply(b *msg.MutationBatch) (*Report, error) {
	return rc.ApplyCtx(context.Background(), b)
}

// ApplyCtx is Apply bounded by ctx. Cancellation interrupts only the
// automaton repair phase; the batch still completes (mutations are
// already applied by then) through the greedy fallback, with
// Report.Aborted set.
func (rc *Recolorer) ApplyCtx(ctx context.Context, b *msg.MutationBatch) (*Report, error) {
	if err := b.Validate(rc.g.N()); err != nil {
		return nil, fmt.Errorf("dynamic: batch %d: %v", b.Seq, err)
	}
	// Applicability check against the pre-batch graph: Validate already
	// rejected duplicate pairs, so each mutation sees the graph
	// unchanged at its own edge.
	for i, m := range b.Muts {
		exists := rc.g.HasEdge(m.U, m.V)
		if m.Op == msg.OpInsert && exists {
			return nil, fmt.Errorf("dynamic: batch %d: mutation %d inserts existing edge (%d,%d)", b.Seq, i, m.U, m.V)
		}
		if m.Op == msg.OpDelete && !exists {
			return nil, fmt.Errorf("dynamic: batch %d: mutation %d deletes missing edge (%d,%d)", b.Seq, i, m.U, m.V)
		}
	}

	rep := &Report{}
	var inserted []graph.EdgeID
	for _, m := range b.Muts {
		switch m.Op {
		case msg.OpDelete:
			id, err := rc.g.RemoveEdge(m.U, m.V)
			if err != nil {
				panic(fmt.Sprintf("dynamic: validated delete failed: %v", err)) // unreachable
			}
			rc.dropColor(rc.colors[id])
			rc.colors[id] = -1
			rep.Deleted++
		case msg.OpInsert:
			id, err := rc.g.AddEdge(m.U, m.V)
			if err != nil {
				panic(fmt.Sprintf("dynamic: validated insert failed: %v", err)) // unreachable
			}
			for len(rc.colors) < rc.g.EdgeIDBound() {
				rc.colors = append(rc.colors, -1)
			}
			rc.colors[id] = -1
			inserted = append(inserted, id)
			rep.Inserted++
		}
	}

	// Greedy fast path over the insertions, in order. The cap is fixed
	// for the whole batch so earlier greedy picks cannot starve later
	// ones into a cap that shifted mid-batch.
	palCap := rc.paletteCap()
	var frontier []graph.EdgeID
	for _, id := range inserted {
		e := rc.g.EdgeAt(id)
		if c := core.LowestFree(rc.usedAt(e.U), rc.usedAt(e.V)); c < palCap {
			rc.setColor(id, c)
			rep.GreedyColored++
		} else {
			frontier = append(frontier, id)
		}
	}
	if len(frontier) > 0 {
		seed := rng.Mix64(rc.opt.Seed ^ rng.Mix64(rc.batch+1))
		out, err := rc.repairFrontier(ctx, frontier, seed)
		if err != nil {
			return nil, err
		}
		rep.RegionSize = out.regionSize
		rep.RegionEdges = out.regionEdges
		rep.RepairRounds = out.rounds
		rep.RepairedEdges = out.repaired
		rep.FallbackEdges = out.fallback
		rep.Aborted = out.aborted
	}
	rc.batch++
	if rc.opt.Maintain != nil {
		mrep, err := rc.maintain(ctx, *rc.opt.Maintain, false)
		if err != nil {
			return nil, err
		}
		if mrep != nil {
			rep.Maintenance = mrep
			rep.Aborted = rep.Aborted || mrep.Aborted
		}
	}
	rep.NumColors = rc.NumColors()
	rep.MaxColor = rc.MaxColor()
	return rep, nil
}

// paletteCap returns the active cap for the greedy fast path. The
// automatic cap is 2Δ−1 under the graph's *current* maximum degree —
// an O(1) read of the incrementally tracked Δ — so delete-heavy
// batches shrink the cap immediately and the fast path stops handing
// out colors the thinned graph no longer needs.
func (rc *Recolorer) paletteCap() int {
	if rc.opt.Palette > 0 {
		return rc.opt.Palette
	}
	if d := rc.g.MaxDegree(); d > 0 {
		return 2*d - 1
	}
	return 1
}

// usedAt collects the colors on u's colored incident edges.
func (rc *Recolorer) usedAt(u int) *core.ColorSet {
	s := &core.ColorSet{}
	for _, e := range rc.g.IncidentEdges(u) {
		if c := rc.colors[e]; c >= 0 {
			s.Add(c)
		}
	}
	return s
}

func (rc *Recolorer) setColor(id graph.EdgeID, c int) {
	rc.colors[id] = c
	rc.addColor(c)
}

func (rc *Recolorer) addColor(c int) {
	for len(rc.count) <= c {
		rc.count = append(rc.count, 0)
	}
	if rc.count[c] == 0 {
		rc.used++
	}
	rc.count[c]++
	if c > rc.maxColor {
		rc.maxColor = c
	}
}

func (rc *Recolorer) dropColor(c int) {
	if c < 0 {
		return
	}
	rc.count[c]--
	if rc.count[c] == 0 {
		rc.used--
		for rc.maxColor >= 0 && rc.count[rc.maxColor] == 0 {
			rc.maxColor--
		}
	}
}

// repairOutcome summarizes one constrained automaton run over an
// uncolored frontier, for both batch repairs and maintenance
// rebalances to fold into their own reports.
type repairOutcome struct {
	regionSize  int
	regionEdges int
	rounds      int
	repaired    int
	fallback    int
	aborted     bool
}

// repairFrontier runs the matching automaton on the sub-network view
// spanned by the uncolored frontier: vertices are the frontier edges'
// endpoints, edges are the frontier edges only, and every color already
// present on a region vertex's other edges — whether the neighbor is in
// the region or not — enters as a forbidden color. That constraint set
// is exactly the one-hop knowledge the vertex would have accumulated
// from its neighbors' exchange broadcasts, so the automaton behaves as
// if it were resuming the original run with the rest of the coloring
// frozen. The caller supplies the run seed (batch repairs and
// maintenance passes derive theirs from disjoint salt streams).
func (rc *Recolorer) repairFrontier(ctx context.Context, frontier []graph.EdgeID, seed uint64) (repairOutcome, error) {
	// Dense vertex ids for the region, in frontier order.
	toSub := make(map[int]int)
	var toFull []int
	subID := func(u int) int {
		if s, ok := toSub[u]; ok {
			return s
		}
		s := len(toFull)
		toSub[u] = s
		toFull = append(toFull, u)
		return s
	}
	for _, id := range frontier {
		e := rc.g.EdgeAt(id)
		subID(e.U)
		subID(e.V)
	}
	sub := graph.New(len(toFull))
	subEdge := make([]graph.EdgeID, len(frontier)) // sub edge id -> full edge id
	for i, id := range frontier {
		e := rc.g.EdgeAt(id)
		sid := sub.MustAddEdge(toSub[e.U], toSub[e.V])
		subEdge[sid] = frontier[i]
	}
	forbidden := make([]*core.ColorSet, len(toFull))
	for s, u := range toFull {
		forbidden[s] = rc.usedAt(u)
	}

	opt := rc.opt.Repair
	opt.Seed = seed
	opt.Metrics = nil
	if opt.MaxCompRounds <= 0 {
		// O(Δ_sub + palette headroom) rounds cover the automaton's
		// expected convergence on the region; the fallback below makes
		// running out safe, so the bound can stay tight.
		opt.MaxCompRounds = 8 * (sub.MaxDegree() + 4)
	}
	res, err := core.ColorEdgesConstrained(ctx, sub, forbidden, opt)
	if err != nil {
		return repairOutcome{}, fmt.Errorf("dynamic: frontier repair: %v", err)
	}
	out := repairOutcome{
		regionSize:  sub.N(),
		regionEdges: sub.M(),
		rounds:      res.CompRounds,
		aborted:     res.Aborted,
	}
	for sid, c := range res.Colors {
		if c >= 0 {
			rc.setColor(subEdge[sid], c)
			out.repaired++
		}
	}
	// Guaranteed completion: any edge the bounded (or canceled) run left
	// uncolored gets the lowest color free at both endpoints, which
	// exists below 2Δ−1 whatever the cap was. Validity is never traded
	// away — only the palette bound degrades.
	for sid, c := range res.Colors {
		if c < 0 {
			id := subEdge[sid]
			e := rc.g.EdgeAt(id)
			rc.setColor(id, core.LowestFree(rc.usedAt(e.U), rc.usedAt(e.V)))
			out.repaired++
			out.fallback++
		}
	}
	return out, nil
}
