package dynamic

import (
	"context"
	"testing"

	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// coldColor generates a GNM graph and colors it from scratch.
func coldColor(t *testing.T, n, m int, seed uint64, opt core.Options) (*graph.Graph, *core.Result) {
	t.Helper()
	g, err := gen.ErdosRenyiGNM(rng.New(seed), n, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ColorEdges(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("cold run did not terminate")
	}
	return g, res
}

// randomBatch draws a mixed batch against the current graph: deletions
// of existing edges, insertions of missing ones, no duplicate pairs.
func randomBatch(r *rng.Rand, g *graph.Graph, size int) *msg.MutationBatch {
	b := &msg.MutationBatch{}
	touched := map[[2]int]bool{}
	for len(b.Muts) < size {
		u, v := r.Intn(g.N()), r.Intn(g.N())
		if u == v {
			continue
		}
		p := [2]int{min(u, v), max(u, v)}
		if touched[p] {
			continue
		}
		touched[p] = true
		op := msg.OpInsert
		if g.HasEdge(u, v) {
			if r.Float64() < 0.4 {
				continue // leave some existing edges alone
			}
			op = msg.OpDelete
		}
		b.Muts = append(b.Muts, msg.Mutation{Op: op, U: u, V: v})
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// assertValid checks the maintained coloring against the same predicate
// a cold run is held to.
func assertValid(t *testing.T, rc *Recolorer) {
	t.Helper()
	if v := verify.EdgeColoring(rc.Graph(), rc.Colors()); len(v) > 0 {
		t.Fatalf("invalid maintained coloring: %v", v[0])
	}
}

// TestRecolorerPropertyChurn is the subsystem's central property test:
// across all three engines, with and without the recovery layer, any
// random mutation sequence leaves the incrementally maintained coloring
// passing the same verify predicate as a cold full recolor of the
// mutated graph.
func TestRecolorerPropertyChurn(t *testing.T) {
	engines := []struct {
		name string
		e    net.Engine
	}{{"sync", net.RunSync}, {"chan", net.RunChan}, {"shard", net.RunShard}}
	for _, eng := range engines {
		for _, recovery := range []bool{false, true} {
			name := eng.name
			if recovery {
				name += "-recovery"
			}
			t.Run(name, func(t *testing.T) {
				copt := core.Options{Seed: 5, Engine: eng.e, Workers: 3}
				copt.Recovery.Enabled = recovery
				g, res := coldColor(t, 60, 150, 17, copt)
				// A tight palette cap (the cold palette) forces real
				// automaton repairs, not just greedy fills.
				rc, err := New(g, res.Colors, Options{
					Seed:    9,
					Palette: res.MaxColor + 1,
					Repair:  copt,
				})
				if err != nil {
					t.Fatal(err)
				}
				r := rng.New(33)
				repairs := 0
				for i := 0; i < 25; i++ {
					b := randomBatch(r, rc.Graph(), 1+r.Intn(8))
					b.Seq = uint64(i)
					rep, err := rc.Apply(b)
					if err != nil {
						t.Fatalf("batch %d: %v", i, err)
					}
					if rep.GreedyColored+rep.RepairedEdges != rep.Inserted {
						t.Fatalf("batch %d: %d greedy + %d repaired != %d inserted",
							i, rep.GreedyColored, rep.RepairedEdges, rep.Inserted)
					}
					repairs += rep.RegionEdges
					assertValid(t, rc)
					if err := rc.check(); err != nil {
						t.Fatalf("batch %d: %v", i, err)
					}
				}
				// The cold predicate on the mutated graph: recolor the
				// compacted snapshot from scratch and verify it too.
				cg, _ := rc.Compacted()
				cold, err := core.ColorEdges(cg, copt)
				if err != nil {
					t.Fatal(err)
				}
				if v := verify.EdgeColoring(cg, cold.Colors); len(v) > 0 {
					t.Fatalf("cold recolor of mutated graph invalid: %v", v[0])
				}
				if repairs == 0 {
					t.Log("warning: no batch reached the automaton repair path")
				}
			})
		}
	}
}

// TestRecolorerDeterminism: a fixed seed and a fixed mutation stream
// reproduce the exact same coloring, byte for byte.
func TestRecolorerDeterminism(t *testing.T) {
	run := func() []int {
		copt := core.Options{Seed: 3}
		g, res := coldColor(t, 50, 120, 8, copt)
		rc, err := New(g, append([]int(nil), res.Colors...), Options{
			Seed: 42, Palette: res.MaxColor + 1, Repair: copt,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(1000)
		for i := 0; i < 15; i++ {
			if _, err := rc.Apply(randomBatch(r, rc.Graph(), 5)); err != nil {
				t.Fatal(err)
			}
		}
		return rc.Colors()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("colors diverge at edge %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestRecolorerGreedyDefaultNeverRepairs: with the default palette cap
// (2Δ−1) the fast path must absorb every insertion.
func TestRecolorerGreedyDefaultNeverRepairs(t *testing.T) {
	copt := core.Options{Seed: 2}
	g, res := coldColor(t, 40, 100, 4, copt)
	rc, err := New(g, res.Colors, Options{Seed: 6, Repair: copt})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(55)
	for i := 0; i < 20; i++ {
		rep, err := rc.Apply(randomBatch(r, rc.Graph(), 6))
		if err != nil {
			t.Fatal(err)
		}
		if rep.RegionEdges != 0 || rep.GreedyColored != rep.Inserted {
			t.Fatalf("batch %d: default cap reached the repair path: %+v", i, rep)
		}
		assertValid(t, rc)
	}
	// Palette bound: never beyond 2Δ−1 for the current Δ.
	if maxc := rc.MaxColor(); maxc > 2*rc.Graph().MaxDegree()-2 {
		t.Fatalf("max color %d exceeds 2Δ−2 = %d", maxc, 2*rc.Graph().MaxDegree()-2)
	}
}

// TestRecolorerPaletteCapForcesRepair drives insertions into a single
// vertex under a tight cap so the automaton path must fire.
func TestRecolorerPaletteCapForcesRepair(t *testing.T) {
	// Star K1,5 colored 0..4; cap 5 leaves no free color at the center
	// for a new spoke, forcing the frontier path.
	g := graph.New(8)
	colors := make([]int, 5)
	for i := 0; i < 5; i++ {
		id := g.MustAddEdge(0, i+1)
		colors[id] = i
	}
	rc, err := New(g, colors, Options{Seed: 1, Palette: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rc.Apply(&msg.MutationBatch{Muts: []msg.Mutation{
		{Op: msg.OpInsert, U: 0, V: 6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RegionEdges != 1 || rep.RepairedEdges != 1 || rep.GreedyColored != 0 {
		t.Fatalf("repair path not taken: %+v", rep)
	}
	if rep.RegionSize != 2 {
		t.Fatalf("region should be the two endpoints, got %d vertices", rep.RegionSize)
	}
	assertValid(t, rc)
	// The region automaton is still bound by the constraints: color 5
	// (first free beyond the cap) is what the fallback or automaton
	// must land on, never a color clashing at the center.
	if c := rc.Colors()[5]; c < 5 {
		t.Fatalf("new spoke colored %d, which clashes at the center", c)
	}
}

// TestRecolorerAtomicity: a batch with any inapplicable mutation leaves
// graph and coloring untouched.
func TestRecolorerAtomicity(t *testing.T) {
	copt := core.Options{Seed: 1}
	g, res := coldColor(t, 20, 40, 2, copt)
	rc, err := New(g, res.Colors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int(nil), rc.Colors()...)
	m0 := rc.Graph().M()
	e := rc.Graph().EdgeAt(0)
	bad := []*msg.MutationBatch{
		{Muts: []msg.Mutation{{Op: msg.OpInsert, U: e.U, V: e.V}}},                                     // insert existing
		{Muts: []msg.Mutation{{Op: msg.OpDelete, U: e.U, V: e.V}, {Op: msg.OpDelete, U: e.U, V: e.V}}}, // duplicate pair
		{Muts: []msg.Mutation{{Op: msg.OpInsert, U: 0, V: 99}}},                                        // out of range
		{Muts: []msg.Mutation{{Op: msg.OpDelete, U: e.U, V: e.V}, {Op: msg.OpInsert, U: 5, V: 5}}},     // valid then self-loop
	}
	// A delete-of-missing pair, found by probing.
	for u := 0; u < 20 && len(bad) < 5; u++ {
		for v := u + 1; v < 20; v++ {
			if !rc.Graph().HasEdge(u, v) {
				bad = append(bad, &msg.MutationBatch{Muts: []msg.Mutation{
					{Op: msg.OpDelete, U: e.U, V: e.V}, // applicable first
					{Op: msg.OpDelete, U: u, V: v},     // then missing
				}})
				break
			}
		}
	}
	for i, b := range bad {
		if _, err := rc.Apply(b); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
		if rc.Graph().M() != m0 {
			t.Fatalf("bad batch %d mutated the graph", i)
		}
		for id, c := range rc.Colors() {
			if c != before[id] {
				t.Fatalf("bad batch %d mutated the coloring", i)
			}
		}
	}
}

// TestRecolorerCancelStaysValid: a canceled context degrades locality,
// never validity — the fallback completes the frontier.
func TestRecolorerCancelStaysValid(t *testing.T) {
	g := graph.New(8)
	colors := make([]int, 5)
	for i := 0; i < 5; i++ {
		id := g.MustAddEdge(0, i+1)
		colors[id] = i
	}
	rc, err := New(g, colors, Options{Seed: 1, Palette: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := rc.ApplyCtx(ctx, &msg.MutationBatch{Muts: []msg.Mutation{
		{Op: msg.OpInsert, U: 0, V: 6},
		{Op: msg.OpInsert, U: 0, V: 7},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted || rep.FallbackEdges == 0 {
		t.Fatalf("canceled repair should fall back: %+v", rep)
	}
	assertValid(t, rc)
	if err := rc.check(); err != nil {
		t.Fatal(err)
	}
}

// TestRecolorerDeleteOnly: deletions free colors and shrink the palette
// accounting without ever touching the automaton.
func TestRecolorerDeleteOnly(t *testing.T) {
	copt := core.Options{Seed: 14}
	g, res := coldColor(t, 30, 60, 3, copt)
	rc, err := New(g, res.Colors, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rc.Graph().M() > 0 {
		var mut msg.Mutation
		for id := 0; id < rc.Graph().EdgeIDBound(); id++ {
			if rc.Graph().Live(graph.EdgeID(id)) {
				e := rc.Graph().EdgeAt(graph.EdgeID(id))
				mut = msg.Mutation{Op: msg.OpDelete, U: e.U, V: e.V}
				break
			}
		}
		rep, err := rc.Apply(&msg.MutationBatch{Muts: []msg.Mutation{mut}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.RegionEdges != 0 || rep.Inserted != 0 {
			t.Fatalf("deletion triggered repair: %+v", rep)
		}
		assertValid(t, rc)
	}
	if rc.NumColors() != 0 || rc.MaxColor() != -1 {
		t.Fatalf("empty graph still reports colors: %d/%d", rc.NumColors(), rc.MaxColor())
	}
}

// TestCompactedSnapshot: the dense export matches the holey state and
// is itself a valid (graph, coloring) pair.
func TestCompactedSnapshot(t *testing.T) {
	copt := core.Options{Seed: 19}
	g, res := coldColor(t, 25, 70, 6, copt)
	rc, err := New(g, res.Colors, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(71)
	for i := 0; i < 10; i++ {
		if _, err := rc.Apply(randomBatch(r, rc.Graph(), 4)); err != nil {
			t.Fatal(err)
		}
	}
	cg, colors := rc.Compacted()
	if cg.M() != rc.Graph().M() || cg.EdgeIDBound() != cg.M() {
		t.Fatalf("compacted shape: M=%d want %d, bound=%d", cg.M(), rc.Graph().M(), cg.EdgeIDBound())
	}
	if v := verify.EdgeColoring(cg, colors); len(v) > 0 {
		t.Fatalf("compacted coloring invalid: %v", v[0])
	}
	// The snapshot is independent: mutating it must not leak back.
	cg.MustAddEdge(0, 1)
}

// TestNewRejects: arity mismatches, uncolored edges, and (under Strict)
// improper colorings are rejected up front.
func TestNewRejects(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if _, err := New(g, []int{0}, Options{}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := New(g, []int{0, -1}, Options{}); err == nil {
		t.Fatal("uncolored edge accepted")
	}
	if _, err := New(g, []int{0, 0}, Options{Strict: true}); err == nil {
		t.Fatal("improper coloring accepted under Strict")
	}
	if _, err := New(g, []int{0, 0}, Options{}); err != nil {
		t.Fatal("non-strict New should not verify adjacency")
	}
}
