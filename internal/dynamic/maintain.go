package dynamic

import (
	"context"
	"time"

	"dima/internal/core"
	"dima/internal/graph"
	"dima/internal/rng"
)

// Maintenance is the long-run counterpart to Apply's per-batch repairs.
// Repairs keep the coloring *valid* under churn, but two resources
// degrade monotonically without help:
//
//   - Edge-id holes. Delete-heavy stretches grow EdgeIDBound past the
//     live edge count; every id-indexed structure (the coloring, the
//     graph's edge table) then carries dead weight forever.
//   - The palette. Insertion spikes raise Δ and with it the 2Δ−1 cap;
//     when the spike drains away, the stranded top colors — often worn
//     by a handful of edges each — keep NumColors and MaxColor pinned
//     at the historical high-water mark.
//
// A maintenance pass fixes both: it compacts the id space in place
// (remapping the coloring through the graph's Compact id map, without
// invalidating the live graph handle) and migrates the edges wearing
// rare over-target colors back under 2Δ−1 for the *current* Δ — the
// "steal from rare colors" recoloring of the augmenting-fan literature,
// realized here as a constrained greedy sweep with the matching
// automaton as the tier-2 finisher, exactly like a batch repair.
//
// Determinism: pass k of a recolorer derives its repair seed from
// (Options.Seed, k) on a salt stream disjoint from the per-batch
// stream, so a fixed seed plus a fixed mutation stream plus a fixed
// maintenance policy replays byte-identically — and a recolorer that
// never maintains is byte-identical to one built before maintenance
// existed.

// maintainSalt separates per-pass repair seeds from per-batch ones.
const maintainSalt = 0x6d61696e7461696e // "maintain"

// MaintainOptions is the maintenance trigger policy and rebalance goal.
// The zero value is a sane default policy: compact when the id space is
// half again the live count, rebalance whenever the palette exceeds
// 2Δ−1 under the current Δ.
type MaintainOptions struct {
	// HoleRatio triggers compaction when EdgeIDBound > HoleRatio ×
	// live edges. 0 means 1.5. Values ≤ 1 compact whenever any hole
	// exists.
	HoleRatio float64
	// PaletteSlack triggers a rebalance when the palette spills more
	// than this many colors over the target; 0 rebalances on any
	// excess.
	PaletteSlack int
	// TargetColors is the rebalance goal. 0 means 2Δ−1 under the
	// graph's current maximum degree — the paper's hard bound. Tighter
	// explicit targets make the greedy tier fail more often and push
	// work to the automaton; the guaranteed completion still bounds the
	// result by 2Δ−1.
	TargetColors int
	// Force runs both passes regardless of the triggers.
	Force bool
}

// holeRatioOrDefault resolves the compaction threshold.
func (mo MaintainOptions) holeRatioOrDefault() float64 {
	if mo.HoleRatio <= 0 {
		return 1.5
	}
	return mo.HoleRatio
}

// MaintainReport describes one maintenance pass.
type MaintainReport struct {
	// Pass is the 1-based maintenance pass index; it salts the pass's
	// repair seed.
	Pass int `json:"pass"`
	// Delta is the graph's maximum degree at pass time; Target the
	// rebalance goal derived from it (or TargetColors).
	Delta  int `json:"delta"`
	Target int `json:"target"`
	// Compacted reports an id-space compaction; HolesReclaimed the ids
	// it freed; EdgeIDBound the post-pass id-space size (== live edges
	// after a compaction).
	Compacted      bool `json:"compacted"`
	HolesReclaimed int  `json:"holesReclaimed,omitempty"`
	EdgeIDBound    int  `json:"edgeIDBound"`
	// Rebalanced reports a palette rebalance; Evicted the edges taken
	// off over-target colors, split by how they were re-placed (greedy
	// under the target, automaton repair, guaranteed 2Δ−1 fallback).
	Rebalanced    bool `json:"rebalanced"`
	Evicted       int  `json:"evicted,omitempty"`
	GreedyMoved   int  `json:"greedyMoved,omitempty"`
	RepairMoved   int  `json:"repairMoved,omitempty"`
	FallbackMoved int  `json:"fallbackMoved,omitempty"`
	RepairRounds  int  `json:"repairRounds,omitempty"`
	// Palette before/after the pass.
	ColorsBefore   int `json:"colorsBefore"`
	ColorsAfter    int `json:"colorsAfter"`
	MaxColorBefore int `json:"maxColorBefore"`
	MaxColorAfter  int `json:"maxColorAfter"`
	// Aborted reports the context was canceled during the rebalance's
	// automaton run; the coloring is still complete and valid (the
	// fallback finished), but some evicted edges may sit above the
	// target.
	Aborted bool `json:"aborted,omitempty"`
	// DurationUS is the pass's wall clock in microseconds (telemetry
	// only; every other field is deterministic).
	DurationUS int64 `json:"durationUS"`
}

// NeedMaintain evaluates the trigger policy against the current state
// without running anything: compact reports the id space over the hole
// threshold, rebalance the palette over the target.
func (rc *Recolorer) NeedMaintain(mo MaintainOptions) (compact, rebalance bool) {
	live := rc.g.M()
	if live < 1 {
		live = 1
	}
	bound := rc.g.EdgeIDBound()
	compact = bound > rc.g.M() && float64(bound) > mo.holeRatioOrDefault()*float64(live)
	target := rc.rebalanceTarget(mo)
	rebalance = rc.maxColor+1 > target+mo.PaletteSlack
	return compact, rebalance
}

// rebalanceTarget resolves the rebalance goal for the current graph.
func (rc *Recolorer) rebalanceTarget(mo MaintainOptions) int {
	if mo.TargetColors > 0 {
		return mo.TargetColors
	}
	target := 2*rc.g.MaxDegree() - 1
	if target < 1 {
		target = 1
	}
	return target
}

// Maintain runs one maintenance pass under the given policy: an
// id-space compaction and/or a palette rebalance, each gated by its
// trigger unless mo.Force is set. It returns nil when neither trigger
// trips (nothing ran, nothing changed). Cancellation interrupts only
// the rebalance's automaton runs; the pass still completes through the
// greedy fallback with the report's Aborted flag set — validity is
// never traded away.
func (rc *Recolorer) Maintain(ctx context.Context, mo MaintainOptions) (*MaintainReport, error) {
	return rc.maintain(ctx, mo, mo.Force)
}

// maintain is Maintain with the force decision already made (the
// auto-trigger path never forces).
func (rc *Recolorer) maintain(ctx context.Context, mo MaintainOptions, force bool) (*MaintainReport, error) {
	doCompact, doRebalance := rc.NeedMaintain(mo)
	if force || mo.Force {
		doCompact, doRebalance = true, true
	}
	if !doCompact && !doRebalance {
		return nil, nil
	}
	start := time.Now()
	rc.passes++
	rep := &MaintainReport{
		Pass:           int(rc.passes),
		Delta:          rc.g.MaxDegree(),
		Target:         rc.rebalanceTarget(mo),
		ColorsBefore:   rc.used,
		MaxColorBefore: rc.maxColor,
	}

	if doCompact {
		before := rc.g.EdgeIDBound()
		if ids := rc.g.Compact(); ids != nil {
			colors := make([]int, len(ids))
			for newID, oldID := range ids {
				colors[newID] = rc.colors[oldID]
			}
			rc.colors = colors
			rep.Compacted = true
			rep.HolesReclaimed = before - len(ids)
		}
	}

	if doRebalance {
		if err := rc.rebalance(ctx, rep); err != nil {
			return nil, err
		}
	}

	rep.EdgeIDBound = rc.g.EdgeIDBound()
	rep.ColorsAfter = rc.used
	rep.MaxColorAfter = rc.maxColor
	rep.DurationUS = time.Since(start).Microseconds()
	return rep, nil
}

// rebalance migrates every live edge wearing a color ≥ the target off
// it: the over-target classes are evicted in ascending edge-id order
// (deterministic), then re-placed greedily with the lowest color free
// at both endpoints under the target. With the default target 2Δ−1
// the greedy tier cannot fail — each endpoint blocks at most Δ−1
// colors — so the pass is a pure local sweep; under a tighter explicit
// target the failures form a frontier handed to the constrained
// matching automaton, and anything it leaves behind is finished by the
// guaranteed 2Δ−1 completion, exactly as in a batch repair.
func (rc *Recolorer) rebalance(ctx context.Context, rep *MaintainReport) error {
	target := rep.Target
	var evicted []graph.EdgeID
	for id := 0; id < rc.g.EdgeIDBound(); id++ {
		if rc.g.Live(graph.EdgeID(id)) && rc.colors[id] >= target {
			evicted = append(evicted, graph.EdgeID(id))
		}
	}
	rep.Rebalanced = true
	if len(evicted) == 0 {
		return nil
	}
	rep.Evicted = len(evicted)
	for _, id := range evicted {
		rc.dropColor(rc.colors[id])
		rc.colors[id] = -1
	}
	var frontier []graph.EdgeID
	for _, id := range evicted {
		e := rc.g.EdgeAt(id)
		if c := core.LowestFree(rc.usedAt(e.U), rc.usedAt(e.V)); c < target {
			rc.setColor(id, c)
			rep.GreedyMoved++
		} else {
			frontier = append(frontier, id)
		}
	}
	if len(frontier) > 0 {
		seed := rng.Mix64(rc.opt.Seed ^ rng.Mix64(rc.passes) ^ maintainSalt)
		out, err := rc.repairFrontier(ctx, frontier, seed)
		if err != nil {
			return err
		}
		rep.RepairMoved = out.repaired - out.fallback
		rep.FallbackMoved = out.fallback
		rep.RepairRounds = out.rounds
		rep.Aborted = out.aborted
	}
	return nil
}
