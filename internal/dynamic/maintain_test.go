package dynamic

import (
	"context"
	"testing"

	"dima/internal/core"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// deleteBatch deletes up to size distinct random live edges.
func deleteBatch(r *rng.Rand, g *graph.Graph, size int) *msg.MutationBatch {
	var live []graph.Edge
	for id := 0; id < g.EdgeIDBound(); id++ {
		if g.Live(graph.EdgeID(id)) {
			live = append(live, g.EdgeAt(graph.EdgeID(id)))
		}
	}
	b := &msg.MutationBatch{}
	for len(b.Muts) < size && len(live) > 0 {
		i := r.Intn(len(live))
		e := live[i]
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpDelete, U: e.U, V: e.V})
	}
	return b
}

// starBatch inserts up to k missing edges around a center vertex,
// spiking its degree (and usually Δ).
func starBatch(g *graph.Graph, center, k int) *msg.MutationBatch {
	b := &msg.MutationBatch{}
	for v := 0; v < g.N() && len(b.Muts) < k; v++ {
		if v != center && !g.HasEdge(center, v) {
			b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpInsert, U: center, V: v})
		}
	}
	return b
}

// paletteWithinBound asserts the maintained palette sits at or under
// 2Δ−1 for the graph's *current* maximum degree.
func paletteWithinBound(t *testing.T, rc *Recolorer) {
	t.Helper()
	d := rc.Graph().MaxDegree()
	bound := 2*d - 1
	if bound < 1 {
		bound = 1
	}
	if rc.MaxColor()+1 > bound {
		t.Fatalf("palette %d colors (max %d) exceeds 2Δ−1 = %d (Δ=%d)",
			rc.NumColors(), rc.MaxColor(), bound, d)
	}
}

// TestMaintainProperty is the satellite property test: after any
// mutation sequence plus Maintain, the coloring verifies valid, the id
// space is dense (EdgeIDBound == M()), the palette is within 2Δ−1 for
// the current Δ, and a cold re-run of the compacted graph is valid
// under every engine.
func TestMaintainProperty(t *testing.T) {
	engines := []struct {
		name string
		e    net.Engine
	}{{"sync", net.RunSync}, {"chan", net.RunChan}, {"shard", net.RunShard}}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			copt := core.Options{Seed: 5, Engine: eng.e, Workers: 3}
			g, res := coldColor(t, 80, 220, 17, copt)
			rc, err := New(g, res.Colors, Options{Seed: 9, Repair: copt})
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(77)
			for i := 0; i < 30; i++ {
				var b *msg.MutationBatch
				switch i % 3 {
				case 0:
					b = randomBatch(r, rc.Graph(), 1+r.Intn(10))
				case 1:
					b = starBatch(rc.Graph(), r.Intn(rc.Graph().N()), 12)
				default:
					b = deleteBatch(r, rc.Graph(), 8+r.Intn(12))
				}
				if len(b.Muts) == 0 {
					continue
				}
				b.Seq = uint64(i)
				if _, err := rc.Apply(b); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
			}
			rep, err := rc.Maintain(context.Background(), MaintainOptions{Force: true})
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil {
				t.Fatal("forced Maintain returned no report")
			}
			if !rep.Compacted && rc.Graph().EdgeIDBound() != rc.Graph().M() {
				t.Fatalf("no compaction but %d ids for %d live edges",
					rc.Graph().EdgeIDBound(), rc.Graph().M())
			}
			assertValid(t, rc)
			if err := rc.check(); err != nil {
				t.Fatal(err)
			}
			if got, want := rc.Graph().EdgeIDBound(), rc.Graph().M(); got != want {
				t.Fatalf("EdgeIDBound %d != M %d after Maintain", got, want)
			}
			if len(rc.Colors()) != rc.Graph().M() {
				t.Fatalf("coloring length %d != M %d", len(rc.Colors()), rc.Graph().M())
			}
			paletteWithinBound(t, rc)
			// Cold predicate: recolor the compacted graph from scratch and
			// hold it to the same verify predicate.
			cg, cc := rc.Compacted()
			if v := verify.EdgeColoring(cg, cc); len(v) > 0 {
				t.Fatalf("compacted maintained coloring invalid: %v", v[0])
			}
			cold, err := core.ColorEdges(cg, copt)
			if err != nil {
				t.Fatal(err)
			}
			if v := verify.EdgeColoring(cg, cold.Colors); len(v) > 0 {
				t.Fatalf("cold recolor of compacted graph invalid: %v", v[0])
			}
		})
	}
}

// TestMaintainShrinksAfterSpike: a degree spike inflates the palette;
// draining the spike strands top colors; Maintain reclaims them and the
// id holes. This is the "palette only ever grows" bug of the original
// caveat, end to end.
func TestMaintainShrinksAfterSpike(t *testing.T) {
	copt := core.Options{Seed: 2}
	g, res := coldColor(t, 100, 200, 11, copt)
	rc, err := New(g, res.Colors, Options{Seed: 21, Repair: copt})
	if err != nil {
		t.Fatal(err)
	}
	// Spike: a near-complete star on vertex 0 drives Δ to ~n-1.
	spike := starBatch(rc.Graph(), 0, 80)
	if _, err := rc.Apply(spike); err != nil {
		t.Fatal(err)
	}
	spikeMax := rc.MaxColor()
	// Drain: delete the same edges again.
	drain := &msg.MutationBatch{Seq: 1}
	for _, m := range spike.Muts {
		drain.Muts = append(drain.Muts, msg.Mutation{Op: msg.OpDelete, U: m.U, V: m.V})
	}
	rep, err := rc.Apply(drain)
	if err != nil {
		t.Fatal(err)
	}
	// Satellite: the post-batch report reflects freed top colors
	// immediately, not the historical high-water mark.
	if rep.MaxColor >= spikeMax && spikeMax > 2*rc.Graph().MaxDegree()-1 {
		t.Fatalf("delete-only batch still reports spike-era max color %d", rep.MaxColor)
	}
	if rep.NumColors != rc.NumColors() || rep.MaxColor != rc.MaxColor() {
		t.Fatalf("report palette %d/%d diverges from census %d/%d",
			rep.NumColors, rep.MaxColor, rc.NumColors(), rc.MaxColor())
	}
	// The drain left holes; stranded top colors may remain on edges
	// colored during the spike. Maintain must clear both.
	mrep, err := rc.Maintain(context.Background(), MaintainOptions{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if mrep == nil || !mrep.Compacted {
		t.Fatalf("expected compaction after drain, got %+v", mrep)
	}
	if got, want := rc.Graph().EdgeIDBound(), rc.Graph().M(); got != want {
		t.Fatalf("EdgeIDBound %d != M %d", got, want)
	}
	assertValid(t, rc)
	if err := rc.check(); err != nil {
		t.Fatal(err)
	}
	paletteWithinBound(t, rc)
}

// TestMaintainAutoTrigger: with Options.Maintain set, delete-heavy
// churn trips the hole-ratio trigger from inside ApplyCtx and the batch
// report carries the maintenance report.
func TestMaintainAutoTrigger(t *testing.T) {
	copt := core.Options{Seed: 4}
	g, res := coldColor(t, 60, 180, 13, copt)
	rc, err := New(g, res.Colors, Options{
		Seed:     31,
		Repair:   copt,
		Maintain: &MaintainOptions{HoleRatio: 1.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	sawCompaction := false
	for i := 0; i < 40; i++ {
		b := deleteBatch(r, rc.Graph(), 6)
		if len(b.Muts) == 0 {
			break
		}
		b.Seq = uint64(i)
		rep, err := rc.Apply(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if rep.Maintenance != nil {
			if rep.Maintenance.Compacted {
				sawCompaction = true
				// Post-pass the hole ratio is back under the threshold.
				if b := rc.Graph().EdgeIDBound(); rc.Graph().M() > 0 && float64(b) > 1.2*float64(rc.Graph().M()) {
					t.Fatalf("batch %d: pass left %d ids over %d live", i, b, rc.Graph().M())
				}
			}
			// Report palette matches post-maintenance state.
			if rep.NumColors != rc.NumColors() || rep.MaxColor != rc.MaxColor() {
				t.Fatalf("batch %d: report palette stale after maintenance", i)
			}
		}
		assertValid(t, rc)
		if err := rc.check(); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if !sawCompaction {
		t.Fatal("40 delete-heavy batches never tripped the 1.2 hole-ratio trigger")
	}
}

// TestMaintainNoop: a fresh dense recolorer within its palette bound
// has nothing to maintain — no report, no state change.
func TestMaintainNoop(t *testing.T) {
	copt := core.Options{Seed: 6}
	g, res := coldColor(t, 40, 90, 3, copt)
	rc, err := New(g, res.Colors, Options{Seed: 1, Repair: copt})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int(nil), rc.Colors()...)
	rep, err := rc.Maintain(context.Background(), MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("no-op Maintain produced a report: %+v", rep)
	}
	after := rc.Colors()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("no-op Maintain changed color of edge %d", i)
		}
	}
}

// TestMaintainTightTarget: an explicit target below 2Δ−1 forces the
// greedy tier to fail and routes evictions through the constrained
// automaton; the result stays valid and within 2Δ−1 regardless.
func TestMaintainTightTarget(t *testing.T) {
	copt := core.Options{Seed: 7}
	g, res := coldColor(t, 60, 200, 23, copt)
	rc, err := New(g, res.Colors, Options{Seed: 5, Repair: copt})
	if err != nil {
		t.Fatal(err)
	}
	target := rc.Graph().MaxDegree() + 1 // Vizing-adjacent: usually tight
	rep, err := rc.Maintain(context.Background(), MaintainOptions{
		TargetColors: target,
		Force:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || !rep.Rebalanced {
		t.Fatalf("forced tight-target pass did not rebalance: %+v", rep)
	}
	if rep.Evicted != rep.GreedyMoved+rep.RepairMoved+rep.FallbackMoved {
		t.Fatalf("evicted %d != moved %d+%d+%d", rep.Evicted,
			rep.GreedyMoved, rep.RepairMoved, rep.FallbackMoved)
	}
	assertValid(t, rc)
	if err := rc.check(); err != nil {
		t.Fatal(err)
	}
	paletteWithinBound(t, rc)
}

// TestMaintainDeterminism: same seed, same stream, same policy — the
// colors and the full (colors, maxColor, idBound) trajectory replay
// byte-identically across runs.
func TestMaintainDeterminism(t *testing.T) {
	type sample struct{ colors, maxColor, idBound, m int }
	run := func() ([]int, []sample) {
		copt := core.Options{Seed: 3}
		g, res := coldColor(t, 70, 190, 8, copt)
		rc, err := New(g, append([]int(nil), res.Colors...), Options{
			Seed:     42,
			Repair:   copt,
			Maintain: &MaintainOptions{HoleRatio: 1.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(1000)
		var traj []sample
		for i := 0; i < 30; i++ {
			var b *msg.MutationBatch
			if i%2 == 0 {
				b = deleteBatch(r, rc.Graph(), 7)
			} else {
				b = randomBatch(r, rc.Graph(), 5)
			}
			if len(b.Muts) == 0 {
				continue
			}
			if _, err := rc.Apply(b); err != nil {
				t.Fatal(err)
			}
			traj = append(traj, sample{rc.NumColors(), rc.MaxColor(),
				rc.Graph().EdgeIDBound(), rc.Graph().M()})
		}
		if _, err := rc.Maintain(context.Background(), MaintainOptions{Force: true}); err != nil {
			t.Fatal(err)
		}
		return append([]int(nil), rc.Colors()...), traj
	}
	c1, t1 := run()
	c2, t2 := run()
	if len(t1) != len(t2) {
		t.Fatalf("trajectory lengths diverge: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trajectory diverges at batch %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
	if len(c1) != len(c2) {
		t.Fatalf("color lengths diverge: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("colors diverge at edge %d: %d vs %d", i, c1[i], c2[i])
		}
	}
}

// TestMaintainDisabledIsByteIdentical: the maintenance hook must not
// perturb batch seed derivation. A recolorer with maintenance thresholds
// that never trip produces the exact same coloring as one with the
// feature off entirely (Options.Maintain == nil, the pre-maintenance
// configuration).
func TestMaintainDisabledIsByteIdentical(t *testing.T) {
	run := func(mo *MaintainOptions) []int {
		copt := core.Options{Seed: 3}
		g, res := coldColor(t, 50, 120, 8, copt)
		rc, err := New(g, append([]int(nil), res.Colors...), Options{
			Seed: 42, Palette: res.MaxColor + 1, Repair: copt, Maintain: mo,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(1000)
		for i := 0; i < 15; i++ {
			if _, err := rc.Apply(randomBatch(r, rc.Graph(), 5)); err != nil {
				t.Fatal(err)
			}
		}
		return append([]int(nil), rc.Colors()...)
	}
	off := run(nil)
	never := run(&MaintainOptions{HoleRatio: 1e9, PaletteSlack: 1 << 30})
	if len(off) != len(never) {
		t.Fatalf("lengths diverge: %d vs %d", len(off), len(never))
	}
	for i := range off {
		if off[i] != never[i] {
			t.Fatalf("colors diverge at edge %d: %d vs %d", i, off[i], never[i])
		}
	}
}
