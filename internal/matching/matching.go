// Package matching implements the original application of the paper's
// matching-discovery automaton (their ref [3]): a distributed maximal
// matching — uniform or greedy-by-weight — and the 2-approximate vertex
// cover it induces.
//
// It is also the reference implementation of the automaton.Pairing
// interface: the whole protocol is the ~120 lines of problem logic in
// this file, with the coin toss, state machine, and message pattern
// supplied by automaton.Driver. New problems extend the framework the
// same way, as the paper's conclusion anticipates.
package matching

import (
	"fmt"

	"dima/internal/automaton"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
)

// Options configures a run; the zero value is usable.
type Options struct {
	// Seed drives all random choices.
	Seed uint64
	// Engine executes the protocol (nil = net.RunSync).
	Engine net.Engine
	// MaxCompRounds bounds computation rounds (0 = 100,000).
	MaxCompRounds int
	// Hook observes automaton transitions.
	Hook automaton.Hook
	// Fault optionally drops deliveries (nil = reliable).
	Fault net.FaultInjector
	// Recovery enables the automaton's loss-recovery extension: unmatched
	// inviters retransmit unanswered invitations and matched nodes answer
	// them from committed state, so the matching completes under the
	// fault injectors of package net. Off (the zero value), behavior is
	// identical to the reliable-delivery protocol.
	Recovery automaton.Recovery
	// Weights, when non-nil (indexed by graph.EdgeID, all finite), turns
	// the protocol greedy-by-weight: inviters invite on their heaviest
	// live edge and listeners accept their heaviest invitation, so the
	// matching chases weight the way Preis-style local algorithms do —
	// a further demonstration that the automaton carries problem
	// variants beyond the paper's. Each node only ever reads the weights
	// of its own incident edges, so the information stays local.
	Weights []float64
}

// Result reports a maximal-matching run.
type Result struct {
	// Edges is the matching, as edge ids in ascending order.
	Edges []graph.EdgeID
	// Weight is the total weight of the matching (edge count when no
	// weights were supplied).
	Weight float64
	// CompRounds and CommRounds count automaton cycles and message
	// rounds (3 per cycle).
	CompRounds, CommRounds int
	Messages               int64
	Terminated             bool
}

// VertexCover returns the classic 2-approximate vertex cover induced by
// the matching: both endpoints of every matched edge.
func (r *Result) VertexCover(g *graph.Graph) []int {
	cover := make([]int, 0, 2*len(r.Edges))
	for _, e := range r.Edges {
		ed := g.EdgeAt(e)
		cover = append(cover, ed.U, ed.V)
	}
	return cover
}

// MaximalMatching runs the matching-discovery automaton until every node
// is matched or has no unmatched neighbors; the paired edges then form a
// maximal matching of g.
func MaximalMatching(g *graph.Graph, opt Options) (*Result, error) {
	if opt.Weights != nil && len(opt.Weights) != g.M() {
		return nil, fmt.Errorf("matching: %d weights for %d edges", len(opt.Weights), g.M())
	}
	base := rng.New(opt.Seed)
	nodes := make([]net.Node, g.N())
	pairings := make([]*mmPairing, g.N())
	for u := 0; u < g.N(); u++ {
		pairings[u] = newPairing(g, u, opt.Weights)
		nodes[u] = automaton.NewDriver(u, base.Derive(uint64(u)), pairings[u], opt.Hook).
			WithRecovery(opt.Recovery)
	}
	maxComp := opt.MaxCompRounds
	if maxComp <= 0 {
		maxComp = 100_000
	}
	eng := opt.Engine
	if eng == nil {
		eng = net.RunSync
	}
	netRes, err := eng(g, nodes, net.Config{
		MaxRounds: automaton.DriverPhases * maxComp,
		Fault:     opt.Fault,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		CommRounds: netRes.Rounds,
		CompRounds: (netRes.Rounds + automaton.DriverPhases - 1) / automaton.DriverPhases,
		Messages:   netRes.Messages,
		Terminated: netRes.Terminated,
	}
	// Assemble matched edges; both endpoints must agree.
	count := make(map[graph.EdgeID]int)
	for _, p := range pairings {
		if p.matchedEdge >= 0 {
			count[p.matchedEdge]++
		}
	}
	for e, c := range count {
		if c != 2 {
			return nil, fmt.Errorf("matching: edge %v matched by %d endpoints", g.EdgeAt(e), c)
		}
		res.Edges = append(res.Edges, e)
	}
	sortEdgeIDs(res.Edges)
	// Sum weights in sorted order: float addition is order sensitive and
	// the map iteration above is not deterministic.
	for _, e := range res.Edges {
		if opt.Weights != nil {
			res.Weight += opt.Weights[e]
		} else {
			res.Weight++
		}
	}
	return res, nil
}

func sortEdgeIDs(s []graph.EdgeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// mmPairing is the problem half of the protocol: what to invite on, what
// to accept, what to announce. Everything else lives in automaton.Driver.
type mmPairing struct {
	id      int
	g       *graph.Graph
	weights []float64 // nil for the unweighted protocol

	matchedEdge graph.EdgeID // -1 until matched
	announced   bool
	liveNbrs    map[int]bool // unmatched neighbors
}

func newPairing(g *graph.Graph, u int, weights []float64) *mmPairing {
	p := &mmPairing{
		id:          u,
		g:           g,
		weights:     weights,
		matchedEdge: -1,
		liveNbrs:    make(map[int]bool, g.Degree(u)),
	}
	for _, v := range g.Neighbors(u) {
		p.liveNbrs[v] = true
	}
	return p
}

// Live implements automaton.Pairing: work remains while unmatched with
// unmatched neighbors.
func (p *mmPairing) Live() bool {
	return p.matchedEdge < 0 && len(p.liveNbrs) > 0
}

// Absorb folds in matched-announcements from the previous exchange.
func (p *mmPairing) Absorb(inbox []msg.Message) {
	for _, m := range inbox {
		if m.Kind == msg.KindUpdate {
			delete(p.liveNbrs, m.From)
		}
	}
}

// Invite picks the neighbor to invite: uniform among live neighbors
// (unweighted), or across the heaviest live edge (weighted; lowest edge
// id on ties). The scan walks the adjacency list so the choice is
// deterministic for a given seed.
func (p *mmPairing) Invite(r *rng.Rand) (msg.Message, bool) {
	var target int
	if p.weights == nil {
		pick := r.Intn(len(p.liveNbrs))
		i := 0
		found := false
		for _, v := range p.g.Neighbors(p.id) {
			if p.liveNbrs[v] {
				if i == pick {
					target, found = v, true
					break
				}
				i++
			}
		}
		if !found {
			panic("matching: live neighbor scan exhausted")
		}
	} else {
		bestEdge := graph.EdgeID(-1)
		for i, v := range p.g.Neighbors(p.id) {
			if !p.liveNbrs[v] {
				continue
			}
			e := p.g.IncidentEdges(p.id)[i]
			if bestEdge < 0 || p.weights[e] > p.weights[bestEdge] ||
				(p.weights[e] == p.weights[bestEdge] && e < bestEdge) {
				target, bestEdge = v, e
			}
		}
	}
	e, _ := p.g.EdgeIDOf(p.id, target)
	return msg.Message{From: p.id, To: target, Edge: int(e), Color: -1}, true
}

// Respond accepts one invitation — uniform, or the heaviest when
// weighted (lowest edge id on ties; the inbox arrives sorted).
func (p *mmPairing) Respond(mine, _ []msg.Message, r *rng.Rand) (msg.Message, bool) {
	var m msg.Message
	if p.weights == nil {
		m = mine[r.Intn(len(mine))]
	} else {
		m = mine[0]
		for _, cand := range mine[1:] {
			if p.weights[cand.Edge] > p.weights[m.Edge] {
				m = cand
			}
		}
	}
	p.matchedEdge = graph.EdgeID(m.Edge)
	return msg.Message{To: m.From, Edge: m.Edge, Color: -1}, true
}

// Complete records the acceptance of this node's own invitation.
func (p *mmPairing) Complete(response msg.Message) {
	p.matchedEdge = graph.EdgeID(response.Edge)
}

// Reaffirm implements automaton.Reaffirmer: a matched node answers late
// or retransmitted invitations from its committed state. An invitation
// for the edge it matched means its Response was lost — re-send it; an
// invitation for another edge means its match announcement was lost —
// re-announce, so the inviter stops waiting and renegotiates elsewhere.
func (p *mmPairing) Reaffirm(invite msg.Message) (msg.Message, bool) {
	if p.matchedEdge < 0 {
		return msg.Message{}, false
	}
	if int(p.matchedEdge) == invite.Edge {
		return msg.Message{Kind: msg.KindResponse, To: invite.From, Edge: invite.Edge, Color: -1}, true
	}
	return msg.Message{Kind: msg.KindUpdate, To: msg.Broadcast, Edge: int(p.matchedEdge), Color: -1}, true
}

// Exchange announces a fresh match to the neighborhood, once.
func (p *mmPairing) Exchange() []msg.Message {
	if p.matchedEdge < 0 || p.announced {
		return nil
	}
	p.announced = true
	return []msg.Message{{
		Kind: msg.KindUpdate, From: p.id, To: msg.Broadcast, Edge: int(p.matchedEdge), Color: -1,
	}}
}
