package matching

import (
	"testing"
	"testing/quick"

	"dima/internal/automaton"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

func mustMatch(t *testing.T, g *graph.Graph, opt Options) *Result {
	t.Helper()
	res, err := MaximalMatching(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	if v := verify.MaximalMatching(g, res.Edges); len(v) != 0 {
		t.Fatalf("invalid maximal matching: %v", v[0])
	}
	return res
}

func TestMatchingSingleEdge(t *testing.T) {
	res := mustMatch(t, gen.Path(2), Options{Seed: 1})
	if len(res.Edges) != 1 {
		t.Fatalf("K2 matching size %d", len(res.Edges))
	}
}

func TestMatchingTriangleHasOneEdge(t *testing.T) {
	res := mustMatch(t, gen.Cycle(3), Options{Seed: 2})
	if len(res.Edges) != 1 {
		t.Fatalf("triangle matching size %d, want 1", len(res.Edges))
	}
}

func TestMatchingStarHasOneEdge(t *testing.T) {
	res := mustMatch(t, gen.Star(8), Options{Seed: 3})
	if len(res.Edges) != 1 {
		t.Fatalf("star matching size %d, want 1", len(res.Edges))
	}
}

func TestMatchingEmptyAndIsolated(t *testing.T) {
	res := mustMatch(t, graph.New(4), Options{Seed: 4})
	if len(res.Edges) != 0 || res.CompRounds != 0 {
		t.Fatalf("isolated graph: %+v", res)
	}
}

func TestMatchingFamilies(t *testing.T) {
	r := rng.New(5)
	er, err := gen.ErdosRenyiAvgDegree(r, 120, 6)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{
		"er": er, "grid": gen.Grid(8, 8), "cycle": gen.Cycle(17),
		"complete": gen.Complete(9), "tree": gen.RandomTree(r, 60),
	} {
		res := mustMatch(t, g, Options{Seed: 6})
		if g.M() > 0 && len(res.Edges) == 0 {
			t.Fatalf("%s: empty matching on nonempty graph", name)
		}
	}
}

func TestMatchingDeterministicAndEngines(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(7), 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := mustMatch(t, g, Options{Seed: 8, Engine: net.RunSync})
	b := mustMatch(t, g, Options{Seed: 8, Engine: net.RunChan})
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("engines diverged: %d vs %d edges", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("engines diverged at %d", i)
		}
	}
}

func TestVertexCover(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(9), 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := mustMatch(t, g, Options{Seed: 10})
	cover := res.VertexCover(g)
	if v := verify.VertexCover(g, cover); len(v) != 0 {
		t.Fatalf("invalid vertex cover: %v", v[0])
	}
	if len(cover) != 2*len(res.Edges) {
		t.Fatalf("cover size %d != 2×matching %d", len(cover), 2*len(res.Edges))
	}
}

func TestMatchingHalfOfMaximum(t *testing.T) {
	// A maximal matching is at least half a maximum one. On an even
	// cycle C_2k the maximum matching is k, so ours must have ≥ k/2.
	res := mustMatch(t, gen.Cycle(20), Options{Seed: 11})
	if len(res.Edges) < 5 {
		t.Fatalf("C20 matching size %d < 5", len(res.Edges))
	}
}

func TestQuickMatchingAlwaysMaximal(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%40)
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), n, 4)
		if err != nil {
			return false
		}
		res, err := MaximalMatching(g, Options{Seed: seed})
		if err != nil || !res.Terminated {
			return false
		}
		return len(verify.MaximalMatching(g, res.Edges)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Without recovery, a single lost Response strands a half-matched edge:
// the responder committed and the inviter never learns. MaximalMatching
// surfaces that as an assembly error or an invalid matching — the
// behavior the recovery layer exists to fix.
func TestMatchingWithoutRecoveryBreaksUnderDrop(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(21), 80, 6)
	if err != nil {
		t.Fatal(err)
	}
	broke := false
	for seed := uint64(0); seed < 10 && !broke; seed++ {
		res, err := MaximalMatching(g, Options{
			Seed:          seed,
			MaxCompRounds: 400,
			Fault:         net.DropRate{Seed: 99, P: 0.1},
		})
		broke = err != nil || !res.Terminated ||
			len(verify.MaximalMatching(g, res.Edges)) != 0
	}
	if !broke {
		t.Fatal("every faulty run produced a valid matching without recovery; test premise gone")
	}
}

func TestMatchingRecoveryUnderDropRate(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(21), 80, 6)
	if err != nil {
		t.Fatal(err)
	}
	rec := automaton.Recovery{Enabled: true}
	for seed := uint64(0); seed < 10; seed++ {
		res := mustMatch(t, g, Options{
			Seed:     seed,
			Fault:    net.DropRate{Seed: 99, P: 0.1},
			Recovery: rec,
		})
		if g.M() > 0 && len(res.Edges) == 0 {
			t.Fatalf("seed %d: empty matching", seed)
		}
	}
}

func TestMatchingRecoveryUnderBlackout(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(23), 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, g, Options{
		Seed:     31,
		Fault:    net.Blackout{FromRound: 4, ToRound: 16},
		Recovery: automaton.Recovery{Enabled: true},
	})
}

// Recovery runs must stay deterministic and engine-independent: faults
// are deterministic injectors and recovery decisions are functions of
// (state, sorted inbox, own RNG), so RunSync and RunChan agree.
func TestMatchingRecoveryEngineEquivalence(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(25), 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Seed:     17,
		Fault:    net.DropRate{Seed: 5, P: 0.15},
		Recovery: automaton.Recovery{Enabled: true},
	}
	opt.Engine = net.RunSync
	a := mustMatch(t, g, opt)
	opt.Engine = net.RunChan
	b := mustMatch(t, g, opt)
	if len(a.Edges) != len(b.Edges) || a.CompRounds != b.CompRounds || a.Messages != b.Messages {
		t.Fatalf("engines diverged under faults: %+v vs %+v", a, b)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("engines diverged at edge %d", i)
		}
	}
}

func edgeWeights(g *graph.Graph, seed uint64) []float64 {
	r := rng.New(seed)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + 9*r.Float64()
	}
	return w
}

func TestWeightedMatchingValidAndMaximal(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(30), 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := edgeWeights(g, 31)
	res, err := MaximalMatching(g, Options{Seed: 32, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	if v := verify.MaximalMatching(g, res.Edges); len(v) != 0 {
		t.Fatalf("invalid: %v", v[0])
	}
	var sum float64
	for _, e := range res.Edges {
		sum += w[e]
	}
	if sum != res.Weight {
		t.Fatalf("Weight %v != recomputed %v", res.Weight, sum)
	}
}

func TestWeightedMatchingBeatsUniformOnWeight(t *testing.T) {
	// Averaged over seeds, greedy-by-weight must collect more weight
	// than the uniform protocol on the same instance.
	g, err := gen.ErdosRenyiAvgDegree(rng.New(33), 120, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := edgeWeights(g, 34)
	var weighted, uniform float64
	const reps = 8
	for i := uint64(0); i < reps; i++ {
		wres, err := MaximalMatching(g, Options{Seed: 40 + i, Weights: w})
		if err != nil {
			t.Fatal(err)
		}
		ures, err := MaximalMatching(g, Options{Seed: 40 + i})
		if err != nil {
			t.Fatal(err)
		}
		weighted += wres.Weight
		var us float64
		for _, e := range ures.Edges {
			us += w[e]
		}
		uniform += us
	}
	if weighted <= uniform {
		t.Fatalf("weighted protocol collected %.1f <= uniform %.1f", weighted, uniform)
	}
}

func TestWeightedMatchingNearGreedy(t *testing.T) {
	// Centralized greedy (heaviest edge first) is a 1/2-approximation of
	// the maximum weight matching; the distributed protocol should land
	// within a reasonable factor of it.
	g, err := gen.ErdosRenyiAvgDegree(rng.New(35), 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := edgeWeights(g, 36)
	// Centralized greedy.
	order := make([]graph.EdgeID, g.M())
	for i := range order {
		order[i] = graph.EdgeID(i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && w[order[j]] > w[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	busy := make([]bool, g.N())
	var greedy float64
	for _, e := range order {
		ed := g.EdgeAt(e)
		if !busy[ed.U] && !busy[ed.V] {
			busy[ed.U], busy[ed.V] = true, true
			greedy += w[e]
		}
	}
	res, err := MaximalMatching(g, Options{Seed: 37, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight < 0.6*greedy {
		t.Fatalf("distributed weight %.1f below 60%% of greedy %.1f", res.Weight, greedy)
	}
}

func TestWeightedMatchingDeterministicEngines(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(38), 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := edgeWeights(g, 39)
	a, err := MaximalMatching(g, Options{Seed: 41, Weights: w, Engine: net.RunSync})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaximalMatching(g, Options{Seed: 41, Weights: w, Engine: net.RunChan})
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight != b.Weight || len(a.Edges) != len(b.Edges) {
		t.Fatal("engines diverged on weighted matching")
	}
}

func TestWeightedMatchingRejectsBadWeights(t *testing.T) {
	g := gen.Path(3)
	if _, err := MaximalMatching(g, Options{Weights: []float64{1}}); err == nil {
		t.Fatal("accepted short weights")
	}
}

func TestWeightedMatchingUnweightedWeightIsCount(t *testing.T) {
	g := gen.Cycle(10)
	res, err := MaximalMatching(g, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != float64(len(res.Edges)) {
		t.Fatalf("unweighted Weight %v != count %d", res.Weight, len(res.Edges))
	}
}
