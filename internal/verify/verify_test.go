package verify

import (
	"testing"

	"dima/internal/graph"
	"dima/internal/rng"
)

func rngNew(seed uint64) *rng.Rand { return rng.New(seed) }

func path4() *graph.Graph {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	return g
}

func TestEdgeColoringValid(t *testing.T) {
	g := path4()
	if v := EdgeColoring(g, []int{0, 1, 0}); len(v) != 0 {
		t.Fatalf("valid coloring rejected: %v", v)
	}
}

func TestEdgeColoringAdjacentConflict(t *testing.T) {
	g := path4()
	v := EdgeColoring(g, []int{0, 0, 1})
	if len(v) != 1 || v[0].Kind != "adjacent" {
		t.Fatalf("violations = %v", v)
	}
	if v[0].A != 0 || v[0].B != 1 {
		t.Fatalf("wrong edges reported: %+v", v[0])
	}
}

func TestEdgeColoringUncolored(t *testing.T) {
	g := path4()
	v := EdgeColoring(g, []int{0, -1, 0})
	if len(v) != 1 || v[0].Kind != "uncolored" || v[0].A != 1 {
		t.Fatalf("violations = %v", v)
	}
}

func TestEdgeColoringArity(t *testing.T) {
	g := path4()
	v := EdgeColoring(g, []int{0, 1})
	if len(v) != 1 || v[0].Kind != "arity" {
		t.Fatalf("violations = %v", v)
	}
}

func TestEdgeColoringMultipleConflictsAllReported(t *testing.T) {
	// Star with all edges the same color: center sees C(3,2)=3 pairwise
	// conflicts... reported as one per duplicate detection = 2 (first
	// occupies the slot, each later duplicate reports once).
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	v := EdgeColoring(g, []int{5, 5, 5})
	if len(v) != 2 {
		t.Fatalf("want 2 duplicate reports, got %v", v)
	}
}

func TestStrongColoringValid(t *testing.T) {
	// P3: all four arcs mutually conflict; all-distinct is valid.
	d := graph.NewSymmetric(path3())
	if v := StrongColoring(d, []int{0, 1, 2, 3}); len(v) != 0 {
		t.Fatalf("valid strong coloring rejected: %v", v)
	}
}

func path3() *graph.Graph {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	return g
}

func TestStrongColoringReverseConflict(t *testing.T) {
	d := graph.NewSymmetric(path3())
	v := StrongColoring(d, []int{0, 0, 1, 2})
	if len(v) != 1 || v[0].Kind != "distance2" {
		t.Fatalf("violations = %v", v)
	}
}

func TestStrongColoringJoinedByEdgeConflict(t *testing.T) {
	// P4: arcs (0,1) and (2,3) are joined by edge (1,2).
	d := graph.NewSymmetric(path4())
	colors := []int{0, 1, 2, 3, 0, 4} // arc 4 = (2,3) gets color 0 = arc 0's color
	v := StrongColoring(d, colors)
	found := false
	for _, viol := range v {
		if viol.Kind == "distance2" && viol.A == 0 && viol.B == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("joined-by-edge conflict missed: %v", v)
	}
}

func TestStrongColoringDistantReuseOK(t *testing.T) {
	// P5: arcs (0,1) and (3,4) are at distance 2 — reuse is legal.
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	d := graph.NewSymmetric(g)
	colors := []int{0, 1, 2, 3, 4, 5, 0, 6} // arc 6 = (3,4) reuses color 0
	if v := StrongColoring(d, colors); len(v) != 0 {
		t.Fatalf("legal distant reuse rejected: %v", v)
	}
}

func TestStrongColoringUncoloredAndArity(t *testing.T) {
	d := graph.NewSymmetric(path3())
	v := StrongColoring(d, []int{0, 1, -1, 3})
	if len(v) != 1 || v[0].Kind != "uncolored" {
		t.Fatalf("violations = %v", v)
	}
	v = StrongColoring(d, []int{0})
	if len(v) != 1 || v[0].Kind != "arity" {
		t.Fatalf("violations = %v", v)
	}
}

func TestMatchingValid(t *testing.T) {
	g := path4()
	if v := Matching(g, []graph.EdgeID{0, 2}); len(v) != 0 {
		t.Fatalf("valid matching rejected: %v", v)
	}
	if v := Matching(g, nil); len(v) != 0 {
		t.Fatalf("empty matching rejected: %v", v)
	}
}

func TestMatchingSharedVertex(t *testing.T) {
	g := path4()
	v := Matching(g, []graph.EdgeID{0, 1})
	if len(v) != 1 || v[0].Kind != "shared-vertex" {
		t.Fatalf("violations = %v", v)
	}
}

func TestMatchingDuplicateAndRange(t *testing.T) {
	g := path4()
	v := Matching(g, []graph.EdgeID{0, 0})
	if len(v) != 1 || v[0].Kind != "duplicate" {
		t.Fatalf("violations = %v", v)
	}
	v = Matching(g, []graph.EdgeID{99})
	if len(v) != 1 || v[0].Kind != "range" {
		t.Fatalf("violations = %v", v)
	}
}

func TestMaximalMatching(t *testing.T) {
	g := path4()
	// {edge 1} is a maximal matching of P4 (covers vertices 1 and 2;
	// edges 0 and 2 each touch a matched vertex).
	if v := MaximalMatching(g, []graph.EdgeID{1}); len(v) != 0 {
		t.Fatalf("maximal matching rejected: %v", v)
	}
	// {edge 0} leaves edge 2 uncovered.
	v := MaximalMatching(g, []graph.EdgeID{0})
	if len(v) != 1 || v[0].Kind != "not-maximal" || v[0].A != 2 {
		t.Fatalf("violations = %v", v)
	}
}

func TestVertexCover(t *testing.T) {
	g := path4()
	if v := VertexCover(g, []int{1, 2}); len(v) != 0 {
		t.Fatalf("valid cover rejected: %v", v)
	}
	v := VertexCover(g, []int{0, 3})
	if len(v) != 1 || v[0].Kind != "uncovered" || v[0].A != 1 {
		t.Fatalf("violations = %v", v)
	}
	v = VertexCover(g, []int{-1, 5})
	hasRange := 0
	for _, viol := range v {
		if viol.Kind == "range" {
			hasRange++
		}
	}
	if hasRange != 2 {
		t.Fatalf("range violations = %v", v)
	}
}

func TestCountColors(t *testing.T) {
	d, m := CountColors([]int{0, 3, 3, -1, 7})
	if d != 3 || m != 7 {
		t.Fatalf("CountColors = %d,%d", d, m)
	}
	d, m = CountColors(nil)
	if d != 0 || m != -1 {
		t.Fatalf("CountColors(nil) = %d,%d", d, m)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "adjacent", A: 1, B: 2, Detail: "boom"}
	if v.String() != "boom" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestStrongLowerBound(t *testing.T) {
	// Star K_{1,4}: edge (center, leaf) gives 2(4+1-1) = 8.
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, v)
	}
	d := graph.NewSymmetric(g)
	if lb := StrongLowerBound(d); lb != 8 {
		t.Fatalf("star lower bound %d, want 8", lb)
	}
	if lb := StrongLowerBound(graph.NewSymmetric(graph.New(3))); lb != 0 {
		t.Fatalf("empty lower bound %d", lb)
	}
	// P2: 2(1+1-1) = 2.
	p := graph.New(2)
	p.MustAddEdge(0, 1)
	if lb := StrongLowerBound(graph.NewSymmetric(p)); lb != 2 {
		t.Fatalf("P2 lower bound %d, want 2", lb)
	}
}

// Cross-check StrongColoring against an independent oracle built from
// the square of the line graph: two arcs conflict iff they belong to the
// same undirected edge or their edges are adjacent in L(G)².
func TestStrongColoringMatchesLineGraphSquareOracle(t *testing.T) {
	r := rngNew(77)
	for trial := 0; trial < 20; trial++ {
		g := graph.New(8)
		for g.M() < 10 {
			u, v := r.Intn(8), r.Intn(8)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		d := graph.NewSymmetric(g)
		lsq := graph.Square(graph.LineGraph(g))
		// A random (often invalid) arc coloring with a small palette.
		colors := make([]int, d.A())
		for i := range colors {
			colors[i] = r.Intn(5)
		}
		checkerSays := false
		for _, v := range StrongColoring(d, colors) {
			if v.Kind == "distance2" {
				checkerSays = true
				break
			}
		}
		oracleSays := false
		for a := 0; a < d.A() && !oracleSays; a++ {
			for b := a + 1; b < d.A(); b++ {
				if colors[a] != colors[b] {
					continue
				}
				ea, eb := int(d.EdgeOf(graph.ArcID(a))), int(d.EdgeOf(graph.ArcID(b)))
				if ea == eb || lsq.HasEdge(ea, eb) {
					oracleSays = true
					break
				}
			}
		}
		if checkerSays != oracleSays {
			t.Fatalf("trial %d: checker=%v oracle=%v", trial, checkerSays, oracleSays)
		}
	}
}

func TestStrongEdgeColoringValidAndConflicts(t *testing.T) {
	g := path4()
	// Proper but not strong: (0,1) and (2,3) are within distance 1 via
	// (1,2), so reusing color 0 is a distance2 violation.
	v := StrongEdgeColoring(g, []int{0, 1, 0})
	if len(v) != 1 || v[0].Kind != "distance2" {
		t.Fatalf("violations = %v", v)
	}
	// All-distinct is strong.
	if v := StrongEdgeColoring(g, []int{0, 1, 2}); len(v) != 0 {
		t.Fatalf("strong coloring rejected: %v", v)
	}
	// Far-apart reuse is fine: extend the path so distance exceeds 1.
	g2 := graph.New(6)
	for u := 0; u < 5; u++ {
		g2.MustAddEdge(u, u+1)
	}
	if v := StrongEdgeColoring(g2, []int{0, 1, 2, 0, 1}); len(v) != 0 {
		t.Fatalf("distant reuse rejected: %v", v)
	}
}

func TestStrongEdgeColoringUncoloredArityAndHoles(t *testing.T) {
	g := path4()
	if v := StrongEdgeColoring(g, []int{0, 1}); len(v) != 1 || v[0].Kind != "arity" {
		t.Fatalf("violations = %v", v)
	}
	if v := StrongEdgeColoring(g, []int{0, -1, 2}); len(v) != 1 || v[0].Kind != "uncolored" {
		t.Fatalf("violations = %v", v)
	}
	// A removal hole neither needs a color nor conflicts.
	gh := path4()
	id, err := gh.RemoveEdge(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	colors := []int{0, 1, 0}
	colors[id] = -1
	if v := StrongEdgeColoring(gh, colors); len(v) != 0 {
		t.Fatalf("holey strong coloring rejected: %v", v)
	}
}
