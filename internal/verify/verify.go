// Package verify checks the outputs of the coloring and matching
// algorithms against their definitions: proper edge colorings
// (Definition 1), strong directed edge colorings (Definition 2),
// matchings, and vertex covers. Checkers return detailed violation
// reports rather than booleans so that tests and the dimaverify CLI can
// explain exactly what went wrong.
package verify

import (
	"fmt"

	"dima/internal/graph"
)

// Violation describes one constraint breach found by a checker.
type Violation struct {
	// Kind labels the breached constraint.
	Kind string
	// A and B identify the offending pair (edge ids, arc ids, or vertex
	// ids depending on the checker); B is -1 for single-object breaches.
	A, B int
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) String() string { return v.Detail }

// EdgeColoring checks that colors is a proper edge coloring of g:
// every edge has a color >= 0 and no two adjacent edges share a color.
// colors is indexed by graph.EdgeID, so its length is g.EdgeIDBound()
// (equal to g.M() for graphs that never saw a removal); entries at
// removal holes are ignored.
func EdgeColoring(g *graph.Graph, colors []int) []Violation {
	var out []Violation
	if len(colors) != g.EdgeIDBound() {
		return []Violation{{
			Kind: "arity", A: -1, B: -1,
			Detail: fmt.Sprintf("got %d colors for %d edge ids", len(colors), g.EdgeIDBound()),
		}}
	}
	for e, c := range colors {
		if c < 0 && g.Live(graph.EdgeID(e)) {
			out = append(out, Violation{
				Kind: "uncolored", A: e, B: -1,
				Detail: fmt.Sprintf("edge %v has no color", g.EdgeAt(graph.EdgeID(e))),
			})
		}
	}
	// Adjacent edges share a vertex: check per-vertex color multiplicity.
	for u := 0; u < g.N(); u++ {
		seen := make(map[int]graph.EdgeID, g.Degree(u))
		for _, e := range g.IncidentEdges(u) {
			c := colors[e]
			if c < 0 {
				continue
			}
			if prev, dup := seen[c]; dup {
				out = append(out, Violation{
					Kind: "adjacent", A: int(prev), B: int(e),
					Detail: fmt.Sprintf("edges %v and %v at vertex %d both colored %d",
						g.EdgeAt(prev), g.EdgeAt(graph.EdgeID(e)), u, c),
				})
			} else {
				seen[c] = graph.EdgeID(e)
			}
		}
	}
	return out
}

// StrongColoring checks that colors is a strong directed edge coloring
// of d per Definition 2: every arc has a color >= 0 and no two distinct
// arcs whose endpoint sets intersect or are joined by an edge share a
// color. colors is indexed by graph.ArcID. The check is O(A * Δ²).
func StrongColoring(d *graph.Digraph, colors []int) []Violation {
	var out []Violation
	if len(colors) != d.A() {
		return []Violation{{
			Kind: "arity", A: -1, B: -1,
			Detail: fmt.Sprintf("got %d colors for %d arcs", len(colors), d.A()),
		}}
	}
	for a, c := range colors {
		if c < 0 {
			out = append(out, Violation{
				Kind: "uncolored", A: a, B: -1,
				Detail: fmt.Sprintf("arc %v has no color", d.ArcAt(graph.ArcID(a))),
			})
		}
	}
	g := d.Under()
	// For each arc, enumerate the conflicting arcs with a higher id by
	// walking the closed neighborhoods of its endpoints.
	for a := graph.ArcID(0); a < graph.ArcID(d.A()); a++ {
		if colors[a] < 0 {
			continue
		}
		arc := d.ArcAt(a)
		checked := map[graph.ArcID]bool{}
		consider := func(b graph.ArcID) {
			if b <= a || checked[b] || colors[b] < 0 {
				return
			}
			checked[b] = true
			if colors[a] == colors[b] && d.ArcsConflict(a, b) {
				out = append(out, Violation{
					Kind: "distance2", A: int(a), B: int(b),
					Detail: fmt.Sprintf("arcs %v and %v within distance 1 both colored %d",
						arc, d.ArcAt(b), colors[a]),
				})
			}
		}
		for _, end := range []int{arc.From, arc.To} {
			for _, w := range append([]int{end}, g.Neighbors(end)...) {
				for _, b := range d.OutArcs(w) {
					consider(b)
					consider(d.ReverseOf(b))
				}
			}
		}
	}
	return out
}

// StrongEdgeColoring checks that colors is a strong edge coloring of
// the undirected graph g: every edge has a color >= 0 and no two
// distinct edges within distance 1 (sharing an endpoint or joined by a
// third edge) share a color — the undirected counterpart of Definition
// 2, i.e. a proper coloring of the square of the line graph. colors is
// indexed by graph.EdgeID; removal holes are ignored. The check walks
// closed neighborhoods, so it is O(M · Δ²).
func StrongEdgeColoring(g *graph.Graph, colors []int) []Violation {
	var out []Violation
	if len(colors) != g.EdgeIDBound() {
		return []Violation{{
			Kind: "arity", A: -1, B: -1,
			Detail: fmt.Sprintf("got %d colors for %d edge ids", len(colors), g.EdgeIDBound()),
		}}
	}
	for e, c := range colors {
		if c < 0 && g.Live(graph.EdgeID(e)) {
			out = append(out, Violation{
				Kind: "uncolored", A: e, B: -1,
				Detail: fmt.Sprintf("edge %v has no color", g.EdgeAt(graph.EdgeID(e))),
			})
		}
	}
	for a := graph.EdgeID(0); int(a) < g.EdgeIDBound(); a++ {
		if !g.Live(a) || colors[a] < 0 {
			continue
		}
		ea := g.EdgeAt(a)
		checked := map[graph.EdgeID]bool{}
		consider := func(b graph.EdgeID) {
			if b <= a || checked[b] || colors[b] < 0 {
				return
			}
			checked[b] = true
			if colors[a] == colors[b] && g.EdgesWithinDistance1(a, b) {
				out = append(out, Violation{
					Kind: "distance2", A: int(a), B: int(b),
					Detail: fmt.Sprintf("edges %v and %v within distance 1 both colored %d",
						ea, g.EdgeAt(b), colors[a]),
				})
			}
		}
		for _, end := range []int{ea.U, ea.V} {
			for _, w := range append([]int{end}, g.Neighbors(end)...) {
				for _, b := range g.IncidentEdges(w) {
					consider(b)
				}
			}
		}
	}
	return out
}

// Matching checks that edges (a set of edge ids) is a matching in g: no
// two selected edges share a vertex.
func Matching(g *graph.Graph, edges []graph.EdgeID) []Violation {
	var out []Violation
	used := make(map[int]graph.EdgeID)
	seen := make(map[graph.EdgeID]bool)
	for _, e := range edges {
		if !g.Live(e) {
			out = append(out, Violation{
				Kind: "range", A: int(e), B: -1,
				Detail: fmt.Sprintf("edge id %d out of range", e),
			})
			continue
		}
		if seen[e] {
			out = append(out, Violation{
				Kind: "duplicate", A: int(e), B: -1,
				Detail: fmt.Sprintf("edge %v selected twice", g.EdgeAt(e)),
			})
			continue
		}
		seen[e] = true
		ed := g.EdgeAt(e)
		for _, v := range []int{ed.U, ed.V} {
			if prev, dup := used[v]; dup {
				out = append(out, Violation{
					Kind: "shared-vertex", A: int(prev), B: int(e),
					Detail: fmt.Sprintf("edges %v and %v share vertex %d",
						g.EdgeAt(prev), ed, v),
				})
			} else {
				used[v] = e
			}
		}
	}
	return out
}

// MaximalMatching checks that edges is a matching and that it is
// maximal: every edge of g has at least one matched endpoint.
func MaximalMatching(g *graph.Graph, edges []graph.EdgeID) []Violation {
	out := Matching(g, edges)
	matched := make([]bool, g.N())
	for _, e := range edges {
		if g.Live(e) {
			ed := g.EdgeAt(e)
			matched[ed.U], matched[ed.V] = true, true
		}
	}
	for id, ed := range g.Edges() {
		if ed.U < 0 {
			continue // removal hole
		}
		if !matched[ed.U] && !matched[ed.V] {
			out = append(out, Violation{
				Kind: "not-maximal", A: id, B: -1,
				Detail: fmt.Sprintf("edge %v has no matched endpoint", ed),
			})
		}
	}
	return out
}

// VertexCover checks that cover (a set of vertex ids) covers every edge
// of g.
func VertexCover(g *graph.Graph, cover []int) []Violation {
	var out []Violation
	in := make([]bool, g.N())
	for _, v := range cover {
		if v < 0 || v >= g.N() {
			out = append(out, Violation{
				Kind: "range", A: v, B: -1,
				Detail: fmt.Sprintf("vertex id %d out of range", v),
			})
			continue
		}
		in[v] = true
	}
	for id, e := range g.Edges() {
		if e.U < 0 {
			continue // removal hole
		}
		if !in[e.U] && !in[e.V] {
			out = append(out, Violation{
				Kind: "uncovered", A: id, B: -1,
				Detail: fmt.Sprintf("edge %v not covered", e),
			})
		}
	}
	return out
}

// StrongLowerBound returns a lower bound on the number of colors any
// strong directed edge coloring of d must use: all arcs with an endpoint
// in {u, v} pairwise conflict for any edge (u, v) (two arcs touching u
// and v respectively are joined by (u,v) itself), so the bound is
// max over edges of 2(deg u + deg v - 1). Zero for empty digraphs.
func StrongLowerBound(d *graph.Digraph) int {
	g := d.Under()
	best := 0
	for _, e := range g.Edges() {
		if e.U < 0 {
			continue // removal hole
		}
		if k := 2 * (g.Degree(e.U) + g.Degree(e.V) - 1); k > best {
			best = k
		}
	}
	return best
}

// CountColors returns the number of distinct colors (ignoring negative
// entries) and the maximum color index (-1 if none).
func CountColors(colors []int) (distinct, maxColor int) {
	seen := make(map[int]bool)
	maxColor = -1
	for _, c := range colors {
		if c < 0 {
			continue
		}
		seen[c] = true
		if c > maxColor {
			maxColor = c
		}
	}
	return len(seen), maxColor
}
