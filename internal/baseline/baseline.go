// Package baseline implements centralized comparison algorithms for the
// distributed colorings: greedy first-fit edge coloring, the
// Misra–Gries Δ+1 edge coloring, greedy strong (distance-2) coloring,
// and an idealized round-synchronous matching colorer that serves as a
// lower-bound reference for the distributed algorithms' round counts.
package baseline

import (
	"fmt"

	"dima/internal/graph"
	"dima/internal/rng"
)

// GreedyEdgeColoring colors the edges of g in the given order with the
// lowest color free at both endpoints. order may be nil for edge-id
// order; otherwise it must be a permutation of [0, M). Uses at most
// 2Δ-1 colors.
func GreedyEdgeColoring(g *graph.Graph, order []int) ([]int, error) {
	m := g.M()
	if order == nil {
		order = make([]int, m)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != m {
		return nil, fmt.Errorf("baseline: order length %d != M %d", len(order), m)
	}
	used := make([]map[int]bool, g.N())
	for u := range used {
		used[u] = make(map[int]bool, g.Degree(u))
	}
	colors := make([]int, m)
	for i := range colors {
		colors[i] = -1
	}
	seen := make([]bool, m)
	for _, e := range order {
		if e < 0 || e >= m || seen[e] {
			return nil, fmt.Errorf("baseline: order is not a permutation (at %d)", e)
		}
		seen[e] = true
		ed := g.EdgeAt(graph.EdgeID(e))
		c := 0
		for used[ed.U][c] || used[ed.V][c] {
			c++
		}
		colors[e] = c
		used[ed.U][c] = true
		used[ed.V][c] = true
	}
	return colors, nil
}

// RandomOrderGreedy is GreedyEdgeColoring over a uniformly random edge
// order drawn from r.
func RandomOrderGreedy(g *graph.Graph, r *rng.Rand) []int {
	colors, err := GreedyEdgeColoring(g, r.Perm(g.M()))
	if err != nil {
		panic(err) // Perm is a permutation by construction
	}
	return colors
}

// GreedyStrongColoring colors the arcs of d in arc-id order with the
// lowest color free across each arc's distance-1 conflict set
// (Definition 2). It is the centralized quality baseline for DiMa2Ed.
func GreedyStrongColoring(d *graph.Digraph) []int {
	colors := make([]int, d.A())
	for i := range colors {
		colors[i] = -1
	}
	g := d.Under()
	for a := graph.ArcID(0); int(a) < d.A(); a++ {
		forbidden := make(map[int]bool)
		arc := d.ArcAt(a)
		// Conflicting arcs are exactly those with an endpoint in the
		// closed neighborhoods of a's endpoints.
		for _, end := range []int{arc.From, arc.To} {
			for _, w := range append([]int{end}, g.Neighbors(end)...) {
				for _, b := range d.OutArcs(w) {
					for _, bb := range []graph.ArcID{b, d.ReverseOf(b)} {
						if bb != a && colors[bb] >= 0 && d.ArcsConflict(a, bb) {
							forbidden[colors[bb]] = true
						}
					}
				}
			}
		}
		c := 0
		for forbidden[c] {
			c++
		}
		colors[a] = c
	}
	return colors
}

// MatchingRoundsResult reports the outcome of the idealized centralized
// matcher.
type MatchingRoundsResult struct {
	// Colors is the per-edge coloring produced.
	Colors []int
	// Rounds is the number of matching rounds until all edges colored.
	Rounds int
	// MatchingSizes records the size of the matching in each round.
	MatchingSizes []int
}

// CentralizedMatchingColoring simulates the idealized version of
// Algorithm 1: in each round a random *maximal* matching over the still
// uncolored edges is selected centrally (no failed invitations, no
// wasted coin tosses) and every matched edge takes the lowest color free
// at both endpoints. Its round count lower-bounds what the distributed
// protocol can achieve and its palette obeys the same 2Δ-1 analysis —
// the reference line for the Figure 3–5 round plots.
func CentralizedMatchingColoring(g *graph.Graph, r *rng.Rand) MatchingRoundsResult {
	m := g.M()
	colors := make([]int, m)
	uncolored := make([]graph.EdgeID, m)
	for i := range colors {
		colors[i] = -1
		uncolored[i] = graph.EdgeID(i)
	}
	used := make([]map[int]bool, g.N())
	for u := range used {
		used[u] = make(map[int]bool, g.Degree(u))
	}
	res := MatchingRoundsResult{Colors: colors}
	for len(uncolored) > 0 {
		res.Rounds++
		// Random greedy maximal matching over the uncolored edges.
		r.Shuffle(len(uncolored), func(i, j int) {
			uncolored[i], uncolored[j] = uncolored[j], uncolored[i]
		})
		busy := make(map[int]bool)
		matched := 0
		var rest []graph.EdgeID
		for _, e := range uncolored {
			ed := g.EdgeAt(e)
			if busy[ed.U] || busy[ed.V] {
				rest = append(rest, e)
				continue
			}
			busy[ed.U], busy[ed.V] = true, true
			matched++
			c := 0
			for used[ed.U][c] || used[ed.V][c] {
				c++
			}
			colors[e] = c
			used[ed.U][c] = true
			used[ed.V][c] = true
		}
		res.MatchingSizes = append(res.MatchingSizes, matched)
		uncolored = rest
	}
	return res
}
