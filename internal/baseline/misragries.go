package baseline

import (
	"fmt"

	"dima/internal/graph"
)

// MisraGries colors the edges of g with at most Δ+1 colors using the
// Misra & Gries (1992) constructive proof of Vizing's theorem: for each
// uncolored edge, build a maximal fan, invert a cd-alternating path, and
// rotate a fan prefix. It is the strongest centralized quality baseline
// for Algorithm 1 (the paper's Conjecture 2 claims the distributed
// protocol typically matches Δ or Δ+1 colors).
func MisraGries(g *graph.Graph) ([]int, error) {
	mg := &mgState{g: g, palette: g.MaxDegree() + 1}
	mg.colors = make([]int, g.M())
	for i := range mg.colors {
		mg.colors[i] = -1
	}
	mg.at = make([][]graph.EdgeID, g.N())
	for v := range mg.at {
		mg.at[v] = make([]graph.EdgeID, mg.palette)
		for c := range mg.at[v] {
			mg.at[v][c] = -1
		}
	}
	for e := graph.EdgeID(0); int(e) < g.M(); e++ {
		if err := mg.colorEdge(e); err != nil {
			return nil, err
		}
	}
	return mg.colors, nil
}

type mgState struct {
	g       *graph.Graph
	palette int
	colors  []int
	// at[v][c] = the edge with color c at vertex v, or -1.
	at [][]graph.EdgeID
}

func (m *mgState) free(v, c int) bool { return m.at[v][c] < 0 }

func (m *mgState) freeColor(v int) int {
	for c := 0; c < m.palette; c++ {
		if m.free(v, c) {
			return c
		}
	}
	panic("baseline: vertex saturated within Δ+1 palette (impossible)")
}

// set assigns color c to edge e (c == -1 uncolors it).
func (m *mgState) set(e graph.EdgeID, c int) {
	ed := m.g.EdgeAt(e)
	if old := m.colors[e]; old >= 0 {
		m.at[ed.U][old] = -1
		m.at[ed.V][old] = -1
	}
	m.colors[e] = c
	if c >= 0 {
		m.at[ed.U][c] = e
		m.at[ed.V][c] = e
	}
}

func (m *mgState) colorEdge(eid graph.EdgeID) error {
	ed := m.g.EdgeAt(eid)
	u, v := ed.U, ed.V

	// Maximal fan of u starting at v: each added spoke's edge to u is
	// colored with a color free at the previous spoke.
	fan := []int{v}
	inFan := map[int]bool{v: true}
	for {
		last := fan[len(fan)-1]
		grew := false
		for _, x := range m.g.Neighbors(u) {
			if inFan[x] {
				continue
			}
			ex, _ := m.g.EdgeIDOf(u, x)
			if cx := m.colors[ex]; cx >= 0 && m.free(last, cx) {
				fan = append(fan, x)
				inFan[x] = true
				grew = true
				break
			}
		}
		if !grew {
			break
		}
	}

	c := m.freeColor(u)
	d := m.freeColor(fan[len(fan)-1])
	if c != d {
		m.invertPath(u, c, d)
	}
	// d is now free at u. Find the first spoke where d is free while the
	// fan prefix remains a fan under the current (post-inversion) colors.
	w := -1
	for i, x := range fan {
		if m.free(x, d) {
			w = i
			break
		}
		if i+1 == len(fan) {
			break
		}
		enext, _ := m.g.EdgeIDOf(u, fan[i+1])
		if cn := m.colors[enext]; cn < 0 || !m.free(x, cn) {
			break // prefix fan broken past i; w must have appeared earlier
		}
	}
	if w < 0 {
		return fmt.Errorf("baseline: misra-gries fan invariant failed at edge %v", ed)
	}
	// Rotate the prefix: each spoke takes the next spoke's color; the
	// last prefix spoke's edge takes d.
	for i := 0; i < w; i++ {
		ecur, _ := m.g.EdgeIDOf(u, fan[i])
		enext, _ := m.g.EdgeIDOf(u, fan[i+1])
		cn := m.colors[enext]
		m.set(enext, -1)
		m.set(ecur, cn)
	}
	ew, _ := m.g.EdgeIDOf(u, fan[w])
	m.set(ew, d)
	return nil
}

// invertPath flips colors c and d along the maximal alternating path
// starting at u, whose first edge is colored d (u itself misses c, so
// the walk is a simple path).
func (m *mgState) invertPath(u, c, d int) {
	var path []graph.EdgeID
	cur, want := u, d
	for {
		e := m.at[cur][want]
		if e < 0 {
			break
		}
		path = append(path, e)
		cur = m.g.EdgeAt(e).Other(cur)
		if want == d {
			want = c
		} else {
			want = d
		}
	}
	// Uncolor everything first: adjacent path edges exchange colors, so
	// in-place sequential flips would collide in the at-index.
	flipped := make([]int, len(path))
	for i, e := range path {
		if m.colors[e] == c {
			flipped[i] = d
		} else {
			flipped[i] = c
		}
	}
	for _, e := range path {
		m.set(e, -1)
	}
	for i, e := range path {
		m.set(e, flipped[i])
	}
}
