package baseline

import (
	"testing"
	"testing/quick"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

func TestGreedyEdgeColoringValid(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(1), 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	colors, err := GreedyEdgeColoring(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.EdgeColoring(g, colors); len(v) != 0 {
		t.Fatalf("greedy invalid: %v", v[0])
	}
	distinct, _ := verify.CountColors(colors)
	if d := g.MaxDegree(); distinct > 2*d-1 {
		t.Fatalf("greedy used %d colors > 2Δ-1 = %d", distinct, 2*d-1)
	}
}

func TestGreedyEdgeColoringOrderErrors(t *testing.T) {
	g := gen.Path(3)
	if _, err := GreedyEdgeColoring(g, []int{0}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := GreedyEdgeColoring(g, []int{0, 0}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := GreedyEdgeColoring(g, []int{0, 7}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
}

func TestGreedyEdgeColoringEmpty(t *testing.T) {
	colors, err := GreedyEdgeColoring(graph.New(0), nil)
	if err != nil || len(colors) != 0 {
		t.Fatalf("empty: %v %v", colors, err)
	}
}

func TestRandomOrderGreedyValid(t *testing.T) {
	g, err := gen.BarabasiAlbert(rng.New(2), 80, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	colors := RandomOrderGreedy(g, rng.New(3))
	if v := verify.EdgeColoring(g, colors); len(v) != 0 {
		t.Fatalf("random-order greedy invalid: %v", v[0])
	}
}

func TestMisraGriesDeltaPlusOne(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path":      gen.Path(10),
		"cycle":     gen.Cycle(9), // odd cycle: class 2, needs Δ+1 = 3
		"star":      gen.Star(8),
		"complete7": gen.Complete(7), // odd complete: class 2
		"complete8": gen.Complete(8),
		"grid":      gen.Grid(6, 7),
		"hypercube": gen.Hypercube(4),
	}
	r := rng.New(4)
	er, err := gen.ErdosRenyiAvgDegree(r, 120, 10)
	if err != nil {
		t.Fatal(err)
	}
	cases["er"] = er
	ba, err := gen.BarabasiAlbert(r, 100, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cases["scale-free"] = ba
	for name, g := range cases {
		colors, err := MisraGries(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v := verify.EdgeColoring(g, colors); len(v) != 0 {
			t.Fatalf("%s: invalid: %v", name, v[0])
		}
		distinct, maxc := verify.CountColors(colors)
		if distinct > g.MaxDegree()+1 || maxc > g.MaxDegree() {
			t.Fatalf("%s: %d colors (max index %d) exceeds Δ+1 = %d",
				name, distinct, maxc, g.MaxDegree()+1)
		}
	}
}

func TestMisraGriesEmptyAndTiny(t *testing.T) {
	if colors, err := MisraGries(graph.New(0)); err != nil || len(colors) != 0 {
		t.Fatal("empty graph failed")
	}
	if colors, err := MisraGries(gen.Path(2)); err != nil || colors[0] != 0 {
		t.Fatalf("K2: %v %v", colors, err)
	}
}

func TestQuickMisraGriesAlwaysVizing(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%40)
		deg := 2 + float64(seed%10)
		if deg > float64(n-1) {
			deg = float64(n - 1)
		}
		g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), n, deg)
		if err != nil {
			return false
		}
		colors, err := MisraGries(g)
		if err != nil {
			return false
		}
		if len(verify.EdgeColoring(g, colors)) != 0 {
			return false
		}
		distinct, _ := verify.CountColors(colors)
		return g.M() == 0 || distinct <= g.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyStrongColoringValid(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Path(6), gen.Cycle(8), gen.Star(6), gen.Grid(4, 4),
	} {
		d := graph.NewSymmetric(g)
		colors := GreedyStrongColoring(d)
		if v := verify.StrongColoring(d, colors); len(v) != 0 {
			t.Fatalf("greedy strong invalid on %d-vertex graph: %v", g.N(), v[0])
		}
	}
	er, err := gen.ErdosRenyiAvgDegree(rng.New(5), 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewSymmetric(er)
	colors := GreedyStrongColoring(d)
	if v := verify.StrongColoring(d, colors); len(v) != 0 {
		t.Fatalf("greedy strong invalid on ER: %v", v[0])
	}
}

func TestCentralizedMatchingColoring(t *testing.T) {
	g, err := gen.ErdosRenyiAvgDegree(rng.New(6), 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := CentralizedMatchingColoring(g, rng.New(7))
	if v := verify.EdgeColoring(g, res.Colors); len(v) != 0 {
		t.Fatalf("centralized matching coloring invalid: %v", v[0])
	}
	if res.Rounds < g.MaxDegree() {
		t.Fatalf("%d rounds < Δ = %d (impossible: one edge per vertex per round)",
			res.Rounds, g.MaxDegree())
	}
	if len(res.MatchingSizes) != res.Rounds {
		t.Fatal("per-round sizes inconsistent with round count")
	}
	total := 0
	for i, s := range res.MatchingSizes {
		if s <= 0 {
			t.Fatalf("round %d matched %d edges; maximal matching on nonempty residue must be nonempty", i, s)
		}
		total += s
	}
	if total != g.M() {
		t.Fatalf("matched %d of %d edges", total, g.M())
	}
	distinct, _ := verify.CountColors(res.Colors)
	if distinct > 2*g.MaxDegree()-1 {
		t.Fatalf("centralized matcher used %d colors > 2Δ-1", distinct)
	}
}

func TestCentralizedMatchingEmpty(t *testing.T) {
	res := CentralizedMatchingColoring(graph.New(3), rng.New(8))
	if res.Rounds != 0 || len(res.Colors) != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
}

func TestTreeWaveOnTrees(t *testing.T) {
	r := rng.New(20)
	for _, n := range []int{1, 2, 5, 50, 200} {
		g := gen.RandomTree(r, n)
		res, err := TreeWave(g, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !res.Terminated {
			t.Fatalf("n=%d: did not terminate", n)
		}
		if v := verify.EdgeColoring(g, res.Colors); len(v) != 0 {
			t.Fatalf("n=%d: invalid: %v", n, v[0])
		}
		distinct, maxc := verify.CountColors(res.Colors)
		if d := g.MaxDegree(); distinct > d+1 || maxc > d {
			t.Fatalf("n=%d: %d colors (max %d) exceeds Δ+1=%d", n, distinct, maxc, d+1)
		}
	}
}

func TestTreeWavePathUsesTwoColors(t *testing.T) {
	res, err := TreeWave(gen.Path(10), nil)
	if err != nil {
		t.Fatal(err)
	}
	distinct, _ := verify.CountColors(res.Colors)
	if distinct != 2 {
		t.Fatalf("path colored with %d colors, want 2", distinct)
	}
}

func TestTreeWaveStarUsesDeltaColors(t *testing.T) {
	res, err := TreeWave(gen.Star(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	distinct, _ := verify.CountColors(res.Colors)
	if distinct != 8 {
		t.Fatalf("star colored with %d colors, want 8", distinct)
	}
	// One wave: the root colors everything in round 1.
	if res.Rounds > 2 {
		t.Fatalf("star took %d rounds", res.Rounds)
	}
}

func TestTreeWaveForest(t *testing.T) {
	// Two disjoint paths.
	g := graph.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	res, err := TreeWave(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.EdgeColoring(g, res.Colors); len(v) != 0 {
		t.Fatalf("forest invalid: %v", v[0])
	}
}

func TestTreeWaveRejectsCycles(t *testing.T) {
	if _, err := TreeWave(gen.Cycle(5), nil); err == nil {
		t.Fatal("accepted a cycle")
	}
}

func TestTreeWaveRoundsTrackDepth(t *testing.T) {
	// A path rooted at vertex 0 has depth n-1: rounds grow with n even
	// though Δ stays 2 — the opposite scaling of DiMa, which is the
	// point of the comparison.
	shallow, err := TreeWave(gen.Path(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := TreeWave(gen.Path(64), nil)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Rounds <= shallow.Rounds {
		t.Fatalf("rounds did not grow with depth: %d vs %d", shallow.Rounds, deep.Rounds)
	}
}

func TestTreeWaveEngineEquivalence(t *testing.T) {
	g := gen.RandomTree(rng.New(21), 80)
	a, err := TreeWave(g, net.RunSync)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TreeWave(g, net.RunChan)
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.Colors {
		if a.Colors[e] != b.Colors[e] {
			t.Fatalf("engines diverged at edge %d", e)
		}
	}
}
