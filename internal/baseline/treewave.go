package baseline

import (
	"fmt"

	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
)

// TreeWaveResult reports a TreeWave run.
type TreeWaveResult struct {
	// Colors is indexed by graph.EdgeID.
	Colors []int
	// Rounds is the number of communication rounds (the forest depth).
	Rounds     int
	Messages   int64
	Terminated bool
}

// TreeWave is the deterministic distributed edge coloring for forests
// that plays the role of the paper's ref [4] (Gandham, Dawande, Prakash:
// deterministic Δ+1 edge coloring for acyclic graphs): a wave starts at
// each tree's root (the minimum-id vertex, chosen during setup); every
// node, once it knows its parent edge's color, colors its child edges
// with the smallest colors different from the parent's and passes the
// wave down. It uses at most Δ+1 colors and exactly depth(forest)
// communication rounds — deterministic, in contrast to DiMa's
// probabilistic Θ(Δ) rounds.
//
// The input must be a forest; cycles are rejected.
func TreeWave(g *graph.Graph, engine net.Engine) (*TreeWaveResult, error) {
	if g.M() >= g.N() && g.N() > 0 {
		return nil, fmt.Errorf("baseline: graph with %d vertices and %d edges cannot be a forest", g.N(), g.M())
	}
	// Roots: the minimum vertex of each component (computed during
	// setup, as a real deployment would elect leaders).
	isRoot := make([]bool, g.N())
	for _, comp := range g.Components() {
		isRoot[comp[0]] = true // components list vertices ascending
	}
	nodes := make([]net.Node, g.N())
	tns := make([]*treeNode, g.N())
	for u := 0; u < g.N(); u++ {
		tns[u] = &treeNode{
			id: u, g: g, root: isRoot[u],
			colors: map[graph.EdgeID]int{}, parentColor: -1, parent: -1,
		}
		nodes[u] = tns[u]
	}
	if engine == nil {
		engine = net.RunSync
	}
	netRes, err := engine(g, nodes, net.Config{MaxRounds: g.N() + 2})
	if err != nil {
		return nil, err
	}
	res := &TreeWaveResult{
		Colors:     make([]int, g.M()),
		Rounds:     netRes.Rounds,
		Messages:   netRes.Messages,
		Terminated: netRes.Terminated,
	}
	for i := range res.Colors {
		res.Colors[i] = -1
	}
	for _, n := range tns {
		for e, c := range n.colors {
			if res.Colors[e] == -1 {
				res.Colors[e] = c
			} else if res.Colors[e] != c {
				return nil, fmt.Errorf("baseline: tree wave endpoint disagreement on edge %v", g.EdgeAt(e))
			}
		}
	}
	if res.Terminated {
		for e, c := range res.Colors {
			if c < 0 {
				return nil, fmt.Errorf("baseline: tree wave left edge %v uncolored", g.EdgeAt(graph.EdgeID(e)))
			}
		}
	}
	return res, nil
}

type treeNode struct {
	id   int
	g    *graph.Graph
	root bool

	colors      map[graph.EdgeID]int
	parentColor int // -1 until known
	parent      int // -1 for roots
	assigned    bool
	done        bool
}

func (n *treeNode) ID() int { return n.id }

func (n *treeNode) Done() bool { return n.done }

func (n *treeNode) Step(round int, inbox []msg.Message) []msg.Message {
	if n.done {
		return nil
	}
	if !n.root && !n.assigned {
		// Wait for the parent's assignment.
		for _, m := range inbox {
			if m.Kind == msg.KindUpdate && m.To == n.id {
				e := graph.EdgeID(m.Edge)
				n.colors[e] = m.Color
				n.parentColor = m.Color
				n.parent = m.From
				break
			}
		}
		if n.parent < 0 {
			return nil // wave has not reached this node yet
		}
	}
	// Assign the smallest colors != parentColor to all child edges, in
	// neighbor order, and push the wave down.
	n.assigned = true
	n.done = true
	var out []msg.Message
	next := 0
	for i, v := range n.g.Neighbors(n.id) {
		if v == n.parent {
			continue
		}
		if next == n.parentColor {
			next++
		}
		e := n.g.IncidentEdges(n.id)[i]
		n.colors[e] = next
		out = append(out, msg.Message{
			Kind: msg.KindUpdate, From: n.id, To: v, Edge: int(e), Color: next,
		})
		next++
	}
	return out
}
