package viz

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	p := NewPlot("title", "x", "y", 30, 10)
	p.Add(Series{Name: "a", Points: []Point{{0, 0}, {10, 10}}})
	p.Add(Series{Name: "b", Points: []Point{{5, 2}}})
	out := p.Render()
	if !strings.Contains(out, "title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("glyphs missing")
	}
	if !strings.Contains(out, "(x)") || !strings.Contains(out, "y") {
		t.Fatal("axis labels missing")
	}
	// Axis ranges appear.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Fatal("ranges missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	p := NewPlot("empty", "", "", 20, 8)
	if !strings.Contains(p.Render(), "(no data)") {
		t.Fatal("empty plot not flagged")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// All points identical: ranges must not divide by zero.
	p := NewPlot("", "", "", 20, 8)
	p.Add(Series{Name: "s", Points: []Point{{3, 3}, {3, 3}}})
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("point missing:\n%s", out)
	}
}

func TestCornerPlacement(t *testing.T) {
	p := NewPlot("", "", "", 21, 9)
	p.Add(Series{Name: "s", Points: []Point{{0, 0}, {20, 8}}})
	out := p.Render()
	lines := strings.Split(out, "\n")
	// First grid row (index 0 here: no title/ylab) holds the max-y point
	// at the right edge.
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 9 {
		t.Fatalf("grid rows = %d:\n%s", len(gridLines), out)
	}
	if !strings.HasSuffix(gridLines[0], "*") {
		t.Fatalf("top-right point missing: %q", gridLines[0])
	}
	bottom := gridLines[len(gridLines)-1]
	if bottom[strings.Index(bottom, "|")+1] != '*' {
		t.Fatalf("bottom-left point missing: %q", bottom)
	}
}

func TestMinimumDimensionsClamped(t *testing.T) {
	p := NewPlot("", "", "", 1, 1)
	p.Add(Series{Name: "s", Points: []Point{{0, 0}}})
	out := p.Render()
	if len(out) == 0 {
		t.Fatal("no output")
	}
	// Must not panic and must contain the single glyph.
	if !strings.Contains(out, "*") {
		t.Fatal("glyph missing")
	}
}

func TestGlyphCycling(t *testing.T) {
	p := NewPlot("", "", "", 20, 8)
	for i := 0; i < 10; i++ {
		p.Add(Series{Name: "s", Points: []Point{{float64(i), float64(i)}}})
	}
	out := p.Render()
	// 10 series cycle through 8 glyphs: the 9th reuses '*'.
	if strings.Count(out, "* s") != 2 {
		t.Fatalf("glyph cycling wrong:\n%s", out)
	}
}
