// Package viz renders ASCII scatter plots of experiment series — the
// closest a terminal gets to the paper's Figures 3–6. Each series gets
// its own glyph; axes are linear with automatic ranges.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) observation.
type Point struct {
	X, Y float64
}

// Series is a named set of points sharing one glyph.
type Series struct {
	Name   string
	Points []Point
}

// Plot is an ASCII scatter plot. Construct with NewPlot, add series,
// then Render.
type Plot struct {
	title      string
	xlab, ylab string
	width      int
	height     int
	series     []Series
}

// NewPlot creates a plot with the given title and axis labels. Width and
// height are the interior cell counts; values below 20×8 are clamped up.
func NewPlot(title, xlab, ylab string, width, height int) *Plot {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	return &Plot{title: title, xlab: xlab, ylab: ylab, width: width, height: height}
}

// Add appends a series. Glyphs are assigned in order: * + o x # @ % &.
func (p *Plot) Add(s Series) { p.series = append(p.series, s) }

var glyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the plot. Overlapping points from different series render
// as the later series' glyph.
func (p *Plot) Render() string {
	var xs, ys []float64
	for _, s := range p.series {
		for _, pt := range s.Points {
			xs = append(xs, pt.X)
			ys = append(ys, pt.Y)
		}
	}
	var b strings.Builder
	if p.title != "" {
		fmt.Fprintf(&b, "%s\n", p.title)
	}
	if len(xs) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, p.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", p.width))
	}
	for si, s := range p.series {
		g := glyphs[si%len(glyphs)]
		for _, pt := range s.Points {
			c := int(math.Round((pt.X - xmin) / (xmax - xmin) * float64(p.width-1)))
			r := int(math.Round((pt.Y - ymin) / (ymax - ymin) * float64(p.height-1)))
			grid[p.height-1-r][c] = g
		}
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	if p.ylab != "" {
		fmt.Fprintf(&b, "%s\n", p.ylab)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = pad(yTop, margin)
		}
		if r == p.height-1 {
			label = pad(yBot, margin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", p.width))
	xTop := fmt.Sprintf("%.4g", xmin)
	xEnd := fmt.Sprintf("%.4g", xmax)
	gap := p.width - len(xTop) - len(xEnd)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s", strings.Repeat(" ", margin), xTop, strings.Repeat(" ", gap), xEnd)
	if p.xlab != "" {
		fmt.Fprintf(&b, "  (%s)", p.xlab)
	}
	b.WriteString("\n")
	// Legend.
	for si, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
