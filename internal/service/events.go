package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"dima/internal/metrics"
)

// GET /jobs/{id}/events streams the job's telemetry as Server-Sent
// Events: every lifecycle transition ("status", a JobStatus document),
// every computation round of the run ("round", a RoundStats document,
// delivered when the engine emits its stream), and — for dynamic jobs —
// every mutation batch ("mutation", a MutateResponse document). A
// subscriber that falls behind receives a "dropped" event whose data is
// {"dropped": n} in place of the n events it missed; the full round
// stream remains fetchable from /stats.
//
// Each event carries the broadcast sequence number as its SSE id, so
// the stream is resumable by inspection (dropped markers have no id).
// On attach the handler replays the job's retained event log — a late
// subscriber to a finished job sees its whole history — then follows
// live. The stream ends when the client disconnects or the server shuts
// down; a comment ping keeps idle connections alive through proxies.
//
// docs/OBSERVABILITY.md documents the schema.

// sseHeartbeat is the idle keep-alive interval.
const sseHeartbeat = 15 * time.Second

// sseSubscriberBuffer is each subscriber's bounded channel: enough for
// a full burst of round emissions; beyond it the subscriber is slow and
// events drop rather than stall other work.
const sseSubscriberBuffer = 256

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	// Subscribe BEFORE replaying so no event can fall between the
	// replayed prefix and the live channel; overlap is deduplicated by
	// sequence number below.
	sub := j.bcast.Subscribe(sseSubscriberBuffer)
	defer sub.Cancel()
	s.eventSubs.Add(1)
	defer s.eventSubs.Add(-1)

	var last uint64
	replay := j.bcast.Replay()
	if len(replay) > 0 && replay[0].Seq > 1 {
		// The retained log lost its oldest events; tell the client.
		_ = writeSSE(w, metrics.Event{Type: metrics.EventDropped, Data: replay[0].Seq - 1})
	}
	for _, ev := range replay {
		if err := writeSSE(w, ev); err != nil {
			return
		}
		last = ev.Seq
	}
	fl.Flush()

	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return // client went away
		case <-s.baseCtx.Done():
			return // server closing
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if ev.Seq != 0 && ev.Seq <= last {
				continue // already sent during replay
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			if ev.Seq > last {
				last = ev.Seq
			}
			fl.Flush()
		case <-hb.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeSSE renders one event in the SSE wire format. Dropped markers
// (Seq 0) carry no id and wrap their count as {"dropped": n}.
func writeSSE(w io.Writer, ev metrics.Event) error {
	data := ev.Data
	if ev.Type == metrics.EventDropped {
		data = map[string]any{"dropped": ev.Data}
	}
	raw, err := json.Marshal(data)
	if err != nil {
		raw = []byte("{}")
	}
	if ev.Seq != 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", ev.Seq); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, raw)
	return err
}
