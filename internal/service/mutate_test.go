package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dima/internal/service"
)

// mutateNDJSON posts an ndjson batch stream and decodes the per-batch
// response lines.
func mutateNDJSON(t *testing.T, base, id, body, query string) []service.MutateResponse {
	t.Helper()
	resp, err := http.Post(base+"/jobs/"+id+"/mutate"+query, "application/x-ndjson",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, raw)
	}
	var out []service.MutateResponse
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var mr service.MutateResponse
		if err := json.Unmarshal([]byte(line), &mr); err != nil {
			t.Fatalf("response line %q: %v", line, err)
		}
		out = append(out, mr)
	}
	return out
}

func fetchResult(t *testing.T, base, id string) service.JobResult {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d: %s", resp.StatusCode, raw)
	}
	var jr service.JobResult
	if err := json.Unmarshal([]byte(raw), &jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

func TestMutateStreamRepairsAndStaysValid(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"er","n":40,"deg":4,"seed":3},"seed":7}`)
	waitState(t, ts.URL, st.ID, service.StateDone)
	m0 := fetchResult(t, ts.URL, st.ID).M

	// Three streamed batches: two inserts, one delete of an inserted
	// edge, one more insert.
	body := `{"seq":1,"muts":[{"op":"+","u":0,"v":1},{"op":"insert","u":2,"v":3}]}
{"seq":2,"muts":[{"op":"-","u":0,"v":1}]}
{"seq":3,"muts":[{"op":"+","u":0,"v":5}]}
`
	// The generator may have produced some of these edges already; drive
	// against fresh vertex pairs via high ids if so — instead, simply
	// tolerate per-batch rejection and count applied ones.
	out := mutateNDJSON(t, ts.URL, st.ID, body, "")
	if len(out) != 3 {
		t.Fatalf("got %d response lines, want 3", len(out))
	}
	applied := 0
	for i, mr := range out {
		if mr.Valid == nil {
			t.Fatalf("line %d: no validation verdict: %+v", i, mr)
		}
		if !*mr.Valid {
			t.Fatalf("line %d: coloring went invalid: %+v", i, mr)
		}
		if mr.Applied {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("no batch applied")
	}

	// The result endpoint serves the mutated state; every live entry is
	// colored and the status shows the mutation summary.
	jr := fetchResult(t, ts.URL, st.ID)
	if jr.M == m0 && applied > 0 && out[0].M != m0 {
		t.Fatalf("result M %d does not reflect mutations", jr.M)
	}
	live := 0
	for _, c := range jr.Colors {
		if c >= 0 {
			live++
		}
	}
	if live != jr.M {
		t.Fatalf("%d colored entries for %d live edges", live, jr.M)
	}
	fin := getStatus(t, ts.URL, st.ID)
	if fin.Mutations == nil || fin.Mutations.Batches != applied || fin.Mutations.M != jr.M {
		t.Fatalf("mutation summary %+v (applied %d, m %d)", fin.Mutations, applied, jr.M)
	}
}

func TestMutateRejectsBadBatchesAtomically(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"cycle","n":10},"seed":1}`)
	waitState(t, ts.URL, st.ID, service.StateDone)

	body := `{"seq":1,"muts":[{"op":"-","u":0,"v":5}]}
{"seq":2,"muts":[{"op":"+","u":0,"v":1}]}
{"seq":3,"muts":[{"op":"x","u":0,"v":2}]}
{"seq":4,"muts":[{"op":"+","u":0,"v":99}]}
{"seq":5,"muts":[{"op":"+","u":0,"v":2}]}
`
	out := mutateNDJSON(t, ts.URL, st.ID, body, "")
	if len(out) != 5 {
		t.Fatalf("got %d response lines, want 5", len(out))
	}
	// 1: delete of missing edge (cycle has (0,1)...(9,0), not (0,5)).
	// 2: insert of existing edge (0,1). 3: unknown op. 4: out of range.
	// 5: applicable.
	for i, wantApplied := range []bool{false, false, false, false, true} {
		if out[i].Applied != wantApplied {
			t.Fatalf("line %d: applied=%v, want %v (%+v)", i, out[i].Applied, wantApplied, out[i])
		}
		if !wantApplied && out[i].Error == "" {
			t.Fatalf("line %d: rejected without an error", i)
		}
	}
	jr := fetchResult(t, ts.URL, st.ID)
	if jr.M != 11 { // 10 cycle edges + 1 applied insert
		t.Fatalf("M=%d after one applied insert on a 10-cycle", jr.M)
	}
}

func TestMutateTextFormatSingleBatch(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"path","n":6},"seed":1}`)
	waitState(t, ts.URL, st.ID, service.StateDone)

	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/mutate", "text/plain",
		strings.NewReader("# close the path into a cycle\n+ 5 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var mr service.MutateResponse
	if err := json.Unmarshal([]byte(strings.TrimSpace(raw)), &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Applied || mr.Inserted != 1 || mr.M != 6 || mr.Valid == nil || !*mr.Valid {
		t.Fatalf("text batch response %+v", mr)
	}
}

// TestMutateLongStreamFullDuplex streams a body well past the server's
// per-connection read buffer. HTTP/1 servers stop reading the request
// body once the first response byte goes out unless the handler enables
// full duplex, which truncated exactly this workload to the ~4 KiB the
// connection had already buffered.
func TestMutateLongStreamFullDuplex(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"cycle","n":200},"seed":7}`)
	waitState(t, ts.URL, st.ID, service.StateDone)

	// Batch i inserts chord (i-1, i+99) and deletes cycle edge (i-1, i):
	// 100 applicable batches, ~7 KB of ndjson.
	var sb strings.Builder
	for i := 1; i <= 100; i++ {
		fmt.Fprintf(&sb, `{"seq":%d,"muts":[{"op":"+","u":%d,"v":%d},{"op":"-","u":%d,"v":%d}]}`+"\n",
			i, i-1, i+99, i-1, i)
	}
	out := mutateNDJSON(t, ts.URL, st.ID, sb.String(), "")
	if len(out) != 100 {
		t.Fatalf("got %d response lines for 100 batches", len(out))
	}
	for i, mr := range out {
		if !mr.Applied {
			t.Fatalf("batch %d not applied: %+v", i+1, mr)
		}
		if mr.Valid == nil || !*mr.Valid {
			t.Fatalf("batch %d: coloring invalid: %+v", i+1, mr)
		}
	}
	if jr := fetchResult(t, ts.URL, st.ID); jr.M != 200 {
		t.Fatalf("M=%d after 100 inserts and 100 deletes on a 200-cycle", jr.M)
	}
}

// TestMutateMaintainCompactsUnderChurn opts a delete-heavy stream into
// maintenance and checks the full wiring: per-batch maintenance
// reports, the hole-ratio trigger actually firing, and the status
// summary's pass counters.
func TestMutateMaintainCompactsUnderChurn(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"cycle","n":200},"seed":7}`)
	waitState(t, ts.URL, st.ID, service.StateDone)

	// Delete 80 cycle edges in batches of 10: the id space fragments
	// until EdgeIDBound/live crosses 1.2 and compaction fires (possibly
	// more than once, since each pass resets the ratio to 1).
	var sb strings.Builder
	for b := 0; b < 8; b++ {
		sb.WriteString(fmt.Sprintf(`{"seq":%d,"muts":[`, b+1))
		for i := 0; i < 10; i++ {
			if i > 0 {
				sb.WriteString(",")
			}
			u := b*10 + i
			sb.WriteString(fmt.Sprintf(`{"op":"-","u":%d,"v":%d}`, u, u+1))
		}
		sb.WriteString("]}\n")
	}
	out := mutateNDJSON(t, ts.URL, st.ID, sb.String(), "?maintain=true&holeRatio=1.2")
	if len(out) != 8 {
		t.Fatalf("got %d response lines for 8 batches", len(out))
	}
	passes, compactions := 0, 0
	for i, mr := range out {
		if !mr.Applied {
			t.Fatalf("batch %d not applied: %+v", i+1, mr)
		}
		if mr.Valid == nil || !*mr.Valid {
			t.Fatalf("batch %d: coloring invalid: %+v", i+1, mr)
		}
		if mr.EdgeIDBound < mr.M {
			t.Fatalf("batch %d: edgeIDBound %d below live %d", i+1, mr.EdgeIDBound, mr.M)
		}
		if mr.Maintenance != nil {
			passes++
			if mr.Maintenance.Compacted {
				compactions++
				if mr.EdgeIDBound != mr.M {
					t.Fatalf("batch %d: holes survived a compaction: bound %d, live %d",
						i+1, mr.EdgeIDBound, mr.M)
				}
			}
		}
	}
	if compactions == 0 {
		t.Fatalf("80 deletions on a 200-cycle never tripped the 1.2 hole trigger (%d passes)", passes)
	}

	fin := getStatus(t, ts.URL, st.ID)
	ms := fin.Mutations
	if ms == nil {
		t.Fatal("no mutation summary after applied batches")
	}
	if ms.M != 120 || ms.EdgeIDBound < ms.M {
		t.Fatalf("summary M %d (want 120), bound %d", ms.M, ms.EdgeIDBound)
	}
	if ms.MaintainPasses != passes || ms.Compactions != compactions {
		t.Fatalf("summary counts passes=%d compactions=%d, stream saw %d/%d",
			ms.MaintainPasses, ms.Compactions, passes, compactions)
	}
	if want := float64(ms.EdgeIDBound) / float64(ms.M); ms.HoleRatio != want {
		t.Fatalf("hole ratio %v, want %v", ms.HoleRatio, want)
	}
}

// TestMutateMaintainDefaultOff checks that a stream without the
// maintain parameter never runs a pass: holes accumulate and no
// maintenance reports appear, exactly the pre-maintenance behavior.
func TestMutateMaintainDefaultOff(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"cycle","n":100},"seed":3}`)
	waitState(t, ts.URL, st.ID, service.StateDone)

	var sb strings.Builder
	for b := 0; b < 6; b++ {
		fmt.Fprintf(&sb, `{"seq":%d,"muts":[{"op":"-","u":%d,"v":%d}]}`+"\n", b+1, b*10, b*10+1)
	}
	out := mutateNDJSON(t, ts.URL, st.ID, sb.String(), "")
	for i, mr := range out {
		if !mr.Applied {
			t.Fatalf("batch %d not applied: %+v", i+1, mr)
		}
		if mr.Maintenance != nil {
			t.Fatalf("batch %d ran maintenance without opting in: %+v", i+1, mr.Maintenance)
		}
	}
	last := out[len(out)-1]
	if last.M != 94 || last.EdgeIDBound != 100 {
		t.Fatalf("after 6 deletes: M %d bound %d, want 94/100 (holes untouched)", last.M, last.EdgeIDBound)
	}
	if ms := getStatus(t, ts.URL, st.ID).Mutations; ms == nil || ms.MaintainPasses != 0 {
		t.Fatalf("summary %+v: maintenance counted without opting in", ms)
	}
}

func TestMutateConflictsForStrongAndUnfinished(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	svc := service.New(service.Config{
		Workers: 1,
		Runner:  blockingRunner(nil, release),
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Running job: 409.
	st := submit(t, ts.URL, `{"gen":{"family":"cycle","n":8},"seed":1}`)
	waitState(t, ts.URL, st.ID, service.StateRunning)
	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/mutate", "application/x-ndjson",
		strings.NewReader(`{"seq":1,"muts":[{"op":"+","u":0,"v":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mutate running job: status %d, want 409", resp.StatusCode)
	}

	// Unknown job: 404.
	resp, err = http.Post(ts.URL+"/jobs/zzz/mutate", "text/plain", strings.NewReader("+ 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("mutate unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestMutateStrongJob409(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"cycle","n":6},"seed":1,"strong":true}`)
	waitState(t, ts.URL, st.ID, service.StateDone)
	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/mutate", "text/plain",
		strings.NewReader("+ 0 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mutate strong job: status %d (%s), want 409", resp.StatusCode, raw)
	}
}
