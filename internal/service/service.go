// Package service implements dimaserve: an HTTP coloring service over
// the shard engine. Clients submit a graph (an uploaded edge list or a
// generator spec), the job enters a bounded queue drained by a worker
// pool, and the run can be watched, fetched, and canceled over HTTP.
//
// The queue applies backpressure: a submit that finds it full is
// rejected immediately with 429 rather than parked, so a burst degrades
// into explicit retries instead of unbounded memory. Cancellation rides
// the engines' context support (net.Config.Ctx): a canceled job stops
// at its next round barrier and frees its worker; its partial coloring
// remains fetchable. See docs/SERVING.md for the API.
package service

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"dima/internal/automaton"
	"dima/internal/core"
	"dima/internal/dynamic"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
)

// Config configures a Server. The zero value is usable: one worker, a
// 16-deep queue, no per-job deadline, shard workers at GOMAXPROCS.
type Config struct {
	// QueueSize bounds the number of jobs waiting for a worker; a submit
	// beyond it is rejected with 429. 0 means 16.
	QueueSize int
	// Workers is the number of jobs colored concurrently. 0 means 1.
	Workers int
	// ShardWorkers is the shard engine's worker count per job
	// (net.Config.Workers); 0 means GOMAXPROCS.
	ShardWorkers int
	// JobTimeout bounds each run's wall clock; past it the run aborts at
	// its next round barrier and the job finishes canceled. 0 = no bound.
	JobTimeout time.Duration
	// MaxRounds caps a job's computation rounds; a request may ask for
	// fewer but not more. 0 means the core default (100,000).
	MaxRounds int
	// MaxBodyBytes bounds an upload's size. 0 means 32 MiB.
	MaxBodyBytes int64
	// Registry, when non-nil, receives the service counters and gauges
	// and is additionally served at /metrics (with /debug/pprof/) on the
	// service mux. Nil keeps the instruments internal and unexposed.
	Registry *metrics.Registry
	// Runner executes one job; nil means the shard engine via
	// core.ColorEdgesCtx / core.ColorStrongCtx (ShardRunner). Tests
	// inject deterministic runners here; cluster mode injects a
	// dispatching runner (internal/cluster) that ships jobs to remote
	// worker processes.
	Runner Runner
	// Cluster, when non-nil, reports the cluster backend behind Runner:
	// /readyz gates on it having at least one registered worker and
	// /healthz grows per-worker rows and dispatch counters. Nil means
	// local execution (always ready).
	Cluster ClusterStatus
}

// ClusterStatus is what the HTTP plane needs to know about a cluster
// backend. internal/cluster's front end implements it; the indirection
// keeps service free of a dependency on the cluster package.
type ClusterStatus interface {
	// ClusterHealth snapshots the worker registry and dispatch counters.
	ClusterHealth() ClusterHealth
}

// ClusterHealth is the registry snapshot served under /healthz's
// "cluster" key and consulted by /readyz.
type ClusterHealth struct {
	// Ready reports whether the cluster can accept a job right now (at
	// least one registered worker).
	Ready bool `json:"ready"`
	// Workers lists the live registry, in registration order.
	Workers []WorkerInfo `json:"workers"`
	// Dispatched counts job dispatch attempts (retries included),
	// Retries the re-dispatches after a worker failure, and WorkerErrors
	// the worker failures observed (evictions and broken connections
	// with jobs in flight included).
	Dispatched   int64 `json:"dispatched"`
	Retries      int64 `json:"retries"`
	WorkerErrors int64 `json:"workerErrors"`
}

// WorkerInfo is one registry row.
type WorkerInfo struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Addr string `json:"addr"`
	// Running and Queued are the worker's own last heartbeat report;
	// Inflight is the front end's count of jobs dispatched to it and not
	// yet concluded.
	Running  int `json:"running"`
	Queued   int `json:"queued"`
	Inflight int `json:"inflight"`
	// HeartbeatAgeSec is how stale the last heartbeat is; past the
	// registry's deadline the worker is evicted.
	HeartbeatAgeSec float64 `json:"heartbeatAgeSec"`
}

// Runner executes one coloring job. The sink receives the run's
// per-round stats (delivered when the run completes); implementations
// must honor ctx by returning a Result with Aborted set.
type Runner func(ctx context.Context, req JobRequest, sink metrics.Sink) (*core.Result, error)

// JobRequest is a parsed, validated submission.
type JobRequest struct {
	// Graph is the instance to color.
	Graph *graph.Graph
	// Strong selects Algorithm 2 (strong distance-2 coloring of the
	// symmetric digraph) instead of Algorithm 1 (edge coloring).
	Strong bool
	// Seed determines every random choice of the run.
	Seed uint64
	// MaxRounds caps computation rounds (0 = server default).
	MaxRounds int
	// Recovery enables the loss-recovery protocol layer for this run
	// (core.Options.Recovery with defaults). Deterministic like
	// everything else: equal requests yield equal results with it on.
	Recovery bool
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// job is one submission's full record. mu guards every mutable field;
// stats is written only by the job's worker while running and read by
// handlers only in a terminal state, so it needs no lock of its own.
type job struct {
	id  string
	req JobRequest

	mu        sync.Mutex
	state     State
	cancel    context.CancelFunc // set while running
	submitted time.Time
	started   time.Time
	finished  time.Time
	res       *core.Result
	errMsg    string
	stats     *metrics.Memory

	// bcast is the job's live event stream (GET /jobs/{id}/events):
	// status transitions, per-round RoundStats, and mutation-repair
	// reports fan out to SSE subscribers through it. It is created at
	// submit time and never blocks a publisher — slow subscribers drop
	// events with a counted marker (metrics.BroadcastSink).
	bcast *metrics.BroadcastSink

	// Dynamic recoloring state (POST /jobs/{id}/mutate). rec is created
	// lazily on the first mutate call and guarded by recMu, which also
	// serializes concurrent mutation streams; the mut* summary fields are
	// snapshots updated under mu after each batch so status reads never
	// touch the recolorer. Lock order: recMu before mu, never the
	// reverse.
	recMu          sync.Mutex
	rec            *dynamic.Recolorer
	mutBatches     int
	mutM           int
	mutColors      int
	mutMaxColor    int
	mutIDBound     int
	mutMaintain    int // maintenance passes run for this job
	mutCompactions int
	mutRebalances  int
}

// Server is the coloring service. It implements http.Handler; create
// one with New and stop it with Shutdown (drain) or Close (abort).
type Server struct {
	cfg    Config
	runner Runner
	mux    *http.ServeMux

	baseCtx    context.Context // canceled by Close / Shutdown deadline
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for listing
	nextID int
	closed bool

	queue chan *job
	wg    sync.WaitGroup

	// abandoned counts jobs still queued or running when a Shutdown
	// deadline expired; they were canceled rather than drained. Guarded
	// by mu, reported by Abandoned for the shutdown log line.
	abandoned int

	started time.Time // server start, for /healthz uptime

	// Instruments (registered on cfg.Registry when present).
	submitted, rejected, done, failed, canceled *metrics.Counter
	queued, running                             *metrics.Gauge
	mutBatches, mutRejected, mutRepaired        *metrics.Counter
	maintPasses, maintCompact, maintRebalance   *metrics.Counter
	eventsDropped                               *metrics.Counter
	eventSubs                                   *metrics.Gauge
	queueWait, runTime, repairTime, maintTime   *metrics.Histogram
}

// latencyBucketsUsec are the bucket bounds, in microseconds, shared by
// the service latency histograms: 50µs to 10s, roughly logarithmic —
// wide enough for queue waits under backpressure, fine enough to place
// the µs-scale dynamic repairs.
var latencyBucketsUsec = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
	250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		runner:    cfg.Runner,
		jobs:      map[string]*job{},
		queue:     make(chan *job, cfg.QueueSize),
		started:   time.Now(),
		submitted: reg.Counter("serve_jobs_submitted_total"),
		rejected:  reg.Counter("serve_jobs_rejected_total"),
		done:      reg.Counter("serve_jobs_done_total"),
		failed:    reg.Counter("serve_jobs_failed_total"),
		canceled:  reg.Counter("serve_jobs_canceled_total"),
		queued:    reg.Gauge("serve_jobs_queued"),
		running:   reg.Gauge("serve_jobs_running"),

		mutBatches:  reg.Counter("serve_mutate_batches_total"),
		mutRejected: reg.Counter("serve_mutate_batches_rejected_total"),
		mutRepaired: reg.Counter("serve_mutate_edges_repaired_total"),

		maintPasses:    reg.Counter("serve_maintain_passes_total"),
		maintCompact:   reg.Counter("serve_maintain_compactions_total"),
		maintRebalance: reg.Counter("serve_maintain_rebalances_total"),

		eventsDropped: reg.Counter("serve_events_dropped_total"),
		eventSubs:     reg.Gauge("serve_event_subscribers"),
		queueWait:     reg.Histogram("serve_queue_wait_usec", latencyBucketsUsec...),
		runTime:       reg.Histogram("serve_run_usec", latencyBucketsUsec...),
		repairTime:    reg.Histogram("serve_mutate_repair_usec", latencyBucketsUsec...),
		maintTime:     reg.Histogram("serve_maintain_usec", latencyBucketsUsec...),
	}
	describeMetrics(reg)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if s.runner == nil {
		s.runner = ShardRunner(cfg.ShardWorkers)
	}
	s.mux = s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// describeMetrics attaches # HELP text to every service-level
// instrument; docs/OBSERVABILITY.md carries the same inventory.
func describeMetrics(reg *metrics.Registry) {
	for name, help := range map[string]string{
		"serve_jobs_submitted_total":          "Jobs accepted into the queue since start.",
		"serve_jobs_rejected_total":           "Submissions bounced with 429 because the queue was full.",
		"serve_jobs_done_total":               "Jobs finished with a complete coloring.",
		"serve_jobs_failed_total":             "Jobs finished with a runner error.",
		"serve_jobs_canceled_total":           "Jobs canceled while queued or aborted mid-run.",
		"serve_jobs_queued":                   "Jobs currently waiting for a worker.",
		"serve_jobs_running":                  "Jobs currently being colored (busy workers).",
		"serve_mutate_batches_total":          "Mutation batches applied across all jobs.",
		"serve_mutate_batches_rejected_total": "Mutation batches rejected atomically (validation failure).",
		"serve_mutate_edges_repaired_total":   "Frontier edges recolored by incremental repair.",
		"serve_maintain_passes_total":         "Maintenance passes run between mutation batches.",
		"serve_maintain_compactions_total":    "Maintenance passes that compacted the edge-id space.",
		"serve_maintain_rebalances_total":     "Maintenance passes that rebalanced colors off the palette top.",
		"serve_maintain_usec":                 "Microseconds per maintenance pass (compaction + rebalance).",
		"serve_events_dropped_total":          "Job-stream events dropped for slow SSE subscribers.",
		"serve_event_subscribers":             "Live SSE subscriptions across all jobs.",
		"serve_queue_wait_usec":               "Microseconds jobs spent queued before a worker picked them up.",
		"serve_run_usec":                      "Microseconds of wall clock per coloring run.",
		"serve_mutate_repair_usec":            "Microseconds per mutation batch spent in incremental repair.",
	} {
		reg.Help(name, help)
	}
}

// ShardRunner is the production runner: the shard engine under the
// job's context, per docs/PERFORMANCE.md the fastest at every size.
// workers is the shard worker count per job (0 = GOMAXPROCS). Exported
// because cluster workers (internal/cluster) execute dispatched jobs
// through exactly this runner — remote execution differs only in where
// the runner runs.
func ShardRunner(workers int) Runner {
	return func(ctx context.Context, req JobRequest, sink metrics.Sink) (*core.Result, error) {
		opt := core.Options{
			Seed:          req.Seed,
			Engine:        net.RunShard,
			Workers:       workers,
			MaxCompRounds: req.MaxRounds,
			Metrics:       sink,
			Recovery:      automaton.Recovery{Enabled: req.Recovery},
		}
		if req.Strong {
			return core.ColorStrongCtx(ctx, graph.NewSymmetric(req.Graph), opt)
		}
		return core.ColorEdgesCtx(ctx, req.Graph, opt)
	}
}

// ServeHTTP dispatches to the service routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// submit enqueues a validated request, returning the new job or an
// ErrQueueFull / ErrClosed sentinel for the handler to map to a status.
func (s *Server) submit(req JobRequest) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	j := &job{
		id:        fmt.Sprintf("j%06d", s.nextID+1),
		req:       req,
		state:     StateQueued,
		submitted: time.Now(),
		stats:     &metrics.Memory{},
		bcast:     metrics.NewBroadcastSink(eventLogKeep),
	}
	j.bcast.SetDropCounter(s.eventsDropped)
	select {
	case s.queue <- j:
	default:
		s.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.nextID++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.submitted.Inc()
	s.queued.Add(1)
	j.publishStatus()
	return j, nil
}

// eventLogKeep bounds each job's retained event log for SSE replay: a
// run's full RoundStats stream plus a generous tail of mutation
// reports. A long-lived dynamic job can outgrow it; late subscribers
// then see a dropped marker before the retained suffix.
const eventLogKeep = 4096

// publishStatus broadcasts the job's current status snapshot.
func (j *job) publishStatus() { j.bcast.Publish(metrics.EventStatus, j.status()) }

// ErrQueueFull and ErrClosed are submit's rejection reasons.
var (
	ErrQueueFull = fmt.Errorf("service: job queue full")
	ErrClosed    = fmt.Errorf("service: server is shutting down")
)

// get looks a job up by id.
func (s *Server) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker drains the queue until it is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end: claim it (unless canceled while
// queued), run under a cancelable context, record the outcome.
func (s *Server) runJob(j *job) {
	s.queued.Add(-1)
	j.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	j.state = StateRunning
	j.cancel = cancel
	j.started = time.Now()
	// The run's RoundStats go to the job record (for /stats) and to the
	// live event stream; the broadcast never blocks the emitting worker.
	sink := metrics.Multi(j.stats, j.bcast)
	req := j.req
	if s.cfg.MaxRounds > 0 && (req.MaxRounds <= 0 || req.MaxRounds > s.cfg.MaxRounds) {
		req.MaxRounds = s.cfg.MaxRounds
	}
	wait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	s.queueWait.Observe(wait.Microseconds())
	s.running.Add(1)
	j.publishStatus()

	res, err := s.runner(ctx, req, sink)
	cancel()

	s.running.Add(-1)
	j.mu.Lock()
	j.cancel = nil
	j.finished = time.Now()
	s.runTime.Observe(j.finished.Sub(j.started).Microseconds())
	switch {
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.failed.Inc()
	case res.Aborted:
		// The engine stopped at a round barrier; the partial coloring
		// stays fetchable from the result endpoint.
		j.state = StateCanceled
		j.res = res
		s.canceled.Inc()
	default:
		j.state = StateDone
		j.res = res
		s.done.Inc()
	}
	j.mu.Unlock()
	// Terminal status is published after the round stream, so an SSE
	// subscriber that sees it knows the per-round records precede it.
	j.publishStatus()
}

// cancelJob requests cancellation: a queued job finishes immediately, a
// running one aborts at its next round barrier (best effort — a run
// that completes in the same round finishes done). It reports the
// state observed after the request.
func (s *Server) cancelJob(j *job) State {
	j.mu.Lock()
	state := j.state
	canceledQueued := false
	switch state {
	case StateQueued:
		// The worker that eventually pops it sees the state and skips.
		j.state = StateCanceled
		j.finished = time.Now()
		s.canceled.Inc()
		state = j.state
		canceledQueued = true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	if canceledQueued {
		j.publishStatus()
	}
	return state
}

// Shutdown stops accepting submissions and waits for the queue and all
// running jobs to drain. If ctx expires first, every remaining run is
// canceled (aborting at its round barrier) and Shutdown returns ctx's
// error once the workers exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Count what the deadline is about to cut off before canceling,
		// so the operator's shutdown log can say how many jobs were
		// abandoned rather than drained. Lock order s.mu then j.mu
		// matches the handlers; nothing takes them in reverse.
		s.mu.Lock()
		for _, id := range s.order {
			j := s.jobs[id]
			j.mu.Lock()
			if !j.state.terminal() {
				s.abandoned++
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// Abandoned reports how many jobs were still queued or running when a
// Shutdown deadline expired and were canceled instead of drained. Zero
// after a clean drain.
func (s *Server) Abandoned() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abandoned
}

// Close aborts every queued and running job and waits for the workers
// to exit. Equivalent to Shutdown with an already-expired context.
func (s *Server) Close() {
	s.baseCancel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)
}

// defaultShardWorkers resolves the effective shard worker count, for
// reporting in /healthz.
func (s *Server) defaultShardWorkers() int {
	if s.cfg.ShardWorkers > 0 {
		return s.cfg.ShardWorkers
	}
	return runtime.GOMAXPROCS(0)
}
