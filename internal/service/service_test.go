package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dima/internal/core"
	"dima/internal/metrics"
	"dima/internal/service"
)

// blockingRunner returns a runner that parks every job until release is
// closed (or its context is canceled, which yields an aborted partial
// result) — the deterministic stand-in for a long run, so backpressure
// and cancellation tests never race the real engine.
func blockingRunner(started chan<- string, release <-chan struct{}) service.Runner {
	return func(ctx context.Context, req service.JobRequest, sink metrics.Sink) (*core.Result, error) {
		if started != nil {
			started <- fmt.Sprint(req.Seed)
		}
		colors := make([]int, req.Graph.M())
		select {
		case <-release:
			return &core.Result{Colors: colors, Terminated: true}, nil
		case <-ctx.Done():
			for i := range colors {
				colors[i] = -1
			}
			res := &core.Result{Colors: colors, Aborted: true}
			res.MaxColor = -1
			return res, nil
		}
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func submit(t *testing.T, base, body string) service.JobStatus {
	t.Helper()
	resp, raw := postJSON(t, base+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("submit response: %v: %s", err, raw)
	}
	return st
}

func getStatus(t *testing.T, base, id string) service.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d: %s", id, resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, base, id string, want ...service.State) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, base, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %v", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitGenSpecRunsToDone(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"er","n":40,"deg":4,"seed":3},"seed":7}`)
	if st.State != service.StateQueued && st.State != service.StateRunning {
		t.Fatalf("fresh job state %s", st.State)
	}
	if st.N != 40 || st.M <= 0 {
		t.Fatalf("generated instance n=%d m=%d", st.N, st.M)
	}
	fin := waitState(t, ts.URL, st.ID, service.StateDone)
	if fin.Result == nil || !fin.Result.Terminated || fin.Result.Colors <= 0 {
		t.Fatalf("done result %+v", fin.Result)
	}
	if fin.Result.Colored != fin.Result.Items {
		t.Fatalf("done job left %d/%d uncolored", fin.Result.Items-fin.Result.Colored, fin.Result.Items)
	}

	// The full coloring is fetchable and complete.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d: %s", resp.StatusCode, raw)
	}
	var res service.JobResult
	if err := json.Unmarshal([]byte(raw), &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "edge" || len(res.Colors) != res.M {
		t.Fatalf("result kind=%s colors=%d m=%d", res.Kind, len(res.Colors), res.M)
	}
	for i, c := range res.Colors {
		if c < 0 {
			t.Fatalf("edge %d uncolored in a done job", i)
		}
	}

	// Per-round stats stream as JSON Lines, one line per round.
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d: %s", resp.StatusCode, stats)
	}
	lines := strings.Split(strings.TrimSpace(stats), "\n")
	if len(lines) != fin.Result.Rounds {
		t.Fatalf("stats has %d lines, run took %d rounds", len(lines), fin.Result.Rounds)
	}
	var rs metrics.RoundStats
	if err := json.Unmarshal([]byte(lines[0]), &rs); err != nil {
		t.Fatalf("stats line 0: %v", err)
	}
}

func TestSubmitUploadAndStrong(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Raw upload: the body is the edge list, parameters ride the query.
	body := "n 4\ne 0 1\ne 1 2\ne 2 3\ne 3 0\n"
	resp, err := http.Post(ts.URL+"/jobs?seed=5&strong=true", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload: %d: %s", resp.StatusCode, raw)
	}
	var st service.JobStatus
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Strong || st.Seed != 5 || st.N != 4 || st.M != 4 {
		t.Fatalf("upload parsed to %+v", st)
	}
	fin := waitState(t, ts.URL, st.ID, service.StateDone)
	if fin.Result.Items != 8 { // arcs of the symmetric digraph
		t.Fatalf("strong run colored %d items, want 8 arcs", fin.Result.Items)
	}
}

func TestBadSubmissionsGet400(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	for name, body := range map[string]string{
		"neither graph nor gen": `{"seed":1}`,
		"both graph and gen":    `{"graph":"n 1\n","gen":{"family":"er","n":10,"deg":2}}`,
		"unknown family":        `{"gen":{"family":"banana","n":10}}`,
		"negative n":            `{"gen":{"family":"complete","n":-5}}`,
		"huge hypercube":        `{"gen":{"family":"hypercube","dim":40}}`,
		"negative grid":         `{"gen":{"family":"grid","rows":-3,"cols":4}}`,
		"negative maxRounds":    `{"gen":{"family":"er","n":10,"deg":2},"maxRounds":-1}`,
		"malformed graph":       `{"graph":"n -4\ne 0 1\n"}`,
		"unknown field":         `{"gen":{"family":"er","n":10,"deg":2},"bogus":true}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, raw)
		}
	}
}

func TestQueueBackpressure429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	svc := service.New(service.Config{
		Workers:   1,
		QueueSize: 1,
		Runner:    blockingRunner(started, release),
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	spec := `{"gen":{"family":"path","n":4},"seed":%d}`
	first := submit(t, ts.URL, fmt.Sprintf(spec, 1))
	<-started // the worker holds job 1, leaving the queue empty
	second := submit(t, ts.URL, fmt.Sprintf(spec, 2))

	// Queue full (job 2 waiting): the third submission must bounce.
	resp, raw := postJSON(t, ts.URL+"/jobs", fmt.Sprintf(spec, 3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	waitState(t, ts.URL, first.ID, service.StateDone)
	waitState(t, ts.URL, second.ID, service.StateDone)
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	svc := service.New(service.Config{
		Workers: 1,
		Runner:  blockingRunner(started, release),
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"cycle","n":6},"seed":1}`)
	<-started

	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitState(t, ts.URL, st.ID, service.StateCanceled)
	if fin.Result == nil || !fin.Result.Aborted {
		t.Fatalf("canceled job result %+v", fin.Result)
	}
	if fin.Result.Colored != 0 || fin.Result.Items != 6 {
		t.Fatalf("aborted partial result %+v", fin.Result)
	}

	// The partial coloring stays fetchable.
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("canceled result: %d: %s", resp.StatusCode, raw)
	}
	var res service.JobResult
	if err := json.Unmarshal([]byte(raw), &res); err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Colors {
		if c != -1 {
			t.Fatalf("aborted-at-entry run colored edge %d", i)
		}
	}
}

func TestCancelQueuedJobSkipsWorker(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	svc := service.New(service.Config{
		Workers:   1,
		QueueSize: 2,
		Runner:    blockingRunner(started, release),
	})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	spec := `{"gen":{"family":"path","n":4},"seed":%d}`
	first := submit(t, ts.URL, fmt.Sprintf(spec, 1))
	<-started
	queued := submit(t, ts.URL, fmt.Sprintf(spec, 2))

	resp, err := http.Post(ts.URL+"/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := getStatus(t, ts.URL, queued.ID); st.State != service.StateCanceled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}

	close(release)
	waitState(t, ts.URL, first.ID, service.StateDone)
	// The canceled job must never start: give the worker a beat to pop
	// it, then check nothing ran it.
	time.Sleep(20 * time.Millisecond)
	select {
	case seed := <-started:
		t.Fatalf("worker started canceled job (seed %s)", seed)
	default:
	}
	if st := getStatus(t, ts.URL, queued.ID); st.State != service.StateCanceled {
		t.Fatalf("canceled job resurrected to %s", st.State)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		st := submit(t, ts.URL, fmt.Sprintf(`{"gen":{"family":"er","n":30,"deg":4,"seed":%d},"seed":%d}`, i, i))
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		if st := getStatus(t, ts.URL, id); st.State != service.StateDone {
			t.Fatalf("job %s after drain: %s", id, st.State)
		}
	}
	resp, raw := postJSON(t, ts.URL+"/jobs", `{"gen":{"family":"path","n":4}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: %d, want 503: %s", resp.StatusCode, raw)
	}
}

func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	svc := service.New(service.Config{
		Workers: 1,
		Runner:  blockingRunner(started, release),
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"path","n":4},"seed":1}`)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); err == nil {
		t.Fatal("shutdown returned nil despite a parked job")
	}
	if fin := getStatus(t, ts.URL, st.ID); fin.State != service.StateCanceled {
		t.Fatalf("job after deadline shutdown: %s", fin.State)
	}
}

func TestShutdownDeadlineCountsAbandoned(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	svc := service.New(service.Config{
		Workers: 1,
		Runner:  blockingRunner(started, release),
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// One job parked mid-run, one stuck behind it in the queue: both are
	// abandoned when the deadline cuts the drain off.
	submit(t, ts.URL, `{"gen":{"family":"path","n":4},"seed":1}`)
	<-started
	submit(t, ts.URL, `{"gen":{"family":"path","n":4},"seed":2}`)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); err == nil {
		t.Fatal("shutdown returned nil despite parked jobs")
	}
	if got := svc.Abandoned(); got != 2 {
		t.Fatalf("Abandoned() = %d, want 2", got)
	}
}

func TestShutdownCleanDrainAbandonsNothing(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	st := submit(t, ts.URL, `{"gen":{"family":"path","n":8},"seed":1}`)
	waitState(t, ts.URL, st.ID, service.StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := svc.Abandoned(); got != 0 {
		t.Fatalf("Abandoned() after clean drain = %d, want 0", got)
	}
}

// fakeCluster is a canned ClusterStatus for readiness tests.
type fakeCluster struct{ health service.ClusterHealth }

func (f fakeCluster) ClusterHealth() service.ClusterHealth { return f.health }

func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestReadyzLocalAndCluster(t *testing.T) {
	local := service.New(service.Config{Workers: 1})
	lts := httptest.NewServer(local)
	defer lts.Close()
	if code := getCode(t, lts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("local /readyz: %d, want 200", code)
	}

	empty := service.New(service.Config{Workers: 1, Cluster: fakeCluster{}})
	ets := httptest.NewServer(empty)
	defer ets.Close()
	if code := getCode(t, ets.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("empty-cluster /readyz: %d, want 503", code)
	}

	full := service.New(service.Config{Workers: 1, Cluster: fakeCluster{
		health: service.ClusterHealth{
			Ready:   true,
			Workers: []service.WorkerInfo{{ID: "w001", Addr: "127.0.0.1:9"}},
		},
	}})
	fts := httptest.NewServer(full)
	defer fts.Close()
	if code := getCode(t, fts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("ready-cluster /readyz: %d, want 200", code)
	}
	resp, err := http.Get(fts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(raw, `"w001"`) {
		t.Fatalf("healthz misses cluster worker row: %s", raw)
	}

	// Draining flips readiness regardless of backend.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := local.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := getCode(t, lts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: %d, want 503", code)
	}
	full.Close()
	empty.Close()
}

func TestHealthzAndMetricsMount(t *testing.T) {
	reg := metrics.NewRegistry()
	svc := service.New(service.Config{Workers: 1, Registry: reg})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(raw, `"ok"`) {
		t.Fatalf("healthz: %d: %s", resp.StatusCode, raw)
	}

	st := submit(t, ts.URL, `{"gen":{"family":"er","n":30,"deg":4,"seed":1},"seed":1}`)
	waitState(t, ts.URL, st.ID, service.StateDone)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{"serve_jobs_submitted_total 1", "serve_jobs_done_total 1", "go_goroutines"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestUnknownJob404(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	for _, path := range []string{"/jobs/nope", "/jobs/nope/result", "/jobs/nope/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
}
