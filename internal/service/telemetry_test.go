package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dima/internal/metrics"
	"dima/internal/service"
)

// TestStatsOrderingUnderConcurrentJobs: with several jobs running
// concurrently on a multi-worker pool, each job's JSONL stats stream
// must still be its own run's rounds, strictly ordered 0..k-1 — no
// interleaving across jobs, no reordering within one.
func TestStatsOrderingUnderConcurrentJobs(t *testing.T) {
	svc := service.New(service.Config{Workers: 4, QueueSize: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	const jobs = 8
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := submit(t, ts.URL, fmt.Sprintf(
				`{"gen":{"family":"er","n":50,"deg":5,"seed":%d},"seed":%d}`, i+1, i+100))
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	for i, id := range ids {
		fin := waitState(t, ts.URL, id, service.StateDone)
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		raw := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d stats: %d", i, resp.StatusCode)
		}
		lines := strings.Split(strings.TrimSpace(raw), "\n")
		if len(lines) != fin.Result.Rounds {
			t.Fatalf("job %d: %d stats lines for %d rounds", i, len(lines), fin.Result.Rounds)
		}
		total := 0
		for k, line := range lines {
			var rs metrics.RoundStats
			if err := json.Unmarshal([]byte(line), &rs); err != nil {
				t.Fatalf("job %d line %d: %v", i, k, err)
			}
			if rs.Round != k {
				t.Fatalf("job %d: line %d carries round %d (stream out of order)", i, k, rs.Round)
			}
			total = rs.ColoredTotal
		}
		if total != fin.Result.Items {
			t.Fatalf("job %d: final ColoredTotal %d != %d items", i, total, fin.Result.Items)
		}
	}
}

// TestHealthzReportsLoadAndUptime: /healthz must expose queue depth,
// busy workers, and uptime — the bare-200 liveness of earlier PRs is
// not enough to steer a load balancer.
func TestHealthzReportsLoadAndUptime(t *testing.T) {
	started := make(chan string, 2)
	release := make(chan struct{})
	svc := service.New(service.Config{Workers: 1, QueueSize: 4, Runner: blockingRunner(started, release)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	submit(t, ts.URL, `{"gen":{"family":"path","n":4},"seed":1}`)
	<-started // one running
	submit(t, ts.URL, `{"gen":{"family":"path","n":4},"seed":2}`)

	h := healthz(t, ts.URL)
	if h["status"] != "ok" {
		t.Fatalf("status %v", h["status"])
	}
	if q, _ := h["queued"].(float64); q != 1 {
		t.Fatalf("queued %v, want 1", h["queued"])
	}
	if r, _ := h["running"].(float64); r != 1 {
		t.Fatalf("running %v, want 1", h["running"])
	}
	if w, _ := h["workers"].(float64); w != 1 {
		t.Fatalf("workers %v, want 1", h["workers"])
	}
	if up, ok := h["uptimeSeconds"].(float64); !ok || up < 0 {
		t.Fatalf("uptimeSeconds %v", h["uptimeSeconds"])
	}
	if j, _ := h["jobs"].(float64); j != 2 {
		t.Fatalf("jobs %v, want 2", h["jobs"])
	}
	close(release)
}

// TestRetryAfterJitter: the 429 Retry-After must be a small positive
// integer and must vary across rejections, so a synchronized burst of
// clients does not come back in one stampede.
func TestRetryAfterJitter(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	svc := service.New(service.Config{Workers: 1, QueueSize: 1, Runner: blockingRunner(started, release)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	spec := `{"gen":{"family":"path","n":4},"seed":%d}`
	submit(t, ts.URL, fmt.Sprintf(spec, 1))
	<-started
	submit(t, ts.URL, fmt.Sprintf(spec, 2)) // fills the queue

	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		resp, raw := postJSON(t, ts.URL+"/jobs", fmt.Sprintf(spec, 100+i))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("want 429, got %d: %s", resp.StatusCode, raw)
		}
		ra := resp.Header.Get("Retry-After")
		sec, err := strconv.Atoi(ra)
		if err != nil || sec < 1 || sec > 10 {
			t.Fatalf("Retry-After %q, want a small positive integer", ra)
		}
		seen[sec] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Retry-After never varied across 64 rejections: %v", seen)
	}
}

// TestMetricsExposesLatencyHistograms: after a job completes, the
// Prometheus exposition carries the service latency histograms with
// observations, in the proper histogram shape.
func TestMetricsExposesLatencyHistograms(t *testing.T) {
	reg := metrics.NewRegistry()
	svc := service.New(service.Config{Workers: 1, Registry: reg})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"er","n":40,"deg":4,"seed":1},"seed":1}`)
	waitState(t, ts.URL, st.ID, service.StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q, want the exposition format", ct)
	}
	for _, want := range []string{
		"# TYPE serve_queue_wait_usec histogram",
		"serve_queue_wait_usec_count 1",
		"# TYPE serve_run_usec histogram",
		"serve_run_usec_count 1",
		"# TYPE serve_jobs_submitted_total counter",
		"serve_jobs_submitted_total 1",
		`serve_run_usec_bucket{le="+Inf"} 1`,
		"# HELP serve_queue_wait_usec",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
