package service

import (
	"encoding/json"
	"fmt"
	"mime"
	"net/http"
	"strings"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/graphio"
	"dima/internal/rng"
)

// Submissions come in two shapes, distinguished by Content-Type:
//
//   - application/json: a SubmitRequest document carrying either an
//     inline "graph" edge list or a "gen" generator spec.
//   - anything else (text/plain, application/octet-stream, a raw curl
//     upload): the body IS the graph in the edge-list format (native or
//     DIMACS), with seed / strong / maxRounds as query parameters.
//
// Every size and range is validated here so a hostile submission gets a
// 400, mirroring the CLI boundary's exit-2 discipline: nothing a client
// sends may reach a library panic.

// SubmitRequest is the JSON submission document.
type SubmitRequest struct {
	// Graph is an inline edge list (native "n/e" or DIMACS "p edge"
	// format). Exactly one of Graph and Gen must be set.
	Graph string `json:"graph,omitempty"`
	// Gen generates the instance server-side instead of uploading it.
	Gen *GenSpec `json:"gen,omitempty"`
	// Seed determines every random choice of the run.
	Seed uint64 `json:"seed"`
	// Strong selects Algorithm 2 (strong distance-2 coloring).
	Strong bool `json:"strong"`
	// MaxRounds caps computation rounds (0 = server default); the
	// server's own MaxRounds cap still applies.
	MaxRounds int `json:"maxRounds"`
	// Recovery enables the loss-recovery protocol layer for the run.
	Recovery bool `json:"recovery,omitempty"`
}

// GenSpec names a graph family and its parameters, mirroring the
// graphgen CLI. Unused parameters are ignored.
type GenSpec struct {
	Family string  `json:"family"`
	N      int     `json:"n"`
	Deg    float64 `json:"deg"`    // er: average degree
	P      float64 `json:"p"`      // gnp, bipartite: edge probability
	M      int     `json:"m"`      // gnm: edge count
	K      int     `json:"k"`      // ba, ws, regular: degree parameter
	Power  float64 `json:"power"`  // ba: attachment exponent
	Beta   float64 `json:"beta"`   // ws: rewire probability
	Rows   int     `json:"rows"`   // grid
	Cols   int     `json:"cols"`   // grid
	Dim    int     `json:"dim"`    // hypercube
	Left   int     `json:"left"`   // bipartite
	Right  int     `json:"right"`  // bipartite
	Seed   uint64  `json:"seed"`   // generator seed (independent of the run seed)
	Radius float64 `json:"radius"` // geometric
}

// parseSubmit turns an HTTP submission into a validated JobRequest.
func (s *Server) parseSubmit(r *http.Request) (JobRequest, error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	if ct == "application/json" {
		var sub SubmitRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sub); err != nil {
			return JobRequest{}, fmt.Errorf("parse submission: %v", err)
		}
		return buildRequest(sub)
	}
	// Raw upload: the body is the graph, parameters ride the query.
	g, err := graphio.ReadGraph(body)
	if err != nil {
		return JobRequest{}, err
	}
	seed, err := queryUint(r, "seed", 1)
	if err != nil {
		return JobRequest{}, err
	}
	maxRounds, err := queryInt(r, "maxRounds", 0)
	if err != nil {
		return JobRequest{}, err
	}
	return JobRequest{
		Graph:     g,
		Strong:    r.URL.Query().Get("strong") == "true",
		Recovery:  r.URL.Query().Get("recovery") == "true",
		Seed:      seed,
		MaxRounds: maxRounds,
	}, nil
}

// buildRequest validates a SubmitRequest and materializes its graph.
func buildRequest(sub SubmitRequest) (JobRequest, error) {
	if (sub.Graph == "") == (sub.Gen == nil) {
		return JobRequest{}, fmt.Errorf("submission wants exactly one of \"graph\" and \"gen\"")
	}
	if sub.MaxRounds < 0 {
		return JobRequest{}, fmt.Errorf("maxRounds wants a non-negative cap, got %d", sub.MaxRounds)
	}
	var g *graph.Graph
	var err error
	if sub.Graph != "" {
		g, err = graphio.ReadGraph(strings.NewReader(sub.Graph))
	} else {
		g, err = buildGraph(*sub.Gen)
	}
	if err != nil {
		return JobRequest{}, err
	}
	return JobRequest{
		Graph: g, Strong: sub.Strong, Recovery: sub.Recovery,
		Seed: sub.Seed, MaxRounds: sub.MaxRounds,
	}, nil
}

// maxGenVertices bounds server-side generation: a spec is a few bytes,
// so unlike an upload its cost is not limited by MaxBodyBytes.
const maxGenVertices = 2_000_000

// buildGraph mirrors graphgen's family switch with the same boundary
// validation, returning errors instead of exiting.
func buildGraph(spec GenSpec) (*graph.Graph, error) {
	if spec.N < 0 || spec.N > maxGenVertices {
		return nil, fmt.Errorf("gen: n wants [0, %d], got %d", maxGenVertices, spec.N)
	}
	if spec.M < 0 {
		return nil, fmt.Errorf("gen: m wants a non-negative edge count, got %d", spec.M)
	}
	if spec.K < 0 {
		return nil, fmt.Errorf("gen: k wants a non-negative degree, got %d", spec.K)
	}
	if spec.Rows < 0 || spec.Cols < 0 || spec.Rows*spec.Cols > maxGenVertices {
		return nil, fmt.Errorf("gen: grid wants non-negative dims up to %d vertices, got %d x %d",
			maxGenVertices, spec.Rows, spec.Cols)
	}
	if spec.Dim < 0 || spec.Dim > 20 {
		return nil, fmt.Errorf("gen: hypercube dimension wants [0, 20], got %d", spec.Dim)
	}
	if spec.Left < 0 || spec.Right < 0 || spec.Left+spec.Right > maxGenVertices {
		return nil, fmt.Errorf("gen: bipartite wants non-negative parts up to %d vertices, got %d and %d",
			maxGenVertices, spec.Left, spec.Right)
	}
	r := rng.New(spec.Seed)
	switch spec.Family {
	case "er":
		return gen.ErdosRenyiAvgDegree(r, spec.N, spec.Deg)
	case "gnp":
		return gen.ErdosRenyiGNP(r, spec.N, spec.P)
	case "gnm":
		return gen.ErdosRenyiGNM(r, spec.N, spec.M)
	case "ba":
		return gen.BarabasiAlbert(r, spec.N, spec.K, spec.Power)
	case "ws":
		return gen.WattsStrogatz(r, spec.N, spec.K, spec.Beta)
	case "regular":
		return gen.RandomRegular(r, spec.N, spec.K)
	case "geometric":
		return gen.RandomGeometric(r, spec.N, spec.Radius)
	case "tree":
		return gen.RandomTree(r, spec.N), nil
	case "bipartite":
		return gen.RandomBipartite(r, spec.Left, spec.Right, spec.P)
	case "complete":
		if spec.N > 3000 { // ~4.5M edges; keep the quadratic family sane
			return nil, fmt.Errorf("gen: complete wants n <= 3000, got %d", spec.N)
		}
		return gen.Complete(spec.N), nil
	case "cycle":
		return gen.Cycle(spec.N), nil
	case "path":
		return gen.Path(spec.N), nil
	case "star":
		return gen.Star(spec.N), nil
	case "grid":
		return gen.Grid(spec.Rows, spec.Cols), nil
	case "hypercube":
		return gen.Hypercube(spec.Dim), nil
	default:
		return nil, fmt.Errorf("gen: unknown family %q", spec.Family)
	}
}
