package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"dima/internal/metrics"
)

// The HTTP API (docs/SERVING.md has the full contract):
//
//	POST   /jobs              submit a job; 202 with its status,
//	                          400 bad request, 429 queue full,
//	                          503 shutting down
//	GET    /jobs              list every job's status
//	GET    /jobs/{id}         one job's status
//	GET    /jobs/{id}/result  the coloring (done or canceled jobs)
//	GET    /jobs/{id}/stats   per-round telemetry as JSON Lines
//	GET    /jobs/{id}/events  live Server-Sent-Events stream: status
//	                          transitions, per-round stats, mutation
//	                          reports (events.go)
//	POST   /jobs/{id}/mutate  stream mutation batches into a finished
//	                          edge-coloring job (incremental repair)
//	POST   /jobs/{id}/cancel  request cancellation (also DELETE /jobs/{id})
//	GET    /healthz           liveness, queue depth, workers, uptime;
//	                          in cluster mode also per-worker registry
//	                          rows and dispatch counters
//	GET    /readyz            readiness: 200 when the service can accept
//	                          and execute a job right now, 503 while
//	                          draining or when cluster mode has no
//	                          registered workers
//
// With Config.Registry set, /metrics (Prometheus text exposition) and
// /debug/pprof/ are mounted too.

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /jobs/{id}/mutate", s.handleMutate)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.Registry != nil {
		mux.Handle("GET /metrics", metrics.PromHandler(s.cfg.Registry))
		mux.Handle("GET /debug/pprof/", metrics.DebugHandler(s.cfg.Registry))
	}
	return mux
}

// JobStatus is the wire form of one job.
type JobStatus struct {
	ID          string         `json:"id"`
	State       State          `json:"state"`
	Strong      bool           `json:"strong"`
	Recovery    bool           `json:"recovery,omitempty"`
	N           int            `json:"n"`
	M           int            `json:"m"`
	Seed        uint64         `json:"seed"`
	SubmittedAt time.Time      `json:"submittedAt"`
	StartedAt   *time.Time     `json:"startedAt,omitempty"`
	FinishedAt  *time.Time     `json:"finishedAt,omitempty"`
	Error       string         `json:"error,omitempty"`
	Result      *ResultSummary `json:"result,omitempty"`
	// Mutations summarizes the dynamic recoloring state when the job has
	// had mutation batches applied (POST /jobs/{id}/mutate).
	Mutations *MutationSummary `json:"mutations,omitempty"`
}

// MutationSummary reports the maintained coloring after mutations.
// EdgeIDBound vs M exposes id-space fragmentation: their ratio
// (HoleRatio) is what the maintenance hole trigger watches, and the
// maintain* fields count the passes that have reclaimed it.
type MutationSummary struct {
	Batches     int     `json:"batches"`
	M           int     `json:"m"`
	Colors      int     `json:"colors"`
	MaxColor    int     `json:"maxColor"`
	EdgeIDBound int     `json:"edgeIDBound"`
	HoleRatio   float64 `json:"holeRatio"`
	// Maintenance pass counts (0 unless the stream opted in with
	// maintain=true).
	MaintainPasses int `json:"maintainPasses"`
	Compactions    int `json:"compactions"`
	Rebalances     int `json:"rebalances"`
}

// ResultSummary is the scalar outcome; the full coloring lives at the
// result endpoint.
type ResultSummary struct {
	Colors     int   `json:"colors"`
	MaxColor   int   `json:"maxColor"`
	Rounds     int   `json:"rounds"`
	CommRounds int   `json:"commRounds"`
	Messages   int64 `json:"messages"`
	Items      int   `json:"items"`
	Colored    int   `json:"colored"`
	Terminated bool  `json:"terminated"`
	Aborted    bool  `json:"aborted"`
}

// status snapshots a job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Strong:      j.req.Strong,
		Recovery:    j.req.Recovery,
		N:           j.req.Graph.N(),
		M:           j.req.Graph.M(),
		Seed:        j.req.Seed,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.mutBatches > 0 {
		ms := &MutationSummary{
			Batches: j.mutBatches, M: j.mutM,
			Colors: j.mutColors, MaxColor: j.mutMaxColor,
			EdgeIDBound:    j.mutIDBound,
			MaintainPasses: j.mutMaintain,
			Compactions:    j.mutCompactions,
			Rebalances:     j.mutRebalances,
		}
		if j.mutM > 0 {
			ms.HoleRatio = float64(j.mutIDBound) / float64(j.mutM)
		}
		st.Mutations = ms
	}
	if j.res != nil {
		colored := 0
		for _, c := range j.res.Colors {
			if c >= 0 {
				colored++
			}
		}
		st.Result = &ResultSummary{
			Colors:     j.res.NumColors,
			MaxColor:   j.res.MaxColor,
			Rounds:     j.res.CompRounds,
			CommRounds: j.res.CommRounds,
			Messages:   j.res.Messages,
			Items:      len(j.res.Colors),
			Colored:    colored,
			Terminated: j.res.Terminated,
			Aborted:    j.res.Aborted,
		}
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseSubmit(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Jittered Retry-After so a synchronized client burst spreads
		// its retries instead of stampeding the queue again in unison.
		w.Header().Set("Retry-After", strconv.Itoa(1+rand.IntN(3)))
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// JobResult is the full coloring payload. For a job that has had
// mutation batches applied, M counts live edges and Colors is indexed
// by edge id with -1 at ids freed by deletions.
type JobResult struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"` // "edge" or "arc"
	N      int    `json:"n"`
	M      int    `json:"m"`
	Colors []int  `json:"colors"` // by graph.EdgeID / graph.ArcID; -1 = uncolored
	JobStatus
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	// A mutated job serves its maintained (possibly holey) state; the
	// snapshot is taken under recMu so a concurrent mutation stream
	// cannot tear it.
	j.recMu.Lock()
	if j.rec != nil {
		m := j.rec.Graph().M()
		colors := append([]int(nil), j.rec.Colors()...)
		j.recMu.Unlock()
		st := j.status()
		writeJSON(w, http.StatusOK, JobResult{
			ID: st.ID, Kind: "edge", N: st.N, M: m,
			Colors: colors, JobStatus: st,
		})
		return
	}
	j.recMu.Unlock()
	st := j.status()
	if st.Result == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s: no result yet", st.ID, st.State))
		return
	}
	kind := "edge"
	if st.Strong {
		kind = "arc"
	}
	// res.Colors is immutable once the job reaches a terminal state, so
	// reading it outside the lock is safe.
	writeJSON(w, http.StatusOK, JobResult{
		ID: st.ID, Kind: kind, N: st.N, M: st.M,
		Colors: j.res.Colors, JobStatus: st,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	// The engines deliver RoundStats when the run completes, so the
	// stream exists only for terminal jobs; a running job has nothing
	// to serve yet (docs/SERVING.md).
	if !state.terminal() {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s: stats arrive when it finishes", j.id, state))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	jw := metrics.NewJSONLWriter(w)
	for _, rs := range j.stats.Rounds {
		jw.EmitRound(rs)
	}
	if err := jw.Flush(); err != nil {
		return // client went away mid-stream; nothing to repair
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.closed {
		status = "draining"
	}
	depth := len(s.queue)
	jobs := len(s.jobs)
	s.mu.Unlock()
	body := map[string]any{
		"status":    status,
		"queued":    depth,
		"queueSize": s.cfg.QueueSize,
		// running is the number of busy workers right now; workers is
		// the pool size, so running == workers means saturation.
		"running":          s.running.Value(),
		"workers":          s.cfg.Workers,
		"shardWorkers":     s.defaultShardWorkers(),
		"jobs":             jobs,
		"eventSubscribers": s.eventSubs.Value(),
		"uptimeSeconds":    time.Since(s.started).Seconds(),
		"startedAt":        s.started,
	}
	if s.cfg.Cluster != nil {
		body["cluster"] = s.cfg.Cluster.ClusterHealth()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz distinguishes "alive" from "able to take work": a
// draining server or a cluster front end with an empty worker registry
// answers 503 so load balancers route around it, while /healthz keeps
// answering 200 for liveness probes. Local mode is ready whenever it is
// not draining.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
	case s.cfg.Cluster != nil && !s.cfg.Cluster.ClusterHealth().Ready:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "no workers registered"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error(), "status": code})
}

// queryUint parses an optional unsigned query parameter.
func queryUint(r *http.Request, name string, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	u, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query %s: want an unsigned integer, got %q", name, v)
	}
	return u, nil
}

// queryFloat parses an optional non-negative float query parameter.
func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("query %s: want a non-negative number, got %q", name, v)
	}
	return f, nil
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("query %s: want a non-negative integer, got %q", name, v)
	}
	return n, nil
}
