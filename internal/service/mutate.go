package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"mime"
	"net/http"
	"time"

	"dima/internal/core"
	"dima/internal/dynamic"
	"dima/internal/graphio"
	"dima/internal/metrics"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/verify"
)

// POST /jobs/{id}/mutate applies streaming edge mutations to a finished
// edge-coloring job, repairing the coloring incrementally
// (internal/dynamic) instead of recoloring from scratch. Two request
// shapes, distinguished by Content-Type:
//
//   - application/x-ndjson (or application/json): one MutateBatch JSON
//     document per line; the response streams one MutateResponse line
//     per batch as it is applied, so a long-lived connection can watch
//     each batch repair and re-validate.
//   - anything else: the body is a single batch in the text mutation
//     list format ("+ u v" / "- u v", graphio.ReadMutations).
//
// Query parameters, read on the job's first mutate call only (they
// configure the recolorer, which then lives for the job's lifetime):
// palette caps the greedy palette (0 = 2Δ−1 under the current Δ), seed
// seeds the repair runs. maintain=true turns on automatic maintenance
// between batches (edge-id compaction and palette rebalancing,
// dynamic.MaintainOptions); holeRatio and paletteSlack tune its
// triggers. verify=false skips the per-batch O(m) re-validation (the
// "valid" field is then omitted).
//
// A batch that fails validation (malformed ops, out-of-range or
// duplicate endpoints, insert-of-existing, delete-of-missing) is
// rejected atomically — the graph and coloring are untouched — and
// reported on its response line; the stream continues with the next
// batch. The endpoint answers 409 for jobs that are not finished edge
// colorings (strong jobs have no incremental repair path).

// MutateMutation is one mutation in the JSON stream. Op is "+" or
// "insert" for insertion, "-" or "delete" for deletion.
type MutateMutation struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// MutateBatch is one JSON line of the request stream.
type MutateBatch struct {
	Seq  uint64           `json:"seq"`
	Muts []MutateMutation `json:"muts"`
}

// MutateResponse is one JSON line of the response stream, reporting how
// the matching batch was applied.
type MutateResponse struct {
	Seq     uint64 `json:"seq"`
	Applied bool   `json:"applied"`
	Error   string `json:"error,omitempty"`
	// Repair breakdown (dynamic.Report).
	Inserted      int  `json:"inserted"`
	Deleted       int  `json:"deleted"`
	Greedy        int  `json:"greedy"`
	RepairedEdges int  `json:"repairedEdges"`
	RepairRounds  int  `json:"repairRounds"`
	RegionSize    int  `json:"regionSize"`
	RegionEdges   int  `json:"regionEdges"`
	Fallback      int  `json:"fallback,omitempty"`
	Aborted       bool `json:"aborted,omitempty"`
	// Maintenance reports the pass that ran after this batch, when the
	// stream opted in with maintain=true and a trigger tripped.
	Maintenance *dynamic.MaintainReport `json:"maintenance,omitempty"`
	// Post-batch state: live edges, edge-id bound (> m means id holes),
	// palette, and the re-validation verdict (nil when verify=false).
	M           int   `json:"m"`
	EdgeIDBound int   `json:"edgeIDBound"`
	Colors      int   `json:"colors"`
	MaxColor    int   `json:"maxColor"`
	Valid       *bool `json:"valid,omitempty"`
}

// errNotMutable maps to 409: the job has no complete edge coloring to
// maintain.
type errNotMutable struct{ reason string }

func (e errNotMutable) Error() string { return e.reason }

// recolorer returns the job's recolorer, creating it on first use from
// the finished run's graph and coloring. maintain, when non-nil, turns
// on automatic maintenance between batches. Caller holds j.recMu.
func (s *Server) recolorer(j *job, palette int, seed uint64, maintain *dynamic.MaintainOptions) (*dynamic.Recolorer, error) {
	if j.rec != nil {
		return j.rec, nil
	}
	j.mu.Lock()
	state, strong, res := j.state, j.req.Strong, j.res
	j.mu.Unlock()
	if strong {
		return nil, errNotMutable{"strong colorings have no incremental repair path"}
	}
	if state != StateDone || res == nil || !res.Terminated {
		return nil, errNotMutable{fmt.Sprintf("job is %s: mutations need a complete coloring", state)}
	}
	// Clone graph and colors: the job's own record stays immutable (and
	// data-race free) for status/stats readers.
	rec, err := dynamic.New(j.req.Graph.Clone(), append([]int(nil), res.Colors...), dynamic.Options{
		Seed:     seed,
		Palette:  palette,
		Maintain: maintain,
		Repair: core.Options{
			Engine:  net.RunShard,
			Workers: s.cfg.ShardWorkers,
		},
	})
	if err != nil {
		return nil, err
	}
	j.rec = rec
	return rec, nil
}

// toBatch converts the JSON shape to the wire batch, validating op
// spellings here (endpoint and duplicate validation happens in Apply).
func toBatch(mb MutateBatch) (*msg.MutationBatch, error) {
	b := &msg.MutationBatch{Seq: mb.Seq, Muts: make([]msg.Mutation, len(mb.Muts))}
	for i, m := range mb.Muts {
		var op msg.MutOp
		switch m.Op {
		case "+", "insert":
			op = msg.OpInsert
		case "-", "delete":
			op = msg.OpDelete
		default:
			return nil, fmt.Errorf("mutation %d: unknown op %q", i, m.Op)
		}
		b.Muts[i] = msg.Mutation{Op: op, U: m.U, V: m.V}
	}
	return b, nil
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	j := s.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	palette, err := queryInt(r, "palette", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	seed, err := queryUint(r, "seed", 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	doVerify := r.URL.Query().Get("verify") != "false"
	var maintain *dynamic.MaintainOptions
	if r.URL.Query().Get("maintain") == "true" {
		holeRatio, err := queryFloat(r, "holeRatio", 0)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		paletteSlack, err := queryInt(r, "paletteSlack", 0)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		maintain = &dynamic.MaintainOptions{HoleRatio: holeRatio, PaletteSlack: paletteSlack}
	}

	j.recMu.Lock()
	defer j.recMu.Unlock()
	rec, err := s.recolorer(j, palette, seed, maintain)
	if err != nil {
		if nm, ok := err.(errNotMutable); ok {
			httpError(w, http.StatusConflict, nm)
		} else {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}

	// Responses stream while the request body is still arriving; HTTP/1
	// servers drop the unread body once the first write goes out unless
	// full duplex is on (h2 interleaves anyway and reports unsupported).
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	applyOne := func(b *msg.MutationBatch) {
		resp := MutateResponse{Seq: b.Seq}
		repairStart := time.Now()
		rep, err := rec.ApplyCtx(r.Context(), b)
		s.repairTime.Observe(time.Since(repairStart).Microseconds())
		if err != nil {
			s.mutRejected.Inc()
			resp.Error = err.Error()
		} else {
			s.mutBatches.Inc()
			s.mutRepaired.Add(int64(rep.RepairedEdges))
			resp.Applied = true
			resp.Inserted = rep.Inserted
			resp.Deleted = rep.Deleted
			resp.Greedy = rep.GreedyColored
			resp.RepairedEdges = rep.RepairedEdges
			resp.RepairRounds = rep.RepairRounds
			resp.RegionSize = rep.RegionSize
			resp.RegionEdges = rep.RegionEdges
			resp.Fallback = rep.FallbackEdges
			resp.Aborted = rep.Aborted
			resp.Maintenance = rep.Maintenance
			if mrep := rep.Maintenance; mrep != nil {
				s.maintPasses.Inc()
				if mrep.Compacted {
					s.maintCompact.Inc()
				}
				if mrep.Rebalanced {
					s.maintRebalance.Inc()
				}
				s.maintTime.Observe(mrep.DurationUS)
			}
		}
		resp.M = rec.Graph().M()
		resp.EdgeIDBound = rec.Graph().EdgeIDBound()
		resp.Colors = rec.NumColors()
		resp.MaxColor = rec.MaxColor()
		if doVerify {
			ok := len(verify.EdgeColoring(rec.Graph(), rec.Colors())) == 0
			resp.Valid = &ok
		}
		if resp.Applied {
			j.mu.Lock()
			j.mutBatches++
			j.mutM = resp.M
			j.mutColors = resp.Colors
			j.mutMaxColor = resp.MaxColor
			j.mutIDBound = resp.EdgeIDBound
			if resp.Maintenance != nil {
				j.mutMaintain++
				if resp.Maintenance.Compacted {
					j.mutCompactions++
				}
				if resp.Maintenance.Rebalanced {
					j.mutRebalances++
				}
			}
			j.mu.Unlock()
		}
		// Rejected batches are broadcast too: a watcher should see the
		// stream stall's cause, not just silence. Maintenance passes get
		// their own event so a dashboard can mark compactions on the
		// timeline without parsing every batch report.
		if resp.Maintenance != nil {
			j.bcast.Publish(metrics.EventMaintenance, resp.Maintenance)
		}
		j.bcast.Publish(metrics.EventMutation, resp)
		_ = enc.Encode(resp)
		if flusher != nil {
			flusher.Flush()
		}
	}

	if ct == "application/x-ndjson" || ct == "application/json" {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 1<<16), 1<<24)
		line := 0
		for sc.Scan() {
			line++
			raw := sc.Bytes()
			if len(raw) == 0 {
				continue
			}
			var mb MutateBatch
			if err := json.Unmarshal(raw, &mb); err != nil {
				s.mutRejected.Inc()
				_ = enc.Encode(MutateResponse{Error: fmt.Sprintf("line %d: %v", line, err)})
				return
			}
			b, err := toBatch(mb)
			if err != nil {
				s.mutRejected.Inc()
				_ = enc.Encode(MutateResponse{Seq: mb.Seq, Error: err.Error()})
				continue
			}
			applyOne(b)
			if r.Context().Err() != nil {
				return
			}
		}
		return
	}
	// Raw upload: one batch in the text mutation-list format.
	b, err := graphio.ReadMutations(body)
	if err != nil {
		s.mutRejected.Inc()
		_ = enc.Encode(MutateResponse{Error: err.Error()})
		return
	}
	applyOne(b)
}
