package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dima/internal/metrics"
	"dima/internal/service"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	ID    string
	Event string
	Data  string
}

// readSSE consumes an SSE body, appending parsed events to a shared
// slice until stop returns true (or the stream/context ends). It
// returns the events read.
func readSSE(t *testing.T, ctx context.Context, url string, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" || cur.Data != "" {
				evs = append(evs, cur)
				if stop(cur) {
					return evs
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id: "):
			cur.ID = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.Event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.Data = line[len("data: "):]
		}
	}
	return evs
}

// terminalStatus reports whether ev is a status event in a terminal
// state.
func terminalStatus(ev sseEvent) bool {
	if ev.Event != "status" {
		return false
	}
	var st service.JobStatus
	if json.Unmarshal([]byte(ev.Data), &st) != nil {
		return false
	}
	return st.State == service.StateDone || st.State == service.StateFailed ||
		st.State == service.StateCanceled
}

// healthz fetches and decodes /healthz.
func healthz(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEventsReplayAfterDone: a subscriber attaching to a finished job
// sees the whole history — lifecycle statuses and one round event per
// computation round, in order, ending with the terminal status.
func TestEventsReplayAfterDone(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"er","n":60,"deg":5,"seed":9},"seed":11}`)
	fin := waitState(t, ts.URL, st.ID, service.StateDone)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	evs := readSSE(t, ctx, ts.URL+"/jobs/"+st.ID+"/events", terminalStatus)

	var rounds, statuses int
	lastRound := -1
	prevID := 0
	for _, ev := range evs {
		if ev.ID != "" {
			var id int
			fmt.Sscanf(ev.ID, "%d", &id)
			if id <= prevID {
				t.Fatalf("SSE ids not increasing: %d after %d", id, prevID)
			}
			prevID = id
		}
		switch ev.Event {
		case "round":
			var rs metrics.RoundStats
			if err := json.Unmarshal([]byte(ev.Data), &rs); err != nil {
				t.Fatalf("round event data: %v: %s", err, ev.Data)
			}
			if rs.Round != lastRound+1 {
				t.Fatalf("round %d after %d", rs.Round, lastRound)
			}
			lastRound = rs.Round
			rounds++
		case "status":
			statuses++
		case "dropped":
			t.Fatalf("dropped marker on an idle replay: %s", ev.Data)
		}
	}
	if rounds != fin.Result.Rounds {
		t.Fatalf("replayed %d round events, run took %d rounds", rounds, fin.Result.Rounds)
	}
	// queued, running, done at minimum.
	if statuses < 3 {
		t.Fatalf("replayed %d status events, want >= 3", statuses)
	}
	if !terminalStatus(evs[len(evs)-1]) {
		t.Fatalf("stream did not end on the terminal status: %+v", evs[len(evs)-1])
	}
}

// TestEventsLiveFollowsRun: a subscriber attached while the job is
// still running receives the terminal status live, without polling.
func TestEventsLiveFollowsRun(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	svc := service.New(service.Config{Workers: 1, Runner: blockingRunner(started, release)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"path","n":4},"seed":1}`)
	<-started

	done := make(chan []sseEvent, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() {
		done <- readSSE(t, ctx, ts.URL+"/jobs/"+st.ID+"/events", terminalStatus)
	}()
	// Give the subscriber a beat to attach, then let the job finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	evs := <-done
	if len(evs) == 0 || !terminalStatus(evs[len(evs)-1]) {
		t.Fatalf("live stream missed the terminal status: %+v", evs)
	}
}

// TestEventsDisconnectReleasesSubscription: closing the client
// connection mid-stream must unregister the subscriber (observable via
// the serve_event_subscribers gauge surfaced in /healthz).
func TestEventsDisconnectReleasesSubscription(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	svc := service.New(service.Config{Workers: 1, Runner: blockingRunner(started, release)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"path","n":4},"seed":1}`)
	<-started // job parked: the stream stays open until we disconnect

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		readSSE(t, ctx, ts.URL+"/jobs/"+st.ID+"/events", func(sseEvent) bool { return false })
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, _ := healthz(t, ts.URL)["eventSubscribers"].(float64); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel() // client disconnects mid-stream
	wg.Wait()
	for {
		if n, _ := healthz(t, ts.URL)["eventSubscribers"].(float64); n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnect did not release the subscription")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventsCarryMutationReports: mutation batches applied to a dynamic
// job appear on the same stream as the run's telemetry.
func TestEventsCarryMutationReports(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	st := submit(t, ts.URL, `{"gen":{"family":"er","n":40,"deg":4,"seed":3},"seed":7}`)
	waitState(t, ts.URL, st.ID, service.StateDone)

	resp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/mutate", "application/x-ndjson",
		strings.NewReader(`{"seq":1,"muts":[{"op":"+","u":0,"v":39}]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	evs := readSSE(t, ctx, ts.URL+"/jobs/"+st.ID+"/events",
		func(ev sseEvent) bool { return ev.Event == "mutation" })
	last := evs[len(evs)-1]
	if last.Event != "mutation" {
		t.Fatalf("no mutation event on the stream: %+v", evs)
	}
	var mr service.MutateResponse
	if err := json.Unmarshal([]byte(last.Data), &mr); err != nil {
		t.Fatalf("mutation event data: %v: %s", err, last.Data)
	}
	if mr.Seq != 1 || !mr.Applied {
		t.Fatalf("mutation event %+v, want applied seq 1", mr)
	}
}

func TestEventsUnknownJob404(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job: %d, want 404", resp.StatusCode)
	}
}
