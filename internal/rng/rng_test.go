package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestNewSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs; generator degenerate", zeros)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	c0 := parent.Derive(0)
	c1 := parent.Derive(1)
	collisions := 0
	for i := 0; i < 1000; i++ {
		if c0.Uint64() == c1.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("sibling streams collided %d times in 1000 draws", collisions)
	}
}

func TestDeriveRepeatable(t *testing.T) {
	parent := New(7)
	a := parent.Derive(5)
	// Derive must not consume parent state: deriving again gives the
	// identical child stream.
	b := parent.Derive(5)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("re-derived child diverged at %d", i)
		}
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Derive(3)
	_ = a.Derive(4)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("Derive advanced parent state (step %d)", i)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 1 << 20, 1<<63 + 12345} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %.0f", i, c, want)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(13)
	const draws = 100000
	heads := 0
	for i := 0; i < draws; i++ {
		if r.Bool() {
			heads++
		}
	}
	if math.Abs(float64(heads)-draws/2) > 4*math.Sqrt(draws/4) {
		t.Fatalf("coin heavily biased: %d heads of %d", heads, draws)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(19)
	const n = 5
	const draws = 50000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first-element bucket %d = %d, want ~%.0f", i, c, want)
		}
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(23)
	calls := 0
	r.Shuffle(10, func(i, j int) { calls++ })
	if calls != 9 {
		t.Fatalf("Shuffle(10) made %d swap calls, want 9", calls)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const p = 0.25
	const draws = 200000
	sum := 0
	for i := 0; i < draws; i++ {
		g := r.Geometric(p)
		if g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
		sum += g
	}
	mean := float64(sum) / draws
	if math.Abs(mean-1/p) > 0.1 {
		t.Fatalf("Geometric(%v) mean %.3f, want ~%.3f", p, mean, 1/p)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(31)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(37)
	cases := []struct {
		n int
		p float64
	}{{20, 0.5}, {1000, 0.01}, {500, 0.9}}
	for _, c := range cases {
		const draws = 20000
		sum := 0
		for i := 0; i < draws; i++ {
			b := r.Binomial(c.n, c.p)
			if b < 0 || b > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, b)
			}
			sum += b
		}
		mean := float64(sum) / draws
		want := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(draws)*10 {
			t.Fatalf("Binomial(%d,%v) mean %.3f, want ~%.3f", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(41)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0,.5) = %d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Fatalf("Binomial(10,0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Fatalf("Binomial(10,1) = %d", v)
	}
}

func TestMix64NotIdentity(t *testing.T) {
	if Mix64(0) == 0 && Mix64(1) == 1 {
		t.Fatal("Mix64 looks like identity")
	}
	if Mix64(12345) == Mix64(12346) {
		t.Fatal("Mix64 collided on adjacent inputs")
	}
}

// Property: Uint64n always in range, over random n and seeds.
func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 10; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds give identical derived trees of streams.
func TestQuickDeriveDeterministic(t *testing.T) {
	f := func(seed, idx uint64) bool {
		a := New(seed).Derive(idx)
		b := New(seed).Derive(idx)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64n(12345)
	}
	_ = sink
}
