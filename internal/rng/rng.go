// Package rng provides deterministic, splittable pseudo-random number
// generation for the dima simulator.
//
// Every simulated compute node owns an independent stream derived from a
// single experiment seed, so that (a) whole experiments are exactly
// reproducible from one uint64, (b) per-node streams are statistically
// independent, and (c) the goroutine-per-node runtime and the sequential
// lockstep runtime draw identical random decisions for the same seed,
// regardless of scheduling.
//
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference constructions by Blackman and Vigna. Both are implemented here
// from the public-domain reference algorithms; no external code is used.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 is a tiny 64-bit generator used to seed and to derive
// sub-stream seeds. It is a struct so that deriving many children from a
// parent seed is allocation-free.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through the splitmix64 finalizer. It is used for
// deterministic tie-breaking priorities (e.g. same-round claim conflicts)
// where a high-quality stateless hash of a composite key is needed.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator. The zero value is invalid; construct
// with New or Derive.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from seed via splitmix64, per the
// xoshiro reference seeding procedure.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{s0: sm.Next(), s1: sm.Next(), s2: sm.Next(), s3: sm.Next()}
	// Guard against the (astronomically unlikely) all-zero state, which
	// is the single fixed point of xoshiro.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// Derive returns a child generator for stream index i. Children of
// distinct indices, and the parent itself, produce independent streams.
// Derive does not disturb the parent's state.
func (r *Rand) Derive(i uint64) *Rand {
	// Combine the parent's state with the index through strong mixing;
	// the parent state is read, not advanced, so Derive is repeatable.
	h := Mix64(r.s0 ^ Mix64(i+0x632be59bd9b4e019))
	h ^= Mix64(r.s2 + i)
	return New(h)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean — the "coin toss" that selects
// the Invite or Listen state in the automaton's C state.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes s uniformly in place (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p (number of trials until first success, >= 1). Used by
// skip-sampling graph generators. Panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	// Inverse transform: ceil(ln(1-u)/ln(1-p)).
	u := r.Float64()
	n := int(math.Log1p(-u)/math.Log1p(-p)) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Binomial returns a sample from Binomial(n, p) by direct simulation for
// small n and by skip-sampling for large n with small p.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 || p < 0 || p > 1 {
		panic("rng: Binomial parameters out of range")
	}
	if p == 0 || n == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// Skip-sampling: count successes by jumping geometric gaps.
	k := 0
	i := -1
	for {
		i += r.Geometric(p)
		if i >= n {
			return k
		}
		k++
	}
}
