package experiment

import (
	"strings"
	"testing"
)

func smallFaultConfig(seed uint64) FaultConfig {
	return FaultConfig{
		Seed:          seed,
		N:             40,
		Deg:           6,
		Drops:         []float64{0, 0.1},
		Reps:          2,
		MaxCompRounds: 3000,
	}
}

func TestFaultSweepRecoveryCompletes(t *testing.T) {
	runs, err := FaultSweep(smallFaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	// 2 drops × 2 algorithms × 2 recovery arms × 2 reps.
	if len(runs) != 16 {
		t.Fatalf("got %d runs", len(runs))
	}
	for _, r := range runs {
		switch {
		case r.Recovery || r.DropP == 0:
			if !r.Complete {
				t.Errorf("%s P=%g recovery=%v rep %d: not complete (terminated=%v half=%d violations=%d)",
					r.Algorithm, r.DropP, r.Recovery, r.Rep,
					r.Terminated, r.HalfColored, r.Violations)
			}
		default:
			// No recovery under loss: the run must be visibly damaged, not
			// silently pass — that is the defect the sweep exists to show.
			if r.Complete {
				t.Errorf("%s P=%g without recovery completed; faults had no effect", r.Algorithm, r.DropP)
			}
		}
		if !r.Recovery && r.Retransmits+r.Repairs+r.Reverts+r.Probes != 0 {
			t.Errorf("%s P=%g recovery off reported recovery activity: %+v", r.Algorithm, r.DropP, r)
		}
	}
}

func TestFaultSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := smallFaultConfig(23)
	cfg.Workers = 1
	a, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestFaultCellsAndTable(t *testing.T) {
	runs, err := FaultSweep(smallFaultConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	cells := FaultCells(runs)
	if len(cells) != 8 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.Reps != 2 {
			t.Fatalf("cell %+v: wrong rep count", c)
		}
		if c.RoundOverhead <= 0 {
			t.Fatalf("cell %+v: missing P=0 overhead anchor", c)
		}
		if c.DropP == 0 && c.RoundOverhead != 1 {
			t.Fatalf("cell %+v: P=0 overhead must be exactly 1", c)
		}
	}
	out := FaultTable(cells).String()
	for _, want := range []string{"alg1", "alg2", "dropP", "complete", "retx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
