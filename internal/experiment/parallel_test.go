package experiment

import (
	"runtime"
	"testing"
)

func TestParallelSweepSmall(t *testing.T) {
	cfg := ParallelConfig{
		Seed:       5,
		Edges:      []int{600, 1_500},
		AvgDeg:     6,
		WorkersSet: []int{1, 2, 3},
	}
	var seen []ParallelRow
	rep, err := ParallelSweep(cfg, func(row ParallelRow) { seen = append(seen, row) })
	if err != nil {
		t.Fatal(err)
	}
	// Per rung: one sync reference row plus one row per worker count.
	want := len(cfg.Edges) * (1 + len(cfg.WorkersSet))
	if len(rep.Rows) != want {
		t.Fatalf("got %d rows, want %d: %+v", len(rep.Rows), want, rep.Rows)
	}
	if len(seen) != len(rep.Rows) {
		t.Fatalf("progress callback saw %d rows, report has %d", len(seen), len(rep.Rows))
	}
	byM := map[int][]ParallelRow{}
	for _, row := range rep.Rows {
		byM[row.M] = append(byM[row.M], row)
		if row.WallMS < 0 {
			t.Fatalf("negative wall time: %+v", row)
		}
	}
	for m, rows := range byM {
		if rows[0].Engine != "sync" {
			t.Fatalf("m=%d: first row is %q, want the sync reference", m, rows[0].Engine)
		}
		for _, row := range rows[1:] {
			// The sweep already cross-checked the colorings; pin the
			// reported protocol aggregates too.
			if row.CompRounds != rows[0].CompRounds || row.Colors != rows[0].Colors ||
				row.Messages != rows[0].Messages || row.Deliveries != rows[0].Deliveries {
				t.Fatalf("m=%d: workers=%d disagrees with sync: %+v vs %+v", m, row.Workers, rows[0], row)
			}
			if row.Records <= 0 {
				t.Fatalf("m=%d: shard row missing delivery records: %+v", m, row)
			}
			if row.Records > row.Deliveries {
				t.Fatalf("m=%d: records %d exceed deliveries %d", m, row.Records, row.Deliveries)
			}
			// Reliable path: one record per (message, destination shard),
			// so at most workers records per message.
			if row.Records > row.Messages*int64(row.Workers) {
				t.Fatalf("m=%d: records %d exceed messages×workers %d×%d", m, row.Records, row.Messages, row.Workers)
			}
			if row.Speedup <= 0 {
				t.Fatalf("m=%d: workers=%d row has no speedup vs workers=1: %+v", m, row.Workers, row)
			}
		}
	}
}

func TestResolveWorkersSet(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	got := resolveWorkersSet([]int{4, 0, 1, 4, gmp})
	for i, w := range got {
		if w <= 0 {
			t.Fatalf("unresolved entry %d in %v", w, got)
		}
		if i > 0 && got[i-1] >= w {
			t.Fatalf("not strictly ascending: %v", got)
		}
	}
	hasOne, hasGMP := false, false
	for _, w := range got {
		hasOne = hasOne || w == 1
		hasGMP = hasGMP || w == gmp
	}
	if !hasOne || !hasGMP {
		t.Fatalf("resolved set %v missing 1 or GOMAXPROCS=%d", got, gmp)
	}
}
