package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dima/internal/core"
	"dima/internal/dynamic"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// The dynamic sweep is the recoloring subsystem's benchmark: one cold
// Algorithm 1 run on an Erdős–Rényi instance, then streams of mutation
// batches applied two ways — incrementally (dynamic.Recolorer, repairing
// only the affected region) and from scratch (a full shard-engine run on
// the mutated graph). The headline number is the per-batch speedup: the
// incremental path must beat the cold rerun by a wide margin for batches
// far smaller than m, because its cost scales with the repair region.
// Every post-batch coloring is verified valid, and the whole incremental
// sequence is replayed to confirm determinism for the fixed seed. The
// JSON report is the committed baseline BENCH_PR5.json (protocol in
// docs/DYNAMIC.md).

// DynamicConfig configures DynamicSweep. DefaultDynamicConfig fills the
// baseline protocol.
type DynamicConfig struct {
	// Seed determines the instance, the cold run, the mutation streams,
	// and the repair runs.
	Seed uint64
	// N is the instance's vertex count.
	N int
	// AvgDeg is the Erdős–Rényi average degree.
	AvgDeg float64
	// BatchSizes are the mutation-batch sizes compared, one row each.
	BatchSizes []int
	// BatchesPerSize is how many batches stream per row; incremental and
	// full-recolor timings are averaged over them.
	BatchesPerSize int
	// Workers is the shard engine's worker count for the cold run, the
	// full recolors, and the automaton repairs (0 = GOMAXPROCS).
	Workers int
	// TightPalette caps the recolorer's greedy palette at the average
	// degree — far under the cold palette — so the insertions whose
	// endpoints jointly block every capped color fail the fast path and
	// exercise the automaton repair. Off, the default 2Δ−1 cap makes
	// every insertion greedy and the sweep never measures a repair.
	TightPalette bool
	// VerifyCap bounds the per-batch full validity verification (and the
	// full recolors'); above it colorings are not verified. 0 verifies
	// everything — the baseline protocol, since verification is cheap
	// next to a cold run.
	VerifyCap int
}

// DefaultDynamicConfig returns the baseline protocol: a 10⁵-vertex
// instance (multiplied by scale, floor 200), batch sizes {1, 10, 100},
// three batches per size, tight palette, everything verified.
func DefaultDynamicConfig(seed uint64, scale float64) DynamicConfig {
	n := int(100_000 * scale)
	if n < 200 {
		n = 200
	}
	return DynamicConfig{
		Seed:           seed,
		N:              n,
		AvgDeg:         8,
		BatchSizes:     []int{1, 10, 100},
		BatchesPerSize: 3,
		TightPalette:   true,
	}
}

// DynamicRow is one batch-size arm of the sweep. Counters are totals
// over the arm's batches; wall-clock fields carry both the total and the
// per-batch average the speedup is computed from.
type DynamicRow struct {
	BatchSize int `json:"batchSize"`
	Batches   int `json:"batches"`
	Inserted  int `json:"inserted"`
	Deleted   int `json:"deleted"`
	// Repair breakdown: insertions colored by the greedy fast path vs
	// the constrained automaton, the rounds those repairs took, and the
	// largest repair region (vertices / frontier edges) any batch built.
	Greedy         int `json:"greedy"`
	RepairedEdges  int `json:"repairedEdges"`
	RepairRounds   int `json:"repairRounds"`
	FallbackEdges  int `json:"fallbackEdges,omitempty"`
	MaxRegionSize  int `json:"maxRegionSize"`
	MaxRegionEdges int `json:"maxRegionEdges"`
	// Post-arm state.
	M           int `json:"m"`
	IncColors   int `json:"incColors"`
	IncMaxColor int `json:"incMaxColor"`
	FullColors  int `json:"fullColors"`
	// Timings: incremental Apply vs a full shard-engine recolor of the
	// same mutated graph, per batch.
	IncWallMS  float64 `json:"incWallMS"`
	IncAvgMS   float64 `json:"incAvgMS"`
	FullWallMS float64 `json:"fullWallMS"`
	FullAvgMS  float64 `json:"fullAvgMS"`
	Speedup    float64 `json:"speedup"`
}

// DynamicReport is the sweep's persistable outcome.
type DynamicReport struct {
	Seed       uint64  `json:"seed"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	Delta      int     `json:"delta"`
	AvgDeg     float64 `json:"avgDeg"`
	Workers    int     `json:"workers,omitempty"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numCPU"`
	GoVersion  string  `json:"goVersion"`
	// Palette is the recolorer's greedy cap (the average degree under
	// TightPalette, 0 for the automatic 2Δ−1 cap).
	Palette int `json:"palette"`
	// Cold run: the starting coloring every arm mutates away from.
	ColdColors int     `json:"coldColors"`
	ColdWallMS float64 `json:"coldWallMS"`
	// Deterministic reports that replaying every arm's mutation stream
	// from the cold coloring reproduced the identical color sequence.
	Deterministic bool         `json:"deterministic"`
	Rows          []DynamicRow `json:"rows"`
}

// DynamicSweep runs the benchmark.
func DynamicSweep(cfg DynamicConfig, progress func(DynamicRow)) (*DynamicReport, error) {
	return DynamicSweepCtx(context.Background(), cfg, progress)
}

// DynamicSweepCtx is DynamicSweep bounded by ctx: cancellation aborts
// the in-flight cold run or full recolor at its next round barrier.
func DynamicSweepCtx(ctx context.Context, cfg DynamicConfig, progress func(DynamicRow)) (*DynamicReport, error) {
	if cfg.AvgDeg <= 0 {
		return nil, fmt.Errorf("experiment: dynamic sweep needs a positive average degree, got %g", cfg.AvgDeg)
	}
	if cfg.BatchesPerSize <= 0 {
		return nil, fmt.Errorf("experiment: dynamic sweep needs at least one batch per size, got %d", cfg.BatchesPerSize)
	}
	base := rng.New(cfg.Seed)
	g, err := gen.ErdosRenyiAvgDegree(base.Derive(uint64(cfg.N)), cfg.N, cfg.AvgDeg)
	if err != nil {
		return nil, err
	}
	runSeed := base.Uint64()
	opt := core.Options{Seed: runSeed, Engine: net.RunShard, Workers: cfg.Workers}

	start := time.Now()
	cold, err := core.ColorEdgesCtx(ctx, g, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: dynamic cold run: %v", err)
	}
	if cold.Aborted {
		return nil, fmt.Errorf("experiment: dynamic cold run: %w", ctx.Err())
	}
	if !cold.Terminated {
		return nil, fmt.Errorf("experiment: dynamic cold run truncated at %d rounds", cold.CompRounds)
	}
	coldWall := time.Since(start)

	palette := 0
	if cfg.TightPalette {
		palette = int(cfg.AvgDeg)
		if palette < 2 {
			palette = 2
		}
	}
	rep := &DynamicReport{
		Seed:       cfg.Seed,
		N:          g.N(),
		M:          g.M(),
		Delta:      g.MaxDegree(),
		AvgDeg:     cfg.AvgDeg,
		Workers:    cfg.Workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Palette:    palette,
		ColdColors: cold.NumColors,
		ColdWallMS: float64(coldWall.Microseconds()) / 1000,
	}
	rep.Deterministic = true

	newRecolorer := func() (*dynamic.Recolorer, error) {
		return dynamic.New(g.Clone(), append([]int(nil), cold.Colors...), dynamic.Options{
			Seed:    runSeed,
			Palette: palette,
			Repair:  core.Options{Engine: net.RunShard, Workers: cfg.Workers},
		})
	}

	for _, size := range cfg.BatchSizes {
		if size <= 0 {
			return nil, fmt.Errorf("experiment: dynamic sweep batch size %d", size)
		}
		rec, err := newRecolorer()
		if err != nil {
			return nil, err
		}
		mr := base.Derive(uint64(size))
		row := DynamicRow{BatchSize: size, Batches: cfg.BatchesPerSize}
		batches := make([]*msg.MutationBatch, 0, cfg.BatchesPerSize)
		for bi := 0; bi < cfg.BatchesPerSize; bi++ {
			b := mutationStream(mr, rec.Graph(), uint64(bi+1), size)
			batches = append(batches, b)

			incStart := time.Now()
			r, err := rec.ApplyCtx(ctx, b)
			incWall := time.Since(incStart)
			if err != nil {
				return nil, fmt.Errorf("experiment: dynamic size=%d batch=%d: %v", size, bi+1, err)
			}
			row.Inserted += r.Inserted
			row.Deleted += r.Deleted
			row.Greedy += r.GreedyColored
			row.RepairedEdges += r.RepairedEdges
			row.RepairRounds += r.RepairRounds
			row.FallbackEdges += r.FallbackEdges
			if r.RegionSize > row.MaxRegionSize {
				row.MaxRegionSize = r.RegionSize
			}
			if r.RegionEdges > row.MaxRegionEdges {
				row.MaxRegionEdges = r.RegionEdges
			}
			row.IncWallMS += float64(incWall.Microseconds()) / 1000

			if cfg.VerifyCap <= 0 || g.N() <= cfg.VerifyCap {
				if v := verify.EdgeColoring(rec.Graph(), rec.Colors()); len(v) != 0 {
					return nil, fmt.Errorf("experiment: dynamic size=%d batch=%d: invalid incremental coloring: %v", size, bi+1, v[0])
				}
			}

			// The competing strategy: recolor the mutated graph from
			// scratch. The compacted snapshot is what a cold run would be
			// handed; its construction is not charged to either side.
			cg, _ := rec.Compacted()
			fullStart := time.Now()
			full, err := core.ColorEdgesCtx(ctx, cg, core.Options{
				Seed: runSeed, Engine: net.RunShard, Workers: cfg.Workers,
			})
			fullWall := time.Since(fullStart)
			if err != nil {
				return nil, fmt.Errorf("experiment: dynamic size=%d batch=%d full recolor: %v", size, bi+1, err)
			}
			if full.Aborted {
				return nil, fmt.Errorf("experiment: dynamic size=%d batch=%d full recolor: %w", size, bi+1, ctx.Err())
			}
			if !full.Terminated {
				return nil, fmt.Errorf("experiment: dynamic size=%d batch=%d full recolor truncated at %d rounds", size, bi+1, full.CompRounds)
			}
			if cfg.VerifyCap <= 0 || cg.N() <= cfg.VerifyCap {
				if v := verify.EdgeColoring(cg, full.Colors); len(v) != 0 {
					return nil, fmt.Errorf("experiment: dynamic size=%d batch=%d: invalid full recolor: %v", size, bi+1, v[0])
				}
			}
			row.FullWallMS += float64(fullWall.Microseconds()) / 1000
			row.FullColors = full.NumColors
		}
		row.M = rec.Graph().M()
		row.IncColors = rec.NumColors()
		row.IncMaxColor = rec.MaxColor()
		row.IncAvgMS = row.IncWallMS / float64(row.Batches)
		row.FullAvgMS = row.FullWallMS / float64(row.Batches)
		if row.IncAvgMS > 0 {
			row.Speedup = row.FullAvgMS / row.IncAvgMS
		}

		// Determinism: replay the stream on a fresh recolorer and demand
		// the identical color sequence.
		replay, err := newRecolorer()
		if err != nil {
			return nil, err
		}
		for bi, b := range batches {
			if _, err := replay.Apply(b); err != nil {
				return nil, fmt.Errorf("experiment: dynamic size=%d replay batch=%d: %v", size, bi+1, err)
			}
		}
		if !equalInts(replay.Colors(), rec.Colors()) {
			rep.Deterministic = false
		}

		rep.Rows = append(rep.Rows, row)
		if progress != nil {
			progress(row)
		}
	}
	return rep, nil
}

// mutationStream builds one valid batch against g's current state: an
// even mix of deletions of live edges and insertions of fresh vertex
// pairs, never touching the same pair twice (MutationBatch.Validate
// rejects duplicates, and a delete of an edge inserted earlier in the
// batch would fail the pre-batch applicability check).
func mutationStream(r *rng.Rand, g *graph.Graph, seq uint64, size int) *msg.MutationBatch {
	b := &msg.MutationBatch{Seq: seq}
	touched := map[[2]int]bool{}
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	deletable := g.M() / 2 // keep the instance from draining across arms
	for len(b.Muts) < size {
		if r.Bool() && deletable > 0 {
			id := graph.EdgeID(r.Intn(g.EdgeIDBound()))
			if !g.Live(id) {
				continue
			}
			e := g.EdgeAt(id)
			if touched[key(e.U, e.V)] {
				continue
			}
			touched[key(e.U, e.V)] = true
			b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpDelete, U: e.U, V: e.V})
			deletable--
			continue
		}
		u, v := r.Intn(g.N()), r.Intn(g.N())
		if u == v || g.HasEdge(u, v) || touched[key(u, v)] {
			continue
		}
		touched[key(u, v)] = true
		b.Muts = append(b.Muts, msg.Mutation{Op: msg.OpInsert, U: u, V: v})
	}
	return b
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// WriteDynamicReport writes the report as indented JSON.
func WriteDynamicReport(w io.Writer, rep *DynamicReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
