package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dima/internal/automaton"
	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/stats"
	"dima/internal/verify"
)

// This file implements the fault sweep: both algorithms run under a
// uniform per-delivery drop rate P, with and without the recovery layer
// (docs/ROBUSTNESS.md), measuring completeness (did the run converge to
// a complete valid coloring?) and round overhead versus the fault-free
// baseline. The paper assumes reliable delivery; this experiment
// quantifies what that assumption is worth and what recovery costs.

// FaultRun is the outcome of one repetition of the fault sweep.
type FaultRun struct {
	Algorithm string // "alg1" (edge coloring) or "alg2" (strong)
	DropP     float64
	Recovery  bool
	Rep       int
	N, M      int

	Terminated bool
	// Complete reports full success: the run terminated, no edge or arc
	// was left half-colored, and the coloring verifies (proper edge
	// coloring for alg1, strong distance-2 coloring for alg2).
	Complete    bool
	HalfColored int
	Violations  int

	CompRounds int
	Colors     int
	Messages   int64

	Retransmits, Repairs, Reverts, Probes int
}

// FaultConfig parameterizes FaultSweep. The zero value is not runnable;
// use DefaultFaultConfig as a starting point.
type FaultConfig struct {
	// Seed determines every graph, run, and fault pattern in the sweep.
	Seed uint64
	// N and Deg shape the Erdős–Rényi instances.
	N   int
	Deg float64
	// Drops is the grid of per-delivery drop probabilities; include 0 to
	// anchor the overhead baseline.
	Drops []float64
	// Reps is the number of repetitions per (algorithm, drop, recovery)
	// cell. Repetition i uses the same graph in every cell, so the arms
	// are paired.
	Reps int
	// Workers bounds parallel runs; 0 means GOMAXPROCS.
	Workers int
	// MaxCompRounds truncates runs that fail to converge (without
	// recovery, any lost negotiation strands the run); 0 means 3000.
	MaxCompRounds int
}

// DefaultFaultConfig returns the standard sweep: ER n=120 deg=8 under
// drop rates {0, 2, 5, 10, 20}%, scale-adjusted repetitions.
func DefaultFaultConfig(seed uint64, scale float64) FaultConfig {
	r := int(20*scale + 0.5)
	if r < 2 {
		r = 2
	}
	return FaultConfig{
		Seed:  seed,
		N:     120,
		Deg:   8,
		Drops: []float64{0, 0.02, 0.05, 0.1, 0.2},
		Reps:  r,
	}
}

func (c FaultConfig) maxCompRounds() int {
	if c.MaxCompRounds <= 0 {
		return 3000
	}
	return c.MaxCompRounds
}

// FaultSweep runs the full grid — {alg1, alg2} × Drops × {recovery off,
// on} × Reps — in parallel and returns the runs in deterministic order
// (independent of worker count).
func FaultSweep(cfg FaultConfig) ([]FaultRun, error) {
	return FaultSweepCtx(context.Background(), cfg)
}

// FaultSweepCtx is FaultSweep bounded by ctx: cancellation stops
// dispatching new cells, aborts in-flight runs at their next round
// barrier, and returns ctx's error.
func FaultSweepCtx(ctx context.Context, cfg FaultConfig) ([]FaultRun, error) {
	if cfg.N <= 0 || cfg.Deg <= 0 || cfg.Reps <= 0 || len(cfg.Drops) == 0 {
		return nil, fmt.Errorf("experiment: fault sweep config incomplete: %+v", cfg)
	}
	type job struct {
		alg      string
		dropP    float64
		recovery bool
		rep      int
		// graphSeed and runSeed are shared by every arm of the same rep,
		// so arms compare paired on identical instances; faultSeed is
		// shared across the recovery on/off pair of the same (rep, P).
		graphSeed, runSeed, faultSeed uint64
	}
	base := rng.New(cfg.Seed)
	var jobs []job
	for rep := 0; rep < cfg.Reps; rep++ {
		repBase := base.Derive(uint64(rep))
		graphSeed := repBase.Derive(1).Uint64()
		runSeed := repBase.Derive(2).Uint64()
		for di, p := range cfg.Drops {
			faultSeed := repBase.Derive(3).Derive(uint64(di)).Uint64()
			for _, alg := range []string{"alg1", "alg2"} {
				for _, recov := range []bool{false, true} {
					jobs = append(jobs, job{
						alg: alg, dropP: p, recovery: recov, rep: rep,
						graphSeed: graphSeed, runSeed: runSeed, faultSeed: faultSeed,
					})
				}
			}
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]FaultRun, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ch {
				j := jobs[idx]
				g, err := gen.ErdosRenyiAvgDegree(rng.New(j.graphSeed), cfg.N, cfg.Deg)
				if err != nil {
					errs[idx] = fmt.Errorf("experiment: fault sweep rep %d: %v", j.rep, err)
					continue
				}
				opt := core.Options{
					Seed:          j.runSeed,
					MaxCompRounds: cfg.maxCompRounds(),
				}
				if j.dropP > 0 {
					opt.Fault = net.DropRate{Seed: j.faultSeed, P: j.dropP}
				}
				if j.recovery {
					opt.Recovery = automaton.Recovery{Enabled: true}
				}
				results[idx] = runFaultOne(ctx, g, j.alg, j.dropP, j.recovery, j.rep, opt, &errs[idx])
			}
		}()
	}
dispatch:
	for idx := range jobs {
		select {
		case ch <- idx:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func runFaultOne(ctx context.Context, g *graph.Graph, alg string, dropP float64, recovery bool, rep int, opt core.Options, errOut *error) FaultRun {
	var res *core.Result
	var violations []verify.Violation
	var err error
	if alg == "alg2" {
		d := graph.NewSymmetric(g)
		res, err = core.ColorStrongCtx(ctx, d, opt)
		if err == nil && !res.Aborted {
			violations = verify.StrongColoring(d, res.Colors)
		}
	} else {
		res, err = core.ColorEdgesCtx(ctx, g, opt)
		if err == nil && !res.Aborted {
			violations = verify.EdgeColoring(g, res.Colors)
		}
	}
	if err == nil && res.Aborted {
		err = ctx.Err()
	}
	if err != nil {
		*errOut = fmt.Errorf("experiment: fault sweep %s rep %d P=%g: %v", alg, rep, dropP, err)
		return FaultRun{}
	}
	return FaultRun{
		Algorithm: alg, DropP: dropP, Recovery: recovery, Rep: rep,
		N: g.N(), M: g.M(),
		Terminated:  res.Terminated,
		Complete:    res.Terminated && res.HalfColored == 0 && len(violations) == 0,
		HalfColored: res.HalfColored,
		Violations:  len(violations),
		CompRounds:  res.CompRounds,
		Colors:      res.NumColors,
		Messages:    res.Messages,
		Retransmits: res.Retransmits, Repairs: res.Repairs,
		Reverts: res.Reverts, Probes: res.Probes,
	}
}

// FaultCell aggregates one (algorithm, drop rate, recovery) cell of the
// sweep.
type FaultCell struct {
	Algorithm string
	DropP     float64
	Recovery  bool
	Reps      int

	// CompleteFrac is the fraction of repetitions that converged to a
	// complete valid coloring.
	CompleteFrac float64
	// RoundOverhead is MeanRounds divided by the same arm's P=0 mean —
	// the round cost of operating at this loss rate (0 when the sweep has
	// no P=0 anchor).
	RoundOverhead float64

	MeanRounds, MeanColors, MeanMessages float64
	MeanHalfColored, MeanViolations      float64
	MeanRetransmits, MeanRepairs         float64
	MeanReverts, MeanProbes              float64
}

// FaultCells folds runs into per-cell aggregates, ordered by algorithm,
// then recovery arm, then drop rate.
func FaultCells(runs []FaultRun) []FaultCell {
	type key struct {
		alg      string
		dropP    float64
		recovery bool
	}
	acc := map[key][]FaultRun{}
	var order []key
	for _, r := range runs {
		k := key{r.Algorithm, r.DropP, r.Recovery}
		if _, ok := acc[k]; !ok {
			order = append(order, k)
		}
		acc[k] = append(acc[k], r)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.alg != b.alg {
			return a.alg < b.alg
		}
		if a.recovery != b.recovery {
			return !a.recovery
		}
		return a.dropP < b.dropP
	})
	// Fault-free anchors for the overhead ratio, per (algorithm, arm).
	baseline := map[[2]string]float64{}
	armKey := func(alg string, recovery bool) [2]string {
		arm := "off"
		if recovery {
			arm = "on"
		}
		return [2]string{alg, arm}
	}
	cells := make([]FaultCell, 0, len(order))
	for _, k := range order {
		rs := acc[k]
		c := FaultCell{Algorithm: k.alg, DropP: k.dropP, Recovery: k.recovery, Reps: len(rs)}
		var complete int
		for _, r := range rs {
			if r.Complete {
				complete++
			}
			c.MeanRounds += float64(r.CompRounds)
			c.MeanColors += float64(r.Colors)
			c.MeanMessages += float64(r.Messages)
			c.MeanHalfColored += float64(r.HalfColored)
			c.MeanViolations += float64(r.Violations)
			c.MeanRetransmits += float64(r.Retransmits)
			c.MeanRepairs += float64(r.Repairs)
			c.MeanReverts += float64(r.Reverts)
			c.MeanProbes += float64(r.Probes)
		}
		n := float64(len(rs))
		c.CompleteFrac = float64(complete) / n
		c.MeanRounds /= n
		c.MeanColors /= n
		c.MeanMessages /= n
		c.MeanHalfColored /= n
		c.MeanViolations /= n
		c.MeanRetransmits /= n
		c.MeanRepairs /= n
		c.MeanReverts /= n
		c.MeanProbes /= n
		if k.dropP == 0 {
			baseline[armKey(k.alg, k.recovery)] = c.MeanRounds
		}
		cells = append(cells, c)
	}
	for i := range cells {
		if b := baseline[armKey(cells[i].Algorithm, cells[i].Recovery)]; b > 0 {
			cells[i].RoundOverhead = cells[i].MeanRounds / b
		}
	}
	return cells
}

// FaultTable renders the sweep: one row per cell, completeness and
// overhead first, then the recovery activity that bought them.
func FaultTable(cells []FaultCell) *stats.Table {
	t := stats.NewTable("alg", "recovery", "dropP", "complete", "rounds", "xP0",
		"half", "invalid", "colors", "messages", "retx", "repair", "revert", "probe")
	for _, c := range cells {
		arm := "off"
		if c.Recovery {
			arm = "on"
		}
		overhead := "-"
		if c.RoundOverhead > 0 {
			overhead = fmt.Sprintf("%.2f", c.RoundOverhead)
		}
		t.AddRow(c.Algorithm, arm, fmt.Sprintf("%.0f%%", 100*c.DropP),
			fmt.Sprintf("%.0f%%", 100*c.CompleteFrac),
			fmt.Sprintf("%.1f", c.MeanRounds), overhead,
			fmt.Sprintf("%.1f", c.MeanHalfColored),
			fmt.Sprintf("%.1f", c.MeanViolations),
			fmt.Sprintf("%.1f", c.MeanColors),
			fmt.Sprintf("%.0f", c.MeanMessages),
			fmt.Sprintf("%.1f", c.MeanRetransmits),
			fmt.Sprintf("%.1f", c.MeanRepairs),
			fmt.Sprintf("%.1f", c.MeanReverts),
			fmt.Sprintf("%.1f", c.MeanProbes))
	}
	return t
}
