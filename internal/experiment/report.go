package experiment

import (
	"fmt"
	"sort"

	"dima/internal/stats"
)

// GroupSummary aggregates the runs of one series.
type GroupSummary struct {
	Group          string
	Runs           int
	Delta          stats.Summary // max degree across instances
	Rounds         stats.Summary // computation rounds
	Colors         stats.Summary // distinct colors
	RoundsPerDelta stats.Summary // rounds / Δ per run
	PairRate       stats.Summary
	// Quality census relative to Δ (the paper's Conjecture 2 accounting).
	AtMostDelta, DeltaPlus1, DeltaPlus2, Beyond int
	// WorstExcess is max over runs of colors - Δ.
	WorstExcess int
}

// Summarize groups runs by their Group label, preserving first-seen
// order.
func Summarize(runs []Run) []GroupSummary {
	order := []string{}
	byGroup := map[string][]Run{}
	for _, r := range runs {
		if _, ok := byGroup[r.Group]; !ok {
			order = append(order, r.Group)
		}
		byGroup[r.Group] = append(byGroup[r.Group], r)
	}
	var out []GroupSummary
	for _, g := range order {
		rs := byGroup[g]
		gs := GroupSummary{Group: g, Runs: len(rs), WorstExcess: -1 << 30}
		var deltas, rounds, colors, ratios, rates []float64
		for _, r := range rs {
			deltas = append(deltas, float64(r.Delta))
			rounds = append(rounds, float64(r.CompRounds))
			colors = append(colors, float64(r.Colors))
			if r.Delta > 0 {
				ratios = append(ratios, float64(r.CompRounds)/float64(r.Delta))
			}
			rates = append(rates, r.PairRate)
			excess := r.Colors - r.Delta
			if excess > gs.WorstExcess {
				gs.WorstExcess = excess
			}
			switch {
			case excess <= 0:
				gs.AtMostDelta++
			case excess == 1:
				gs.DeltaPlus1++
			case excess == 2:
				gs.DeltaPlus2++
			default:
				gs.Beyond++
			}
		}
		gs.Delta = stats.Summarize(deltas)
		gs.Rounds = stats.Summarize(rounds)
		gs.Colors = stats.Summarize(colors)
		gs.RoundsPerDelta = stats.Summarize(ratios)
		gs.PairRate = stats.Summarize(rates)
		out = append(out, gs)
	}
	return out
}

// RoundsTable renders the rounds-versus-Δ view of a figure: one row per
// series, the shape the paper plots, plus the per-node communication
// load (broadcasts per node per communication round — bounded by the
// model's one-broadcast-per-phase discipline).
func RoundsTable(runs []Run) *stats.Table {
	loads := map[string]*stats.Online{}
	for _, r := range runs {
		if r.N == 0 || r.CompRounds == 0 {
			continue
		}
		o, ok := loads[r.Group]
		if !ok {
			o = &stats.Online{}
			loads[r.Group] = o
		}
		o.Add(float64(r.Messages) / float64(r.N) / float64(r.CompRounds))
	}
	t := stats.NewTable("group", "runs", "Δ mean", "rounds mean", "rounds sd", "rounds/Δ", "pair rate", "msgs/node/round")
	for _, gs := range Summarize(runs) {
		load := 0.0
		if o := loads[gs.Group]; o != nil {
			load = o.Mean()
		}
		t.AddRow(gs.Group, gs.Runs, gs.Delta.Mean, gs.Rounds.Mean, gs.Rounds.Std,
			gs.RoundsPerDelta.Mean, gs.PairRate.Mean, load)
	}
	return t
}

// ColorsTable renders the color-quality census: how many runs stayed at
// Δ, Δ+1, Δ+2, or beyond (the paper's Conjecture 2 accounting).
func ColorsTable(runs []Run) *stats.Table {
	t := stats.NewTable("group", "runs", "colors mean", "≤Δ", "Δ+1", "Δ+2", ">Δ+2", "worst excess")
	for _, gs := range Summarize(runs) {
		t.AddRow(gs.Group, gs.Runs, gs.Colors.Mean,
			gs.AtMostDelta, gs.DeltaPlus1, gs.DeltaPlus2, gs.Beyond, gs.WorstExcess)
	}
	return t
}

// FitRoundsVsDelta fits computation rounds against Δ across all runs —
// the paper's conclusion reports slope ≈ 2 for Algorithm 1 and ≈ 4 for
// Algorithm 2.
func FitRoundsVsDelta(runs []Run) (stats.Fit, error) {
	var xs, ys []float64
	for _, r := range runs {
		xs = append(xs, float64(r.Delta))
		ys = append(ys, float64(r.CompRounds))
	}
	return stats.LinearFit(xs, ys)
}

// CheckShape verifies the qualitative claims a figure's runs must
// satisfy and returns a list of human-readable problems (empty = the
// shape reproduces). Quality bounds are per the paper's §IV; the slope
// band is generous because the absolute constant is implementation
// dependent while linearity and n-independence are the claims.
type Shape struct {
	// MaxColorsExcess bounds colors - Δ over every run (e.g. 2 for
	// Figure 3's "never more than Δ+2"); negative disables the check.
	MaxColorsExcess int
	// RequireLinear demands a rounds~Δ fit with R² at least this value
	// (0 disables).
	MinR2 float64
	// SlopeMin/SlopeMax bound the fitted slope (both 0 = disabled).
	SlopeMin, SlopeMax float64
}

// Check applies the shape to the runs.
func (s Shape) Check(runs []Run) []string {
	var problems []string
	if s.MaxColorsExcess >= 0 {
		for _, r := range runs {
			if r.Colors-r.Delta > s.MaxColorsExcess {
				problems = append(problems, fmt.Sprintf(
					"%s rep %d: %d colors at Δ=%d exceeds Δ+%d",
					r.Group, r.Rep, r.Colors, r.Delta, s.MaxColorsExcess))
			}
			if r.Delta >= 2 && r.Colors > 2*r.Delta-1 {
				problems = append(problems, fmt.Sprintf(
					"%s rep %d: %d colors breaks the 2Δ-1 bound (Δ=%d)",
					r.Group, r.Rep, r.Colors, r.Delta))
			}
		}
	}
	if s.MinR2 > 0 || s.SlopeMin != 0 || s.SlopeMax != 0 {
		fit, err := FitRoundsVsDelta(runs)
		if err != nil {
			problems = append(problems, fmt.Sprintf("rounds~Δ fit failed: %v", err))
			return problems
		}
		if s.MinR2 > 0 && fit.R2 < s.MinR2 {
			problems = append(problems, fmt.Sprintf(
				"rounds~Δ not linear enough: R²=%.3f < %.3f", fit.R2, s.MinR2))
		}
		if (s.SlopeMin != 0 || s.SlopeMax != 0) && (fit.Slope < s.SlopeMin || fit.Slope > s.SlopeMax) {
			problems = append(problems, fmt.Sprintf(
				"rounds~Δ slope %.2f outside [%.2f, %.2f]", fit.Slope, s.SlopeMin, s.SlopeMax))
		}
	}
	return problems
}

// NIndependence checks that, at matched density, larger n does not
// inflate rounds: it compares group means for groups that differ only in
// their "n=<v>" token and returns problems when the bigger-n mean
// exceeds tolerance × the smaller-n mean.
func NIndependence(runs []Run, tolerance float64) []string {
	type key struct{ rest string }
	groups := Summarize(runs)
	byRest := map[string][]GroupSummary{}
	var restOrder []string
	for _, gs := range groups {
		rest := stripNToken(gs.Group)
		if _, ok := byRest[rest]; !ok {
			restOrder = append(restOrder, rest)
		}
		byRest[rest] = append(byRest[rest], gs)
	}
	var problems []string
	for _, rest := range restOrder {
		gss := byRest[rest]
		if len(gss) < 2 {
			continue
		}
		sort.Slice(gss, func(i, j int) bool { return gss[i].N() < gss[j].N() })
		small, big := gss[0], gss[len(gss)-1]
		// Normalize by mean Δ: larger samples skew to slightly larger Δ.
		smallNorm := small.Rounds.Mean / small.Delta.Mean
		bigNorm := big.Rounds.Mean / big.Delta.Mean
		if bigNorm > tolerance*smallNorm {
			problems = append(problems, fmt.Sprintf(
				"%s: rounds/Δ grew with n: %.2f (n=%d) -> %.2f (n=%d)",
				rest, smallNorm, small.N(), bigNorm, big.N()))
		}
	}
	return problems
}

// N extracts the n=<v> token from the group label (0 if absent).
func (gs GroupSummary) N() int {
	var n int
	for _, tok := range splitTokens(gs.Group) {
		if _, err := fmt.Sscanf(tok, "n=%d", &n); err == nil {
			return n
		}
	}
	return 0
}

func stripNToken(group string) string {
	out := ""
	for _, tok := range splitTokens(group) {
		var n int
		if _, err := fmt.Sscanf(tok, "n=%d", &n); err == nil {
			continue
		}
		if out != "" {
			out += " "
		}
		out += tok
	}
	return out
}

func splitTokens(s string) []string {
	var toks []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				toks = append(toks, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		toks = append(toks, cur)
	}
	return toks
}
