package experiment

import (
	"fmt"

	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/rng"
	"dima/internal/stats"
)

// PairingPoint is the aggregate participation of one computation round
// across all repetitions of a pairing-probability probe.
type PairingPoint struct {
	Round  int
	Active int
	Paired int
}

// Rate returns paired/active (0 if no one was active).
func (p PairingPoint) Rate() float64 {
	if p.Active == 0 {
		return 0
	}
	return float64(p.Paired) / float64(p.Active)
}

// PairingProbability measures the per-round probability that an active
// node forms a pair — the empirical counterpart of Proposition 1's
// Equation (1), which lower-bounds it by 1/4 for Algorithm 1. It runs
// reps Erdős–Rényi instances (n vertices, given average degree) and
// aggregates participation round by round; strong selects Algorithm 2.
func PairingProbability(seed uint64, n int, deg float64, reps int, strong bool) ([]PairingPoint, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiment: pairing probe needs repetitions")
	}
	base := rng.New(seed)
	var points []PairingPoint
	for rep := 0; rep < reps; rep++ {
		r := base.Derive(uint64(rep))
		g, err := gen.ErdosRenyiAvgDegree(r, n, deg)
		if err != nil {
			return nil, err
		}
		opt := core.Options{Seed: r.Uint64(), CollectParticipation: true}
		var res *core.Result
		if strong {
			res, err = core.ColorStrong(graph.NewSymmetric(g), opt)
		} else {
			res, err = core.ColorEdges(g, opt)
		}
		if err != nil {
			return nil, err
		}
		if !res.Terminated {
			return nil, fmt.Errorf("experiment: pairing probe run truncated")
		}
		for i, p := range res.Participation {
			for len(points) <= i {
				points = append(points, PairingPoint{Round: len(points)})
			}
			points[i].Active += p.Active
			points[i].Paired += p.Paired
		}
	}
	return points, nil
}

// PairingTable renders the curve, bucketing rounds so the table stays
// readable for long runs.
func PairingTable(points []PairingPoint, bucket int) *stats.Table {
	if bucket < 1 {
		bucket = 1
	}
	t := stats.NewTable("rounds", "active (mean)", "paired (mean)", "pair rate")
	for lo := 0; lo < len(points); lo += bucket {
		hi := lo + bucket
		if hi > len(points) {
			hi = len(points)
		}
		var active, paired int
		for _, p := range points[lo:hi] {
			active += p.Active
			paired += p.Paired
		}
		label := fmt.Sprintf("%d-%d", lo, hi-1)
		if hi-lo == 1 {
			label = fmt.Sprintf("%d", lo)
		}
		rate := 0.0
		if active > 0 {
			rate = float64(paired) / float64(active)
		}
		t.AddRow(label, float64(active)/float64(hi-lo), float64(paired)/float64(hi-lo), rate)
	}
	return t
}
