package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// The scale sweep is the engine benchmark: the same Algorithm 1 run on
// the same Erdős–Rényi instance, once per engine, over a ladder of
// graph sizes up to 10⁶ vertices. It records wall-clock, allocations,
// rounds, and traffic per (engine, size) cell, and cross-checks that
// every engine produced the identical coloring — the cheap form of the
// equivalence property at sizes where the full per-round comparison is
// too expensive. Its JSON report is the repo's benchmark baseline
// (BENCH_PR3.json; methodology in docs/PERFORMANCE.md).

// ScaleConfig configures ScaleSweep. DefaultScaleConfig fills the
// standard ladder.
type ScaleConfig struct {
	// Seed determines the graph instances and run seeds.
	Seed uint64
	// Sizes is the ladder of vertex counts, ascending.
	Sizes []int
	// AvgDeg is the Erdős–Rényi average degree of every instance.
	AvgDeg float64
	// Engines selects which engines run; subset of sync, chan, shard.
	Engines []string
	// Workers is the shard engine's worker count (0 = GOMAXPROCS).
	Workers int
	// ChanCap skips the chan engine on sizes above it: a goroutine and
	// per-link channels per vertex stop being measurable long before the
	// ladder tops out. 0 means no cap.
	ChanCap int
	// VerifyCap bounds full coloring verification; above it only the
	// cross-engine equality check runs. 0 means verify everything.
	VerifyCap int
}

// DefaultScaleConfig returns the standard ladder {10³, 10⁴, 10⁵, 10⁶},
// each size multiplied by scale with a floor of 200, deduplicated.
// Smoke runs use small scales (CI runs -scale 0.05); scale 1 is the
// committed baseline protocol.
func DefaultScaleConfig(seed uint64, scale float64) ScaleConfig {
	var sizes []int
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		s := int(float64(n) * scale)
		if s < 200 {
			s = 200
		}
		if len(sizes) == 0 || sizes[len(sizes)-1] != s {
			sizes = append(sizes, s)
		}
	}
	return ScaleConfig{
		Seed:      seed,
		Sizes:     sizes,
		AvgDeg:    8,
		Engines:   []string{"sync", "chan", "shard"},
		ChanCap:   150_000,
		VerifyCap: 20_000,
	}
}

// ScaleRow is one (engine, size) cell of the sweep.
type ScaleRow struct {
	Engine     string  `json:"engine"`
	Workers    int     `json:"workers,omitempty"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	Delta      int     `json:"delta"`
	CompRounds int     `json:"compRounds"`
	CommRounds int     `json:"commRounds"`
	Colors     int     `json:"colors"`
	Messages   int64   `json:"messages"`
	Deliveries int64   `json:"deliveries"`
	Bytes      int64   `json:"bytes"`
	WallMS     float64 `json:"wallMS"`
	Allocs     uint64  `json:"allocs"`
	AllocMB    float64 `json:"allocMB"`
}

// ScaleReport is the sweep's persistable outcome, including enough of
// the configuration and environment to make the numbers comparable.
type ScaleReport struct {
	Seed       uint64     `json:"seed"`
	AvgDeg     float64    `json:"avgDeg"`
	Workers    int        `json:"workers,omitempty"`
	GoMaxProcs int        `json:"gomaxprocs"`
	NumCPU     int        `json:"numCPU"`
	GoVersion  string     `json:"goVersion"`
	Rows       []ScaleRow `json:"rows"`
}

// ScaleSweep runs the benchmark. Engines within one size share the
// graph instance and run seed, so their colorings must be identical;
// any divergence is an error, not a slow row.
func ScaleSweep(cfg ScaleConfig, progress func(ScaleRow)) (*ScaleReport, error) {
	return ScaleSweepCtx(context.Background(), cfg, progress)
}

// ScaleSweepCtx is ScaleSweep bounded by ctx: cancellation aborts the
// in-flight cell at its next round barrier — essential on the
// million-vertex rungs, where a single cell runs for minutes — and
// returns ctx's error.
func ScaleSweepCtx(ctx context.Context, cfg ScaleConfig, progress func(ScaleRow)) (*ScaleReport, error) {
	if cfg.AvgDeg <= 0 {
		return nil, fmt.Errorf("experiment: scale sweep needs a positive average degree, got %g", cfg.AvgDeg)
	}
	engines := map[string]net.Engine{"sync": net.RunSync, "chan": net.RunChan, "shard": net.RunShard}
	for _, name := range cfg.Engines {
		if engines[name] == nil {
			return nil, fmt.Errorf("experiment: unknown engine %q in scale sweep", name)
		}
	}
	rep := &ScaleReport{
		Seed:       cfg.Seed,
		AvgDeg:     cfg.AvgDeg,
		Workers:    cfg.Workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	base := rng.New(cfg.Seed)
	for _, n := range cfg.Sizes {
		gr := base.Derive(uint64(n))
		g, err := gen.ErdosRenyiAvgDegree(gr, n, cfg.AvgDeg)
		if err != nil {
			return nil, err
		}
		runSeed := gr.Uint64()
		var reference []int
		for _, name := range cfg.Engines {
			if name == "chan" && cfg.ChanCap > 0 && n > cfg.ChanCap {
				continue
			}
			opt := core.Options{Seed: runSeed, Engine: engines[name]}
			if name == "shard" {
				opt.Workers = cfg.Workers
			}
			var res *core.Result
			var runErr error
			start := time.Now()
			alloc := metrics.MeasureAllocs(func() {
				res, runErr = core.ColorEdgesCtx(ctx, g, opt)
			})
			wall := time.Since(start)
			if runErr != nil {
				return nil, fmt.Errorf("experiment: scale %s n=%d: %v", name, n, runErr)
			}
			if res.Aborted {
				return nil, fmt.Errorf("experiment: scale %s n=%d: %w", name, n, ctx.Err())
			}
			if !res.Terminated {
				return nil, fmt.Errorf("experiment: scale %s n=%d: truncated at %d rounds", name, n, res.CompRounds)
			}
			if err := checkScaleRun(g, name, n, res, &reference, cfg.VerifyCap); err != nil {
				return nil, err
			}
			row := ScaleRow{
				Engine:     name,
				N:          g.N(),
				M:          g.M(),
				Delta:      g.MaxDegree(),
				CompRounds: res.CompRounds,
				CommRounds: res.CommRounds,
				Colors:     res.NumColors,
				Messages:   res.Messages,
				Deliveries: res.Deliveries,
				Bytes:      res.Bytes,
				WallMS:     float64(wall.Microseconds()) / 1000,
				Allocs:     alloc.Allocs,
				AllocMB:    float64(alloc.Bytes) / (1 << 20),
			}
			if name == "shard" {
				row.Workers = rep.GoMaxProcs
				if cfg.Workers > 0 {
					row.Workers = cfg.Workers
				}
			}
			rep.Rows = append(rep.Rows, row)
			if progress != nil {
				progress(row)
			}
		}
	}
	return rep, nil
}

// checkScaleRun enforces correctness per cell: the first engine's
// coloring becomes the reference the others must equal, and small
// instances additionally get a full validity verification.
func checkScaleRun(g *graph.Graph, name string, n int, res *core.Result, reference *[]int, verifyCap int) error {
	if *reference == nil {
		*reference = res.Colors
		if verifyCap <= 0 || n <= verifyCap {
			if v := verify.EdgeColoring(g, res.Colors); len(v) != 0 {
				return fmt.Errorf("experiment: scale %s n=%d: invalid coloring: %v", name, n, v[0])
			}
		}
		return nil
	}
	if len(res.Colors) != len(*reference) {
		return fmt.Errorf("experiment: scale %s n=%d: coloring length diverged across engines", name, n)
	}
	for i, c := range res.Colors {
		if c != (*reference)[i] {
			return fmt.Errorf("experiment: scale %s n=%d: edge %d colored %d, reference engine says %d",
				name, n, i, c, (*reference)[i])
		}
	}
	return nil
}

// WriteScaleReport writes the report as indented JSON.
func WriteScaleReport(w io.Writer, rep *ScaleReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
