package experiment

import (
	"strings"
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/rng"
)

func TestRunGridSmallFig3(t *testing.T) {
	specs := Fig3Specs(0.04) // 2 reps per cell
	runs, err := RunGrid(specs, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 12 { // 6 cells × 2 reps
		t.Fatalf("got %d runs", len(runs))
	}
	for _, r := range runs {
		if r.Delta <= 0 || r.CompRounds <= 0 || r.Colors <= 0 {
			t.Fatalf("degenerate run: %+v", r)
		}
		if r.PairRate <= 0 || r.PairRate > 1 {
			t.Fatalf("pair rate %v out of range", r.PairRate)
		}
	}
}

func TestRunGridDeterministicAcrossWorkerCounts(t *testing.T) {
	specs := Fig3Specs(0.04)[:2]
	a, err := RunGrid(specs, Config{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGrid(specs, Config{Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestRunGridRejectsEmptySpec(t *testing.T) {
	_, err := RunGrid([]Spec{{Group: "x", Reps: 0}}, Config{})
	if err == nil {
		t.Fatal("accepted zero-rep spec")
	}
}

func TestSpecFamilies(t *testing.T) {
	if got := len(Fig3Specs(1)); got != 6 {
		t.Fatalf("fig3 cells = %d", got)
	}
	if got := len(Fig4Specs(1)); got != 6 {
		t.Fatalf("fig4 cells = %d", got)
	}
	if got := len(Fig5Specs(1)); got != 6 {
		t.Fatalf("fig5 cells = %d", got)
	}
	if got := len(Fig6Specs(1)); got != 4 {
		t.Fatalf("fig6 cells = %d", got)
	}
	// Full scale keeps the paper's 50 reps.
	if Fig3Specs(1)[0].Reps != 50 {
		t.Fatalf("full-scale reps = %d", Fig3Specs(1)[0].Reps)
	}
	// Scaled-down floors at 2.
	if Fig3Specs(0.0001)[0].Reps != 2 {
		t.Fatalf("floored reps = %d", Fig3Specs(0.0001)[0].Reps)
	}
	// Spec generators must be usable.
	r := rng.New(3)
	for _, s := range [][]Spec{Fig3Specs(0.04), Fig4Specs(0.04), Fig5Specs(0.04), Fig6Specs(0.04)} {
		for _, spec := range s {
			g, err := spec.Make(r)
			if err != nil {
				t.Fatalf("%s: %v", spec.Group, err)
			}
			if g.N() == 0 {
				t.Fatalf("%s: empty graph", spec.Group)
			}
		}
	}
}

func TestFig6SpecsAreStrong(t *testing.T) {
	for _, s := range Fig6Specs(0.04) {
		if !s.Strong {
			t.Fatalf("%s: not marked strong", s.Group)
		}
	}
}

func fakeRuns() []Run {
	return []Run{
		{Group: "er n=200 deg=4", Rep: 0, N: 200, Delta: 10, CompRounds: 20, Colors: 10, PairRate: 0.4},
		{Group: "er n=200 deg=4", Rep: 1, N: 200, Delta: 12, CompRounds: 24, Colors: 13, PairRate: 0.42},
		{Group: "er n=400 deg=4", Rep: 0, N: 400, Delta: 11, CompRounds: 22, Colors: 12, PairRate: 0.41},
		{Group: "er n=400 deg=4", Rep: 1, N: 400, Delta: 11, CompRounds: 23, Colors: 14, PairRate: 0.39},
	}
}

func TestSummarize(t *testing.T) {
	gs := Summarize(fakeRuns())
	if len(gs) != 2 {
		t.Fatalf("groups = %d", len(gs))
	}
	g0 := gs[0]
	if g0.Group != "er n=200 deg=4" || g0.Runs != 2 {
		t.Fatalf("%+v", g0)
	}
	if g0.Delta.Mean != 11 || g0.Rounds.Mean != 22 {
		t.Fatalf("means: %+v", g0)
	}
	if g0.AtMostDelta != 1 || g0.DeltaPlus1 != 1 {
		t.Fatalf("census: %+v", g0)
	}
	if g0.WorstExcess != 1 {
		t.Fatalf("worst excess %d", g0.WorstExcess)
	}
	g1 := gs[1]
	if g1.DeltaPlus1 != 1 || g1.Beyond != 1 || g1.WorstExcess != 3 {
		t.Fatalf("census: %+v", g1)
	}
}

func TestTables(t *testing.T) {
	rt := RoundsTable(fakeRuns()).String()
	if !strings.Contains(rt, "er n=200 deg=4") || !strings.Contains(rt, "rounds/Δ") {
		t.Fatalf("rounds table:\n%s", rt)
	}
	ct := ColorsTable(fakeRuns()).String()
	if !strings.Contains(ct, "worst excess") {
		t.Fatalf("colors table:\n%s", ct)
	}
}

func TestFitRoundsVsDelta(t *testing.T) {
	fit, err := FitRoundsVsDelta(fakeRuns())
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1 || fit.Slope > 3 {
		t.Fatalf("slope %v", fit.Slope)
	}
}

func TestShapeCheck(t *testing.T) {
	runs := fakeRuns()
	if p := (Shape{MaxColorsExcess: 3}).Check(runs); len(p) != 0 {
		t.Fatalf("lenient shape flagged: %v", p)
	}
	p := (Shape{MaxColorsExcess: 1}).Check(runs)
	if len(p) != 1 || !strings.Contains(p[0], "exceeds") {
		t.Fatalf("strict shape: %v", p)
	}
	// 2Δ-1 violation detection.
	bad := []Run{{Group: "x", Delta: 3, Colors: 6, CompRounds: 5}}
	p = (Shape{MaxColorsExcess: 99}).Check(bad)
	if len(p) != 1 || !strings.Contains(p[0], "2Δ-1") {
		t.Fatalf("bound check: %v", p)
	}
	// Slope band.
	p = (Shape{MaxColorsExcess: -1, SlopeMin: 5, SlopeMax: 9}).Check(runs)
	if len(p) != 1 || !strings.Contains(p[0], "slope") {
		t.Fatalf("slope check: %v", p)
	}
}

func TestNIndependence(t *testing.T) {
	if p := NIndependence(fakeRuns(), 1.5); len(p) != 0 {
		t.Fatalf("matched groups flagged: %v", p)
	}
	bad := []Run{
		{Group: "er n=100 deg=4", Delta: 10, CompRounds: 20},
		{Group: "er n=400 deg=4", Delta: 10, CompRounds: 90},
	}
	if p := NIndependence(bad, 1.5); len(p) != 1 {
		t.Fatalf("n-dependence missed: %v", p)
	}
}

func TestPairRateMatchesTheoryOnER(t *testing.T) {
	// Equation (1): an active node pairs with probability at least ~1/4
	// per round. Measure the empirical rate on a modest ER grid.
	specs := []Spec{{
		Group: "probe",
		Make: func(r *rng.Rand) (*graph.Graph, error) {
			return gen.ErdosRenyiAvgDegree(r, 150, 8)
		},
		Reps: 6,
	}}
	runs, err := RunGrid(specs, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	gs := Summarize(runs)[0]
	if gs.PairRate.Mean < 0.25 {
		t.Fatalf("mean pair rate %.3f below 1/4", gs.PairRate.Mean)
	}
	if gs.PairRate.Mean > 0.6 {
		t.Fatalf("mean pair rate %.3f suspiciously high", gs.PairRate.Mean)
	}
}

func TestRunComparison(t *testing.T) {
	runs, err := RunComparison(5, 80, []float64{4, 8}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2*3*4 {
		t.Fatalf("got %d comparison runs", len(runs))
	}
	byAlgo := map[string][]CompareRun{}
	for _, r := range runs {
		if r.Algo == "" {
			t.Fatalf("empty run slot: %+v", r)
		}
		byAlgo[r.Algo] = append(byAlgo[r.Algo], r)
	}
	if len(byAlgo) != 4 {
		t.Fatalf("algorithms: %d", len(byAlgo))
	}
	// Misra-Gries must win or tie on colors against dima on every instance.
	for i := range byAlgo["dima (alg 1)"] {
		d := byAlgo["dima (alg 1)"][i]
		v := byAlgo["misra-gries"][i]
		if v.Colors > d.Delta+1 {
			t.Fatalf("misra-gries exceeded Δ+1: %+v", v)
		}
	}
	tbl := ComparisonTable(runs).String()
	for _, want := range []string{"dima (alg 1)", "simple (ref 10)", "central matcher", "misra-gries"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestRunComparisonRejectsZeroReps(t *testing.T) {
	if _, err := RunComparison(1, 10, []float64{4}, 0, 0); err == nil {
		t.Fatal("accepted zero reps")
	}
}

func TestRunComparisonDeterministic(t *testing.T) {
	a, err := RunComparison(9, 50, []float64{4}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComparison(9, 50, []float64{4}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("comparison diverged across worker counts at %d", i)
		}
	}
}

func TestPairingProbability(t *testing.T) {
	points, err := PairingProbability(3, 120, 8, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	// Early rounds (everyone active) must clear the paper's 1/4 bound.
	for _, p := range points[:3] {
		if p.Rate() < 0.25 {
			t.Fatalf("round %d pair rate %.3f below 1/4", p.Round, p.Rate())
		}
		if p.Paired > p.Active {
			t.Fatalf("round %d: %d paired of %d active", p.Round, p.Paired, p.Active)
		}
	}
	tbl := PairingTable(points, 5).String()
	if !strings.Contains(tbl, "pair rate") {
		t.Fatalf("table:\n%s", tbl)
	}
	if _, err := PairingProbability(1, 10, 4, 0, false); err == nil {
		t.Fatal("accepted zero reps")
	}
}

func TestPairingProbabilityStrong(t *testing.T) {
	points, err := PairingProbability(4, 60, 4, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if p.Paired > p.Active {
			t.Fatalf("round %d: %d paired of %d active", p.Round, p.Paired, p.Active)
		}
	}
}

func TestRunStrongComparison(t *testing.T) {
	runs, err := RunStrongComparison(6, 50, []float64{4}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1*2*3 {
		t.Fatalf("got %d strong comparison runs", len(runs))
	}
	for _, r := range runs {
		if r.Channels < r.LowerBound {
			t.Fatalf("%s reported %d channels below lower bound %d", r.Algo, r.Channels, r.LowerBound)
		}
	}
	tbl := StrongComparisonTable(runs).String()
	for _, want := range []string{"dima2ed (alg 2)", "simple-strong", "greedy (central)", "lower bound"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	if _, err := RunStrongComparison(1, 10, []float64{4}, 0, 0); err == nil {
		t.Fatal("accepted zero reps")
	}
}

func TestSaveLoadRuns(t *testing.T) {
	runs := fakeRuns()
	var b strings.Builder
	if err := SaveRuns(&b, "fig3", 2012, runs); err != nil {
		t.Fatal(err)
	}
	name, seed, got, err := LoadRuns(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if name != "fig3" || seed != 2012 || len(got) != len(runs) {
		t.Fatalf("round trip: %q %d %d runs", name, seed, len(got))
	}
	for i := range runs {
		if got[i] != runs[i] {
			t.Fatalf("run %d differs", i)
		}
	}
	if _, _, _, err := LoadRuns(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("accepted unknown version")
	}
	if _, _, _, err := LoadRuns(strings.NewReader(`garbage`)); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestShapeStableAcrossSeeds(t *testing.T) {
	// The reproduction claims must not be a single-seed coincidence:
	// fig3's shape checks pass for several master seeds at small scale.
	shape := Shape{MaxColorsExcess: 2, MinR2: 0.6}
	for _, seed := range []uint64{1, 99, 31337} {
		runs, err := RunGrid(Fig3Specs(0.06), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if p := shape.Check(runs); len(p) != 0 {
			t.Fatalf("seed %d: shape broke: %v", seed, p)
		}
		if p := NIndependence(runs, 1.6); len(p) != 0 {
			t.Fatalf("seed %d: n-independence broke: %v", seed, p)
		}
	}
}

func TestConvergence(t *testing.T) {
	points, err := Convergence(7, 100, 6, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	prev := -1.0
	for _, p := range points {
		if p.Fraction < prev-1e-9 {
			t.Fatalf("fraction not monotone at round %d: %v after %v", p.Round, p.Fraction, prev)
		}
		prev = p.Fraction
	}
	last := points[len(points)-1].Fraction
	if last < 0.999 || last > 1.001 {
		t.Fatalf("final fraction %v, want 1", last)
	}
	// Strong variant terminates at 1 as well.
	spoints, err := Convergence(8, 50, 4, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	slast := spoints[len(spoints)-1].Fraction
	if slast < 0.999 || slast > 1.001 {
		t.Fatalf("strong final fraction %v", slast)
	}
	plot := ConvergencePlot(map[string][]ConvergencePoint{"a": points}, []string{"a"})
	if !strings.Contains(plot, "cumulative fraction") {
		t.Fatalf("plot:\n%s", plot)
	}
	if _, err := Convergence(1, 10, 4, 0, false); err == nil {
		t.Fatal("accepted zero reps")
	}
}
