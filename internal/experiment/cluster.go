package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// The cluster sweep is the tcp engine's process-scaling benchmark and
// its standing equivalence audit: the same Algorithm 1 run on the same
// Erdős–Rényi instance, once with the sequential reference engine and
// once per node-process count, over a ladder of edge counts. Wall-clock
// here is dominated by serialization and loopback round-trips, not by
// parallel speedup — the interesting columns are the per-round byte
// volume the wire carries and the overhead factor against the sync row.
// Every cluster coloring is cross-checked element-wise against the sync
// reference; any divergence is an error, not a slow row.

// ClusterConfig configures ClusterSweep. DefaultClusterConfig fills the
// standard ladder.
type ClusterConfig struct {
	// Seed determines the graph instances and run seeds.
	Seed uint64
	// Edges is the ladder of target edge counts, ascending. The vertex
	// count of each rung is derived as 2·edges/AvgDeg.
	Edges []int
	// AvgDeg is the Erdős–Rényi average degree of every instance.
	AvgDeg float64
	// NodesSet is the node-process counts to sweep; every entry must be
	// positive. Duplicates collapse.
	NodesSet []int
	// BarrierTimeout is passed to every cluster run; 0 means the engine
	// default.
	BarrierTimeout time.Duration
	// VerifyCap bounds full coloring verification by edge count; above
	// it only the cross-engine equality check runs. 0 verifies all.
	VerifyCap int
}

// DefaultClusterConfig returns the standard ladder {10⁴, 10⁵} edges,
// each multiplied by scale with a floor of 2,000 edges, swept over
// {1, 2, 4} node processes. The rungs are an order of magnitude below
// the in-process parallel sweep's: every message crosses a socket here.
func DefaultClusterConfig(seed uint64, scale float64) ClusterConfig {
	var edges []int
	for _, m := range []int{10_000, 100_000} {
		e := int(float64(m) * scale)
		if e < 2_000 {
			e = 2_000
		}
		if len(edges) == 0 || edges[len(edges)-1] != e {
			edges = append(edges, e)
		}
	}
	return ClusterConfig{
		Seed:      seed,
		Edges:     edges,
		AvgDeg:    8,
		NodesSet:  []int{1, 2, 4},
		VerifyCap: 200_000,
	}
}

// ClusterRow is one (engine, nodes, size) cell of the sweep.
type ClusterRow struct {
	// Engine is "sync" for the reference row or "tcp".
	Engine string `json:"engine"`
	// Nodes is the node-process count (0 for the sync row).
	Nodes int `json:"nodes,omitempty"`
	N     int `json:"n"`
	M     int `json:"m"`
	Delta int `json:"delta"`

	CompRounds int   `json:"compRounds"`
	CommRounds int   `json:"commRounds"`
	Colors     int   `json:"colors"`
	Messages   int64 `json:"messages"`
	Deliveries int64 `json:"deliveries"`
	// Bytes is the protocol payload volume (identical across engines by
	// the equivalence guarantee; the wire additionally pays framing).
	Bytes int64 `json:"bytes"`

	WallMS float64 `json:"wallMS"`
	// Overhead is this row's wall-clock ratio to the sync row of the
	// same size (1.0 for the sync row itself) — the price of crossing
	// process boundaries.
	Overhead float64 `json:"overhead,omitempty"`
}

// ClusterReport is the sweep's persistable outcome.
type ClusterReport struct {
	Seed       uint64       `json:"seed"`
	AvgDeg     float64      `json:"avgDeg"`
	NodesSet   []int        `json:"nodesSet"`
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numCPU"`
	GoVersion  string       `json:"goVersion"`
	Rows       []ClusterRow `json:"rows"`
}

// ClusterSweep runs the benchmark. All runs within one size share the
// graph instance and run seed, so their colorings must be identical to
// the sync reference; any divergence is an error.
func ClusterSweep(cfg ClusterConfig, progress func(ClusterRow)) (*ClusterReport, error) {
	return ClusterSweepCtx(context.Background(), cfg, progress)
}

// ClusterSweepCtx is ClusterSweep bounded by ctx: cancellation aborts
// the in-flight cell at its next round barrier and returns ctx's error.
func ClusterSweepCtx(ctx context.Context, cfg ClusterConfig, progress func(ClusterRow)) (*ClusterReport, error) {
	if cfg.AvgDeg <= 0 {
		return nil, fmt.Errorf("experiment: cluster sweep needs a positive average degree, got %g", cfg.AvgDeg)
	}
	if len(cfg.Edges) == 0 {
		return nil, fmt.Errorf("experiment: cluster sweep needs at least one edge-count rung")
	}
	nodesSet, err := resolveNodesSet(cfg.NodesSet)
	if err != nil {
		return nil, err
	}
	rep := &ClusterReport{
		Seed:       cfg.Seed,
		AvgDeg:     cfg.AvgDeg,
		NodesSet:   nodesSet,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	base := rng.New(cfg.Seed)
	for _, edges := range cfg.Edges {
		n := int(2 * float64(edges) / cfg.AvgDeg)
		if n < 2 {
			n = 2
		}
		gr := base.Derive(uint64(n))
		g, err := gen.ErdosRenyiAvgDegree(gr, n, cfg.AvgDeg)
		if err != nil {
			return nil, err
		}
		runSeed := gr.Uint64()

		syncRow, reference, err := clusterCell(ctx, g, "sync", 0, core.Options{Seed: runSeed})
		if err != nil {
			return nil, err
		}
		if cfg.VerifyCap <= 0 || g.M() <= cfg.VerifyCap {
			if v := verify.EdgeColoring(g, reference); len(v) != 0 {
				return nil, fmt.Errorf("experiment: cluster sync m=%d: invalid coloring: %v", g.M(), v[0])
			}
		}
		rep.Rows = append(rep.Rows, *syncRow)
		if progress != nil {
			progress(*syncRow)
		}

		for _, k := range nodesSet {
			opt := core.Options{Seed: runSeed, Cluster: &net.TCPCluster{
				Nodes:          k,
				BarrierTimeout: cfg.BarrierTimeout,
			}}
			row, colors, err := clusterCell(ctx, g, "tcp", k, opt)
			if err != nil {
				return nil, err
			}
			for i, c := range colors {
				if c != reference[i] {
					return nil, fmt.Errorf("experiment: cluster tcp nodes=%d m=%d: edge %d colored %d, sync says %d",
						k, g.M(), i, c, reference[i])
				}
			}
			if row.CompRounds != syncRow.CompRounds || row.Messages != syncRow.Messages ||
				row.Bytes != syncRow.Bytes || row.Deliveries != syncRow.Deliveries {
				return nil, fmt.Errorf("experiment: cluster tcp nodes=%d m=%d: traffic diverged from sync (rounds %d/%d, messages %d/%d)",
					k, g.M(), row.CompRounds, syncRow.CompRounds, row.Messages, syncRow.Messages)
			}
			if syncRow.WallMS > 0 && row.WallMS > 0 {
				row.Overhead = row.WallMS / syncRow.WallMS
			}
			rep.Rows = append(rep.Rows, *row)
			if progress != nil {
				progress(*row)
			}
		}
	}
	return rep, nil
}

// resolveNodesSet sorts and deduplicates, rejecting non-positive
// entries — a zero node count has no meaning for separate processes.
func resolveNodesSet(set []int) ([]int, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("experiment: cluster sweep needs at least one node count")
	}
	out := append([]int(nil), set...)
	for _, k := range out {
		if k < 1 {
			return nil, fmt.Errorf("experiment: cluster sweep needs positive node counts, got %d", k)
		}
	}
	sort.Ints(out)
	dedup := out[:0]
	for i, k := range out {
		if i == 0 || k != out[i-1] {
			dedup = append(dedup, k)
		}
	}
	return dedup, nil
}

// clusterCell times one run and packages it as a row.
func clusterCell(ctx context.Context, g *graph.Graph, engine string, nodes int, opt core.Options) (*ClusterRow, []int, error) {
	// No allocation accounting here: most of the work happens in child
	// processes, where this process's allocator counters cannot see it.
	start := time.Now()
	res, runErr := core.ColorEdgesCtx(ctx, g, opt)
	wall := time.Since(start)
	if runErr != nil {
		return nil, nil, fmt.Errorf("experiment: cluster %s nodes=%d m=%d: %v", engine, nodes, g.M(), runErr)
	}
	if res.Aborted {
		return nil, nil, fmt.Errorf("experiment: cluster %s nodes=%d m=%d: %w", engine, nodes, g.M(), ctx.Err())
	}
	if !res.Terminated {
		return nil, nil, fmt.Errorf("experiment: cluster %s nodes=%d m=%d: truncated at %d rounds",
			engine, nodes, g.M(), res.CompRounds)
	}
	return &ClusterRow{
		Engine:     engine,
		Nodes:      nodes,
		N:          g.N(),
		M:          g.M(),
		Delta:      g.MaxDegree(),
		CompRounds: res.CompRounds,
		CommRounds: res.CommRounds,
		Colors:     res.NumColors,
		Messages:   res.Messages,
		Deliveries: res.Deliveries,
		Bytes:      res.Bytes,
		WallMS:     float64(wall.Microseconds()) / 1e3,
	}, res.Colors, nil
}

// WriteClusterReport writes the report as indented JSON.
func WriteClusterReport(w io.Writer, rep *ClusterReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
