package experiment

import (
	"os"
	"testing"

	"dima/internal/net"
)

// TestMain lets this test binary double as the cluster node binary:
// ClusterSweep's runs spawn node processes by re-exec'ing the current
// executable, and the package's core import has registered the real
// node factories by the time MaybeNodeMain runs the shard.
func TestMain(m *testing.M) {
	net.MaybeNodeMain()
	os.Exit(m.Run())
}

func TestClusterSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns node processes")
	}
	cfg := ClusterConfig{
		Seed:     5,
		Edges:    []int{600, 1_500},
		AvgDeg:   6,
		NodesSet: []int{1, 3},
	}
	var seen []ClusterRow
	rep, err := ClusterSweep(cfg, func(row ClusterRow) { seen = append(seen, row) })
	if err != nil {
		t.Fatal(err)
	}
	// Per rung: one sync reference row plus one row per node count.
	want := len(cfg.Edges) * (1 + len(cfg.NodesSet))
	if len(rep.Rows) != want {
		t.Fatalf("got %d rows, want %d: %+v", len(rep.Rows), want, rep.Rows)
	}
	if len(seen) != len(rep.Rows) {
		t.Fatalf("progress callback saw %d rows, report has %d", len(seen), len(rep.Rows))
	}
	byM := map[int][]ClusterRow{}
	for _, row := range rep.Rows {
		byM[row.M] = append(byM[row.M], row)
		if row.WallMS < 0 {
			t.Fatalf("negative wall time: %+v", row)
		}
	}
	for m, rows := range byM {
		if rows[0].Engine != "sync" || rows[0].Nodes != 0 {
			t.Fatalf("m=%d: first row is %+v, want the sync reference", m, rows[0])
		}
		for _, row := range rows[1:] {
			// The sweep already cross-checked colorings and traffic; pin
			// the reported aggregates and the overhead bookkeeping too.
			if row.Engine != "tcp" {
				t.Fatalf("m=%d: row engine %q, want tcp", m, row.Engine)
			}
			if row.CompRounds != rows[0].CompRounds || row.Colors != rows[0].Colors ||
				row.Messages != rows[0].Messages || row.Bytes != rows[0].Bytes {
				t.Fatalf("m=%d: nodes=%d disagrees with sync: %+v vs %+v", m, row.Nodes, rows[0], row)
			}
			if row.Overhead <= 0 {
				t.Fatalf("m=%d: nodes=%d row has no overhead ratio: %+v", m, row.Nodes, row)
			}
		}
	}
}

func TestClusterSweepRejectsBadConfig(t *testing.T) {
	base := ClusterConfig{Seed: 1, Edges: []int{100}, AvgDeg: 4, NodesSet: []int{1}}

	bad := base
	bad.AvgDeg = 0
	if _, err := ClusterSweep(bad, nil); err == nil {
		t.Fatal("zero average degree accepted")
	}
	bad = base
	bad.Edges = nil
	if _, err := ClusterSweep(bad, nil); err == nil {
		t.Fatal("empty edge ladder accepted")
	}
	bad = base
	bad.NodesSet = nil
	if _, err := ClusterSweep(bad, nil); err == nil {
		t.Fatal("empty node set accepted")
	}
	bad = base
	bad.NodesSet = []int{0}
	if _, err := ClusterSweep(bad, nil); err == nil {
		t.Fatal("zero node count accepted")
	}
}
