// Package experiment defines and runs the paper's evaluation (§IV):
// every figure is a grid of (graph family, size, density) cells, each
// run repeatedly with fresh random graphs; results aggregate into
// series of rounds-versus-Δ and color-quality censuses.
//
// The canonical experiments:
//
//	Fig3 — Algorithm 1 on Erdős–Rényi graphs (n ∈ {200,400}, avg degree
//	       {4,8,16}, 50 graphs per cell).
//	Fig4 — Algorithm 1 on scale-free graphs (n ∈ {100,400}, attachment
//	       weighting {0.5,1.0,1.5}, 50 per cell).
//	Fig5 — Algorithm 1 on small-world graphs (n ∈ {16,64,256}, sparse
//	       and dense lattices, 50 per cell).
//	Fig6 — Algorithm 2 on symmetric directed Erdős–Rényi graphs
//	       (n ∈ {200,400}, avg degree {4,8}, 50 per cell).
//
// Scale < 1 shrinks the repetition counts proportionally (minimum 2)
// for quick runs and benchmarks; scale 1 is the paper's full protocol.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/rng"
)

// Spec describes one experiment cell: how to build a graph and which
// algorithm to run on it.
type Spec struct {
	// Group labels the series this cell belongs to in reports.
	Group string
	// Make builds one random instance.
	Make func(r *rng.Rand) (*graph.Graph, error)
	// Strong selects Algorithm 2 on the symmetric digraph of the
	// instance; otherwise Algorithm 1 runs on the instance itself.
	Strong bool
	// Reps is the number of independent (graph, run) repetitions.
	Reps int
}

// Run is the outcome of one repetition.
type Run struct {
	Group      string
	Rep        int
	N, M       int
	Delta      int
	CompRounds int
	Colors     int
	MaxColor   int
	Messages   int64
	// PairRate is the aggregate fraction of (active node, round) pairs
	// that formed a pair — the empirical Equation (1) quantity.
	PairRate float64
}

// Config controls grid execution.
type Config struct {
	// Seed determines every graph and run in the grid.
	Seed uint64
	// Workers bounds parallel runs; 0 means GOMAXPROCS.
	Workers int
	// Options is the base algorithm configuration; per-run seeds are
	// derived from Seed. CollectParticipation is forced on.
	Options core.Options
}

// RunGrid executes every (spec, rep) cell, in parallel, and returns the
// runs grouped in spec order (deterministic for a given seed regardless
// of worker count).
func RunGrid(specs []Spec, cfg Config) ([]Run, error) {
	return RunGridCtx(context.Background(), specs, cfg)
}

// RunGridCtx is RunGrid bounded by ctx: cancellation stops dispatching
// new cells, aborts in-flight runs at their next round barrier, and
// returns ctx's error. Completed cells are discarded — a sweep is only
// meaningful whole.
func RunGridCtx(ctx context.Context, specs []Spec, cfg Config) ([]Run, error) {
	type job struct {
		spec    int
		rep     int
		runSeed uint64
	}
	var jobs []job
	base := rng.New(cfg.Seed)
	for si, s := range specs {
		if s.Reps <= 0 {
			return nil, fmt.Errorf("experiment: spec %q has no repetitions", s.Group)
		}
		for rep := 0; rep < s.Reps; rep++ {
			jobs = append(jobs, job{spec: si, rep: rep,
				runSeed: base.Derive(uint64(si)).Derive(uint64(rep)).Uint64()})
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Run, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ch {
				j := jobs[idx]
				results[idx], errs[idx] = runOne(ctx, specs[j.spec], j.rep, j.runSeed, cfg.Options)
			}
		}()
	}
dispatch:
	for idx := range jobs {
		select {
		case ch <- idx:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func runOne(ctx context.Context, spec Spec, rep int, seed uint64, opt core.Options) (Run, error) {
	gr := rng.New(seed)
	g, err := spec.Make(gr)
	if err != nil {
		return Run{}, fmt.Errorf("experiment: %s rep %d: %v", spec.Group, rep, err)
	}
	opt.Seed = gr.Uint64()
	opt.CollectParticipation = true
	var res *core.Result
	if spec.Strong {
		res, err = core.ColorStrongCtx(ctx, graph.NewSymmetric(g), opt)
	} else {
		res, err = core.ColorEdgesCtx(ctx, g, opt)
	}
	if err != nil {
		return Run{}, fmt.Errorf("experiment: %s rep %d: %v", spec.Group, rep, err)
	}
	if res.Aborted {
		return Run{}, fmt.Errorf("experiment: %s rep %d: %w", spec.Group, rep, ctx.Err())
	}
	if !res.Terminated {
		return Run{}, fmt.Errorf("experiment: %s rep %d: run truncated at %d rounds",
			spec.Group, rep, res.CompRounds)
	}
	run := Run{
		Group: spec.Group, Rep: rep,
		N: g.N(), M: g.M(), Delta: g.MaxDegree(),
		CompRounds: res.CompRounds,
		Colors:     res.NumColors,
		MaxColor:   res.MaxColor,
		Messages:   res.Messages,
	}
	var active, paired int
	for _, p := range res.Participation {
		active += p.Active
		paired += p.Paired
	}
	if active > 0 {
		run.PairRate = float64(paired) / float64(active)
	}
	return run, nil
}

// reps scales the paper's 50-repetition cells, with a floor of 2.
func reps(scale float64) int {
	r := int(50*scale + 0.5)
	if r < 2 {
		r = 2
	}
	return r
}

// Fig3Specs returns the §IV-A grid: Algorithm 1 on Erdős–Rényi graphs.
func Fig3Specs(scale float64) []Spec {
	var specs []Spec
	for _, n := range []int{200, 400} {
		for _, deg := range []float64{4, 8, 16} {
			n, deg := n, deg
			specs = append(specs, Spec{
				Group: fmt.Sprintf("er n=%d deg=%g", n, deg),
				Make: func(r *rng.Rand) (*graph.Graph, error) {
					return gen.ErdosRenyiAvgDegree(r, n, deg)
				},
				Reps: reps(scale),
			})
		}
	}
	return specs
}

// Fig4Specs returns the §IV-B grid: Algorithm 1 on scale-free graphs
// with increasingly disparate attachment weighting.
func Fig4Specs(scale float64) []Spec {
	var specs []Spec
	for _, n := range []int{100, 400} {
		for _, power := range []float64{0.5, 1.0, 1.5} {
			n, power := n, power
			specs = append(specs, Spec{
				Group: fmt.Sprintf("sf n=%d power=%g", n, power),
				Make: func(r *rng.Rand) (*graph.Graph, error) {
					return gen.BarabasiAlbert(r, n, 2, power)
				},
				Reps: reps(scale),
			})
		}
	}
	return specs
}

// Fig5Specs returns the §IV-C grid: Algorithm 1 on small-world graphs,
// sparse (k=2) and dense (k scaled so the dense 256-vertex cell reaches
// the paper's average Δ ≈ 44).
func Fig5Specs(scale float64) []Spec {
	var specs []Spec
	for _, n := range []int{16, 64, 256} {
		for _, dense := range []bool{false, true} {
			n, dense := n, dense
			k := 2
			label := "sparse"
			if dense {
				k = n/12 + 2
				label = "dense"
			}
			specs = append(specs, Spec{
				Group: fmt.Sprintf("sw n=%d %s", n, label),
				Make: func(r *rng.Rand) (*graph.Graph, error) {
					return gen.WattsStrogatz(r, n, k, 0.1)
				},
				Reps: reps(scale),
			})
		}
	}
	return specs
}

// Fig6Specs returns the §IV-D grid: Algorithm 2 on symmetric directed
// Erdős–Rényi graphs.
func Fig6Specs(scale float64) []Spec {
	var specs []Spec
	for _, n := range []int{200, 400} {
		for _, deg := range []float64{4, 8} {
			n, deg := n, deg
			specs = append(specs, Spec{
				Group: fmt.Sprintf("dir-er n=%d deg=%g", n, deg),
				Make: func(r *rng.Rand) (*graph.Graph, error) {
					return gen.ErdosRenyiAvgDegree(r, n, deg)
				},
				Strong: true,
				Reps:   reps(scale),
			})
		}
	}
	return specs
}
