package experiment

import (
	"context"
	"errors"
	"testing"
)

// The sweeps must honor their context: a canceled ctx stops dispatching
// and surfaces ctx.Err() instead of a partial, silently-truncated run
// set a report could mistake for complete.

func TestRunGridCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := Fig3Specs(0.05)
	if _, err := RunGridCtx(ctx, specs, Config{Seed: 1, Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunGridCtx on canceled ctx: %v, want context.Canceled", err)
	}
}

func TestFaultSweepCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultFaultConfig(1, 0.05)
	if _, err := FaultSweepCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("FaultSweepCtx on canceled ctx: %v, want context.Canceled", err)
	}
}

func TestScaleSweepCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultScaleConfig(1, 0.01)
	if _, err := ScaleSweepCtx(ctx, cfg, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScaleSweepCtx on canceled ctx: %v, want context.Canceled", err)
	}
}
