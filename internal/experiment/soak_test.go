package experiment

import (
	"strings"
	"testing"
)

// TestSoakSweepSmall runs an abbreviated soak over all three workloads:
// the structural assertions (palette ≤ 2Δ−1, bounded hole ratio, valid
// epoch colorings) live inside the sweep, so passing is the test.
func TestSoakSweepSmall(t *testing.T) {
	cfg := SoakConfig{
		Seed:      11,
		N:         400,
		AvgDeg:    8,
		Workloads: []string{"window", "flash", "growth"},
		Mutations: 3_000,
		BatchSize: 50,
		Epochs:    5,
	}
	rep, err := SoakSweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) != 3 {
		t.Fatalf("want 3 arms, got %d", len(rep.Arms))
	}
	if rep.TotalMutations < 3*cfg.Mutations {
		t.Fatalf("total mutations %d below budget %d", rep.TotalMutations, 3*cfg.Mutations)
	}
	if !rep.Deterministic {
		t.Fatal("soak replay diverged")
	}
	for _, arm := range rep.Arms {
		if len(arm.Epochs) != cfg.Epochs {
			t.Fatalf("%s: want %d epochs, got %d", arm.Workload, cfg.Epochs, len(arm.Epochs))
		}
		for _, ep := range arm.Epochs {
			if !ep.Verified {
				t.Fatalf("%s epoch %d not verified", arm.Workload, ep.Epoch)
			}
		}
		// The window arm is the hole-punching workload; it must actually
		// exercise compaction or the soak proves nothing.
		if arm.Workload == "window" {
			last := arm.Epochs[len(arm.Epochs)-1]
			if last.Compactions == 0 {
				t.Fatal("window arm never compacted")
			}
		}
	}
}

// TestSoakSweepValidation covers the config rejections.
func TestSoakSweepValidation(t *testing.T) {
	bad := []SoakConfig{
		{Seed: 1, N: 1, AvgDeg: 8, Workloads: []string{"window"}, Mutations: 100, BatchSize: 10, Epochs: 2},
		{Seed: 1, N: 100, AvgDeg: 0, Workloads: []string{"window"}, Mutations: 100, BatchSize: 10, Epochs: 2},
		{Seed: 1, N: 100, AvgDeg: 8, Workloads: nil, Mutations: 100, BatchSize: 10, Epochs: 2},
		{Seed: 1, N: 100, AvgDeg: 8, Workloads: []string{"window"}, Mutations: 1, BatchSize: 10, Epochs: 2},
	}
	for i, cfg := range bad {
		if _, err := SoakSweep(cfg, nil); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	cfg := SoakConfig{Seed: 1, N: 100, AvgDeg: 6, Workloads: []string{"nope"},
		Mutations: 100, BatchSize: 10, Epochs: 2}
	if _, err := SoakSweep(cfg, nil); err == nil || !strings.Contains(err.Error(), "unknown soak workload") {
		t.Fatalf("unknown workload not rejected: %v", err)
	}
}
