package experiment

import "testing"

func TestDynamicSweepSmall(t *testing.T) {
	cfg := DefaultDynamicConfig(11, 0) // floor: n=200
	cfg.BatchSizes = []int{1, 5}
	cfg.BatchesPerSize = 2
	rep, err := DynamicSweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rep.Rows))
	}
	if !rep.Deterministic {
		t.Fatal("replay diverged from the timed run")
	}
	if rep.ColdColors <= 0 || rep.Palette <= 0 {
		t.Fatalf("cold palette %d, cap %d", rep.ColdColors, rep.Palette)
	}
	for _, row := range rep.Rows {
		if row.Inserted+row.Deleted != row.BatchSize*row.Batches {
			t.Fatalf("row %d: %d+%d mutations for %d batches of %d",
				row.BatchSize, row.Inserted, row.Deleted, row.Batches, row.BatchSize)
		}
		if row.Greedy+row.RepairedEdges != row.Inserted {
			t.Fatalf("row %d: greedy %d + repaired %d != inserted %d",
				row.BatchSize, row.Greedy, row.RepairedEdges, row.Inserted)
		}
		if row.FullColors <= 0 || row.IncColors <= 0 || row.M <= 0 {
			t.Fatalf("row %+v missing state", row)
		}
		if row.FullWallMS <= 0 {
			t.Fatalf("row %d: full recolor took no time", row.BatchSize)
		}
	}
}

func TestDynamicSweepRejectsBadConfig(t *testing.T) {
	cfg := DefaultDynamicConfig(1, 0)
	cfg.AvgDeg = 0
	if _, err := DynamicSweep(cfg, nil); err == nil {
		t.Fatal("zero degree accepted")
	}
	cfg = DefaultDynamicConfig(1, 0)
	cfg.BatchesPerSize = 0
	if _, err := DynamicSweep(cfg, nil); err == nil {
		t.Fatal("zero batches accepted")
	}
	cfg = DefaultDynamicConfig(1, 0)
	cfg.BatchSizes = []int{0}
	if _, err := DynamicSweep(cfg, nil); err == nil {
		t.Fatal("zero batch size accepted")
	}
}
