package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"dima/internal/baseline"
	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/mpr"
	"dima/internal/rng"
	"dima/internal/stats"
	"dima/internal/verify"
)

// StrongCompareRun is one algorithm's outcome on one symmetric digraph.
type StrongCompareRun struct {
	Algo       string
	Group      string
	Delta      int
	Rounds     int // -1 for centralized one-shot algorithms
	Channels   int
	LowerBound int
	Msgs       int64
}

// RunStrongComparison pits Algorithm 2 (DiMa2Ed) against the simple
// distributed strong-coloring baseline and the centralized greedy, on
// symmetric directed Erdős–Rényi instances, reporting channel counts
// against the structural lower bound.
func RunStrongComparison(seed uint64, n int, degs []float64, repsPerDeg, workers int) ([]StrongCompareRun, error) {
	if repsPerDeg <= 0 {
		return nil, fmt.Errorf("experiment: strong comparison needs at least one repetition")
	}
	type job struct {
		deg     float64
		jobSeed uint64
	}
	var jobs []job
	base := rng.New(seed)
	for di, deg := range degs {
		for rep := 0; rep < repsPerDeg; rep++ {
			jobs = append(jobs, job{deg: deg,
				jobSeed: base.Derive(uint64(di)).Derive(uint64(rep)).Uint64()})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	const algosPerJob = 3
	results := make([]StrongCompareRun, algosPerJob*len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ch {
				errs[idx] = strongCompareOne(jobs[idx].deg, n, jobs[idx].jobSeed,
					results[algosPerJob*idx:algosPerJob*idx+algosPerJob])
			}
		}()
	}
	for idx := range jobs {
		ch <- idx
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func strongCompareOne(deg float64, n int, seed uint64, out []StrongCompareRun) error {
	r := rng.New(seed)
	g, err := gen.ErdosRenyiAvgDegree(r, n, deg)
	if err != nil {
		return err
	}
	d := graph.NewSymmetric(g)
	group := fmt.Sprintf("dir-er n=%d deg=%g", n, deg)
	delta := g.MaxDegree()
	lb := verify.StrongLowerBound(d)

	dimaRes, err := core.ColorStrong(d, core.Options{Seed: r.Uint64()})
	if err != nil {
		return err
	}
	if !dimaRes.Terminated {
		return fmt.Errorf("experiment: dima2ed run truncated")
	}
	if v := verify.StrongColoring(d, dimaRes.Colors); len(v) != 0 {
		return fmt.Errorf("experiment: dima2ed invalid: %v", v[0])
	}
	out[0] = StrongCompareRun{Algo: "dima2ed (alg 2)", Group: group, Delta: delta,
		Rounds: dimaRes.CompRounds, Channels: dimaRes.NumColors, LowerBound: lb, Msgs: dimaRes.Messages}

	simple, err := mpr.StrongColor(d, mpr.Options{Seed: r.Uint64()})
	if err != nil {
		return err
	}
	if !simple.Terminated {
		return fmt.Errorf("experiment: simple-strong run truncated")
	}
	if v := verify.StrongColoring(d, simple.Colors); len(v) != 0 {
		return fmt.Errorf("experiment: simple-strong invalid: %v", v[0])
	}
	out[1] = StrongCompareRun{Algo: "simple-strong", Group: group, Delta: delta,
		Rounds: simple.Rounds, Channels: simple.NumColors, LowerBound: lb, Msgs: simple.Messages}

	greedy := baseline.GreedyStrongColoring(d)
	if v := verify.StrongColoring(d, greedy); len(v) != 0 {
		return fmt.Errorf("experiment: greedy strong invalid: %v", v[0])
	}
	distinct, _ := verify.CountColors(greedy)
	out[2] = StrongCompareRun{Algo: "greedy (central)", Group: group, Delta: delta,
		Rounds: -1, Channels: distinct, LowerBound: lb}
	return nil
}

// StrongComparisonTable aggregates strong-comparison runs.
func StrongComparisonTable(runs []StrongCompareRun) *stats.Table {
	type key struct{ algo, group string }
	var order []key
	acc := map[key]*struct {
		delta, rounds, channels, lb, msgs stats.Online
		roundless                         bool
	}{}
	for _, r := range runs {
		k := key{r.Algo, r.Group}
		a, ok := acc[k]
		if !ok {
			a = &struct {
				delta, rounds, channels, lb, msgs stats.Online
				roundless                         bool
			}{}
			acc[k] = a
			order = append(order, k)
		}
		a.delta.Add(float64(r.Delta))
		if r.Rounds >= 0 {
			a.rounds.Add(float64(r.Rounds))
		} else {
			a.roundless = true
		}
		a.channels.Add(float64(r.Channels))
		a.lb.Add(float64(r.LowerBound))
		a.msgs.Add(float64(r.Msgs))
	}
	t := stats.NewTable("algorithm", "group", "Δ mean", "rounds", "rounds/Δ", "channels", "lower bound", "msgs")
	for _, k := range order {
		a := acc[k]
		rounds, perDelta := "-", "-"
		if !a.roundless {
			rounds = fmt.Sprintf("%.1f", a.rounds.Mean())
			if a.delta.Mean() > 0 {
				perDelta = fmt.Sprintf("%.2f", a.rounds.Mean()/a.delta.Mean())
			}
		}
		t.AddRow(k.algo, k.group, a.delta.Mean(), rounds, perDelta,
			a.channels.Mean(), a.lb.Mean(), int64(a.msgs.Mean()))
	}
	return t
}
