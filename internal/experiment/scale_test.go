package experiment

import (
	"strings"
	"testing"
)

func TestScaleSweepSmall(t *testing.T) {
	cfg := ScaleConfig{
		Seed:    5,
		Sizes:   []int{120, 300},
		AvgDeg:  6,
		Engines: []string{"sync", "chan", "shard"},
		Workers: 2,
		ChanCap: 200, // exercise the cap: chan must skip n=300
	}
	var seen []ScaleRow
	rep, err := ScaleSweep(cfg, func(row ScaleRow) { seen = append(seen, row) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("got %d rows, want 5 (chan skipped above ChanCap): %+v", len(rep.Rows), rep.Rows)
	}
	if len(seen) != len(rep.Rows) {
		t.Fatalf("progress callback saw %d rows, report has %d", len(seen), len(rep.Rows))
	}
	// Per size, every engine must report identical protocol outcomes —
	// the sweep itself verifies the colorings match; this pins the
	// reported aggregates too.
	bySize := map[int][]ScaleRow{}
	for _, row := range rep.Rows {
		bySize[row.N] = append(bySize[row.N], row)
		if row.WallMS < 0 {
			t.Fatalf("negative wall time: %+v", row)
		}
		if row.Engine == "shard" && row.Workers != 2 {
			t.Fatalf("shard row lost its worker count: %+v", row)
		}
	}
	for n, rows := range bySize {
		for _, row := range rows[1:] {
			if row.CompRounds != rows[0].CompRounds || row.Colors != rows[0].Colors ||
				row.Messages != rows[0].Messages || row.Bytes != rows[0].Bytes {
				t.Fatalf("n=%d: engines disagree: %+v vs %+v", n, rows[0], row)
			}
		}
	}
	if rows := bySize[300]; len(rows) != 2 {
		t.Fatalf("n=300 should have sync+shard only, got %+v", rows)
	}
}

func TestScaleSweepRejectsUnknownEngine(t *testing.T) {
	cfg := DefaultScaleConfig(1, 0.001)
	cfg.Engines = []string{"sync", "warp"}
	if _, err := ScaleSweep(cfg, nil); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Fatalf("unknown engine accepted: %v", err)
	}
}

func TestDefaultScaleConfigLadder(t *testing.T) {
	cfg := DefaultScaleConfig(1, 1)
	want := []int{1_000, 10_000, 100_000, 1_000_000}
	if len(cfg.Sizes) != len(want) {
		t.Fatalf("ladder %v, want %v", cfg.Sizes, want)
	}
	for i := range want {
		if cfg.Sizes[i] != want[i] {
			t.Fatalf("ladder %v, want %v", cfg.Sizes, want)
		}
	}
	// Tiny scales clamp to the floor and deduplicate.
	small := DefaultScaleConfig(1, 0.0001)
	if len(small.Sizes) == 0 || small.Sizes[0] != 200 {
		t.Fatalf("small ladder %v, want floor 200", small.Sizes)
	}
	for i := 1; i < len(small.Sizes); i++ {
		if small.Sizes[i] <= small.Sizes[i-1] {
			t.Fatalf("ladder not strictly ascending: %v", small.Sizes)
		}
	}
}
