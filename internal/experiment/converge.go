package experiment

import (
	"fmt"

	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/rng"
	"dima/internal/viz"
)

// ConvergencePoint is the cumulative progress of a run family at one
// computation round.
type ConvergencePoint struct {
	Round int
	// Fraction is the mean fraction of edges (or arcs) colored by the
	// end of this round, in [0, 1].
	Fraction float64
}

// Convergence measures how a run progresses: the mean cumulative
// fraction of colored edges (Algorithm 1) or arcs (Algorithm 2) after
// each computation round, over reps Erdős–Rényi instances. Every pairing
// colors one edge/arc and is logged by both endpoints, so the per-round
// pairings from the participation counters divide by two.
func Convergence(seed uint64, n int, deg float64, reps int, strong bool) ([]ConvergencePoint, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiment: convergence needs repetitions")
	}
	base := rng.New(seed)
	var colored []float64 // colored[r]: total items colored in round r, across reps
	var totals float64    // total items across reps
	for rep := 0; rep < reps; rep++ {
		r := base.Derive(uint64(rep))
		g, err := gen.ErdosRenyiAvgDegree(r, n, deg)
		if err != nil {
			return nil, err
		}
		opt := core.Options{Seed: r.Uint64(), CollectParticipation: true}
		var res *core.Result
		if strong {
			d := graph.NewSymmetric(g)
			totals += float64(d.A())
			res, err = core.ColorStrong(d, opt)
		} else {
			totals += float64(g.M())
			res, err = core.ColorEdges(g, opt)
		}
		if err != nil {
			return nil, err
		}
		if !res.Terminated {
			return nil, fmt.Errorf("experiment: convergence run truncated")
		}
		for i, p := range res.Participation {
			for len(colored) <= i {
				colored = append(colored, 0)
			}
			colored[i] += float64(p.Paired) / 2
		}
	}
	points := make([]ConvergencePoint, len(colored))
	cum := 0.0
	for i, c := range colored {
		cum += c
		points[i] = ConvergencePoint{Round: i, Fraction: cum / totals}
	}
	return points, nil
}

// ConvergencePlot renders the cumulative curves as an ASCII plot, one
// series per label.
func ConvergencePlot(series map[string][]ConvergencePoint, order []string) string {
	p := viz.NewPlot("cumulative fraction colored vs computation round", "round", "fraction", 64, 16)
	for _, label := range order {
		pts := series[label]
		vp := make([]viz.Point, len(pts))
		for i, c := range pts {
			vp[i] = viz.Point{X: float64(c.Round), Y: c.Fraction}
		}
		p.Add(viz.Series{Name: label, Points: vp})
	}
	return p.Render()
}
