package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dima/internal/core"
	"dima/internal/dynamic"
	"dima/internal/gen"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/stats"
	"dima/internal/verify"
)

// The soak sweep is the long-run health check the dynamic sweep is not:
// where BENCH_PR5 measures how fast one batch repairs, BENCH_PR7
// measures whether a recolorer is still *flat* a million mutations
// later. Each arm streams one temporal workload (sliding-window expiry,
// flash-crowd hotspots, preferential growth) through a recolorer with
// auto-maintenance on, sampling palette size, id-space size, live
// edges, per-batch repair latency (P² quantiles), and heap bytes at
// every epoch, and hard-asserting the two boundedness invariants
// maintenance exists to provide:
//
//   - palette ≤ 2Δ−1 for the *current* Δ at every epoch boundary, and
//   - EdgeIDBound ≤ HoleRatio × live edges (plus one batch of slack)
//     always — id holes never accumulate past the policy line.
//
// Every epoch-boundary coloring is verified valid, and each arm is
// replayed from scratch to confirm the whole trajectory — not just the
// final coloring — is a pure function of the seed.

// SoakConfig configures SoakSweep. DefaultSoakConfig fills the baseline
// protocol.
type SoakConfig struct {
	// Seed determines the instances, the cold runs, the mutation
	// streams, and every repair and maintenance pass.
	Seed uint64
	// N is each instance's vertex count; AvgDeg its Erdős–Rényi average
	// degree.
	N      int
	AvgDeg float64
	// Workloads are the arms to run: "window", "flash", "growth".
	Workloads []string
	// Mutations is the per-arm mutation budget; BatchSize the mutations
	// per batch; Epochs the number of sampling rows per arm.
	Mutations int
	BatchSize int
	Epochs    int
	// Workers is the shard engine's worker count (0 = GOMAXPROCS).
	Workers int
	// HoleRatio and PaletteSlack are the recolorer's auto-maintenance
	// policy (dynamic.MaintainOptions); zero values take its defaults.
	HoleRatio    float64
	PaletteSlack int
	// SkipVerify disables the per-epoch O(m) validity check (the
	// baseline protocol verifies every epoch).
	SkipVerify bool
	// SkipReplay disables the determinism replay, halving the runtime.
	SkipReplay bool
}

// DefaultSoakConfig returns the baseline protocol scaled by scale: three
// arms of 350k mutations each (1.05M total at scale 1) on 20k-vertex
// instances, batches of 100, 20 epochs per arm.
func DefaultSoakConfig(seed uint64, scale float64) SoakConfig {
	n := int(20_000 * scale)
	if n < 300 {
		n = 300
	}
	muts := int(350_000 * scale)
	if muts < 2_000 {
		muts = 2_000
	}
	return SoakConfig{
		Seed:      seed,
		N:         n,
		AvgDeg:    8,
		Workloads: []string{"window", "flash", "growth"},
		Mutations: muts,
		BatchSize: 100,
		Epochs:    20,
	}
}

// SoakEpoch is one sampling row: state at an epoch boundary plus the
// epoch's latency quantiles. Mutation and maintenance counters are
// cumulative over the arm; quantiles are per-epoch (a fresh P²
// estimator each epoch, so late-run drift cannot hide in early-run
// samples).
type SoakEpoch struct {
	Epoch     int `json:"epoch"`
	Mutations int `json:"mutations"`
	Batches   int `json:"batches"`
	// Graph and id-space state.
	M           int `json:"m"`
	EdgeIDBound int `json:"edgeIDBound"`
	Delta       int `json:"delta"`
	// Palette state.
	Colors   int `json:"colors"`
	MaxColor int `json:"maxColor"`
	// Per-batch Apply wall clock within this epoch, microseconds.
	P50US float64 `json:"p50us"`
	P99US float64 `json:"p99us"`
	// Live heap after a forced GC at the boundary.
	HeapBytes uint64 `json:"heapBytes"`
	// Maintenance counters (cumulative).
	MaintainPasses int `json:"maintainPasses"`
	Compactions    int `json:"compactions"`
	Rebalances     int `json:"rebalances"`
	// Verified reports the boundary coloring passed full validation
	// (false only under SkipVerify; an invalid coloring aborts the arm).
	Verified bool `json:"verified"`
}

// SoakArm is one workload's full trajectory.
type SoakArm struct {
	Workload string `json:"workload"`
	// Cold-start state.
	N       int `json:"n"`
	M0      int `json:"m0"`
	Delta0  int `json:"delta0"`
	Colors0 int `json:"colors0"`
	// Totals.
	Mutations int     `json:"mutations"`
	WallMS    float64 `json:"wallMS"`
	// Deterministic reports the replay reproduced the identical epoch
	// trajectory and final coloring (true trivially under SkipReplay).
	Deterministic bool        `json:"deterministic"`
	Epochs        []SoakEpoch `json:"epochs"`
}

// SoakReport is the sweep's persistable outcome (BENCH_PR7.json).
type SoakReport struct {
	Seed         uint64  `json:"seed"`
	N            int     `json:"n"`
	AvgDeg       float64 `json:"avgDeg"`
	BatchSize    int     `json:"batchSize"`
	EpochsPerArm int     `json:"epochsPerArm"`
	HoleRatio    float64 `json:"holeRatio"`
	PaletteSlack int     `json:"paletteSlack"`
	Workers      int     `json:"workers,omitempty"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"numCPU"`
	GoVersion    string  `json:"goVersion"`
	// TotalMutations across all arms; Deterministic is the AND of the
	// arms' replay verdicts.
	TotalMutations int       `json:"totalMutations"`
	Deterministic  bool      `json:"deterministic"`
	Arms           []SoakArm `json:"arms"`
}

// SoakSweep runs the soak benchmark.
func SoakSweep(cfg SoakConfig, progress func(workload string, ep SoakEpoch)) (*SoakReport, error) {
	return SoakSweepCtx(context.Background(), cfg, progress)
}

// SoakSweepCtx is SoakSweep bounded by ctx.
func SoakSweepCtx(ctx context.Context, cfg SoakConfig, progress func(workload string, ep SoakEpoch)) (*SoakReport, error) {
	if cfg.AvgDeg <= 0 || cfg.N < 2 {
		return nil, fmt.Errorf("experiment: soak needs n ≥ 2 and a positive average degree")
	}
	if cfg.BatchSize < 1 || cfg.Epochs < 1 || cfg.Mutations < cfg.Epochs {
		return nil, fmt.Errorf("experiment: soak needs batchSize ≥ 1 and mutations ≥ epochs ≥ 1")
	}
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("experiment: soak needs at least one workload arm")
	}
	rep := &SoakReport{
		Seed:          cfg.Seed,
		N:             cfg.N,
		AvgDeg:        cfg.AvgDeg,
		BatchSize:     cfg.BatchSize,
		EpochsPerArm:  cfg.Epochs,
		HoleRatio:     cfg.HoleRatio,
		PaletteSlack:  cfg.PaletteSlack,
		Workers:       cfg.Workers,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Deterministic: true,
	}
	for idx, w := range cfg.Workloads {
		arm, err := soakArm(ctx, cfg, w, idx, progress)
		if err != nil {
			return nil, err
		}
		if !cfg.SkipReplay {
			replay, err := soakArm(ctx, cfg, w, idx, nil)
			if err != nil {
				return nil, fmt.Errorf("experiment: soak %s replay: %v", w, err)
			}
			arm.Deterministic = sameTrajectory(arm, replay)
		} else {
			arm.Deterministic = true
		}
		rep.Deterministic = rep.Deterministic && arm.Deterministic
		rep.TotalMutations += arm.Mutations
		rep.Arms = append(rep.Arms, *arm)
	}
	return rep, nil
}

// soakSource builds the workload's mutation source, sized so the
// workload's natural cycle is about one epoch long.
func soakSource(name string, r *rng.Rand, m0, batchesPerEpoch int) (gen.MutationSource, error) {
	switch name {
	case "window":
		lo, hi := m0/2, m0+m0/2
		if lo < 1 {
			lo = 1
		}
		return gen.NewSlidingWindow(r, lo, hi)
	case "flash":
		cycle := batchesPerEpoch
		if cycle < 5 {
			cycle = 5
		}
		ramp := cycle * 2 / 5
		decay := cycle * 2 / 5
		hold := cycle - ramp - decay
		return gen.NewFlashCrowd(r, ramp, hold, decay)
	case "growth":
		return gen.NewPreferentialGrowth(r), nil
	default:
		return nil, fmt.Errorf("experiment: unknown soak workload %q (want window, flash, growth)", name)
	}
}

// soakArm runs one workload arm. Everything it does is a pure function
// of (cfg, name, idx), which is what the replay pass exploits.
func soakArm(ctx context.Context, cfg SoakConfig, name string, idx int, progress func(string, SoakEpoch)) (*SoakArm, error) {
	armSeed := rng.Mix64(cfg.Seed ^ rng.Mix64(uint64(idx)+1))
	g, err := gen.ErdosRenyiAvgDegree(rng.New(armSeed), cfg.N, cfg.AvgDeg)
	if err != nil {
		return nil, err
	}
	copt := core.Options{Seed: armSeed, Engine: net.RunShard, Workers: cfg.Workers}
	cold, err := core.ColorEdgesCtx(ctx, g, copt)
	if err != nil {
		return nil, fmt.Errorf("experiment: soak %s cold run: %v", name, err)
	}
	if cold.Aborted {
		return nil, fmt.Errorf("experiment: soak %s cold run: %w", name, ctx.Err())
	}
	if !cold.Terminated {
		return nil, fmt.Errorf("experiment: soak %s cold run truncated", name)
	}
	rc, err := dynamic.New(g, cold.Colors, dynamic.Options{
		Seed:   armSeed,
		Repair: copt,
		Maintain: &dynamic.MaintainOptions{
			HoleRatio:    cfg.HoleRatio,
			PaletteSlack: cfg.PaletteSlack,
		},
	})
	if err != nil {
		return nil, err
	}
	arm := &SoakArm{
		Workload: name,
		N:        g.N(),
		M0:       g.M(),
		Delta0:   g.MaxDegree(),
		Colors0:  cold.NumColors,
	}
	batchesPerEpoch := (cfg.Mutations + cfg.Epochs*cfg.BatchSize - 1) / (cfg.Epochs * cfg.BatchSize)
	src, err := soakSource(name, rng.New(rng.Mix64(armSeed^0x736f616b)), g.M(), batchesPerEpoch)
	if err != nil {
		return nil, err
	}

	epochTarget := cfg.Mutations / cfg.Epochs
	applied, batches, stalls := 0, 0, 0
	passes, compactions, rebalances := 0, 0, 0
	start := time.Now()
	for e := 0; e < cfg.Epochs; e++ {
		goal := (e + 1) * epochTarget
		if e == cfg.Epochs-1 {
			goal = cfg.Mutations
		}
		p50 := stats.NewP2Quantile(0.50)
		p99 := stats.NewP2Quantile(0.99)
		for applied < goal {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiment: soak %s epoch %d: %w", name, e, err)
			}
			b := src.NextBatch(rc.Graph(), cfg.BatchSize)
			if len(b.Muts) == 0 {
				if stalls++; stalls > 1000 {
					return nil, fmt.Errorf("experiment: soak %s stalled: source dry after %d mutations", name, applied)
				}
				continue
			}
			stalls = 0
			t0 := time.Now()
			r, err := rc.ApplyCtx(ctx, b)
			us := float64(time.Since(t0).Microseconds())
			if err != nil {
				return nil, fmt.Errorf("experiment: soak %s batch %d: %v", name, batches, err)
			}
			p50.Add(us)
			p99.Add(us)
			applied += len(b.Muts)
			batches++
			if r.Maintenance != nil {
				passes++
				if r.Maintenance.Compacted {
					compactions++
				}
				if r.Maintenance.Rebalanced {
					rebalances++
				}
			}
		}
		ep, err := soakBoundary(cfg, rc, name, e)
		if err != nil {
			return nil, err
		}
		ep.Mutations = applied
		ep.Batches = batches
		ep.P50US = p50.Value()
		ep.P99US = p99.Value()
		ep.MaintainPasses = passes
		ep.Compactions = compactions
		ep.Rebalances = rebalances
		arm.Epochs = append(arm.Epochs, *ep)
		if progress != nil {
			progress(name, *ep)
		}
	}
	arm.Mutations = applied
	arm.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return arm, nil
}

// soakBoundary samples and hard-asserts the epoch-boundary state.
func soakBoundary(cfg SoakConfig, rc *dynamic.Recolorer, name string, e int) (*SoakEpoch, error) {
	g := rc.Graph()
	ep := &SoakEpoch{
		Epoch:       e,
		M:           g.M(),
		EdgeIDBound: g.EdgeIDBound(),
		Delta:       g.MaxDegree(),
		Colors:      rc.NumColors(),
		MaxColor:    rc.MaxColor(),
	}
	// The boundedness invariants maintenance guarantees. Auto passes run
	// after every batch, so they must hold at every boundary exactly —
	// modulo one batch of slack on the hole side (a pass compacts only
	// when the trigger trips, and the trigger allows HoleRatio × live).
	cap := 2*ep.Delta - 1
	if cap < 1 {
		cap = 1
	}
	if ep.MaxColor+1 > cap+cfg.PaletteSlack {
		return nil, fmt.Errorf("experiment: soak %s epoch %d: palette max %d over 2Δ−1+slack = %d (Δ=%d)",
			name, e, ep.MaxColor, cap+cfg.PaletteSlack, ep.Delta)
	}
	ratio := cfg.HoleRatio
	if ratio <= 0 {
		ratio = 1.5
	}
	live := ep.M
	if live < 1 {
		live = 1
	}
	if float64(ep.EdgeIDBound) > ratio*float64(live)+float64(2*cfg.BatchSize) {
		return nil, fmt.Errorf("experiment: soak %s epoch %d: id bound %d over %.1f×%d live",
			name, e, ep.EdgeIDBound, ratio, ep.M)
	}
	if !cfg.SkipVerify {
		if v := verify.EdgeColoring(g, rc.Colors()); len(v) != 0 {
			return nil, fmt.Errorf("experiment: soak %s epoch %d: invalid coloring: %v", name, e, v[0])
		}
		ep.Verified = true
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ep.HeapBytes = ms.HeapAlloc
	return ep, nil
}

// sameTrajectory compares the deterministic fields of two arm runs —
// the state trajectory, not the timing/heap telemetry.
func sameTrajectory(a, b *SoakArm) bool {
	if a.M0 != b.M0 || a.Delta0 != b.Delta0 || a.Colors0 != b.Colors0 ||
		a.Mutations != b.Mutations || len(a.Epochs) != len(b.Epochs) {
		return false
	}
	for i := range a.Epochs {
		x, y := a.Epochs[i], b.Epochs[i]
		if x.Mutations != y.Mutations || x.Batches != y.Batches ||
			x.M != y.M || x.EdgeIDBound != y.EdgeIDBound || x.Delta != y.Delta ||
			x.Colors != y.Colors || x.MaxColor != y.MaxColor ||
			x.MaintainPasses != y.MaintainPasses ||
			x.Compactions != y.Compactions || x.Rebalances != y.Rebalances {
			return false
		}
	}
	return true
}

// WriteSoakReport writes the report as indented JSON.
func WriteSoakReport(w io.Writer, rep *SoakReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
