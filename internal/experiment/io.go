package experiment

import (
	"encoding/json"
	"fmt"
	"io"
)

// runsDocument is the JSON envelope for persisted experiment runs.
type runsDocument struct {
	// Version guards the format; readers reject unknown versions.
	Version int    `json:"version"`
	Name    string `json:"name"`
	Seed    uint64 `json:"seed"`
	Runs    []Run  `json:"runs"`
}

const runsVersion = 1

// SaveRuns writes an experiment's runs as JSON so analyses can be
// rerun or extended without recomputing the grid.
func SaveRuns(w io.Writer, name string, seed uint64, runs []Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(runsDocument{Version: runsVersion, Name: name, Seed: seed, Runs: runs})
}

// LoadRuns reads runs persisted by SaveRuns, returning the experiment
// name, master seed, and runs.
func LoadRuns(r io.Reader) (name string, seed uint64, runs []Run, err error) {
	var doc runsDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return "", 0, nil, fmt.Errorf("experiment: %v", err)
	}
	if doc.Version != runsVersion {
		return "", 0, nil, fmt.Errorf("experiment: unsupported runs version %d", doc.Version)
	}
	return doc.Name, doc.Seed, doc.Runs, nil
}
