package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/verify"
)

// The parallel sweep is the shard engine's worker-scaling benchmark:
// the same Algorithm 1 run on the same Erdős–Rényi instance, once with
// the sequential reference engine and once per worker count, over a
// ladder of edge counts. Beyond wall-clock and allocations it records
// the engine's internal delivery-record count (net.ShardStats), whose
// ratio to messages is the fan-out amplification the merge-time
// expansion removes, and it cross-checks that every worker count
// reproduces the RunSync coloring exactly. Its JSON report is the
// multicore benchmark baseline (BENCH_PR8.json; methodology in
// docs/PERFORMANCE.md).

// ParallelConfig configures ParallelSweep. DefaultParallelConfig fills
// the standard ladder.
type ParallelConfig struct {
	// Seed determines the graph instances and run seeds.
	Seed uint64
	// Edges is the ladder of target edge counts, ascending. The vertex
	// count of each rung is derived as 2·edges/AvgDeg.
	Edges []int
	// AvgDeg is the Erdős–Rényi average degree of every instance.
	AvgDeg float64
	// WorkersSet is the shard worker counts to sweep; entries <= 0 mean
	// GOMAXPROCS. Duplicates collapse after resolution.
	WorkersSet []int
	// VerifyCap bounds full coloring verification by edge count; above
	// it only the cross-engine equality check runs. 0 verifies all.
	VerifyCap int
}

// DefaultParallelConfig returns the standard ladder {10⁶, 4·10⁶, 10⁷}
// edges, each multiplied by scale with a floor of 2,000 edges, swept
// over workers {1, 2, 4, 8, GOMAXPROCS}. Smoke runs use small scales;
// scale 1 is the committed baseline protocol.
func DefaultParallelConfig(seed uint64, scale float64) ParallelConfig {
	var edges []int
	for _, m := range []int{1_000_000, 4_000_000, 10_000_000} {
		e := int(float64(m) * scale)
		if e < 2_000 {
			e = 2_000
		}
		if len(edges) == 0 || edges[len(edges)-1] != e {
			edges = append(edges, e)
		}
	}
	return ParallelConfig{
		Seed:       seed,
		Edges:      edges,
		AvgDeg:     8,
		WorkersSet: []int{1, 2, 4, 8, 0},
		VerifyCap:  100_000,
	}
}

// ParallelRow is one (engine, workers, size) cell of the sweep.
type ParallelRow struct {
	// Engine is "sync" for the reference row or "shard".
	Engine string `json:"engine"`
	// Workers is the resolved shard worker count (0 for the sync row).
	Workers int `json:"workers,omitempty"`
	N       int `json:"n"`
	M       int `json:"m"`
	Delta   int `json:"delta"`

	CompRounds int   `json:"compRounds"`
	CommRounds int   `json:"commRounds"`
	Colors     int   `json:"colors"`
	Messages   int64 `json:"messages"`
	Deliveries int64 `json:"deliveries"`
	// Records is the shard engine's buffered delivery-record count
	// (net.ShardStats.Records); 0 for the sync row. Records/Messages is
	// the physical fan-out amplification, bounded by the worker count on
	// the reliable path — compare Deliveries/Messages ≈ average degree.
	Records int64 `json:"records,omitempty"`
	// MergeSkips is the number of empty (src,dst) merge buckets the
	// non-empty pair tracking skipped (net.ShardStats.MergeSkips).
	MergeSkips int64 `json:"mergeSkips,omitempty"`

	WallMS  float64 `json:"wallMS"`
	Allocs  uint64  `json:"allocs"`
	AllocMB float64 `json:"allocMB"`
	// AllocsPerEdge is Allocs / M, the "allocs/edge trending to zero"
	// gauge for the arena layout.
	AllocsPerEdge float64 `json:"allocsPerEdge"`
	// Speedup is this row's wall-clock advantage over the shard
	// workers=1 row of the same size (1.0 for that row itself); 0 when
	// the sweep has no workers=1 rung to compare against.
	Speedup float64 `json:"speedup,omitempty"`
}

// ParallelReport is the sweep's persistable outcome, including enough
// of the configuration and environment to make the numbers comparable —
// NumCPU in particular: worker counts beyond it cannot speed anything
// up, they only prove determinism is preserved under oversubscription.
type ParallelReport struct {
	Seed       uint64        `json:"seed"`
	AvgDeg     float64       `json:"avgDeg"`
	WorkersSet []int         `json:"workersSet"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numCPU"`
	GoVersion  string        `json:"goVersion"`
	Rows       []ParallelRow `json:"rows"`
}

// ParallelSweep runs the benchmark. All runs within one size share the
// graph instance and run seed, so their colorings must be identical to
// the sync reference; any divergence is an error, not a slow row.
func ParallelSweep(cfg ParallelConfig, progress func(ParallelRow)) (*ParallelReport, error) {
	return ParallelSweepCtx(context.Background(), cfg, progress)
}

// ParallelSweepCtx is ParallelSweep bounded by ctx: cancellation aborts
// the in-flight cell at its next round barrier and returns ctx's error.
func ParallelSweepCtx(ctx context.Context, cfg ParallelConfig, progress func(ParallelRow)) (*ParallelReport, error) {
	if cfg.AvgDeg <= 0 {
		return nil, fmt.Errorf("experiment: parallel sweep needs a positive average degree, got %g", cfg.AvgDeg)
	}
	if len(cfg.Edges) == 0 {
		return nil, fmt.Errorf("experiment: parallel sweep needs at least one edge-count rung")
	}
	workersSet := resolveWorkersSet(cfg.WorkersSet)
	if len(workersSet) == 0 {
		return nil, fmt.Errorf("experiment: parallel sweep needs at least one worker count")
	}
	rep := &ParallelReport{
		Seed:       cfg.Seed,
		AvgDeg:     cfg.AvgDeg,
		WorkersSet: workersSet,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	base := rng.New(cfg.Seed)
	for _, edges := range cfg.Edges {
		n := int(2 * float64(edges) / cfg.AvgDeg)
		if n < 2 {
			n = 2
		}
		gr := base.Derive(uint64(n))
		g, err := gen.ErdosRenyiAvgDegree(gr, n, cfg.AvgDeg)
		if err != nil {
			return nil, err
		}
		runSeed := gr.Uint64()

		// Sequential reference: the coloring every shard run must equal.
		syncRow, reference, err := parallelCell(ctx, g, "sync", 0, core.Options{Seed: runSeed})
		if err != nil {
			return nil, err
		}
		if cfg.VerifyCap <= 0 || g.M() <= cfg.VerifyCap {
			if v := verify.EdgeColoring(g, reference); len(v) != 0 {
				return nil, fmt.Errorf("experiment: parallel sync m=%d: invalid coloring: %v", g.M(), v[0])
			}
		}
		rep.Rows = append(rep.Rows, *syncRow)
		if progress != nil {
			progress(*syncRow)
		}

		var base1 float64 // workers=1 wall-clock, the speedup denominator
		for _, w := range workersSet {
			var ss net.ShardStats
			opt := core.Options{Seed: runSeed, Engine: net.RunShard, Workers: w, ShardStats: &ss}
			row, colors, err := parallelCell(ctx, g, "shard", w, opt)
			if err != nil {
				return nil, err
			}
			for i, c := range colors {
				if c != reference[i] {
					return nil, fmt.Errorf("experiment: parallel shard workers=%d m=%d: edge %d colored %d, sync says %d",
						w, g.M(), i, c, reference[i])
				}
			}
			row.Workers = ss.Workers
			row.Records = ss.Records
			row.MergeSkips = ss.MergeSkips
			if w == 1 {
				base1 = row.WallMS
			}
			if base1 > 0 && row.WallMS > 0 {
				row.Speedup = base1 / row.WallMS
			}
			rep.Rows = append(rep.Rows, *row)
			if progress != nil {
				progress(*row)
			}
		}
	}
	return rep, nil
}

// resolveWorkersSet maps <= 0 entries to GOMAXPROCS, then sorts and
// deduplicates — {1,2,4,8,0} on a 8-way box collapses to {1,2,4,8}.
func resolveWorkersSet(set []int) []int {
	out := make([]int, 0, len(set))
	for _, w := range set {
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		out = append(out, w)
	}
	sort.Ints(out)
	dedup := out[:0]
	for i, w := range out {
		if i == 0 || w != out[i-1] {
			dedup = append(dedup, w)
		}
	}
	return dedup
}

// parallelCell times one run and packages it as a row. The caller fills
// the shard-specific columns.
func parallelCell(ctx context.Context, g *graph.Graph, engine string, workers int, opt core.Options) (*ParallelRow, []int, error) {
	var res *core.Result
	var runErr error
	start := time.Now()
	alloc := metrics.MeasureAllocs(func() {
		res, runErr = core.ColorEdgesCtx(ctx, g, opt)
	})
	wall := time.Since(start)
	if runErr != nil {
		return nil, nil, fmt.Errorf("experiment: parallel %s workers=%d m=%d: %v", engine, workers, g.M(), runErr)
	}
	if res.Aborted {
		return nil, nil, fmt.Errorf("experiment: parallel %s workers=%d m=%d: %w", engine, workers, g.M(), ctx.Err())
	}
	if !res.Terminated {
		return nil, nil, fmt.Errorf("experiment: parallel %s workers=%d m=%d: truncated at %d rounds",
			engine, workers, g.M(), res.CompRounds)
	}
	row := &ParallelRow{
		Engine:     engine,
		N:          g.N(),
		M:          g.M(),
		Delta:      g.MaxDegree(),
		CompRounds: res.CompRounds,
		CommRounds: res.CommRounds,
		Colors:     res.NumColors,
		Messages:   res.Messages,
		Deliveries: res.Deliveries,
		WallMS:     float64(wall.Microseconds()) / 1000,
		Allocs:     alloc.Allocs,
		AllocMB:    float64(alloc.Bytes) / (1 << 20),
	}
	if g.M() > 0 {
		row.AllocsPerEdge = float64(alloc.Allocs) / float64(g.M())
	}
	return row, res.Colors, nil
}

// WriteParallelReport writes the report as indented JSON.
func WriteParallelReport(w io.Writer, rep *ParallelReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
