package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"dima/internal/baseline"
	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/mpr"
	"dima/internal/rng"
	"dima/internal/stats"
	"dima/internal/verify"
)

// CompareRun is one algorithm's outcome on one instance.
type CompareRun struct {
	Algo   string
	Group  string
	Delta  int
	Rounds int // -1 where rounds are meaningless (centralized one-shot)
	Colors int
	Msgs   int64
}

// RunComparison pits Algorithm 1 against the cited prior-work baseline
// (the simple distributed algorithm of ref [10], package mpr), the
// idealized centralized matcher, and the centralized Misra–Gries Δ+1
// coloring, on Erdős–Rényi instances at the given average degrees.
// The trade the paper positions itself in becomes visible directly:
// DiMa spends ≈2Δ rounds for a Δ/Δ+1 palette; the simple algorithm
// finishes in O(log m) rounds but spreads over the 2Δ-1 palette.
func RunComparison(seed uint64, n int, degs []float64, repsPerDeg, workers int) ([]CompareRun, error) {
	if repsPerDeg <= 0 {
		return nil, fmt.Errorf("experiment: comparison needs at least one repetition")
	}
	type job struct {
		deg     float64
		rep     int
		jobSeed uint64
	}
	var jobs []job
	base := rng.New(seed)
	for di, deg := range degs {
		for rep := 0; rep < repsPerDeg; rep++ {
			jobs = append(jobs, job{deg: deg, rep: rep,
				jobSeed: base.Derive(uint64(di)).Derive(uint64(rep)).Uint64()})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	const algosPerJob = 4
	results := make([]CompareRun, algosPerJob*len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ch {
				errs[idx] = compareOne(jobs[idx].deg, n, jobs[idx].jobSeed,
					results[algosPerJob*idx:algosPerJob*idx+algosPerJob])
			}
		}()
	}
	for idx := range jobs {
		ch <- idx
	}
	close(ch)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func compareOne(deg float64, n int, seed uint64, out []CompareRun) error {
	r := rng.New(seed)
	g, err := gen.ErdosRenyiAvgDegree(r, n, deg)
	if err != nil {
		return err
	}
	group := fmt.Sprintf("er n=%d deg=%g", n, deg)
	delta := g.MaxDegree()

	dimaRes, err := core.ColorEdges(g, core.Options{Seed: r.Uint64()})
	if err != nil {
		return err
	}
	if !dimaRes.Terminated {
		return fmt.Errorf("experiment: dima run truncated")
	}
	if v := verify.EdgeColoring(g, dimaRes.Colors); len(v) != 0 {
		return fmt.Errorf("experiment: dima coloring invalid: %v", v[0])
	}
	out[0] = CompareRun{Algo: "dima (alg 1)", Group: group, Delta: delta,
		Rounds: dimaRes.CompRounds, Colors: dimaRes.NumColors, Msgs: dimaRes.Messages}

	mprRes, err := mpr.Color(g, mpr.Options{Seed: r.Uint64()})
	if err != nil {
		return err
	}
	if !mprRes.Terminated {
		return fmt.Errorf("experiment: mpr run truncated")
	}
	if v := verify.EdgeColoring(g, mprRes.Colors); len(v) != 0 {
		return fmt.Errorf("experiment: mpr coloring invalid: %v", v[0])
	}
	out[1] = CompareRun{Algo: "simple (ref 10)", Group: group, Delta: delta,
		Rounds: mprRes.Rounds, Colors: mprRes.NumColors, Msgs: mprRes.Messages}

	central := baseline.CentralizedMatchingColoring(g, rng.New(r.Uint64()))
	if v := verify.EdgeColoring(g, central.Colors); len(v) != 0 {
		return fmt.Errorf("experiment: centralized matcher invalid: %v", v[0])
	}
	cDistinct, _ := verify.CountColors(central.Colors)
	out[2] = CompareRun{Algo: "central matcher", Group: group, Delta: delta,
		Rounds: central.Rounds, Colors: cDistinct}

	vz, err := baseline.MisraGries(g)
	if err != nil {
		return err
	}
	vDistinct, _ := verify.CountColors(vz)
	out[3] = CompareRun{Algo: "misra-gries", Group: group, Delta: delta,
		Rounds: -1, Colors: vDistinct}
	return nil
}

// ComparisonTable aggregates comparison runs per (algo, group).
func ComparisonTable(runs []CompareRun) *stats.Table {
	type key struct{ algo, group string }
	order := []key{}
	acc := map[key]*struct {
		delta, rounds, colors, msgs stats.Online
		roundless                   bool
	}{}
	for _, r := range runs {
		k := key{r.Algo, r.Group}
		a, ok := acc[k]
		if !ok {
			a = &struct {
				delta, rounds, colors, msgs stats.Online
				roundless                   bool
			}{}
			acc[k] = a
			order = append(order, k)
		}
		a.delta.Add(float64(r.Delta))
		if r.Rounds >= 0 {
			a.rounds.Add(float64(r.Rounds))
		} else {
			a.roundless = true
		}
		a.colors.Add(float64(r.Colors))
		a.msgs.Add(float64(r.Msgs))
	}
	t := stats.NewTable("algorithm", "group", "Δ mean", "rounds", "rounds/Δ", "colors", "colors-Δ", "msgs")
	for _, k := range order {
		a := acc[k]
		rounds := "-"
		perDelta := "-"
		if !a.roundless {
			rounds = fmt.Sprintf("%.1f", a.rounds.Mean())
			if a.delta.Mean() > 0 {
				perDelta = fmt.Sprintf("%.2f", a.rounds.Mean()/a.delta.Mean())
			}
		}
		t.AddRow(k.algo, k.group, a.delta.Mean(), rounds, perDelta,
			a.colors.Mean(), a.colors.Mean()-a.delta.Mean(), int64(a.msgs.Mean()))
	}
	return t
}
