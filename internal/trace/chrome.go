package trace

import (
	"encoding/json"
	"io"
	"sort"

	"dima/internal/automaton"
)

// chromeEvent is one complete ("X") event of the Chrome trace-event
// format, the JSON-array flavor that chrome://tracing and Perfetto load
// directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the recorded transitions as a Chrome trace-event
// JSON array: one track (tid) per node, one complete event per state
// residence, named by the automaton state. Timestamps are synthetic
// microseconds derived from the global observation order (Seq), so the
// horizontal axis reads as "protocol progress", not wall time. Open the
// output at https://ui.perfetto.dev or chrome://tracing.
func (r *Recorder) ChromeTrace(w io.Writer) error {
	events := r.Events()
	// Group per node, preserving Seq order (Events is already Seq-sorted,
	// but sort defensively — per-node order is the correctness contract).
	perNode := map[int][]Event{}
	for _, e := range events {
		perNode[e.Node] = append(perNode[e.Node], e)
	}
	nodes := make([]int, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	end := int64(len(events)) + 1

	out := make([]chromeEvent, 0, len(events)+len(nodes))
	span := func(node int, s automaton.State, from string, ts, until int64) chromeEvent {
		dur := until - ts
		if dur < 1 {
			dur = 1
		}
		ev := chromeEvent{
			Name: s.String(), Cat: "automaton", Ph: "X",
			Pid: 0, Tid: node, Ts: ts, Dur: dur,
		}
		if from != "" {
			ev.Args = map[string]any{"from": from}
		}
		return ev
	}
	for _, node := range nodes {
		evs := perNode[node]
		// The machine starts in Choose before its first recorded
		// transition.
		first := int64(evs[0].Seq) + 1
		out = append(out, span(node, automaton.Choose, "", 0, first))
		for i, e := range evs {
			ts := int64(e.Seq) + 1
			until := end
			if i+1 < len(evs) {
				until = int64(evs[i+1].Seq) + 1
			}
			out = append(out, span(node, e.To, e.From.String(), ts, until))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
