// Package trace records automaton state transitions during a run and
// renders per-node timelines — the debugging view of the matching
// automaton. A Recorder plugs into core.Options.Hook and is safe for
// concurrent use (the goroutine runtime fires hooks from many
// goroutines).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dima/internal/automaton"
)

// Event is one recorded state transition.
type Event struct {
	// Seq is the global sequence number, in observation order. Under the
	// goroutine runtime observation order across nodes is nondeterministic;
	// per-node order is always faithful.
	Seq  int
	Node int
	From automaton.State
	To   automaton.State
}

// Recorder accumulates transition events.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int
}

// NewRecorder returns a recorder keeping at most limit events
// (0 = unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Hook returns the automaton hook that feeds this recorder.
func (r *Recorder) Hook() automaton.Hook {
	return func(node int, from, to automaton.State) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.limit > 0 && len(r.events) >= r.limit {
			r.dropped++
			return
		}
		r.events = append(r.events, Event{Seq: len(r.events), Node: node, From: from, To: to})
	}
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns the number of transitions discarded after the event
// limit was reached. A nonzero count means every per-node view is a
// prefix of the true history.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// NodePath returns the sequence of states node visited, starting from
// Choose (the machine's initial state).
func (r *Recorder) NodePath(node int) []automaton.State {
	r.mu.Lock()
	defer r.mu.Unlock()
	path := []automaton.State{automaton.Choose}
	for _, e := range r.events {
		if e.Node == node {
			path = append(path, e.To)
		}
	}
	return path
}

// Nodes returns the sorted ids of all nodes with recorded events.
func (r *Recorder) Nodes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[int]bool{}
	for _, e := range r.events {
		seen[e.Node] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// StateCounts returns, per state, how many transitions entered it.
func (r *Recorder) StateCounts() map[automaton.State]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := map[automaton.State]int{}
	for _, e := range r.events {
		counts[e.To]++
	}
	return counts
}

// Validate checks that every node's recorded path is a legal walk of the
// automaton and that the trace is complete: a recorder that hit its
// event limit holds truncated paths, which Validate reports as an error
// rather than silently vouching for a partial history.
func (r *Recorder) Validate() error {
	if d := r.Dropped(); d > 0 {
		return fmt.Errorf("trace: incomplete: %d transitions dropped past the %d-event limit", d, r.limit)
	}
	for _, node := range r.Nodes() {
		path := r.NodePath(node)
		for i := 0; i+1 < len(path); i++ {
			if !path[i].CanTransitionTo(path[i+1]) {
				return fmt.Errorf("trace: node %d illegal step %v -> %v at position %d",
					node, path[i], path[i+1], i)
			}
		}
	}
	return nil
}

// Timeline renders one line per node: "node  3: C I W U E C L R U E D".
// Only nodes with events appear.
func (r *Recorder) Timeline() string {
	var b strings.Builder
	for _, node := range r.Nodes() {
		states := r.NodePath(node)
		parts := make([]string, len(states))
		for i, s := range states {
			parts[i] = s.String()
		}
		fmt.Fprintf(&b, "node %3d: %s\n", node, strings.Join(parts, " "))
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(truncated: %d transitions dropped past the %d-event limit)\n", d, r.limit)
	}
	return b.String()
}
