package trace

import (
	"strings"
	"testing"

	"dima/internal/automaton"
	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
)

func TestRecorderCollectsAndValidates(t *testing.T) {
	rec := NewRecorder(0)
	g := gen.Cycle(6)
	res, err := core.ColorEdges(g, core.Options{Seed: 1, Hook: rec.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("run did not terminate")
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := rec.Nodes()
	if len(nodes) != 6 {
		t.Fatalf("events from %d nodes, want 6", len(nodes))
	}
	for _, n := range nodes {
		path := rec.NodePath(n)
		if path[len(path)-1] != automaton.Done {
			t.Fatalf("node %d path does not end in Done: %v", n, path)
		}
		if path[0] != automaton.Choose {
			t.Fatalf("node %d path does not start in Choose", n)
		}
	}
}

func TestRecorderStateCounts(t *testing.T) {
	rec := NewRecorder(0)
	g := gen.Path(2)
	if _, err := core.ColorEdges(g, core.Options{Seed: 2, Hook: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	counts := rec.StateCounts()
	if counts[automaton.Done] != 2 {
		t.Fatalf("Done entered %d times, want 2", counts[automaton.Done])
	}
	// Every computation round enters Update and Exchange once per node.
	if counts[automaton.Update] != counts[automaton.Exchange] {
		t.Fatalf("U count %d != E count %d", counts[automaton.Update], counts[automaton.Exchange])
	}
}

func TestRecorderLimit(t *testing.T) {
	rec := NewRecorder(3)
	g := gen.Cycle(5)
	if _, err := core.ColorEdges(g, core.Options{Seed: 3, Hook: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 3 {
		t.Fatalf("recorded %d events, limit 3", rec.Len())
	}
}

func TestTimelineRendering(t *testing.T) {
	rec := NewRecorder(0)
	g := gen.Path(2)
	if _, err := core.ColorEdges(g, core.Options{Seed: 4, Hook: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	tl := rec.Timeline()
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 2 {
		t.Fatalf("timeline lines: %q", tl)
	}
	if !strings.HasPrefix(lines[0], "node   0: C ") {
		t.Fatalf("line 0: %q", lines[0])
	}
	if !strings.HasSuffix(strings.TrimSpace(lines[0]), "D") {
		t.Fatalf("line 0 should end in D: %q", lines[0])
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rec := NewRecorder(0)
	h := rec.Hook()
	h(0, automaton.Choose, automaton.Invite)
	h(0, automaton.Invite, automaton.Listen) // illegal edge
	if err := rec.Validate(); err == nil {
		t.Fatal("Validate accepted illegal walk")
	}
}

func TestRecorderWithStrongColoring(t *testing.T) {
	rec := NewRecorder(0)
	d := graph.NewSymmetric(gen.Cycle(5))
	res, err := core.ColorStrong(d, core.Options{Seed: 5, Hook: rec.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEventsCopy(t *testing.T) {
	rec := NewRecorder(0)
	rec.Hook()(1, automaton.Choose, automaton.Listen)
	ev := rec.Events()
	ev[0].Node = 99
	if rec.Events()[0].Node != 1 {
		t.Fatal("Events returned shared storage")
	}
}
