package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"dima/internal/core"
	"dima/internal/gen"
)

func TestDroppedCounter(t *testing.T) {
	rec := NewRecorder(3)
	g := gen.Cycle(5)
	if _, err := core.ColorEdges(g, core.Options{Seed: 3, Hook: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 3 {
		t.Fatalf("recorded %d events, limit 3", rec.Len())
	}
	if rec.Dropped() == 0 {
		t.Fatal("Dropped() == 0 after overflowing a 3-event limit")
	}
	err := rec.Validate()
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("Validate did not report truncation: %v", err)
	}
	if !strings.Contains(rec.Timeline(), "truncated") {
		t.Fatalf("Timeline did not report truncation:\n%s", rec.Timeline())
	}
}

func TestDroppedZeroOnCompleteTrace(t *testing.T) {
	rec := NewRecorder(0)
	g := gen.Cycle(5)
	if _, err := core.ColorEdges(g, core.Options{Seed: 3, Hook: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("Dropped() = %d on an unlimited recorder", rec.Dropped())
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rec.Timeline(), "truncated") {
		t.Fatal("Timeline reports truncation on a complete trace")
	}
}

func TestChromeTrace(t *testing.T) {
	rec := NewRecorder(0)
	g := gen.Cycle(6)
	if _, err := core.ColorEdges(g, core.Options{Seed: 7, Hook: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	// One span per transition plus the initial Choose span per node.
	if want := rec.Len() + len(rec.Nodes()); len(events) != want {
		t.Fatalf("%d spans, want %d", len(events), want)
	}
	tracks := map[float64]bool{}
	for i, e := range events {
		for _, key := range []string{"name", "ph", "pid", "tid", "ts", "dur"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("span %d missing %q: %v", i, key, e)
			}
		}
		if e["ph"] != "X" {
			t.Fatalf("span %d has ph %v, want X", i, e["ph"])
		}
		if e["dur"].(float64) < 1 {
			t.Fatalf("span %d has zero duration: %v", i, e)
		}
		tracks[e["tid"].(float64)] = true
	}
	if len(tracks) != 6 {
		t.Fatalf("%d tracks, want one per node", len(tracks))
	}
}

func TestChromeTraceSpansAreContiguous(t *testing.T) {
	rec := NewRecorder(0)
	g := gen.Path(3)
	if _, err := core.ColorEdges(g, core.Options{Seed: 9, Hook: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatal(err)
	}
	// Per track, every span must start where the previous one ended, and
	// the first must start at 0 in state C — the timeline has no holes.
	next := map[int]int64{}
	first := map[int]bool{}
	for _, e := range events {
		if !first[e.Tid] {
			first[e.Tid] = true
			if e.Ts != 0 || e.Name != "C" {
				t.Fatalf("track %d starts with %+v, want C at ts 0", e.Tid, e)
			}
		} else if e.Ts != next[e.Tid] {
			t.Fatalf("track %d has a gap: span at ts %d, previous ended at %d", e.Tid, e.Ts, next[e.Tid])
		}
		next[e.Tid] = e.Ts + e.Dur
	}
}
