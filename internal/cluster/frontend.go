// Package cluster implements the dimaserve cluster plane
// (docs/CLUSTER_SERVE.md): a routing front end that dispatches coloring
// jobs to operator-launched dimaworker processes instead of in-process
// goroutines, plus the worker side of that protocol (RunWorker).
//
// The front end keeps a registry of workers that dialed in with the
// launch token, routes each job to the least-loaded one, and streams
// the result and per-round stats back so the HTTP service above it
// (internal/service) serves remote runs through the same /jobs
// endpoints as local ones. Failover leans on determinism: a run is a
// pure function of (graph, algorithm, seed, options), so when a worker
// dies mid-job the front end re-dispatches the identical job to another
// worker and gets the identical answer — retry is idempotent by
// construction, never a source of divergent results.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dima/internal/core"
	"dima/internal/metrics"
	"dima/internal/msg"
	dnet "dima/internal/net"
	"dima/internal/service"
)

// Frame kinds of the worker protocol, distinct from the node-transport
// kinds in internal/net so a frame from a cross-wired peer is
// recognizably foreign.
const (
	frameHello     msg.FrameKind = 0x21 // worker → fe: msg.WorkerHello
	frameWelcome   msg.FrameKind = 0x22 // fe → worker: msg.WorkerWelcome
	frameHeartbeat msg.FrameKind = 0x23 // worker → fe: msg.Heartbeat
	frameJob       msg.FrameKind = 0x24 // fe → worker: msg.JobHeader + graph section
	frameCancel    msg.FrameKind = 0x25 // fe → worker: job id, no payload
	frameRound     msg.FrameKind = 0x26 // worker → fe: job id + RoundStats JSON
	frameResult    msg.FrameKind = 0x27 // worker → fe: job id + core.Result JSON
	frameJobError  msg.FrameKind = 0x28 // worker → fe: job id + error text
)

// writeTimeout bounds any single frame write on either side; a peer
// that cannot absorb a frame for this long is treated as gone.
const writeTimeout = 30 * time.Second

// WorkerError is the typed failure a job observes when the worker
// executing it died (crash, heartbeat loss, broken connection) rather
// than the run itself failing. The front end retries the job once on
// another worker before letting this surface.
type WorkerError struct {
	// Worker is the registry id of the worker that was lost.
	Worker string
	// JobID is the dispatch id the job had on that worker.
	JobID string
	// Reason is the underlying transport or deadline error.
	Reason error

	conn *workerConn // retry exclusion; nil when no dispatch happened
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("cluster: worker %s lost with job %s in flight: %v", e.Worker, e.JobID, e.Reason)
}

func (e *WorkerError) Unwrap() error { return e.Reason }

// ErrNoWorkers is returned by the dispatching runner when the registry
// is empty at pick time.
var ErrNoWorkers = errors.New("cluster: no workers registered")

// Config configures a FrontEnd.
type Config struct {
	// Listen is the TCP address workers dial ("host:port"; ":0" for an
	// ephemeral port in tests).
	Listen string
	// Token authenticates workers: a hello with any other value is
	// rejected before registration.
	Token uint64
	// HeartbeatInterval is the cadence workers are told to report load
	// at (default 1s); HeartbeatTimeout is how long a silent connection
	// survives before eviction (default 3× the interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Registry, when non-nil, receives the cluster instruments
	// (serve_cluster_*).
	Registry *metrics.Registry
	// Logf, when non-nil, receives operational log lines (registrations,
	// evictions, retries).
	Logf func(format string, args ...any)
}

// dispatch is one job attempt on one worker. rounds accumulates the
// streamed RoundStats under FrontEnd.mu; done receives the attempt's
// single terminal outcome.
type dispatch struct {
	id     string
	rounds []metrics.RoundStats
	done   chan outcome
}

// outcome is a dispatch's terminal event: exactly one field is set.
type outcome struct {
	res   *core.Result
	err   error        // remote runner error — deterministic, not retried
	death *WorkerError // worker lost — retried once
}

// workerConn is one registered worker. wmu serializes frame writes; the
// load/registry fields are guarded by FrontEnd.mu.
type workerConn struct {
	id       string
	name     string
	addr     string
	capacity int
	conn     net.Conn
	wmu      sync.Mutex

	running  int
	queued   int
	lastBeat time.Time
	inflight map[string]*dispatch
	dead     bool
}

func (w *workerConn) writeFrame(kind msg.FrameKind, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	_ = w.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	return msg.WriteFrame(w.conn, kind, payload)
}

// FrontEnd is the routing layer: it owns the worker registry and hands
// the service a Runner that executes jobs remotely. It implements
// service.ClusterStatus for /readyz and /healthz.
type FrontEnd struct {
	cfg  Config
	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup

	mu           sync.Mutex
	workers      []*workerConn // registration order; dead ones removed
	nextWorker   int
	nextDispatch int
	inflight     int // dispatches awaiting an outcome, for Drain
	dispatched   int64
	retries      int64
	workerErrors int64
	closed       bool

	gWorkers      *metrics.Gauge
	gHeartbeatAge *metrics.Gauge
	cDispatch     *metrics.Counter
	cRetries      *metrics.Counter
	cWorkerErrs   *metrics.Counter
}

// Listen starts a front end accepting worker registrations.
func Listen(cfg Config) (*FrontEnd, error) {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * cfg.HeartbeatInterval
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Listen, err)
	}
	fe := &FrontEnd{
		cfg:           cfg,
		ln:            ln,
		stop:          make(chan struct{}),
		gWorkers:      reg.Gauge("serve_cluster_workers"),
		gHeartbeatAge: reg.Gauge("serve_cluster_heartbeat_age_usec"),
		cDispatch:     reg.Counter("serve_cluster_dispatch_total"),
		cRetries:      reg.Counter("serve_cluster_retries_total"),
		cWorkerErrs:   reg.Counter("serve_cluster_worker_errors_total"),
	}
	for name, help := range map[string]string{
		"serve_cluster_workers":             "Workers currently registered with the front end.",
		"serve_cluster_heartbeat_age_usec":  "Age of the stalest registered worker's last heartbeat, in microseconds.",
		"serve_cluster_dispatch_total":      "Job dispatch attempts to workers (retries included).",
		"serve_cluster_retries_total":       "Jobs re-dispatched after losing their worker mid-run.",
		"serve_cluster_worker_errors_total": "Worker failures observed (evictions, broken connections, cancel timeouts).",
	} {
		reg.Help(name, help)
	}
	fe.wg.Add(2)
	go fe.accept()
	go fe.janitor()
	return fe, nil
}

// Addr is the bound listen address, for workers to dial.
func (fe *FrontEnd) Addr() string { return fe.ln.Addr().String() }

// accept registers workers until the listener closes.
func (fe *FrontEnd) accept() {
	defer fe.wg.Done()
	for {
		c, err := fe.ln.Accept()
		if err != nil {
			return
		}
		fe.wg.Add(1)
		go fe.serveConn(c)
	}
}

// reject answers a failed handshake with an error frame (empty job id)
// so the worker can log why, then drops the connection.
func reject(c net.Conn, reason string) {
	_ = c.SetWriteDeadline(time.Now().Add(writeTimeout))
	_ = msg.WriteFrame(c, frameJobError, msg.AppendJobBlob(nil, "", []byte(reason)))
	c.Close()
}

// serveConn runs one worker connection end to end: handshake, registry
// entry, then the frame loop until the connection dies or is evicted.
func (fe *FrontEnd) serveConn(c net.Conn) {
	defer fe.wg.Done()
	_ = c.SetReadDeadline(time.Now().Add(fe.cfg.HeartbeatTimeout))
	fr := msg.NewFrameReader(c, 0)
	kind, payload, err := fr.Next()
	if err != nil || kind != frameHello {
		reject(c, "cluster: want a worker hello frame first")
		return
	}
	hello, err := msg.DecodeWorkerHello(payload)
	if err != nil {
		reject(c, err.Error())
		return
	}
	if hello.Token != fe.cfg.Token {
		fe.cfg.Logf("cluster: rejected worker from %s: bad token", c.RemoteAddr())
		reject(c, "cluster: bad launch token")
		return
	}
	fe.mu.Lock()
	if fe.closed {
		fe.mu.Unlock()
		reject(c, "cluster: front end shutting down")
		return
	}
	fe.nextWorker++
	w := &workerConn{
		id:       fmt.Sprintf("w%03d", fe.nextWorker),
		name:     hello.Name,
		addr:     c.RemoteAddr().String(),
		capacity: hello.Capacity,
		conn:     c,
		lastBeat: time.Now(),
		inflight: map[string]*dispatch{},
	}
	fe.workers = append(fe.workers, w)
	fe.gWorkers.Set(int64(len(fe.workers)))
	fe.mu.Unlock()
	welcome := msg.WorkerWelcome{ID: w.id, HeartbeatMillis: int(fe.cfg.HeartbeatInterval / time.Millisecond)}
	if welcome.HeartbeatMillis <= 0 {
		welcome.HeartbeatMillis = 1
	}
	if err := w.writeFrame(frameWelcome, welcome.Append(nil)); err != nil {
		fe.fail(w, fmt.Errorf("welcome write: %w", err))
		return
	}
	fe.cfg.Logf("cluster: worker %s registered from %s (name %q, capacity %d)",
		w.id, w.addr, w.name, w.capacity)
	fe.readLoop(w, fr)
}

// readLoop consumes one worker's frames. Every read is bounded by the
// heartbeat timeout, so a worker that stops heartbeating — SIGKILL, a
// wedged process, a cut link — fails its next read deadline and is
// evicted within one timeout.
func (fe *FrontEnd) readLoop(w *workerConn, fr *msg.FrameReader) {
	for {
		_ = w.conn.SetReadDeadline(time.Now().Add(fe.cfg.HeartbeatTimeout))
		kind, payload, err := fr.Next()
		if err != nil {
			fe.fail(w, err)
			return
		}
		switch kind {
		case frameHeartbeat:
			hb, err := msg.DecodeHeartbeat(payload)
			if err != nil {
				fe.fail(w, err)
				return
			}
			fe.mu.Lock()
			w.running, w.queued, w.lastBeat = hb.Running, hb.Queued, time.Now()
			fe.mu.Unlock()
		case frameRound:
			id, blob, err := msg.DecodeJobBlob(payload)
			if err != nil {
				fe.fail(w, err)
				return
			}
			var rs metrics.RoundStats
			if err := json.Unmarshal(blob, &rs); err != nil {
				fe.fail(w, fmt.Errorf("job %s round stats: %w", id, err))
				return
			}
			fe.mu.Lock()
			// A dispatch the front end abandoned (cancel grace expired)
			// may still stream; unknown ids are dropped, not errors.
			if d := w.inflight[id]; d != nil {
				d.rounds = append(d.rounds, rs)
			}
			fe.mu.Unlock()
		case frameResult:
			id, blob, err := msg.DecodeJobBlob(payload)
			if err != nil {
				fe.fail(w, err)
				return
			}
			res := new(core.Result)
			if err := json.Unmarshal(blob, res); err != nil {
				fe.fail(w, fmt.Errorf("job %s result: %w", id, err))
				return
			}
			fe.conclude(w, id, outcome{res: res})
		case frameJobError:
			id, blob, err := msg.DecodeJobBlob(payload)
			if err != nil {
				fe.fail(w, err)
				return
			}
			fe.conclude(w, id, outcome{err: fmt.Errorf("cluster: worker %s: %s", w.id, blob)})
		default:
			fe.fail(w, fmt.Errorf("unexpected %#x frame", uint8(kind)))
			return
		}
	}
}

// conclude delivers a dispatch's terminal outcome exactly once; an
// unknown id (already concluded or abandoned) is ignored.
func (fe *FrontEnd) conclude(w *workerConn, id string, o outcome) {
	fe.mu.Lock()
	d := w.inflight[id]
	if d != nil {
		delete(w.inflight, id)
		fe.inflight--
	}
	fe.mu.Unlock()
	if d != nil {
		d.done <- o
	}
}

// fail evicts a worker: removes it from the registry, closes its
// connection, and concludes every in-flight dispatch with a typed
// WorkerError so the waiting jobs can retry. Idempotent per worker.
func (fe *FrontEnd) fail(w *workerConn, reason error) {
	fe.mu.Lock()
	if w.dead {
		fe.mu.Unlock()
		return
	}
	w.dead = true
	for i, x := range fe.workers {
		if x == w {
			fe.workers = append(fe.workers[:i], fe.workers[i+1:]...)
			break
		}
	}
	fe.gWorkers.Set(int64(len(fe.workers)))
	var ds []*dispatch
	for id, d := range w.inflight {
		delete(w.inflight, id)
		fe.inflight--
		ds = append(ds, d)
	}
	// A worker that closed its connection cleanly with nothing in
	// flight deregistered, it didn't fail; same for connections torn
	// down by our own shutdown.
	clean := len(ds) == 0 && (errors.Is(reason, io.EOF) || fe.closed)
	if !clean {
		fe.workerErrors++
		fe.cWorkerErrs.Inc()
	}
	fe.mu.Unlock()
	w.conn.Close()
	if clean {
		fe.cfg.Logf("cluster: worker %s deregistered", w.id)
	} else {
		fe.cfg.Logf("cluster: worker %s lost (%d jobs in flight): %v", w.id, len(ds), reason)
	}
	for _, d := range ds {
		d.done <- outcome{death: &WorkerError{Worker: w.id, JobID: d.id, Reason: reason, conn: w}}
	}
}

// janitor refreshes the heartbeat-age gauge. Eviction itself rides the
// per-read deadlines in readLoop; the gauge exists so an operator can
// watch staleness approach the deadline before anything is cut off.
func (fe *FrontEnd) janitor() {
	defer fe.wg.Done()
	tick := time.NewTicker(fe.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-fe.stop:
			return
		case <-tick.C:
			var maxAge time.Duration
			now := time.Now()
			fe.mu.Lock()
			for _, w := range fe.workers {
				if age := now.Sub(w.lastBeat); age > maxAge {
					maxAge = age
				}
			}
			fe.mu.Unlock()
			fe.gHeartbeatAge.Set(maxAge.Microseconds())
		}
	}
}

// pick chooses the dispatch target: fewest jobs in flight, ties broken
// by registration order — deterministic, so a given load state always
// routes the same way.
func (fe *FrontEnd) pick(exclude *workerConn) (*workerConn, *dispatch, error) {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.closed {
		return nil, nil, errors.New("cluster: front end closed")
	}
	var w *workerConn
	for _, cand := range fe.workers {
		if cand == exclude || cand.dead {
			continue
		}
		if w == nil || len(cand.inflight) < len(w.inflight) {
			w = cand
		}
	}
	if w == nil {
		return nil, nil, ErrNoWorkers
	}
	fe.nextDispatch++
	d := &dispatch{id: fmt.Sprintf("d%06d", fe.nextDispatch), done: make(chan outcome, 1)}
	w.inflight[d.id] = d
	fe.inflight++
	fe.dispatched++
	return w, d, nil
}

// runOnce executes one dispatch attempt: pick a worker, ship the job,
// wait for its outcome. Cancellation sends a cancel frame and keeps
// waiting (the worker aborts at its next round barrier and returns the
// partial result); a worker that ignores the cancel past the heartbeat
// timeout is abandoned with a WorkerError.
func (fe *FrontEnd) runOnce(ctx context.Context, req service.JobRequest, exclude *workerConn) (*core.Result, []metrics.RoundStats, error) {
	w, d, err := fe.pick(exclude)
	if err != nil {
		return nil, nil, err
	}
	fe.cDispatch.Inc()
	hdr := msg.JobHeader{
		ID: d.id, Strong: req.Strong, Recovery: req.Recovery,
		Seed: req.Seed, MaxRounds: req.MaxRounds,
	}
	payload := dnet.AppendGraph(hdr.Append(nil), req.Graph)
	if err := w.writeFrame(frameJob, payload); err != nil {
		fe.fail(w, fmt.Errorf("job write: %w", err))
		// fail concluded d with the death outcome; fall through to wait.
	}
	ctxDone := ctx.Done()
	var grace *time.Timer
	var graceC <-chan time.Time
	defer func() {
		if grace != nil {
			grace.Stop()
		}
	}()
	for {
		select {
		case o := <-d.done:
			return fe.settle(d, o)
		case <-ctxDone:
			ctxDone = nil // fire once; the channel stays closed
			// Best effort: a write failure here means the connection is
			// already dying and readLoop will conclude the dispatch.
			_ = w.writeFrame(frameCancel, msg.AppendJobBlob(nil, d.id, nil))
			grace = time.NewTimer(fe.cfg.HeartbeatTimeout)
			graceC = grace.C
		case <-graceC:
			// The outcome may have raced the timer; prefer it.
			select {
			case o := <-d.done:
				return fe.settle(d, o)
			default:
			}
			fe.mu.Lock()
			delete(w.inflight, d.id)
			fe.inflight--
			fe.workerErrors++
			fe.mu.Unlock()
			fe.cWorkerErrs.Inc()
			return nil, nil, &WorkerError{
				Worker: w.id, JobID: d.id, conn: w,
				Reason: fmt.Errorf("no response to cancel within %v", fe.cfg.HeartbeatTimeout),
			}
		}
	}
}

// settle unpacks an outcome. The rounds slice is safe to read without
// the lock: the dispatch is out of the inflight map, so the reader is
// done appending.
func (fe *FrontEnd) settle(d *dispatch, o outcome) (*core.Result, []metrics.RoundStats, error) {
	switch {
	case o.death != nil:
		return nil, nil, o.death
	case o.err != nil:
		return nil, nil, o.err
	default:
		return o.res, d.rounds, nil
	}
}

// Runner returns the dispatching runner to plug into
// service.Config.Runner: jobs submitted over HTTP execute on remote
// workers, with one transparent retry when a worker dies mid-run.
// Round stats are withheld from the sink until the attempt that
// produced them succeeds, so a failed attempt's partial stream never
// leaks into the job record.
func (fe *FrontEnd) Runner() service.Runner {
	return func(ctx context.Context, req service.JobRequest, sink metrics.Sink) (*core.Result, error) {
		res, rounds, err := fe.runOnce(ctx, req, nil)
		var we *WorkerError
		if errors.As(err, &we) && we.conn != nil && ctx.Err() == nil {
			fe.mu.Lock()
			fe.retries++
			fe.mu.Unlock()
			fe.cRetries.Inc()
			fe.cfg.Logf("cluster: retrying job elsewhere: %v", we)
			res, rounds, err = fe.runOnce(ctx, req, we.conn)
			if errors.Is(err, ErrNoWorkers) {
				err = we // nowhere to retry: surface the original loss
			}
		}
		if err != nil {
			return nil, err
		}
		for _, rs := range rounds {
			sink.EmitRound(rs)
		}
		return res, nil
	}
}

// ClusterHealth implements service.ClusterStatus.
func (fe *FrontEnd) ClusterHealth() service.ClusterHealth {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	h := service.ClusterHealth{
		Ready:        len(fe.workers) > 0 && !fe.closed,
		Workers:      make([]service.WorkerInfo, 0, len(fe.workers)),
		Dispatched:   fe.dispatched,
		Retries:      fe.retries,
		WorkerErrors: fe.workerErrors,
	}
	now := time.Now()
	for _, w := range fe.workers {
		h.Workers = append(h.Workers, service.WorkerInfo{
			ID: w.id, Name: w.name, Addr: w.addr,
			Running: w.running, Queued: w.queued, Inflight: len(w.inflight),
			HeartbeatAgeSec: now.Sub(w.lastBeat).Seconds(),
		})
	}
	return h
}

// Drain waits for every in-flight dispatch to conclude. Call it after
// the HTTP service's own Shutdown: the service drains its queue through
// the dispatching runner, so normally nothing remains by the time this
// runs; the deadline covers the case where it does.
func (fe *FrontEnd) Drain(ctx context.Context) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		fe.mu.Lock()
		n := fe.inflight
		fe.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: drain abandoned %d in-flight jobs: %w", n, ctx.Err())
		case <-tick.C:
		}
	}
}

// Close stops accepting registrations, drops every worker connection
// (concluding any in-flight dispatches with WorkerError), and waits for
// the connection handlers to exit. Idempotent.
func (fe *FrontEnd) Close() {
	fe.mu.Lock()
	if fe.closed {
		fe.mu.Unlock()
		return
	}
	fe.closed = true
	ws := append([]*workerConn(nil), fe.workers...)
	fe.mu.Unlock()
	close(fe.stop)
	fe.ln.Close()
	for _, w := range ws {
		w.conn.Close() // readLoop fails the worker and flushes its dispatches
	}
	fe.wg.Wait()
}
