package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/msg"
	dnet "dima/internal/net"
	"dima/internal/service"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Connect is the front end's cluster address ("host:port").
	Connect string
	// Token must match the front end's launch token.
	Token uint64
	// Name is an operator label reported in the registry (optional).
	Name string
	// Capacity is how many jobs run concurrently (default 1); jobs
	// beyond it queue on the worker and count in its heartbeat load.
	Capacity int
	// ShardWorkers is the shard engine's worker count per job (0 =
	// GOMAXPROCS). Results are byte-identical at any value, so workers
	// of different sizes can share a pool.
	ShardWorkers int
	// Runner executes each dispatched job; nil means
	// service.ShardRunner(ShardWorkers). Tests inject failures here.
	Runner service.Runner
	// DialTimeout bounds the connect + handshake (default 10s).
	DialTimeout time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// worker is one registered worker process's state.
type worker struct {
	cfg  WorkerConfig
	conn net.Conn
	wmu  sync.Mutex
	id   string

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]context.CancelFunc
	running int
	queued  int

	sem   chan struct{}
	jobWG sync.WaitGroup
}

// RunWorker dials the front end, registers with the launch token, and
// serves dispatched jobs until ctx is canceled or the connection ends.
// A connection closed by the front end with no jobs in flight (its
// drain) returns nil; losing it mid-job returns an error after the
// jobs' goroutines are torn down.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Runner == nil {
		cfg.Runner = service.ShardRunner(cfg.ShardWorkers)
	}
	d := net.Dialer{Timeout: cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", cfg.Connect)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", cfg.Connect, err)
	}
	w := &worker{
		cfg:  cfg,
		conn: conn,
		jobs: map[string]context.CancelFunc{},
		sem:  make(chan struct{}, cfg.Capacity),
	}
	w.baseCtx, w.baseCancel = context.WithCancel(ctx)
	defer w.baseCancel()
	defer conn.Close()
	return w.run()
}

func (w *worker) writeFrame(kind msg.FrameKind, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	_ = w.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	return msg.WriteFrame(w.conn, kind, payload)
}

// run performs the handshake and serves frames.
func (w *worker) run() error {
	hello := msg.WorkerHello{Name: w.cfg.Name, Capacity: w.cfg.Capacity, Token: w.cfg.Token}
	if err := w.writeFrame(frameHello, hello.Append(nil)); err != nil {
		return fmt.Errorf("cluster: hello: %w", err)
	}
	_ = w.conn.SetReadDeadline(time.Now().Add(w.cfg.DialTimeout))
	fr := msg.NewFrameReader(w.conn, 0)
	kind, payload, err := fr.Next()
	if err != nil {
		return fmt.Errorf("cluster: handshake read: %w", err)
	}
	if kind == frameJobError {
		_, text, derr := msg.DecodeJobBlob(payload)
		if derr == nil {
			return fmt.Errorf("cluster: front end rejected registration: %s", text)
		}
		return errors.New("cluster: front end rejected registration")
	}
	if kind != frameWelcome {
		return fmt.Errorf("cluster: handshake wants a welcome frame, got %#x", uint8(kind))
	}
	welcome, err := msg.DecodeWorkerWelcome(payload)
	if err != nil {
		return fmt.Errorf("cluster: handshake: %w", err)
	}
	w.id = welcome.ID
	w.cfg.Logf("worker %s: registered with %s (heartbeat every %dms)",
		w.id, w.cfg.Connect, welcome.HeartbeatMillis)

	// Heartbeats ride their own goroutine so a long round never starves
	// them; baseCancel (set on every exit path) stops it.
	w.jobWG.Add(1)
	go w.heartbeatLoop(time.Duration(welcome.HeartbeatMillis) * time.Millisecond)

	err = w.readLoop(fr)
	w.baseCancel() // abort running jobs; their goroutines exit promptly
	w.jobWG.Wait()
	return err
}

// heartbeatLoop reports load until the worker shuts down. A failed
// write closes the connection so the read loop exits too.
func (w *worker) heartbeatLoop(interval time.Duration) {
	defer w.jobWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-w.baseCtx.Done():
			return
		case <-tick.C:
			w.mu.Lock()
			hb := msg.Heartbeat{Running: w.running, Queued: w.queued}
			w.mu.Unlock()
			if err := w.writeFrame(frameHeartbeat, hb.Append(nil)); err != nil {
				w.conn.Close()
				return
			}
		}
	}
}

// readLoop serves front-end frames until the connection ends.
func (w *worker) readLoop(fr *msg.FrameReader) error {
	for {
		// No read deadline in steady state: job frames are sporadic, and
		// liveness flows the other way (our heartbeats). A dead front end
		// surfaces as a heartbeat write error closing the connection.
		_ = w.conn.SetReadDeadline(time.Time{})
		kind, payload, err := fr.Next()
		if err != nil {
			w.mu.Lock()
			open := len(w.jobs)
			w.mu.Unlock()
			if open == 0 && (errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)) {
				// Clean close at a frame boundary with nothing running:
				// the front end drained and shut down, or our own ctx
				// closed the connection. Normal exit.
				if ctxErr := w.baseCtx.Err(); ctxErr != nil {
					return ctxErr
				}
				w.cfg.Logf("worker %s: front end closed the connection; exiting", w.id)
				return nil
			}
			return fmt.Errorf("cluster: connection lost with %d jobs in flight: %w", open, err)
		}
		switch kind {
		case frameJob:
			hdr, tail, err := msg.DecodeJobHeader(payload)
			if err != nil {
				return fmt.Errorf("cluster: job frame: %w", err)
			}
			g, rest, err := dnet.DecodeGraph(tail)
			if err != nil {
				return fmt.Errorf("cluster: job %s graph: %w", hdr.ID, err)
			}
			if len(rest) != 0 {
				return fmt.Errorf("cluster: job %s: %d trailing bytes after graph", hdr.ID, len(rest))
			}
			jctx, cancel := context.WithCancel(w.baseCtx)
			w.mu.Lock()
			w.jobs[hdr.ID] = cancel
			w.queued++
			w.mu.Unlock()
			w.jobWG.Add(1)
			go w.runJob(jctx, cancel, hdr, g)
		case frameCancel:
			id, _, err := msg.DecodeJobBlob(payload)
			if err != nil {
				return fmt.Errorf("cluster: cancel frame: %w", err)
			}
			w.mu.Lock()
			cancel := w.jobs[id]
			w.mu.Unlock()
			if cancel != nil {
				w.cfg.Logf("worker %s: cancel for job %s", w.id, id)
				cancel()
			}
		default:
			return fmt.Errorf("cluster: unexpected %#x frame from front end", uint8(kind))
		}
	}
}

// runJob executes one dispatched job and streams its rounds + result
// back. The capacity semaphore gates actual execution; a job canceled
// while queued skips straight to the runner, which aborts at its first
// round barrier and yields the same aborted-result shape a running job
// would.
func (w *worker) runJob(jctx context.Context, cancel context.CancelFunc, hdr msg.JobHeader, g *graph.Graph) {
	defer w.jobWG.Done()
	defer cancel()
	acquired := false
	select {
	case w.sem <- struct{}{}:
		acquired = true
	case <-jctx.Done():
	}
	w.mu.Lock()
	w.queued--
	w.running++
	w.mu.Unlock()
	w.cfg.Logf("worker %s: job %s start (n=%d m=%d strong=%v recovery=%v seed=%d)",
		w.id, hdr.ID, g.N(), g.M(), hdr.Strong, hdr.Recovery, hdr.Seed)

	var mem metrics.Memory
	req := service.JobRequest{
		Graph: g, Strong: hdr.Strong, Recovery: hdr.Recovery,
		Seed: hdr.Seed, MaxRounds: hdr.MaxRounds,
	}
	res, err := w.cfg.Runner(jctx, req, &mem)

	if acquired {
		<-w.sem
	}
	w.mu.Lock()
	w.running--
	delete(w.jobs, hdr.ID)
	w.mu.Unlock()

	if err != nil {
		w.cfg.Logf("worker %s: job %s failed: %v", w.id, hdr.ID, err)
		_ = w.writeFrame(frameJobError, msg.AppendJobBlob(nil, hdr.ID, []byte(err.Error())))
		return
	}
	// Rounds first, result last, matching the local emission order the
	// front end replays into the job's sink.
	for _, rs := range mem.Rounds {
		blob, merr := json.Marshal(rs)
		if merr != nil {
			_ = w.writeFrame(frameJobError, msg.AppendJobBlob(nil, hdr.ID, []byte(merr.Error())))
			return
		}
		if w.writeFrame(frameRound, msg.AppendJobBlob(nil, hdr.ID, blob)) != nil {
			return // connection is gone; the front end handles the loss
		}
	}
	blob, merr := json.Marshal(res)
	if merr != nil {
		_ = w.writeFrame(frameJobError, msg.AppendJobBlob(nil, hdr.ID, []byte(merr.Error())))
		return
	}
	_ = w.writeFrame(frameResult, msg.AppendJobBlob(nil, hdr.ID, blob))
	w.cfg.Logf("worker %s: job %s done (%d rounds)", w.id, hdr.ID, len(mem.Rounds))
}
