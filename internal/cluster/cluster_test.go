package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"dima/internal/core"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/msg"
	"dima/internal/rng"
	"dima/internal/service"
)

const testToken = 0x5eed_c0de_5eed_c0de

// leakCheck snapshots goroutine and FD counts and verifies both return
// to baseline after teardown. Call it first: the verification is
// registered as a cleanup, so it runs after the test's own cleanups
// (front-end Close, worker cancels) have torn everything down.
func leakCheck(t *testing.T) {
	t.Helper()
	goroutines := runtime.NumGoroutine()
	fds := countFDs(t)
	t.Cleanup(func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			g, f := runtime.NumGoroutine(), countFDs(t)
			if g <= goroutines && f <= fds {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("leak after teardown: %d goroutines (was %d), %d fds (was %d)",
					g, goroutines, f, fds)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func countFDs(t *testing.T) int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc fd accounting: %v", err)
	}
	return len(ents)
}

// startFrontEnd returns a listening front end with test-fast heartbeats
// and its cleanup registered.
func startFrontEnd(t *testing.T, reg *metrics.Registry) *FrontEnd {
	t.Helper()
	fe, err := Listen(Config{
		Listen:            "127.0.0.1:0",
		Token:             testToken,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		Registry:          reg,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fe.Close)
	return fe
}

// startWorker runs an in-process worker against fe and waits until the
// registry sees it. It returns a channel that carries RunWorker's exit.
func startWorker(t *testing.T, fe *FrontEnd, cfg WorkerConfig) <-chan error {
	t.Helper()
	cfg.Connect = fe.Addr()
	cfg.Token = testToken
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	errc := make(chan error, 1)
	before := len(fe.ClusterHealth().Workers)
	go func() { errc <- RunWorker(ctx, cfg) }()
	waitFor(t, func() bool { return len(fe.ClusterHealth().Workers) > before })
	return errc
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func testGraph(t *testing.T, n int, deg float64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), n, deg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRemoteMatchesLocal is the byte-identity property: a job executed
// through the cluster (dispatch, JSON frames, retry machinery armed)
// yields exactly the result and round stream the local shard runner
// produces, across both algorithms × recovery on/off.
func TestRemoteMatchesLocal(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	startWorker(t, fe, WorkerConfig{ShardWorkers: 2, Capacity: 2})
	remote := fe.Runner()
	local := service.ShardRunner(3) // different worker count on purpose

	ctx := context.Background()
	for _, tc := range []struct{ strong, recovery bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			req := service.JobRequest{
				Graph: testGraph(t, 80, 5, seed), Strong: tc.strong,
				Recovery: tc.recovery, Seed: seed,
			}
			var lm, rm metrics.Memory
			want, err := local(ctx, req, &lm)
			if err != nil {
				t.Fatalf("local %+v seed %d: %v", tc, seed, err)
			}
			got, err := remote(ctx, req, &rm)
			if err != nil {
				t.Fatalf("remote %+v seed %d: %v", tc, seed, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%+v seed %d: remote result diverges:\n got %+v\nwant %+v", tc, seed, got, want)
			}
			if !reflect.DeepEqual(rm.Rounds, lm.Rounds) {
				t.Fatalf("%+v seed %d: remote round stream diverges (%d vs %d rounds)",
					tc, seed, len(rm.Rounds), len(lm.Rounds))
			}
		}
	}
}

// blockingRunner parks jobs until release is closed, reporting each
// start; its context branch returns an engine-shaped aborted result.
func blockingRunner(started chan<- struct{}, release <-chan struct{}) service.Runner {
	return func(ctx context.Context, req service.JobRequest, sink metrics.Sink) (*core.Result, error) {
		if started != nil {
			started <- struct{}{}
		}
		colors := make([]int, req.Graph.M())
		select {
		case <-release:
			return &core.Result{Colors: colors, Terminated: true}, nil
		case <-ctx.Done():
			for i := range colors {
				colors[i] = -1
			}
			return &core.Result{Colors: colors, Aborted: true, MaxColor: -1, HalfColored: req.Graph.M()}, nil
		}
	}
}

// TestFailoverRetriesOnce kills the worker holding a job and expects
// exactly one transparent retry that completes on the survivor.
func TestFailoverRetriesOnce(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	// Worker 1 registers first, so the idle-cluster tie-break routes the
	// job to it; its runner parks so the kill lands mid-job. Worker 2
	// runs jobs for real.
	w1exit := startWorker(t, fe, WorkerConfig{Name: "victim", Runner: blockingRunner(started, release)})
	startWorker(t, fe, WorkerConfig{Name: "survivor", ShardWorkers: 2})

	req := service.JobRequest{Graph: testGraph(t, 60, 4, 7), Seed: 7}
	var mem metrics.Memory
	resc := make(chan *core.Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := fe.Runner()(context.Background(), req, &mem)
		resc <- res
		errc <- err
	}()
	<-started // the job is mid-run on the victim
	// Sever the victim's registry connection — the front-end side of a
	// SIGKILL. Its dispatch must conclude as a WorkerError and retry.
	fe.mu.Lock()
	victim := fe.workers[0]
	fe.mu.Unlock()
	victim.conn.Close()

	res := <-resc
	if err := <-errc; err != nil {
		t.Fatalf("job after failover: %v", err)
	}
	if res == nil || !res.Terminated {
		t.Fatalf("failover result: %+v", res)
	}
	h := fe.ClusterHealth()
	if h.Retries != 1 || h.WorkerErrors != 1 || h.Dispatched != 2 {
		t.Fatalf("counters after failover: retries=%d workerErrors=%d dispatched=%d, want 1/1/2",
			h.Retries, h.WorkerErrors, h.Dispatched)
	}
	if len(h.Workers) != 1 || h.Workers[0].Name != "survivor" {
		t.Fatalf("registry after failover: %+v", h.Workers)
	}
	if err := <-w1exit; err == nil {
		t.Fatal("victim worker exited nil despite losing its connection mid-job")
	}
}

// TestAllWorkersDeadTypedError kills the only worker mid-job: the job
// must fail promptly with a typed WorkerError, not hang.
func TestAllWorkersDeadTypedError(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	startWorker(t, fe, WorkerConfig{Runner: blockingRunner(started, release)})

	errc := make(chan error, 1)
	go func() {
		_, err := fe.Runner()(context.Background(), service.JobRequest{Graph: testGraph(t, 40, 3, 1), Seed: 1}, &metrics.Memory{})
		errc <- err
	}()
	<-started
	fe.mu.Lock()
	conn := fe.workers[0].conn
	fe.mu.Unlock()
	conn.Close()

	select {
	case err := <-errc:
		var we *WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("want a *WorkerError, got %T: %v", err, err)
		}
		if we.Worker != "w001" || we.JobID == "" {
			t.Fatalf("WorkerError fields: %+v", we)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job hung after losing every worker")
	}
	if h := fe.ClusterHealth(); h.Ready {
		t.Fatal("cluster still ready with an empty registry")
	}
	// A fresh submission with no workers at all is a plain ErrNoWorkers.
	if _, err := fe.Runner()(context.Background(), service.JobRequest{Graph: testGraph(t, 10, 2, 2), Seed: 2}, &metrics.Memory{}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("empty-registry submit: %v, want ErrNoWorkers", err)
	}
}

// TestHeartbeatEviction registers a raw connection that handshakes and
// then goes silent; the registry must evict it within the deadline.
func TestHeartbeatEviction(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	c, err := net.Dial("tcp", fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hello := msg.WorkerHello{Name: "mute", Capacity: 1, Token: testToken}
	if err := msg.WriteFrame(c, frameHello, hello.Append(nil)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(fe.ClusterHealth().Workers) == 1 })
	start := time.Now()
	waitFor(t, func() bool { return len(fe.ClusterHealth().Workers) == 0 })
	// Deadline is 150ms in tests; allow generous scheduler slack.
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("eviction took %v", took)
	}
	waitFor(t, func() bool { return fe.ClusterHealth().WorkerErrors == 1 })
}

// TestBadTokenRejected verifies an uninvited worker never registers.
func TestBadTokenRejected(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	err := RunWorker(context.Background(), WorkerConfig{
		Connect: fe.Addr(), Token: testToken + 1, DialTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("bad token accepted")
	}
	if h := fe.ClusterHealth(); len(h.Workers) != 0 {
		t.Fatalf("registry after bad token: %+v", h.Workers)
	}
}

// TestCancelPropagatesToWorker runs the full stack — HTTP service over
// the dispatching runner over a real worker — cancels mid-run, and
// requires a canceled terminal state with full teardown.
func TestCancelPropagatesToWorker(t *testing.T) {
	leakCheck(t)
	reg := metrics.NewRegistry()
	fe := startFrontEnd(t, reg)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	startWorker(t, fe, WorkerConfig{Runner: blockingRunner(started, release)})

	svc := service.New(service.Config{Workers: 1, Runner: fe.Runner(), Cluster: fe, Registry: reg})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := service.JobRequest{Graph: testGraph(t, 50, 4, 3), Seed: 3}
	done := make(chan struct{})
	var res *core.Result
	var runErr error
	go func() {
		res, runErr = fe.Runner()(ctx, req, &metrics.Memory{})
		close(done)
	}()
	<-started
	cancel() // front-end job context canceled → cancel frame → worker ctx
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancel hung")
	}
	if runErr != nil {
		t.Fatalf("canceled job errored: %v", runErr)
	}
	if res == nil || !res.Aborted {
		t.Fatalf("canceled job result: %+v", res)
	}
	// The worker must have no job state left behind.
	if h := fe.ClusterHealth(); h.WorkerErrors != 0 || len(h.Workers) != 1 || h.Workers[0].Inflight != 0 {
		t.Fatalf("post-cancel health: %+v", h)
	}
}

// TestRoutingBalancesByInflight saturates a two-worker pool and checks
// the router spreads jobs instead of piling them on one worker.
func TestRoutingBalancesByInflight(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	release := make(chan struct{})
	startWorker(t, fe, WorkerConfig{Capacity: 2, Runner: blockingRunner(nil, release)})
	startWorker(t, fe, WorkerConfig{Capacity: 2, Runner: blockingRunner(nil, release)})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			if _, err := fe.Runner()(context.Background(), service.JobRequest{Graph: testGraph(t, 20, 3, seed), Seed: seed}, &metrics.Memory{}); err != nil {
				t.Errorf("job %d: %v", seed, err)
			}
		}(uint64(i + 1))
	}
	waitFor(t, func() bool {
		h := fe.ClusterHealth()
		return len(h.Workers) == 2 && h.Workers[0].Inflight == 2 && h.Workers[1].Inflight == 2
	})
	close(release)
	wg.Wait()
}

// TestDrainWaitsForInflight checks Drain blocks on an in-flight job and
// honors its deadline when the job never concludes.
func TestDrainWaitsForInflight(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	startWorker(t, fe, WorkerConfig{Runner: blockingRunner(started, release)})

	jobDone := make(chan struct{})
	go func() {
		defer close(jobDone)
		if _, err := fe.Runner()(context.Background(), service.JobRequest{Graph: testGraph(t, 20, 3, 1), Seed: 1}, &metrics.Memory{}); err != nil {
			t.Errorf("drained job: %v", err)
		}
	}()
	<-started
	short, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := fe.Drain(short); err == nil {
		t.Fatal("drain returned nil with a job still in flight")
	}
	close(release)
	<-jobDone
	long, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := fe.Drain(long); err != nil {
		t.Fatalf("drain after completion: %v", err)
	}
}

// TestWorkerExitsCleanOnFrontEndClose checks the operator contract: a
// front-end shutdown with idle workers ends RunWorker with nil.
func TestWorkerExitsCleanOnFrontEndClose(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	exit := startWorker(t, fe, WorkerConfig{})
	fe.Close()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("idle worker exit after front-end close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after front-end close")
	}
}

// TestRunnerErrorNotRetried: a deterministic runner failure would fail
// again on another worker, so it must surface directly with no retry.
func TestRunnerErrorNotRetried(t *testing.T) {
	leakCheck(t)
	fe := startFrontEnd(t, nil)
	boom := func(ctx context.Context, req service.JobRequest, sink metrics.Sink) (*core.Result, error) {
		return nil, fmt.Errorf("odd vertex count")
	}
	startWorker(t, fe, WorkerConfig{Runner: boom})
	startWorker(t, fe, WorkerConfig{Runner: boom})
	_, err := fe.Runner()(context.Background(), service.JobRequest{Graph: testGraph(t, 20, 3, 1), Seed: 1}, &metrics.Memory{})
	if err == nil || !reflect.DeepEqual(fe.ClusterHealth().Retries, int64(0)) {
		t.Fatalf("runner error handling: err=%v retries=%d", err, fe.ClusterHealth().Retries)
	}
	var we *WorkerError
	if errors.As(err, &we) {
		t.Fatalf("runner error surfaced as WorkerError: %v", err)
	}
}
