package net

import (
	"sort"

	"dima/internal/graph"
	"dima/internal/msg"
)

// nodeStatus is one node's end-of-round report to the coordinator: its
// done flag plus the traffic it generated this round. Routing traffic
// through the coordinator (instead of shared atomics) gives the
// goroutine engine the same per-round attribution as the sequential
// one: every node reports exactly once per round, so the coordinator's
// per-round sums are deterministic even though arrival order is not.
type nodeStatus struct {
	done                        bool
	messages, deliveries, bytes int64
	// kinds is filled only when the run has a RoundObserver.
	kinds [msg.KindCount]KindTraffic
}

// RunChan executes the protocol with one goroutine per vertex and a
// buffered channel per directed link. Synchrony follows the classic
// batch-per-round discipline: every round, each node sends exactly one
// (possibly empty) batch on each outgoing link and then receives exactly
// one batch from each incoming link, so receiving from all neighbors is
// itself the round barrier. A small coordinator exchange decides global
// termination between rounds.
//
// Results are identical to RunSync for deterministic nodes: inboxes are
// sorted canonically before each Step, and nodes draw randomness only
// from their own generators.
func RunChan(g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	if err := validate(g, nodes); err != nil {
		return Result{}, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	n := g.N()

	if allDone(nodes) {
		return Result{Terminated: true}, nil
	}

	// links[u][i]: channel carrying u's per-round batch to its i-th
	// neighbor. Buffer 1 so senders never block: each round uses each
	// link exactly once.
	links := make([][]chan []msg.Message, n)
	// fromNbr[v][j]: the channel on which v receives from its j-th
	// neighbor (the reverse index of links).
	fromNbr := make([][]chan []msg.Message, n)
	for u := 0; u < n; u++ {
		deg := g.Degree(u)
		links[u] = make([]chan []msg.Message, deg)
		fromNbr[u] = make([]chan []msg.Message, deg)
		for i := 0; i < deg; i++ {
			links[u][i] = make(chan []msg.Message, 1)
		}
	}
	for u := 0; u < n; u++ {
		for i, v := range g.Neighbors(u) {
			// Find u's slot in v's neighbor list.
			for j, w := range g.Neighbors(v) {
				if w == u {
					fromNbr[v][j] = links[u][i]
					break
				}
			}
		}
	}

	observing := cfg.Observe != nil

	// Per-round coordination: nodes report done status and round
	// traffic, the coordinator answers with continue/stop.
	status := make(chan nodeStatus, n)
	ctrl := make([]chan bool, n)
	for u := range ctrl {
		ctrl[u] = make(chan bool, 1)
	}

	for u := 0; u < n; u++ {
		go func(u int) {
			node := nodes[u]
			nbrs := g.Neighbors(u)
			var inbox []msg.Message
			for round := 0; ; round++ {
				sort.Slice(inbox, func(i, j int) bool {
					return msg.Less(inbox[i], inbox[j])
				})
				out := node.Step(round, inbox)
				var st nodeStatus
				st.messages = int64(len(out))
				for _, m := range out {
					sz := int64(m.Size())
					st.bytes += sz
					if observing {
						k := &st.kinds[m.Kind]
						k.Messages++
						k.Bytes += sz
					}
				}
				// Send this round's batch on every outgoing link. Each
				// receiver gets its own filtered copy when faults are
				// configured; otherwise the shared slice is safe because
				// batches are read-only downstream.
				for i, v := range nbrs {
					batch := out
					if cfg.Fault != nil {
						batch = nil
						for _, m := range out {
							if !cfg.Fault.Drop(round, m, v) {
								batch = append(batch, m)
							}
						}
					}
					st.deliveries += int64(len(batch))
					if observing {
						for _, m := range batch {
							st.kinds[m.Kind].Deliveries++
						}
					}
					links[u][i] <- batch
				}
				// Receive one batch from every neighbor: the barrier.
				// A fresh slice each round: nodes may retain inbox
				// messages across steps.
				inbox = nil
				for j := range nbrs {
					inbox = append(inbox, <-fromNbr[u][j]...)
				}
				// Coordinator round: report done + traffic, await verdict.
				st.done = node.Done()
				status <- st
				if stop := <-ctrl[u]; stop {
					return
				}
			}
		}(u)
	}

	stopAll := func(stop bool) {
		for u := 0; u < n; u++ {
			ctrl[u] <- stop
		}
	}
	var res Result
	for round := 0; round < maxRounds; round++ {
		done := true
		var rt RoundTraffic
		for i := 0; i < n; i++ {
			st := <-status
			if !st.done {
				done = false
			}
			res.Messages += st.messages
			res.Deliveries += st.deliveries
			res.Bytes += st.bytes
			if observing {
				for k := range rt.Kinds {
					rt.Kinds[k].Messages += st.kinds[k].Messages
					rt.Kinds[k].Deliveries += st.kinds[k].Deliveries
					rt.Kinds[k].Bytes += st.kinds[k].Bytes
				}
				rt.Messages += st.messages
				rt.Deliveries += st.deliveries
				rt.Bytes += st.bytes
			}
		}
		if observing {
			rt.Round = round
			cfg.Observe(rt)
		}
		res.Rounds = round + 1
		if done {
			stopAll(true)
			res.Terminated = true
			break
		}
		if round == maxRounds-1 {
			stopAll(true)
			break
		}
		stopAll(false)
	}
	return res, nil
}
