package net

import (
	"context"

	"dima/internal/graph"
	"dima/internal/msg"
)

// nodeStatus is one node's end-of-round report to the coordinator: its
// done flag plus the traffic it generated this round. Routing traffic
// through the coordinator (instead of shared atomics) gives the
// goroutine engine the same per-round attribution as the sequential
// one: every node reports exactly once per round, so the coordinator's
// per-round sums are deterministic even though arrival order is not.
type nodeStatus struct {
	done                        bool
	messages, deliveries, bytes int64
	// kinds is filled only when the run has a RoundObserver.
	kinds [msg.KindCount]KindTraffic
}

// filterDrops applies f to out for receiver v, copying only from the
// first dropped message on: when nothing is dropped — the common case
// even under faults — the original slice is returned with zero copies
// and zero allocations. Each message gets exactly one Drop call (the
// kept prefix is copied, not re-filtered), so stateful injectors
// observe the same call sequence as a full filtering pass. *buf is the
// caller's reusable backing array for the copied case.
func filterDrops(out []msg.Message, round, v int, f FaultInjector, buf *[]msg.Message) []msg.Message {
	for i, m := range out {
		if !f.Drop(round, m, v) {
			continue
		}
		kept := append((*buf)[:0], out[:i]...)
		for _, m2 := range out[i+1:] {
			if !f.Drop(round, m2, v) {
				kept = append(kept, m2)
			}
		}
		*buf = kept
		return kept
	}
	return out
}

// RunChan executes the protocol with one goroutine per vertex and a
// buffered channel per directed link. Synchrony follows the classic
// batch-per-round discipline: every round, each node sends exactly one
// (possibly empty) batch on each outgoing link and then receives exactly
// one batch from each incoming link, so receiving from all neighbors is
// itself the round barrier. A small coordinator exchange decides global
// termination between rounds.
//
// RunChanCtx is RunChan with an explicit context: the coordinator stops
// the run at the next round barrier after ctx is canceled, releases
// every node goroutine, and returns the partial Result with Aborted
// set.
func RunChanCtx(ctx context.Context, g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	cfg.Ctx = ctx
	return RunChan(g, nodes, cfg)
}

// Results are identical to RunSync for deterministic nodes: inboxes are
// sorted canonically before each Step, and nodes draw randomness only
// from their own generators.
func RunChan(g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	if err := validate(g, nodes); err != nil {
		return Result{}, err
	}
	ctx := cfg.ctx()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	n := g.N()

	if allDone(nodes) {
		return Result{Terminated: true}, nil
	}
	if canceled(ctx) {
		return Result{Aborted: true}, nil
	}

	// links[u][i]: channel carrying u's per-round batch to its i-th
	// neighbor. Buffer 1 so senders never block: each round uses each
	// link exactly once.
	links := make([][]chan []msg.Message, n)
	// fromNbr[v][j]: the channel on which v receives from its j-th
	// neighbor (the reverse index of links).
	fromNbr := make([][]chan []msg.Message, n)
	for u := 0; u < n; u++ {
		deg := g.Degree(u)
		links[u] = make([]chan []msg.Message, deg)
		fromNbr[u] = make([]chan []msg.Message, deg)
		for i := 0; i < deg; i++ {
			links[u][i] = make(chan []msg.Message, 1)
		}
	}
	for u := 0; u < n; u++ {
		for i, v := range g.Neighbors(u) {
			// Find u's slot in v's neighbor list.
			for j, w := range g.Neighbors(v) {
				if w == u {
					fromNbr[v][j] = links[u][i]
					break
				}
			}
		}
	}

	observing := cfg.Observe != nil

	// Per-round coordination: nodes report done status and round
	// traffic, the coordinator answers with continue/stop.
	status := make(chan nodeStatus, n)
	ctrl := make([]chan bool, n)
	for u := range ctrl {
		ctrl[u] = make(chan bool, 1)
	}

	for u := 0; u < n; u++ {
		go func(u int) {
			node := nodes[u]
			nbrs := g.Neighbors(u)
			var inbox []msg.Message
			// filterBufs[i] is reused across rounds for the filtered batch
			// to neighbor i. Safe: the receiver finishes reading the batch
			// before it reports status, the coordinator answers ctrl only
			// after every status, and this sender refills the buffer only
			// after ctrl — a happens-before chain covering the reuse.
			var filterBufs [][]msg.Message
			if cfg.Fault != nil {
				filterBufs = make([][]msg.Message, len(nbrs))
			}
			for round := 0; ; round++ {
				msg.Sort(inbox)
				out := node.Step(round, inbox)
				// Done is evaluated here, immediately after the step —
				// the same evaluation point as RunSync. Evaluating after
				// the inbox receive below would diverge once a pending
				// inbox can resurrect a Done node (loss recovery).
				var st nodeStatus
				st.done = node.Done()
				st.messages = int64(len(out))
				for _, m := range out {
					sz := int64(m.Size())
					st.bytes += sz
					if observing {
						k := &st.kinds[m.Kind]
						k.Messages++
						k.Bytes += sz
					}
				}
				// Send this round's batch on every outgoing link. When
				// faults drop something, the receiver gets its own filtered
				// copy; otherwise the shared slice is safe because batches
				// are read-only downstream.
				for i, v := range nbrs {
					batch := out
					if cfg.Fault != nil {
						batch = filterDrops(out, round, v, cfg.Fault, &filterBufs[i])
					}
					st.deliveries += int64(len(batch))
					if observing {
						for _, m := range batch {
							st.kinds[m.Kind].Deliveries++
						}
					}
					links[u][i] <- batch
				}
				// Receive one batch from every neighbor: the barrier. The
				// inbox buffer is reused across rounds — the Node contract
				// forbids retaining the slice.
				inbox = inbox[:0]
				for j := range nbrs {
					inbox = append(inbox, <-fromNbr[u][j]...)
				}
				// Coordinator round: report done + traffic, await verdict.
				status <- st
				if stop := <-ctrl[u]; stop {
					return
				}
			}
		}(u)
	}

	stopAll := func(stop bool) {
		for u := 0; u < n; u++ {
			ctrl[u] <- stop
		}
	}
	var res Result
	for round := 0; round < maxRounds; round++ {
		done := true
		var rt RoundTraffic
		for i := 0; i < n; i++ {
			st := <-status
			if !st.done {
				done = false
			}
			res.Messages += st.messages
			res.Deliveries += st.deliveries
			res.Bytes += st.bytes
			if observing {
				for k := range rt.Kinds {
					rt.Kinds[k].Messages += st.kinds[k].Messages
					rt.Kinds[k].Deliveries += st.kinds[k].Deliveries
					rt.Kinds[k].Bytes += st.kinds[k].Bytes
				}
				rt.Messages += st.messages
				rt.Deliveries += st.deliveries
				rt.Bytes += st.bytes
			}
		}
		if observing {
			rt.Round = round
			cfg.Observe(rt)
		}
		res.Rounds = round + 1
		if done {
			stopAll(true)
			res.Terminated = true
			break
		}
		// Cancellation point: the same barrier position as RunSync (after
		// the done verdict, before committing to another round), so a
		// canceled run carries the identical partial Result. stopAll
		// releases every node goroutine, which is parked on ctrl here.
		if canceled(ctx) {
			stopAll(true)
			res.Aborted = true
			break
		}
		if round == maxRounds-1 {
			stopAll(true)
			break
		}
		stopAll(false)
	}
	return res, nil
}
