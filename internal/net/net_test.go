package net

import (
	"sync"
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/msg"
)

// echoNode broadcasts one message in round 0 carrying its id, then
// collects everything it hears for a fixed number of rounds.
type echoNode struct {
	id     int
	rounds int
	heard  []msg.Message
	mu     sync.Mutex
}

func (e *echoNode) ID() int { return e.id }

func (e *echoNode) Step(round int, inbox []msg.Message) []msg.Message {
	e.mu.Lock()
	e.heard = append(e.heard, inbox...)
	e.mu.Unlock()
	if round == 0 {
		return []msg.Message{{Kind: msg.KindUpdate, From: e.id, To: msg.Broadcast, Edge: -1, Color: -1}}
	}
	return nil
}

func (e *echoNode) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.heard) > 0 || e.rounds > 0
}

func echoNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &echoNode{id: i}
	}
	return nodes
}

// shardWith pins RunShard to a fixed worker count so the shared engine
// tests cover single-shard and multi-shard (cross-shard merge) layouts.
func shardWith(workers int) Engine {
	return func(g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
		cfg.Workers = workers
		return RunShard(g, nodes, cfg)
	}
}

func engines() map[string]Engine {
	return map[string]Engine{
		"sync":    RunSync,
		"chan":    RunChan,
		"shard":   RunShard,
		"shard-1": shardWith(1),
		"shard-3": shardWith(3),
	}
}

func TestValidation(t *testing.T) {
	g := gen.Path(3)
	for name, run := range engines() {
		if _, err := run(g, echoNodes(2), Config{}); err == nil {
			t.Fatalf("%s: accepted wrong node count", name)
		}
		nodes := echoNodes(3)
		nodes[1] = nil
		if _, err := run(g, nodes, Config{}); err == nil {
			t.Fatalf("%s: accepted nil node", name)
		}
		nodes = echoNodes(3)
		nodes[1].(*echoNode).id = 5
		if _, err := run(g, nodes, Config{}); err == nil {
			t.Fatalf("%s: accepted misnumbered node", name)
		}
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	// Star: center 0 with 3 leaves. Leaf broadcasts reach only the
	// center; the center's broadcast reaches every leaf.
	g := gen.Star(4)
	for name, run := range engines() {
		nodes := echoNodes(4)
		res, err := run(g, nodes, Config{MaxRounds: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Terminated {
			t.Fatalf("%s: did not terminate", name)
		}
		center := nodes[0].(*echoNode)
		if len(center.heard) != 3 {
			t.Fatalf("%s: center heard %d messages, want 3", name, len(center.heard))
		}
		for i := 1; i < 4; i++ {
			leaf := nodes[i].(*echoNode)
			if len(leaf.heard) != 1 || leaf.heard[0].From != 0 {
				t.Fatalf("%s: leaf %d heard %v", name, i, leaf.heard)
			}
		}
		if res.Messages != 4 {
			t.Fatalf("%s: %d broadcasts, want 4", name, res.Messages)
		}
		if res.Deliveries != 6 {
			t.Fatalf("%s: %d deliveries, want 6", name, res.Deliveries)
		}
	}
}

func TestInboxSorted(t *testing.T) {
	// A triangle where 1 and 2 both send to 0 in round 0; node 0 must
	// see them sorted by From regardless of engine scheduling.
	g := gen.Complete(3)
	for name, run := range engines() {
		var got []msg.Message
		var mu sync.Mutex
		nodes := []Node{
			&fnNode{id: 0, step: func(round int, inbox []msg.Message) []msg.Message {
				if round == 1 {
					mu.Lock()
					got = append([]msg.Message(nil), inbox...)
					mu.Unlock()
				}
				return nil
			}, done: func() bool { return true }},
			&fnNode{id: 1, step: func(round int, inbox []msg.Message) []msg.Message {
				if round == 0 {
					return []msg.Message{{Kind: msg.KindInvite, From: 1, To: 0, Edge: 1, Color: 1}}
				}
				return nil
			}, done: func() bool { return true }},
			&fnNode{id: 2, step: func(round int, inbox []msg.Message) []msg.Message {
				if round == 0 {
					return []msg.Message{{Kind: msg.KindInvite, From: 2, To: 0, Edge: 2, Color: 2}}
				}
				return nil
			}, done: func() bool { return true }},
		}
		// Force at least 2 rounds: done only after round 1.
		fin := false
		nodes[0].(*fnNode).done = func() bool { return fin }
		res, err := run(g, nodes, Config{MaxRounds: 3})
		_ = res
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mu.Lock()
		if len(got) != 2 || got[0].From != 1 || got[1].From != 2 {
			t.Fatalf("%s: inbox %v not sorted/complete", name, got)
		}
		mu.Unlock()
		fin = false
	}
}

// fnNode adapts closures to Node for scripted tests.
type fnNode struct {
	id   int
	step func(int, []msg.Message) []msg.Message
	done func() bool
}

func (f *fnNode) ID() int                                    { return f.id }
func (f *fnNode) Step(r int, in []msg.Message) []msg.Message { return f.step(r, in) }
func (f *fnNode) Done() bool                                 { return f.done() }

func TestMaxRoundsBound(t *testing.T) {
	g := gen.Path(2)
	for name, run := range engines() {
		nodes := []Node{
			&fnNode{id: 0, step: func(int, []msg.Message) []msg.Message { return nil },
				done: func() bool { return false }},
			&fnNode{id: 1, step: func(int, []msg.Message) []msg.Message { return nil },
				done: func() bool { return false }},
		}
		res, err := run(g, nodes, Config{MaxRounds: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Terminated {
			t.Fatalf("%s: reported termination for never-done nodes", name)
		}
		if res.Rounds != 7 {
			t.Fatalf("%s: ran %d rounds, want 7", name, res.Rounds)
		}
	}
}

func TestImmediateTermination(t *testing.T) {
	g := gen.Path(3)
	for name, run := range engines() {
		nodes := make([]Node, 3)
		for i := range nodes {
			i := i
			nodes[i] = &fnNode{id: i,
				step: func(int, []msg.Message) []msg.Message { t.Errorf("%s: Step called on pre-done node", name); return nil },
				done: func() bool { return true }}
		}
		res, err := run(g, nodes, Config{MaxRounds: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Terminated || res.Rounds != 0 {
			t.Fatalf("%s: res = %+v, want immediate termination", name, res)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0)
	for name, run := range engines() {
		res, err := run(g, nil, Config{})
		if err != nil || !res.Terminated {
			t.Fatalf("%s: empty graph: %v %+v", name, err, res)
		}
	}
}

// dropAll drops every delivery to a specific vertex.
type dropAll struct{ victim int }

func (d dropAll) Drop(round int, m msg.Message, to int) bool { return to == d.victim }

func TestFaultInjection(t *testing.T) {
	g := gen.Star(4)
	for name, run := range engines() {
		nodes := echoNodes(4)
		res, err := run(g, nodes, Config{MaxRounds: 5, Fault: dropAll{victim: 0}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		center := nodes[0].(*echoNode)
		if len(center.heard) != 0 {
			t.Fatalf("%s: center heard %d messages despite drop-all", name, len(center.heard))
		}
		// Leaves still hear the center.
		for i := 1; i < 4; i++ {
			if len(nodes[i].(*echoNode).heard) != 1 {
				t.Fatalf("%s: leaf %d deliveries wrong", name, i)
			}
		}
		if res.Deliveries != 3 {
			t.Fatalf("%s: deliveries = %d, want 3", name, res.Deliveries)
		}
	}
}

func TestBytesCounted(t *testing.T) {
	g := gen.Path(2)
	m := msg.Message{Kind: msg.KindUpdate, From: 0, To: msg.Broadcast, Edge: -1, Color: -1,
		Paints: []msg.Paint{{Edge: 3, Color: 1}}}
	for name, run := range engines() {
		sent := false
		nodes := []Node{
			&fnNode{id: 0, step: func(r int, _ []msg.Message) []msg.Message {
				if r == 0 {
					sent = true
					return []msg.Message{m}
				}
				return nil
			}, done: func() bool { return sent }},
			&fnNode{id: 1, step: func(int, []msg.Message) []msg.Message { return nil },
				done: func() bool { return true }},
		}
		res, err := run(g, nodes, Config{MaxRounds: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Bytes != int64(m.Size()) {
			t.Fatalf("%s: bytes = %d, want %d", name, res.Bytes, m.Size())
		}
		sent = false
	}
}
