package net

import (
	"reflect"
	"testing"

	"dima/internal/gen"
	"dima/internal/msg"
)

// chattyNode broadcasts one invite per round for its first `sends`
// rounds, then an update, then goes quiet — deterministic multi-kind
// traffic for observer tests.
type chattyNode struct {
	id, sends int
	round     int
}

func (c *chattyNode) ID() int { return c.id }

func (c *chattyNode) Step(round int, inbox []msg.Message) []msg.Message {
	c.round = round + 1
	if round < c.sends {
		return []msg.Message{{Kind: msg.KindInvite, From: c.id, To: (c.id + 1), Edge: c.id, Color: round}}
	}
	if round == c.sends {
		return []msg.Message{{Kind: msg.KindUpdate, From: c.id, To: msg.Broadcast, Edge: -1, Color: -1,
			Paints: []msg.Paint{{Edge: c.id, Color: 0}}}}
	}
	return nil
}

func (c *chattyNode) Done() bool { return c.round > c.sends }

func chattyNodes(n, sends int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &chattyNode{id: i, sends: sends}
	}
	return nodes
}

// collect runs the engine with an observer and returns the stream.
func collect(t *testing.T, run Engine, nodes []Node, cfg Config) ([]RoundTraffic, Result) {
	t.Helper()
	var rts []RoundTraffic
	cfg.Observe = func(rt RoundTraffic) { rts = append(rts, rt) }
	res, err := run(gen.Cycle(len(nodes)), nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rts, res
}

func TestObserverRoundTotalsMatchResult(t *testing.T) {
	for name, run := range engines() {
		rts, res := collect(t, run, chattyNodes(6, 3), Config{MaxRounds: 10})
		if !res.Terminated {
			t.Fatalf("%s: not terminated: %+v", name, res)
		}
		if len(rts) != res.Rounds {
			t.Fatalf("%s: observed %d rounds, engine ran %d", name, len(rts), res.Rounds)
		}
		var messages, deliveries, bytes int64
		for i, rt := range rts {
			if rt.Round != i {
				t.Fatalf("%s: round %d reported as %d (out of order)", name, i, rt.Round)
			}
			messages += rt.Messages
			deliveries += rt.Deliveries
			bytes += rt.Bytes
			// Kind split must re-sum to the round totals.
			var km, kd, kb int64
			for _, k := range rt.Kinds {
				km += k.Messages
				kd += k.Deliveries
				kb += k.Bytes
			}
			if km != rt.Messages || kd != rt.Deliveries || kb != rt.Bytes {
				t.Fatalf("%s: round %d kind split %d/%d/%d != totals %d/%d/%d",
					name, i, km, kd, kb, rt.Messages, rt.Deliveries, rt.Bytes)
			}
		}
		if messages != res.Messages || deliveries != res.Deliveries || bytes != res.Bytes {
			t.Fatalf("%s: observer sums %d/%d/%d != result %d/%d/%d",
				name, messages, deliveries, bytes, res.Messages, res.Deliveries, res.Bytes)
		}
		// The scripted workload: every node invites in rounds 0..2 and
		// updates in round 3.
		if rts[0].Kinds[msg.KindInvite].Messages != 6 || rts[3].Kinds[msg.KindUpdate].Messages != 6 {
			t.Fatalf("%s: kind attribution wrong: %+v", name, rts)
		}
	}
}

func TestObserverEnginesIdentical(t *testing.T) {
	streams := map[string][]RoundTraffic{}
	for name, run := range engines() {
		rts, _ := collect(t, run, chattyNodes(8, 4), Config{MaxRounds: 12})
		streams[name] = rts
	}
	if !reflect.DeepEqual(streams["sync"], streams["chan"]) {
		t.Fatalf("per-round traffic diverges:\nsync: %+v\nchan: %+v", streams["sync"], streams["chan"])
	}
}

func TestObserverWithFaults(t *testing.T) {
	// Dropping all deliveries to one vertex must show up in the round
	// deliveries but not in messages/bytes, identically on both engines.
	streams := map[string][]RoundTraffic{}
	for name, run := range engines() {
		var rts []RoundTraffic
		res, err := run(gen.Star(4), chattyNodes(4, 2), Config{
			MaxRounds: 8,
			Fault:     dropAll{victim: 0},
			Observe:   func(rt RoundTraffic) { rts = append(rts, rt) },
		})
		if err != nil {
			t.Fatal(err)
		}
		var deliveries int64
		for _, rt := range rts {
			deliveries += rt.Deliveries
		}
		if deliveries != res.Deliveries {
			t.Fatalf("%s: observed deliveries %d != result %d", name, deliveries, res.Deliveries)
		}
		streams[name] = rts
	}
	if !reflect.DeepEqual(streams["sync"], streams["chan"]) {
		t.Fatalf("faulted per-round traffic diverges:\nsync: %+v\nchan: %+v", streams["sync"], streams["chan"])
	}
}
