package net

import (
	"context"
	"runtime"

	"dima/internal/graph"
	"dima/internal/msg"
)

// Worker commands, sent on a shard's cmd channel. Values >= 0 mean
// "step this round"; the negative values select the other phases.
const (
	cmdMerge = -1
	cmdStop  = -2
)

// shardDelivery is one post-fault-filter delivery buffered between the
// step and merge phases: message m is bound for vertex to's next-round
// inbox.
type shardDelivery struct {
	to int
	m  msg.Message
}

// RunShardCtx is RunShard with an explicit context: the coordinator
// stops the run at the next round barrier after ctx is canceled,
// releases every worker goroutine, and returns the partial Result with
// Aborted set.
func RunShardCtx(ctx context.Context, g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	cfg.Ctx = ctx
	return RunShard(g, nodes, cfg)
}

// RunShard executes the protocol with cfg.Workers goroutines, each
// owning a contiguous shard of the vertex range. It is the scale
// engine: where RunChan spends a goroutine and a channel per vertex,
// RunShard's costs grow with Workers, so million-vertex graphs run
// without collapsing under scheduler pressure.
//
// Each round has two barrier-separated phases:
//
//  1. Step: every worker steps its own vertices in id order, sorting
//     each inbox with msg.Sort first, and appends the surviving
//     (post-fault) deliveries of each outbound broadcast into a buffer
//     keyed by the destination vertex's shard. Workers touch only their
//     own vertices' inboxes and their own outbound buffers, so the
//     phase is data-race free by partitioning.
//  2. Merge: every worker fills the next-round inboxes of its own
//     vertices by draining the buffers addressed to its shard in sender
//     shard order. Within one sender shard the records are already in
//     sender id order (workers step in id order), so each inbox fills
//     in ascending sender id — exactly the append order RunSync
//     produces. Identical pre-sort inboxes plus the shared msg.Sort
//     make the executions byte-identical: same final colorings, same
//     Result, same per-round RoundTraffic stream, for any Workers.
//
// The coordinator folds worker statistics in shard order between the
// phases and invokes cfg.Observe sequentially in round order, matching
// the other engines' observer contract.
//
// cfg.Fault, when non-nil, is called concurrently from all workers and
// must be safe for concurrent use; the injectors in this package are
// stateless hashes and qualify. Stateful injectors that are sensitive
// to call order (e.g. consuming a shared RNG) only reproduce RunSync
// under Workers == 1.
func RunShard(g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	if err := validate(g, nodes); err != nil {
		return Result{}, err
	}
	ctx := cfg.ctx()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	if allDone(nodes) {
		return Result{Terminated: true}, nil
	}
	if canceled(ctx) {
		return Result{Aborted: true}, nil
	}
	n := g.N()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Contiguous shards: shard s owns [bounds[s], bounds[s+1]). The
	// owner array answers "which shard holds vertex v" in O(1) on the
	// delivery fast path.
	bounds := make([]int, workers+1)
	for s := 0; s <= workers; s++ {
		bounds[s] = s * n / workers
	}
	owner := make([]int32, n)
	for s := 0; s < workers; s++ {
		for u := bounds[s]; u < bounds[s+1]; u++ {
			owner[u] = int32(s)
		}
	}

	// Double-buffered inboxes, as in RunSync. Workers read the slice
	// headers after receiving a command and stop before replying; the
	// coordinator swaps them only between barriers, so the swap is
	// ordered by the channel operations.
	inboxes := make([][]msg.Message, n)
	next := make([][]msg.Message, n)

	// out[s][d] buffers shard s's deliveries addressed to shard d.
	out := make([][][]shardDelivery, workers)
	for s := range out {
		out[s] = make([][]shardDelivery, workers)
	}

	observing := cfg.Observe != nil
	stats := make([]nodeStatus, workers)
	cmd := make([]chan int, workers)
	rep := make([]chan struct{}, workers)
	for s := 0; s < workers; s++ {
		cmd[s] = make(chan int, 1)
		rep[s] = make(chan struct{}, 1)
	}

	for s := 0; s < workers; s++ {
		go func(s int) {
			lo, hi := bounds[s], bounds[s+1]
			for {
				c := <-cmd[s]
				switch {
				case c >= 0: // step phase for round c
					st := &stats[s]
					*st = nodeStatus{done: true}
					for d := range out[s] {
						out[s][d] = out[s][d][:0]
					}
					for u := lo; u < hi; u++ {
						msg.Sort(inboxes[u])
						msgs := nodes[u].Step(c, inboxes[u])
						st.messages += int64(len(msgs))
						for _, m := range msgs {
							sz := int64(m.Size())
							st.bytes += sz
							var delivered int64
							for _, v := range g.Neighbors(u) {
								if cfg.Fault != nil && cfg.Fault.Drop(c, m, v) {
									continue
								}
								d := owner[v]
								out[s][d] = append(out[s][d], shardDelivery{to: v, m: m})
								delivered++
							}
							st.deliveries += delivered
							if observing {
								k := &st.kinds[m.Kind]
								k.Messages++
								k.Bytes += sz
								k.Deliveries += delivered
							}
						}
					}
					// Done is evaluated here, after the shard's steps and
					// before any next-round delivery — the same evaluation
					// point as RunSync.
					for u := lo; u < hi && st.done; u++ {
						st.done = nodes[u].Done()
					}
					rep[s] <- struct{}{}
				case c == cmdMerge:
					for u := lo; u < hi; u++ {
						next[u] = next[u][:0]
					}
					for src := 0; src < workers; src++ {
						for _, rec := range out[src][s] {
							next[rec.to] = append(next[rec.to], rec.m)
						}
					}
					rep[s] <- struct{}{}
				default: // cmdStop
					return
				}
			}
		}(s)
	}

	broadcast := func(c int) {
		for s := 0; s < workers; s++ {
			cmd[s] <- c
		}
		if c == cmdStop {
			return
		}
		for s := 0; s < workers; s++ {
			<-rep[s]
		}
	}

	var res Result
	for round := 0; round < maxRounds; round++ {
		broadcast(round)
		done := true
		var rt RoundTraffic
		for s := 0; s < workers; s++ {
			st := &stats[s]
			if !st.done {
				done = false
			}
			res.Messages += st.messages
			res.Deliveries += st.deliveries
			res.Bytes += st.bytes
			if observing {
				for k := range rt.Kinds {
					rt.Kinds[k].Messages += st.kinds[k].Messages
					rt.Kinds[k].Deliveries += st.kinds[k].Deliveries
					rt.Kinds[k].Bytes += st.kinds[k].Bytes
				}
				rt.Messages += st.messages
				rt.Deliveries += st.deliveries
				rt.Bytes += st.bytes
			}
		}
		if observing {
			rt.Round = round
			cfg.Observe(rt)
		}
		res.Rounds = round + 1
		if done {
			res.Terminated = true
			break
		}
		// Cancellation point: same barrier position as the other engines
		// (after the done verdict, before the merge commits the next
		// round). The cmdStop broadcast below releases the workers, which
		// are parked on cmd here.
		if canceled(ctx) {
			res.Aborted = true
			break
		}
		if round == maxRounds-1 {
			break
		}
		broadcast(cmdMerge)
		inboxes, next = next, inboxes
	}
	broadcast(cmdStop)
	return res, nil
}
